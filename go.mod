module mstc

go 1.22
