// Command sweepctl inspects and maintains sweep result stores (the
// content-addressed run journals cmd/paperfig writes with -store; see
// internal/sweep).
//
//	sweepctl status [-json] <store>...         record/failure/corrupt counts, checkpoint, summary
//	sweepctl merge -into <dst> <src>...        combine shard stores into one
//	sweepctl verify <store>...                 re-verify every checksum; exit 1 on corruption
//	sweepctl gc [-fingerprint <fp>] <store>... drop tmp files, failures, corrupt (and foreign) records
//
// A typical sharded sweep:
//
//	paperfig -exp fig6 -store s0 -shard 0/2 &
//	paperfig -exp fig6 -store s1 -shard 1/2 &
//	wait
//	sweepctl merge -into merged s0 s1
//	paperfig -exp fig6 -store merged -resume   # renders with zero recomputation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mstc/internal/fleet"
	"mstc/internal/stats"
	"mstc/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "status":
		cmdStatus(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "gc":
		cmdGC(os.Args[2:])
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sweepctl status [-json] <store>...
  sweepctl merge -into <dst> <src>...
  sweepctl verify <store>...
  sweepctl gc [-fingerprint <fp>] <store>...`)
	os.Exit(2)
}

func open(dir string) *sweep.Store {
	s, err := sweep.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// fpStats aggregates one fingerprint's records for the status report.
type fpStats struct {
	done, failed, corrupt int
	// conn summarizes connectivity across completed runs, folded from
	// per-record singletons with the pairwise Welford merge — the same
	// combination shard aggregation relies on.
	conn stats.Welford
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	failures := fs.Int("failures", 3, "failure records to detail per fingerprint")
	jsonOut := fs.Bool("json", false, "machine-readable output (the same summary encoding sweepd serves at /status)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	if *jsonOut {
		// One StoreSummary per store, via the shared fleet encoding — a
		// dashboard parses identical shapes from an offline store and a
		// live daemon.
		var sums []fleet.StoreSummary
		for _, dir := range fs.Args() {
			sum, err := fleet.SummarizeStore(open(dir))
			if err != nil {
				log.Fatal(err)
			}
			sums = append(sums, sum)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sums); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, dir := range fs.Args() {
		s := open(dir)
		// Scan visits fingerprints in sorted order, so per-fingerprint
		// aggregation is a streaming group-by.
		var fps []string
		agg := make(map[string]*fpStats)
		shown := make(map[string]int)
		err := s.Scan(func(info sweep.RecordInfo) error {
			st := agg[info.Fingerprint]
			if st == nil {
				st = &fpStats{}
				agg[info.Fingerprint] = st
				fps = append(fps, info.Fingerprint)
			}
			switch {
			case info.Err != nil:
				st.corrupt++
			case info.Failed:
				st.failed++
				if shown[info.Fingerprint] < *failures {
					shown[info.Fingerprint]++
					fmt.Printf("  FAILED (%d attempts) %s: %.120s\n",
						info.Record.Attempts, info.Record.Desc, info.Record.Failure)
				}
			default:
				var one stats.Welford
				one.Add(info.Record.Result.Connectivity)
				st.conn.Merge(one)
				st.done++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", dir)
		if len(fps) == 0 {
			fmt.Println("  empty")
		}
		for _, fp := range fps {
			st := agg[fp]
			fmt.Printf("  fingerprint %s: %d runs", fp, st.done)
			if st.failed > 0 {
				fmt.Printf(", %d failed", st.failed)
			}
			if st.corrupt > 0 {
				fmt.Printf(", %d corrupt", st.corrupt)
			}
			if st.conn.N() > 0 {
				fmt.Printf("  (connectivity %s)", st.conn.String())
			}
			fmt.Println()
		}
		cp, ok, cperr := s.ReadCheckpoint()
		if cperr != nil {
			// Advisory file only — records are intact — but the operator
			// should know it was damaged rather than see it vanish.
			fmt.Printf("  WARNING: %v\n", cperr)
		}
		if ok {
			state := "complete"
			if cp.Interrupted {
				state = "interrupted"
			} else if cp.Done < cp.Total {
				state = "in progress"
			}
			fmt.Printf("  last sweep: %d/%d computed (%s, fingerprint %s)\n",
				cp.Done, cp.Total, state, cp.Fingerprint)
		}
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	into := fs.String("into", "", "destination store directory (created if missing)")
	fs.Parse(args)
	if *into == "" || fs.NArg() == 0 {
		usage()
	}
	dst := open(*into)
	for _, dir := range fs.Args() {
		st, err := sweep.Merge(dst, open(dir))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s: %s\n", dir, *into, st)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	bad := 0
	for _, dir := range fs.Args() {
		ok, failed := 0, 0
		err := open(dir).Scan(func(info sweep.RecordInfo) error {
			switch {
			case info.Err != nil:
				bad++
				fmt.Printf("%s: CORRUPT: %v\n", info.Path, info.Err)
			case info.Failed:
				failed++
			default:
				ok++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d records verified, %d failure records\n", dir, ok, failed)
	}
	if bad > 0 {
		log.Fatalf("%d corrupt records (re-run the sweep to replace them, or gc to drop them)", bad)
	}
}

func cmdGC(args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	fp := fs.String("fingerprint", "", "also drop records not under this fingerprint")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	for _, dir := range fs.Args() {
		st, err := open(dir).GC(*fp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: removed %d tmp, %d failed, %d corrupt, %d foreign\n",
			dir, st.Tmp, st.Failed, st.Corrupt, st.Foreign)
	}
}
