// Command manetlint runs the project's determinism and simulation-safety
// analyzers (internal/lint) over the module and exits nonzero on any
// non-baselined finding. It is stdlib-only: packages are parsed with
// go/parser and type-checked with go/types against GOROOT sources.
//
// Usage:
//
//	go run ./cmd/manetlint ./...
//	go run ./cmd/manetlint -json ./... > manetlint.json
//	go run ./cmd/manetlint -baseline lint.baseline.json ./...
//	go run ./cmd/manetlint -write-baseline lint.baseline.json ./...
//
// Findings print as file:line:col: check: message, or as a JSON report
// with -json. Each finding carries a position-stable ID (hash of file,
// check, enclosing declaration, message and occurrence — not line
// numbers); -baseline FILE suppresses the exit status for IDs recorded in
// FILE, so grandfathered findings are tracked in-tree while anything new
// fails the build. -write-baseline snapshots the current findings.
//
// A finding is suppressed at the source with a same-line (or line-above)
// comment `//lint:ignore <check> <reason>`; range-over-map loops are
// instead annotated `//lint:order-independent`. Run with -checks to list
// the analyzer suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mstc/internal/lint"
)

// report is the -json output shape.
type report struct {
	Module   string         `json:"module"`
	Patterns []string       `json:"patterns"`
	Total    int            `json:"total"`
	Fresh    int            `json:"fresh"` // findings not covered by the baseline
	Findings []lint.Finding `json:"findings"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("manetlint: ")
	listChecks := flag.Bool("checks", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit the findings as a JSON report on stdout")
	baselinePath := flag.String("baseline", "", "only fail on findings absent from this baseline file")
	writeBaseline := flag.String("write-baseline", "", "snapshot current findings to this baseline file and exit")
	flag.Parse()

	analyzers := lint.AllAnalyzers()
	if *listChecks {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, module, err := lint.FindModuleRoot(wd)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := lint.Load(root, module, patterns)
	if err != nil {
		log.Fatal(err)
	}
	if len(pkgs) == 0 {
		log.Fatalf("%s matched no packages", strings.Join(patterns, " "))
	}

	// A broken tree cannot be meaningfully analyzed; surface type errors
	// first (the tier-1 build gate means a healthy tree has none).
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			log.Fatalf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}

	cfg := lint.DefaultConfig()
	diags := lint.Run(pkgs, cfg, analyzers)
	diags = append(diags, lint.BadSuppressions(pkgs, cfg)...)
	findings := lint.Findings(diags, root)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, findings); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("manetlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	var base *lint.Baseline
	if *baselinePath != "" {
		base, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
	}
	fresh := lint.ApplyBaseline(findings, base)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Module:   module,
			Patterns: patterns,
			Total:    len(findings),
			Fresh:    len(fresh),
			Findings: findings,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range findings {
			suffix := ""
			if f.Baselined {
				suffix = " (baselined)"
			}
			fmt.Printf("%s%s\n", f, suffix)
		}
		if len(findings) > 0 {
			fmt.Printf("manetlint: %d finding(s), %d fresh\n", len(findings), len(fresh))
		}
	}
	if len(fresh) > 0 {
		os.Exit(1)
	}
}
