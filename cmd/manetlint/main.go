// Command manetlint runs the project's determinism and simulation-safety
// analyzers (internal/lint) over the module and exits nonzero on any
// finding. It is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types against GOROOT sources.
//
// Usage:
//
//	go run ./cmd/manetlint ./...
//	go run ./cmd/manetlint ./internal/... ./cmd/paperfig
//
// Findings print as file:line:col: check: message. A finding is suppressed
// by a same-line (or line-above) comment `//lint:ignore <check> <reason>`;
// range-over-map loops are instead annotated `//lint:order-independent`.
// Run with -checks to list the analyzer suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mstc/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manetlint: ")
	listChecks := flag.Bool("checks", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.AllAnalyzers()
	if *listChecks {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, module, err := lint.FindModuleRoot(wd)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := lint.Load(root, module, patterns)
	if err != nil {
		log.Fatal(err)
	}
	if len(pkgs) == 0 {
		log.Fatalf("%s matched no packages", strings.Join(patterns, " "))
	}

	// A broken tree cannot be meaningfully analyzed; surface type errors
	// first (the tier-1 build gate means a healthy tree has none).
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			log.Fatalf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}

	cfg := lint.DefaultConfig()
	diags := lint.Run(pkgs, cfg, analyzers)
	diags = append(diags, lint.BadSuppressions(pkgs, cfg)...)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Printf("manetlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
