// Command sweepd is the sweep-fleet coordinator daemon: it owns a result
// store and a task set, and hands out lease-based work batches to
// workers (cmd/sweepworker or paperfig -worker) over HTTP. Crashed or
// partitioned workers lose their leases after -lease-ttl of silence and
// their tasks are re-granted to whoever asks next; because every run is
// deterministic, duplicated work is absorbed byte-identically.
//
//	sweepd -exp fig6 -quick -store runs/ &
//	sweepworker -url http://127.0.0.1:7070 &
//	sweepworker -url http://127.0.0.1:7070 &
//	curl -s http://127.0.0.1:7070/status | jq .
//	curl -sN http://127.0.0.1:7070/events    # live NDJSON progress
//
// With -target-ci the daemon keeps issuing extra repetitions for
// configurations whose relative CI95 stays above the target (up to
// -max-reps) — adaptive replication instead of a fixed -reps. Without
// it, the finished store is byte-identical to a single-process
// `paperfig -store` sweep of the same experiment and merges cleanly
// with `sweepctl merge`.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mstc/internal/experiment"
	"mstc/internal/fleet"
	"mstc/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepd: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
		exp      = flag.String("exp", "", fmt.Sprintf("task set to sweep: %s, all", strings.Join(experiment.TaskSetNames(), ", ")))
		quick    = flag.Bool("quick", false, "scaled-down options for a fast pass")
		reps     = flag.Int("reps", 0, "base repetitions per configuration (default: paper's 20, or 3 with -quick)")
		duration = flag.Float64("duration", 0, "simulated seconds per run (default: paper's 100, or 20 with -quick)")
		seed     = flag.Uint64("seed", 2004, "root seed")
		storeDir = flag.String("store", "", "result store directory (required)")
		resume   = flag.Bool("resume", false, "reuse runs already journaled in -store instead of refusing a non-empty store")
		ttl      = flag.Duration("lease-ttl", 60*time.Second, "lease lifetime without a heartbeat before tasks are stolen")
		batch    = flag.Int("lease-batch", 4, "maximum tasks granted per lease")
		retries  = flag.Int("retries", 1, "per-run panic-retry budget advertised to workers")
		targetCI = flag.Float64("target-ci", 0, "adaptive replication: extra reps until relative CI95 <= this (0 = fixed reps)")
		maxReps  = flag.Int("max-reps", 0, "cap on total reps per configuration under -target-ci (default 10x base)")
		exitDone = flag.Bool("exit-on-done", false, "exit 0 once the sweep completes instead of serving /status forever")
	)
	flag.Parse()
	if *exp == "" || *storeDir == "" {
		log.Print("both -exp and -store are required")
		flag.Usage()
		os.Exit(2)
	}

	o := experiment.DefaultOptions()
	if *quick {
		o = experiment.QuickOptions()
	}
	if *reps > 0 {
		o.Reps = *reps
	}
	if *duration > 0 {
		o.Duration = *duration
	}
	o.Seed = *seed

	tasks, err := experiment.TaskSet(*exp, o)
	if err != nil {
		log.Fatal(err)
	}

	st, err := sweep.Open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	// Same operator-intent gate as paperfig -store: a non-empty store is
	// only trusted with an explicit -resume.
	if n, err := st.Count(); err != nil {
		log.Fatal(err)
	} else if n > 0 && !*resume {
		log.Fatalf("store %s already holds %d runs; pass -resume to reuse them or choose a fresh directory", *storeDir, n)
	}

	c, err := fleet.New(fleet.Config{
		Options:     o,
		Tasks:       tasks,
		Store:       st,
		Clock:       time.Now, //lint:ignore no-wallclock the daemon is the one place wall time enters the fleet: lease deadlines and ETA; simulations never see it
		LeaseTTL:    *ttl,
		LeaseBatch:  *batch,
		Retries:     *retries,
		TargetRelCI: *targetCI,
		MaxReps:     *maxReps,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	status := c.Status(false)
	log.Printf("serving %s (%d tasks, %d store hits, %d pending) on http://%s",
		*exp, status.Total, status.Hits, status.Pending, bound)

	srv := &http.Server{Handler: c.Handler()}

	// Lifecycle: SIGINT/SIGTERM flushes an interrupted checkpoint and
	// exits 130 (matching paperfig's drain contract — workers' in-flight
	// completions just fail their POST and the runs are recomputed on
	// resume); completion exits 0 under -exit-on-done.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	exit := make(chan int, 1)
	go func() { //lint:ignore no-naked-goroutine lifecycle watcher: waits for a signal or sweep completion, then closes the listener to unblock Serve
		select {
		case <-sigc:
			c.Interrupt()
			log.Print("interrupt: checkpoint flushed, shutting down")
			exit <- 130
		case <-c.DoneCh():
			final := c.Status(false)
			log.Printf("sweep complete: %d done, %d failed, %d computed by %d workers",
				final.Done, final.Failed, final.Computed, final.Workers)
			if !*exitDone {
				// Keep serving /status and /aggregate for inspection.
				select {
				case <-sigc:
				}
			}
			exit <- 0
		}
		srv.Close()
	}()

	if err := srv.Serve(ln); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	os.Exit(<-exit)
}
