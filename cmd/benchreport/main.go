// Command benchreport converts `go test -bench` output into a stable JSON
// report: one entry per benchmark with ns/op, allocs/op, B/op, and every
// custom metric the benchmark reported (conn/ratio, m/range, ...).
//
// It is a plain filter so it composes with the test runner instead of
// re-implementing it:
//
//	go test -bench . -benchtime 1x | benchreport -o BENCH.json
//	go test -bench SingleRun -count 3 | benchreport
//
// Entries are sorted by name and the GOMAXPROCS suffix ("-8") is stripped,
// so reports from machines with different core counts diff cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result. Repeated runs of the same benchmark
// (-count > 1) produce repeated entries.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
}

// parse extracts benchmark result lines from `go test -bench` output. A
// result line is tab-separated: name, iteration count, then "value unit"
// pairs.
func parse(sc *bufio.Scanner) (Report, error) {
	var r Report
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 {
			continue
		}
		e := Entry{Name: trimCPUSuffix(strings.TrimSpace(fields[0]))}
		iters, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		e.Iterations = iters
		for _, f := range fields[2:] {
			parts := strings.Fields(f)
			if len(parts) != 2 {
				continue
			}
			val, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return r, fmt.Errorf("bad value in %q: %v", line, err)
			}
			switch unit := parts[1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = val
			}
		}
		r.Benchmarks = append(r.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	sort.SliceStable(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
	return r, nil
}

// trimCPUSuffix drops the trailing "-N" GOMAXPROCS marker from a benchmark
// name, if present.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
