// Command benchreport converts `go test -bench` output into a stable JSON
// report: one entry per benchmark with ns/op, allocs/op, B/op, and every
// custom metric the benchmark reported (conn/ratio, m/range, ...).
//
// It is a plain filter so it composes with the test runner instead of
// re-implementing it:
//
//	go test -bench . -benchtime 1x | benchreport -o BENCH.json
//	go test -bench SingleRun -count 3 | benchreport
//
// Entries are sorted by name and the GOMAXPROCS suffix ("-8") is stripped,
// so reports from machines with different core counts diff cleanly.
//
// With -baseline it additionally acts as a regression gate:
//
//	go test -bench SingleRun -count 3 | benchreport -baseline BENCH_2.json -gate BenchmarkSingleRun
//
// compares the minimum ns/op of each gated benchmark (minimum across
// -count repetitions — the least-noisy location estimate) against the same
// benchmark in the baseline report and exits nonzero when the current run
// is more than -max-regress slower.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result. Repeated runs of the same benchmark
// (-count > 1) produce repeated entries.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "baseline report to gate ns/op regressions against")
	gate := flag.String("gate", "BenchmarkSingleRun", "comma-separated benchmark names the -baseline gate checks")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated fractional ns/op regression vs -baseline")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	if *baseline != "" {
		if err := checkRegression(report, *baseline, strings.Split(*gate, ","), *maxRegress); err != nil {
			log.Fatal(err)
		}
	}
}

// minNsPerOp returns the minimum ns/op over a report's repetitions of one
// benchmark, the standard noise-resistant summary of repeated runs.
func minNsPerOp(r Report, name string) (float64, bool) {
	best, found := 0.0, false
	for _, e := range r.Benchmarks {
		if e.Name != name {
			continue
		}
		if !found || e.NsPerOp < best {
			best, found = e.NsPerOp, true
		}
	}
	return best, found
}

// checkRegression compares the gated benchmarks' minimum ns/op against the
// baseline report and fails when any regressed by more than maxRegress.
func checkRegression(cur Report, baselinePath string, gates []string, maxRegress float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %v", baselinePath, err)
	}
	for _, name := range gates {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want, ok := minNsPerOp(base, name)
		if !ok {
			return fmt.Errorf("%s: no %s entry to gate against", baselinePath, name)
		}
		got, ok := minNsPerOp(cur, name)
		if !ok {
			return fmt.Errorf("current run has no %s entry (did the bench filter match?)", name)
		}
		ratio := got/want - 1
		fmt.Fprintf(os.Stderr, "benchreport: %s min %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n",
			name, got, want, 100*ratio)
		if ratio > maxRegress {
			return fmt.Errorf("%s regressed %.1f%% (> %.0f%% allowed) vs %s",
				name, 100*ratio, 100*maxRegress, baselinePath)
		}
	}
	return nil
}

// parse extracts benchmark result lines from `go test -bench` output. A
// result line is tab-separated: name, iteration count, then "value unit"
// pairs.
func parse(sc *bufio.Scanner) (Report, error) {
	var r Report
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 {
			continue
		}
		e := Entry{Name: trimCPUSuffix(strings.TrimSpace(fields[0]))}
		iters, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		e.Iterations = iters
		for _, f := range fields[2:] {
			parts := strings.Fields(f)
			if len(parts) != 2 {
				continue
			}
			val, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return r, fmt.Errorf("bad value in %q: %v", line, err)
			}
			switch unit := parts[1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = val
			}
		}
		r.Benchmarks = append(r.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	sort.SliceStable(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
	return r, nil
}

// trimCPUSuffix drops the trailing "-N" GOMAXPROCS marker from a benchmark
// name, if present.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
