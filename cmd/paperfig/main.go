// Command paperfig regenerates the tables and figures of the paper's
// evaluation section (Wu & Dai, §5): Table 1 and Figures 6–10.
//
// Examples:
//
//	paperfig -exp table1
//	paperfig -exp fig7 -reps 20 -duration 100   # paper scale
//	paperfig -exp all -quick                    # fast pass over everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mstc/internal/channel"
	"mstc/internal/experiment"
	"mstc/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfig: ")

	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig6, fig7, fig8, fig9, fig10, consistency, routing, energy, all; fault-injection extras (not in all): faults, bufferzone")
		reps     = flag.Int("reps", 0, "repetitions per configuration (default: paper's 20, or 3 with -quick)")
		duration = flag.Float64("duration", 0, "simulated seconds per run (default: paper's 100, or 20 with -quick)")
		quick    = flag.Bool("quick", false, "scaled-down options for a fast pass")
		seed     = flag.Uint64("seed", 2004, "root seed")
		workers  = flag.Int("workers", 0, "parallel runs (default GOMAXPROCS)")
		datDir   = flag.String("dat", "", "also write gnuplot-ready .dat/.txt files into this directory")
		timing   = flag.Bool("timing", false, "report wall-clock duration per experiment on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Profiles go to their own files; stdout stays byte-identical whether
	// or not profiling is enabled.
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Fatal(err)
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()

	// Figure output (stdout and -dat files) must be byte-identical across
	// regenerations with the same seed, so no wall-clock value may reach
	// it. Timing is an opt-in progress report on stderr only, read through
	// this injected clock: nil means "don't measure at all", which also
	// keeps the determinism contract grep-ably explicit.
	var clock func() time.Time
	if *timing {
		clock = time.Now //lint:ignore no-wallclock opt-in stderr progress timing; never reaches figure output
	}

	o := experiment.DefaultOptions()
	if *quick {
		o = experiment.QuickOptions()
	}
	if *reps > 0 {
		o.Reps = *reps
	}
	if *duration > 0 {
		o.Duration = *duration
	}
	o.Seed = *seed
	o.Workers = *workers

	if *datDir != "" {
		if err := os.MkdirAll(*datDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	save := func(name, content string) {
		if *datDir == "" {
			return
		}
		path := filepath.Join(*datDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	run := func(name string, fn func() error) {
		var start time.Time
		if clock != nil {
			start = clock()
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if clock != nil {
			// log prints to stderr, keeping stdout reproducible.
			log.Printf("[%s done in %v]", name, clock().Sub(start).Round(time.Millisecond))
		}
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	matched := false

	if want("table1") {
		matched = true
		run("table1", func() error {
			t, err := experiment.Table1(o)
			if err != nil {
				return err
			}
			fmt.Println(t)
			save("table1.txt", t.String())
			return nil
		})
	}
	if want("fig6") {
		matched = true
		run("fig6", func() error {
			f, err := experiment.Fig6(o)
			if err != nil {
				return err
			}
			fmt.Println(f)
			save("fig6.dat", f.Dat())
			return nil
		})
	}
	if want("fig7") {
		matched = true
		run("fig7", func() error {
			figs, err := experiment.Fig7(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig7%c.dat", 'a'+i), f.Dat())
			}
			return nil
		})
	}
	if want("fig8") {
		matched = true
		run("fig8", func() error {
			fa, fb, err := experiment.Fig8(o)
			if err != nil {
				return err
			}
			fmt.Println(fa)
			fmt.Println(fb)
			save("fig8a.dat", fa.Dat())
			save("fig8b.dat", fb.Dat())
			return nil
		})
	}
	if want("fig9") {
		matched = true
		run("fig9", func() error {
			figs, err := experiment.Fig9(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig9%c.dat", 'a'+i), f.Dat())
			}
			return nil
		})
	}
	if want("fig10") {
		matched = true
		run("fig10", func() error {
			figs, err := experiment.Fig10(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig10%c.dat", 'a'+i), f.Dat())
			}
			return nil
		})
	}
	if want("consistency") {
		matched = true
		run("consistency", func() error {
			for _, proto := range []string{"MST", "RNG"} {
				f, err := experiment.FigConsistency(o, proto)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("consistency_"+proto+".dat", f.Dat())
			}
			return nil
		})
	}
	if want("energy") {
		matched = true
		run("energy", func() error {
			t, err := experiment.TableEnergy(o)
			if err != nil {
				return err
			}
			fmt.Println(t)
			save("energy.txt", t.String())
			return nil
		})
	}
	if want("routing") {
		matched = true
		run("routing", func() error {
			for _, proto := range []string{"GG", "RNG"} {
				f, err := experiment.FigRouting(o, proto)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("routing_"+proto+".dat", f.Dat())
			}
			return nil
		})
	}
	// The fault-injection experiments exercise the non-ideal channel
	// subsystem. They are opt-in only — never part of "all" — so the
	// byte-identical output contract of pre-channel invocations holds.
	if strings.EqualFold(*exp, "faults") {
		matched = true
		run("faults", func() error {
			rates := []float64{0, 0.1, 0.2, 0.4, 0.6}
			for _, model := range []channel.LossModel{channel.Bernoulli, channel.GilbertElliott} {
				f, err := experiment.FigLoss(o, model, rates)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("faults_loss_"+model.String()+".dat", f.Dat())
			}
			fd, err := experiment.FigDelay(o, []float64{0, 0.25, 0.5, 1.0})
			if err != nil {
				return err
			}
			fmt.Println(fd)
			save("faults_delay.dat", fd.Dat())
			fc, err := experiment.FigChurn(o, []float64{0, 0.1, 0.25, 0.5})
			if err != nil {
				return err
			}
			fmt.Println(fc)
			save("faults_churn.dat", fc.Dat())
			return nil
		})
	}
	if strings.EqualFold(*exp, "bufferzone") {
		matched = true
		run("bufferzone", func() error {
			// Average speed 20 m/s (setdest max 40 m/s): predicted knees
			// 2·Δ″·v = 0 / 40 / 80 m for Δ″ = 0 / 0.5 / 1.0 s, bracketed
			// by the buffer grid.
			delays := []float64{0, 0.5, 1.0}
			buffers := []float64{0, 10, 20, 30, 40, 50, 60, 80, 100, 120, 160}
			f, t, err := experiment.FigBufferZone(o, 20, delays, buffers)
			if err != nil {
				return err
			}
			fmt.Println(f)
			fmt.Println(t)
			save("bufferzone.dat", f.Dat())
			save("bufferzone_knees.txt", t.String())
			return nil
		})
	}
	if !matched {
		log.Fatalf("unknown experiment %q (want table1, fig6..fig10, consistency, routing, energy, faults, bufferzone, or all)", *exp)
	}
}
