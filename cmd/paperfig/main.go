// Command paperfig regenerates the tables and figures of the paper's
// evaluation section (Wu & Dai, §5): Table 1 and Figures 6–10.
//
// Examples:
//
//	paperfig -exp table1
//	paperfig -exp fig7 -reps 20 -duration 100   # paper scale
//	paperfig -exp all -quick                    # fast pass over everything
//
// Long sweeps can be journaled, interrupted, resumed, and sharded across
// processes through a result store (see internal/sweep and cmd/sweepctl):
//
//	paperfig -exp all -store runs/           # journal every completed run
//	^C                                       # graceful drain, exit 130
//	paperfig -exp all -store runs/ -resume   # skip journaled runs, finish
//
//	paperfig -exp fig7 -store s0 -shard 0/2  # machine A computes half
//	paperfig -exp fig7 -store s1 -shard 1/2  # machine B the other half
//	sweepctl merge -into merged s0 s1
//	paperfig -exp fig7 -store merged -resume # render, zero recomputation
//
// Or let a sweepd coordinator hand out the work (see cmd/sweepd):
//
//	sweepd -exp fig7 -store runs/ &
//	paperfig -worker http://127.0.0.1:7070  # on every spare machine
//	paperfig -exp fig7 -store runs/ -resume # render, zero recomputation
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mstc/internal/channel"
	"mstc/internal/experiment"
	"mstc/internal/fleet"
	"mstc/internal/profiling"
	"mstc/internal/sweep"
)

// expSpec is one runnable experiment: its -exp name, whether "all"
// includes it, and the renderer. save persists -dat files; it is a no-op
// when -dat is unset.
type expSpec struct {
	name  string
	inAll bool
	run   func(o experiment.Options, save func(name, content string)) error
}

// experiments returns the registry in presentation order. Unknown -exp
// values are rejected against this list, so the flag's error message and
// the dispatch can never drift apart.
func experiments() []expSpec {
	return []expSpec{
		{"table1", true, func(o experiment.Options, save func(string, string)) error {
			t, err := experiment.Table1(o)
			if err != nil {
				return err
			}
			fmt.Println(t)
			save("table1.txt", t.String())
			return nil
		}},
		{"fig6", true, func(o experiment.Options, save func(string, string)) error {
			f, err := experiment.Fig6(o)
			if err != nil {
				return err
			}
			fmt.Println(f)
			save("fig6.dat", f.Dat())
			return nil
		}},
		{"fig7", true, func(o experiment.Options, save func(string, string)) error {
			figs, err := experiment.Fig7(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig7%c.dat", 'a'+i), f.Dat())
			}
			return nil
		}},
		{"fig8", true, func(o experiment.Options, save func(string, string)) error {
			fa, fb, err := experiment.Fig8(o)
			if err != nil {
				return err
			}
			fmt.Println(fa)
			fmt.Println(fb)
			save("fig8a.dat", fa.Dat())
			save("fig8b.dat", fb.Dat())
			return nil
		}},
		{"fig9", true, func(o experiment.Options, save func(string, string)) error {
			figs, err := experiment.Fig9(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig9%c.dat", 'a'+i), f.Dat())
			}
			return nil
		}},
		{"fig10", true, func(o experiment.Options, save func(string, string)) error {
			figs, err := experiment.Fig10(o)
			if err != nil {
				return err
			}
			for i, f := range figs {
				fmt.Println(f)
				save(fmt.Sprintf("fig10%c.dat", 'a'+i), f.Dat())
			}
			return nil
		}},
		{"consistency", true, func(o experiment.Options, save func(string, string)) error {
			for _, proto := range []string{"MST", "RNG"} {
				f, err := experiment.FigConsistency(o, proto)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("consistency_"+proto+".dat", f.Dat())
			}
			return nil
		}},
		{"energy", true, func(o experiment.Options, save func(string, string)) error {
			t, err := experiment.TableEnergy(o)
			if err != nil {
				return err
			}
			fmt.Println(t)
			save("energy.txt", t.String())
			return nil
		}},
		{"routing", true, func(o experiment.Options, save func(string, string)) error {
			for _, proto := range []string{"GG", "RNG"} {
				f, err := experiment.FigRouting(o, proto)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("routing_"+proto+".dat", f.Dat())
			}
			return nil
		}},
		// The routing comparison exercises the traffic subsystem
		// (internal/traffic): CBR flows routed by AODV and OLSR over the
		// controlled topology versus the unit-disk baseline. Opt-in only —
		// not part of "all" — so the byte-identical output contract of
		// pre-traffic invocations holds.
		{"traffic", false, func(o experiment.Options, save func(string, string)) error {
			f, t, err := experiment.FigTraffic(o)
			if err != nil {
				return err
			}
			fmt.Println(f)
			fmt.Println(t)
			save("traffic.dat", f.Dat())
			save("traffic_points.txt", t.String())
			return nil
		}},
		// The fault-injection experiments exercise the non-ideal channel
		// subsystem. They are opt-in only — never part of "all" — so the
		// byte-identical output contract of pre-channel invocations holds.
		{"faults", false, func(o experiment.Options, save func(string, string)) error {
			rates := []float64{0, 0.1, 0.2, 0.4, 0.6}
			for _, model := range []channel.LossModel{channel.Bernoulli, channel.GilbertElliott} {
				f, err := experiment.FigLoss(o, model, rates)
				if err != nil {
					return err
				}
				fmt.Println(f)
				save("faults_loss_"+model.String()+".dat", f.Dat())
			}
			fd, err := experiment.FigDelay(o, []float64{0, 0.25, 0.5, 1.0})
			if err != nil {
				return err
			}
			fmt.Println(fd)
			save("faults_delay.dat", fd.Dat())
			fc, err := experiment.FigChurn(o, []float64{0, 0.1, 0.25, 0.5})
			if err != nil {
				return err
			}
			fmt.Println(fc)
			save("faults_churn.dat", fc.Dat())
			return nil
		}},
		{"bufferzone", false, func(o experiment.Options, save func(string, string)) error {
			// Average speed 20 m/s (setdest max 40 m/s): predicted knees
			// 2·Δ″·v = 0 / 40 / 80 m for Δ″ = 0 / 0.5 / 1.0 s, bracketed
			// by the buffer grid.
			delays := []float64{0, 0.5, 1.0}
			buffers := []float64{0, 10, 20, 30, 40, 50, 60, 80, 100, 120, 160}
			f, t, err := experiment.FigBufferZone(o, 20, delays, buffers)
			if err != nil {
				return err
			}
			fmt.Println(f)
			fmt.Println(t)
			save("bufferzone.dat", f.Dat())
			save("bufferzone_knees.txt", t.String())
			return nil
		}},
	}
}

// expNames lists the registry's -exp values for flag help and errors.
func expNames() (all, optIn []string) {
	for _, s := range experiments() {
		if s.inAll {
			all = append(all, s.name)
		} else {
			optIn = append(optIn, s.name)
		}
	}
	return all, optIn
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfig: ")

	allNames, optInNames := expNames()
	var (
		exp = flag.String("exp", "all", fmt.Sprintf("experiment: %s, all; opt-in extras (not in all): %s",
			strings.Join(allNames, ", "), strings.Join(optInNames, ", ")))
		reps      = flag.Int("reps", 0, "repetitions per configuration (default: paper's 20, or 3 with -quick)")
		duration  = flag.Float64("duration", 0, "simulated seconds per run (default: paper's 100, or 20 with -quick)")
		quick     = flag.Bool("quick", false, "scaled-down options for a fast pass")
		seed      = flag.Uint64("seed", 2004, "root seed")
		workers   = flag.Int("workers", 0, "parallel runs (default GOMAXPROCS)")
		domains   = flag.Int("domains", 0, "per-run region-parallel engine: domains x domains spatial grid (0 = serial)")
		engWork   = flag.Int("engine-workers", 0, "per-run worker goroutines for -domains (results are bit-identical to serial)")
		datDir    = flag.String("dat", "", "also write gnuplot-ready .dat/.txt files into this directory")
		timing    = flag.Bool("timing", false, "report wall-clock duration per experiment on stderr")
		storeDir  = flag.String("store", "", "journal completed runs into this result store directory (see sweepctl)")
		resume    = flag.Bool("resume", false, "reuse runs already journaled in -store instead of refusing a non-empty store")
		shardSpec = flag.String("shard", "", "compute only slice i of n ('i/n'); requires -store, skips figure rendering")
		maxRuns   = flag.Int("maxruns", 0, "stop gracefully after computing this many runs (0 = unlimited); exits 130 like an interrupt")
		retries   = flag.Int("retries", 1, "extra attempts for a run that panics before journaling it as failed")
		workerURL = flag.String("worker", "", "run as a sweep-fleet worker for this coordinator URL (see cmd/sweepd); most other flags are ignored")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Worker mode: the coordinator supplies the options and the task set,
	// so everything but the engine knobs is ignored.
	if *workerURL != "" {
		host, err := os.Hostname()
		if err != nil {
			host = "paperfig"
		}
		w := &fleet.Worker{
			URL:           *workerURL,
			Name:          fmt.Sprintf("%s-%d", host, os.Getpid()),
			Sleep:         time.Sleep, //lint:ignore no-wallclock idle backoff between lease polls; pacing only, never reaches results
			Logf:          log.Printf,
			Domains:       *domains,
			EngineWorkers: *engWork,
		}
		if err := w.Run(); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Resolve -exp against the registry up front: a typo must not start a
	// multi-hour sweep of everything else first.
	var selected []expSpec
	for _, s := range experiments() {
		if *exp == "all" && s.inAll || strings.EqualFold(*exp, s.name) {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		log.Printf("unknown experiment %q", *exp)
		log.Printf("valid experiments: %s, all", strings.Join(allNames, ", "))
		log.Printf("opt-in extras (not in all): %s", strings.Join(optInNames, ", "))
		os.Exit(2)
	}

	// Profiles go to their own files; stdout stays byte-identical whether
	// or not profiling is enabled.
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Fatal(err)
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()

	// Figure output (stdout and -dat files) must be byte-identical across
	// regenerations with the same seed, so no wall-clock value may reach
	// it. Timing is an opt-in progress report on stderr only, read through
	// this injected clock: nil means "don't measure at all", which also
	// keeps the determinism contract grep-ably explicit.
	var clock func() time.Time
	if *timing {
		clock = time.Now //lint:ignore no-wallclock opt-in stderr progress timing; never reaches figure output
	}

	o := experiment.DefaultOptions()
	if *quick {
		o = experiment.QuickOptions()
	}
	if *reps > 0 {
		o.Reps = *reps
	}
	if *duration > 0 {
		o.Duration = *duration
	}
	o.Seed = *seed
	o.Workers = *workers
	o.Domains = *domains
	o.EngineWorkers = *engWork
	o.Retry = *retries

	shard, err := sweep.ParseShard(*shardSpec)
	if err != nil {
		log.Fatal(err)
	}
	o.Shard = shard
	if shard.Active() && *storeDir == "" {
		log.Fatal("-shard requires -store: each shard journals its slice into its own store directory")
	}
	if *resume && *storeDir == "" {
		log.Fatal("-resume requires -store")
	}
	if *storeDir != "" {
		st, err := sweep.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		// Trusting prior records is an explicit opt-in: a non-empty store
		// may hold runs from different options or an older binary, and
		// silently reusing them would be the one way this subsystem could
		// corrupt a figure. (Mismatched options are already fingerprint
		// misses; the gate is for operator intent.)
		if n, err := st.Count(); err != nil {
			log.Fatal(err)
		} else if n > 0 && !*resume {
			log.Fatalf("store %s already holds %d runs; pass -resume to reuse them or choose a fresh directory", *storeDir, n)
		}
		o.Store = st
	}

	// Graceful interrupt: the first SIGINT/SIGTERM stops dispatching new
	// runs; in-flight runs finish and are journaled, then the process
	// exits 130. A second signal aborts immediately.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() { //lint:ignore no-naked-goroutine signal watcher: only sets an atomic drain flag polled by the worker pool
		<-sigc
		interrupted.Store(true)
		log.Print("interrupt: draining in-flight runs (^C again to abort)")
		<-sigc
		os.Exit(130)
	}()

	// The run cap and the signal share the executor's interrupt hook; the
	// computed counter spans every Execute of this invocation.
	var computed atomic.Int64
	o.Interrupt = func() bool {
		return interrupted.Load() || (*maxRuns > 0 && computed.Load() >= int64(*maxRuns))
	}
	o.Progress = progressReporter(&computed, *storeDir != "")

	if *datDir != "" {
		if err := os.MkdirAll(*datDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	save := func(name, content string) {
		if *datDir == "" {
			return
		}
		path := filepath.Join(*datDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	for _, s := range selected {
		var start time.Time
		if clock != nil {
			start = clock()
		}
		err := s.run(o, save)
		switch {
		case errors.Is(err, sweep.ErrInterrupted):
			log.Printf("%s: %v", s.name, err)
			os.Exit(130)
		case errors.Is(err, sweep.ErrPartial):
			// Expected under -shard: the slice is journaled; rendering
			// needs the merged store.
			log.Printf("%s: %v", s.name, err)
		case err != nil:
			log.Fatalf("%s: %v", s.name, err)
		}
		if clock != nil {
			// log prints to stderr, keeping stdout reproducible.
			log.Printf("[%s done in %v]", s.name, clock().Sub(start).Round(time.Millisecond))
		}
	}
	if interrupted.Load() || (*maxRuns > 0 && computed.Load() >= int64(*maxRuns)) {
		os.Exit(130)
	}
}

// progressReporter returns the executor's Progress hook: it counts
// computed runs (the -maxruns budget) and, when a store is active,
// reports done/total, throughput, and ETA on stderr at most every two
// seconds. It is called from worker goroutines and locks accordingly.
func progressReporter(computed *atomic.Int64, report bool) func(done, total int) {
	if !report {
		return func(done, total int) { computed.Add(1) }
	}
	now := time.Now //lint:ignore no-wallclock stderr progress reporting only; never reaches figure output
	var mu sync.Mutex
	last, lastDone := now(), 0
	return func(done, total int) {
		computed.Add(1)
		mu.Lock()
		defer mu.Unlock()
		if done < lastDone {
			lastDone = 0 // a new Execute (new figure) restarted the count
		}
		t := now()
		if t.Sub(last) < 2*time.Second {
			return
		}
		// Windowed throughput: robust across the several Execute calls a
		// multi-figure invocation makes.
		rate := float64(done-lastDone) / t.Sub(last).Seconds()
		last, lastDone = t, done
		if rate <= 0 {
			return
		}
		eta := time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second)
		log.Printf("progress: %d/%d runs (%.0f%%), %.1f runs/s, ETA %v",
			done, total, 100*float64(done)/float64(total), rate, eta)
	}
}
