package main

import (
	"fmt"

	"mstc/internal/channel"
)

// channelFlags are the raw non-ideal-channel flag values. They map onto
// channel.Config in buildChannel, which also validates the combinations a
// flag parser can get wrong before manet's config validation would reject
// them with a less actionable message.
type channelFlags struct {
	Loss      float64 // -loss: per-packet loss probability
	LossModel string  // -loss-model: bernoulli | gilbert
	LossBurst float64 // -loss-burst: Gilbert–Elliott mean burst length
	DelayMin  float64 // -delay-min: minimum per-delivery delay (s)
	DelayMax  float64 // -delay-max: maximum per-delivery delay Δ″ (s)
	Churn     float64 // -churn: expected fraction of nodes down
	Outage    float64 // -churn-outage: mean outage duration (s)
}

// buildChannel turns the flag values into a channel configuration. The
// legacy knobs that overlap with the channel — direct churn (-churn-up /
// -churn-down) and the collision MAC (-txdur) — are passed in so conflicts
// fail here, at flag level, with the flag names in the message.
func (f channelFlags) buildChannel(legacyChurnUp, legacyChurnDown, txDur float64) (channel.Config, error) {
	var cfg channel.Config
	switch f.LossModel {
	case "", "bernoulli":
		if f.LossBurst > 0 {
			return cfg, fmt.Errorf("-loss-burst requires -loss-model gilbert")
		}
		if f.Loss > 0 {
			cfg.Loss = channel.LossConfig{Model: channel.Bernoulli, Rate: f.Loss}
		}
	case "gilbert":
		if f.Loss <= 0 {
			return cfg, fmt.Errorf("-loss-model gilbert requires -loss > 0")
		}
		cfg.Loss = channel.LossConfig{
			Model: channel.GilbertElliott, Rate: f.Loss, MeanBurst: f.LossBurst,
		}
	default:
		return cfg, fmt.Errorf("unknown -loss-model %q (want bernoulli or gilbert)", f.LossModel)
	}
	if f.DelayMax > 0 || f.DelayMin > 0 {
		if txDur > 0 {
			return cfg, fmt.Errorf("-delay-max and -txdur are mutually exclusive (one timing model at a time)")
		}
		cfg.Delay = channel.DelayConfig{Min: f.DelayMin, Max: f.DelayMax}
	}
	if f.Churn > 0 {
		if legacyChurnUp > 0 || legacyChurnDown > 0 {
			return cfg, fmt.Errorf("-churn conflicts with -churn-up/-churn-down (pick one churn interface)")
		}
		if f.Churn >= 1 {
			return cfg, fmt.Errorf("-churn %g is an expected down fraction, want (0, 1)", f.Churn)
		}
		outage := f.Outage
		if outage <= 0 {
			outage = 2
		}
		cfg.Churn = channel.ChurnConfig{
			MeanUp:   outage * (1 - f.Churn) / f.Churn,
			MeanDown: outage,
		}
	} else if f.Outage > 0 {
		return cfg, fmt.Errorf("-churn-outage requires -churn > 0")
	}
	return cfg, cfg.Validate()
}
