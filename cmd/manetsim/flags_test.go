package main

import (
	"strings"
	"testing"

	"mstc/internal/channel"
)

func TestBuildChannelValid(t *testing.T) {
	cases := []struct {
		name string
		f    channelFlags
		want func(channel.Config) bool
	}{
		{"ideal", channelFlags{}, func(c channel.Config) bool { return !c.Enabled() }},
		{"bernoulli", channelFlags{Loss: 0.2}, func(c channel.Config) bool {
			return c.Loss.Model == channel.Bernoulli && c.Loss.Rate == 0.2 //lint:ignore float-eq flag value passed through unchanged
		}},
		{"explicit bernoulli", channelFlags{Loss: 0.2, LossModel: "bernoulli"}, func(c channel.Config) bool {
			return c.Loss.Model == channel.Bernoulli
		}},
		{"gilbert", channelFlags{Loss: 0.3, LossModel: "gilbert", LossBurst: 5}, func(c channel.Config) bool {
			return c.Loss.Model == channel.GilbertElliott && c.Loss.MeanBurst == 5 //lint:ignore float-eq flag value passed through unchanged
		}},
		{"delay", channelFlags{DelayMin: 0.01, DelayMax: 0.5}, func(c channel.Config) bool {
			return c.Delay.Enabled() && c.Delay.Min == 0.01 && c.Delay.Max == 0.5 //lint:ignore float-eq flag values passed through unchanged
		}},
		{"churn default outage", channelFlags{Churn: 0.5}, func(c channel.Config) bool {
			// Expected down fraction 1/2 with the 2 s default outage → 2 s up.
			return c.Churn.MeanUp == 2 && c.Churn.MeanDown == 2 //lint:ignore float-eq exact arithmetic on flag values
		}},
		{"churn custom outage", channelFlags{Churn: 0.25, Outage: 4}, func(c channel.Config) bool {
			return c.Churn.MeanUp == 12 && c.Churn.MeanDown == 4 //lint:ignore float-eq exact arithmetic on flag values
		}},
	}
	for _, tc := range cases {
		cfg, err := tc.f.buildChannel(0, 0, 0)
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
			continue
		}
		if !tc.want(cfg) {
			t.Errorf("%s: unexpected config %+v", tc.name, cfg)
		}
	}
}

func TestBuildChannelConflicts(t *testing.T) {
	cases := []struct {
		name                    string
		f                       channelFlags
		churnUp, churnDn, txDur float64
		wantErr                 string
	}{
		{"burst without gilbert", channelFlags{Loss: 0.2, LossBurst: 5}, 0, 0, 0, "-loss-burst"},
		{"gilbert without loss", channelFlags{LossModel: "gilbert"}, 0, 0, 0, "-loss > 0"},
		{"unknown model", channelFlags{Loss: 0.1, LossModel: "markov"}, 0, 0, 0, "loss-model"},
		{"delay vs txdur", channelFlags{DelayMax: 0.1}, 0, 0, 0.001, "-txdur"},
		{"channel vs legacy churn", channelFlags{Churn: 0.2}, 10, 2, 0, "-churn-up"},
		{"churn fraction too big", channelFlags{Churn: 1}, 0, 0, 0, "fraction"},
		{"outage without churn", channelFlags{Outage: 2}, 0, 0, 0, "-churn-outage"},
		{"loss rate over 1", channelFlags{Loss: 1.5}, 0, 0, 0, "rate"},
		{"negative delay min", channelFlags{DelayMin: -0.1, DelayMax: 0.5}, 0, 0, 0, "delay"},
	}
	for _, tc := range cases {
		_, err := tc.f.buildChannel(tc.churnUp, tc.churnDn, tc.txDur)
		if err == nil {
			t.Errorf("%s: no error, want one mentioning %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
