// Command manetsim runs a single mobility-sensitive topology-control
// simulation and prints its metrics.
//
// Examples:
//
//	manetsim -protocol RNG -speed 40 -duration 100
//	manetsim -protocol MST -speed 160 -buffer 100 -pn
//	manetsim -protocol RNG -speed 40 -buffer 10 -viewsync
//	manetsim -protocol RNG -speed 20 -weak 3
//	manetsim -protocol SPT-2 -speed 40 -reactive -buffer 10
//	manetsim -protocol MST -speed 20 -proactive -buffer 30
//	manetsim -protocol RNG -replay scenario.txt  # replay a recorded trace
//	manetsim -record scenario.txt -speed 40      # record a mobility trace
//
// Routed CBR traffic (AODV on-demand / OLSR proactive, replaces flooding):
//
//	manetsim -protocol RNG -speed 20 -traffic aodv -buffer 10 -viewsync
//	manetsim -protocol none -traffic olsr -traffic-flows 16 -traffic-rate 4
//
// Non-ideal channel (loss, delay, churn fault injection):
//
//	manetsim -protocol RNG -speed 40 -loss 0.2                     # i.i.d. loss
//	manetsim -protocol RNG -loss 0.2 -loss-model gilbert           # bursty loss
//	manetsim -protocol MST -delay-max 0.5 -buffer 40 -settle 2     # delayed Hellos
//	manetsim -protocol RNG -churn 0.25 -churn-outage 2             # node crashes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/profiling"
	"mstc/internal/radio"
	"mstc/internal/topology"
	"mstc/internal/trace"
	"mstc/internal/traffic"
	"mstc/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manetsim: ")

	// Graceful interrupt: a single simulation run is the unit of work, so
	// the first SIGINT/SIGTERM lets the in-flight run finish and print its
	// metrics (and close any -record file cleanly), then the process exits
	// 130. A second signal aborts immediately instead of killing mid-write.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() { //lint:ignore no-naked-goroutine signal watcher: only sets an atomic flag checked after the run completes
		<-sigc
		interrupted.Store(true)
		log.Print("interrupt: finishing the in-flight run (^C again to abort)")
		<-sigc
		os.Exit(130)
	}()
	defer func() {
		if interrupted.Load() {
			os.Exit(130)
		}
	}()

	var (
		protocolName = flag.String("protocol", "RNG", "protocol: MST, RNG, GG, SPT-2, SPT-4, Yao-6, none")
		n            = flag.Int("n", 100, "number of nodes")
		side         = flag.Float64("arena", 900, "square arena side (m)")
		normalRange  = flag.Float64("range", 250, "normal transmission range (m)")
		speed        = flag.Float64("speed", 20, "average moving speed (m/s); per-leg speeds are uniform in (0, 2*speed]")
		modelName    = flag.String("model", "waypoint", "mobility model: waypoint, walk, direction, gaussmarkov, static")
		pause        = flag.Float64("pause", 0, "waypoint pause time (s)")
		duration     = flag.Float64("duration", 100, "simulated seconds")
		buffer       = flag.Float64("buffer", 0, "buffer-zone width (m)")
		viewSync     = flag.Bool("viewsync", false, "enable view synchronization")
		pn           = flag.Bool("pn", false, "enable the physical-neighbor mechanism")
		weakK        = flag.Int("weak", 0, "weak-consistency selection over K recent Hello messages (0 = off)")
		reactive     = flag.Bool("reactive", false, "reactive strong consistency (synchronized Hello rounds)")
		proactive    = flag.Bool("proactive", false, "proactive strong consistency (version-pinned packet views)")
		prune        = flag.Bool("prune", false, "self-pruning broadcast (skip fully covered forwards)")
		cdsFwd       = flag.Bool("cds", false, "CDS-gateway forwarding (implies -pn)")
		floodRate    = flag.Float64("floods", 10, "connectivity probes per second")
		floodSettle  = flag.Float64("settle", 0, "flood scoring deadline (s); 0 = default 0.5; raise under -delay-max")
		unicastRate  = flag.Float64("unicast", 0, "greedy unicast probes per second (replaces flooding when > 0)")
		trafficMode  = flag.String("traffic", "", "routed CBR traffic: aodv or olsr (replaces flooding when set)")
		trafficFlows = flag.Int("traffic-flows", 0, "concurrent CBR flows (default 8)")
		trafficRate  = flag.Float64("traffic-rate", 0, "CBR packets per second per flow (default 2)")
		trafficPkts  = flag.Int("traffic-packets", 0, "per-flow packet budget (0 = unlimited)")
		epidemicWin  = flag.Float64("epidemic", 0, "epidemic delivery window in seconds (replaces flooding when > 0)")
		lossRate     = flag.Float64("loss", 0, "channel per-packet loss probability")
		lossModel    = flag.String("loss-model", "", "loss model: bernoulli (default) or gilbert (bursty)")
		lossBurst    = flag.Float64("loss-burst", 0, "Gilbert-Elliott mean burst length in packets (default 8)")
		delayMin     = flag.Float64("delay-min", 0, "minimum per-delivery channel delay (s)")
		delayMax     = flag.Float64("delay-max", 0, "maximum per-delivery channel delay (s); > 0 enables delayed delivery")
		churnFrac    = flag.Float64("churn", 0, "channel churn: expected fraction of nodes down, in (0, 1)")
		churnOutage  = flag.Float64("churn-outage", 0, "channel churn mean outage duration (s, default 2)")
		posNoise     = flag.Float64("noise", 0, "advertised-position noise std-dev (m)")
		txDur        = flag.Float64("txdur", 0, "per-packet airtime (s); > 0 enables the collision MAC")
		seed         = flag.Uint64("seed", 1, "random seed")
		snapshotDt   = flag.Float64("snapshots", 0, "strict-connectivity snapshot period (s); 0 = off")
		domains      = flag.Int("domains", 0, "region-parallel engine: domains x domains spatial grid (0 = serial engine)")
		workers      = flag.Int("workers", 0, "region-parallel worker goroutines (requires -domains); results are bit-identical to serial")
		engWorkers   = flag.Int("engine-workers", 0, "alias for -workers, matching paperfig's spelling (there -workers means run-level parallelism)")
		churnUp      = flag.Float64("churn-up", 0, "mean node up-time (s); with -churn-down, enables failure injection")
		churnDown    = flag.Float64("churn-down", 0, "mean node outage (s)")
		recordPath   = flag.String("record", "", "record the mobility trace to this file and exit")
		replayPath   = flag.String("replay", "", "replay a recorded mobility trace instead of random waypoint")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// -engine-workers is a strict alias for -workers: either spelling works,
	// but conflicting values are an error rather than a silent preference.
	if *engWorkers != 0 {
		if *workers != 0 && *workers != *engWorkers {
			log.Fatalf("conflicting -workers=%d and -engine-workers=%d (they are aliases)", *workers, *engWorkers)
		}
		*workers = *engWorkers
	}

	// Profiles go to their own files; stdout stays byte-identical whether
	// or not profiling is enabled.
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Fatal(err)
		}
	}()
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()

	var model mobility.Model
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		model = tr
	} else {
		m, err := buildModel(*modelName, geom.Square(*side), *n, *speed, *pause, *duration, xrand.New(*seed))
		if err != nil {
			log.Fatal(err)
		}
		model = m
	}

	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Record(f, model, 0.1); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d-node %.0f s trace to %s\n", model.N(), model.Horizon(), *recordPath)
		return
	}

	chCfg, err := channelFlags{
		Loss: *lossRate, LossModel: *lossModel, LossBurst: *lossBurst,
		DelayMin: *delayMin, DelayMax: *delayMax,
		Churn: *churnFrac, Outage: *churnOutage,
	}.buildChannel(*churnUp, *churnDown, *txDur)
	if err != nil {
		log.Fatal(err)
	}

	cfg := manet.Config{
		NormalRange: *normalRange,
		FloodRate:   *floodRate,
		FloodSettle: *floodSettle,
		Radio:       radio.Config{TxDuration: *txDur},
		Channel:     chCfg,
		Seed:        *seed,
		Mech: manet.Mechanisms{
			Buffer:            *buffer,
			ViewSync:          *viewSync,
			PhysicalNeighbors: *pn,
			WeakK:             *weakK,
			Reactive:          *reactive,
			Proactive:         *proactive,
			SelfPruning:       *prune,
			CDSForward:        *cdsFwd,
		},
		SnapshotEvery:   *snapshotDt,
		Churn:           manet.ChurnConfig{MeanUp: *churnUp, MeanDown: *churnDown},
		PosNoise:        *posNoise,
		Domains:         *domains,
		ParallelWorkers: *workers,
	}
	if *weakK > 0 {
		w, err := topology.WeakByName(*protocolName, *normalRange)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Weak = w
	} else {
		p, err := topology.ByName(*protocolName, *normalRange)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Protocol = p
	}

	if *cdsFwd {
		cfg.Mech.PhysicalNeighbors = true
	}
	if *trafficMode != "" {
		mode, err := traffic.ModeByName(*trafficMode)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Traffic = traffic.Config{
			Mode:    mode,
			Flows:   *trafficFlows,
			Rate:    *trafficRate,
			Packets: *trafficPkts,
		}
		cfg.FloodRate = 0
	}
	if *unicastRate > 0 || *epidemicWin > 0 {
		cfg.FloodRate = 0
	}
	nw, err := manet.NewNetwork(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *unicastRate > 0 {
		ures, err := nw.RunUnicast(*duration, manet.UnicastConfig{Rate: *unicastRate})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unicast delivered   %.4f  (%d probes, %.1f avg hops)\n", ures.Delivered, ures.Probes, ures.AvgHops)
		fmt.Printf("failures            %d local minima, %d range failures\n", ures.LocalMinima, ures.RangeFailures)
		return
	}
	if *epidemicWin > 0 {
		eres, err := nw.RunEpidemic(*duration, manet.EpidemicConfig{Window: *epidemicWin, Messages: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epidemic delivered  %.4f within %gs  (mean delay %.2fs, %d messages)\n",
			eres.Delivered, *epidemicWin, eres.MeanDelay, eres.Messages)
		return
	}
	res := nw.Run(*duration)

	if *trafficMode != "" {
		tr := res.Traffic
		fmt.Printf("protocol            %s\n", res.Protocol)
		fmt.Printf("traffic             %s  %.4f delivered (%d/%d packets)\n",
			tr.Mode, tr.DeliveryRatio, tr.Delivered, tr.Sent)
		fmt.Printf("latency             %.3f s avg, %.2f avg hops\n", tr.AvgDelay, tr.AvgHops)
		fmt.Printf("routing overhead    %.2f control tx per delivered (%d RREQ, %d RREP, %d RERR, %d TC)\n",
			tr.ControlPerData, tr.RREQTx, tr.RREPTx, tr.RERRTx, tr.TCTx)
		fmt.Printf("overhead            %d hello tx, %d data tx\n", res.HelloTx, tr.DataTx)
		return
	}

	fmt.Printf("protocol            %s\n", res.Protocol)
	fmt.Printf("mechanisms          buffer=%gm viewsync=%v pn=%v weakK=%d reactive=%v proactive=%v\n",
		*buffer, *viewSync, *pn, *weakK, *reactive, *proactive)
	fmt.Printf("connectivity ratio  %.4f  (%d floods)\n", res.Connectivity, res.Floods)
	fmt.Printf("avg tx range        %.1f m\n", res.AvgTxRange)
	fmt.Printf("avg logical degree  %.2f\n", res.AvgLogicalDegree)
	fmt.Printf("avg physical degree %.2f\n", res.AvgPhysicalDegree)
	fmt.Printf("overhead            %d hello tx, %d data tx\n", res.HelloTx, res.DataTx)
	if res.DataTx > 0 {
		fmt.Printf("energy              %.3f per data tx (1.0 = full power), %.0f hello units\n",
			res.DataEnergy/float64(res.DataTx), res.HelloEnergy)
	}
	if res.Snapshots > 0 {
		fmt.Printf("snapshot (strict)   %.4f  (%d snapshots)\n", res.SnapshotConnectivity, res.Snapshots)
	}
}

// buildModel constructs the requested mobility model with speeds scaled
// around the given average.
func buildModel(name string, arena geom.Rect, n int, speed, pause, horizon float64, rng *xrand.Source) (mobility.Model, error) {
	lo, hi := mobility.SpeedSetdest(speed)
	switch name {
	case "waypoint":
		return mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
			N: n, SpeedMin: lo, SpeedMax: hi, Pause: pause, Horizon: horizon,
		}, rng)
	case "walk":
		return mobility.NewRandomWalk(arena, mobility.WalkConfig{
			N: n, SpeedMin: lo, SpeedMax: hi, Epoch: 5, Horizon: horizon,
		}, rng)
	case "direction":
		min, max := mobility.SpeedAround(speed) // direction model needs positive speeds
		return mobility.NewRandomDirection(arena, mobility.DirectionConfig{
			N: n, SpeedMin: min, SpeedMax: max, Pause: pause, Horizon: horizon,
		}, rng)
	case "gaussmarkov":
		return mobility.NewGaussMarkov(arena, mobility.GaussMarkovConfig{
			N: n, MeanSpeed: speed, SpeedSigma: speed / 4, DirSigma: 0.3, Alpha: 0.85, Horizon: horizon,
		}, rng)
	case "static":
		return mobility.NewStaticUniform(arena, n, horizon, rng), nil
	}
	return nil, fmt.Errorf("unknown mobility model %q", name)
}
