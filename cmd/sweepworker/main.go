// Command sweepworker is a thin sweep-fleet worker: it fetches the job
// spec from a sweepd coordinator, verifies the options fingerprint
// against its own binary, then leases, computes, and posts back runs
// until the sweep completes. It keeps no local state — kill it at any
// time and its leased work is stolen after the lease TTL.
//
//	sweepd -exp fig6 -quick -store runs/ &
//	sweepworker -url http://127.0.0.1:7070 -name $(hostname)
//
// paperfig -worker <url> does the same inside the main binary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mstc/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepworker: ")

	var (
		url     = flag.String("url", "", "coordinator base URL (required), e.g. http://127.0.0.1:7070")
		name    = flag.String("name", "", "worker name for status/events (default host-pid)")
		domains = flag.Int("domains", 0, "per-run region-parallel engine: domains x domains spatial grid (0 = serial)")
		engWork = flag.Int("engine-workers", 0, "per-run worker goroutines for -domains (results are bit-identical to serial)")
	)
	flag.Parse()
	if *url == "" {
		log.Print("-url is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w := &fleet.Worker{
		URL:           *url,
		Name:          *name,
		Sleep:         time.Sleep, //lint:ignore no-wallclock idle backoff between lease polls; pacing only, never reaches results
		Logf:          log.Printf,
		Domains:       *domains,
		EngineWorkers: *engWork,
	}
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
}
