// Command topoviz renders a topology-control snapshot as SVG: the original
// unit-disk topology underneath the logical topology a protocol selects,
// with optional transmission-range disks.
//
// Examples:
//
//	topoviz -protocol RNG -o rng.svg
//	topoviz -protocol MST -buffer 30 -ranges -o mst.svg
//	topoviz -protocol GG -speed 20 -at 50 -o gg_t50.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
	"mstc/internal/viz"
	"mstc/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoviz: ")

	var (
		protocolName = flag.String("protocol", "RNG", "protocol: MST, RNG, GG, SPT-2, SPT-4, Yao-6, CBTC, KNeigh-9, none")
		n            = flag.Int("n", 100, "number of nodes")
		side         = flag.Float64("arena", 900, "square arena side (m)")
		normalRange  = flag.Float64("range", 250, "normal transmission range (m)")
		speed        = flag.Float64("speed", 0, "average moving speed (m/s); 0 = static placement")
		at           = flag.Float64("at", 0, "snapshot instant (s) when -speed > 0")
		buffer       = flag.Float64("buffer", 0, "buffer-zone width (m)")
		showRanges   = flag.Bool("ranges", false, "draw transmission-range disks")
		showOriginal = flag.Bool("original", true, "draw the original (unit-disk) topology underneath")
		seed         = flag.Uint64("seed", 1, "random seed")
		out          = flag.String("o", "topology.svg", "output SVG path")
	)
	flag.Parse()

	p, err := topology.ByName(*protocolName, *normalRange)
	if err != nil {
		log.Fatal(err)
	}
	arena := geom.Square(*side)

	var pts []geom.Point
	if *speed > 0 {
		lo, hi := mobility.SpeedSetdest(*speed)
		horizon := *at + 1
		m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
			N: *n, SpeedMin: lo, SpeedMax: hi, Horizon: horizon,
		}, xrand.New(*seed))
		if err != nil {
			log.Fatal(err)
		}
		pts = make([]geom.Point, *n)
		for i := range pts {
			pts[i] = m.PositionAt(i, *at)
		}
	} else {
		pts = mobility.UniformPoints(arena, *n, xrand.New(*seed))
	}

	sel := snapshot.Selections(pts, p, *normalRange)
	logical := snapshot.Logical(pts, sel)
	scene := viz.Scene{
		Arena:  arena,
		Points: pts,
		Title:  fmt.Sprintf("%s logical topology (%d links)", p.Name(), logical.M()),
	}
	if *showOriginal {
		scene.Layers = append(scene.Layers, viz.Layer{
			Name:  "original (unit disk)",
			Edges: snapshot.Original(pts, *normalRange).Edges(),
			Color: "#dddddd",
		})
	}
	scene.Layers = append(scene.Layers, viz.Layer{
		Name:  p.Name(),
		Edges: logical.Edges(),
		Color: "#cc3344",
		Width: 3,
	})
	if *showRanges {
		scene.Ranges = snapshot.Ranges(pts, sel, *buffer, *normalRange)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := scene.Render(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d nodes, %d logical links)\n", *out, len(pts), logical.M())
}
