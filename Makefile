# Development entry points. `make check` is the CI gate: build, go vet,
# manetlint (the project's determinism analyzers), the test suite, and the
# test suite again under the race detector.

GO ?= go

.PHONY: build test race vet lint lint-json check bench bench-compare faults-smoke resume-smoke parallel-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full analyzer suite over the whole module (cmd/ included), gated on the
# committed baseline: only findings whose IDs are not recorded in
# lint.baseline.json fail. Regenerate the baseline (after review!) with
#   go run ./cmd/manetlint -write-baseline lint.baseline.json ./...
lint:
	$(GO) run ./cmd/manetlint -baseline lint.baseline.json ./...

# Same run, rendered as a JSON findings report (position-stable IDs, scope,
# baselined marks). CI uploads this next to the benchmark report.
lint-json:
	$(GO) run ./cmd/manetlint -json -baseline lint.baseline.json ./... > manetlint.json

# One iteration of every benchmark (smoke pass), rendered to BENCH.json by
# cmd/benchreport. CI runs this and uploads the report as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee /dev/stderr | $(GO) run ./cmd/benchreport -o BENCH.json

# Tiny deterministic fault-injection sweep: the loss/delay/churn and
# buffer-zone experiments at smoke scale, run twice and compared — any
# nondeterminism in the non-ideal channel path fails the diff.
faults-smoke:
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_a.txt
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_b.txt
	cmp /tmp/faults_a.txt /tmp/faults_b.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_a.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_b.txt
	cmp /tmp/bufzone_a.txt /tmp/bufzone_b.txt

# Checkpoint / shard determinism smoke. A quick sweep is interrupted
# halfway (-maxruns caps computed runs and drains exactly like SIGINT,
# exiting 130), resumed from its store, and the resumed output is
# byte-compared against an uninterrupted run. The same sweep computed as
# two disjoint shards and merged with sweepctl must render the identical
# bytes, with every record checksum verifying. Binaries are built first:
# `go run` collapses the child's exit code to 1, and the 130 is asserted.
SMOKE := /tmp/mstc_resume_smoke
PFLAGS := -exp fig6 -quick -reps 2 -duration 8
resume-smoke:
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) build -o $(SMOKE)/paperfig ./cmd/paperfig
	$(GO) build -o $(SMOKE)/sweepctl ./cmd/sweepctl
	$(SMOKE)/paperfig $(PFLAGS) > $(SMOKE)/direct.txt
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/store -maxruns 7; test $$? -eq 130
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/store -resume > $(SMOKE)/resumed.txt
	cmp $(SMOKE)/direct.txt $(SMOKE)/resumed.txt
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/shard0 -shard 0/2
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/shard1 -shard 1/2
	$(SMOKE)/sweepctl merge -into $(SMOKE)/merged $(SMOKE)/shard0 $(SMOKE)/shard1
	$(SMOKE)/sweepctl verify $(SMOKE)/store $(SMOKE)/merged
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/merged -resume > $(SMOKE)/merged.txt
	cmp $(SMOKE)/direct.txt $(SMOKE)/merged.txt

# Region-parallel engine smoke: the same quick figure sweep on the serial
# engine and on the domain-decomposed engine (2x2 domains, 4 workers) must
# render byte-identical output — once on the ideal channel and once on the
# faulty-channel sweep (bursty loss + delayed delivery + churn), which
# exercises the parallel loss-chain, delivery-heap, and re-homing paths end
# to end. The in-process digest matrix (manet's
# TestParallelMatchesSerialMatrix, run by `make test`/`race`) is the deep
# check; this one proves the end-to-end CLI plumbing.
FAULTFLAGS := -exp faults -quick -reps 2 -duration 8
parallel-smoke:
	$(GO) run ./cmd/paperfig $(PFLAGS) > /tmp/par_serial.txt
	$(GO) run ./cmd/paperfig $(PFLAGS) -domains 2 -engine-workers 4 > /tmp/par_domains.txt
	cmp /tmp/par_serial.txt /tmp/par_domains.txt
	$(GO) run ./cmd/paperfig $(FAULTFLAGS) > /tmp/par_faults_serial.txt
	$(GO) run ./cmd/paperfig $(FAULTFLAGS) -domains 2 -engine-workers 4 > /tmp/par_faults_domains.txt
	cmp /tmp/par_faults_serial.txt /tmp/par_faults_domains.txt

# Gate the hot path against the committed baseline trajectory: three
# repetitions of BenchmarkSingleRun, compared by minimum ns/op; fails on a
# >30 % regression. Override the reference with BASELINE=BENCH_1.json etc.
BASELINE ?= BENCH_7.json
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkSingleRun$$' -count 3 . | tee /dev/stderr | \
		$(GO) run ./cmd/benchreport -baseline $(BASELINE) -gate BenchmarkSingleRun -o /dev/null

check: build vet lint test race
