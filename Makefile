# Development entry points. `make check` is the CI gate: build, go vet,
# manetlint (the project's determinism analyzers), the test suite, and the
# test suite again under the race detector.

GO ?= go

.PHONY: build test race vet lint check bench bench-compare faults-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/manetlint ./...

# One iteration of every benchmark (smoke pass), rendered to BENCH.json by
# cmd/benchreport. CI runs this and uploads the report as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee /dev/stderr | $(GO) run ./cmd/benchreport -o BENCH.json

# Tiny deterministic fault-injection sweep: the loss/delay/churn and
# buffer-zone experiments at smoke scale, run twice and compared — any
# nondeterminism in the non-ideal channel path fails the diff.
faults-smoke:
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_a.txt
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_b.txt
	cmp /tmp/faults_a.txt /tmp/faults_b.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_a.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_b.txt
	cmp /tmp/bufzone_a.txt /tmp/bufzone_b.txt

# Gate the hot path against the committed baseline trajectory: three
# repetitions of BenchmarkSingleRun, compared by minimum ns/op; fails on a
# >30 % regression. Override the reference with BASELINE=BENCH_1.json etc.
BASELINE ?= BENCH_3.json
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkSingleRun$$' -count 3 . | tee /dev/stderr | \
		$(GO) run ./cmd/benchreport -baseline $(BASELINE) -gate BenchmarkSingleRun -o /dev/null

check: build vet lint test race
