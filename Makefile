# Development entry points. `make check` is the CI gate: build, go vet,
# manetlint (the project's determinism analyzers), the test suite, and the
# test suite again under the race detector.

GO ?= go

.PHONY: build test race vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/manetlint ./...

check: build vet lint test race
