# Development entry points. `make check` is the CI gate: build, go vet,
# manetlint (the project's determinism analyzers), the test suite, and the
# test suite again under the race detector.

GO ?= go

.PHONY: build test race vet lint lint-json check bench bench-compare faults-smoke resume-smoke parallel-smoke fleet-smoke traffic-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full analyzer suite over the whole module (cmd/ included), gated on the
# committed baseline: only findings whose IDs are not recorded in
# lint.baseline.json fail. Regenerate the baseline (after review!) with
#   go run ./cmd/manetlint -write-baseline lint.baseline.json ./...
lint:
	$(GO) run ./cmd/manetlint -baseline lint.baseline.json ./...

# Same run, rendered as a JSON findings report (position-stable IDs, scope,
# baselined marks). CI uploads this next to the benchmark report.
lint-json:
	$(GO) run ./cmd/manetlint -json -baseline lint.baseline.json ./... > manetlint.json

# One iteration of every benchmark (smoke pass), rendered to BENCH.json by
# cmd/benchreport. CI runs this and uploads the report as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee /dev/stderr | $(GO) run ./cmd/benchreport -o BENCH.json

# Tiny deterministic fault-injection sweep: the loss/delay/churn and
# buffer-zone experiments at smoke scale, run twice and compared — any
# nondeterminism in the non-ideal channel path fails the diff.
faults-smoke:
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_a.txt
	$(GO) run ./cmd/paperfig -exp faults -quick -reps 2 -duration 8 > /tmp/faults_b.txt
	cmp /tmp/faults_a.txt /tmp/faults_b.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_a.txt
	$(GO) run ./cmd/paperfig -exp bufferzone -quick -reps 2 -duration 8 > /tmp/bufzone_b.txt
	cmp /tmp/bufzone_a.txt /tmp/bufzone_b.txt

# Checkpoint / shard determinism smoke. A quick sweep is interrupted
# halfway (-maxruns caps computed runs and drains exactly like SIGINT,
# exiting 130), resumed from its store, and the resumed output is
# byte-compared against an uninterrupted run. The same sweep computed as
# two disjoint shards and merged with sweepctl must render the identical
# bytes, with every record checksum verifying. Binaries are built first:
# `go run` collapses the child's exit code to 1, and the 130 is asserted.
SMOKE := /tmp/mstc_resume_smoke
PFLAGS := -exp fig6 -quick -reps 2 -duration 8
resume-smoke:
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) build -o $(SMOKE)/paperfig ./cmd/paperfig
	$(GO) build -o $(SMOKE)/sweepctl ./cmd/sweepctl
	$(SMOKE)/paperfig $(PFLAGS) > $(SMOKE)/direct.txt
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/store -maxruns 7; test $$? -eq 130
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/store -resume > $(SMOKE)/resumed.txt
	cmp $(SMOKE)/direct.txt $(SMOKE)/resumed.txt
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/shard0 -shard 0/2
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/shard1 -shard 1/2
	$(SMOKE)/sweepctl merge -into $(SMOKE)/merged $(SMOKE)/shard0 $(SMOKE)/shard1
	$(SMOKE)/sweepctl verify $(SMOKE)/store $(SMOKE)/merged
	$(SMOKE)/paperfig $(PFLAGS) -store $(SMOKE)/merged -resume > $(SMOKE)/merged.txt
	cmp $(SMOKE)/direct.txt $(SMOKE)/merged.txt

# Region-parallel engine smoke: the same quick figure sweep on the serial
# engine and on the domain-decomposed engine (2x2 domains, 4 workers) must
# render byte-identical output — once on the ideal channel and once on the
# faulty-channel sweep (bursty loss + delayed delivery + churn), which
# exercises the parallel loss-chain, delivery-heap, and re-homing paths end
# to end. The in-process digest matrix (manet's
# TestParallelMatchesSerialMatrix, run by `make test`/`race`) is the deep
# check; this one proves the end-to-end CLI plumbing.
FAULTFLAGS := -exp faults -quick -reps 2 -duration 8
parallel-smoke:
	$(GO) run ./cmd/paperfig $(PFLAGS) > /tmp/par_serial.txt
	$(GO) run ./cmd/paperfig $(PFLAGS) -domains 2 -engine-workers 4 > /tmp/par_domains.txt
	cmp /tmp/par_serial.txt /tmp/par_domains.txt
	$(GO) run ./cmd/paperfig $(FAULTFLAGS) > /tmp/par_faults_serial.txt
	$(GO) run ./cmd/paperfig $(FAULTFLAGS) -domains 2 -engine-workers 4 > /tmp/par_faults_domains.txt
	cmp /tmp/par_faults_serial.txt /tmp/par_faults_domains.txt

# Distributed-sweep smoke: a sweepd coordinator hands the same quick fig6
# sweep to two sweepworkers over HTTP; one worker is SIGKILLed mid-lease
# (its leased tasks are stolen after -lease-ttl and recomputed by the
# survivor), and the finished fleet store must be sha256-identical,
# record for record, to a single-process `paperfig -store` sweep — the
# lease/steal/duplicate machinery may cost time but never bytes.
FLEET := /tmp/mstc_fleet_smoke
fleet-smoke:
	rm -rf $(FLEET) && mkdir -p $(FLEET)
	$(GO) build -o $(FLEET)/sweepd ./cmd/sweepd
	$(GO) build -o $(FLEET)/sweepworker ./cmd/sweepworker
	$(GO) build -o $(FLEET)/paperfig ./cmd/paperfig
	set -e; \
	$(FLEET)/sweepd $(PFLAGS) -store $(FLEET)/fleet -addr 127.0.0.1:0 \
		-addr-file $(FLEET)/addr -lease-ttl 3s -exit-on-done 2> $(FLEET)/sweepd.log & \
	SWEEPD=$$!; \
	for i in $$(seq 100); do test -s $(FLEET)/addr && break; sleep 0.1; done; \
	ADDR=$$(cat $(FLEET)/addr); \
	$(FLEET)/sweepworker -url http://$$ADDR -name doomed 2> $(FLEET)/doomed.log & \
	DOOMED=$$!; \
	sleep 0.4; kill -9 $$DOOMED 2> /dev/null || true; \
	$(FLEET)/sweepworker -url http://$$ADDR -name survivor 2> $(FLEET)/survivor.log & \
	SURVIVOR=$$!; \
	wait $$SWEEPD; \
	wait $$SURVIVOR
	$(FLEET)/paperfig $(PFLAGS) -store $(FLEET)/direct > /dev/null
	cd $(FLEET)/fleet  && find runs -type f | sort | xargs sha256sum > $(FLEET)/fleet.sum
	cd $(FLEET)/direct && find runs -type f | sort | xargs sha256sum > $(FLEET)/direct.sum
	cmp $(FLEET)/fleet.sum $(FLEET)/direct.sum

# Traffic-subsystem smoke: the routing comparison (AODV/OLSR CBR flows
# over controlled vs unit-disk topology) run twice and byte-compared —
# any nondeterminism in route discovery, TC flooding, or flow scheduling
# fails the diff. The second leg computes the same task set through a
# sweepd coordinator and one worker; the fleet store must be
# sha256-identical, record for record, to a single-process sweep.
TRAFFIC := /tmp/mstc_traffic_smoke
TRAFFLAGS := -exp traffic -quick -reps 2 -duration 8
traffic-smoke:
	rm -rf $(TRAFFIC) && mkdir -p $(TRAFFIC)
	$(GO) build -o $(TRAFFIC)/sweepd ./cmd/sweepd
	$(GO) build -o $(TRAFFIC)/sweepworker ./cmd/sweepworker
	$(GO) build -o $(TRAFFIC)/paperfig ./cmd/paperfig
	$(TRAFFIC)/paperfig $(TRAFFLAGS) > $(TRAFFIC)/a.txt
	$(TRAFFIC)/paperfig $(TRAFFLAGS) > $(TRAFFIC)/b.txt
	cmp $(TRAFFIC)/a.txt $(TRAFFIC)/b.txt
	set -e; \
	$(TRAFFIC)/sweepd $(TRAFFLAGS) -store $(TRAFFIC)/fleet -addr 127.0.0.1:0 \
		-addr-file $(TRAFFIC)/addr -lease-ttl 3s -exit-on-done 2> $(TRAFFIC)/sweepd.log & \
	SWEEPD=$$!; \
	for i in $$(seq 100); do test -s $(TRAFFIC)/addr && break; sleep 0.1; done; \
	ADDR=$$(cat $(TRAFFIC)/addr); \
	$(TRAFFIC)/sweepworker -url http://$$ADDR -name smoke 2> $(TRAFFIC)/worker.log & \
	WORKER=$$!; \
	wait $$SWEEPD; \
	wait $$WORKER
	$(TRAFFIC)/paperfig $(TRAFFLAGS) -store $(TRAFFIC)/direct > /dev/null
	cd $(TRAFFIC)/fleet  && find runs -type f | sort | xargs sha256sum > $(TRAFFIC)/fleet.sum
	cd $(TRAFFIC)/direct && find runs -type f | sort | xargs sha256sum > $(TRAFFIC)/direct.sum
	cmp $(TRAFFIC)/fleet.sum $(TRAFFIC)/direct.sum

# Gate the hot path against the committed baseline trajectory: three
# repetitions of BenchmarkSingleRun, compared by minimum ns/op; fails on a
# >30 % regression. Override the reference with BASELINE=BENCH_1.json etc.
BASELINE ?= BENCH_8.json
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkSingleRun$$' -count 3 . | tee /dev/stderr | \
		$(GO) run ./cmd/benchreport -baseline $(BASELINE) -gate BenchmarkSingleRun -o /dev/null

check: build vet lint test race
