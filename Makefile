# Development entry points. `make check` is the CI gate: build, go vet,
# manetlint (the project's determinism analyzers), the test suite, and the
# test suite again under the race detector.

GO ?= go

.PHONY: build test race vet lint check bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/manetlint ./...

# One iteration of every benchmark (smoke pass), rendered to BENCH.json by
# cmd/benchreport. CI runs this and uploads the report as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee /dev/stderr | $(GO) run ./cmd/benchreport -o BENCH.json

# Gate the hot path against the committed baseline trajectory: three
# repetitions of BenchmarkSingleRun, compared by minimum ns/op; fails on a
# >30 % regression. Override the reference with BASELINE=BENCH_1.json etc.
BASELINE ?= BENCH_2.json
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkSingleRun$$' -count 3 . | tee /dev/stderr | \
		$(GO) run ./cmd/benchreport -baseline $(BASELINE) -gate BenchmarkSingleRun -o /dev/null

check: build vet lint test race
