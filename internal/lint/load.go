package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, non-test package of the module.
type Package struct {
	// PkgPath is the full import path, e.g. "mstc/internal/geom".
	PkgPath string
	// RelPath is the path relative to the module root ("" for the root
	// package).
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Fset is the shared file set (positions for Files).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker soft failures (empty on a healthy
	// tree; fixtures in tests may tolerate some).
	TypeErrors []error

	imports []string // module-internal imports, for topological ordering
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns its path and the module path declared inside.
func FindModuleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Load parses and type-checks every non-test package of the module rooted
// at root, in dependency order, and returns the ones matched by patterns
// ("./..." for all, "./dir/..." for a subtree, "./dir" for one package).
// All module packages are loaded regardless of patterns so that matched
// packages type-check against real dependency information.
func Load(root, module string, patterns []string) ([]*Package, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*Package, len(dirs))
	var all []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		byPath[pkg.PkgPath] = pkg
		all = append(all, pkg)
	}

	ordered, err := topoSort(all, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		module:   module,
		loaded:   byPath,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range ordered {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pkg.PkgPath, err)
		}
	}

	var out []*Package
	for _, pkg := range ordered {
		if matchAny(pkg.RelPath, patterns) {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// packageDirs returns every directory under root that holds non-test Go
// files, skipping VCS metadata and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses one package directory; it returns nil for directories
// whose Go files are all tests.
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	pkgPath := module
	if rel != "" {
		pkgPath = module + "/" + rel
	}

	pkg := &Package{PkgPath: pkgPath, RelPath: rel, Dir: dir, Fset: fset}
	seen := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if (path == module || strings.HasPrefix(path, module+"/")) && !seen[path] {
				seen[path] = true
				pkg.imports = append(pkg.imports, path)
			}
		}
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// topoSort orders packages so every module-internal dependency precedes its
// dependents.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	state := make(map[string]int, len(pkgs))
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.PkgPath] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p.PkgPath)
		case black:
			return nil
		}
		state[p.PkgPath] = gray
		for _, imp := range p.imports {
			dep, ok := byPath[imp]
			if !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source directory", p.PkgPath, imp)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p.PkgPath] = black
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else through the source importer (which
// type-checks the standard library from GOROOT/src, keeping the whole
// toolchain stdlib-only).
type moduleImporter struct {
	module   string
	loaded   map[string]*Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.loaded[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		return nil, fmt.Errorf("lint: unknown module package %s", path)
	}
	return m.fallback.Import(path)
}

// typeCheck runs go/types over one parsed package, tolerating (but
// recording) type errors so analyzers can still run on partial info.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.PkgPath, fset, pkg.Files, info)
	if tpkg == nil {
		return err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// matchAny reports whether a module-relative package path matches any of
// the patterns. Supported: "./..." (everything), "./dir/..." (subtree),
// "./dir" or "dir" (exact), "." (root package).
func matchAny(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "...":
			return true
		case pat == "." || pat == "":
			if rel == "" {
				return true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		default:
			if rel == strings.TrimSuffix(pat, "/") {
				return true
			}
		}
	}
	return false
}
