package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalMutableState flags package-level var declarations of mutable types
// outside allowlisted files. Shared mutable globals are invisible inputs: a
// run's result can depend on what an earlier run (or a parallel worker) left
// behind. Immutable values (numeric, string, bool constants-by-convention)
// are tolerated; slices, maps, channels, pointers, functions, interfaces and
// structs containing any of those are not. Compile-time interface
// assertions (`var _ Iface = ...`) are exempt.
var GlobalMutableState = &Analyzer{
	Name: "global-mutable-state",
	Doc:  "flag package-level mutable variables; prefer constants, locals, or constructor functions",
	Run: func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			if fileAllowed(p, f, p.Config.GlobalVarAllowed) {
				return
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						obj := p.Pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						if mutableType(obj.Type(), nil) {
							p.Reportf(name.Pos(), "package-level mutable variable %s; use a constant, a local, or a constructor function", name.Name)
						}
					}
				}
			}
		})
	},
}

// mutableType reports whether a value of type t can be mutated through a
// package-level variable (directly or via an element/field).
func mutableType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Invalid || u.Kind() == types.UnsafePointer
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return mutableType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mutableType(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return true
}
