package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

// diagAt builds a Diagnostic the way Reportf would, with an explicit
// position.
func diagAt(file string, line, col int, check, scope, msg string) Diagnostic {
	return Diagnostic{
		Pos:     token.Position{Filename: file, Line: line, Column: col},
		Check:   check,
		Scope:   scope,
		Message: msg,
	}
}

func TestFindingIDStableUnderLineShifts(t *testing.T) {
	before := Findings([]Diagnostic{
		diagAt("internal/manet/flood.go", 30, 2, "substream", "originateFlood", "raw Intn draw"),
	}, "")
	// The same finding after 40 lines were inserted above it.
	after := Findings([]Diagnostic{
		diagAt("internal/manet/flood.go", 70, 6, "substream", "originateFlood", "raw Intn draw"),
	}, "")
	if before[0].ID != after[0].ID {
		t.Errorf("ID changed across a pure line shift: %s vs %s", before[0].ID, after[0].ID)
	}
	if before[0].Line == after[0].Line {
		t.Fatal("test is vacuous: positions did not differ")
	}
}

func TestFindingIDDiscriminates(t *testing.T) {
	base := diagAt("a.go", 1, 1, "noalloc", "hot", "make allocates")
	vary := []Diagnostic{
		diagAt("b.go", 1, 1, "noalloc", "hot", "make allocates"),
		diagAt("a.go", 1, 1, "substream", "hot", "make allocates"),
		diagAt("a.go", 1, 1, "noalloc", "cold", "make allocates"),
		diagAt("a.go", 1, 1, "noalloc", "hot", "new allocates"),
	}
	baseID := Findings([]Diagnostic{base}, "")[0].ID
	for i, d := range vary {
		if id := Findings([]Diagnostic{d}, "")[0].ID; id == baseID {
			t.Errorf("variant %d collided with the base ID %s", i, baseID)
		}
	}
}

func TestFindingIDOccurrenceIndex(t *testing.T) {
	// Two identical findings in one scope (e.g. two makes in one function)
	// get distinct IDs via the occurrence index, deterministically.
	d := diagAt("a.go", 3, 1, "noalloc", "hot", "make allocates")
	d2 := d
	d2.Pos.Line = 9
	fs := Findings([]Diagnostic{d, d2}, "")
	if fs[0].ID == fs[1].ID {
		t.Errorf("same-scope duplicates share ID %s", fs[0].ID)
	}
	again := Findings([]Diagnostic{d, d2}, "")
	if fs[0].ID != again[0].ID || fs[1].ID != again[1].ID {
		t.Error("occurrence-indexed IDs are not deterministic")
	}
}

func TestFindingsModuleRelativePaths(t *testing.T) {
	root := filepath.Join("/", "home", "u", "repo")
	abs := filepath.Join(root, "internal", "geom", "geom.go")
	fs := Findings([]Diagnostic{diagAt(abs, 1, 1, "float-eq", "Eq", "m")}, root)
	if fs[0].File != "internal/geom/geom.go" {
		t.Errorf("File = %q, want module-relative path", fs[0].File)
	}
	// Identical finding reported from a different checkout location.
	other := filepath.Join("/", "ci", "ws")
	fs2 := Findings([]Diagnostic{diagAt(filepath.Join(other, "internal", "geom", "geom.go"), 1, 1, "float-eq", "Eq", "m")}, other)
	if fs[0].ID != fs2[0].ID {
		t.Error("IDs differ across checkout locations")
	}
	// Files outside the module root keep their path untouched.
	out := Findings([]Diagnostic{diagAt("/elsewhere/x.go", 1, 1, "float-eq", "", "m")}, root)
	if out[0].File != "/elsewhere/x.go" {
		t.Errorf("File = %q, want untouched out-of-root path", out[0].File)
	}
}

func TestBaselineRoundTripAndGate(t *testing.T) {
	fs := Findings([]Diagnostic{
		diagAt("a.go", 1, 1, "noalloc", "hot", "make allocates"),
		diagAt("a.go", 5, 1, "substream", "alias", "aliased source"),
	}, "")

	path := filepath.Join(t.TempDir(), "baseline.json")
	// Baseline only the first finding.
	if err := WriteBaseline(path, fs[:1]); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 || b.Findings[0].ID != fs[0].ID {
		t.Fatalf("round-trip lost the finding: %+v", b.Findings)
	}

	fresh := ApplyBaseline(fs, b)
	if len(fresh) != 1 || fresh[0].ID != fs[1].ID {
		t.Fatalf("fresh = %+v, want only the non-baselined finding", fresh)
	}
	if !fs[0].Baselined || fs[1].Baselined {
		t.Errorf("Baselined marks wrong: %v %v", fs[0].Baselined, fs[1].Baselined)
	}

	// A nil baseline leaves everything fresh.
	fs2 := Findings([]Diagnostic{diagAt("a.go", 1, 1, "noalloc", "hot", "make allocates")}, "")
	if fresh := ApplyBaseline(fs2, nil); len(fresh) != 1 {
		t.Errorf("nil baseline: %d fresh findings, want 1", len(fresh))
	}
}

func TestWriteBaselineClearsBaselinedFlag(t *testing.T) {
	fs := Findings([]Diagnostic{diagAt("a.go", 1, 1, "noalloc", "hot", "make allocates")}, "")
	fs[0].Baselined = true
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, fs); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Findings[0].Baselined {
		t.Error("snapshot kept a stale Baselined mark")
	}
}

func TestScopeAnchorsFindings(t *testing.T) {
	src := `package fixture

import "time"

// doc comments count as part of the declaration.
func clocky() {
	_ = time.Now()
}

var t0 = time.Now()
`
	pkg := loadFixture(t, "internal/fixture", src)
	diags := Run([]*Package{pkg}, DefaultConfig(), []*Analyzer{NoWallclock})
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	if diags[0].Scope != "clocky" {
		t.Errorf("scope of in-function finding = %q, want clocky", diags[0].Scope)
	}
	if diags[1].Scope != "t0" {
		t.Errorf("scope of package-var finding = %q, want t0", diags[1].Scope)
	}
}
