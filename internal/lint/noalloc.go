package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects allocating constructs in functions annotated
// //manet:noalloc and in every same-package function they call statically
// (the transitive closure a conformance test can actually pin). Flagged
// constructs:
//
//   - make, new, map/slice composite literals, &T{...}
//   - function literals (closure allocation) and method values
//   - append to a local declared without backing storage (var x []T)
//   - interface boxing of non-pointer-shaped values at call arguments or
//     explicit conversions, and variadic calls (the argument slice)
//   - string concatenation, string<->[]byte/[]rune conversions, fmt calls
//
// Arguments of panic(...) are exempt: the panic path may allocate freely.
// Interface dispatch and cross-package calls are not followed — annotate
// the concrete implementations (as the topology kernels do) and rely on
// the generated AllocsPerRun tests for what static analysis cannot see.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//manet:noalloc functions (and their static same-package callees) must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	if p.Pkg.Types == nil || p.Pkg.Info == nil {
		return
	}
	callees := packageFuncDecls(p.Pkg)

	// Collect annotation roots, then the static same-package closure.
	var queue []*ast.FuncDecl
	walkFiles(p, func(f *ast.File) {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, noalloc := funcDirectives(fn, nil); noalloc {
				queue = append(queue, fn)
			}
		}
	})
	checked := make(map[*ast.FuncDecl]bool)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if fn == nil || fn.Body == nil || checked[fn] {
			continue
		}
		checked[fn] = true
		queue = append(queue, checkNoAllocBody(p, fn, callees)...)
	}
}

// checkNoAllocBody flags allocating constructs in one function body and
// returns the same-package functions it calls statically.
func checkNoAllocBody(p *Pass, fn *ast.FuncDecl, callees map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	info := p.Pkg.Info

	// Pre-passes: panic(...) argument ranges are exempt; unbacked local
	// slice vars make their appends allocation-suspect; CallExpr.Fun
	// positions must not be double-reported as method values.
	type span struct{ lo, hi token.Pos }
	var exempt []span
	unbacked := make(map[types.Object]bool)
	callFun := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFun[unparen(n.Fun)] = true
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
					exempt = append(exempt, span{lo: n.Lparen, hi: n.Rparen})
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					if obj := info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							unbacked[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	inExempt := func(pos token.Pos) bool {
		for _, s := range exempt {
			if pos > s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	var next []*ast.FuncDecl
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inExempt(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "%s: function literal allocates a closure", funcDisplayName(fn))
			return false
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "%s: slice literal allocates", funcDisplayName(fn))
			case *types.Map:
				p.Reportf(n.Pos(), "%s: map literal allocates", funcDisplayName(fn))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "%s: &composite literal allocates", funcDisplayName(fn))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					if basic, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && basic.Info()&types.IsString != 0 {
						p.Reportf(n.Pos(), "%s: string concatenation allocates", funcDisplayName(fn))
					}
				}
			}
		case *ast.SelectorExpr:
			if !callFun[n] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					p.Reportf(n.Pos(), "%s: method value allocates a bound-method closure", funcDisplayName(fn))
				}
			}
		case *ast.CallExpr:
			next = append(next, checkNoAllocCall(p, fn, n, callees, unbacked)...)
		}
		return true
	})
	return next
}

// checkNoAllocCall handles the call-shaped allocation rules for one call
// expression and returns any same-package static callee to pull into the
// closure.
func checkNoAllocCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, callees map[*types.Func]*ast.FuncDecl, unbacked map[types.Object]bool) []*ast.FuncDecl {
	info := p.Pkg.Info
	name := funcDisplayName(fn)

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			src := info.Types[call.Args[0]].Type
			switch {
			case types.IsInterface(target.Underlying()) && src != nil && !types.IsInterface(src.Underlying()) && !pointerShaped(src):
				p.Reportf(call.Pos(), "%s: conversion to interface boxes the value", name)
			case stringSliceConversion(target, src):
				p.Reportf(call.Pos(), "%s: string/slice conversion allocates", name)
			}
		}
		return nil
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "%s: %s allocates", name, b.Name())
			case "append":
				if len(call.Args) > 0 {
					if target, ok := unparen(call.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[target]; obj != nil && unbacked[obj] {
							p.Reportf(call.Pos(), "%s: append to %s, declared without backing storage, allocates on first growth", name, target.Name)
						}
					}
				}
			}
			return nil
		}
	}

	// fmt calls allocate (interface packing + formatting buffers).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg && pkg.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(), "%s: fmt.%s allocates", name, sel.Sel.Name)
				return nil
			}
		}
	}

	// Interface boxing at arguments and the variadic argument slice.
	if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok {
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				if call.Ellipsis.IsValid() {
					pt = sig.Params().At(np - 1).Type()
				} else {
					pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
				}
			case i < np:
				pt = sig.Params().At(i).Type()
			}
			if pt == nil || !types.IsInterface(pt.Underlying()) {
				continue
			}
			at := info.Types[arg]
			if at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) || pointerShaped(at.Type) {
				continue
			}
			p.Reportf(arg.Pos(), "%s: passing %s where %s is expected boxes the value", name, at.Type.String(), pt.String())
		}
		if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
			p.Reportf(call.Pos(), "%s: variadic call allocates its argument slice", name)
		}
	}

	if callee := staticCallee(info, call); callee != nil {
		if decl, ok := callees[callee]; ok {
			return []*ast.FuncDecl{decl}
		}
	}
	return nil
}

// pointerShaped reports whether values of t fit an interface word without
// allocation: pointers, channels, maps, funcs and unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringSliceConversion reports whether a conversion between dst and src is
// one of the allocating string<->[]byte/[]rune shapes.
func stringSliceConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}
