package lint

import (
	"go/ast"
	"strings"
)

// randBanned are the import paths that introduce nondeterministic or
// globally seeded randomness. All simulation randomness must flow from
// seeded xrand.Source substreams so repetitions replay bit-for-bit.
var randBanned = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoGlobalRand bans math/rand and crypto/rand imports outside the
// deterministic-PRNG package itself (Config.RandAllowed).
var NoGlobalRand = &Analyzer{
	Name: "no-globalrand",
	Doc:  "ban math/rand and crypto/rand imports; use seeded xrand.Source substreams",
	Run: func(p *Pass) {
		for _, allowed := range p.Config.RandAllowed {
			if p.Pkg.RelPath == allowed {
				return
			}
		}
		walkFiles(p, func(f *ast.File) {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if randBanned[path] {
					p.Reportf(spec.Pos(), "import %q is banned; derive randomness from xrand.Source substreams", path)
				}
			}
		})
	},
}
