package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyCoverage proves the repository's hash/key functions are complete.
//
// A function annotated //manet:hashes <Type> is the canonical hash of the
// named struct. The analyzer walks its body — transitively through every
// same-package function it calls statically — and records which top-level
// fields of <Type> are read. Every field must then be either read or named
// on a //manet:hash-exclude <Field> <reason> line in the same doc comment.
// Adding a result-affecting config field without hashing it becomes a lint
// error instead of a digest surprise; exclusions are self-documenting and
// audited (a stale or redundant exclusion is itself a finding).
//
// Deleting a field the hash reads is caught one layer earlier: the read no
// longer type-checks, and the driver refuses to run on type errors.
var KeyCoverage = &Analyzer{
	Name: "key-coverage",
	Doc:  "hash/key functions must read or explicitly exclude every field of their hashed struct",
	Run:  runKeyCoverage,
}

func runKeyCoverage(p *Pass) {
	if p.Pkg.Types == nil || p.Pkg.Info == nil {
		return
	}
	callees := packageFuncDecls(p.Pkg)
	seen := make(map[string]bool) // "Func=Type" pairs annotated in this package
	walkFiles(p, func(f *ast.File) {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			hd, _ := funcDirectives(fn, p.Reportf)
			if hd == nil {
				continue
			}
			seen[funcDisplayName(fn)+"="+hd.TypeName] = true
			checkHashCoverage(p, hd, callees)
		}
	})
	// Required pairs: the config names hash functions that must carry the
	// annotation, so key-coverage cannot be silently opted out of by
	// deleting the directive.
	for _, req := range p.Config.KeyCoverage {
		rel, pair, ok := strings.Cut(req, ":")
		if !ok || rel != p.Pkg.RelPath {
			continue
		}
		if !seen[pair] && len(p.Pkg.Files) > 0 {
			p.Reportf(p.Pkg.Files[0].Name.Pos(),
				"required hash pair %q has no manet:hashes annotation in %s", pair, p.Pkg.RelPath)
		}
	}
}

// checkHashCoverage verifies one //manet:hashes directive: resolves the
// hashed type, computes the transitive field-read set of the hash function,
// and reports uncovered fields and stale or redundant exclusions.
func checkHashCoverage(p *Pass, hd *hashDirective, callees map[*types.Func]*ast.FuncDecl) {
	obj := p.Pkg.Types.Scope().Lookup(hd.TypeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		p.Reportf(hd.Pos, "manet:hashes %s: package %s has no such type", hd.TypeName, p.Pkg.Types.Name())
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		p.Reportf(hd.Pos, "manet:hashes %s: not a struct type", hd.TypeName)
		return
	}

	read := make(map[string]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if fn == nil || fn.Body == nil || visited[fn] {
			return
		}
		visited[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := p.Pkg.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				recv := sel.Recv()
				if ptr, isPtr := recv.(*types.Pointer); isPtr {
					recv = ptr.Elem()
				}
				if named, isNamed := recv.(*types.Named); isNamed && named.Obj() == tn {
					// The first step of the selection path is the
					// top-level field (promoted fields mark the
					// embedded struct they travel through).
					read[st.Field(sel.Index()[0]).Name()] = true
				}
			case *ast.CallExpr:
				if callee := staticCallee(p.Pkg.Info, n); callee != nil {
					visit(callees[callee])
				}
			}
			return true
		})
	}
	visit(hd.Fn)

	fields := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i).Name()] = true
	}
	//lint:order-independent findings are position-sorted by Run before printing
	for name, reason := range hd.Excludes {
		switch {
		case !fields[name]:
			p.Reportf(hd.Pos, "manet:hash-exclude %s: %s has no such field (stale exclusion)", name, hd.TypeName)
		case read[name]:
			p.Reportf(hd.Pos, "manet:hash-exclude %s is redundant: %s reads the field (%s)",
				name, funcDisplayName(hd.Fn), reason)
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" || read[f.Name()] {
			continue
		}
		if _, excluded := hd.Excludes[f.Name()]; excluded {
			continue
		}
		p.Reportf(f.Pos(), "field %s.%s is neither read by %s nor excluded with manet:hash-exclude",
			hd.TypeName, f.Name(), funcDisplayName(hd.Fn))
	}
}

// packageFuncDecls maps each function object defined in the package to its
// declaration, for transitive body walks.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					out[obj] = fn
				}
			}
		}
	}
	return out
}

// staticCallee resolves a call expression to the function object it invokes
// when that is statically known: plain function calls, package-qualified
// calls, and concrete method calls. Interface dispatch and function-valued
// expressions return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
			return nil
		}
		// Not a selection: package-qualified identifier.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
