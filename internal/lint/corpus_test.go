package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpus runs every archive under testdata/ through its named analyzer
// and asserts the exact finding set. Each archive is a txtar-style file:
// a header of "key value" directives, then "-- name.go --" file sections
// forming one fixture package, then a "-- want --" section listing expected
// findings as "file:line:col: check" lines (empty or absent for clean
// fixtures). Header directives:
//
//	analyzer <name>   which analyzer to run (required)
//	relpath <path>    module-relative package path (default internal/fixture)
//	keycov <pair>     replace Config.KeyCoverage with these lines (repeatable)
//
// The archives double as executable documentation: every analyzer has
// positive, negative and suppressed cases side by side.
func TestCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus archives under testdata/")
	}
	byName := make(map[string]*Analyzer)
	for _, a := range AllAnalyzers() {
		byName[a.Name] = a
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".txt")
		t.Run(name, func(t *testing.T) {
			arch := parseArchive(t, path)
			analyzer := byName[arch.analyzer]
			if analyzer == nil {
				t.Fatalf("%s: unknown analyzer %q", path, arch.analyzer)
			}
			pkg := loadFixtureFiles(t, arch.relPath, arch.files)
			cfg := DefaultConfig()
			if arch.keycov != nil {
				cfg.KeyCoverage = arch.keycov
			}
			diags := Run([]*Package{pkg}, cfg, []*Analyzer{analyzer})
			assertDiags(t, diags, arch.want...)
		})
	}
}

// corpusArchive is one parsed testdata archive.
type corpusArchive struct {
	analyzer string
	relPath  string
	keycov   []string
	files    []fixtureFile
	want     []string
}

type fixtureFile struct {
	name string
	data string
}

// parseArchive decodes the minimal txtar dialect described on TestCorpus.
func parseArchive(t *testing.T, path string) *corpusArchive {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	arch := &corpusArchive{relPath: "internal/fixture"}
	var cur *strings.Builder
	flush := func() {}
	inWant := false
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := sectionMarker(line); ok {
			flush()
			inWant = name == "want"
			if inWant {
				cur = nil
				flush = func() {}
				continue
			}
			b := &strings.Builder{}
			cur = b
			arch.files = append(arch.files, fixtureFile{name: name})
			idx := len(arch.files) - 1
			flush = func() { arch.files[idx].data = b.String() }
			continue
		}
		switch {
		case inWant:
			if s := strings.TrimSpace(line); s != "" {
				arch.want = append(arch.want, s)
			}
		case cur != nil:
			cur.WriteString(line)
			cur.WriteString("\n")
		default: // header
			s := strings.TrimSpace(line)
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			key, val, _ := strings.Cut(s, " ")
			val = strings.TrimSpace(val)
			switch key {
			case "analyzer":
				arch.analyzer = val
			case "relpath":
				arch.relPath = val
			case "keycov":
				arch.keycov = append(arch.keycov, val)
			default:
				t.Fatalf("%s: unknown header directive %q", path, key)
			}
		}
	}
	flush()
	if arch.analyzer == "" {
		t.Fatalf("%s: missing 'analyzer' header directive", path)
	}
	if len(arch.files) == 0 {
		t.Fatalf("%s: archive has no fixture files", path)
	}
	return arch
}

// sectionMarker recognizes "-- name --" lines.
func sectionMarker(line string) (string, bool) {
	line = strings.TrimRight(line, " \t\r")
	if !strings.HasPrefix(line, "-- ") || !strings.HasSuffix(line, " --") {
		return "", false
	}
	name := strings.TrimSpace(line[3 : len(line)-3])
	return name, name != ""
}

// loadFixtureFiles is loadFixture for multi-file fixture packages. Fixtures
// must be well-typed: a type error usually means the archive is broken, and
// analyzers skip packages without full type information anyway.
func loadFixtureFiles(t *testing.T, relPath string, files []fixtureFile) *Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg := &Package{
		PkgPath: "mstc/" + relPath,
		RelPath: relPath,
		Fset:    fset,
	}
	for _, ff := range files {
		f, err := parser.ParseFile(fset, ff.name, ff.data, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", ff.name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	imp := &moduleImporter{module: "mstc", loaded: map[string]*Package{}, fallback: fixtureFallback}
	if err := typeCheck(fset, pkg, imp); err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	for _, te := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", te)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}
