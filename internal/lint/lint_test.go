package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"testing"
)

// fixtureFallback resolves stdlib imports of in-memory fixtures by
// type-checking GOROOT sources; shared across tests because stdlib
// checking dominates fixture cost.
var fixtureFallback types.Importer = importer.ForCompiler(token.NewFileSet(), "source", nil)

// loadFixture parses and type-checks one in-memory file as the sole file of
// a module package at relPath.
func loadFixture(t *testing.T, relPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg := &Package{
		PkgPath: "mstc/" + relPath,
		RelPath: relPath,
		Fset:    fset,
		Files:   []*ast.File{f},
	}
	imp := &moduleImporter{module: "mstc", loaded: map[string]*Package{}, fallback: fixtureFallback}
	if err := typeCheck(fset, pkg, imp); err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return pkg
}

// keys formats diagnostics as "file:line:col: check" for exact-position
// assertions.
func keys(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%d: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check))
	}
	return out
}

func assertDiags(t *testing.T, got []Diagnostic, want ...string) {
	t.Helper()
	gk := keys(got)
	if len(gk) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v", len(gk), gk, len(want), want)
	}
	for i := range want {
		if gk[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, gk[i], want[i])
		}
	}
}

func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		relPath  string
		analyzer *Analyzer
		src      string
		want     []string
	}{
		{
			name:     "wallclock flags Now Sleep Since",
			analyzer: NoWallclock,
			src: `package fixture

import "time"

func f() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
`,
			want: []string{
				"fixture.go:6:8: no-wallclock",
				"fixture.go:7:2: no-wallclock",
				"fixture.go:8:9: no-wallclock",
			},
		},
		{
			name:     "wallclock permits durations and types",
			analyzer: NoWallclock,
			src: `package fixture

import "time"

func f(d time.Duration) time.Duration {
	var t time.Time
	_ = t
	return d + 2*time.Second
}
`,
			want: nil,
		},
		{
			name:     "globalrand flags both rand imports",
			analyzer: NoGlobalRand,
			src: `package fixture

import (
	_ "crypto/rand"
	_ "math/rand"
)
`,
			want: []string{
				"fixture.go:4:2: no-globalrand",
				"fixture.go:5:2: no-globalrand",
			},
		},
		{
			name:     "globalrand allows the xrand package itself",
			relPath:  "internal/xrand",
			analyzer: NoGlobalRand,
			src: `package fixture

import _ "math/rand"
`,
			want: nil,
		},
		{
			name:     "maporder flags unannotated loops only",
			analyzer: MapOrder,
			src: `package fixture

func f(m map[int]int, s []int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	//lint:order-independent
	for k := range m {
		sum += k
	}
	for range m { //lint:order-independent
		sum++
	}
	for _, v := range s {
		sum += v
	}
	return sum
}
`,
			want: []string{"fixture.go:5:2: map-order"},
		},
		{
			name:     "goroutine flags go statements",
			analyzer: NoNakedGoroutine,
			src: `package fixture

func f() {
	go f()
}
`,
			want: []string{"fixture.go:4:2: no-naked-goroutine"},
		},
		{
			name:     "floateq flags float comparisons",
			analyzer: FloatEq,
			src: `package fixture

func f(a, b float64, g float32, i, j int) bool {
	if a == b {
		return true
	}
	if a != 0 {
		return false
	}
	if g == 1.5 {
		return true
	}
	return i == j
}
`,
			want: []string{
				"fixture.go:4:7: float-eq",
				"fixture.go:7:7: float-eq",
				"fixture.go:10:7: float-eq",
			},
		},
		{
			name:     "globals flag mutable package vars",
			analyzer: GlobalMutableState,
			src: `package fixture

type iface interface{ m() }

type impl struct{}

func (impl) m() {}

var _ iface = impl{}

var names = []string{"a"}

var count = 3

var registry = map[string]int{}

var box = struct{ xs []int }{}

const word = "w"
`,
			want: []string{
				"fixture.go:11:5: global-mutable-state",
				"fixture.go:15:5: global-mutable-state",
				"fixture.go:17:5: global-mutable-state",
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			relPath := tt.relPath
			if relPath == "" {
				relPath = "internal/fixture"
			}
			pkg := loadFixture(t, relPath, tt.src)
			diags := Run([]*Package{pkg}, DefaultConfig(), []*Analyzer{tt.analyzer})
			assertDiags(t, diags, tt.want...)
		})
	}
}

func TestSuppression(t *testing.T) {
	src := `package fixture

import "time"

func f() {
	_ = time.Now() //lint:ignore no-wallclock fixture demonstrates same-line suppression
	//lint:ignore no-wallclock fixture demonstrates line-above suppression
	_ = time.Now()
	_ = time.Now()
	_ = time.Now() //lint:ignore float-eq wrong check name does not suppress
}
`
	pkg := loadFixture(t, "internal/fixture", src)
	diags := Run([]*Package{pkg}, DefaultConfig(), []*Analyzer{NoWallclock})
	assertDiags(t, diags,
		"fixture.go:9:6: no-wallclock",
		"fixture.go:10:6: no-wallclock",
	)
}

func TestSuppressionRequiresReason(t *testing.T) {
	src := `package fixture

import "time"

func f() {
	_ = time.Now() //lint:ignore no-wallclock
}
`
	pkg := loadFixture(t, "internal/fixture", src)
	cfg := DefaultConfig()
	// A reasonless directive neither suppresses nor passes the audit.
	diags := Run([]*Package{pkg}, cfg, []*Analyzer{NoWallclock})
	assertDiags(t, diags, "fixture.go:6:6: no-wallclock")
	bad := BadSuppressions([]*Package{pkg}, cfg)
	assertDiags(t, bad, "fixture.go:6:17: suppression")
}

func TestGoroutineAllowlist(t *testing.T) {
	src := `package fixture

func f() {
	go f()
}
`
	pkg := loadFixture(t, "internal/fixture", src)
	cfg := DefaultConfig()
	cfg.GoroutineAllowed = []string{"fixture.go"}
	diags := Run([]*Package{pkg}, cfg, []*Analyzer{NoNakedGoroutine})
	assertDiags(t, diags)
}

func TestScope(t *testing.T) {
	src := `package fixture

import "time"

func f() {
	_ = time.Now()
}
`
	// Packages outside internal/ and cmd/ (e.g. examples/) are not
	// analyzed.
	pkg := loadFixture(t, "examples/fixture", src)
	diags := Run([]*Package{pkg}, DefaultConfig(), []*Analyzer{NoWallclock})
	assertDiags(t, diags)
}

func TestMatchAny(t *testing.T) {
	tests := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/geom", []string{"./..."}, true},
		{"internal/geom", []string{"./internal/..."}, true},
		{"cmd/paperfig", []string{"./internal/..."}, false},
		{"cmd/paperfig", []string{"./internal/...", "./cmd/paperfig"}, true},
		{"", []string{"."}, true},
		{"internal", []string{"./internal/..."}, true},
		{"internals", []string{"./internal/..."}, false},
	}
	for _, tt := range tests {
		if got := matchAny(tt.rel, tt.patterns); got != tt.want {
			t.Errorf("matchAny(%q, %v) = %v, want %v", tt.rel, tt.patterns, got, tt.want)
		}
	}
}

// TestRepositoryClean loads the whole module and asserts the tree has zero
// findings — the same gate `make lint` enforces, kept as a test so `go
// test ./...` alone catches regressions.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow; run without -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, module, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, module, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	cfg := DefaultConfig()
	diags := Run(pkgs, cfg, AllAnalyzers())
	diags = append(diags, BadSuppressions(pkgs, cfg)...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
