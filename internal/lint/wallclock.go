package lint

import (
	"go/ast"
	"go/types"
)

// wallclockBanned are the package-time functions that read or depend on the
// host clock. Simulated time comes from internal/sim's virtual clock; a
// wall-clock read makes output depend on host scheduling and run date.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallclock bans wall-clock reads (time.Now, time.Since, time.Sleep, and
// friends) in simulation code. Durations and the time.Time type itself stay
// legal: only host-clock *reads* break replay.
var NoWallclock = &Analyzer{
	Name: "no-wallclock",
	Doc:  "ban time.Now/Since/Sleep etc.; simulated time comes from internal/sim",
	Run: func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallclockBanned[sel.Sel.Name] {
					return true
				}
				obj := p.Pkg.Info.Uses[sel.Sel]
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock; use the simulation clock (internal/sim) or inject a clock", sel.Sel.Name)
				}
				return true
			})
		})
	},
}
