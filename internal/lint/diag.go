package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is the externally-visible, position-stable form of a Diagnostic:
// what -json emits and what baselines store.
type Finding struct {
	// ID is a stable hash of (module-relative file, check, enclosing
	// declaration, message, occurrence index). Line numbers are excluded
	// on purpose: edits above a finding move it without changing what it
	// is, and baselines must survive that.
	ID        string `json:"id"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Check     string `json:"check"`
	Scope     string `json:"scope,omitempty"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// String formats the finding the way compilers do.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Findings converts diagnostics (as returned by Run) into findings with
// stable IDs. moduleRoot, when non-empty, makes file paths
// module-relative so IDs and baselines are machine-independent.
func Findings(diags []Diagnostic, moduleRoot string) []Finding {
	counts := make(map[string]int)
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		rel := filepath.ToSlash(d.Pos.Filename)
		if moduleRoot != "" {
			if r, err := filepath.Rel(moduleRoot, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel = filepath.ToSlash(r)
			}
		}
		key := strings.Join([]string{rel, d.Check, d.Scope, d.Message}, "\x00")
		n := counts[key]
		counts[key] = n + 1
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", key, n)))
		out = append(out, Finding{
			ID:      hex.EncodeToString(sum[:8]),
			File:    rel,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Scope:   d.Scope,
			Message: d.Message,
		})
	}
	return out
}

// Baseline is a committed snapshot of grandfathered findings: the gate
// mode fails only on findings whose IDs are not listed here.
type Baseline struct {
	Comment  string    `json:"comment,omitempty"`
	Findings []Finding `json:"findings"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline snapshots the findings to path, sorted by ID for diff
// stability.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{
		Comment:  "manetlint baseline: grandfathered findings; regenerate with manetlint -write-baseline",
		Findings: append([]Finding(nil), findings...),
	}
	for i := range b.Findings {
		b.Findings[i].Baselined = false
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].ID < b.Findings[j].ID })
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline marks findings whose IDs the baseline lists and returns
// the fresh (non-baselined) ones. A nil baseline leaves everything fresh.
func ApplyBaseline(findings []Finding, b *Baseline) (fresh []Finding) {
	known := make(map[string]bool)
	if b != nil {
		for _, f := range b.Findings {
			known[f.ID] = true
		}
	}
	for i := range findings {
		if known[findings[i].ID] {
			findings[i].Baselined = true
		} else {
			fresh = append(fresh, findings[i])
		}
	}
	return fresh
}

// declNameAt returns the display name of the top-level declaration
// enclosing pos ("" when pos sits outside every declaration). Doc comments
// count as part of their declaration so directive findings anchor to the
// function they annotate.
func declNameAt(pkg *Package, pos token.Pos) string {
	for _, f := range pkg.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, decl := range f.Decls {
			lo := decl.Pos()
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					lo = d.Doc.Pos()
				}
				if pos >= lo && pos <= d.End() {
					return funcDisplayName(d)
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					lo = d.Doc.Pos()
				}
				if pos < lo || pos > d.End() {
					continue
				}
				for _, spec := range d.Specs {
					if pos < spec.Pos() || pos > spec.End() {
						continue
					}
					switch s := spec.(type) {
					case *ast.TypeSpec:
						return s.Name.Name
					case *ast.ValueSpec:
						if len(s.Names) > 0 {
							return s.Names[0].Name
						}
					}
				}
			}
		}
	}
	return ""
}
