package lint

import (
	"go/ast"
	"strings"
)

// fileAllowed reports whether f's file name matches one of the allowlisted
// module-relative paths.
func fileAllowed(p *Pass, f *ast.File, allowlist []string) bool {
	file := p.Pkg.Fset.Position(f.Pos()).Filename
	for _, allowed := range allowlist {
		if file == allowed || strings.HasSuffix(file, "/"+allowed) {
			return true
		}
	}
	return false
}

// NoNakedGoroutine bans go statements outside the allowlisted worker-pool
// files (Config.GoroutineAllowed). Unsynchronized concurrency makes event
// interleaving depend on the scheduler, which breaks replay; the one blessed
// fan-out point is the experiment runner, whose workers write disjoint
// result slots merged by task index.
var NoNakedGoroutine = &Analyzer{
	Name: "no-naked-goroutine",
	Doc:  "ban go statements outside the experiment runner's worker pool",
	Run: func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			if fileAllowed(p, f, p.Config.GoroutineAllowed) {
				return
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "go statement outside the allowlisted worker pool; route concurrency through experiment.Execute")
				}
				return true
			})
		})
	},
}
