package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags direct == / != between floating-point operands. Exact float
// equality is almost always a rounding bug waiting to happen; comparisons
// should go through the epsilon helpers in internal/geom (geom.Eq,
// geom.Zero). The repo does contain deliberate exact comparisons — the
// total-order tie-breaking DESIGN.md calls out, and exact-zero guards for
// degenerate geometry — and those sites carry //lint:ignore float-eq
// comments explaining why exactness is intended.
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "flag ==/!= on float operands; use geom.Eq/geom.Zero or justify exactness",
	Run: func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(p, be.X) || isFloat(p, be.Y) {
					p.Reportf(be.OpPos, "exact float comparison (%s); use geom.Eq/geom.Zero or document exactness with //lint:ignore float-eq", be.Op)
				}
				return true
			})
		})
	},
}

// isFloat reports whether the expression has floating-point type (typed or
// untyped).
func isFloat(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
