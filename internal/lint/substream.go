package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Substream enforces the xrand substream-labeling discipline that keeps
// replay deterministic:
//
//   - Rule A (label collisions): two derivation sites (Sub or its by-value
//     twin Derive) on the same source whose label signatures can coincide — same arity, and every
//     position where both labels are compile-time constants is equal — may
//     hand two consumers the same stream. Distinct constant labels in any
//     position, or distinct arities, make collision impossible.
//   - Rule B (aliasing): one *xrand.Source value stored into more than one
//     field/element, composite literal, closure, or goroutine gives two
//     owners interleaved draws on one stream; each owner must derive its
//     own substream instead.
//   - Rule C (parent draws): drawing raw values (Uint64, Float64, ...)
//     from a source that also derives substreams makes the parent's stream
//     position part of the hidden state; parents should only derive.
//
// Sources are grouped by the variable or field object they are drawn from
// (scoped by go/types object identity), or by expression text for chained
// constructors like xrand.New(seed) — which is deliberately coarse: two
// call sites spelling xrand.New(o.Seed).Sub('m', ...) the same way ARE the
// same stream by xrand's purity guarantee, wherever they appear.
var Substream = &Analyzer{
	Name: "substream",
	Doc:  "xrand sources must derive substreams with collision-free labels and never be aliased or drawn from while acting as a parent",
	Run:  runSubstream,
}

// subSite is one Sub(...) derivation call site.
type subSite struct {
	pos    token.Pos
	render string   // "Sub('m', uint64(rep))" for the message
	arity  int      // -1 for Sub(labels...) spreads, which are skipped
	consts []string // exact constant per position, "" = not constant
}

// drawSite is one raw draw (Uint64, Float64, ...) call site.
type drawSite struct {
	pos    token.Pos
	method string
}

// sourceGroup accumulates the derivations and draws seen on one source.
type sourceGroup struct {
	subs  []subSite
	draws []drawSite
}

// drawMethods are the Source methods that advance the stream.
var drawMethods = map[string]bool{
	"Uint32": true, "Uint64": true, "Float64": true, "Intn": true,
	"Uniform": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
}

func runSubstream(p *Pass) {
	if p.Pkg.Types == nil || p.Pkg.Info == nil {
		return
	}
	info := p.Pkg.Info
	groups := make(map[any]*sourceGroup)

	walkFiles(p, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := info.Selections[fun]
			if !ok || sel.Kind() != types.MethodVal || !isXrandSource(sel.Recv()) {
				return true
			}
			name := fun.Sel.Name
			// Derive is Sub by value (hot-path keyed draws); both are
			// derivation sites under every rule.
			isSub := name == "Sub" || name == "Derive"
			if !isSub && !drawMethods[name] {
				return true
			}
			key := sourceKey(info, fun.X)
			g := groups[key]
			if g == nil {
				g = &sourceGroup{}
				groups[key] = g
			}
			if !isSub {
				g.draws = append(g.draws, drawSite{pos: call.Pos(), method: name})
				return true
			}
			site := subSite{pos: call.Pos(), arity: len(call.Args)}
			if call.Ellipsis.IsValid() {
				site.arity = -1 // spread: labels unknown, skip collision analysis
			}
			var parts []string
			for _, arg := range call.Args {
				cv := ""
				if tv, ok := info.Types[arg]; ok && tv.Value != nil {
					cv = tv.Value.ExactString()
				}
				site.consts = append(site.consts, cv)
				parts = append(parts, types.ExprString(arg))
			}
			site.render = name + "(" + strings.Join(parts, ", ") + ")"
			g.subs = append(g.subs, site)
			return true
		})
	})

	// Rules A and C over the accumulated groups.
	//lint:order-independent findings are position-sorted by Run before printing
	for _, g := range groups {
		// Rule A: pairwise-unifiable label signatures.
		colliding := make([]int, len(g.subs))
		for i := range g.subs {
			for j := i + 1; j < len(g.subs); j++ {
				if sigsCollide(g.subs[i], g.subs[j]) {
					colliding[i]++
					colliding[j]++
				}
			}
		}
		for i, s := range g.subs {
			if colliding[i] > 0 {
				p.Reportf(s.pos, "%s: labels may collide with %d other derivation site(s) on this source; make a constant label position differ",
					s.render, colliding[i])
			}
		}
		// Rule C: raw draws on a deriving parent.
		if len(g.subs) > 0 {
			for _, d := range g.draws {
				p.Reportf(d.pos, "raw %s draw on a source that also derives substreams; draw from a dedicated Sub(...) instead",
					d.method)
			}
		}
	}

	runSourceAliasing(p)
}

// sigsCollide reports whether two Sub label signatures can denote the same
// substream: equal arity, and every position where both labels are
// constants holds the same constant (a non-constant label unifies with
// anything).
func sigsCollide(a, b subSite) bool {
	if a.arity < 0 || b.arity < 0 || a.arity != b.arity {
		return false
	}
	for i := range a.consts {
		if a.consts[i] != "" && b.consts[i] != "" && a.consts[i] != b.consts[i] {
			return false
		}
	}
	return true
}

// sourceKey identifies which stream a receiver expression denotes: the
// go/types object for variables and fields, expression text otherwise.
func sourceKey(info *types.Info, recv ast.Expr) any {
	switch e := unparen(recv).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
	}
	return "expr:" + types.ExprString(recv)
}

// isXrandSource reports whether t is xrand.Source (possibly behind a
// pointer), matching by package-path suffix so test fixtures can supply a
// stand-in package.
func isXrandSource(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Source" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "xrand" || strings.HasSuffix(path, "/xrand")
}

// runSourceAliasing implements Rule B: one source variable stored into more
// than one long-lived sink.
func runSourceAliasing(p *Pass) {
	info := p.Pkg.Info
	type sink struct {
		pos  token.Pos
		kind string
	}
	sinks := make(map[types.Object][]sink)
	addSink := func(e ast.Expr, kind string) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		if v, isVar := obj.(*types.Var); !isVar || v.IsField() || !isXrandSource(obj.Type()) {
			return
		}
		sinks[obj] = append(sinks[obj], sink{pos: id.Pos(), kind: kind})
	}

	walkFiles(p, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					switch unparen(n.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						addSink(rhs, "stored")
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					addSink(elt, "stored in a composite literal")
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					addSink(arg, "passed to a goroutine")
				}
			case *ast.FuncLit:
				// One sink per distinct captured source variable.
				captured := make(map[types.Object]token.Pos)
				ast.Inspect(n.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[id]
					if obj == nil || obj.Pos() >= n.Pos() && obj.Pos() <= n.End() {
						return true
					}
					if v, isVar := obj.(*types.Var); !isVar || v.IsField() || !isXrandSource(obj.Type()) {
						return true
					}
					if _, seen := captured[obj]; !seen {
						captured[obj] = id.Pos()
					}
					return true
				})
				//lint:order-independent findings are position-sorted by Run before printing
				for obj, pos := range captured {
					sinks[obj] = append(sinks[obj], sink{pos: pos, kind: "captured by a closure"})
				}
			}
			return true
		})
	})

	//lint:order-independent findings are position-sorted by Run before printing
	for obj, ss := range sinks {
		if len(ss) < 2 {
			continue
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
		first := p.Pkg.Fset.Position(ss[0].pos)
		for _, s := range ss[1:] {
			p.Reportf(s.pos, "source %s is %s but was already stored at %s:%d; derive a fresh Sub(...) per owner instead of aliasing one stream",
				obj.Name(), s.kind, first.Filename, first.Line)
		}
	}
}
