package lint

import (
	"go/ast"
	"go/types"
)

// OrderIndependentDirective is the annotation asserting that a
// range-over-map loop's effect does not depend on iteration order.
const OrderIndependentDirective = "//lint:order-independent"

// MapOrder flags `for range` loops over map-typed values. Go randomizes map
// iteration order per run, so any such loop whose body can reach results is
// a nondeterminism hazard. The fix is to collect and sort the keys and range
// over the slice; loops whose bodies genuinely commute (pure sums, deletes,
// building a slice that is sorted afterwards) carry the
// //lint:order-independent annotation on the loop line or the line above,
// which this analyzer verifies is present.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "flag range-over-map loops unless sorted keys are used or the loop is annotated order-independent",
	Run: func(p *Pass) {
		annotated := annotatedLines(p.Pkg, OrderIndependentDirective)
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := p.Pkg.Fset.Position(rs.For)
				if annotated[pos.Filename][pos.Line] {
					return true
				}
				p.Reportf(rs.For, "map iteration order is randomized; sort the keys first or annotate the loop with %s", OrderIndependentDirective)
				return true
			})
		})
	},
}
