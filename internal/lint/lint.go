// Package lint implements manetlint, the project-specific static analyzer
// that enforces the simulation-determinism invariants DESIGN.md promises:
// no wall-clock reads, no global randomness, no map-iteration order reaching
// results, no unsupervised goroutines, no exact float comparisons outside
// deliberate tie-breaking, and no package-level mutable state.
//
// The paper's claims are validated by statistical simulation, and those
// statistics are only trustworthy when repetition i of an experiment replays
// bit-for-bit from its seed. Each analyzer here guards one way that property
// silently breaks. The package uses only the standard library (go/parser,
// go/ast, go/token, go/types); see cmd/manetlint for the driver.
//
// # Suppression
//
// A finding may be acknowledged in place with a per-line comment:
//
//	//lint:ignore <check> <reason>
//
// which suppresses findings of <check> on the comment's own line and on the
// line immediately below it (so both trailing comments and comment-above
// style work). The reason is required: an unexplained suppression is itself
// a finding. Range-over-map loops use the dedicated annotation
//
//	//lint:order-independent
//
// asserting that the loop body commutes (e.g. it accumulates into a sorted
// slice, sums, or deletes); the map-order analyzer verifies the annotation
// is present rather than trusting call sites silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name, e.g. "no-wallclock"
	Message string
	// Scope is the top-level declaration enclosing the finding; it feeds
	// the position-stable finding IDs (see diag.go).
	Scope string
}

// String formats the diagnostic the way compilers do: file:line:col: check: msg.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one invariant check. Run inspects the pass's package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Config scopes the analyzers. All path fields are slash-separated and
// relative to the module root.
type Config struct {
	// ScopePrefixes are the package-path prefixes (relative to the module
	// root) the analyzers enforce; packages outside every prefix are
	// loaded (for type information) but not analyzed.
	ScopePrefixes []string
	// RandAllowed are the package paths allowed to import math/rand or
	// crypto/rand — the deterministic-PRNG package itself.
	RandAllowed []string
	// GoroutineAllowed are the files allowed to contain go statements:
	// the experiment runner's worker pool (fan-out is replay-safe because
	// results merge by task index) and the region-parallel barrier pool
	// (fan-out is replay-safe because domains only touch state they own,
	// in the deterministic record order — see internal/manet/parallel.go).
	GoroutineAllowed []string
	// GlobalVarAllowed are the files allowed to declare package-level
	// mutable variables.
	GlobalVarAllowed []string
	// KeyCoverage lists hash/key pairs that MUST carry a //manet:hashes
	// annotation, as "relpath:Func=Type" (methods as "Recv.Name"). The
	// key-coverage analyzer reports a missing required annotation, so the
	// check cannot be opted out of by deleting the directive.
	KeyCoverage []string
}

// DefaultConfig returns the repository's enforcement policy.
func DefaultConfig() Config {
	return Config{
		ScopePrefixes:    []string{"internal/", "cmd/"},
		RandAllowed:      []string{"internal/xrand"},
		GoroutineAllowed: []string{
			"internal/experiment/runner.go",
			"internal/sim/regions.go",
		},
		// The analyzer singletons below follow the go/analysis idiom of
		// package-level *Analyzer values; they are written once at init
		// and never mutated.
		GlobalVarAllowed: []string{
			"internal/lint/wallclock.go",
			"internal/lint/rand.go",
			"internal/lint/maporder.go",
			"internal/lint/goroutine.go",
			"internal/lint/floateq.go",
			"internal/lint/globals.go",
			"internal/lint/keycov.go",
			"internal/lint/substream.go",
			"internal/lint/noalloc.go",
		},
		KeyCoverage: []string{
			"internal/experiment:Run.key=Run",
			"internal/experiment:Options.Fingerprint=Options",
		},
	}
}

// inScope reports whether a package at the given module-relative path is
// analyzed under the config.
func (c Config) inScope(relPath string) bool {
	for _, p := range c.ScopePrefixes {
		if relPath == strings.TrimSuffix(p, "/") || strings.HasPrefix(relPath, p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Config Config
	Pkg    *Package

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
		Scope:   declNameAt(p.Pkg, pos),
	})
}

// AllAnalyzers returns the full manetlint suite in reporting order.
func AllAnalyzers() []*Analyzer {
	return []*Analyzer{
		NoWallclock,
		NoGlobalRand,
		MapOrder,
		NoNakedGoroutine,
		FloatEq,
		GlobalMutableState,
		KeyCoverage,
		Substream,
		NoAlloc,
	}
}

// Run applies the analyzers to every in-scope package and returns the
// surviving findings (suppressions applied), sorted by position then check.
func Run(pkgs []*Package, cfg Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !cfg.inScope(pkg.RelPath) {
			continue
		}
		sup := suppressionsOf(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Config: cfg, Pkg: pkg, check: a.Name, diags: &pkgDiags}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// suppressions maps (file, line) to the set of check names ignored there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, check string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	checks := lines[line]
	if checks == nil {
		checks = make(map[string]bool)
		lines[line] = checks
	}
	checks[check] = true
}

func (s suppressions) suppressed(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Check]
}

// suppressionsOf scans a package's comments for //lint:ignore directives.
// Each directive covers its own line and the next line.
func suppressionsOf(pkg *Package) suppressions {
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, reason, ok := parseIgnore(c.Text)
				if !ok || reason == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup.add(pos.Filename, pos.Line, check)
				sup.add(pos.Filename, pos.Line+1, check)
			}
		}
	}
	return sup
}

// parseIgnore decodes a "//lint:ignore <check> <reason>" comment.
func parseIgnore(text string) (check, reason string, ok bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	check, reason, _ = strings.Cut(rest, " ")
	return check, strings.TrimSpace(reason), check != ""
}

// BadSuppressions returns a finding for every //lint:ignore comment that
// lacks a reason, so suppressions stay self-documenting.
func BadSuppressions(pkgs []*Package, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !cfg.inScope(pkg.RelPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					check, reason, ok := parseIgnore(c.Text)
					if ok && reason == "" {
						diags = append(diags, Diagnostic{
							Pos:     pkg.Fset.Position(c.Pos()),
							Check:   "suppression",
							Message: fmt.Sprintf("lint:ignore %s needs a reason", check),
						})
					}
				}
			}
		}
	}
	return diags
}

// annotatedLines returns, per file, the set of lines covered by a
// //lint:order-independent annotation (the annotation's line and the next).
func annotatedLines(pkg *Package, directive string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != directive && !strings.HasPrefix(c.Text, directive+" ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return out
}

// walkFiles runs fn over every file of the package.
func walkFiles(p *Pass, fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
