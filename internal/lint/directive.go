package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file parses the //manet: source directives the flow-aware analyzers
// consume. Three directives exist, all placed in a function's doc comment:
//
//	//manet:hashes <Type>
//	    declares that the function is the canonical hash/key function of
//	    the named struct type (in the same package); the key-coverage
//	    analyzer then proves every field of <Type> is read in the function
//	    body (transitively through same-package helpers) or excluded.
//
//	//manet:hash-exclude <Field> <reason>
//	    names one field of the hashed type that is deliberately NOT part of
//	    the hash, with a mandatory reason. Only meaningful next to a
//	    //manet:hashes directive.
//
//	//manet:noalloc
//	    declares that the function (and everything it calls statically
//	    within its package) must not allocate in steady state; the noalloc
//	    analyzer rejects allocating constructs in its body, and generated
//	    AllocsPerRun conformance tests pin the claim at runtime.

// hashDirective is one parsed //manet:hashes annotation with its exclusions.
type hashDirective struct {
	TypeName string            // the hashed struct type, same package
	Excludes map[string]string // field name -> reason
	Fn       *ast.FuncDecl     // the annotated hash function
	Pos      token.Pos         // position of the //manet:hashes comment
}

// funcDirectives scans one function's doc comment for manet directives and
// returns the hash directive (nil if absent) and whether //manet:noalloc is
// present. Malformed directives are reported through report (which may be
// nil to ignore them).
func funcDirectives(fn *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) (hd *hashDirective, noalloc bool) {
	if fn.Doc == nil {
		return nil, false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		switch {
		case text == "//manet:noalloc" || strings.HasPrefix(text, "//manet:noalloc "):
			noalloc = true
		case strings.HasPrefix(text, "//manet:hashes"):
			arg := strings.TrimSpace(strings.TrimPrefix(text, "//manet:hashes"))
			if arg == "" || strings.ContainsAny(arg, " \t") {
				if report != nil {
					report(c.Pos(), "manet:hashes needs exactly one type name")
				}
				continue
			}
			if hd != nil {
				if report != nil {
					report(c.Pos(), "duplicate manet:hashes directive (already hashes %s)", hd.TypeName)
				}
				continue
			}
			hd = &hashDirective{TypeName: arg, Excludes: make(map[string]string), Fn: fn, Pos: c.Pos()}
		case strings.HasPrefix(text, "//manet:hash-exclude"):
			rest := strings.TrimSpace(strings.TrimPrefix(text, "//manet:hash-exclude"))
			field, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if field == "" || reason == "" {
				if report != nil {
					report(c.Pos(), "manet:hash-exclude needs a field name and a reason")
				}
				continue
			}
			if hd == nil {
				if report != nil {
					report(c.Pos(), "manet:hash-exclude without a preceding manet:hashes directive")
				}
				continue
			}
			if _, dup := hd.Excludes[field]; dup {
				if report != nil {
					report(c.Pos(), "duplicate manet:hash-exclude for field %s", field)
				}
				continue
			}
			hd.Excludes[field] = reason
		case strings.HasPrefix(text, "//manet:"):
			if report != nil {
				report(c.Pos(), "unknown manet directive %q", strings.TrimPrefix(strings.SplitN(text, " ", 2)[0], "//"))
			}
		}
	}
	return hd, noalloc
}

// funcDisplayName renders a FuncDecl's name the way the conformance tests
// and diagnostics refer to it: "Recv.Name" for methods (pointer receivers
// stripped), plain "Name" for functions.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// NoallocFuncs parses the non-test Go files in dir (no type checking) and
// returns the display names ("Recv.Name" or "Name") of every function
// annotated //manet:noalloc, sorted. The generated AllocsPerRun conformance
// tests use this to assert their coverage maps match the annotations in
// both directions.
func NoallocFuncs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", e.Name(), err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, noalloc := funcDirectives(fn, nil); noalloc {
				names = append(names, funcDisplayName(fn))
			}
		}
	}
	sort.Strings(names)
	return names, nil
}
