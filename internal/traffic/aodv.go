package traffic

// AODV route-table state machine. Sequence numbers follow the AODV
// freshness discipline with one simplification: counters start at zero and
// increase by small steps over a bounded run, so plain integer comparison
// replaces the RFC's wraparound-aware signed comparison.

// Route is one routing-table entry toward a destination.
type Route struct {
	// NextHop is the neighbor data packets for the destination are
	// forwarded to.
	NextHop int
	// Hops is the advertised distance to the destination via NextHop.
	Hops int
	// Seq is the destination sequence number the entry was learned under.
	Seq uint32
	// Expiry is the instant the entry stops being usable.
	Expiry float64
	// Valid distinguishes a live route from one invalidated by RERR or
	// link loss; an invalid entry still remembers Seq, as AODV requires.
	Valid bool
	// Known reports whether the slot has ever held a route.
	Known bool
}

// RouteTable is one node's routing table, slot-indexed by destination id so
// the steady-state lookup is a bounds-checked load — no map, no allocation.
type RouteTable struct {
	routes []Route
}

// NewRouteTable returns an empty table for destinations in [0, n).
func NewRouteTable(n int) *RouteTable {
	return &RouteTable{routes: make([]Route, n)}
}

// NewRouteTables returns count tables for destinations in [0, n) with one
// shared backing array — O(1) allocations for a simulation's per-node set.
func NewRouteTables(n, count int) []*RouteTable {
	backing := make([]Route, n*count)
	tables := make([]RouteTable, count)
	out := make([]*RouteTable, count)
	for c := 0; c < count; c++ {
		tables[c].routes = backing[c*n : (c+1)*n : (c+1)*n]
		out[c] = &tables[c]
	}
	return out
}

// Lookup returns the live route toward dst: valid and unexpired.
//
//manet:noalloc
func (t *RouteTable) Lookup(dst int, now float64) (Route, bool) {
	r := t.routes[dst]
	if !r.Known || !r.Valid || now > r.Expiry {
		return Route{}, false
	}
	return r, true
}

// LastSeq returns the last destination sequence number heard for dst (0 if
// none) — what a RREQ advertises as the minimum acceptable freshness.
func (t *RouteTable) LastSeq(dst int) uint32 { return t.routes[dst].Seq }

// Update installs a candidate route toward dst if it is fresher than the
// stored entry per the AODV rule: always accept into an unknown or invalid
// slot, otherwise require a strictly newer sequence number, or an equal one
// with a strictly shorter path. It reports whether the entry changed.
func (t *RouteTable) Update(dst int, r Route) bool {
	old := t.routes[dst]
	if old.Known && old.Valid && !fresher(r, old) {
		return false
	}
	r.Known = true
	r.Valid = true
	t.routes[dst] = r
	return true
}

// fresher reports whether candidate route r supersedes live route old.
func fresher(r, old Route) bool {
	if r.Seq != old.Seq {
		return r.Seq > old.Seq
	}
	return r.Hops < old.Hops
}

// Refresh extends the lifetime of a live route toward dst to at least
// until. Expired or invalid entries are left alone.
//
//manet:noalloc
func (t *RouteTable) Refresh(dst int, until float64) {
	r := &t.routes[dst]
	if r.Known && r.Valid && until > r.Expiry {
		r.Expiry = until
	}
}

// Invalidate tears down the route toward dst if it runs through nextHop
// (nextHop < 0 matches any), bumping the stored sequence number so stale
// advertisements cannot resurrect the path. It reports whether a live
// route was torn down.
func (t *RouteTable) Invalidate(dst, nextHop int) bool {
	r := &t.routes[dst]
	if !r.Known || !r.Valid || (nextHop >= 0 && r.NextHop != nextHop) {
		return false
	}
	r.Valid = false
	r.Seq++
	return true
}

// InvalidateVia tears down every live route through the failed neighbor
// nextHop, appending the affected destinations to dst. This is the
// link-break sweep behind a RERR: all destinations reached through the
// lost hop become unreachable at once.
func (t *RouteTable) InvalidateVia(nextHop int, dst []int) []int {
	for d := range t.routes {
		if t.Invalidate(d, nextHop) {
			dst = append(dst, d)
		}
	}
	return dst
}
