// Package traffic implements the routing-protocol state machines of the
// traffic subsystem: an AODV-style on-demand protocol (RREQ flood with
// sequence numbers and TTL-expanding ring search, RREP unicast
// back-propagation, route tables with lifetimes, RERR on next-hop loss)
// and an OLSR-style proactive protocol (periodic TC messages flooded over
// multipoint-relay sets selected from the 2-hop neighborhood gossiped by
// "Hello" tables).
//
// Like package hello, everything here is pure bookkeeping — no simulation
// clocks, no randomness — so the state machines are unit testable in
// isolation; package manet drives them from the event loop and owns every
// substream ('t' for CBR flow draws, 'q' for per-hop jitter).
package traffic

import "fmt"

// Mode selects the routing protocol carrying CBR traffic.
type Mode int

const (
	// Off disables the traffic subsystem (the zero value).
	Off Mode = iota
	// AODV runs the on-demand protocol: routes are discovered by RREQ
	// floods when a flow needs them and torn down by RERR on loss.
	AODV
	// OLSR runs the proactive protocol: topology-control (TC) messages
	// flooded over MPR sets keep link-state routes warm at every node.
	OLSR
)

// String returns the mode's display name.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case AODV:
		return "aodv"
	case OLSR:
		return "olsr"
	}
	return fmt.Sprintf("traffic.Mode(%d)", int(m))
}

// ModeByName resolves a display name back to a Mode.
func ModeByName(name string) (Mode, error) {
	switch name {
	case "off", "":
		return Off, nil
	case "aodv":
		return AODV, nil
	case "olsr":
		return OLSR, nil
	}
	return Off, fmt.Errorf("traffic: unknown mode %q", name)
}

// Config parameterizes the traffic subsystem of one run. The zero value
// disables it; WithDefaults fills the remaining zero fields once a Mode is
// set.
type Config struct {
	// Mode selects the routing protocol (Off disables traffic).
	Mode Mode
	// Flows is the number of concurrent CBR flows between random
	// source-destination pairs (default 8).
	Flows int
	// Rate is data packets per second per flow (default 2).
	Rate float64
	// Packets caps the packets each flow originates; 0 means unlimited
	// (flows emit until the run's drain horizon).
	Packets int
	// TTLStart is the initial RREQ ring radius of the expanding ring
	// search (default 2). AODV only.
	TTLStart int
	// TTLMax is the network-wide RREQ radius reached by ring escalation
	// (default 16). AODV only.
	TTLMax int
	// MaxRetries is how many network-wide RREQ attempts follow an
	// exhausted ring search before the discovery fails (default 2).
	MaxRetries int
	// RingTimeout is the per-TTL-unit discovery timeout in seconds: an
	// attempt with radius ttl waits ttl*RingTimeout before escalating
	// (default 0.2).
	RingTimeout float64
	// RouteLifetime is the active-route lifetime in seconds: a route not
	// refreshed by data or control traffic expires (default 10). AODV only.
	RouteLifetime float64
	// TCInterval is the topology-control emission period in seconds
	// (default 5). OLSR only.
	TCInterval float64
}

// Enabled reports whether the traffic subsystem is active.
func (c Config) Enabled() bool { return c.Mode != Off }

// WithDefaults returns c with unset fields defaulted. A disabled config is
// returned untouched, so the zero value stays zero.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.Flows == 0 {
		c.Flows = 8
	}
	if c.Rate == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.Rate = 2
	}
	if c.TTLStart == 0 {
		c.TTLStart = 2
	}
	if c.TTLMax == 0 {
		c.TTLMax = 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RingTimeout == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.RingTimeout = 0.2
	}
	if c.RouteLifetime == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.RouteLifetime = 10
	}
	if c.TCInterval == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.TCInterval = 5
	}
	return c
}

// Validate reports configuration errors. The disabled zero value is valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.Mode != AODV && c.Mode != OLSR:
		return fmt.Errorf("traffic: unknown mode %d", int(c.Mode))
	case c.Flows < 0:
		return fmt.Errorf("traffic: negative Flows %d", c.Flows)
	case c.Rate < 0:
		return fmt.Errorf("traffic: negative Rate %g", c.Rate)
	case c.Packets < 0:
		return fmt.Errorf("traffic: negative Packets %d", c.Packets)
	case c.TTLStart < 1 || c.TTLMax < c.TTLStart:
		return fmt.Errorf("traffic: need 1 <= TTLStart <= TTLMax, got [%d, %d]", c.TTLStart, c.TTLMax)
	case c.MaxRetries < 0:
		return fmt.Errorf("traffic: negative MaxRetries %d", c.MaxRetries)
	case c.RingTimeout < 0 || c.RouteLifetime < 0 || c.TCInterval < 0:
		return fmt.Errorf("traffic: negative timing (ring=%g lifetime=%g tc=%g)",
			c.RingTimeout, c.RouteLifetime, c.TCInterval)
	}
	return nil
}
