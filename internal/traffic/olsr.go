package traffic

// OLSR machinery: multipoint-relay (MPR) selection over the gossiped 2-hop
// neighborhood, and the per-node link-state table fed by TC messages with
// its BFS next-hop computation. All scratch is preallocated per LinkState,
// so the steady-state route lookup allocates nothing.

// SelectMPRs computes a multipoint relay set: the subset of 1-hop
// neighbors through which every 2-hop neighbor is reachable. neighbors
// lists the 1-hop ids ascending; twoHop[i] lists the 2-hop nodes reachable
// through neighbors[i] (already excluding the selector itself and its
// 1-hop set). The result is appended to dst in ascending id order.
//
// Selection is the standard greedy cover, with the tie rule pinned by
// TestSelectMPRsTieRule: first every neighbor that is the sole cover of
// some 2-hop node is taken (it must be in any cover), then neighbors are
// taken by descending uncovered-coverage count, smallest id winning ties.
func SelectMPRs(neighbors []int, twoHop [][]int, dst []int) []int {
	start := len(dst)
	covered := make(map[int]int, 16) // 2-hop node -> number of neighbors reaching it
	for _, reach := range twoHop {
		for _, x := range reach {
			covered[x]++
		}
	}
	uncovered := len(covered)
	picked := make([]bool, len(neighbors))
	cover := func(i int) {
		picked[i] = true
		for _, x := range twoHop[i] {
			if covered[x] > 0 {
				covered[x] = 0
				uncovered--
			}
		}
	}
	// Essential pass: a 2-hop node with exactly one cover forces its
	// neighbor into the set.
	for i := range neighbors {
		sole := false
		for _, x := range twoHop[i] {
			if covered[x] == 1 {
				sole = true
				break
			}
		}
		if sole {
			cover(i)
		}
	}
	// Greedy pass: maximum uncovered coverage, smallest id on ties (the
	// ascending scan with a strict > keeps the earliest maximum).
	for uncovered > 0 {
		best, bestGain := -1, 0
		for i := range neighbors {
			if picked[i] {
				continue
			}
			gain := 0
			for _, x := range twoHop[i] {
				if covered[x] > 0 {
					gain++
				}
			}
			if gain > bestGain ||
				(gain == bestGain && gain > 0 && neighbors[i] < neighbors[best]) {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			break // remaining 2-hop nodes are unreachable (stale gossip)
		}
		cover(best)
	}
	for i, p := range picked {
		if p {
			dst = append(dst, neighbors[i])
		}
	}
	sortInts(dst[start:])
	return dst
}

// sortInts is an allocation-free insertion sort (the sets are small:
// a handful of MPRs per node).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// LinkState is one node's link-state view: per TC originator, the
// advertised MPR-selector set under its latest ANSN, plus the next-hop
// table BFS derives from it. Mutations mark the table dirty; Recompute
// rebuilds routes outside the per-packet path, so NextHop stays a pair of
// array loads.
type LinkState struct {
	n    int
	ansn []uint32 // latest ANSN per originator
	has  []bool   // originator has a live TC entry
	sel  [][]int  // advertised selector sets (reused backings)

	dirty bool
	next  []int // next hop per destination, -1 = unknown
	hops  []int // BFS distance per destination, -1 = unreachable

	queue []int   // BFS scratch
	adj   [][]int // adjacency scratch (reused backings)
}

// NewLinkState returns an empty link-state table for node ids in [0, n).
func NewLinkState(n int) *LinkState {
	ls := &LinkState{
		n:     n,
		ansn:  make([]uint32, n),
		has:   make([]bool, n),
		sel:   make([][]int, n),
		next:  make([]int, n),
		hops:  make([]int, n),
		queue: make([]int, 0, n),
		adj:   make([][]int, n),
	}
	for i := range ls.next {
		ls.next[i] = -1
		ls.hops[i] = -1
	}
	ls.dirty = true
	return ls
}

// RecordTC ingests a TC advertisement: originator origin claims selector
// set sel under sequence number ansn. Stale (non-increasing) ANSNs are
// ignored. It reports whether the advertisement was fresh — the MPR
// flooding rule re-forwards only fresh copies. The selector slice is
// copied; the caller keeps ownership of sel.
func (ls *LinkState) RecordTC(origin int, ansn uint32, sel []int) bool {
	if ls.has[origin] && ansn <= ls.ansn[origin] {
		return false
	}
	ls.has[origin] = true
	ls.ansn[origin] = ansn
	ls.sel[origin] = append(ls.sel[origin][:0], sel...)
	ls.dirty = true
	return true
}

// MarkDirty forces the next Recompute (the driver calls it when the 1-hop
// neighbor set changes under the table).
func (ls *LinkState) MarkDirty() { ls.dirty = true }

// Dirty reports whether Recompute must run before NextHop is consulted.
func (ls *LinkState) Dirty() bool { return ls.dirty }

// Recompute rebuilds the next-hop table for self given its current 1-hop
// neighbors: breadth-first search over the undirected link set
// {self—neighbor} ∪ {originator—selector} from every live TC entry.
// Determinism: adjacency lists are built in ascending node order and BFS
// visits them in order, so equal-length paths resolve identically on every
// run.
func (ls *LinkState) Recompute(self int, neighbors []int) {
	ls.dirty = false
	for i := range ls.adj {
		ls.adj[i] = ls.adj[i][:0]
		ls.next[i] = -1
		ls.hops[i] = -1
	}
	for o := 0; o < ls.n; o++ {
		if !ls.has[o] {
			continue
		}
		for _, s := range ls.sel[o] {
			ls.adj[o] = append(ls.adj[o], s)
			ls.adj[s] = append(ls.adj[s], o)
		}
	}
	ls.next[self] = self
	ls.hops[self] = 0
	ls.queue = ls.queue[:0]
	for _, nb := range neighbors {
		if nb == self {
			continue
		}
		ls.next[nb] = nb
		ls.hops[nb] = 1
		ls.queue = append(ls.queue, nb)
	}
	for head := 0; head < len(ls.queue); head++ {
		u := ls.queue[head]
		for _, v := range ls.adj[u] {
			if ls.hops[v] >= 0 {
				continue
			}
			ls.hops[v] = ls.hops[u] + 1
			ls.next[v] = ls.next[u] // inherit the first hop
			ls.queue = append(ls.queue, v)
		}
	}
}

// NextHop returns the first hop toward dst, computed by the last
// Recompute. The caller must Recompute when Dirty reports true.
//
//manet:noalloc
func (ls *LinkState) NextHop(dst int) (int, bool) {
	nh := ls.next[dst]
	if nh < 0 {
		return 0, false
	}
	return nh, true
}

// Hops returns the BFS distance toward dst (-1 if unreachable).
func (ls *LinkState) Hops(dst int) int { return ls.hops[dst] }
