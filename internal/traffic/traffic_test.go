package traffic

import (
	"reflect"
	"testing"
)

func TestConfigDefaultsAndValidate(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if got := (Config{}).WithDefaults(); got != (Config{}) {
		t.Fatalf("disabled config mutated by defaults: %+v", got)
	}
	c := Config{Mode: AODV}.WithDefaults()
	if c.Flows == 0 || c.Rate == 0 || c.TTLStart == 0 || c.TTLMax == 0 ||
		c.RingTimeout == 0 || c.RouteLifetime == 0 || c.TCInterval == 0 {
		t.Fatalf("defaults left zero fields: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	bad := []Config{
		{Mode: Mode(7)},
		{Mode: AODV, Flows: -1},
		{Mode: AODV, Rate: -1},
		{Mode: AODV, Packets: -1},
		{Mode: AODV, TTLStart: 4, TTLMax: 2},
		{Mode: AODV, MaxRetries: -1},
		{Mode: OLSR, TCInterval: -1},
	}
	for _, b := range bad {
		if err := b.WithDefaults().Validate(); err == nil {
			t.Errorf("config %+v accepted", b)
		}
	}
	for _, m := range []Mode{Off, AODV, OLSR} {
		got, err := ModeByName(m.String())
		if err != nil || got != m {
			t.Errorf("ModeByName(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ModeByName("dsr"); err == nil {
		t.Error("unknown mode name accepted")
	}
}

func TestRouteTableFreshness(t *testing.T) {
	rt := NewRouteTable(8)
	if _, ok := rt.Lookup(3, 0); ok {
		t.Fatal("empty table returned a route")
	}
	if !rt.Update(3, Route{NextHop: 1, Hops: 4, Seq: 5, Expiry: 10}) {
		t.Fatal("initial install rejected")
	}
	if r, ok := rt.Lookup(3, 1); !ok || r.NextHop != 1 {
		t.Fatalf("Lookup after install = %+v, %v", r, ok)
	}
	if rt.Update(3, Route{NextHop: 2, Hops: 9, Seq: 4, Expiry: 10}) {
		t.Fatal("stale sequence number accepted over a live route")
	}
	if rt.Update(3, Route{NextHop: 2, Hops: 5, Seq: 5, Expiry: 10}) {
		t.Fatal("equal seq with longer path accepted")
	}
	if !rt.Update(3, Route{NextHop: 2, Hops: 3, Seq: 5, Expiry: 10}) {
		t.Fatal("equal seq with shorter path rejected")
	}
	if !rt.Update(3, Route{NextHop: 4, Hops: 9, Seq: 6, Expiry: 10}) {
		t.Fatal("newer sequence number rejected")
	}
	if _, ok := rt.Lookup(3, 11); ok {
		t.Fatal("expired route returned")
	}
	rt.Refresh(3, 20)
	if _, ok := rt.Lookup(3, 11); !ok {
		t.Fatal("refreshed route not returned")
	}
}

func TestRouteTableInvalidate(t *testing.T) {
	rt := NewRouteTable(8)
	rt.Update(3, Route{NextHop: 1, Hops: 2, Seq: 5, Expiry: 100})
	rt.Update(4, Route{NextHop: 1, Hops: 3, Seq: 2, Expiry: 100})
	rt.Update(5, Route{NextHop: 2, Hops: 1, Seq: 9, Expiry: 100})
	if rt.Invalidate(3, 2) {
		t.Fatal("invalidated a route via a different next hop")
	}
	broken := rt.InvalidateVia(1, nil)
	if !reflect.DeepEqual(broken, []int{3, 4}) {
		t.Fatalf("InvalidateVia(1) = %v, want [3 4]", broken)
	}
	if _, ok := rt.Lookup(3, 0); ok {
		t.Fatal("invalidated route still live")
	}
	if _, ok := rt.Lookup(5, 0); !ok {
		t.Fatal("unrelated route torn down")
	}
	// The seq bump keeps the stale advertisement out (AODV: an invalid
	// entry remembers and increments the destination sequence number).
	if rt.LastSeq(3) != 6 {
		t.Fatalf("LastSeq after invalidate = %d, want 6", rt.LastSeq(3))
	}
	if rt.Update(3, Route{NextHop: 7, Hops: 1, Seq: 5, Expiry: 100}) {
		// An invalid slot accepts any candidate per the AODV rule, so
		// this must be accepted — the guard above is about seq history.
		t.Log("note: invalid slot accepted the stale candidate (allowed)")
	}
}

func TestSelectMPRsCoversEveryTwoHop(t *testing.T) {
	// Irregular instance: self with 1-hop {1,2,3,4} and 2-hop {10..15}.
	neighbors := []int{1, 2, 3, 4}
	twoHop := [][]int{
		{10, 11},     // via 1
		{11, 12, 13}, // via 2
		{13, 14},     // via 3
		{14, 15},     // via 4
	}
	mprs := SelectMPRs(neighbors, twoHop, nil)
	covered := map[int]bool{}
	for i, nb := range neighbors {
		for _, m := range mprs {
			if m == nb {
				for _, x := range twoHop[i] {
					covered[x] = true
				}
			}
		}
	}
	for _, x := range []int{10, 11, 12, 13, 14, 15} {
		if !covered[x] {
			t.Errorf("2-hop node %d not covered by MPR set %v", x, mprs)
		}
	}
	// 10 only via 1, 12 only via 2, 15 only via 4: all essential; they
	// cover everything, so 3 must not be selected.
	if !reflect.DeepEqual(mprs, []int{1, 2, 4}) {
		t.Errorf("MPR set = %v, want [1 2 4]", mprs)
	}
}

func TestSelectMPRsTieRule(t *testing.T) {
	// Two neighbors with identical coverage: the smallest id must win.
	neighbors := []int{5, 9}
	twoHop := [][]int{{20, 21}, {20, 21}}
	if got := SelectMPRs(neighbors, twoHop, nil); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("tie broken to %v, want [5]", got)
	}
	// Same instance with ids swapped in listing order: still the smaller id.
	neighbors = []int{9, 5}
	if got := SelectMPRs(neighbors, twoHop, nil); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("tie broken to %v, want [5] (order-independent)", got)
	}
	if got := SelectMPRs(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty neighborhood selected %v", got)
	}
}

func TestLinkStateRoutes(t *testing.T) {
	// Line 0-1-2-3 known to node 0 via TC: 1 advertises selector {0,2},
	// 2 advertises selector {1,3}.
	ls := NewLinkState(6)
	if !ls.RecordTC(1, 1, []int{0, 2}) {
		t.Fatal("fresh TC rejected")
	}
	if !ls.RecordTC(2, 1, []int{1, 3}) {
		t.Fatal("fresh TC rejected")
	}
	if ls.RecordTC(1, 1, []int{0, 2}) {
		t.Fatal("duplicate ANSN accepted")
	}
	if !ls.Dirty() {
		t.Fatal("mutated table not dirty")
	}
	ls.Recompute(0, []int{1})
	if ls.Dirty() {
		t.Fatal("recomputed table still dirty")
	}
	for dst, want := range map[int]int{1: 1, 2: 1, 3: 1} {
		nh, ok := ls.NextHop(dst)
		if !ok || nh != want {
			t.Errorf("NextHop(%d) = %d, %v; want %d", dst, nh, ok, want)
		}
	}
	if ls.Hops(3) != 3 {
		t.Errorf("Hops(3) = %d, want 3", ls.Hops(3))
	}
	if _, ok := ls.NextHop(5); ok {
		t.Error("unreachable destination got a next hop")
	}
	// A newer ANSN replaces the selector set: 2 loses selector 3, so 3
	// becomes unreachable.
	if !ls.RecordTC(2, 2, []int{1}) {
		t.Fatal("newer ANSN rejected")
	}
	ls.Recompute(0, []int{1})
	if _, ok := ls.NextHop(3); ok {
		t.Error("stale link survived the ANSN update")
	}
}

func TestSelectMPRsAppendsSorted(t *testing.T) {
	// dst is appended to, existing contents untouched, result ascending.
	base := []int{99}
	got := SelectMPRs([]int{4, 2}, [][]int{{30}, {31}}, base)
	if !reflect.DeepEqual(got, []int{99, 2, 4}) {
		t.Fatalf("append result = %v, want [99 2 4]", got)
	}
}
