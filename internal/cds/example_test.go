package cds_test

import (
	"fmt"

	"mstc/internal/cds"
)

// A five-node path: the three interior nodes form the dominating set.
func ExampleCompute() {
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}
	set := cds.Compute(adj)
	fmt.Println("gateways:", set)
	fmt.Println("valid CDS:", cds.IsCDS(adj, set))
	// Output:
	// gateways: [1 2 3]
	// valid CDS: true
}
