// Package cds implements connected-dominating-set formation by the
// Wu–Li marking process with Rule-1/Rule-2 pruning — the broadcast
// infrastructure of the paper's references [34] (Wu & Dai 2003, generic
// broadcast) and [35] (Wu & Dai 2004, mobility management for CDS-based
// broadcasting). A CDS lets only gateway nodes forward broadcasts, cutting
// the flooding overhead the reactive consistency scheme worries about
// (§4.1: "a broadcast process can be efficiently implemented by selecting a
// small forward node set").
//
// Inputs are 2-hop views: every node knows its neighbors and each
// neighbor's neighbor list (gossiped in "Hello" messages). All decisions
// are purely local, so the same code serves the omniscient analyzer and a
// distributed implementation.
package cds

import "sort"

// View is one node's 2-hop view: its own id, its neighbor ids, and each
// neighbor's neighbor ids.
type View struct {
	Self      int
	Neighbors []int
	// NeighborsOf maps each neighbor id to that neighbor's own neighbor
	// ids (as advertised).
	NeighborsOf map[int][]int
}

// Marked applies the Wu–Li marking process to the view: the node is marked
// (joins the dominating set) iff it has two neighbors that are not directly
// connected.
func Marked(v View) bool {
	for i, a := range v.Neighbors {
		na := v.NeighborsOf[a]
		for _, b := range v.Neighbors[i+1:] {
			if !containsInt(na, b) {
				return true
			}
		}
	}
	return false
}

// Rule1 reports whether a marked node can unmark itself because a single
// higher-priority marked neighbor covers its whole neighborhood:
// N(u) ⊆ N(v) ∪ {v} with (deg, id) priority of v above u's.
func Rule1(v View, marked func(int) bool) bool {
	for _, w := range v.Neighbors {
		if !marked(w) || !higherPriority(w, len(v.NeighborsOf[w]), v.Self, len(v.Neighbors)) {
			continue
		}
		if coveredBy(v.Neighbors, w, v.NeighborsOf[w], nil, -1) {
			return true
		}
	}
	return false
}

// Rule2 reports whether a marked node can unmark itself because two
// *connected* higher-priority marked neighbors jointly cover its whole
// neighborhood: N(u) ⊆ N(v) ∪ N(w) ∪ {v, w}.
func Rule2(v View, marked func(int) bool) bool {
	for i, a := range v.Neighbors {
		if !marked(a) || !higherPriority(a, len(v.NeighborsOf[a]), v.Self, len(v.Neighbors)) {
			continue
		}
		na := v.NeighborsOf[a]
		for _, b := range v.Neighbors[i+1:] {
			if !marked(b) || !higherPriority(b, len(v.NeighborsOf[b]), v.Self, len(v.Neighbors)) {
				continue
			}
			if !containsInt(na, b) {
				continue // v and w must be directly connected
			}
			if coveredBy(v.Neighbors, a, na, v.NeighborsOf[b], b) {
				return true
			}
		}
	}
	return false
}

// coveredBy reports whether every id in nbrs is v1, v2, or inside cover1 ∪
// cover2 (cover2/v2 may be nil/-1 for the single-cover case).
func coveredBy(nbrs []int, v1 int, cover1, cover2 []int, v2 int) bool {
	for _, x := range nbrs {
		if x == v1 || x == v2 {
			continue
		}
		if containsInt(cover1, x) || (cover2 != nil && containsInt(cover2, x)) {
			continue
		}
		return false
	}
	return true
}

// higherPriority orders nodes by (degree, id): ties favor the larger id,
// the standard Wu–Li priority that keeps pruning consistent network-wide.
func higherPriority(a, degA, b, degB int) bool {
	if degA != degB {
		return degA > degB
	}
	return a > b
}

// Compute runs the full pipeline over an omniscient adjacency (adj[u] =
// sorted neighbor ids of u): marking, then Rule-1 and Rule-2 pruning, and
// returns the ids of the final dominating set in ascending order.
func Compute(adj [][]int) []int {
	n := len(adj)
	views := make([]View, n)
	for u := 0; u < n; u++ {
		v := View{Self: u, Neighbors: adj[u], NeighborsOf: make(map[int][]int, len(adj[u]))}
		for _, w := range adj[u] {
			v.NeighborsOf[w] = adj[w]
		}
		views[u] = v
	}
	marks := make([]bool, n)
	for u := 0; u < n; u++ {
		marks[u] = Marked(views[u])
	}
	isMarked := func(x int) bool { return marks[x] }
	// Pruning decisions read the *initial* marking (the rules are proven
	// safe with respect to it and need no iteration).
	pruned := make([]bool, n)
	for u := 0; u < n; u++ {
		if marks[u] && (Rule1(views[u], isMarked) || Rule2(views[u], isMarked)) {
			pruned[u] = true
		}
	}
	var out []int
	for u := 0; u < n; u++ {
		if marks[u] && !pruned[u] {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// IsCDS reports whether set is a connected dominating set of the graph
// given by adj: every node is in the set or adjacent to it, and the induced
// subgraph over the set is connected. Graphs with fewer than 2 nodes, or a
// complete neighborhood structure that marks nobody, accept the empty set
// as vacuously dominating only when every node is adjacent to every other.
func IsCDS(adj [][]int, set []int) bool {
	n := len(adj)
	if n <= 1 {
		return true
	}
	in := make([]bool, n)
	for _, v := range set {
		in[v] = true
	}
	if len(set) == 0 {
		// Only a complete graph (single clique) is dominated by nothing:
		// then any single node reaches all others directly.
		for u := 0; u < n; u++ {
			if len(adj[u]) != n-1 {
				return false
			}
		}
		return true
	}
	// Domination.
	for u := 0; u < n; u++ {
		if in[u] {
			continue
		}
		ok := false
		for _, w := range adj[u] {
			if in[w] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	// Connectivity of the induced subgraph.
	seen := make([]bool, n)
	stack := []int{set[0]}
	seen[set[0]] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if in[w] && !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(set)
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
