package cds

import (
	"reflect"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func adjOf(g *graph.Undirected) [][]int {
	adj := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Neighbors(u) {
			adj[u] = append(adj[u], h.To)
		}
		// Neighbors() order is insertion order; sort for determinism.
		for i := 1; i < len(adj[u]); i++ {
			for j := i; j > 0 && adj[u][j] < adj[u][j-1]; j-- {
				adj[u][j], adj[u][j-1] = adj[u][j-1], adj[u][j]
			}
		}
	}
	return adj
}

func viewOf(adj [][]int, u int) View {
	v := View{Self: u, Neighbors: adj[u], NeighborsOf: map[int][]int{}}
	for _, w := range adj[u] {
		v.NeighborsOf[w] = adj[w]
	}
	return v
}

func TestMarkedLine(t *testing.T) {
	// 0-1-2: node 1 has two unconnected neighbors, the ends do not.
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	adj := adjOf(g)
	if Marked(viewOf(adj, 0)) || Marked(viewOf(adj, 2)) {
		t.Error("leaf nodes must not be marked")
	}
	if !Marked(viewOf(adj, 1)) {
		t.Error("middle node must be marked")
	}
}

func TestMarkedTriangle(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	adj := adjOf(g)
	for u := 0; u < 3; u++ {
		if Marked(viewOf(adj, u)) {
			t.Errorf("clique node %d marked", u)
		}
	}
	if got := Compute(adj); len(got) != 0 {
		t.Errorf("triangle CDS = %v, want empty", got)
	}
	if !IsCDS(adj, nil) {
		t.Error("empty set dominates a clique")
	}
}

func TestComputeLine(t *testing.T) {
	g := graph.NewUndirected(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(i-1, i, 1)
	}
	adj := adjOf(g)
	got := Compute(adj)
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("line CDS = %v, want %v", got, want)
	}
	if !IsCDS(adj, got) {
		t.Error("line CDS invalid")
	}
}

func TestRule1PrunesDominatedNode(t *testing.T) {
	// Star plus chord: 0 is the hub connected to 1,2,3; 1 is connected
	// to 2 as well. Node 1's neighborhood {0,2} is covered by hub 0
	// (N(0) = {1,2,3}), and 0 has higher degree, so 1 must not survive.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 2, 1)
	adj := adjOf(g)
	got := Compute(adj)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("CDS = %v, want [0]", got)
	}
}

func TestCDSPropertyOnRandomGraphs(t *testing.T) {
	// Wu–Li with Rule-1/2 pruning yields a CDS on every connected
	// non-complete unit-disk instance.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 20 + rng.Intn(80)
		pts := mobility.UniformPoints(arena, n, rng)
		g := graph.UnitDisk(pts, 250)
		if !g.Connected() {
			return true
		}
		adj := adjOf(g)
		set := Compute(adj)
		if !IsCDS(adj, set) {
			t.Logf("seed %d: invalid CDS %v", seed, set)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCDSIsSmall(t *testing.T) {
	// The pruned set should be a small fraction of a dense network.
	rng := xrand.New(17)
	for trial := 0; trial < 5; trial++ {
		pts := mobility.UniformPoints(arena, 100, rng)
		g := graph.UnitDisk(pts, 250)
		if !g.Connected() {
			continue
		}
		adj := adjOf(g)
		set := Compute(adj)
		if len(set) > 60 {
			t.Errorf("CDS of size %d on a 100-node dense network (marking without pruning?)", len(set))
		}
		// And strictly smaller than plain marking.
		markedCount := 0
		for u := range adj {
			if Marked(viewOf(adj, u)) {
				markedCount++
			}
		}
		if len(set) > markedCount {
			t.Errorf("pruned set (%d) larger than marked set (%d)", len(set), markedCount)
		}
	}
}

func TestIsCDSRejectsBadSets(t *testing.T) {
	g := graph.NewUndirected(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(i-1, i, 1)
	}
	adj := adjOf(g)
	if IsCDS(adj, []int{1, 3}) {
		t.Error("disconnected dominating set accepted")
	}
	if IsCDS(adj, []int{1}) {
		t.Error("non-dominating set accepted")
	}
	if IsCDS(adj, nil) {
		t.Error("empty set accepted for a path")
	}
	if !IsCDS(nil, nil) || !IsCDS([][]int{nil}, nil) {
		t.Error("trivial graphs rejected")
	}
}

func TestRule2JointCoverage(t *testing.T) {
	// Node 0 has neighbors {1, 2, 3, 4}; 1 and 2 are connected to each
	// other and jointly cover 3 and 4, and both out-rank 0 by degree
	// (each gets two extra pendant-ish neighbors). Rule 1 cannot prune 0
	// (neither 1 nor 2 alone covers it); Rule 2 must.
	g := graph.NewUndirected(9)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 4, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(1, 5, 1)
	g.AddEdge(1, 6, 1)
	g.AddEdge(2, 7, 1)
	g.AddEdge(2, 8, 1)
	adj := adjOf(g)
	v0 := viewOf(adj, 0)
	if !Marked(v0) {
		t.Fatal("node 0 should be marked (neighbors 3 and 4 are unconnected)")
	}
	marked := func(x int) bool { return Marked(viewOf(adj, x)) }
	if Rule1(v0, marked) {
		t.Fatal("Rule 1 should not prune node 0 (no single cover)")
	}
	if !Rule2(v0, marked) {
		t.Fatal("Rule 2 should prune node 0 (1 and 2 jointly cover)")
	}
	set := Compute(adj)
	if contains(set, 0) {
		t.Errorf("node 0 should be pruned by Rule 2; CDS = %v", set)
	}
	if !IsCDS(adj, set) {
		t.Errorf("result %v is not a CDS", set)
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
