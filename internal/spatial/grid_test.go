package spatial

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(arena, 0); err == nil {
		t.Error("cell=0 accepted")
	}
	if _, err := NewIndex(arena, -5); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := NewIndex(geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)}, 10); err == nil {
		t.Error("empty arena accepted")
	}
	if _, err := NewIndex(arena, 250); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on bad cell")
		}
	}()
	MustIndex(arena, 0)
}

func TestWithinSimple(t *testing.T) {
	ix := MustIndex(arena, 100)
	pts := []geom.Point{
		geom.Pt(100, 100), // 0
		geom.Pt(150, 100), // 1: 50 from 0
		geom.Pt(100, 400), // 2: 300 from 0
		geom.Pt(103, 104), // 3: 5 from 0
	}
	ix.Build(pts)
	got := ix.Within(geom.Pt(100, 100), 60, nil)
	want := []int{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Within = %v, want %v", got, want)
	}
	// Boundary inclusive.
	got = ix.Within(geom.Pt(100, 100), 50, nil)
	want = []int{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Within(50) = %v, want %v (boundary inclusive)", got, want)
	}
	got = ix.Within(geom.Pt(100, 100), 49.999, nil)
	want = []int{0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Within(49.999) = %v, want %v", got, want)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{geom.Pt(1, 1)})
	if got := ix.Within(geom.Pt(1, 1), -1, nil); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
}

func TestWithinOfExcludesSelf(t *testing.T) {
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{geom.Pt(10, 10), geom.Pt(20, 10), geom.Pt(880, 880)})
	got := ix.WithinOf(0, 50, nil)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("WithinOf(0) = %v, want [1]", got)
	}
	got = ix.WithinOf(2, 50, nil)
	if len(got) != 0 {
		t.Errorf("WithinOf(2) = %v, want empty", got)
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, cellSel, radSel uint8) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(200)
		pts := mobility.UniformPoints(arena, n, rng)
		cell := []float64{25, 50, 125, 250, 500, 2000}[int(cellSel)%6]
		r := []float64{0, 10, 50, 250, 900, 1500}[int(radSel)%6]
		ix := MustIndex(arena, cell)
		ix.Build(pts)
		for trial := 0; trial < 10; trial++ {
			q := geom.Pt(rng.Uniform(-100, 1000), rng.Uniform(-100, 1000))
			got := ix.Within(q, r, nil)
			want := BruteWithin(pts, q, r, nil)
			if !reflect.DeepEqual(got, want) {
				t.Logf("mismatch: n=%d cell=%v r=%v q=%v got=%v want=%v", n, cell, r, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWithinSortedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		pts := mobility.UniformPoints(arena, 150, rng)
		ix := MustIndex(arena, 125)
		ix.Build(pts)
		got := ix.Within(geom.Pt(450, 450), 300, nil)
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWithinAppendsToDst(t *testing.T) {
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{geom.Pt(5, 5)})
	dst := []int{99}
	got := ix.Within(geom.Pt(5, 5), 1, dst)
	if !reflect.DeepEqual(got, []int{99, 0}) {
		t.Errorf("append semantics broken: %v", got)
	}
}

func TestRebuild(t *testing.T) {
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{geom.Pt(5, 5), geom.Pt(800, 800)})
	if got := ix.Within(geom.Pt(5, 5), 10, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("first build: %v", got)
	}
	// Move node 0 far away; rebuild must forget the old cell.
	ix.Build([]geom.Point{geom.Pt(800, 805), geom.Pt(800, 800)})
	if got := ix.Within(geom.Pt(5, 5), 10, nil); len(got) != 0 {
		t.Errorf("stale entries after rebuild: %v", got)
	}
	if got := ix.Within(geom.Pt(800, 802), 10, nil); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("rebuilt positions wrong: %v", got)
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Position(1) != geom.Pt(800, 800) {
		t.Errorf("Position(1) = %v", ix.Position(1))
	}
}

func TestPairs(t *testing.T) {
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 0), geom.Pt(60, 0), geom.Pt(500, 500),
	})
	var got [][2]int
	ix.Pairs(40, func(i, j int) { got = append(got, [2]int{i, j}) })
	want := [][2]int{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Pairs = %v, want %v", got, want)
	}
}

func TestPairsCompleteAgainstBrute(t *testing.T) {
	rng := xrand.New(77)
	pts := mobility.UniformPoints(arena, 120, rng)
	ix := MustIndex(arena, 125)
	ix.Build(pts)
	const r = 250.0
	got := map[[2]int]bool{}
	ix.Pairs(r, func(i, j int) {
		if i >= j {
			t.Fatalf("Pairs emitted i >= j: (%d, %d)", i, j)
		}
		if got[[2]int{i, j}] {
			t.Fatalf("Pairs emitted duplicate (%d, %d)", i, j)
		}
		got[[2]int{i, j}] = true
	})
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= r && !got[[2]int{i, j}] {
				t.Errorf("missing pair (%d, %d)", i, j)
			}
		}
	}
}

func TestPointsOutsideArenaStillIndexed(t *testing.T) {
	// Clamping to edge cells must not lose points that stray outside the
	// declared arena (defensive: mobility clamps, but the index should be
	// robust).
	ix := MustIndex(arena, 100)
	ix.Build([]geom.Point{geom.Pt(-50, -50), geom.Pt(950, 950)})
	if got := ix.Within(geom.Pt(-50, -50), 1, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("outside-arena point lost: %v", got)
	}
	if got := ix.Within(geom.Pt(950, 950), 1, nil); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("outside-arena point lost: %v", got)
	}
}

func BenchmarkWithinGrid(b *testing.B) {
	rng := xrand.New(1)
	pts := mobility.UniformPoints(arena, 100, rng)
	ix := MustIndex(arena, 125)
	ix.Build(pts)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.Within(pts[i%100], 250, buf[:0])
	}
}

func BenchmarkWithinBrute(b *testing.B) {
	rng := xrand.New(1)
	pts := mobility.UniformPoints(arena, 100, rng)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = BruteWithin(pts, pts[i%100], 250, buf[:0])
	}
}
