// Package spatial provides a uniform grid index over the simulation arena
// for fast fixed-radius neighbor queries.
//
// The radio model asks "which nodes are within range r of point p right
// now?" once per transmission, and the snapshot analyzer asks for all pairs
// within the normal range at every sample instant. With n nodes spread over
// the arena, bucketing by a cell size on the order of the query radius makes
// both expected O(k) in the number of results instead of O(n).
//
// All query results are returned in ascending node-id order so downstream
// consumers remain deterministic.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"mstc/internal/geom"
)

// Index is a uniform grid over an arena holding one point per node id.
// Build may be called repeatedly to re-index fresh positions; queries are
// read-only and safe to run concurrently with each other (but not with
// Build).
type Index struct {
	arena geom.Rect
	cell  float64
	nx    int
	ny    int
	cells [][]int32
	pts   []geom.Point
}

// NewIndex creates an index over the arena with the given cell size.
// A cell size near the typical query radius is a good default; see
// BenchmarkAblationGridCell for the measured trade-off.
func NewIndex(arena geom.Rect, cell float64) (*Index, error) {
	if arena.Empty() {
		return nil, fmt.Errorf("spatial: empty arena")
	}
	if cell <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %g", cell)
	}
	nx := int(math.Ceil(arena.Width()/cell)) + 1
	ny := int(math.Ceil(arena.Height()/cell)) + 1
	return &Index{
		arena: arena,
		cell:  cell,
		nx:    nx,
		ny:    ny,
		cells: make([][]int32, nx*ny),
	}, nil
}

// MustIndex is NewIndex that panics on error, for call sites with
// compile-time-constant arguments.
func MustIndex(arena geom.Rect, cell float64) *Index {
	ix, err := NewIndex(arena, cell)
	if err != nil {
		panic(err)
	}
	return ix
}

func (ix *Index) cellOf(p geom.Point) (cx, cy int) {
	cx = int((p.X - ix.arena.Min.X) / ix.cell)
	cy = int((p.Y - ix.arena.Min.Y) / ix.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= ix.nx {
		cx = ix.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= ix.ny {
		cy = ix.ny - 1
	}
	return cx, cy
}

// Build (re)indexes the given positions; the point at index i belongs to
// node id i. The slice is retained until the next Build, so callers must not
// mutate it while querying.
func (ix *Index) Build(points []geom.Point) {
	for i := range ix.cells {
		ix.cells[i] = ix.cells[i][:0]
	}
	ix.pts = points
	for id, p := range points {
		cx, cy := ix.cellOf(p)
		c := cy*ix.nx + cx
		ix.cells[c] = append(ix.cells[c], int32(id))
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Position returns the indexed position of node id.
func (ix *Index) Position(id int) geom.Point { return ix.pts[id] }

// Within appends to dst the ids of all indexed nodes within distance r of p
// (inclusive), in ascending id order, and returns the extended slice.
// Pass a non-nil dst to avoid allocation on hot paths.
func (ix *Index) Within(p geom.Point, r float64, dst []int) []int {
	start := len(dst)
	dst = ix.WithinUnsorted(p, r, dst)
	sort.Ints(dst[start:])
	return dst
}

// WithinUnsorted is Within without the final sort: ids are appended in cell
// scan order (row-major cells, ascending ids inside each cell) — a fixed,
// deterministic order, just not globally ascending. Hot paths that filter
// the candidates further can sort the smaller filtered set instead.
func (ix *Index) WithinUnsorted(p geom.Point, r float64, dst []int) []int {
	if r < 0 {
		return dst
	}
	r2 := r * r
	cx0, cy0 := ix.cellOf(geom.Pt(p.X-r, p.Y-r))
	cx1, cy1 := ix.cellOf(geom.Pt(p.X+r, p.Y+r))
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * ix.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range ix.cells[row+cx] {
				if ix.pts[id].Dist2(p) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// WithinOf is Within centered on node id's own position, with id itself
// excluded from the result.
func (ix *Index) WithinOf(id int, r float64, dst []int) []int {
	start := len(dst)
	dst = ix.Within(ix.pts[id], r, dst)
	out := dst[start:start]
	for _, v := range dst[start:] {
		if v != id {
			out = append(out, v)
		}
	}
	return dst[:start+len(out)]
}

// Pairs calls fn(i, j) for every pair of distinct indexed nodes with
// distance at most r, with i < j, in deterministic (lexicographic) order.
func (ix *Index) Pairs(r float64, fn func(i, j int)) {
	if r < 0 {
		return
	}
	buf := make([]int, 0, 64)
	for i := range ix.pts {
		buf = ix.Within(ix.pts[i], r, buf[:0])
		for _, j := range buf {
			if j > i {
				fn(i, j)
			}
		}
	}
}

// BruteWithin is the O(n) reference implementation of Within, used for
// differential testing and as a fallback for tiny n.
func BruteWithin(points []geom.Point, p geom.Point, r float64, dst []int) []int {
	r2 := r * r
	for id := range points {
		if points[id].Dist2(p) <= r2 {
			dst = append(dst, id)
		}
	}
	return dst
}
