package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mstc/internal/manet"
)

// sampleResult exercises every field class the store must round-trip:
// strings, ints, and float64s whose decimal rendering needs the full
// shortest-round-trip treatment.
func sampleResult(i int) manet.Result {
	return manet.Result{
		Protocol:             "RNG",
		Connectivity:         0.1 + 0.2 + float64(i)/7, // deliberately non-terminating binary fractions
		Floods:               100 + i,
		AvgTxRange:           187.64528374650987 + float64(i),
		AvgLogicalDegree:     3.0000000000000004,
		AvgPhysicalDegree:    12.99999999999999,
		SnapshotConnectivity: 1.0 / 3.0,
		Snapshots:            i,
		HelloTx:              2048,
		DataTx:               4096,
		DataEnergy:           0.7071067811865476,
		HelloEnergy:          2048,
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPutGetRoundTrip pins the bit-exactness the golden determinism
// tests rely on: a result read back from disk must compare equal to the
// one stored, field for field, including every float bit.
func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	k := Key{Fingerprint: "fp01", Run: 0xDEADBEEFCAFE, Rep: 3}
	want := sampleResult(1)
	if err := s.Put(k, "RNG speed=40 rep=3", 1, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k, "RNG speed=40 rep=3")
	if !ok {
		t.Fatal("stored record not found")
	}
	if got != want {
		t.Errorf("round-trip changed the result:\n got %#v\nwant %#v", got, want)
	}
	// Wrong descriptor, rep, or fingerprint must all read as misses.
	if _, ok := s.Get(k, "MST speed=40 rep=3"); ok {
		t.Error("Get ignored a descriptor mismatch")
	}
	if _, ok := s.Get(Key{Fingerprint: "fp01", Run: k.Run, Rep: 4}, "RNG speed=40 rep=3"); ok {
		t.Error("Get returned a record for the wrong rep")
	}
	if _, ok := s.Get(Key{Fingerprint: "fp02", Run: k.Run, Rep: 3}, "RNG speed=40 rep=3"); ok {
		t.Error("Get returned a record for the wrong fingerprint")
	}
}

// TestCorruptRecordIsAMiss flips bytes in a stored record and asserts
// the store re-runs (miss) rather than trusts it, for several corruption
// shapes: payload bit-flip, checksum-line damage, truncation, garbage.
func TestCorruptRecordIsAMiss(t *testing.T) {
	k := Key{Fingerprint: "fp01", Run: 42, Rep: 0}
	const desc = "RNG speed=1 rep=0"
	corrupt := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"payload-flip", func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b }},
		{"header-flip", func(b []byte) []byte { b[8] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"garbage", func(b []byte) []byte { return []byte("not a record") }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir())
			if err := s.Put(k, desc, 1, sampleResult(0)); err != nil {
				t.Fatal(err)
			}
			path := s.recordPath(k, false)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k, desc); ok {
				t.Error("corrupt record satisfied Get")
			}
			saw := 0
			if err := s.Scan(func(info RecordInfo) error {
				saw++
				if info.Err == nil {
					t.Error("Scan decoded a corrupt record without error")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if saw != 1 {
				t.Errorf("Scan visited %d records, want 1", saw)
			}
		})
	}
}

// TestFailureRecords pins that exhausted-retry failures are journaled
// for diagnosis but never satisfy Get, and that a later success replaces
// them.
func TestFailureRecords(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	k := Key{Fingerprint: "fp01", Run: 7, Rep: 1}
	const desc = "MST speed=20 rep=1"
	if err := s.PutFailure(k, desc, 3, "panic: boom"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k, desc); ok {
		t.Fatal("failure record satisfied Get")
	}
	if n, err := s.Count(); err != nil || n != 0 {
		t.Fatalf("Count = %d, %v; failures must not count as results", n, err)
	}
	if err := s.Put(k, desc, 4, sampleResult(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k, desc); !ok {
		t.Fatal("record stored after failure not found")
	}
	failed := 0
	if err := s.Scan(func(info RecordInfo) error {
		if info.Failed {
			failed++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("success did not remove the stale failure record (%d left)", failed)
	}
}

// TestMerge covers the three merge outcomes: fresh copy, identical
// duplicate, and the conflict abort for divergent duplicates.
func TestMerge(t *testing.T) {
	a := mustOpen(t, t.TempDir())
	b := mustOpen(t, t.TempDir())
	kShared := Key{Fingerprint: "fp01", Run: 1, Rep: 0}
	kOnlyA := Key{Fingerprint: "fp01", Run: 2, Rep: 0}
	kOnlyB := Key{Fingerprint: "fp02", Run: 3, Rep: 1}
	for _, put := range []struct {
		s *Store
		k Key
	}{{a, kShared}, {b, kShared}, {a, kOnlyA}, {b, kOnlyB}} {
		if err := put.s.Put(put.k, "desc", 1, sampleResult(int(put.k.Run))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.PutFailure(Key{Fingerprint: "fp01", Run: 9, Rep: 0}, "desc", 2, "panic"); err != nil {
		t.Fatal(err)
	}

	dst := mustOpen(t, t.TempDir())
	st, err := Merge(dst, a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 2 || st.Identical != 0 {
		t.Errorf("merge a: %+v, want 2 copied", st)
	}
	st, err = Merge(dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 1 || st.Identical != 1 || st.SkippedFailed != 1 {
		t.Errorf("merge b: %+v, want 1 copied, 1 identical, 1 failed skipped", st)
	}
	for _, k := range []Key{kShared, kOnlyA, kOnlyB} {
		if _, ok := dst.Get(k, "desc"); !ok {
			t.Errorf("merged store missing %+v", k)
		}
	}

	// A divergent duplicate for the same address is impossible for
	// deterministic runs, so the merge must abort instead of guessing.
	evil := mustOpen(t, t.TempDir())
	if err := evil.Put(kShared, "desc", 1, sampleResult(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dst, evil); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Errorf("divergent duplicate merged without conflict error; err = %v", err)
	}
}

// TestGC verifies tmp leftovers, failure records, corrupt records, and
// foreign fingerprints are collected while valid kept records survive.
func TestGC(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	keep := Key{Fingerprint: "fpkeep", Run: 1, Rep: 0}
	foreign := Key{Fingerprint: "fpold", Run: 2, Rep: 0}
	corrupt := Key{Fingerprint: "fpkeep", Run: 3, Rep: 0}
	if err := s.Put(keep, "keep", 1, sampleResult(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(foreign, "foreign", 1, sampleResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(corrupt, "corrupt", 1, sampleResult(2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.recordPath(corrupt, false), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFailure(Key{Fingerprint: "fpkeep", Run: 4, Rep: 0}, "failed", 2, "panic"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), tmpDirName, "leftover.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := s.GC("fpkeep")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tmp != 1 || st.Failed != 1 || st.Corrupt != 1 || st.Foreign != 1 {
		t.Errorf("GC stats %+v, want 1 of each", st)
	}
	if _, ok := s.Get(keep, "keep"); !ok {
		t.Error("GC removed a valid kept record")
	}
	if n, err := s.Count(); err != nil || n != 1 {
		t.Errorf("Count after GC = %d, %v, want 1", n, err)
	}
}

// TestCheckpointRoundTrip covers the advisory progress summary.
func TestCheckpointRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if _, ok, err := s.ReadCheckpoint(); ok || err != nil {
		t.Fatalf("fresh store checkpoint = ok %v, err %v; want absent, nil", ok, err)
	}
	want := Checkpoint{Fingerprint: "fp01", Done: 12, Total: 40, Interrupted: true}
	if err := s.WriteCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.ReadCheckpoint()
	if !ok || err != nil || got != want {
		t.Errorf("checkpoint round-trip = %+v, %v, %v, want %+v", got, ok, err, want)
	}
}

// TestCheckpointCorruptionSurfaces writes a truncated checkpoint file and
// asserts ReadCheckpoint reports the decode defect instead of silently
// reading as "no checkpoint": the file is advisory, but an operator
// should see that it was damaged.
func TestCheckpointCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.WriteCheckpoint(Checkpoint{Fingerprint: "fp01", Done: 30, Total: 40}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, checkpointLog))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-JSON: a torn write that the atomic rename normally
	// prevents, simulated directly.
	if err := os.WriteFile(filepath.Join(dir, checkpointLog), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := s.ReadCheckpoint()
	if ok {
		t.Errorf("truncated checkpoint read as valid: %+v", cp)
	}
	if err == nil {
		t.Fatal("truncated checkpoint produced no error")
	}
	// Overwriting with a fresh checkpoint recovers the warning path.
	want := Checkpoint{Fingerprint: "fp01", Done: 40, Total: 40}
	if err := s.WriteCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.ReadCheckpoint(); !ok || err != nil || got != want {
		t.Errorf("checkpoint after rewrite = %+v, %v, %v, want %+v", got, ok, err, want)
	}
}
