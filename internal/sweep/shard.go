package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a deterministic slice of a sweep's run set: shard i of n
// owns every configuration group g with g % n == i. Groups — not
// individual repetitions — are the unit of assignment, so all
// repetitions of one configuration land in the same shard and its
// per-configuration aggregate never spans processes. The zero value
// (Count 0) and Count 1 both mean "everything".
//
// The group index is the configuration's first-appearance order in the
// task list, which is itself deterministic, so independent processes
// slicing the same sweep agree on ownership without coordination.
type Shard struct {
	Index, Count int
}

// Active reports whether the shard restricts the run set at all.
func (s Shard) Active() bool { return s.Count > 1 }

// Validate reports shard-specification errors.
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 || (s.Count > 0 && s.Index >= s.Count) {
		return fmt.Errorf("sweep: invalid shard %d/%d (want 0 <= index < count)", s.Index, s.Count)
	}
	return nil
}

// Owns reports whether the shard computes configuration group g.
func (s Shard) Owns(g int) bool {
	if !s.Active() {
		return true
	}
	return g%s.Count == s.Index
}

// String renders the "index/count" form ParseShard accepts.
func (s Shard) String() string {
	if !s.Active() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses an "index/count" specification ("" means no
// sharding), e.g. "0/4" … "3/4" for a four-way split.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q: want index/count, e.g. 0/4", spec)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("sweep: shard index %q: %v", idx, err)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil {
		return Shard{}, fmt.Errorf("sweep: shard count %q: %v", cnt, err)
	}
	s := Shard{Index: i, Count: n}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	if s.Count < 1 {
		return Shard{}, fmt.Errorf("sweep: shard count %d < 1", s.Count)
	}
	return s, nil
}
