package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// MergeStats summarizes one Merge call.
type MergeStats struct {
	// Copied counts records newly written into the destination.
	Copied int
	// Identical counts records already present with identical payloads.
	Identical int
	// SkippedFailed counts source failure records (never merged).
	SkippedFailed int
	// SkippedCorrupt counts source records that failed checksum or
	// decode verification (reported, not copied — the owning shard
	// re-runs them on resume).
	SkippedCorrupt int
}

// Merge copies every valid record of src into dst, verifying checksums
// on the way. Records already present in dst must be payload-identical —
// runs are deterministic, so a divergent duplicate means one side is
// wrong and the merge aborts rather than pick a winner. Failure and
// corrupt records are skipped (and counted): only verified results
// migrate. Combining n shard stores this way yields a store
// byte-equivalent to a single-process sweep's.
func Merge(dst, src *Store) (MergeStats, error) {
	var st MergeStats
	err := src.Scan(func(info RecordInfo) error {
		switch {
		case info.Failed:
			st.SkippedFailed++
			return nil
		case info.Err != nil:
			st.SkippedCorrupt++
			return nil
		}
		rel := filepath.Join(info.Fingerprint, filepath.Base(info.Path))
		dstPath := filepath.Join(dst.dir, runsDirName, rel)
		srcData, err := os.ReadFile(info.Path)
		if err != nil {
			return fmt.Errorf("sweep: merge read %s: %w", info.Path, err)
		}
		if dstData, err := os.ReadFile(dstPath); err == nil {
			if dstRec, derr := decode(dstData); derr == nil {
				if !bytes.Equal(dstData, srcData) {
					return fmt.Errorf("sweep: merge conflict at %s (%s): source and destination hold different results for the same deterministic run",
						rel, dstRec.Desc)
				}
				st.Identical++
				return nil
			}
			// Destination copy is corrupt: the verified source record
			// replaces it.
		}
		if err := dst.writeAtomic(dstPath, srcData); err != nil {
			return fmt.Errorf("sweep: merge write %s: %w", rel, err)
		}
		st.Copied++
		return nil
	})
	return st, err
}

// String renders the stats for CLI reporting.
func (st MergeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d copied, %d identical", st.Copied, st.Identical)
	if st.SkippedFailed > 0 {
		fmt.Fprintf(&b, ", %d failed skipped", st.SkippedFailed)
	}
	if st.SkippedCorrupt > 0 {
		fmt.Fprintf(&b, ", %d corrupt skipped", st.SkippedCorrupt)
	}
	return b.String()
}
