// Package sweep is the persistence and orchestration layer for experiment
// execution: a content-addressed on-disk result store, a deterministic
// shard partition of a run set, and a merge operation combining shard
// stores back into one.
//
// The store holds one record per completed simulation run, addressed by
// the run's configuration substream key (experiment.Run.key) plus the
// options fingerprint — everything that determines the run's result and
// nothing that doesn't. Records are written atomically (temp file +
// rename on the same filesystem) and carry a sha256 checksum over their
// payload bytes, so a torn or bit-rotted record is *detected and re-run*
// rather than silently trusted. A record is the journal entry for its
// run: restarting an interrupted sweep skips every run whose record
// verifies, and resumes exactly where the previous process died.
//
// Because every run is deterministic given (fingerprint, key, rep), two
// stores never hold conflicting valid records for the same address; the
// merge operation checks that invariant instead of assuming it.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mstc/internal/manet"
)

// Sentinel errors shared by the store-aware executor and the CLIs.
var (
	// ErrInterrupted reports a sweep that drained gracefully before
	// completing: in-flight runs finished and were journaled, queued runs
	// were skipped. Re-running with the same store resumes from the
	// journal. CLIs exit 130 on it.
	//lint:ignore global-mutable-state errors.New sentinel, assigned once and only compared with errors.Is
	ErrInterrupted = errors.New("sweep interrupted")
	// ErrPartial reports a sharded execution that computed and stored its
	// slice of the run set: results for foreign shards are missing by
	// design, so aggregate output cannot be rendered until shard stores
	// are merged.
	//lint:ignore global-mutable-state errors.New sentinel, assigned once and only compared with errors.Is
	ErrPartial = errors.New("sweep shard slice stored; results partial")
)

// Key addresses one record: the options fingerprint, the run's
// configuration substream key, and the repetition index.
type Key struct {
	// Fingerprint identifies the option set the run was computed under
	// (experiment.Options.Fingerprint).
	Fingerprint string
	// Run is the configuration substream key (experiment.Run.key): it
	// covers protocol, speed, mechanisms, and any per-run channel.
	Run uint64
	// Rep is the repetition index.
	Rep int
}

// name returns the content address inside the fingerprint directory:
// the first 16 bytes of sha256 over the (run key, rep) pair, hex encoded.
// The full run descriptor is stored inside the record and verified on
// read, so a (vanishingly unlikely) truncated-hash collision degrades to
// a cache miss, never to a wrong result.
func (k Key) name() string {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], k.Run)
	binary.LittleEndian.PutUint64(b[8:16], uint64(int64(k.Rep)))
	sum := sha256.Sum256(b[:])
	return hex.EncodeToString(sum[:16])
}

const (
	recordSchema  = 1
	recordExt     = ".json"
	failedExt     = ".failed.json"
	runsDirName   = "runs"
	tmpDirName    = "tmp"
	checkpointLog = "checkpoint.json"
)

// Record is the stored form of one run. Exactly one of Result / Failure
// is meaningful: a failure record documents an exhausted retry budget and
// is never returned by Get.
type Record struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	RunKey      uint64 `json:"run_key"`
	Rep         int    `json:"rep"`
	// Desc is the canonical human-readable run descriptor; Get verifies
	// it against the requested run so hash collisions cannot alias.
	Desc string `json:"desc"`
	// Attempts counts executions including retries (1 = first try).
	Attempts int          `json:"attempts,omitempty"`
	Result   manet.Result `json:"result"`
	Failure  string       `json:"failure,omitempty"`
}

// Checkpoint is the store-level progress summary the executor flushes
// periodically and on interrupt. It is advisory — the per-record journal
// is the source of truth for resume — but lets `sweepctl status` report
// where a sweep stood without rescanning every record.
type Checkpoint struct {
	Fingerprint string `json:"fingerprint"`
	// Done and Total count computed runs of the most recent Execute call
	// (store hits excluded from both).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Interrupted marks a checkpoint flushed during a graceful drain.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Store is a content-addressed directory of run records. All methods are
// safe for concurrent use by the executor's workers; distinct records
// land in distinct files and the checkpoint writer is serialized.
type Store struct {
	dir string
	mu  sync.Mutex // serializes checkpoint writes
}

// Open creates (if needed) and returns the store rooted at dir. The
// directory layout is
//
//	dir/runs/<fingerprint>/<addr>.json         completed records
//	dir/runs/<fingerprint>/<addr>.failed.json  exhausted-retry failures
//	dir/tmp/                                   write staging (same fs)
//	dir/checkpoint.json                        advisory progress summary
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, runsDirName), filepath.Join(dir, tmpDirName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) recordPath(k Key, failed bool) string {
	ext := recordExt
	if failed {
		ext = failedExt
	}
	return filepath.Join(s.dir, runsDirName, k.Fingerprint, k.name()+ext)
}

// encode renders a record as its on-disk bytes: a checksum header line
// over the exact payload bytes that follow it.
func encode(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("sweep: encode record: %w", err)
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "sha256:%s\n", hex.EncodeToString(sum[:]))
	buf.Write(payload)
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// decode parses and checksum-verifies on-disk record bytes.
func decode(data []byte) (Record, error) {
	head, payload, ok := bytes.Cut(data, []byte("\n"))
	if !ok || !bytes.HasPrefix(head, []byte("sha256:")) {
		return Record{}, errors.New("sweep: record missing checksum header")
	}
	payload = bytes.TrimSuffix(payload, []byte("\n"))
	sum := sha256.Sum256(payload)
	if got := string(bytes.TrimPrefix(head, []byte("sha256:"))); got != hex.EncodeToString(sum[:]) {
		return Record{}, errors.New("sweep: record checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("sweep: record payload: %w", err)
	}
	if rec.Schema != recordSchema {
		return Record{}, fmt.Errorf("sweep: record schema %d, want %d", rec.Schema, recordSchema)
	}
	return rec, nil
}

// writeAtomic lands data at path via a temp file in the store's staging
// directory (same filesystem, so the rename is atomic) with an fsync
// before the rename: after a crash the address holds either the old
// bytes, the new bytes, or nothing — never a torn record. Torn staging
// files are invisible to readers and collected by GC.
func (s *Store) writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Join(s.dir, tmpDirName), filepath.Base(path)+".*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			if err = os.Rename(tmp, path); err == nil {
				return nil
			}
		}
	} else {
		f.Close()
	}
	os.Remove(tmp)
	return err
}

// Get returns the stored result for k, verifying the checksum and the
// run descriptor. Any defect — missing file, torn write, checksum or
// schema mismatch, aliased descriptor — reads as a miss, so the caller
// re-runs the simulation instead of trusting a corrupt record.
func (s *Store) Get(k Key, desc string) (manet.Result, bool) {
	data, err := os.ReadFile(s.recordPath(k, false))
	if err != nil {
		return manet.Result{}, false
	}
	rec, err := decode(data)
	if err != nil {
		return manet.Result{}, false
	}
	if rec.Fingerprint != k.Fingerprint || rec.RunKey != k.Run || rec.Rep != k.Rep ||
		rec.Desc != desc || rec.Failure != "" {
		return manet.Result{}, false
	}
	return rec.Result, true
}

// Put journals a completed run. A stale failure record for the same
// address is removed: the run has now succeeded.
func (s *Store) Put(k Key, desc string, attempts int, res manet.Result) error {
	data, err := encode(Record{
		Schema: recordSchema, Fingerprint: k.Fingerprint,
		RunKey: k.Run, Rep: k.Rep, Desc: desc, Attempts: attempts, Result: res,
	})
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.recordPath(k, false), data); err != nil {
		return fmt.Errorf("sweep: put record: %w", err)
	}
	os.Remove(s.recordPath(k, true))
	return nil
}

// PutFailure journals a run whose retry budget was exhausted. Failure
// records never satisfy Get — they exist so `sweepctl status` can report
// what failed and why, and a resumed sweep retries the run.
func (s *Store) PutFailure(k Key, desc string, attempts int, msg string) error {
	data, err := encode(Record{
		Schema: recordSchema, Fingerprint: k.Fingerprint,
		RunKey: k.Run, Rep: k.Rep, Desc: desc, Attempts: attempts, Failure: msg,
	})
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.recordPath(k, true), data); err != nil {
		return fmt.Errorf("sweep: put failure: %w", err)
	}
	return nil
}

// Count returns the number of completed (non-failure) records across all
// fingerprints. The resume gate uses it: a non-empty store must be an
// explicit opt-in.
func (s *Store) Count() (int, error) {
	n := 0
	err := s.Scan(func(info RecordInfo) error {
		if info.Err == nil && !info.Failed {
			n++
		}
		return nil
	})
	return n, err
}

// WriteCheckpoint flushes the advisory progress summary atomically.
func (s *Store) WriteCheckpoint(cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, checkpointLog), append(data, '\n'))
}

// ReadCheckpoint returns the last flushed checkpoint, if any. A missing
// checkpoint file reads as (zero, false, nil) — a store that never
// checkpointed is normal. A file that exists but fails to decode returns
// a non-nil error *and* ok == false: the checkpoint is advisory (the
// per-record journal is the source of truth for resume), so callers keep
// working, but they must surface the corruption as a warning instead of
// silently pretending no sweep ever ran.
func (s *Store) ReadCheckpoint() (Checkpoint, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, checkpointLog))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("sweep: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, false, fmt.Errorf("sweep: checkpoint corrupt (advisory only; records are intact): %w", err)
	}
	return cp, true, nil
}

// RecordInfo is one record surfaced by Scan: either a decoded record or
// the defect that prevented decoding it.
type RecordInfo struct {
	// Path is the record file's absolute path.
	Path string
	// Fingerprint is the fingerprint directory the record lives under.
	Fingerprint string
	// Failed marks an exhausted-retry failure record.
	Failed bool
	// Record is the decoded record when Err is nil.
	Record Record
	// Err is the decode/checksum defect, if any.
	Err error
}

// Scan visits every record in a deterministic order (fingerprints
// sorted, then addresses sorted) and reports corrupt records through
// RecordInfo.Err instead of aborting. The callback may return an error
// to stop the scan.
func (s *Store) Scan(fn func(RecordInfo) error) error {
	runsDir := filepath.Join(s.dir, runsDirName)
	fps, err := sortedNames(runsDir, true)
	if err != nil {
		return err
	}
	for _, fp := range fps {
		files, err := sortedNames(filepath.Join(runsDir, fp), false)
		if err != nil {
			return err
		}
		for _, name := range files {
			failed := strings.HasSuffix(name, failedExt)
			if !failed && !strings.HasSuffix(name, recordExt) {
				continue
			}
			info := RecordInfo{
				Path:        filepath.Join(runsDir, fp, name),
				Fingerprint: fp,
				Failed:      failed,
			}
			data, err := os.ReadFile(info.Path)
			if err != nil {
				info.Err = err
			} else if info.Record, err = decode(data); err != nil {
				info.Err = err
			} else if info.Record.Fingerprint != fp {
				info.Err = fmt.Errorf("sweep: record claims fingerprint %s but lives under %s",
					info.Record.Fingerprint, fp)
			}
			if err := fn(info); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedNames lists a directory's entries (directories only when dirs is
// set) in sorted order; a missing directory reads as empty.
func sortedNames(dir string, dirs bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() == dirs {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// GCStats summarizes what GC removed.
type GCStats struct {
	Tmp, Failed, Corrupt, Foreign int
}

// GC removes staging leftovers, failure records, and corrupt records.
// When keepFingerprint is non-empty, records under every other
// fingerprint are removed too (Foreign counts them). Valid records of
// the kept fingerprint are never touched.
func (s *Store) GC(keepFingerprint string) (GCStats, error) {
	var st GCStats
	tmps, err := sortedNames(filepath.Join(s.dir, tmpDirName), false)
	if err != nil {
		return st, err
	}
	for _, name := range tmps {
		if err := os.Remove(filepath.Join(s.dir, tmpDirName, name)); err != nil {
			return st, err
		}
		st.Tmp++
	}
	err = s.Scan(func(info RecordInfo) error {
		switch {
		case info.Failed:
			st.Failed++
		case info.Err != nil:
			st.Corrupt++
		case keepFingerprint != "" && info.Fingerprint != keepFingerprint:
			st.Foreign++
		default:
			return nil
		}
		return os.Remove(info.Path)
	})
	return st, err
}
