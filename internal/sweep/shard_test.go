package sweep

import "testing"

// TestShardPartition is the partition property sharded sweeps rest on:
// for every shard count, each configuration group is owned by exactly
// one shard, so shard stores are disjoint and their union is complete.
func TestShardPartition(t *testing.T) {
	const groups = 257 // prime, so no count divides it evenly
	for count := 1; count <= 16; count++ {
		for g := 0; g < groups; g++ {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (Shard{Index: idx, Count: count}).Owns(g) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("group %d owned by %d shards of %d, want exactly 1", g, owners, count)
			}
		}
	}
}

// TestShardZeroValueOwnsEverything pins that the zero value (and count
// 1) disable sharding entirely.
func TestShardZeroValueOwnsEverything(t *testing.T) {
	for _, s := range []Shard{{}, {Index: 0, Count: 1}} {
		if s.Active() {
			t.Errorf("%+v reports Active", s)
		}
		for g := 0; g < 10; g++ {
			if !s.Owns(g) {
				t.Errorf("%+v does not own group %d", s, g)
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"0/4": {Index: 0, Count: 4},
		"3/4": {Index: 3, Count: 4},
		"0/1": {Index: 0, Count: 1},
	}
	//lint:order-independent
	for spec, want := range good {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v, want %+v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"4/4", "-1/4", "2", "a/b", "1/0", "1/-2", "1/2/3"} {
		if s, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted as %+v", spec, s)
		}
	}
}
