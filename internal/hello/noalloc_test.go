package hello

import (
	"sort"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/lint"
)

// TestNoallocAnnotationsConform pins every //manet:noalloc annotation in
// this package with testing.AllocsPerRun: appending into a recycled dst,
// each annotated accessor must allocate nothing. Coverage is cross-checked
// against the annotation scan in both directions.
func TestNoallocAnnotationsConform(t *testing.T) {
	const n, k = 16, 3
	tbl := NewTableN(k, 30, n)
	ver := tbl.Version()
	for round := 0; round < k+1; round++ {
		for id := 0; id < n; id++ {
			tbl.Observe(Message{
				From:    id,
				Pos:     geom.Pt(float64(id), float64(round)),
				SentAt:  float64(round),
				Version: tbl.Version() + 1,
			})
			if id == n/2 && round == k/2 {
				ver = tbl.Version() // a mid-history version for AsOfInto
			}
		}
	}
	now := float64(k + 1)
	var dst []Message

	accessors := map[string]func(){
		"Table.LatestInto":    func() { dst = tbl.LatestInto(dst[:0], now) },
		"Table.HistoryInto":   func() { dst = tbl.HistoryInto(dst[:0], n/2, now) },
		"Table.VersionedInto": func() { dst = tbl.VersionedInto(dst[:0], ver, now) },
		"Table.AsOfInto":      func() { dst = tbl.AsOfInto(dst[:0], ver, now) },
	}

	annotated, err := lint.NoallocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(annotated))
	for _, name := range annotated {
		seen[name] = true
		if accessors[name] == nil {
			t.Errorf("%s is annotated //manet:noalloc but has no AllocsPerRun entry", name)
		}
	}
	var names []string
	for name := range accessors {
		if !seen[name] {
			t.Errorf("%s is measured here but not annotated //manet:noalloc", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := accessors[name]
		fn() // grow dst to steady state before measuring
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run in steady state, want 0", name, allocs)
		}
	}
}
