// Package hello implements the "Hello" beaconing data structures: versioned,
// timestamped location advertisements and the per-node neighbor table that
// stores the k most recent messages from every neighbor (§4.2, Theorem 3:
// k = ceil(delta/Delta) + 1 recent messages suffice for weakly consistent
// views; k = 1 gives the plain latest-message table of the baselines).
//
// The table is pure bookkeeping — no simulation clocks — so it is unit
// testable in isolation; package manet drives it from the event loop.
package hello

import (
	"fmt"
	"sort"

	"mstc/internal/geom"
)

// Message is one "Hello" advertisement: a node's id, the position it
// advertises, the send timestamp, and a per-sender version number
// (1 for the sender's first message, incrementing by 1). Neighbors and
// Marked are the optional 2-hop payload used by CDS-based broadcasting
// (references [34]/[35]): the sender's current neighbor ids and its own
// Wu-Li marked status.
type Message struct {
	From      int
	Pos       geom.Point
	SentAt    float64
	Version   uint64
	Neighbors []int
	Marked    bool
}

// Table is one node's neighbor table. It stores up to K recent messages per
// neighbor (newest first) and expires neighbors whose newest message is
// older than Expiry.
type Table struct {
	k      int
	expiry float64
	m      map[int][]Message
}

// NewTable creates a table keeping k >= 1 recent messages per neighbor;
// entries expire once their newest message is older than expiry seconds
// (expiry <= 0 disables expiry).
func NewTable(k int, expiry float64) *Table {
	if k < 1 {
		panic(fmt.Sprintf("hello: table with k = %d", k))
	}
	return &Table{k: k, expiry: expiry, m: make(map[int][]Message)}
}

// K returns the per-neighbor history depth.
func (t *Table) K() int { return t.k }

// Observe records a received message, evicting the oldest stored message
// from the same sender beyond the history depth. Messages may arrive out
// of order; the table keeps the k highest versions. A duplicate version
// replaces the stored copy.
func (t *Table) Observe(msg Message) {
	h := t.m[msg.From]
	// Insert by descending version.
	idx := sort.Search(len(h), func(i int) bool { return h[i].Version <= msg.Version })
	if idx < len(h) && h[idx].Version == msg.Version {
		h[idx] = msg
	} else {
		h = append(h, Message{})
		copy(h[idx+1:], h[idx:])
		h[idx] = msg
	}
	if len(h) > t.k {
		h = h[:t.k]
	}
	t.m[msg.From] = h
}

// Forget removes all state for the given neighbor.
func (t *Table) Forget(id int) { delete(t.m, id) }

// Len returns the number of neighbors with at least one stored message
// (expired or not; call GC first for a live count).
func (t *Table) Len() int { return len(t.m) }

// live reports whether a history is unexpired at the given time.
func (t *Table) live(h []Message, now float64) bool {
	return len(h) > 0 && (t.expiry <= 0 || now-h[0].SentAt <= t.expiry)
}

// Latest returns the newest stored message per live neighbor, ascending by
// neighbor id.
func (t *Table) Latest(now float64) []Message {
	out := make([]Message, 0, len(t.m))
	//lint:order-independent
	for _, h := range t.m {
		if t.live(h, now) {
			out = append(out, h[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// History returns up to k stored messages for the given neighbor, newest
// first, or nil if the neighbor is absent or expired.
func (t *Table) History(id int, now float64) []Message {
	h := t.m[id]
	if !t.live(h, now) {
		return nil
	}
	out := make([]Message, len(h))
	copy(out, h)
	return out
}

// Versioned returns, per live neighbor, the stored message with exactly the
// given version, ascending by neighbor id. Neighbors lacking that version
// are omitted — this is the lookup the proactive strong-consistency scheme
// performs when a data packet pins a timestamp (§4.1).
func (t *Table) Versioned(version uint64, now float64) []Message {
	out := make([]Message, 0, len(t.m))
	//lint:order-independent
	for _, h := range t.m {
		if !t.live(h, now) {
			continue
		}
		for _, msg := range h {
			if msg.Version == version {
				out = append(out, msg)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// AsOf returns, per live neighbor, the newest stored message with version
// at most v, ascending by neighbor id. Neighbors with no such version are
// omitted. This is the lookup behind the proactive strong-consistency
// scheme (§4.1): all nodes relaying a packet pinned to version v resolve
// each neighbor to the *same* message, so their local views are consistent
// in the sense of Theorem 2.
func (t *Table) AsOf(v uint64, now float64) []Message {
	out := make([]Message, 0, len(t.m))
	//lint:order-independent
	for _, h := range t.m {
		if !t.live(h, now) {
			continue
		}
		// h is sorted by descending version; pick the first <= v.
		for _, msg := range h {
			if msg.Version <= v {
				out = append(out, msg)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// GC drops neighbors whose newest message is expired and returns how many
// were dropped.
func (t *Table) GC(now float64) int {
	dropped := 0
	//lint:order-independent
	for id, h := range t.m {
		if !t.live(h, now) {
			delete(t.m, id)
			dropped++
		}
	}
	return dropped
}
