// Package hello implements the "Hello" beaconing data structures: versioned,
// timestamped location advertisements and the per-node neighbor table that
// stores the k most recent messages from every neighbor (§4.2, Theorem 3:
// k = ceil(delta/Delta) + 1 recent messages suffice for weakly consistent
// views; k = 1 gives the plain latest-message table of the baselines).
//
// The table is pure bookkeeping — no simulation clocks — so it is unit
// testable in isolation; package manet drives it from the event loop.
package hello

import (
	"fmt"
	"math"

	"mstc/internal/geom"
)

// Message is one "Hello" advertisement: a node's id, the position it
// advertises, the send timestamp, and a per-sender version number
// (1 for the sender's first message, incrementing by 1). Neighbors and
// Marked are the optional 2-hop payload used by CDS-based broadcasting
// (references [34]/[35]): the sender's current neighbor ids and its own
// Wu-Li marked status. MPRs is the optional OLSR payload: the multipoint
// relays the sender selected from its neighborhood — a receiver listed
// there knows the sender is one of its MPR selectors.
type Message struct {
	From      int
	Pos       geom.Point
	SentAt    float64
	Version   uint64
	Neighbors []int
	MPRs      []int
	Marked    bool
}

// Table is one node's neighbor table. It stores up to K recent messages per
// neighbor (newest first) and expires neighbors whose newest message is
// older than Expiry.
//
// Two backing representations share the same semantics: NewTable builds a
// map-keyed table accepting arbitrary sender ids, and NewTableN builds a
// dense table preallocated for ids in [0, n) — one flat backing array, no
// per-sender allocation on first contact and none in steady state, with
// ascending-id iteration falling out of the layout instead of a sort. The
// simulator uses the dense form (senders are node indices); the map form
// remains for callers without a known id universe.
type Table struct {
	k      int
	expiry float64
	m      map[int][]Message // nil iff dense
	dense  [][]Message       // per-id history views into store (dense form)
	store  []Message         // flat backing, n slots of capacity k+1
	live_  int               // dense form: number of non-empty histories
	ver    uint64            // monotone mutation counter (see Version)
}

// NewTable creates a table keeping k >= 1 recent messages per neighbor;
// entries expire once their newest message is older than expiry seconds
// (expiry <= 0 disables expiry).
func NewTable(k int, expiry float64) *Table {
	if k < 1 {
		panic(fmt.Sprintf("hello: table with k = %d", k))
	}
	return &Table{k: k, expiry: expiry, m: make(map[int][]Message)}
}

// NewTableN creates a dense table for sender ids in [0, n): all storage is
// preallocated, so Observe never allocates. Observing an id outside [0, n)
// panics.
func NewTableN(k int, expiry float64, n int) *Table {
	if k < 1 {
		panic(fmt.Sprintf("hello: table with k = %d", k))
	}
	if n < 0 {
		panic(fmt.Sprintf("hello: table with n = %d", n))
	}
	// The capacity bound keeps a slot's append from spilling into its
	// neighbor; Observe inserts in place once a slot is full, so capacity
	// k suffices.
	t := &Table{k: k, expiry: expiry, dense: make([][]Message, n), store: make([]Message, n*k)}
	for i := range t.dense {
		t.dense[i] = t.store[i*k : i*k : (i+1)*k]
	}
	return t
}

// NewTablesN returns count dense tables, each for sender ids in [0, n),
// with bulk-allocated shared backing: O(1) allocations for the whole batch
// instead of O(count). This is the per-node table set of a simulation —
// package manet allocates one table per node and the per-table constructor
// cost used to dominate network setup.
func NewTablesN(k int, expiry float64, n, count int) []*Table {
	if k < 1 {
		panic(fmt.Sprintf("hello: table with k = %d", k))
	}
	if n < 0 || count < 0 {
		panic(fmt.Sprintf("hello: tables with n = %d, count = %d", n, count))
	}
	tables := make([]Table, count)
	out := make([]*Table, count)
	store := make([]Message, count*n*k)
	dense := make([][]Message, count*n)
	for c := 0; c < count; c++ {
		t := &tables[c]
		t.k = k
		t.expiry = expiry
		t.store = store[c*n*k : (c+1)*n*k]
		t.dense = dense[c*n : (c+1)*n]
		for i := range t.dense {
			t.dense[i] = t.store[i*k : i*k : (i+1)*k]
		}
		out[c] = t
	}
	return out
}

// K returns the per-neighbor history depth.
func (t *Table) K() int { return t.k }

// Version returns the table's monotone mutation counter: it increases on
// every state change (message stored or replaced, neighbor forgotten,
// expired entry collected, reset) and never otherwise. Together with an
// expiry horizon (StableUntil) it is an O(1) fingerprint of the table's
// visible contents — the cache key of package manet's selection cache.
func (t *Table) Version() uint64 { return t.ver }

// StableUntil returns the latest instant through which the table's visible
// contents are guaranteed unchanged absent mutations: the earliest expiry
// deadline over currently-live histories (+Inf when nothing can expire).
// For any now' in [now, StableUntil(now)] with Version unchanged, every
// query (Latest, Versioned, AsOf, History) returns the same messages at
// now' as at now — entries live at now stay live through the horizon, and
// entries already expired can only revive via a new message, which bumps
// Version.
func (t *Table) StableUntil(now float64) float64 {
	horizon := math.Inf(1)
	if t.expiry <= 0 {
		return horizon
	}
	if t.m == nil {
		for _, h := range t.dense {
			if t.live(h, now) {
				if d := h[0].SentAt + t.expiry; d < horizon {
					horizon = d
				}
			}
		}
		return horizon
	}
	//lint:order-independent
	for _, h := range t.m {
		if t.live(h, now) {
			if d := h[0].SentAt + t.expiry; d < horizon {
				horizon = d
			}
		}
	}
	return horizon
}

// Reset drops all stored state in place and sets a (possibly new) expiry,
// reusing the table's backing storage. Unlike constructing a fresh table,
// Reset keeps the mutation counter monotone, so stale cache entries keyed
// by Version can never alias the post-reset state.
func (t *Table) Reset(expiry float64) {
	t.expiry = expiry
	t.ver++
	if t.m != nil {
		clear(t.m)
		return
	}
	for i := range t.dense {
		t.dense[i] = t.dense[i][:0]
	}
	t.live_ = 0
}

// history returns the stored (possibly expired) history for id, or nil.
func (t *Table) history(id int) []Message {
	if t.m != nil {
		return t.m[id]
	}
	if id < 0 || id >= len(t.dense) {
		return nil
	}
	return t.dense[id]
}

// setHistory stores the updated history for id.
func (t *Table) setHistory(id int, h []Message) {
	if t.m != nil {
		t.m[id] = h
		return
	}
	if len(t.dense[id]) == 0 && len(h) > 0 {
		t.live_++
	} else if len(t.dense[id]) > 0 && len(h) == 0 {
		t.live_--
	}
	t.dense[id] = h
}

// Observe records a received message, evicting the oldest stored message
// from the same sender beyond the history depth. Messages may arrive out
// of order; the table keeps the k highest versions. A duplicate version
// replaces the stored copy.
func (t *Table) Observe(msg Message) {
	h := t.history(msg.From)
	if t.m == nil && (msg.From < 0 || msg.From >= len(t.dense)) {
		panic(fmt.Sprintf("hello: dense table for %d senders observed id %d", len(t.dense), msg.From))
	}
	// Insert by descending version. Linear scan: h holds at most k entries
	// (small), so this beats sort.Search's closure calls on the hot path.
	idx := 0
	for idx < len(h) && h[idx].Version > msg.Version {
		idx++
	}
	switch {
	case idx < len(h) && h[idx].Version == msg.Version:
		h[idx] = msg // duplicate version: replace in place
	case len(h) < t.k:
		h = append(h, Message{})
		copy(h[idx+1:], h[idx:])
		h[idx] = msg
	case idx < t.k:
		// Full history: shift the tail right in place, dropping the
		// lowest stored version — equivalent to insert-then-truncate but
		// without growing past capacity k.
		copy(h[idx+1:], h[idx:t.k-1])
		h[idx] = msg
	default:
		return // older than all k stored versions of a full history
	}
	t.ver++
	t.setHistory(msg.From, h)
}

// Forget removes all state for the given neighbor.
func (t *Table) Forget(id int) {
	if t.m != nil {
		if _, ok := t.m[id]; ok {
			t.ver++
			delete(t.m, id)
		}
		return
	}
	if id >= 0 && id < len(t.dense) {
		if len(t.dense[id]) > 0 {
			t.ver++
		}
		t.setHistory(id, t.dense[id][:0])
	}
}

// Len returns the number of neighbors with at least one stored message
// (expired or not; call GC first for a live count).
func (t *Table) Len() int {
	if t.m != nil {
		return len(t.m)
	}
	return t.live_
}

// live reports whether a history is unexpired at the given time.
func (t *Table) live(h []Message, now float64) bool {
	return len(h) > 0 && (t.expiry <= 0 || now-h[0].SentAt <= t.expiry)
}

// Latest returns the newest stored message per live neighbor, ascending by
// neighbor id.
func (t *Table) Latest(now float64) []Message {
	return t.LatestInto(make([]Message, 0, t.Len()), now)
}

// LatestInto is Latest appending into dst (which may be nil), for hot paths
// that reuse a scratch buffer across calls. Appended entries ascend by
// neighbor id; dst's existing contents are untouched.
//manet:noalloc
func (t *Table) LatestInto(dst []Message, now float64) []Message {
	if t.m == nil {
		// Dense layout iterates ids ascending; no sort needed.
		for _, h := range t.dense {
			if t.live(h, now) {
				dst = append(dst, h[0])
			}
		}
		return dst
	}
	start := len(dst)
	//lint:order-independent
	for _, h := range t.m {
		if t.live(h, now) {
			dst = append(dst, h[0])
		}
	}
	sortByFrom(dst[start:])
	return dst
}

// History returns up to k stored messages for the given neighbor, newest
// first, or nil if the neighbor is absent or expired.
func (t *Table) History(id int, now float64) []Message {
	h := t.history(id)
	if !t.live(h, now) {
		return nil
	}
	out := make([]Message, len(h))
	copy(out, h)
	return out
}

// HistoryInto is History appending into dst (which may be nil); it appends
// nothing when the neighbor is absent or expired.
//manet:noalloc
func (t *Table) HistoryInto(dst []Message, id int, now float64) []Message {
	h := t.history(id)
	if !t.live(h, now) {
		return dst
	}
	return append(dst, h...)
}

// Versioned returns, per live neighbor, the stored message with exactly the
// given version, ascending by neighbor id. Neighbors lacking that version
// are omitted — this is the lookup the proactive strong-consistency scheme
// performs when a data packet pins a timestamp (§4.1).
func (t *Table) Versioned(version uint64, now float64) []Message {
	return t.VersionedInto(make([]Message, 0, t.Len()), version, now)
}

// VersionedInto is Versioned appending into dst (which may be nil).
//manet:noalloc
func (t *Table) VersionedInto(dst []Message, version uint64, now float64) []Message {
	if t.m == nil {
		for _, h := range t.dense {
			if !t.live(h, now) {
				continue
			}
			for _, msg := range h {
				if msg.Version == version {
					dst = append(dst, msg)
					break
				}
			}
		}
		return dst
	}
	start := len(dst)
	//lint:order-independent
	for _, h := range t.m {
		if !t.live(h, now) {
			continue
		}
		for _, msg := range h {
			if msg.Version == version {
				dst = append(dst, msg)
				break
			}
		}
	}
	sortByFrom(dst[start:])
	return dst
}

// AsOf returns, per live neighbor, the newest stored message with version
// at most v, ascending by neighbor id. Neighbors with no such version are
// omitted. This is the lookup behind the proactive strong-consistency
// scheme (§4.1): all nodes relaying a packet pinned to version v resolve
// each neighbor to the *same* message, so their local views are consistent
// in the sense of Theorem 2.
func (t *Table) AsOf(v uint64, now float64) []Message {
	return t.AsOfInto(make([]Message, 0, t.Len()), v, now)
}

// AsOfInto is AsOf appending into dst (which may be nil).
//manet:noalloc
func (t *Table) AsOfInto(dst []Message, v uint64, now float64) []Message {
	if t.m == nil {
		for _, h := range t.dense {
			if !t.live(h, now) {
				continue
			}
			// h is sorted by descending version; pick the first <= v.
			for _, msg := range h {
				if msg.Version <= v {
					dst = append(dst, msg)
					break
				}
			}
		}
		return dst
	}
	start := len(dst)
	//lint:order-independent
	for _, h := range t.m {
		if !t.live(h, now) {
			continue
		}
		// h is sorted by descending version; pick the first <= v.
		for _, msg := range h {
			if msg.Version <= v {
				dst = append(dst, msg)
				break
			}
		}
	}
	sortByFrom(dst[start:])
	return dst
}

// sortByFrom orders messages ascending by sender id. Insertion sort: the
// slices are small (one entry per live neighbor) and, unlike sort.Slice,
// it allocates nothing — these calls sit on the per-Hello hot path.
func sortByFrom(msgs []Message) {
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0 && msgs[j].From < msgs[j-1].From; j-- {
			msgs[j], msgs[j-1] = msgs[j-1], msgs[j]
		}
	}
}

// GC drops neighbors whose newest message is expired and returns how many
// were dropped.
func (t *Table) GC(now float64) int {
	dropped := 0
	if t.m == nil {
		for id, h := range t.dense {
			if len(h) > 0 && !t.live(h, now) {
				t.setHistory(id, h[:0])
				dropped++
			}
		}
		if dropped > 0 {
			t.ver++
		}
		return dropped
	}
	//lint:order-independent
	for id, h := range t.m {
		if !t.live(h, now) {
			delete(t.m, id)
			dropped++
		}
	}
	if dropped > 0 {
		t.ver++
	}
	return dropped
}
