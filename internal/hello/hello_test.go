package hello

import (
	"reflect"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

func msg(from int, x float64, at float64, ver uint64) Message {
	return Message{From: from, Pos: geom.Pt(x, 0), SentAt: at, Version: ver}
}

func TestObserveAndLatest(t *testing.T) {
	tb := NewTable(2, 2.5)
	tb.Observe(msg(3, 10, 1.0, 1))
	tb.Observe(msg(1, 20, 1.1, 1))
	tb.Observe(msg(3, 11, 2.0, 2))
	got := tb.Latest(2.5)
	if len(got) != 2 {
		t.Fatalf("Latest = %v", got)
	}
	if got[0].From != 1 || got[1].From != 3 {
		t.Errorf("order wrong: %v", got)
	}
	if got[1].Version != 2 || got[1].Pos != geom.Pt(11, 0) {
		t.Errorf("newest entry wrong: %+v", got[1])
	}
}

func TestHistoryDepthK(t *testing.T) {
	tb := NewTable(2, 0)
	for v := uint64(1); v <= 5; v++ {
		tb.Observe(msg(7, float64(v), float64(v), v))
	}
	h := tb.History(7, 100)
	if len(h) != 2 {
		t.Fatalf("history length = %d, want 2", len(h))
	}
	if h[0].Version != 5 || h[1].Version != 4 {
		t.Errorf("kept versions %d, %d; want 5, 4", h[0].Version, h[1].Version)
	}
}

func TestOutOfOrderObserve(t *testing.T) {
	tb := NewTable(3, 0)
	tb.Observe(msg(1, 3, 3, 3))
	tb.Observe(msg(1, 1, 1, 1))
	tb.Observe(msg(1, 2, 2, 2))
	h := tb.History(1, 10)
	vers := []uint64{h[0].Version, h[1].Version, h[2].Version}
	if !reflect.DeepEqual(vers, []uint64{3, 2, 1}) {
		t.Errorf("versions = %v, want [3 2 1]", vers)
	}
	// A late old version must not evict a newer one when full.
	tb2 := NewTable(2, 0)
	tb2.Observe(msg(1, 5, 5, 5))
	tb2.Observe(msg(1, 4, 4, 4))
	tb2.Observe(msg(1, 1, 1, 1)) // too old; dropped
	h2 := tb2.History(1, 10)
	if h2[0].Version != 5 || h2[1].Version != 4 {
		t.Errorf("old version evicted newer: %+v", h2)
	}
}

func TestDuplicateVersionReplaces(t *testing.T) {
	tb := NewTable(2, 0)
	tb.Observe(msg(1, 10, 1, 1))
	tb.Observe(msg(1, 99, 1.5, 1))
	h := tb.History(1, 10)
	if len(h) != 1 || h[0].Pos != geom.Pt(99, 0) {
		t.Errorf("duplicate version not replaced: %+v", h)
	}
}

func TestExpiry(t *testing.T) {
	tb := NewTable(1, 2.5)
	tb.Observe(msg(1, 10, 0, 1))
	tb.Observe(msg(2, 20, 2, 1))
	if got := tb.Latest(2.4); len(got) != 2 {
		t.Fatalf("both should be live at 2.4: %v", got)
	}
	got := tb.Latest(3.0) // node 1's message is 3.0 old > 2.5
	if len(got) != 1 || got[0].From != 2 {
		t.Errorf("Latest(3.0) = %v, want only node 2", got)
	}
	if h := tb.History(1, 3.0); h != nil {
		t.Errorf("expired history = %v, want nil", h)
	}
	if dropped := tb.GC(3.0); dropped != 1 {
		t.Errorf("GC dropped %d, want 1", dropped)
	}
	if tb.Len() != 1 {
		t.Errorf("Len after GC = %d", tb.Len())
	}
}

func TestNoExpiryWhenDisabled(t *testing.T) {
	tb := NewTable(1, 0)
	tb.Observe(msg(1, 10, 0, 1))
	if got := tb.Latest(1e9); len(got) != 1 {
		t.Errorf("expiry disabled but entry vanished")
	}
}

func TestVersioned(t *testing.T) {
	tb := NewTable(3, 0)
	tb.Observe(msg(1, 10, 1, 1))
	tb.Observe(msg(1, 11, 2, 2))
	tb.Observe(msg(2, 20, 1, 1))
	tb.Observe(msg(3, 30, 2, 2))
	got := tb.Versioned(1, 10)
	if len(got) != 2 || got[0].From != 1 || got[1].From != 2 {
		t.Errorf("Versioned(1) = %v", got)
	}
	if got[0].Pos != geom.Pt(10, 0) {
		t.Errorf("Versioned(1) returned wrong message for node 1: %+v", got[0])
	}
	got = tb.Versioned(2, 10)
	if len(got) != 2 || got[0].From != 1 || got[1].From != 3 {
		t.Errorf("Versioned(2) = %v", got)
	}
}

func TestAsOf(t *testing.T) {
	tb := NewTable(3, 0)
	tb.Observe(msg(1, 10, 1, 1))
	tb.Observe(msg(1, 12, 3, 3))
	tb.Observe(msg(2, 20, 2, 2))
	tb.Observe(msg(3, 30, 4, 4))

	got := tb.AsOf(2, 10)
	// node 1 resolves to version 1 (newest <= 2), node 2 to version 2,
	// node 3 has nothing <= 2.
	if len(got) != 2 {
		t.Fatalf("AsOf(2) = %v", got)
	}
	if got[0].From != 1 || got[0].Version != 1 {
		t.Errorf("node 1 resolved to %+v, want version 1", got[0])
	}
	if got[1].From != 2 || got[1].Version != 2 {
		t.Errorf("node 2 resolved to %+v, want version 2", got[1])
	}
	got = tb.AsOf(10, 10)
	if len(got) != 3 || got[0].Version != 3 || got[2].Version != 4 {
		t.Errorf("AsOf(10) = %v", got)
	}
	if got := tb.AsOf(0, 10); len(got) != 0 {
		t.Errorf("AsOf(0) = %v, want empty", got)
	}
}

func TestAsOfConsistencyAcrossTables(t *testing.T) {
	// Two observers holding different subsets that share versions <= v
	// resolve a sender to the same message — the Theorem 2 property the
	// proactive scheme relies on.
	a, b := NewTable(3, 0), NewTable(3, 0)
	m1, m2, m3 := msg(9, 1, 1, 1), msg(9, 2, 2, 2), msg(9, 3, 3, 3)
	for _, m := range []Message{m1, m2, m3} {
		a.Observe(m)
	}
	b.Observe(m2)
	b.Observe(m3)
	ra, rb := a.AsOf(2, 10), b.AsOf(2, 10)
	if len(ra) != 1 || len(rb) != 1 || !reflect.DeepEqual(ra[0], rb[0]) {
		t.Errorf("observers resolved differently: %v vs %v", ra, rb)
	}
}

func TestForget(t *testing.T) {
	tb := NewTable(1, 0)
	tb.Observe(msg(1, 10, 0, 1))
	tb.Forget(1)
	if tb.Len() != 0 || tb.History(1, 1) != nil {
		t.Error("Forget did not remove the neighbor")
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k = 0")
		}
	}()
	NewTable(0, 1)
}

func TestHistoryIsCopy(t *testing.T) {
	tb := NewTable(2, 0)
	tb.Observe(msg(1, 10, 0, 1))
	h := tb.History(1, 1)
	h[0].Pos = geom.Pt(-1, -1)
	if got := tb.History(1, 1); got[0].Pos != geom.Pt(10, 0) {
		t.Error("History exposed internal storage")
	}
}

func TestHistoryInvariantsProperty(t *testing.T) {
	// Whatever the arrival order, the table holds at most k messages per
	// neighbor, sorted by strictly descending version, and they are the
	// k highest versions observed.
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		rng := xrand.New(seed)
		tb := NewTable(k, 0)
		maxVer := uint64(0)
		seen := map[uint64]bool{}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			v := uint64(rng.Intn(15)) + 1
			seen[v] = true
			if v > maxVer {
				maxVer = v
			}
			tb.Observe(msg(1, float64(v), float64(i), v))
		}
		h := tb.History(1, 1e9)
		if len(h) > k {
			return false
		}
		for i := 1; i < len(h); i++ {
			if h[i].Version >= h[i-1].Version {
				return false
			}
		}
		// Highest observed version must be present.
		return len(h) > 0 && h[0].Version == maxVer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
