// Package viz renders topology snapshots as standalone SVG documents:
// nodes, layered edge sets (e.g. the original topology in light gray under
// the logical topology in color), and optional transmission-range disks.
// Stdlib only; the output opens in any browser.
package viz

import (
	"fmt"
	"io"

	"mstc/internal/geom"
	"mstc/internal/graph"
)

// Layer is one set of edges drawn with a shared style. Layers render in
// order, so later layers draw on top.
type Layer struct {
	// Name labels the layer in the legend.
	Name string
	// Edges are node-index pairs into the Scene's points.
	Edges []graph.Edge
	// Color is any SVG color ("#888", "crimson").
	Color string
	// Width is the stroke width in scene units (meters).
	Width float64
	// Dashed draws the layer with a dash pattern.
	Dashed bool
}

// Scene is a complete drawing.
type Scene struct {
	// Arena is the drawn region (meters).
	Arena geom.Rect
	// Points are node positions; the node id is the slice index.
	Points []geom.Point
	// Layers are edge sets, drawn in order.
	Layers []Layer
	// Ranges, if non-nil, draws a transmission-range disk per node
	// (same length as Points).
	Ranges []float64
	// NodeRadius is the drawn node dot radius in meters (default 6).
	NodeRadius float64
	// Title, if set, is drawn at the top-left.
	Title string
}

// Render writes the scene as a standalone SVG document.
func (s Scene) Render(w io.Writer) error {
	if s.Arena.Empty() {
		return fmt.Errorf("viz: empty arena")
	}
	if s.Ranges != nil && len(s.Ranges) != len(s.Points) {
		return fmt.Errorf("viz: %d ranges for %d points", len(s.Ranges), len(s.Points))
	}
	nodeR := s.NodeRadius
	if nodeR == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		nodeR = 6
	}
	const margin = 20.0
	width := s.Arena.Width() + 2*margin
	height := s.Arena.Height() + 2*margin
	// SVG y grows downward; flip so the scene reads like the plane.
	x := func(p geom.Point) float64 { return p.X - s.Arena.Min.X + margin }
	y := func(p geom.Point) float64 { return height - (p.Y - s.Arena.Min.Y + margin) }

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr(`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.0f %.0f">`+"\n", width, height)
	pr(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if s.Ranges != nil {
		pr(`<g fill="#4488cc" fill-opacity="0.05" stroke="#4488cc" stroke-opacity="0.15">` + "\n")
		for i, p := range s.Points {
			if s.Ranges[i] > 0 {
				pr(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x(p), y(p), s.Ranges[i])
			}
		}
		pr("</g>\n")
	}
	for _, l := range s.Layers {
		dash := ""
		if l.Dashed {
			dash = ` stroke-dasharray="8 6"`
		}
		width := l.Width
		if width == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
			width = 1.5
		}
		pr(`<g stroke="%s" stroke-width="%.1f"%s>`+"\n", l.Color, width, dash)
		for _, e := range l.Edges {
			if e.U < 0 || e.U >= len(s.Points) || e.V < 0 || e.V >= len(s.Points) {
				return fmt.Errorf("viz: layer %q edge (%d, %d) out of range", l.Name, e.U, e.V)
			}
			a, b := s.Points[e.U], s.Points[e.V]
			pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x(a), y(a), x(b), y(b))
		}
		pr("</g>\n")
	}
	pr(`<g fill="#222">` + "\n")
	for _, p := range s.Points {
		pr(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x(p), y(p), nodeR)
	}
	pr("</g>\n")
	// Legend and title.
	ly := 28.0
	if s.Title != "" {
		pr(`<text x="%.0f" y="%.0f" font-family="sans-serif" font-size="22">%s</text>`+"\n", margin, ly, s.Title)
		ly += 26
	}
	for _, l := range s.Layers {
		pr(`<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="%s" stroke-width="3"/>`+"\n",
			margin, ly-5, margin+40, ly-5, l.Color)
		pr(`<text x="%.0f" y="%.0f" font-family="sans-serif" font-size="16">%s</text>`+"\n",
			margin+48, ly, l.Name)
		ly += 22
	}
	pr("</svg>\n")
	return err
}
