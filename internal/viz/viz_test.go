package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

func demoScene() Scene {
	pts := []geom.Point{geom.Pt(100, 100), geom.Pt(300, 100), geom.Pt(200, 300)}
	return Scene{
		Arena:  geom.Square(900),
		Points: pts,
		Layers: []Layer{
			{Name: "original", Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, Color: "#ccc"},
			{Name: "logical", Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, Color: "crimson", Width: 3},
		},
		Ranges: []float64{120, 120, 120},
		Title:  "demo",
	}
}

func TestRenderWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := demoScene().Render(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, buf.String())
		}
	}
}

func TestRenderContents(t *testing.T) {
	var buf bytes.Buffer
	if err := demoScene().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "crimson", "#ccc", "demo", "original", "logical", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// 3 nodes + 3 range disks + 2 legend... count circles: 3 + 3 = 6.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("circle count = %d, want 6", got)
	}
	// 3 original + 2 logical + 2 legend lines = 7.
	if got := strings.Count(out, "<line"); got != 7 {
		t.Errorf("line count = %d, want 7", got)
	}
}

func TestRenderValidation(t *testing.T) {
	s := demoScene()
	s.Arena = geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)}
	if err := s.Render(&bytes.Buffer{}); err == nil {
		t.Error("empty arena accepted")
	}
	s = demoScene()
	s.Ranges = []float64{1}
	if err := s.Render(&bytes.Buffer{}); err == nil {
		t.Error("mismatched ranges accepted")
	}
	s = demoScene()
	s.Layers[0].Edges = []graph.Edge{{U: 0, V: 99}}
	if err := s.Render(&bytes.Buffer{}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestRenderRealTopology(t *testing.T) {
	pts := mobility.UniformPoints(geom.Square(900), 60, xrand.New(4))
	sel := snapshot.Selections(pts, topology.RNG{}, 250)
	lg := snapshot.Logical(pts, sel)
	s := Scene{
		Arena:  geom.Square(900),
		Points: pts,
		Layers: []Layer{
			{Name: "original", Edges: snapshot.Original(pts, 250).Edges(), Color: "#ddd"},
			{Name: "RNG", Edges: lg.Edges(), Color: "#cc3344", Width: 2.5},
		},
		Ranges: snapshot.Ranges(pts, sel, 0, 250),
		Title:  "RNG logical topology",
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Errorf("suspiciously small SVG: %d bytes", buf.Len())
	}
}
