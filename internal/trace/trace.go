// Package trace records mobility models to a portable text format and
// replays recorded traces as mobility.Model implementations — the
// equivalent of feeding ns-2 "setdest" scenario files into the simulator,
// so externally generated or captured movement traces can drive every
// experiment.
//
// Format (line-oriented, '#' comments allowed):
//
//	mstc-trace 1
//	arena <minx> <miny> <maxx> <maxy>
//	nodes <n> samples <k> dt <seconds>
//	<x> <y>    # node 0, sample 0
//	...        # node-major: all samples of node 0, then node 1, ...
//
// Positions between samples are interpolated linearly, which is exact for
// piecewise-linear models sampled at least once per leg and a close
// approximation otherwise.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mstc/internal/geom"
	"mstc/internal/mobility"
)

// Record samples the model every dt seconds over its horizon and writes the
// trace to w.
func Record(w io.Writer, m mobility.Model, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("trace: dt must be positive, got %g", dt)
	}
	samples := int(m.Horizon()/dt) + 1
	bw := bufio.NewWriter(w)
	a := m.Arena()
	fmt.Fprintln(bw, "mstc-trace 1")
	fmt.Fprintf(bw, "arena %g %g %g %g\n", a.Min.X, a.Min.Y, a.Max.X, a.Max.Y)
	fmt.Fprintf(bw, "nodes %d samples %d dt %g\n", m.N(), samples, dt)
	for id := 0; id < m.N(); id++ {
		for s := 0; s < samples; s++ {
			p := m.PositionAt(id, float64(s)*dt)
			fmt.Fprintf(bw, "%g %g\n", p.X, p.Y)
		}
	}
	return bw.Flush()
}

// Trace is a replayable recorded trace. It implements mobility.Model.
type Trace struct {
	arena    geom.Rect
	dt       float64
	samples  int
	pos      [][]geom.Point // [node][sample]
	maxSpeed float64
}

var _ mobility.Model = (*Trace)(nil)

// Load parses a trace written by Record.
func Load(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := func() (string, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	l, err := line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	var version int
	if _, err := fmt.Sscanf(l, "mstc-trace %d", &version); err != nil || version != 1 {
		return nil, fmt.Errorf("trace: bad magic line %q", l)
	}

	l, err = line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading arena: %w", err)
	}
	var ax0, ay0, ax1, ay1 float64
	if _, err := fmt.Sscanf(l, "arena %g %g %g %g", &ax0, &ay0, &ax1, &ay1); err != nil {
		return nil, fmt.Errorf("trace: bad arena line %q", l)
	}

	l, err = line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	var n, samples int
	var dt float64
	if _, err := fmt.Sscanf(l, "nodes %d samples %d dt %g", &n, &samples, &dt); err != nil {
		return nil, fmt.Errorf("trace: bad header line %q", l)
	}
	if n <= 0 || samples < 1 || dt <= 0 {
		return nil, fmt.Errorf("trace: invalid header values n=%d samples=%d dt=%g", n, samples, dt)
	}

	tr := &Trace{
		arena:   geom.NewRect(geom.Pt(ax0, ay0), geom.Pt(ax1, ay1)),
		dt:      dt,
		samples: samples,
		pos:     make([][]geom.Point, n),
	}
	for id := 0; id < n; id++ {
		tr.pos[id] = make([]geom.Point, samples)
		for s := 0; s < samples; s++ {
			l, err = line()
			if err != nil {
				return nil, fmt.Errorf("trace: node %d sample %d: %w", id, s, err)
			}
			var x, y float64
			if _, err := fmt.Sscanf(l, "%g %g", &x, &y); err != nil {
				return nil, fmt.Errorf("trace: bad position line %q", l)
			}
			tr.pos[id][s] = geom.Pt(x, y)
			if s > 0 {
				if v := tr.pos[id][s].Dist(tr.pos[id][s-1]) / dt; v > tr.maxSpeed {
					tr.maxSpeed = v
				}
			}
		}
	}
	return tr, nil
}

// N implements mobility.Model.
func (t *Trace) N() int { return len(t.pos) }

// Arena implements mobility.Model.
func (t *Trace) Arena() geom.Rect { return t.arena }

// MaxSpeed implements mobility.Model: the maximal observed inter-sample
// speed.
func (t *Trace) MaxSpeed() float64 { return t.maxSpeed }

// Horizon implements mobility.Model.
func (t *Trace) Horizon() float64 { return float64(t.samples-1) * t.dt }

// PositionAt implements mobility.Model by linear interpolation between the
// two surrounding samples.
func (t *Trace) PositionAt(id int, at float64) geom.Point {
	p := t.pos[id]
	if at <= 0 {
		return p[0]
	}
	if at >= t.Horizon() {
		return p[len(p)-1]
	}
	f := at / t.dt
	i := int(f)
	if i >= len(p)-1 {
		return p[len(p)-1]
	}
	return p[i].Lerp(p[i+1], f-float64(i))
}
