package trace

import (
	"bytes"
	"strings"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func TestRecordLoadRoundTrip(t *testing.T) {
	lo, hi := mobility.SpeedAround(20)
	m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: 10, SpeedMin: lo, SpeedMax: hi, Horizon: 20,
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, m, 0.1); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != m.N() {
		t.Fatalf("N = %d, want %d", tr.N(), m.N())
	}
	if tr.Arena() != m.Arena() {
		t.Errorf("arena = %v", tr.Arena())
	}
	if tr.Horizon() != 20 {
		t.Errorf("horizon = %v", tr.Horizon())
	}
	// Interpolated positions match within one sample's worth of motion.
	tol := hi * 0.1
	for id := 0; id < m.N(); id++ {
		for at := 0.0; at <= 20; at += 0.37 {
			d := tr.PositionAt(id, at).Dist(m.PositionAt(id, at))
			if d > tol {
				t.Fatalf("node %d at t=%v deviates %v m (tol %v)", id, at, d, tol)
			}
		}
	}
	// Exactly-on-sample positions match exactly (linear model).
	for id := 0; id < m.N(); id++ {
		for s := 0; s <= 200; s += 17 {
			at := float64(s) * 0.1
			if tr.PositionAt(id, at).Dist(m.PositionAt(id, at)) > 1e-9 {
				t.Fatalf("sample point mismatch at node %d t=%v", id, at)
			}
		}
	}
}

func TestMaxSpeedEstimate(t *testing.T) {
	lo, hi := mobility.SpeedAround(20)
	m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: 20, SpeedMin: lo, SpeedMax: hi, Horizon: 30,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, m, 0.05); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxSpeed() > hi*1.01 {
		t.Errorf("MaxSpeed %v exceeds model max %v", tr.MaxSpeed(), hi)
	}
	if tr.MaxSpeed() < lo {
		t.Errorf("MaxSpeed %v below model min %v", tr.MaxSpeed(), lo)
	}
}

func TestClampOutsideHorizon(t *testing.T) {
	m := mobility.NewStatic(arena, []geom.Point{geom.Pt(5, 5)}, 10)
	var buf bytes.Buffer
	if err := Record(&buf, m, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PositionAt(0, -5) != geom.Pt(5, 5) || tr.PositionAt(0, 1e9) != geom.Pt(5, 5) {
		t.Error("outside-horizon positions not clamped")
	}
}

func TestRecordBadDt(t *testing.T) {
	m := mobility.NewStatic(arena, []geom.Point{geom.Pt(1, 1)}, 10)
	if err := Record(&bytes.Buffer{}, m, 0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad-magic":    "not-a-trace\n",
		"bad-version":  "mstc-trace 9\narena 0 0 1 1\nnodes 1 samples 1 dt 1\n0 0\n",
		"no-arena":     "mstc-trace 1\nnodes 1 samples 1 dt 1\n0 0\n",
		"bad-header":   "mstc-trace 1\narena 0 0 1 1\nnodes x samples 1 dt 1\n",
		"neg-values":   "mstc-trace 1\narena 0 0 1 1\nnodes 0 samples 1 dt 1\n",
		"missing-rows": "mstc-trace 1\narena 0 0 1 1\nnodes 2 samples 2 dt 1\n0 0\n1 1\n2 2\n",
		"bad-position": "mstc-trace 1\narena 0 0 1 1\nnodes 1 samples 1 dt 1\nfoo bar\n",
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := `# a comment
mstc-trace 1

arena 0 0 10 10
# another
nodes 1 samples 2 dt 0.5
1 2

3 4
`
	tr, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.PositionAt(0, 0) != geom.Pt(1, 2) || tr.PositionAt(0, 0.5) != geom.Pt(3, 4) {
		t.Error("positions wrong after comment skipping")
	}
	if mid := tr.PositionAt(0, 0.25); mid != geom.Pt(2, 3) {
		t.Errorf("interpolation = %v, want (2,3)", mid)
	}
}
