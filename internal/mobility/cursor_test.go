package mobility

import (
	"testing"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

// TestCursorMatchesModel checks the cursor's core contract: its answers are
// bit-for-bit identical to Model.PositionAt under every access pattern a
// simulation produces — monotone sweeps, repeated instants, backward jumps,
// and out-of-range times.
func TestCursorMatchesModel(t *testing.T) {
	arena := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 20, SpeedMin: 1, SpeedMax: 160, Pause: 1, Horizon: 60,
	}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(m)
	if cur.src == nil {
		t.Fatal("waypoint model should expose legs to the cursor")
	}
	check := func(id int, at float64) {
		t.Helper()
		got, want := cur.PositionAt(id, at), m.PositionAt(id, at)
		if got != want { //lint:ignore float-eq the contract under test is bit-identity
			t.Fatalf("node %d at t=%v: cursor %v != model %v", id, at, got, want)
		}
	}

	// Monotone sweep with repeated instants, all nodes per instant.
	for at := 0.0; at <= 60; at += 0.37 {
		for id := 0; id < m.N(); id++ {
			check(id, at)
			check(id, at) // same instant twice
		}
	}
	// Random (including backward) jumps.
	rng := xrand.New(11)
	for i := 0; i < 2000; i++ {
		check(rng.Intn(m.N()), rng.Uniform(-5, 70))
	}
	// Clamping at the extremes after the cursor has advanced.
	for id := 0; id < m.N(); id++ {
		check(id, 60)
		check(id, -1)
		check(id, 1e9)
		check(id, 0)
	}
}

// TestCursorReverseSweepReanchors is the regression test for the backward-
// jump fallback: a smooth reverse sweep used to binary-search the whole
// prefix on every query because the early-out branches never re-anchored
// the per-node index. With the adjacent-leg probe, walking time backwards
// leg by leg must cost O(1) per query — zero prefix searches.
func TestCursorReverseSweepReanchors(t *testing.T) {
	arena := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 4, SpeedMin: 1, SpeedMax: 160, Pause: 0.5, Horizon: 120,
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(m)
	// Advance each node to the horizon, then sweep backward in small steps
	// (smaller than any leg, so consecutive queries land on the same or the
	// adjacent earlier leg).
	for id := 0; id < m.N(); id++ {
		cur.PositionAt(id, 120)
	}
	cur.backSearches = 0
	for at := 120.0; at >= 0; at -= 0.05 {
		for id := 0; id < m.N(); id++ {
			got, want := cur.PositionAt(id, at), m.PositionAt(id, at)
			if got != want { //lint:ignore float-eq the contract under test is bit-identity
				t.Fatalf("node %d at t=%v: cursor %v != model %v", id, at, got, want)
			}
		}
	}
	if cur.backSearches != 0 {
		t.Errorf("smooth reverse sweep triggered %d prefix binary searches, want 0 (adjacent-leg probe should absorb them)", cur.backSearches)
	}
	// A genuine long jump must still search (and stay correct).
	for id := 0; id < m.N(); id++ {
		cur.PositionAt(id, 119)
		got, want := cur.PositionAt(id, 1), m.PositionAt(id, 1)
		if got != want { //lint:ignore float-eq the contract under test is bit-identity
			t.Fatalf("long jump, node %d: cursor %v != model %v", id, got, want)
		}
	}
	if cur.backSearches == 0 {
		t.Error("long backward jumps triggered no binary search; the probe condition is wrong")
	}
}

// TestResolveAllIntoMatchesPositionAt checks the batched resolver: one
// ResolveAllInto sweep must produce bit-identical positions to per-node
// PositionAt queries, leave the cursors anchored the same way, and support
// the legless-model fallback.
func TestResolveAllIntoMatchesPositionAt(t *testing.T) {
	arena := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 25, SpeedMin: 1, SpeedMax: 160, Pause: 1, Horizon: 60,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	batched, single := NewCursor(m), NewCursor(m)
	buf := make([]geom.Point, 0, m.N())
	for _, at := range []float64{0, 0.4, 3.7, 3.7, 12.9, 5.1, 60, -2, 1e9, 30} {
		buf = batched.ResolveAllInto(buf[:0], at)
		if len(buf) != m.N() {
			t.Fatalf("ResolveAllInto(t=%v) returned %d positions, want %d", at, len(buf), m.N())
		}
		for id := 0; id < m.N(); id++ {
			if want := single.PositionAt(id, at); buf[id] != want { //lint:ignore float-eq the contract under test is bit-identity
				t.Fatalf("node %d at t=%v: batched %v != single %v", id, at, buf[id], want)
			}
		}
		for id := 0; id < m.N(); id++ {
			if batched.idx[id] != single.idx[id] {
				t.Fatalf("node %d at t=%v: batched cursor anchored at leg %d, single at %d", id, at, batched.idx[id], single.idx[id])
			}
		}
	}

	flat := NewCursor(flatModel{})
	buf = flat.ResolveAllInto(buf[:0], 5)
	for id, p := range buf {
		if want := geom.Pt(float64(id), 5); p != want {
			t.Fatalf("fallback batch: node %d got %v, want %v", id, p, want)
		}
	}
}

// TestCursorFallback checks that models without precomputed legs are served
// through their own PositionAt.
func TestCursorFallback(t *testing.T) {
	cur := NewCursor(flatModel{})
	if got := cur.PositionAt(3, 5); got != geom.Pt(3, 5) {
		t.Fatalf("fallback cursor: got %v", got)
	}
}

// flatModel is a minimal Model implementation from outside the track-based
// family.
type flatModel struct{}

func (flatModel) N() int                                  { return 8 }
func (flatModel) Arena() geom.Rect                        { return geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)} }
func (flatModel) Horizon() float64                        { return 100 }
func (flatModel) MaxSpeed() float64                       { return 0 }
func (flatModel) PositionAt(id int, t float64) geom.Point { return geom.Pt(float64(id), t) }
