package mobility

import (
	"testing"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

// TestCursorMatchesModel checks the cursor's core contract: its answers are
// bit-for-bit identical to Model.PositionAt under every access pattern a
// simulation produces — monotone sweeps, repeated instants, backward jumps,
// and out-of-range times.
func TestCursorMatchesModel(t *testing.T) {
	arena := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 20, SpeedMin: 1, SpeedMax: 160, Pause: 1, Horizon: 60,
	}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(m)
	if cur.src == nil {
		t.Fatal("waypoint model should expose legs to the cursor")
	}
	check := func(id int, at float64) {
		t.Helper()
		got, want := cur.PositionAt(id, at), m.PositionAt(id, at)
		if got != want { //lint:ignore float-eq the contract under test is bit-identity
			t.Fatalf("node %d at t=%v: cursor %v != model %v", id, at, got, want)
		}
	}

	// Monotone sweep with repeated instants, all nodes per instant.
	for at := 0.0; at <= 60; at += 0.37 {
		for id := 0; id < m.N(); id++ {
			check(id, at)
			check(id, at) // same instant twice
		}
	}
	// Random (including backward) jumps.
	rng := xrand.New(11)
	for i := 0; i < 2000; i++ {
		check(rng.Intn(m.N()), rng.Uniform(-5, 70))
	}
	// Clamping at the extremes after the cursor has advanced.
	for id := 0; id < m.N(); id++ {
		check(id, 60)
		check(id, -1)
		check(id, 1e9)
		check(id, 0)
	}
}

// TestCursorFallback checks that models without precomputed legs are served
// through their own PositionAt.
func TestCursorFallback(t *testing.T) {
	cur := NewCursor(flatModel{})
	if got := cur.PositionAt(3, 5); got != geom.Pt(3, 5) {
		t.Fatalf("fallback cursor: got %v", got)
	}
}

// flatModel is a minimal Model implementation from outside the track-based
// family.
type flatModel struct{}

func (flatModel) N() int                                  { return 8 }
func (flatModel) Arena() geom.Rect                        { return geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)} }
func (flatModel) Horizon() float64                        { return 100 }
func (flatModel) MaxSpeed() float64                       { return 0 }
func (flatModel) PositionAt(id int, t float64) geom.Point { return geom.Pt(float64(id), t) }
