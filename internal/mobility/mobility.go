// Package mobility implements the node-mobility models used by the
// simulator, chief among them the random waypoint model the paper evaluates
// with (Camp, Boleng & Davies 2002; zero pause time in the paper's setup).
//
// A Model answers "where is node i at time t" analytically: trajectories are
// precomputed as piecewise-linear legs for a fixed time horizon, so the
// discrete-event simulator needs no periodic position-update events and can
// evaluate positions at arbitrary instants (Hello transmissions, packet
// receptions, metric samples). Precomputation also makes every model
// immutable after construction and therefore safe for concurrent readers.
package mobility

import (
	"fmt"
	"sort"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

// Model reports node positions over time. Implementations are immutable and
// safe for concurrent use.
type Model interface {
	// N returns the number of nodes.
	N() int
	// Arena returns the region nodes move in.
	Arena() geom.Rect
	// PositionAt returns the position of node id at time t (seconds).
	// t is clamped to [0, Horizon].
	PositionAt(id int, t float64) geom.Point
	// MaxSpeed returns an upper bound on any node's instantaneous speed,
	// used to size buffer zones (Theorem 5 uses the maximal speed).
	MaxSpeed() float64
	// Horizon returns the duration (seconds) trajectories were generated
	// for.
	Horizon() float64
}

// leg is one linear segment of a trajectory: the node moves from From
// (at time T0) to To (at time T1) at constant speed, then the next leg
// begins. A pause is a leg with From == To.
type leg struct {
	t0, t1   float64
	from, to geom.Point
}

func (l leg) at(t float64) geom.Point {
	if l.t1 <= l.t0 {
		return l.from
	}
	f := (t - l.t0) / (l.t1 - l.t0)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return l.from.Lerp(l.to, f)
}

// track is a full per-node trajectory.
type track struct {
	legs []leg
}

func (tr *track) at(t float64) geom.Point {
	legs := tr.legs
	if len(legs) == 0 {
		return geom.Point{}
	}
	if t <= legs[0].t0 {
		return legs[0].from
	}
	last := legs[len(legs)-1]
	if t >= last.t1 {
		return last.to
	}
	// Binary search for the leg containing t.
	i := sort.Search(len(legs), func(i int) bool { return legs[i].t1 >= t })
	return legs[i].at(t)
}

// base carries the fields shared by all concrete models.
type base struct {
	arena    geom.Rect
	tracks   []track
	maxSpeed float64
	horizon  float64
}

func (b *base) N() int            { return len(b.tracks) }
func (b *base) Arena() geom.Rect  { return b.arena }
func (b *base) MaxSpeed() float64 { return b.maxSpeed }
func (b *base) Horizon() float64  { return b.horizon }

func (b *base) PositionAt(id int, t float64) geom.Point {
	// Trajectory generation may overshoot the horizon by part of a leg;
	// clamp so queries beyond the horizon freeze at the horizon position.
	if t < 0 {
		t = 0
	} else if t > b.horizon {
		t = b.horizon
	}
	return b.tracks[id].at(t)
}

// UniformPoints returns n points placed independently and uniformly in the
// arena.
func UniformPoints(arena geom.Rect, n int, rng *xrand.Source) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			rng.Uniform(arena.Min.X, arena.Max.X),
			rng.Uniform(arena.Min.Y, arena.Max.Y),
		)
	}
	return pts
}

// Static is a degenerate Model in which nodes never move. It is the
// reference substrate for validating the static-network guarantees
// (Theorem 1 with trivially consistent views).
type Static struct{ base }

// NewStatic builds a Static model from explicit positions.
func NewStatic(arena geom.Rect, positions []geom.Point, horizon float64) *Static {
	s := &Static{base{arena: arena, maxSpeed: 0, horizon: horizon}}
	s.tracks = make([]track, len(positions))
	for i, p := range positions {
		s.tracks[i] = track{legs: []leg{{t0: 0, t1: horizon, from: p, to: p}}}
	}
	return s
}

// NewStaticUniform builds a Static model with n uniformly placed nodes.
func NewStaticUniform(arena geom.Rect, n int, horizon float64, rng *xrand.Source) *Static {
	return NewStatic(arena, UniformPoints(arena, n, rng.Sub('s')), horizon)
}

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	N        int     // number of nodes
	SpeedMin float64 // m/s, per-leg speed is uniform in [SpeedMin, SpeedMax]
	SpeedMax float64 // m/s
	Pause    float64 // seconds paused at each waypoint (0 in the paper)
	Horizon  float64 // trajectory duration, seconds
}

// Validate reports whether the configuration is usable.
func (c WaypointConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("mobility: N must be positive, got %d", c.N)
	case c.SpeedMin < 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: need 0 <= SpeedMin <= SpeedMax, got [%g, %g]", c.SpeedMin, c.SpeedMax)
	case c.Pause < 0:
		return fmt.Errorf("mobility: Pause must be non-negative, got %g", c.Pause)
	case c.Horizon <= 0:
		return fmt.Errorf("mobility: Horizon must be positive, got %g", c.Horizon)
	}
	return nil
}

// SpeedAround returns the [min, max] speed interval centered on the given
// average speed: uniform in [avg/2, 3·avg/2], whose mean is avg and which
// avoids the near-zero speeds that make plain uniform-(0, 2·avg] waypoint
// runs degenerate (the well-known speed-decay pathology of the RWP model).
func SpeedAround(avg float64) (min, max float64) {
	return avg / 2, 3 * avg / 2
}

// SpeedSetdest returns the speed interval of the CMU/ns-2 "setdest"
// convention the paper's evaluation uses: uniform in (0, 2·avg], so the
// per-leg mean is avg and the maximal speed is twice the average (§5.2:
// "the relative speed between two neighbors is two times the maximal
// moving speed and four times the average moving speed"). Note the RWP
// time-weighting pathology: time-averaged speed is below avg because slow
// legs last longer. This is the faithful-reproduction setting.
func SpeedSetdest(avg float64) (min, max float64) {
	return 0, 2 * avg
}

// RandomWaypoint is the classic model: each node repeatedly picks a uniform
// destination in the arena and a uniform speed, travels there in a straight
// line, pauses, and repeats.
type RandomWaypoint struct {
	base
	cfg WaypointConfig
}

// NewRandomWaypoint generates trajectories for the whole horizon. Node i's
// trajectory depends only on (rng substream, i), so adding nodes does not
// perturb existing ones.
func NewRandomWaypoint(arena geom.Rect, cfg WaypointConfig, rng *xrand.Source) (*RandomWaypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arena.Empty() {
		return nil, fmt.Errorf("mobility: empty arena")
	}
	m := &RandomWaypoint{
		base: base{arena: arena, maxSpeed: cfg.SpeedMax, horizon: cfg.Horizon},
		cfg:  cfg,
	}
	m.tracks = make([]track, cfg.N)
	for i := range m.tracks {
		m.tracks[i] = waypointTrack(arena, cfg, rng.Sub('w', uint64(i)))
	}
	return m, nil
}

func waypointTrack(arena geom.Rect, cfg WaypointConfig, rng *xrand.Source) track {
	pos := geom.Pt(
		rng.Uniform(arena.Min.X, arena.Max.X),
		rng.Uniform(arena.Min.Y, arena.Max.Y),
	)
	var legs []leg
	t := 0.0
	for t < cfg.Horizon {
		dst := geom.Pt(
			rng.Uniform(arena.Min.X, arena.Max.X),
			rng.Uniform(arena.Min.Y, arena.Max.Y),
		)
		speed := rng.Uniform(cfg.SpeedMin, cfg.SpeedMax)
		if speed <= 0 {
			// A zero-speed leg would never end; treat it as a pause of one
			// second so the trajectory still covers the horizon.
			legs = append(legs, leg{t0: t, t1: t + 1, from: pos, to: pos})
			t++
			continue
		}
		dur := pos.Dist(dst) / speed
		legs = append(legs, leg{t0: t, t1: t + dur, from: pos, to: dst})
		t += dur
		pos = dst
		if cfg.Pause > 0 && t < cfg.Horizon {
			legs = append(legs, leg{t0: t, t1: t + cfg.Pause, from: pos, to: pos})
			t += cfg.Pause
		}
	}
	return track{legs: legs}
}

// WalkConfig parameterizes the random walk (a.k.a. random direction with
// reflection) model: each node travels in a uniformly random direction for
// a fixed epoch, reflecting off arena walls.
type WalkConfig struct {
	N        int
	SpeedMin float64
	SpeedMax float64
	Epoch    float64 // seconds per direction change
	Horizon  float64
}

// Validate reports whether the configuration is usable.
func (c WalkConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("mobility: N must be positive, got %d", c.N)
	case c.SpeedMin < 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: need 0 <= SpeedMin <= SpeedMax, got [%g, %g]", c.SpeedMin, c.SpeedMax)
	case c.Epoch <= 0:
		return fmt.Errorf("mobility: Epoch must be positive, got %g", c.Epoch)
	case c.Horizon <= 0:
		return fmt.Errorf("mobility: Horizon must be positive, got %g", c.Horizon)
	}
	return nil
}

// RandomWalk implements the bounded random walk model.
type RandomWalk struct {
	base
	cfg WalkConfig
}

// NewRandomWalk generates reflecting random-walk trajectories.
func NewRandomWalk(arena geom.Rect, cfg WalkConfig, rng *xrand.Source) (*RandomWalk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arena.Empty() {
		return nil, fmt.Errorf("mobility: empty arena")
	}
	m := &RandomWalk{
		base: base{arena: arena, maxSpeed: cfg.SpeedMax, horizon: cfg.Horizon},
		cfg:  cfg,
	}
	m.tracks = make([]track, cfg.N)
	for i := range m.tracks {
		m.tracks[i] = walkTrack(arena, cfg, rng.Sub('k', uint64(i)))
	}
	return m, nil
}

func walkTrack(arena geom.Rect, cfg WalkConfig, rng *xrand.Source) track {
	pos := geom.Pt(
		rng.Uniform(arena.Min.X, arena.Max.X),
		rng.Uniform(arena.Min.Y, arena.Max.Y),
	)
	var legs []leg
	t := 0.0
	for t < cfg.Horizon {
		speed := rng.Uniform(cfg.SpeedMin, cfg.SpeedMax)
		dir := rng.Uniform(0, 2*3.141592653589793)
		v := geom.Polar(speed, dir)
		remaining := cfg.Epoch
		// Advance in sub-legs, reflecting at walls, until the epoch ends.
		for remaining > 1e-12 {
			hit, frac := reflectTime(arena, pos, v, remaining)
			dur := remaining * frac
			next := pos.Add(v.Scale(dur))
			next = arena.Clamp(next) // guard rounding at the wall
			legs = append(legs, leg{t0: t, t1: t + dur, from: pos, to: next})
			t += dur
			remaining -= dur
			pos = next
			if hit == 0 {
				break
			}
			if hit&1 != 0 {
				v.DX = -v.DX
			}
			if hit&2 != 0 {
				v.DY = -v.DY
			}
		}
	}
	return track{legs: legs}
}

// reflectTime computes how far along (fraction of dur) a node moving from p
// with velocity v can travel before hitting a wall. hit is a bitmask:
// bit 0 = vertical wall (reflect X), bit 1 = horizontal wall (reflect Y),
// 0 = no wall hit within dur.
func reflectTime(arena geom.Rect, p geom.Point, v geom.Vector, dur float64) (hit int, frac float64) {
	frac = 1.0
	if v.DX > 0 {
		if f := (arena.Max.X - p.X) / (v.DX * dur); f < frac {
			frac, hit = f, 1
		}
	} else if v.DX < 0 {
		if f := (arena.Min.X - p.X) / (v.DX * dur); f < frac {
			frac, hit = f, 1
		}
	}
	if v.DY > 0 {
		if f := (arena.Max.Y - p.Y) / (v.DY * dur); f < frac {
			frac, hit = f, 2
		} else if f == frac && hit == 1 { //lint:ignore float-eq exact equality is what distinguishes a corner hit from two wall hits
			hit = 3 // corner
		}
	} else if v.DY < 0 {
		if f := (arena.Min.Y - p.Y) / (v.DY * dur); f < frac {
			frac, hit = f, 2
		} else if f == frac && hit == 1 { //lint:ignore float-eq exact equality is what distinguishes a corner hit from two wall hits
			hit = 3
		}
	}
	if frac < 0 {
		frac = 0
	}
	return hit, frac
}
