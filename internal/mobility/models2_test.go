package mobility

import (
	"math"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

func TestRandomDirectionStaysInArenaAndContinuous(t *testing.T) {
	m, err := NewRandomDirection(arena, DirectionConfig{
		N: 20, SpeedMin: 10, SpeedMax: 30, Pause: 1, Horizon: 100,
	}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.05
	for id := 0; id < m.N(); id++ {
		prev := m.PositionAt(id, 0)
		for tt := dt; tt <= 100; tt += dt {
			cur := m.PositionAt(id, tt)
			if !cur.In(arena) {
				t.Fatalf("node %d at t=%v outside arena: %v", id, tt, cur)
			}
			if d := cur.Dist(prev); d > m.MaxSpeed()*dt*1.001+1e-9 {
				t.Fatalf("node %d jumped %v m in %v s", id, d, dt)
			}
			prev = cur
		}
	}
}

func TestRandomDirectionReachesBoundary(t *testing.T) {
	// Legs end on the arena boundary by construction: each node must
	// repeatedly touch a wall.
	m, err := NewRandomDirection(arena, DirectionConfig{
		N: 10, SpeedMin: 50, SpeedMax: 50, Horizon: 200,
	}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < m.N(); id++ {
		touched := false
		for tt := 0.0; tt <= 200; tt += 0.1 {
			p := m.PositionAt(id, tt)
			if p.X < arena.Min.X+1 || p.X > arena.Max.X-1 || p.Y < arena.Min.Y+1 || p.Y > arena.Max.Y-1 {
				touched = true
				break
			}
		}
		if !touched {
			t.Errorf("node %d never reached the boundary", id)
		}
	}
}

func TestRandomDirectionValidation(t *testing.T) {
	bad := []DirectionConfig{
		{N: 0, SpeedMin: 1, SpeedMax: 2, Horizon: 1},
		{N: 1, SpeedMin: 0, SpeedMax: 2, Horizon: 1}, // zero speed never reaches boundary
		{N: 1, SpeedMin: 3, SpeedMax: 2, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Pause: -1, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Horizon: 0},
	}
	for i, c := range bad {
		if _, err := NewRandomDirection(arena, c, xrand.New(1)); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestGaussMarkovStaysInArenaAndContinuous(t *testing.T) {
	m, err := NewGaussMarkov(arena, GaussMarkovConfig{
		N: 20, MeanSpeed: 15, SpeedSigma: 3, DirSigma: 0.3, Alpha: 0.85, Horizon: 100,
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.1
	for id := 0; id < m.N(); id++ {
		prev := m.PositionAt(id, 0)
		for tt := dt; tt <= 100; tt += dt {
			cur := m.PositionAt(id, tt)
			if !cur.In(arena) {
				t.Fatalf("node %d at t=%v outside arena: %v", id, tt, cur)
			}
			if d := cur.Dist(prev); d > m.MaxSpeed()*dt*1.01+1e-6 {
				t.Fatalf("node %d jumped %v m in %v s (max %v)", id, d, dt, m.MaxSpeed()*dt)
			}
			prev = cur
		}
	}
}

func TestGaussMarkovMeanSpeedNearTarget(t *testing.T) {
	const mean = 15.0
	m, err := NewGaussMarkov(arena, GaussMarkovConfig{
		N: 30, MeanSpeed: mean, SpeedSigma: 2, DirSigma: 0.2, Alpha: 0.8, Horizon: 100,
	}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	total, count := 0.0, 0
	for id := 0; id < m.N(); id++ {
		for tt := 0.0; tt < 99; tt++ {
			total += m.PositionAt(id, tt+1).Dist(m.PositionAt(id, tt))
			count++
		}
	}
	got := total / float64(count)
	// Reflection clamping biases displacement slightly below speed.
	if got < 0.6*mean || got > 1.2*mean {
		t.Errorf("mean displacement speed %.2f, want near %v", got, mean)
	}
}

func TestGaussMarkovAlphaOneCruisesStraight(t *testing.T) {
	// Alpha = 1 means full memory: constant speed and direction until the
	// first wall reflection.
	m, err := NewGaussMarkov(arena, GaussMarkovConfig{
		N: 5, MeanSpeed: 10, SpeedSigma: 5, DirSigma: 1, Alpha: 1, Horizon: 20,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < m.N(); id++ {
		p0, p1, p2 := m.PositionAt(id, 0), m.PositionAt(id, 1), m.PositionAt(id, 2)
		step1, step2 := p1.Sub(p0), p2.Sub(p1)
		// Straight unless it reflected; detect reflection via speed.
		if math.Abs(step1.Len()-step2.Len()) > 1e-6 {
			continue
		}
		if step1.Len() == 0 {
			t.Errorf("node %d did not move", id)
			continue
		}
		cross := step1.Cross(step2)
		if math.Abs(cross) > 1e-6*step1.Len()*step2.Len() && step1.Dot(step2) > 0 {
			t.Errorf("node %d turned despite alpha=1", id)
		}
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	bad := []GaussMarkovConfig{
		{N: 0, MeanSpeed: 1, Alpha: 0.5, Horizon: 1},
		{N: 1, MeanSpeed: 0, Alpha: 0.5, Horizon: 1},
		{N: 1, MeanSpeed: 1, SpeedSigma: -1, Alpha: 0.5, Horizon: 1},
		{N: 1, MeanSpeed: 1, Alpha: 1.5, Horizon: 1},
		{N: 1, MeanSpeed: 1, Alpha: -0.1, Horizon: 1},
		{N: 1, MeanSpeed: 1, Alpha: 0.5, Horizon: 0},
		{N: 1, MeanSpeed: 1, Alpha: 0.5, Step: -1, Horizon: 1},
	}
	for i, c := range bad {
		if _, err := NewGaussMarkov(arena, c, xrand.New(1)); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := NewGaussMarkov(geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)},
		GaussMarkovConfig{N: 1, MeanSpeed: 1, Alpha: 0.5, Horizon: 1}, xrand.New(1)); err == nil {
		t.Error("empty arena accepted")
	}
}

func TestModelsDeterministic(t *testing.T) {
	mk := func(seed uint64) (geom.Point, geom.Point) {
		d, err := NewRandomDirection(arena, DirectionConfig{N: 3, SpeedMin: 5, SpeedMax: 15, Horizon: 30}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGaussMarkov(arena, GaussMarkovConfig{N: 3, MeanSpeed: 10, SpeedSigma: 2, DirSigma: 0.2, Alpha: 0.7, Horizon: 30}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return d.PositionAt(1, 17.3), g.PositionAt(2, 21.4)
	}
	d1, g1 := mk(9)
	d2, g2 := mk(9)
	if d1 != d2 || g1 != g2 {
		t.Error("models not deterministic under the same seed")
	}
	d3, g3 := mk(10)
	if d1 == d3 && g1 == g3 {
		t.Error("different seeds gave identical positions")
	}
}
