package mobility

import (
	"mstc/internal/geom"
)

// trackSource is implemented by every model built in this package (via the
// embedded base). It exposes the piecewise-linear legs to Cursor's monotone
// scan; models from other packages (e.g. replayed traces) fall back to the
// plain PositionAt of the Model interface.
type trackSource interface {
	trackOf(id int) *track
}

func (b *base) trackOf(id int) *track { return &b.tracks[id] }

// Cursor accelerates position queries whose times are (mostly)
// nondecreasing per node — the access pattern of a discrete-event
// simulation, where the radio medium evaluates positions in event order.
// It remembers the last trajectory leg used per node and resumes the scan
// there, so a monotone query sequence costs O(1) amortized per query
// instead of the O(log legs) binary search of Model.PositionAt. Backward
// jumps (a query earlier than the cursor) first probe the adjacent earlier
// leg — a smooth reverse sweep is O(1) per query too — and only fall back
// to a binary search over the prefix on a genuine long jump, so results are
// correct for any query order. Every path, including the boundary
// shortcuts, re-anchors the per-node leg index, so the next query resumes
// from where the last one landed instead of re-searching from a stale
// position.
//
// Results are bit-for-bit identical to Model.PositionAt: both resolve a
// query to the first leg whose end time is >= t and interpolate inside that
// leg, so no float operation differs between the two paths.
//
// The Model stays immutable (and therefore safe for concurrent readers);
// all mutable scan state lives in the Cursor, which is owned by a single
// caller — one Cursor per radio.Medium, like the Medium itself
// single-goroutine. Create additional cursors for additional readers.
type Cursor struct {
	model   Model
	src     trackSource // nil when the model does not expose legs
	horizon float64
	idx     []int // per-node index of the last leg used

	// backSearches counts backward jumps that needed a full prefix binary
	// search (the adjacent-leg probe missed). Exposed to the package's
	// regression test: a smooth reverse sweep must not accumulate these.
	backSearches int
}

// NewCursor returns a cursor over the model. Models from other packages
// (without precomputed legs) are supported transparently via their own
// PositionAt.
func NewCursor(m Model) *Cursor {
	c := &Cursor{model: m, horizon: m.Horizon()}
	if ts, ok := m.(trackSource); ok {
		c.src = ts
		c.idx = make([]int, m.N())
	}
	return c
}

// PositionAt returns node id's position at time t, clamped to [0, Horizon]
// exactly like Model.PositionAt.
//manet:noalloc
func (c *Cursor) PositionAt(id int, t float64) geom.Point {
	if c.src == nil {
		return c.model.PositionAt(id, t)
	}
	if t < 0 {
		t = 0
	} else if t > c.horizon {
		t = c.horizon
	}
	return c.resolve(id, t)
}

// ResolveAllInto appends every node's position at instant t to dst and
// returns the extended slice. It is the batched form of PositionAt: one
// pass over the per-node leg cursors in id order, so resolving a whole
// instant (domain assignment, grid rebuilds, metric sweeps) is a single
// cache-friendly sweep instead of n scattered queries. Results are
// bit-identical to n individual PositionAt calls and the per-node cursors
// advance exactly as they would have.
//manet:noalloc
func (c *Cursor) ResolveAllInto(dst []geom.Point, t float64) []geom.Point {
	n := c.model.N()
	if c.src == nil {
		for id := 0; id < n; id++ {
			dst = append(dst, c.model.PositionAt(id, t))
		}
		return dst
	}
	if t < 0 {
		t = 0
	} else if t > c.horizon {
		t = c.horizon
	}
	for id := 0; id < n; id++ {
		dst = append(dst, c.resolve(id, t))
	}
	return dst
}

// resolve returns node id's position at the already-clamped instant t and
// re-anchors the node's leg index at the leg that answered.
func (c *Cursor) resolve(id int, t float64) geom.Point {
	legs := c.src.trackOf(id).legs
	if len(legs) == 0 {
		return geom.Point{}
	}
	if t <= legs[0].t0 {
		c.idx[id] = 0
		return legs[0].from
	}
	if last := legs[len(legs)-1]; t >= last.t1 {
		c.idx[id] = len(legs) - 1
		return last.to
	}
	// The correct leg is the first one with t1 >= t — the same choice
	// track.at's binary search makes, which keeps interpolation
	// bit-identical at leg boundaries.
	i := c.idx[id]
	if i >= len(legs) {
		i = len(legs) - 1
	}
	if i > 0 && legs[i-1].t1 >= t {
		// Backward jump: the answer lies in [0, i). Probe the adjacent
		// earlier leg first — the common case of a reverse sweep — and
		// binary-search the prefix only on a long jump.
		if i == 1 || legs[i-2].t1 < t {
			i--
		} else {
			c.backSearches++
			lo, hi := 0, i
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if legs[mid].t1 >= t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			i = lo
		}
	} else {
		for legs[i].t1 < t {
			i++
		}
	}
	c.idx[id] = i
	return legs[i].at(t)
}
