package mobility

import (
	"sort"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/lint"
	"mstc/internal/xrand"
)

// TestNoallocAnnotationsConform pins every //manet:noalloc annotation in
// this package with testing.AllocsPerRun: the cursor's single-query and
// batched resolvers must allocate nothing in steady state (they are the
// per-event position path of every simulation). Coverage is cross-checked
// against the annotation scan in both directions.
func TestNoallocAnnotationsConform(t *testing.T) {
	arena := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 32, SpeedMin: 1, SpeedMax: 160, Pause: 1, Horizon: 60,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(m)
	buf := make([]geom.Point, 0, m.N())
	at, id := 0.0, 0

	measured := map[string]func(){
		"Cursor.PositionAt": func() {
			at += 0.01
			if at > 55 {
				at = 0 // exercise the backward-jump paths too
			}
			cur.PositionAt(id%m.N(), at)
			id++
		},
		"Cursor.ResolveAllInto": func() {
			at += 0.01
			if at > 55 {
				at = 0
			}
			buf = cur.ResolveAllInto(buf[:0], at)
		},
	}

	annotated, err := lint.NoallocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(annotated))
	for _, name := range annotated {
		seen[name] = true
		if measured[name] == nil {
			t.Errorf("%s is annotated //manet:noalloc but has no AllocsPerRun entry", name)
		}
	}
	var names []string
	for name := range measured {
		if !seen[name] {
			t.Errorf("%s is measured here but not annotated //manet:noalloc", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := measured[name]
		fn() // warm up before measuring
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run in steady state, want 0", name, allocs)
		}
	}
}
