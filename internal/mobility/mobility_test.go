package mobility

import (
	"math"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func TestUniformPointsInArena(t *testing.T) {
	rng := xrand.New(1)
	pts := UniformPoints(arena, 1000, rng)
	if len(pts) != 1000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !p.In(arena) {
			t.Fatalf("point %v outside arena", p)
		}
	}
	// Coverage sanity: mean should be near the center.
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	if math.Abs(sx/1000-450) > 30 || math.Abs(sy/1000-450) > 30 {
		t.Errorf("mean (%v, %v) far from center", sx/1000, sy/1000)
	}
}

func TestStaticNeverMoves(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4)}
	m := NewStatic(arena, pts, 100)
	if m.N() != 2 || m.MaxSpeed() != 0 || m.Horizon() != 100 {
		t.Fatalf("metadata wrong: N=%d MaxSpeed=%v Horizon=%v", m.N(), m.MaxSpeed(), m.Horizon())
	}
	for _, tt := range []float64{-1, 0, 50, 100, 1000} {
		if got := m.PositionAt(0, tt); got != pts[0] {
			t.Errorf("node 0 at t=%v: %v, want %v", tt, got, pts[0])
		}
		if got := m.PositionAt(1, tt); got != pts[1] {
			t.Errorf("node 1 at t=%v: %v, want %v", tt, got, pts[1])
		}
	}
}

func TestStaticUniform(t *testing.T) {
	m := NewStaticUniform(arena, 50, 10, xrand.New(7))
	if m.N() != 50 {
		t.Fatalf("N = %d", m.N())
	}
	for i := 0; i < 50; i++ {
		if !m.PositionAt(i, 5).In(arena) {
			t.Fatalf("node %d outside arena", i)
		}
	}
}

func defaultWaypoint(t *testing.T, avgSpeed float64, seed uint64) *RandomWaypoint {
	t.Helper()
	lo, hi := SpeedAround(avgSpeed)
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 40, SpeedMin: lo, SpeedMax: hi, Pause: 0, Horizon: 100,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWaypointStaysInArena(t *testing.T) {
	m := defaultWaypoint(t, 20, 3)
	for id := 0; id < m.N(); id++ {
		for tt := 0.0; tt <= 100; tt += 0.5 {
			if !m.PositionAt(id, tt).In(arena) {
				t.Fatalf("node %d at t=%v outside arena: %v", id, tt, m.PositionAt(id, tt))
			}
		}
	}
}

func TestWaypointContinuity(t *testing.T) {
	// Position must be continuous: over dt the node moves at most
	// MaxSpeed*dt (plus epsilon).
	m := defaultWaypoint(t, 40, 4)
	const dt = 0.01
	for id := 0; id < m.N(); id++ {
		prev := m.PositionAt(id, 0)
		for tt := dt; tt <= 100; tt += dt {
			cur := m.PositionAt(id, tt)
			if d := cur.Dist(prev); d > m.MaxSpeed()*dt*1.0001+1e-9 {
				t.Fatalf("node %d jumped %v m in %v s at t=%v (max %v)", id, d, dt, tt, m.MaxSpeed()*dt)
			}
			prev = cur
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	// Instantaneous speed (finite difference over a fine step inside a
	// leg) never exceeds SpeedMax.
	m := defaultWaypoint(t, 160, 5)
	const dt = 0.001
	for id := 0; id < 5; id++ {
		for tt := 0.0; tt < 99; tt += 0.37 {
			d := m.PositionAt(id, tt+dt).Dist(m.PositionAt(id, tt))
			if d/dt > m.MaxSpeed()*1.001 {
				t.Fatalf("node %d speed %v at t=%v exceeds max %v", id, d/dt, tt, m.MaxSpeed())
			}
		}
	}
}

func TestWaypointAverageSpeedNearTarget(t *testing.T) {
	// With SpeedAround(avg) and zero pause, long-run mean speed should be
	// within ~20% of avg (RWP biases toward slower legs lasting longer,
	// but the [avg/2, 3avg/2] interval keeps the bias modest).
	const avg = 20.0
	m := defaultWaypoint(t, avg, 6)
	const dt = 0.1
	total := 0.0
	samples := 0
	for id := 0; id < m.N(); id++ {
		for tt := 0.0; tt < 100-dt; tt += dt {
			total += m.PositionAt(id, tt+dt).Dist(m.PositionAt(id, tt)) / dt
			samples++
		}
	}
	mean := total / float64(samples)
	if mean < 0.7*avg || mean > 1.3*avg {
		t.Errorf("mean speed %v, want within 30%% of %v", mean, avg)
	}
}

func TestWaypointDeterminism(t *testing.T) {
	a := defaultWaypoint(t, 20, 42)
	b := defaultWaypoint(t, 20, 42)
	for id := 0; id < a.N(); id++ {
		for tt := 0.0; tt <= 100; tt += 7.3 {
			if a.PositionAt(id, tt) != b.PositionAt(id, tt) {
				t.Fatalf("same seed diverged: node %d t=%v", id, tt)
			}
		}
	}
}

// TestWaypointSeedsDiffer guards against the Sub-derivation regression:
// different seeds must yield different trajectories.
func TestWaypointSeedsDiffer(t *testing.T) {
	a := defaultWaypoint(t, 20, 1)
	b := defaultWaypoint(t, 20, 2)
	if a.PositionAt(0, 0) == b.PositionAt(0, 0) && a.PositionAt(1, 10) == b.PositionAt(1, 10) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestWaypointNodeIndependence(t *testing.T) {
	// Adding nodes must not change existing trajectories (per-node
	// substreams).
	lo, hi := SpeedAround(20)
	small, err := NewRandomWaypoint(arena, WaypointConfig{N: 5, SpeedMin: lo, SpeedMax: hi, Horizon: 50}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRandomWaypoint(arena, WaypointConfig{N: 50, SpeedMin: lo, SpeedMax: hi, Horizon: 50}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 5; id++ {
		for tt := 0.0; tt <= 50; tt += 3.1 {
			if small.PositionAt(id, tt) != big.PositionAt(id, tt) {
				t.Fatalf("trajectory of node %d changed when N grew", id)
			}
		}
	}
}

func TestWaypointPause(t *testing.T) {
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 10, SpeedMin: 10, SpeedMax: 10, Pause: 5, Horizon: 200,
	}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// With pauses, there must exist sample instants where a node is
	// motionless.
	still := 0
	for id := 0; id < m.N(); id++ {
		for tt := 0.0; tt < 199; tt += 0.5 {
			if m.PositionAt(id, tt) == m.PositionAt(id, tt+0.4) {
				still++
			}
		}
	}
	if still == 0 {
		t.Error("no pause intervals observed despite Pause=5")
	}
}

func TestWaypointClampOutsideHorizon(t *testing.T) {
	m := defaultWaypoint(t, 20, 12)
	end := m.PositionAt(0, 100)
	if got := m.PositionAt(0, 1e9); got != end {
		t.Errorf("beyond horizon: %v, want frozen at %v", got, end)
	}
	start := m.PositionAt(0, 0)
	if got := m.PositionAt(0, -5); got != start {
		t.Errorf("before start: %v, want %v", got, start)
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	bad := []WaypointConfig{
		{N: 0, SpeedMin: 1, SpeedMax: 2, Horizon: 1},
		{N: 1, SpeedMin: -1, SpeedMax: 2, Horizon: 1},
		{N: 1, SpeedMin: 3, SpeedMax: 2, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Pause: -1, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Horizon: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
		if _, err := NewRandomWaypoint(arena, c, xrand.New(1)); err == nil {
			t.Errorf("case %d: NewRandomWaypoint accepted bad config", i)
		}
	}
	if _, err := NewRandomWaypoint(geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)},
		WaypointConfig{N: 1, SpeedMin: 1, SpeedMax: 2, Horizon: 1}, xrand.New(1)); err == nil {
		t.Error("empty arena accepted")
	}
}

func TestSpeedAround(t *testing.T) {
	lo, hi := SpeedAround(40)
	if lo != 20 || hi != 60 {
		t.Errorf("SpeedAround(40) = [%v, %v], want [20, 60]", lo, hi)
	}
	if (lo+hi)/2 != 40 {
		t.Error("midpoint must equal the average")
	}
}

func TestZeroSpeedWaypointDoesNotHang(t *testing.T) {
	m, err := NewRandomWaypoint(arena, WaypointConfig{
		N: 3, SpeedMin: 0, SpeedMax: 0, Horizon: 10,
	}, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	p0 := m.PositionAt(0, 0)
	if got := m.PositionAt(0, 10); got != p0 {
		t.Errorf("zero-speed node moved from %v to %v", p0, got)
	}
}

func TestRandomWalkStaysInArenaAndContinuous(t *testing.T) {
	m, err := NewRandomWalk(arena, WalkConfig{
		N: 20, SpeedMin: 10, SpeedMax: 30, Epoch: 4, Horizon: 100,
	}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.05
	for id := 0; id < m.N(); id++ {
		prev := m.PositionAt(id, 0)
		for tt := dt; tt <= 100; tt += dt {
			cur := m.PositionAt(id, tt)
			if !cur.In(arena) {
				t.Fatalf("node %d at t=%v outside arena: %v", id, tt, cur)
			}
			if d := cur.Dist(prev); d > m.MaxSpeed()*dt*1.001+1e-9 {
				t.Fatalf("node %d jumped %v m in %v s", id, d, dt)
			}
			prev = cur
		}
	}
}

func TestRandomWalkActuallyMoves(t *testing.T) {
	m, err := NewRandomWalk(arena, WalkConfig{
		N: 5, SpeedMin: 20, SpeedMax: 20, Epoch: 2, Horizon: 50,
	}, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < m.N(); id++ {
		moved := 0.0
		for tt := 0.0; tt < 49; tt++ {
			moved += m.PositionAt(id, tt+1).Dist(m.PositionAt(id, tt))
		}
		if moved < 100 {
			t.Errorf("node %d moved only %v m over 50 s at 20 m/s", id, moved)
		}
	}
}

func TestRandomWalkConfigValidation(t *testing.T) {
	bad := []WalkConfig{
		{N: 0, SpeedMin: 1, SpeedMax: 2, Epoch: 1, Horizon: 1},
		{N: 1, SpeedMin: 2, SpeedMax: 1, Epoch: 1, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Epoch: 0, Horizon: 1},
		{N: 1, SpeedMin: 1, SpeedMax: 2, Epoch: 1, Horizon: 0},
	}
	for i, c := range bad {
		if _, err := NewRandomWalk(arena, c, xrand.New(1)); err == nil {
			t.Errorf("case %d: NewRandomWalk accepted bad config %+v", i, c)
		}
	}
}

func BenchmarkWaypointPositionAt(b *testing.B) {
	lo, hi := SpeedAround(20)
	m, err := NewRandomWaypoint(arena, WaypointConfig{N: 100, SpeedMin: lo, SpeedMax: hi, Horizon: 100}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink geom.Point
	for i := 0; i < b.N; i++ {
		sink = m.PositionAt(i%100, float64(i%1000)/10)
	}
	_ = sink
}
