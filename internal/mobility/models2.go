package mobility

import (
	"fmt"
	"math"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

// Additional mobility models from the survey the paper's evaluation cites
// (Camp, Boleng & Davies 2002): random direction and Gauss–Markov. They
// plug into every experiment through the same Model interface, enabling
// sensitivity studies beyond the random waypoint results of §5.

// DirectionConfig parameterizes the random direction model: each node picks
// a uniform direction, travels to the arena boundary, pauses, and repeats.
// Compared to random waypoint it avoids the center-density bias.
type DirectionConfig struct {
	N        int
	SpeedMin float64
	SpeedMax float64
	Pause    float64
	Horizon  float64
}

// Validate reports whether the configuration is usable.
func (c DirectionConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("mobility: N must be positive, got %d", c.N)
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: need 0 < SpeedMin <= SpeedMax, got [%g, %g]", c.SpeedMin, c.SpeedMax)
	case c.Pause < 0:
		return fmt.Errorf("mobility: Pause must be non-negative, got %g", c.Pause)
	case c.Horizon <= 0:
		return fmt.Errorf("mobility: Horizon must be positive, got %g", c.Horizon)
	}
	return nil
}

// RandomDirection implements the random direction model.
type RandomDirection struct {
	base
	cfg DirectionConfig
}

// NewRandomDirection generates random-direction trajectories.
func NewRandomDirection(arena geom.Rect, cfg DirectionConfig, rng *xrand.Source) (*RandomDirection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arena.Empty() {
		return nil, fmt.Errorf("mobility: empty arena")
	}
	m := &RandomDirection{
		base: base{arena: arena, maxSpeed: cfg.SpeedMax, horizon: cfg.Horizon},
		cfg:  cfg,
	}
	m.tracks = make([]track, cfg.N)
	for i := range m.tracks {
		m.tracks[i] = directionTrack(arena, cfg, rng.Sub('d', uint64(i)))
	}
	return m, nil
}

func directionTrack(arena geom.Rect, cfg DirectionConfig, rng *xrand.Source) track {
	pos := geom.Pt(
		rng.Uniform(arena.Min.X, arena.Max.X),
		rng.Uniform(arena.Min.Y, arena.Max.Y),
	)
	var legs []leg
	t := 0.0
	for t < cfg.Horizon {
		dir := rng.Uniform(0, 2*math.Pi)
		speed := rng.Uniform(cfg.SpeedMin, cfg.SpeedMax)
		v := geom.Polar(speed, dir)
		// Travel until the boundary: time to each wall along v.
		hitT := math.Inf(1)
		if v.DX > 0 {
			hitT = math.Min(hitT, (arena.Max.X-pos.X)/v.DX)
		} else if v.DX < 0 {
			hitT = math.Min(hitT, (arena.Min.X-pos.X)/v.DX)
		}
		if v.DY > 0 {
			hitT = math.Min(hitT, (arena.Max.Y-pos.Y)/v.DY)
		} else if v.DY < 0 {
			hitT = math.Min(hitT, (arena.Min.Y-pos.Y)/v.DY)
		}
		if math.IsInf(hitT, 1) || hitT <= 0 {
			// Already on the boundary moving outward along one axis only,
			// or degenerate direction: re-draw after a token pause.
			legs = append(legs, leg{t0: t, t1: t + 0.1, from: pos, to: pos})
			t += 0.1
			continue
		}
		next := arena.Clamp(pos.Add(v.Scale(hitT)))
		legs = append(legs, leg{t0: t, t1: t + hitT, from: pos, to: next})
		t += hitT
		pos = next
		if cfg.Pause > 0 && t < cfg.Horizon {
			legs = append(legs, leg{t0: t, t1: t + cfg.Pause, from: pos, to: pos})
			t += cfg.Pause
		}
	}
	return track{legs: legs}
}

// GaussMarkovConfig parameterizes the Gauss–Markov model: speed and
// direction evolve as first-order autoregressive processes with memory
// Alpha, producing smooth trajectories without the sharp turns of waypoint
// models.
type GaussMarkovConfig struct {
	N int
	// MeanSpeed is the asymptotic mean speed (m/s).
	MeanSpeed float64
	// SpeedSigma is the per-step speed noise std-dev (m/s).
	SpeedSigma float64
	// DirSigma is the per-step direction noise std-dev (radians).
	DirSigma float64
	// Alpha in [0, 1] is the memory parameter: 1 = straight-line cruise,
	// 0 = memoryless Brownian-like motion.
	Alpha float64
	// Step is the update period in seconds (default 1).
	Step    float64
	Horizon float64
}

// Validate reports whether the configuration is usable.
func (c GaussMarkovConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("mobility: N must be positive, got %d", c.N)
	case c.MeanSpeed <= 0:
		return fmt.Errorf("mobility: MeanSpeed must be positive, got %g", c.MeanSpeed)
	case c.SpeedSigma < 0 || c.DirSigma < 0:
		return fmt.Errorf("mobility: negative sigma")
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("mobility: Alpha must be in [0, 1], got %g", c.Alpha)
	case c.Step < 0:
		return fmt.Errorf("mobility: negative Step %g", c.Step)
	case c.Horizon <= 0:
		return fmt.Errorf("mobility: Horizon must be positive, got %g", c.Horizon)
	}
	return nil
}

// GaussMarkov implements the Gauss–Markov mobility model with boundary
// reflection.
type GaussMarkov struct {
	base
	cfg GaussMarkovConfig
}

// NewGaussMarkov generates Gauss–Markov trajectories.
func NewGaussMarkov(arena geom.Rect, cfg GaussMarkovConfig, rng *xrand.Source) (*GaussMarkov, error) {
	if cfg.Step == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		cfg.Step = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arena.Empty() {
		return nil, fmt.Errorf("mobility: empty arena")
	}
	maxSpeed := cfg.MeanSpeed + 4*cfg.SpeedSigma/math.Max(1e-9, math.Sqrt(1-cfg.Alpha*cfg.Alpha+1e-12))
	if cfg.Alpha == 1 || cfg.SpeedSigma == 0 { //lint:ignore float-eq exact sentinel values select the degenerate constant-speed regime
		maxSpeed = cfg.MeanSpeed
	}
	m := &GaussMarkov{
		base: base{arena: arena, maxSpeed: maxSpeed, horizon: cfg.Horizon},
		cfg:  cfg,
	}
	m.tracks = make([]track, cfg.N)
	for i := range m.tracks {
		m.tracks[i] = gaussMarkovTrack(arena, cfg, maxSpeed, rng.Sub('g', uint64(i)))
	}
	return m, nil
}

func gaussMarkovTrack(arena geom.Rect, cfg GaussMarkovConfig, maxSpeed float64, rng *xrand.Source) track {
	pos := geom.Pt(
		rng.Uniform(arena.Min.X, arena.Max.X),
		rng.Uniform(arena.Min.Y, arena.Max.Y),
	)
	speed := cfg.MeanSpeed
	dir := rng.Uniform(0, 2*math.Pi)
	meanDir := dir
	var legs []leg
	t := 0.0
	a := cfg.Alpha
	rootOneMinusA2 := math.Sqrt(math.Max(0, 1-a*a))
	for t < cfg.Horizon {
		// AR(1) updates (Liang & Haas / Camp et al. formulation).
		speed = a*speed + (1-a)*cfg.MeanSpeed + rootOneMinusA2*cfg.SpeedSigma*rng.NormFloat64()
		if speed < 0 {
			speed = 0
		}
		if speed > maxSpeed {
			speed = maxSpeed
		}
		dir = a*dir + (1-a)*meanDir + rootOneMinusA2*cfg.DirSigma*rng.NormFloat64()
		next := pos.Add(geom.Polar(speed*cfg.Step, dir))
		// Reflect off walls: mirror the coordinate and the direction.
		if next.X < arena.Min.X || next.X > arena.Max.X {
			dir = math.Pi - dir
			meanDir = math.Pi - meanDir
			next = pos.Add(geom.Polar(speed*cfg.Step, dir))
		}
		if next.Y < arena.Min.Y || next.Y > arena.Max.Y {
			dir = -dir
			meanDir = -meanDir
			next = pos.Add(geom.Polar(speed*cfg.Step, dir))
		}
		next = arena.Clamp(next)
		legs = append(legs, leg{t0: t, t1: t + cfg.Step, from: pos, to: next})
		pos = next
		t += cfg.Step
	}
	return track{legs: legs}
}
