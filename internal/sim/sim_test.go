package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"mstc/internal/xrand"
)

func TestRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func(now Time) { got = append(got, now) })
	}
	if n := e.Run(10); n != 5 {
		t.Fatalf("ran %d events", n)
	}
	want := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func(Time) { got = append(got, i) })
	}
	e.Run(1)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("same-time events ran out of scheduling order: %v", got)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func(Time) { ran++ })
	e.Schedule(2, func(Time) { ran++ })
	e.Schedule(3, func(Time) { ran++ })
	if n := e.Run(2); n != 2 {
		t.Fatalf("Run(2) executed %d", n)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if e.Now() != 2 {
		t.Errorf("Now = %v, want 2 (clock must not jump to horizon)", e.Now())
	}
	// Boundary inclusive.
	if n := e.Run(3); n != 1 {
		t.Errorf("Run(3) executed %d, want 1", n)
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(1, func(now Time) {
		got = append(got, now)
		e.ScheduleIn(0.5, func(now Time) { got = append(got, now) })
	})
	e.Run(10)
	if !reflect.DeepEqual(got, []Time{1, 1.5}) {
		t.Errorf("got %v", got)
	}
}

func TestZeroDelayRunsAtSameInstantAfterCurrent(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func(Time) {
		got = append(got, "a")
		e.ScheduleIn(0, func(Time) { got = append(got, "c") })
	})
	e.Schedule(1, func(Time) { got = append(got, "b") })
	e.Run(2)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("got %v, want [a b c] (zero-delay event after already-queued peers)", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(Time) {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(1, func(Time) {})
}

func TestScheduleValidation(t *testing.T) {
	for name, fn := range map[string]func(e *Engine){
		"nil-event":      func(e *Engine) { e.Schedule(1, nil) },
		"negative-delay": func(e *Engine) { e.ScheduleIn(-1, func(Time) {}) },
		"nan":            func(e *Engine) { e.Schedule(nan(), func(Time) {}) },
		"bad-interval":   func(e *Engine) { e.Every(0, 0, func(Time) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(NewEngine())
		}()
	}
}

func nan() Time {
	z := 0.0
	return z / z
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Every(0.5, 1, func(now Time) { got = append(got, now) })
	e.Run(4)
	want := []Time{0.5, 1.5, 2.5, 3.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Every ticks = %v, want %v", got, want)
	}
}

func TestStopHaltsEverything(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(1, 1, func(now Time) {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	e.Schedule(100, func(Time) { count += 1000 })
	e.Run(1e9)
	if count != 3 {
		t.Errorf("count = %d, want 3 (Stop must halt periodic and pending events)", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	if e.Step() {
		t.Error("Step after Stop returned true")
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
	ran := false
	e.Schedule(2, func(Time) { ran = true })
	if !e.Step() || !ran || e.Now() != 2 {
		t.Errorf("Step failed: ran=%v now=%v", ran, e.Now())
	}
}

func TestDeterministicUnderRandomLoad(t *testing.T) {
	// Two engines fed the same pseudo-random schedule must execute
	// identically.
	run := func(seed uint64) []Time {
		rng := xrand.New(seed)
		e := NewEngine()
		var got []Time
		var recurse func(depth int) Event
		recurse = func(depth int) Event {
			return func(now Time) {
				got = append(got, now)
				if depth < 3 {
					e.ScheduleIn(rng.Uniform(0, 2), recurse(depth+1))
				}
			}
		}
		for i := 0; i < 50; i++ {
			e.Schedule(rng.Uniform(0, 10), recurse(0))
		}
		e.Run(100)
		return got
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	noop := func(Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+float64(i%100)/100, noop)
		if i%64 == 63 {
			e.Run(e.Now() + 0.5)
		}
	}
}
