// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a pending-event queue with deterministic execution order.
//
// Events scheduled for the same instant run in FIFO order of scheduling
// (a monotone sequence number breaks timestamp ties), so simulations are
// bit-reproducible: the same seed and configuration always produce the same
// event interleaving regardless of host or GOMAXPROCS. Each Engine is
// single-threaded by design — cross-run parallelism lives one level up, in
// package experiment, where independent repetitions fan out over a worker
// pool with one Engine each.
package sim

import (
	"fmt"
	"math"
)

// Time is simulation time in seconds.
type Time = float64

// Event is a callback invoked at its scheduled instant.
type Event func(now Time)

// Actor is the allocation-conscious alternative to Event: scheduling a
// pointer-shaped Actor stores it in the queue as a plain interface value,
// so callers that pool their actor structs schedule without the per-event
// closure allocation an Event capture costs.
type Actor interface {
	Act(now Time)
}

type item struct {
	at  Time
	seq uint64
	fn  Event
	act Actor
}

// run dispatches the item to its callback.
func (it *item) run() {
	if it.act != nil {
		it.act.Act(it.at)
		return
	}
	it.fn(it.at)
}

// eventHeap is a hand-rolled binary min-heap over items. container/heap
// would box every item into an interface value on Push/Pop — one heap
// allocation per scheduled event, which dominates the steady-state
// allocation profile of a simulation — so the sift operations are inlined
// here and items stay in the slice by value.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at { //lint:ignore float-eq exact compare orders events; equal timestamps fall through to FIFO seq
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends it and restores the heap invariant (sift-up).
func (h *eventHeap) push(it item) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum item (sift-down).
func (h *eventHeap) pop() item {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = item{} // release the closure reference
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use at time 0.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
}

// NewEngine returns a fresh engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at the absolute instant at. Scheduling in the
// past (before Now) panics: it always indicates a logic error in the model,
// and silently reordering would corrupt causality.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: scheduling at NaN")
	}
	if fn == nil {
		panic("sim: nil event")
	}
	e.seq++
	e.queue.push(item{at: at, seq: e.seq, fn: fn})
}

// ScheduleIn enqueues fn to run after delay d (>= 0) from Now.
func (e *Engine) ScheduleIn(d Time, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// ScheduleActor enqueues a to run at the absolute instant at, interleaved
// with Event callbacks in the same timestamp-then-FIFO order.
func (e *Engine) ScheduleActor(at Time, a Actor) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: scheduling at NaN")
	}
	if a == nil {
		panic("sim: nil actor")
	}
	e.seq++
	e.queue.push(item{at: at, seq: e.seq, act: a})
}

// ScheduleActorIn enqueues a to run after delay d (>= 0) from Now.
func (e *Engine) ScheduleActorIn(d Time, a Actor) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.ScheduleActor(e.now+d, a)
}

// Every schedules fn at start and then every interval seconds forever
// (until the run horizon cuts it off). fn runs before the next occurrence
// is scheduled, so fn may Stop the engine to cancel the series.
func (e *Engine) Every(start, interval Time, fn Event) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	var tick Event
	tick = func(now Time) {
		fn(now)
		if !e.stopped {
			e.Schedule(now+interval, tick)
		}
	}
	e.Schedule(start, tick)
}

// NextAt returns the instant of the earliest pending event. ok is false
// when the queue is empty or the engine is stopped — the engine has nothing
// left to run. Callers that interleave engine events with externally driven
// work (the region-parallel hello loop) use it to bound how far they may
// advance before draining the engine.
func (e *Engine) NextAt() (at Time, ok bool) {
	if e.stopped || len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step runs the next pending event, advancing the clock to it. It returns
// false if the queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	it.run()
	return true
}

// Run executes events in order until the queue is drained, the engine is
// stopped, or the next event lies strictly beyond until; the clock finishes
// at min(until, last event time) — it does not jump ahead to until.
// It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= until {
		it := e.queue.pop()
		e.now = it.at
		it.run()
		n++
	}
	return n
}

// Stop halts the engine: pending events are kept but no longer executed.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
