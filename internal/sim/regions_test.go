package sim

import (
	"testing"
)

// TestRegionsBarrierRunsEveryDomain checks the pool's contract at every
// worker count: each barrier runs every domain exactly once, results
// written to disjoint per-domain state are all visible to the caller when
// Barrier returns, and repeated barriers reuse the pool.
func TestRegionsBarrierRunsEveryDomain(t *testing.T) {
	const domains = 16
	for _, workers := range []int{1, 2, 4, 7, 32} {
		counts := make([]int, domains)
		r := NewRegions(domains, workers, func(d int) {
			counts[d]++
		})
		if r.Domains() != domains {
			t.Fatalf("workers=%d: Domains() = %d, want %d", workers, r.Domains(), domains)
		}
		if w := r.Workers(); w < 1 || w > domains {
			t.Fatalf("workers=%d: effective workers %d outside [1, %d]", workers, w, domains)
		}
		for round := 1; round <= 3; round++ {
			r.Barrier()
			for d, c := range counts {
				if c != round {
					t.Fatalf("workers=%d round %d: domain %d ran %d times", workers, round, d, c)
				}
			}
		}
		r.Close()
	}
}

// TestRegionsDeterministicMerge runs domain work that writes into
// per-domain slots and merges the slots serially after the barrier — the
// exact shape of manet's region-parallel hello processing. The merged
// value must be identical for every worker count: domain independence plus
// a serial merge makes completion order unobservable.
func TestRegionsDeterministicMerge(t *testing.T) {
	const domains = 9
	merged := func(workers int) uint64 {
		slots := make([]uint64, domains)
		round := 0
		r := NewRegions(domains, workers, func(d int) {
			// Arbitrary per-domain mixing keyed only by (round, d); round
			// is written serially between barriers, so the read is ordered.
			x := uint64(round)*1000 + uint64(d) + 1
			x ^= x << 13
			x ^= x >> 7
			slots[d] = x
		})
		defer r.Close()
		var acc uint64 = 1
		for round = 0; round < 50; round++ {
			r.Barrier()
			for _, s := range slots {
				acc = acc*6364136223846793005 + s
			}
		}
		return acc
	}
	want := merged(1)
	for _, workers := range []int{2, 3, 8} {
		if got := merged(workers); got != want {
			t.Errorf("workers=%d: merged digest %d != serial %d", workers, got, want)
		}
	}
}

// TestRegionsSingleWorkerInline pins the single-worker fast path: no
// goroutines are started and the work function is bound at construction,
// so a barrier allocates nothing — the property the allocation-conformance
// tests of the parallel engine rely on.
func TestRegionsSingleWorkerInline(t *testing.T) {
	sink := make([]int, 4)
	r := NewRegions(4, 1, func(d int) { sink[d]++ })
	defer r.Close()
	step := func() { r.Barrier() }
	step()
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("single-worker barrier: %.1f allocs/run, want 0", allocs)
	}
}
