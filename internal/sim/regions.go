// Region-parallel execution support: a fixed pool of worker goroutines that
// drains a set of independent spatial domains between two barriers. The
// pool is deliberately dumb — it knows nothing about simulation state. The
// caller guarantees that the per-domain work function touches disjoint
// state (package manet's ownership discipline), and the pool guarantees
// that Barrier does not return until every domain has been processed, with
// the channel send/receive plus WaitGroup edges providing the
// happens-before ordering that makes the serial code before and after a
// barrier race-free against the workers.
package sim

import "sync"

// Regions is a reusable barrier-synchronized worker pool over a fixed
// number of domains. The per-domain work function is bound once at
// construction — Barrier itself takes no arguments and allocates nothing,
// so it can sit on an allocation-audited hot path. With one worker the
// pool degenerates to an inline loop — no goroutines, no synchronization —
// so single-worker runs stay measurable by allocation- and determinism-
// sensitive tests.
type Regions struct {
	domains int
	workers int
	run     func(domain int)
	work    chan int
	wg      sync.WaitGroup
}

// NewRegions builds a pool of workers goroutines serving the given number
// of domains, each barrier running run(d) for every domain d. workers is
// clamped to [1, domains]; with workers == 1 no goroutines are started.
func NewRegions(domains, workers int, run func(domain int)) *Regions {
	if domains < 1 {
		domains = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > domains {
		workers = domains
	}
	r := &Regions{domains: domains, workers: workers, run: run}
	if workers > 1 {
		r.work = make(chan int, domains)
		for w := 0; w < workers; w++ {
			go r.worker()
		}
	}
	return r
}

// Domains returns the domain count the pool was built for.
func (r *Regions) Domains() int { return r.domains }

// Workers returns the effective worker count.
func (r *Regions) Workers() int { return r.workers }

func (r *Regions) worker() {
	for d := range r.work {
		r.run(d)
		r.wg.Done()
	}
}

// Barrier runs the bound work function for every domain in [0, domains)
// and returns once all calls have completed. Domains are handed out
// through a buffered channel, so workers load-balance dynamically; because
// the caller guarantees domain independence, the completion order cannot
// influence results. Barrier must not be called concurrently with itself.
func (r *Regions) Barrier() {
	if r.workers == 1 {
		for d := 0; d < r.domains; d++ {
			r.run(d)
		}
		return
	}
	r.wg.Add(r.domains)
	for d := 0; d < r.domains; d++ {
		r.work <- d
	}
	r.wg.Wait()
}

// Close shuts the worker goroutines down. The pool must not be used after
// Close; calling Close on a single-worker pool is a no-op.
func (r *Regions) Close() {
	if r.work != nil {
		close(r.work)
		r.work = nil
	}
}
