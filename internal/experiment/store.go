package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"

	"mstc/internal/manet"
	"mstc/internal/sweep"
)

// This file is the glue between the experiment runner and the sweep
// subsystem (internal/sweep): the options fingerprint, the canonical run
// descriptor, and the store-aware execution path Execute dispatches to.
// Figures never talk to the store directly — they keep calling Sweep /
// Execute, which transparently reads stored runs and computes only the
// misses, so a warm store renders every figure with zero recomputation.

// Fingerprint identifies the option set a run's result depends on: a
// 16-byte sha256 prefix over a canonical binary encoding of every
// result-affecting Options field. Fields that provably cannot change a
// result are excluded, so records are shared across them:
//
//   - Workers and the Progress/Interrupt/Store/Shard/Retry plumbing
//     (determinism across worker counts is pinned by
//     TestDeterminismRegression),
//   - Radio.Slack (pinned by TestDigestUnchangedByStalenessCache),
//   - NoSelectionCache (pinned by TestDigestUnchangedBySelectionCache),
//   - Speeds, Buffers, and Reps, which shape the *task set* — per-run
//     results depend only on the Run fields, so raising Reps or adding a
//     speed reuses every already-stored run.
//
//manet:hashes Options
//manet:hash-exclude Workers determinism across worker counts is pinned by TestDeterminismRegression
//manet:hash-exclude Speeds task-set shape; per-run results depend only on Run fields
//manet:hash-exclude Buffers task-set shape; per-run results depend only on Run fields
//manet:hash-exclude Reps task-set shape; per-run results depend only on Run fields
//manet:hash-exclude NoSelectionCache result-identical by construction, pinned by TestDigestUnchangedBySelectionCache
//manet:hash-exclude Domains region-parallel engine is bit-identical to serial, pinned by TestDigestUnchangedByEngineParallelism
//manet:hash-exclude EngineWorkers worker count never changes results, pinned by TestDigestUnchangedByEngineParallelism
//manet:hash-exclude Store storage backend choice cannot change what is computed
//manet:hash-exclude Shard sharding selects which runs compute, never their values
//manet:hash-exclude Retry retries replay the same deterministic run
//manet:hash-exclude Interrupt interruption stops dispatch; completed runs are unchanged
//manet:hash-exclude Progress reporting callback cannot affect results
func (o Options) Fingerprint() string {
	h := sha256.New()
	var b [8]byte
	word := func(w uint64) {
		binary.LittleEndian.PutUint64(b[:], w)
		h.Write(b[:])
	}
	f := func(x float64) { word(math.Float64bits(x)) }
	word(uint64(int64(o.N)))
	f(o.ArenaSide)
	f(o.NormalRange)
	f(o.Duration)
	f(o.FloodRate)
	word(o.Seed)
	f(o.Radio.Cell)
	f(o.Radio.Delay)
	f(o.Radio.LossRate)
	f(o.Radio.TxDuration)
	word(uint64(o.Channel.Loss.Model))
	f(o.Channel.Loss.Rate)
	f(o.Channel.Loss.MeanBurst)
	f(o.Channel.Loss.GoodLoss)
	f(o.Channel.Loss.BadLoss)
	f(o.Channel.Delay.Min)
	f(o.Channel.Delay.Max)
	f(o.Channel.Churn.MeanUp)
	f(o.Channel.Churn.MeanDown)
	f(o.SnapshotEvery)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// desc renders the canonical run descriptor stored inside each record.
// Get compares it byte-for-byte against the requesting task, so even a
// full hash collision on the record address degrades to a cache miss.
func (r Run) desc() string {
	d := fmt.Sprintf("%s speed=%g rep=%d mech=%+v", r.Protocol, r.Speed, r.Rep, r.Mech)
	if r.Channel.Enabled() {
		d += fmt.Sprintf(" chan=%+v", r.Channel)
	}
	if r.Traffic.Enabled() {
		d += fmt.Sprintf(" traffic=%+v", r.Traffic)
	}
	if r.Unicast.Rate > 0 {
		d += fmt.Sprintf(" unicast=%+v", r.Unicast)
	}
	return d
}

// storeKey addresses the run's record under the given options fingerprint.
func (r Run) storeKey(fp string) sweep.Key {
	return sweep.Key{Fingerprint: fp, Run: r.key(), Rep: r.Rep}
}

// recoverRun invokes f up to 1+retries times, converting panics into
// errors (with the first panic's stack attached). Non-panic errors are
// deterministic configuration errors and are never retried. attempts
// reports how many executions happened.
func recoverRun(retries int, f func() (manet.Result, error)) (res manet.Result, attempts int, err error) {
	if retries < 0 {
		retries = 0
	}
	for attempts = 1; ; attempts++ {
		var panicked bool
		res, err = func() (res manet.Result, err error) {
			defer func() {
				if p := recover(); p != nil {
					panicked = true
					err = fmt.Errorf("run panicked: %v\n%s", p, debug.Stack())
				}
			}()
			return f()
		}()
		if !panicked || attempts > retries {
			return res, attempts, err
		}
	}
}

// taskState tracks how each task of one Execute call was satisfied.
type taskState uint8

const (
	taskPending taskState = iota // queued for computation
	taskDone                     // computed (and journaled, with a store)
	taskHit                      // satisfied from the store
	taskForeign                  // owned by another shard, not in the store
	taskSkipped                  // interrupt drained it before dispatch
	taskFailed                   // retry budget exhausted
)

// checkpointEvery is how many completions pass between advisory
// checkpoint flushes. The per-record journal is flushed on *every*
// completion regardless; this only paces the progress summary.
const checkpointEvery = 32

// executeAll is the single execution path behind Execute: it resolves
// store hits, applies the shard partition, fans the remaining tasks over
// the worker pool with panic recovery and a bounded retry budget,
// journals completions, and honors the graceful-interrupt hook.
func executeAll(o Options, tasks []Run) ([]manet.Result, error) {
	results := make([]manet.Result, len(tasks))
	state := make([]taskState, len(tasks))
	keys := make([]sweep.Key, len(tasks))
	var pending []int

	if o.Store != nil {
		fp := o.Fingerprint()
		group := make(map[uint64]int, len(tasks))
		for i, t := range tasks {
			k := t.key()
			g, seen := group[k]
			if !seen {
				g = len(group)
				group[k] = g
			}
			keys[i] = t.storeKey(fp)
			if res, ok := o.Store.Get(keys[i], t.desc()); ok {
				results[i] = res
				state[i] = taskHit
				continue
			}
			if !o.Shard.Owns(g) {
				state[i] = taskForeign
				continue
			}
			pending = append(pending, i)
		}
	} else {
		pending = make([]int, len(tasks))
		for i := range tasks {
			pending[i] = i
		}
	}

	errs := make([]error, len(tasks))
	var done atomic.Int64
	total := len(pending)
	forEachTask(o.Workers, len(pending), func(j int) {
		i := pending[j]
		if o.Interrupt != nil && o.Interrupt() {
			state[i] = taskSkipped
			return
		}
		t := tasks[i]
		res, attempts, err := recoverRun(o.Retry, func() (manet.Result, error) {
			return executeOne(o, t)
		})
		if err != nil {
			state[i] = taskFailed
			errs[i] = fmt.Errorf("%s: %w", t.desc(), err)
			if o.Store != nil {
				if perr := o.Store.PutFailure(keys[i], t.desc(), attempts, err.Error()); perr != nil {
					errs[i] = fmt.Errorf("%v (and journaling the failure failed: %v)", errs[i], perr)
				}
			}
			return
		}
		results[i] = res
		state[i] = taskDone
		if o.Store != nil {
			if perr := o.Store.Put(keys[i], t.desc(), attempts, res); perr != nil {
				errs[i] = perr
				return
			}
		}
		n := done.Add(1)
		if o.Store != nil && n%checkpointEvery == 0 {
			// Advisory; the per-record journal already holds the truth.
			_ = o.Store.WriteCheckpoint(sweep.Checkpoint{
				Fingerprint: keys[i].Fingerprint, Done: int(n), Total: total,
			})
		}
		if o.Progress != nil {
			o.Progress(int(n), total)
		}
	})

	interrupted, foreign := false, false
	for i := range state {
		switch state[i] {
		case taskSkipped:
			interrupted = true
		case taskForeign:
			foreign = true
		}
	}
	if o.Store != nil && total > 0 {
		fp := keys[pending[0]].Fingerprint
		_ = o.Store.WriteCheckpoint(sweep.Checkpoint{
			Fingerprint: fp, Done: int(done.Load()), Total: total, Interrupted: interrupted,
		})
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if interrupted {
		return nil, fmt.Errorf("%d of %d runs remaining (in-flight runs journaled): %w",
			total-int(done.Load()), total, sweep.ErrInterrupted)
	}
	if foreign {
		return nil, fmt.Errorf("shard %s stored %d runs: %w", o.Shard, int(done.Load()), sweep.ErrPartial)
	}
	return results, nil
}
