package experiment

import (
	"fmt"

	"mstc/internal/manet"
	"mstc/internal/stats"
	"mstc/internal/traffic"
)

// Routing-comparison experiment — the traffic subsystem's evaluation.
//
// FigTraffic runs CBR flows routed by an on-demand protocol (AODV) and a
// proactive one (OLSR) over two topologies: the unit-disk baseline
// ("none", every physical link usable) and a controlled topology (RNG)
// under the mobility-managed setting (10 m buffer + view synchronization).
// The figure plots routing control overhead per delivered data packet
// against speed; the table reports the full per-point picture (delivery
// ratio, latency, hops, overhead) so the overhead comparison can be read
// at comparable delivery — overhead alone is meaningless if one
// configuration delivers nothing.
//
// The traffic spec is fixed (not an Options knob) so Options.Fingerprint
// is untouched: stores filled before this experiment existed stay valid.

// trafficSpec is the one CBR workload every routing-comparison task runs:
// 8 flows at 2 pkt/s, protocol parameters at their defaults.
func trafficSpec(mode traffic.Mode) traffic.Config {
	return traffic.Config{Mode: mode, Flows: 8, Rate: 2}
}

// trafficProtocols and trafficModes fix the comparison grid. "none" is
// the unit-disk baseline; RNG is the controlled topology (sparse but
// connected, the paper's main subject).
func trafficProtocols() []string    { return []string{"none", "RNG"} }
func trafficModes() []traffic.Mode  { return []traffic.Mode{traffic.AODV, traffic.OLSR} }
func trafficMech() manet.Mechanisms { return manet.Mechanisms{Buffer: 10, ViewSync: true} }

// trafficTasks enumerates protocols × modes × speeds × reps in the exact
// nesting order FigTraffic consumes — the "traffic" TaskSet uses it too,
// so a fleet-filled store renders the figure without recomputation.
func trafficTasks(o Options) []Run {
	var tasks []Run
	for _, p := range trafficProtocols() {
		for _, m := range trafficModes() {
			for _, s := range o.Speeds {
				for rep := 0; rep < o.Reps; rep++ {
					tasks = append(tasks, Run{
						Protocol: p, Speed: s, Mech: trafficMech(),
						Traffic: trafficSpec(m), Rep: rep,
					})
				}
			}
		}
	}
	return tasks
}

// FigTraffic is the routing comparison: control overhead per delivered
// data packet versus speed, one series per (topology, routing protocol)
// pair, with a per-point table of delivery ratio, latency, and hop count.
func FigTraffic(o Options) (Figure, Table, error) {
	results, err := Execute(o, trafficTasks(o))
	if err != nil {
		return Figure{}, Table{}, err
	}
	f := Figure{
		Title:  "Routing comparison: control overhead over controlled vs unit-disk topology",
		XLabel: "speed (m/s)",
		YLabel: "control tx per delivered data packet",
	}
	t := Table{
		Title: "Routing comparison: per-point delivery and overhead",
		Header: []string{"topology", "routing", "speed (m/s)", "PDR",
			"delay (s)", "hops", "ctrl/data"},
	}
	i := 0
	for _, p := range trafficProtocols() {
		for _, m := range trafficModes() {
			s := Series{Name: fmt.Sprintf("%s/%s", p, m)}
			for _, sp := range o.Speeds {
				var pdr, delay, hops, ctrl stats.Welford
				for rep := 0; rep < o.Reps; rep++ {
					tr := results[i].Traffic
					pdr.Add(tr.DeliveryRatio)
					delay.Add(tr.AvgDelay)
					hops.Add(tr.AvgHops)
					ctrl.Add(tr.ControlPerData)
					i++
				}
				s.X = append(s.X, sp)
				s.Y = append(s.Y, ctrl.Mean())
				s.CI = append(s.CI, ctrl.CI95())
				t.Rows = append(t.Rows, []string{
					p, m.String(),
					fmt.Sprintf("%g", sp),
					fmt.Sprintf("%.3f", pdr.Mean()),
					fmt.Sprintf("%.3f", delay.Mean()),
					fmt.Sprintf("%.2f", hops.Mean()),
					fmt.Sprintf("%.2f", ctrl.Mean()),
				})
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, t, nil
}
