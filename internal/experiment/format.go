package experiment

import (
	"fmt"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Dat renders the figure in gnuplot-friendly whitespace-separated columns:
// a comment header, then one row per x value with y and ci columns per
// series ("x  s1_y s1_ci  s2_y s2_ci ...").
func (f Figure) Dat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# %s", f.Title, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s\t%s_ci95", s.Name, s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "\t%.6f\t%.6f", s.Y[i], s.CI[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one line of a figure: y(x) with confidence half-widths.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	CI   []float64
}

// Figure is a printable set of series sharing an x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as a table: one x column plus y±ci per series.
func (f Figure) String() string {
	t := Table{Title: fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel)}
	t.Header = append(t.Header, f.XLabel)
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name)
	}
	if len(f.Series) == 0 {
		return t.String()
	}
	for i, x := range f.Series[0].X {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.3f±%.3f", s.Y[i], s.CI[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
