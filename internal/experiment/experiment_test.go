package experiment

import (
	"strings"
	"testing"

	"mstc/internal/manet"
)

func tinyOptions() Options {
	o := DefaultOptions()
	o.N = 60
	o.Reps = 2
	o.Duration = 10
	o.Speeds = []float64{1, 40}
	o.Buffers = []float64{0, 100}
	return o
}

func TestValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.N = 1 },
		func(o *Options) { o.ArenaSide = 0 },
		func(o *Options) { o.NormalRange = -1 },
		func(o *Options) { o.Speeds = nil },
		func(o *Options) { o.Reps = 0 },
		func(o *Options) { o.Duration = 0 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

func TestExecuteDeterministicAcrossWorkerCounts(t *testing.T) {
	o := tinyOptions()
	tasks := []Run{
		{Protocol: "RNG", Speed: 40, Rep: 0},
		{Protocol: "RNG", Speed: 40, Rep: 1},
		{Protocol: "MST", Speed: 1, Rep: 0},
		{Protocol: "SPT-2", Speed: 40, Mech: manet.Mechanisms{Buffer: 10}, Rep: 0},
	}
	o.Workers = 1
	seq, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("task %d: sequential %+v != parallel %+v", i, seq[i], par[i])
		}
	}
}

func TestPairedMobilityAcrossProtocols(t *testing.T) {
	// Different protocols at the same (speed, rep) must see the same
	// mobility trace; we can't observe the trace directly, but re-running
	// the same task must reproduce bit-identical results.
	o := tinyOptions()
	r := Run{Protocol: "RNG", Speed: 40, Rep: 1}
	a, err := Execute(o, []Run{r})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(o, []Run{r})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("same task not reproducible: %+v vs %+v", a[0], b[0])
	}
}

func TestExecuteUnknownProtocol(t *testing.T) {
	o := tinyOptions()
	if _, err := Execute(o, []Run{{Protocol: "nope", Speed: 1}}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Execute(o, []Run{{Protocol: "GG", Speed: 1, Mech: manet.Mechanisms{WeakK: 2}}}); err == nil {
		t.Error("weak GG accepted")
	}
}

func TestSweepShape(t *testing.T) {
	o := tinyOptions()
	aggs, err := Sweep(o, []string{"RNG", "MST"}, []float64{1, 40}, []manet.Mechanisms{{}, {Buffer: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2*2*2 {
		t.Fatalf("aggregates = %d, want 8", len(aggs))
	}
	for _, a := range aggs {
		if a.Connectivity.N() != o.Reps {
			t.Errorf("%s speed=%v: %d reps, want %d", a.Protocol, a.Speed, a.Connectivity.N(), o.Reps)
		}
		if a.Connectivity.Mean() < 0 || a.Connectivity.Mean() > 1 {
			t.Errorf("connectivity out of range: %v", a.Connectivity.Mean())
		}
		if a.TxRange.Mean() <= 0 || a.TxRange.Mean() > o.NormalRange {
			t.Errorf("range out of range: %v", a.TxRange.Mean())
		}
	}
	// Order: protocol-major.
	if aggs[0].Protocol != "RNG" || aggs[4].Protocol != "MST" {
		t.Errorf("ordering wrong: %v / %v", aggs[0].Protocol, aggs[4].Protocol)
	}
}

func TestBufferImprovesConnectivity(t *testing.T) {
	// The central claim of Fig. 7: at moderate mobility, a 100 m buffer
	// beats no buffer.
	o := tinyOptions()
	o.Reps = 3
	aggs, err := Sweep(o, []string{"RNG"}, []float64{40}, []manet.Mechanisms{{}, {Buffer: 100}})
	if err != nil {
		t.Fatal(err)
	}
	raw, buf := aggs[0].Connectivity.Mean(), aggs[1].Connectivity.Mean()
	if buf <= raw {
		t.Errorf("100 m buffer did not improve connectivity: %.3f vs %.3f", raw, buf)
	}
}

func TestTable1Renders(t *testing.T) {
	o := tinyOptions()
	tab, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	s := tab.String()
	for _, p := range BaselineNames() {
		if !strings.Contains(s, p) {
			t.Errorf("table missing %s:\n%s", p, s)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	o := tinyOptions()
	fig, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != len(o.Speeds) || len(s.Y) != len(o.Speeds) || len(s.CI) != len(o.Speeds) {
			t.Errorf("series %s has wrong length", s.Name)
		}
	}
	if !strings.Contains(fig.String(), "speed (m/s)") {
		t.Error("figure rendering missing x label")
	}
}

func TestFigureAndTableStringEdgeCases(t *testing.T) {
	empty := Figure{Title: "t", XLabel: "x", YLabel: "y"}
	if got := empty.String(); !strings.Contains(got, "t") {
		t.Errorf("empty figure render: %q", got)
	}
	tab := Table{Header: []string{"a", "long-header"}, Rows: [][]string{{"wider-than-header", "b"}}}
	s := tab.String()
	if !strings.Contains(s, "wider-than-header") || !strings.Contains(s, "long-header") {
		t.Errorf("table render: %q", s)
	}
}

func TestFigConsistencyShape(t *testing.T) {
	o := tinyOptions()
	o.Speeds = []float64{20}
	fig, err := FigConsistency(o, "MST")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(fig.Series))
	}
	names := map[string]bool{}
	for _, s := range fig.Series {
		names[s.Name] = true
		if len(s.Y) != 1 {
			t.Errorf("series %s has %d points", s.Name, len(s.Y))
		}
	}
	for _, want := range []string{"plain", "viewsync", "weak-k3", "proactive", "reactive"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestTableEnergyShape(t *testing.T) {
	o := tinyOptions()
	tab, err := TableEnergy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (4 baselines + none)", len(tab.Rows))
	}
	if tab.Rows[4][0] != "none" {
		t.Errorf("last row = %q, want none", tab.Rows[4][0])
	}
	if !strings.Contains(tab.String(), "x less") {
		t.Error("savings column missing")
	}
}

func TestFigRoutingShape(t *testing.T) {
	o := tinyOptions()
	o.Speeds = []float64{1, 40}
	fig, err := FigRouting(o, "GG")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Y))
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("delivery %v out of range", y)
			}
		}
	}
	// At low speed, delivery should be decent on GG.
	if fig.Series[0].Y[0] < 0.5 {
		t.Errorf("GG greedy delivery at 1 m/s = %.3f, suspiciously low", fig.Series[0].Y[0])
	}
	if _, err := FigRouting(o, "nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFigureDat(t *testing.T) {
	f := Figure{
		Title:  "demo",
		XLabel: "speed",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}, CI: []float64{0.1, 0.05}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{1, 0.75}, CI: []float64{0, 0.01}},
		},
	}
	got := f.Dat()
	want := "# demo\n# speed\ta\ta_ci95\tb\tb_ci95\n" +
		"1\t0.500000\t0.100000\t1.000000\t0.000000\n" +
		"2\t0.250000\t0.050000\t0.750000\t0.010000\n"
	if got != want {
		t.Errorf("Dat =\n%q\nwant\n%q", got, want)
	}
	empty := Figure{Title: "t", XLabel: "x"}
	if got := empty.Dat(); !strings.HasPrefix(got, "# t\n") {
		t.Errorf("empty Dat = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1: "1", 1.5: "1.5", 0.25: "0.25", 100: "100"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
