package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"mstc/internal/manet"
)

// resultsDigest serializes results field-by-field and hashes them, so any
// future nondeterminism — a reordered worker write, a map-order leak, a
// wall-clock read — changes the digest and fails loudly instead of drifting
// a statistic by a fraction of a percent.
func resultsDigest(results []manet.Result) string {
	h := sha256.New()
	for i, r := range results {
		fmt.Fprintf(h, "%d|%#v\n", i, r)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestDeterminismRegression runs the same small scenario sequentially and
// on the worker pool and asserts the serialized results are byte-identical.
// This is the executable form of DESIGN.md's determinism contract: results
// depend only on (seed, task), never on scheduling.
func TestDeterminismRegression(t *testing.T) {
	o := tinyOptions()
	o.N = 40
	o.Duration = 5
	var tasks []Run
	for _, p := range []string{"RNG", "MST", "SPT-2"} {
		for rep := 0; rep < 2; rep++ {
			tasks = append(tasks, Run{Protocol: p, Speed: 40, Rep: rep})
			tasks = append(tasks, Run{Protocol: p, Speed: 40, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep})
		}
	}

	digests := make(map[string]string)
	for _, workers := range []int{1, 8} {
		o.Workers = workers
		results, err := Execute(o, tasks)
		if err != nil {
			t.Fatal(err)
		}
		digests[fmt.Sprintf("workers=%d", workers)] = resultsDigest(results)
	}
	// A second pool run guards against scheduling-dependent flakiness that
	// a single lucky interleaving could hide.
	o.Workers = 8
	results, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	digests["workers=8 rerun"] = resultsDigest(results)

	want := digests["workers=1"]
	for name, got := range digests {
		if got != want {
			t.Errorf("%s digest = %s, want %s (sequential): worker-pool execution is nondeterministic", name, got, want)
		}
	}
}

// TestFigureOutputDeterministic renders one figure twice and asserts the
// byte output (what cmd/paperfig writes to stdout and -dat files) is
// identical — the property regenerated paper figures rely on.
func TestFigureOutputDeterministic(t *testing.T) {
	o := tinyOptions()
	o.N = 40
	o.Duration = 5
	o.Speeds = []float64{40}
	render := func(workers int) string {
		o.Workers = workers
		f, err := Fig6(o)
		if err != nil {
			t.Fatal(err)
		}
		return f.String() + "\n" + f.Dat()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("rendered figure differs between sequential and pooled runs:\n--- workers=1\n%s\n--- workers=8\n%s", seq, par)
	}
}

// TestDigestUnchangedByStalenessCache pins the radio medium's
// bounded-staleness contract at the whole-experiment level: running the
// same tasks with the spatial-grid cache enabled (default slack, and an
// oversized one) and disabled (negative slack: exact-instant rebuilds)
// must produce sha256-identical results. The cache may only trade grid
// rebuilds against candidate filtering — never receiver sets, never
// randomness consumption, never a single metric bit.
func TestDigestUnchangedByStalenessCache(t *testing.T) {
	o := tinyOptions()
	o.N = 40
	o.Duration = 8
	var tasks []Run
	for _, speed := range []float64{1, 160} {
		for rep := 0; rep < 2; rep++ {
			tasks = append(tasks, Run{Protocol: "RNG", Speed: speed, Rep: rep})
			tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep})
		}
	}

	digest := func(slack float64) string {
		o := o
		o.Radio.Slack = slack
		results, err := Execute(o, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return resultsDigest(results)
	}

	want := digest(-1) // staleness disabled: the exact-instant reference
	for _, slack := range []float64{0, 500} {
		if got := digest(slack); got != want {
			t.Errorf("slack %g digest = %s, want %s (exact-instant): the staleness cache changed results", slack, got, want)
		}
	}
}

// TestDigestUnchangedBySelectionCache is the whole-experiment pin of the
// version-keyed selection cache's transparency contract (the unit-level
// proof is manet's TestSelectionCacheTransparent): sha256 over every
// result field must be identical with the cache enabled and disabled,
// across the consistency mechanisms that drive all three cache key modes.
func TestDigestUnchangedBySelectionCache(t *testing.T) {
	o := tinyOptions()
	o.N = 40
	o.Duration = 8
	var tasks []Run
	for _, speed := range []float64{1, 160} {
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed})
		tasks = append(tasks, Run{Protocol: "RNG", Speed: speed, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}})
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Reactive: true}})
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Proactive: true}})
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{WeakK: 3}})
	}

	digest := func(disable bool) string {
		o := o
		o.NoSelectionCache = disable
		results, err := Execute(o, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return resultsDigest(results)
	}

	if got, want := digest(false), digest(true); got != want {
		t.Errorf("cached digest = %s, want %s (cache disabled): the selection cache changed results", got, want)
	}
}

// TestDigestUnchangedByEngineParallelism is the whole-experiment pin of
// the region-parallel engine's transparency contract (the unit-level proof
// is manet's TestParallelMatchesSerialMatrix): sha256 over every result
// field must be identical between the serial engine and the domain-
// decomposed engine at several worker counts — including configurations
// that fall back to serial. This is what licenses the //manet:hash-exclude
// lines for Options.Domains and Options.EngineWorkers: records computed by
// either engine are interchangeable in the sweep store.
func TestDigestUnchangedByEngineParallelism(t *testing.T) {
	o := tinyOptions()
	o.N = 40
	o.Duration = 8
	var tasks []Run
	for _, speed := range []float64{1, 160} {
		tasks = append(tasks, Run{Protocol: "RNG", Speed: speed})
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}})
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Proactive: true}})
		// Weak consistency: multiple beacons per synchronization window must
		// select against their own advertised positions, not the window's last.
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{WeakK: 3}})
		// Reactive rounds run on the parallel engine too (settle barrier
		// passes); its synchronized-beacon schedule stresses the windowing.
		tasks = append(tasks, Run{Protocol: "MST", Speed: speed, Mech: manet.Mechanisms{Reactive: true}})
	}

	digest := func(domains, engineWorkers int) string {
		o := o
		o.Domains = domains
		o.EngineWorkers = engineWorkers
		results, err := Execute(o, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return resultsDigest(results)
	}

	want := digest(0, 0)
	for _, pw := range []struct{ domains, workers int }{{1, 1}, {2, 2}, {3, 4}} {
		if got := digest(pw.domains, pw.workers); got != want {
			t.Errorf("domains=%d workers=%d digest = %s, want serial %s: engine parallelism changed results",
				pw.domains, pw.workers, got, want)
		}
	}
}
