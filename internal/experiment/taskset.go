package experiment

import (
	"fmt"
	"sort"
	"strings"

	"mstc/internal/manet"
	"mstc/internal/sweep"
)

// This file is the experiment-side surface the sweep fleet
// (internal/fleet, cmd/sweepd, cmd/sweepworker) builds on: a named
// enumeration of each figure's complete run set, and an exported
// single-run compute path with the executor's panic-recovery/bounded-
// retry policy. The daemon enumerates tasks and journals results; the
// workers compute individual runs. Both stay behind the same Options /
// Run / sweep.Key vocabulary the in-process executor uses, so a
// fleet-computed store is indistinguishable from a single-process one.

// Desc returns the canonical run descriptor stored inside the run's
// record (and verified by Store.Get against hash collisions).
func (r Run) Desc() string { return r.desc() }

// StoreKey addresses the run's record under the given options
// fingerprint.
func (r Run) StoreKey(fingerprint string) sweep.Key { return r.storeKey(fingerprint) }

// ConfigKey returns the run's configuration substream key — the label
// shared by all repetitions of one (protocol, speed, mechanisms,
// channel) configuration. The fleet coordinator groups tasks by it for
// the adaptive-replication stopping rule.
func (r Run) ConfigKey() uint64 { return r.key() }

// ConfigDesc is Desc with the repetition index elided: the label of the
// run's configuration group, stable across reps.
func (r Run) ConfigDesc() string {
	base := r
	base.Rep = 0
	return strings.Replace(base.desc(), " rep=0", "", 1)
}

// ComputeRun executes one task with no retry policy. It is the unit of
// work a fleet worker performs; determinism guarantees the result is
// bit-identical to the same task computed by the in-process executor.
func ComputeRun(o Options, r Run) (manet.Result, error) {
	return executeOne(o, r)
}

// ComputeRunRetry wraps ComputeRun in the executor's recovery policy:
// panics become errors and are retried up to `retries` extra times;
// deterministic configuration errors never retry. attempts reports how
// many executions happened (1 = first try), matching the Attempts field
// the store journals.
func ComputeRunRetry(o Options, r Run, retries int) (res manet.Result, attempts int, err error) {
	return recoverRun(retries, func() (manet.Result, error) {
		return executeOne(o, r)
	})
}

// crossTasks enumerates protocols × speeds × mechs × reps in the exact
// nesting order Sweep uses.
func crossTasks(protocols []string, speeds []float64, mechs []manet.Mechanisms, reps int) []Run {
	var tasks []Run
	for _, p := range protocols {
		for _, s := range speeds {
			for _, m := range mechs {
				for rep := 0; rep < reps; rep++ {
					tasks = append(tasks, Run{Protocol: p, Speed: s, Mech: m, Rep: rep})
				}
			}
		}
	}
	return tasks
}

// bufferMechs returns one Mechanisms per buffer width, optionally
// crossed with a second variant per buffer (Figs. 9/10 pair each width
// with a mechanism toggle).
func bufferMechs(buffers []float64, variant func(manet.Mechanisms) manet.Mechanisms) []manet.Mechanisms {
	var mechs []manet.Mechanisms
	for _, b := range buffers {
		base := manet.Mechanisms{Buffer: b}
		mechs = append(mechs, base)
		if variant != nil {
			mechs = append(mechs, variant(base))
		}
	}
	return mechs
}

// taskSets maps every TaskSet name to its enumerator. The enumerations
// mirror the figures' Sweep calls run for run: a store filled from a
// task set renders the corresponding figure with zero recomputation.
func taskSets() map[string]func(o Options) []Run {
	consistencyMechs := func() []manet.Mechanisms {
		const buf = 10
		return []manet.Mechanisms{
			{Buffer: buf},
			{Buffer: buf, ViewSync: true},
			{Buffer: buf, WeakK: 3},
			{Buffer: buf, Proactive: true},
			{Buffer: buf, Reactive: true},
		}
	}
	return map[string]func(o Options) []Run{
		"table1": func(o Options) []Run {
			return crossTasks(BaselineNames(), []float64{1}, []manet.Mechanisms{{}}, o.Reps)
		},
		"fig6": func(o Options) []Run {
			return crossTasks(BaselineNames(), o.Speeds, []manet.Mechanisms{{}}, o.Reps)
		},
		"fig7": func(o Options) []Run {
			var tasks []Run
			for _, p := range BaselineNames() {
				tasks = append(tasks, crossTasks([]string{p}, o.Speeds, bufferMechs(o.Buffers, nil), o.Reps)...)
			}
			return tasks
		},
		"fig8": func(o Options) []Run {
			return crossTasks(BaselineNames(), []float64{40}, bufferMechs(o.Buffers, nil), o.Reps)
		},
		"fig9": func(o Options) []Run {
			var tasks []Run
			for _, p := range BaselineNames() {
				mechs := bufferMechs(o.Buffers, func(m manet.Mechanisms) manet.Mechanisms {
					m.ViewSync = true
					return m
				})
				tasks = append(tasks, crossTasks([]string{p}, o.Speeds, mechs, o.Reps)...)
			}
			return tasks
		},
		"fig10": func(o Options) []Run {
			var tasks []Run
			for _, p := range BaselineNames() {
				mechs := bufferMechs(o.Buffers, func(m manet.Mechanisms) manet.Mechanisms {
					m.PhysicalNeighbors = true
					return m
				})
				tasks = append(tasks, crossTasks([]string{p}, o.Speeds, mechs, o.Reps)...)
			}
			return tasks
		},
		"consistency": func(o Options) []Run {
			var tasks []Run
			for _, p := range []string{"MST", "RNG"} {
				tasks = append(tasks, crossTasks([]string{p}, o.Speeds, consistencyMechs(), o.Reps)...)
			}
			return tasks
		},
		"energy": func(o Options) []Run {
			names := append(BaselineNames(), "none")
			return crossTasks(names, []float64{1}, []manet.Mechanisms{{}}, o.Reps)
		},
		"traffic": func(o Options) []Run {
			return trafficTasks(o)
		},
		"routing": func(o Options) []Run {
			// Mirrors paperfig's routing invocation: FigRouting over GG
			// then RNG.
			var tasks []Run
			for _, p := range []string{"GG", "RNG"} {
				tasks = append(tasks, routingTasks(o, p)...)
			}
			return tasks
		},
	}
}

// TaskSetNames lists the valid TaskSet names, sorted.
func TaskSetNames() []string {
	sets := taskSets()
	names := make([]string, 0, len(sets)+1)
	for name := range sets { //lint:order-independent collected then sorted
		names = append(names, name)
	}
	names = append(names, "all")
	sort.Strings(names)
	return names
}

// TaskSet enumerates the complete run set of the named store-backed
// experiment under the given options. "all" is the union of every named
// set with duplicate (configuration, rep) pairs removed — figures share
// operating points (e.g. every plain-buffer configuration appears in
// Figs. 7, 9, and 10), and the store holds one record per run either
// way, so the union never computes a shared point twice.
func TaskSet(name string, o Options) ([]Run, error) {
	sets := taskSets()
	if name == "all" {
		var union []Run
		seen := make(map[sweep.Key]bool)
		// Deterministic union order: sorted set names, then each set's
		// own enumeration order.
		var names []string
		for n := range sets { //lint:order-independent collected then sorted
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, r := range sets[n](o) {
				k := sweep.Key{Run: r.key(), Rep: r.Rep}
				if seen[k] {
					continue
				}
				seen[k] = true
				union = append(union, r)
			}
		}
		return union, nil
	}
	build, ok := sets[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown task set %q (valid: %s)",
			name, strings.Join(TaskSetNames(), ", "))
	}
	return build(o), nil
}
