package experiment

import (
	"sync/atomic"
	"testing"

	"mstc/internal/sweep"
)

func TestTaskSetNamesAndErrors(t *testing.T) {
	names := TaskSetNames()
	if len(names) < 5 {
		t.Fatalf("TaskSetNames = %v, suspiciously few", names)
	}
	for _, name := range names {
		if _, err := TaskSet(name, QuickOptions()); err != nil {
			t.Errorf("TaskSet(%q): %v", name, err)
		}
	}
	if _, err := TaskSet("fig99", QuickOptions()); err == nil {
		t.Error("unknown task set accepted")
	}
}

func TestTaskSetFig6MatchesSweepEnumeration(t *testing.T) {
	o := QuickOptions()
	tasks, err := TaskSet("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	want := len(BaselineNames()) * len(o.Speeds) * o.Reps
	if len(tasks) != want {
		t.Fatalf("fig6 task set has %d runs, want %d", len(tasks), want)
	}
	// Same protocol-major, speed, rep nesting as Fig6's Sweep call.
	i := 0
	for _, p := range BaselineNames() {
		for _, s := range o.Speeds {
			for rep := 0; rep < o.Reps; rep++ {
				r := tasks[i]
				i++
				if r.Protocol != p || r.Speed != s || r.Rep != rep || r.Mech != (tasks[0].Mech) {
					t.Fatalf("task %d = %+v, want %s speed=%g rep=%d", i-1, r, p, s, rep)
				}
			}
		}
	}
}

func TestTaskSetAllDeduplicates(t *testing.T) {
	o := QuickOptions()
	all, err := TaskSet("all", o)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[sweep.Key]bool)
	for _, r := range all {
		k := sweep.Key{Run: r.ConfigKey(), Rep: r.Rep}
		if seen[k] {
			t.Fatalf("duplicate task in 'all': %s", r.Desc())
		}
		seen[k] = true
	}
	// The union must cover every named set.
	for _, name := range TaskSetNames() {
		if name == "all" {
			continue
		}
		tasks, err := TaskSet(name, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tasks {
			if !seen[sweep.Key{Run: r.ConfigKey(), Rep: r.Rep}] {
				t.Fatalf("'all' missing %s task %s", name, r.Desc())
			}
		}
	}
}

// TestTaskSetWarmsFigureRendering is the property the fleet daemon rests
// on: executing a figure's task set into a store leaves the figure
// itself renderable with zero recomputation.
func TestTaskSetWarmsFigureRendering(t *testing.T) {
	o := sweepTestOptions()
	o.Reps = 2
	o.Speeds = []float64{1, 40}
	st := openStore(t)
	o.Store = st

	tasks, err := TaskSet("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(o, tasks); err != nil {
		t.Fatal(err)
	}

	var recomputed atomic.Int64
	o.Progress = func(done, total int) { recomputed.Add(1) }
	fig, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed.Load() != 0 {
		t.Errorf("Fig6 over a task-set-warmed store recomputed %d runs, want 0", recomputed.Load())
	}
	if len(fig.Series) != len(BaselineNames()) {
		t.Errorf("rendered figure has %d series, want %d", len(fig.Series), len(BaselineNames()))
	}
}

func TestComputeRunMatchesExecutor(t *testing.T) {
	o := sweepTestOptions()
	tasks := []Run{
		{Protocol: "RNG", Speed: 40, Rep: 1},
		{Protocol: "MST", Speed: 1, Rep: 0},
	}
	want, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tasks {
		got, attempts, err := ComputeRunRetry(o, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if attempts != 1 {
			t.Errorf("attempts = %d, want 1", attempts)
		}
		if got != want[i] {
			t.Errorf("ComputeRunRetry(%s) diverges from executor:\n got %+v\nwant %+v", r.Desc(), got, want[i])
		}
	}
}

func TestConfigDescElidesRep(t *testing.T) {
	a := Run{Protocol: "RNG", Speed: 40, Rep: 0}
	b := Run{Protocol: "RNG", Speed: 40, Rep: 7}
	if a.ConfigDesc() != b.ConfigDesc() {
		t.Errorf("ConfigDesc differs across reps: %q vs %q", a.ConfigDesc(), b.ConfigDesc())
	}
	if a.ConfigDesc() == a.Desc() {
		t.Errorf("ConfigDesc still contains the rep: %q", a.ConfigDesc())
	}
}
