package experiment

import (
	"fmt"

	"mstc/internal/manet"
	"mstc/internal/stats"
)

// routingMechs and routingUnicast fix the FigRouting grid; the "routing"
// TaskSet enumerates the same runs, so fleet-filled stores cover it.
func routingMechs() []manet.Mechanisms {
	return []manet.Mechanisms{
		{},
		{Buffer: 10, ViewSync: true},
	}
}

func routingUnicast() manet.UnicastConfig { return manet.UnicastConfig{Rate: 20} }

// routingTasks enumerates mechs × speeds × reps for one protocol in the
// exact nesting order FigRouting consumes.
func routingTasks(o Options, protocol string) []Run {
	var tasks []Run
	for _, m := range routingMechs() {
		for _, s := range o.Speeds {
			for rep := 0; rep < o.Reps; rep++ {
				tasks = append(tasks, Run{
					Protocol: protocol, Speed: s, Mech: m,
					Unicast: routingUnicast(), Rep: rep,
				})
			}
		}
	}
	return tasks
}

// FigRouting is an extension experiment: greedy geographic unicast delivery
// over the given protocol versus speed, with and without mobility
// management (10 m buffer + view synchronization). It runs through the
// shared Execute path — unicast runs carry their UnicastResult inside the
// standard manet.Result record, so they land in result stores and fleet
// journals like every other task.
func FigRouting(o Options, protocol string) (Figure, error) {
	results, err := Execute(o, routingTasks(o, protocol))
	if err != nil {
		return Figure{}, err
	}
	labels := []string{"plain", "buf10+VS"}
	f := Figure{
		Title:  fmt.Sprintf("Extension: greedy unicast delivery over %s", protocol),
		XLabel: "speed (m/s)",
		YLabel: "delivery ratio",
	}
	i := 0
	for mi := range routingMechs() {
		s := Series{Name: labels[mi]}
		for _, sp := range o.Speeds {
			var agg stats.Sample
			for rep := 0; rep < o.Reps; rep++ {
				agg.Add(results[i].Unicast.Delivered)
				i++
			}
			s.X = append(s.X, sp)
			s.Y = append(s.Y, agg.Mean())
			s.CI = append(s.CI, agg.CI95())
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
