package experiment

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/stats"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

// FigRouting is an extension experiment: greedy geographic unicast delivery
// over the given protocol versus speed, with and without mobility
// management (10 m buffer + view synchronization), plus the local-minimum /
// range-failure breakdown the paper's two failure modes predict.
func FigRouting(o Options, protocol string) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	mechs := []manet.Mechanisms{
		{},
		{Buffer: 10, ViewSync: true},
	}
	labels := []string{"plain", "buf10+VS"}

	type task struct {
		speedIdx, mechIdx, rep int
	}
	var tasks []task
	for si := range o.Speeds {
		for mi := range mechs {
			for rep := 0; rep < o.Reps; rep++ {
				tasks = append(tasks, task{si, mi, rep})
			}
		}
	}
	results := make([]manet.UnicastResult, len(tasks))
	errs := make([]error, len(tasks))
	forEachTask(o.Workers, len(tasks), func(i int) {
		tk := tasks[i]
		results[i], errs[i] = runUnicastOnce(o, protocol, o.Speeds[tk.speedIdx], mechs[tk.mechIdx], tk.rep)
	})
	for _, err := range errs {
		if err != nil {
			return Figure{}, err
		}
	}

	f := Figure{
		Title:  fmt.Sprintf("Extension: greedy unicast delivery over %s", protocol),
		XLabel: "speed (m/s)",
		YLabel: "delivery ratio",
	}
	series := make([]Series, len(mechs))
	for mi := range mechs {
		series[mi] = Series{Name: labels[mi]}
	}
	i := 0
	for si, sp := range o.Speeds {
		_ = si
		for mi := range mechs {
			var agg stats.Sample
			for rep := 0; rep < o.Reps; rep++ {
				agg.Add(results[i].Delivered)
				i++
			}
			series[mi].X = append(series[mi].X, sp)
			series[mi].Y = append(series[mi].Y, agg.Mean())
			series[mi].CI = append(series[mi].CI, agg.CI95())
		}
	}
	f.Series = series
	return f, nil
}

func runUnicastOnce(o Options, protocol string, speed float64, mech manet.Mechanisms, rep int) (manet.UnicastResult, error) {
	lo, hi := mobility.SpeedSetdest(speed)
	//lint:ignore substream deliberate pairing: same 'm' labels as runOne so unicast runs replay the exact flood-evaluation mobility traces
	mobilitySeed := xrand.New(o.Seed).Sub('m', uint64(speed*1000), uint64(rep)).Uint64()
	model, err := mobility.NewRandomWaypoint(geom.Square(o.ArenaSide), mobility.WaypointConfig{
		N: o.N, SpeedMin: lo, SpeedMax: hi, Horizon: o.Duration,
	}, xrand.New(mobilitySeed))
	if err != nil {
		return manet.UnicastResult{}, err
	}
	p, err := topology.ByName(protocol, o.NormalRange)
	if err != nil {
		return manet.UnicastResult{}, err
	}
	nw, err := manet.NewNetwork(model, manet.Config{
		NormalRange: o.NormalRange,
		Protocol:    p,
		Mech:        mech,
		Seed:        xrand.New(o.Seed).Sub('u', uint64(speed), uint64(rep), uint64(mech.Buffer)).Uint64(),
	})
	if err != nil {
		return manet.UnicastResult{}, err
	}
	return nw.RunUnicast(o.Duration, manet.UnicastConfig{Rate: 20})
}
