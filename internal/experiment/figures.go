package experiment

import (
	"fmt"

	"mstc/internal/manet"
)

// BaselineNames returns the four baseline protocols in the paper's order.
// It is a function rather than a package-level slice so no caller can
// mutate the shared order (the global-mutable-state invariant).
func BaselineNames() []string {
	return []string{"MST", "RNG", "SPT-4", "SPT-2"}
}

// Table1 reproduces Table 1: average transmission range and node degree of
// the baseline protocols (measured under negligible mobility, 1 m/s, with
// no mechanisms — the paper's static-equivalent operating point).
func Table1(o Options) (Table, error) {
	aggs, err := Sweep(o, BaselineNames(), []float64{1}, []manet.Mechanisms{{}})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Table 1: average transmission range and node degree of baseline protocols",
		Header: []string{"Protocol", "TxRange (m)", "±95%", "Node degree", "±95%"},
	}
	for _, a := range aggs {
		t.Rows = append(t.Rows, []string{
			a.Protocol,
			fmt.Sprintf("%.1f", a.TxRange.Mean()),
			fmt.Sprintf("%.1f", a.TxRange.CI95()),
			fmt.Sprintf("%.2f", a.LogicalDegree.Mean()),
			fmt.Sprintf("%.2f", a.LogicalDegree.CI95()),
		})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: connectivity ratio of the baseline protocols
// versus average moving speed, no mechanisms.
func Fig6(o Options) (Figure, error) {
	aggs, err := Sweep(o, BaselineNames(), o.Speeds, []manet.Mechanisms{{}})
	if err != nil {
		return Figure{}, err
	}
	f := Figure{
		Title:  "Fig. 6: connectivity ratio of baseline protocols",
		XLabel: "speed (m/s)",
		YLabel: "connectivity ratio",
	}
	i := 0
	for _, p := range BaselineNames() {
		s := Series{Name: p}
		for _, sp := range o.Speeds {
			a := aggs[i]
			i++
			s.X = append(s.X, sp)
			s.Y = append(s.Y, a.Connectivity.Mean())
			s.CI = append(s.CI, a.Connectivity.CI95())
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// mechSweepFigure runs one protocol across speeds for each mechanism
// configuration and returns one series per configuration.
func mechSweepFigure(o Options, protocol, title string, mechs []manet.Mechanisms, label func(manet.Mechanisms) string) (Figure, error) {
	aggs, err := Sweep(o, []string{protocol}, o.Speeds, mechs)
	if err != nil {
		return Figure{}, err
	}
	f := Figure{
		Title:  title,
		XLabel: "speed (m/s)",
		YLabel: "connectivity ratio",
	}
	series := make([]Series, len(mechs))
	for mi, m := range mechs {
		series[mi] = Series{Name: label(m)}
	}
	i := 0
	for _, sp := range o.Speeds {
		for mi := range mechs {
			a := aggs[i]
			i++
			series[mi].X = append(series[mi].X, sp)
			series[mi].Y = append(series[mi].Y, a.Connectivity.Mean())
			series[mi].CI = append(series[mi].CI, a.Connectivity.CI95())
		}
	}
	f.Series = series
	return f, nil
}

// Fig7 reproduces Figure 7 (a–d): per-protocol connectivity ratio versus
// speed for each buffer-zone width, no other mechanisms.
func Fig7(o Options) ([]Figure, error) {
	var figs []Figure
	for fi, p := range BaselineNames() {
		var mechs []manet.Mechanisms
		for _, b := range o.Buffers {
			mechs = append(mechs, manet.Mechanisms{Buffer: b})
		}
		f, err := mechSweepFigure(o, p,
			fmt.Sprintf("Fig. 7%c: %s connectivity with buffer zones", 'a'+fi, p),
			mechs,
			func(m manet.Mechanisms) string { return fmt.Sprintf("buf=%gm", m.Buffer) })
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// Fig8 reproduces Figure 8: (a) average transmission range and (b) average
// number of physical neighbors versus buffer-zone width, per protocol, at
// moderate mobility (40 m/s).
func Fig8(o Options) (Figure, Figure, error) {
	const speed = 40
	var mechs []manet.Mechanisms
	for _, b := range o.Buffers {
		mechs = append(mechs, manet.Mechanisms{Buffer: b})
	}
	aggs, err := Sweep(o, BaselineNames(), []float64{speed}, mechs)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	fa := Figure{
		Title:  "Fig. 8a: average transmission range vs buffer zone width (40 m/s)",
		XLabel: "buffer (m)",
		YLabel: "transmission range (m)",
	}
	fb := Figure{
		Title:  "Fig. 8b: average number of physical neighbors vs buffer zone width (40 m/s)",
		XLabel: "buffer (m)",
		YLabel: "physical neighbors",
	}
	i := 0
	for _, p := range BaselineNames() {
		sa := Series{Name: p}
		sb := Series{Name: p}
		for _, b := range o.Buffers {
			a := aggs[i]
			i++
			sa.X = append(sa.X, b)
			sa.Y = append(sa.Y, a.TxRange.Mean())
			sa.CI = append(sa.CI, a.TxRange.CI95())
			sb.X = append(sb.X, b)
			sb.Y = append(sb.Y, a.PhysicalDegree.Mean())
			sb.CI = append(sb.CI, a.PhysicalDegree.CI95())
		}
		fa.Series = append(fa.Series, sa)
		fb.Series = append(fb.Series, sb)
	}
	return fa, fb, nil
}

// Fig9 reproduces Figure 9 (a–d): per-protocol connectivity with and
// without view synchronization, per buffer width.
func Fig9(o Options) ([]Figure, error) {
	var figs []Figure
	for fi, p := range BaselineNames() {
		var mechs []manet.Mechanisms
		for _, b := range o.Buffers {
			mechs = append(mechs,
				manet.Mechanisms{Buffer: b},
				manet.Mechanisms{Buffer: b, ViewSync: true})
		}
		f, err := mechSweepFigure(o, p,
			fmt.Sprintf("Fig. 9%c: %s connectivity with/without view synchronization", 'a'+fi, p),
			mechs,
			func(m manet.Mechanisms) string {
				if m.ViewSync {
					return fmt.Sprintf("VS buf=%gm", m.Buffer)
				}
				return fmt.Sprintf("buf=%gm", m.Buffer)
			})
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// TableEnergy is an extension table quantifying the paper's motivation:
// per-transmission energy and control overhead of every protocol relative
// to the uncontrolled network, at low mobility (1 m/s) with no mechanisms.
func TableEnergy(o Options) (Table, error) {
	names := append([]string{}, BaselineNames()...)
	names = append(names, "none")
	aggs, err := Sweep(o, names, []float64{1}, []manet.Mechanisms{{}})
	if err != nil {
		return Table{}, err
	}
	// Baseline for savings: the uncontrolled network's per-tx energy.
	var nonePerTx float64
	for _, a := range aggs {
		if a.Protocol == "none" {
			nonePerTx = a.EnergyPerTx.Mean()
		}
	}
	t := Table{
		Title: "Extension: per-transmission energy and overhead (1 m/s, no mechanisms)",
		Header: []string{"Protocol", "TxRange (m)", "Energy/tx", "vs none", "Connectivity",
			"Hello tx", "Data tx"},
	}
	for _, a := range aggs {
		saving := "-"
		if nonePerTx > 0 && a.Protocol != "none" {
			saving = fmt.Sprintf("%.1fx less", nonePerTx/a.EnergyPerTx.Mean())
		}
		t.Rows = append(t.Rows, []string{
			a.Protocol,
			fmt.Sprintf("%.1f", a.TxRange.Mean()),
			fmt.Sprintf("%.3f", a.EnergyPerTx.Mean()),
			saving,
			fmt.Sprintf("%.3f", a.Connectivity.Mean()),
			fmt.Sprintf("%.0f", a.HelloTx.Mean()),
			fmt.Sprintf("%.0f", a.DataTx.Mean()),
		})
	}
	return t, nil
}

// FigConsistency is an extension experiment beyond the paper's figures: it
// compares, per protocol, every consistency scheme the paper proposes —
// none, simplified view synchronization (§5.1), weak consistency with k=3
// (§4.2), proactive strong consistency (§4.1), and reactive strong
// consistency (§4.1) — at a fixed 10 m buffer across speeds.
func FigConsistency(o Options, protocol string) (Figure, error) {
	const buf = 10
	mechs := []manet.Mechanisms{
		{Buffer: buf},
		{Buffer: buf, ViewSync: true},
		{Buffer: buf, WeakK: 3},
		{Buffer: buf, Proactive: true},
		{Buffer: buf, Reactive: true},
	}
	labels := []string{"plain", "viewsync", "weak-k3", "proactive", "reactive"}
	f, err := mechSweepFigure(o, protocol,
		fmt.Sprintf("Extension: %s under each consistency scheme (10 m buffer)", protocol),
		mechs,
		func(m manet.Mechanisms) string {
			switch {
			case m.ViewSync:
				return labels[1]
			case m.WeakK > 0:
				return labels[2]
			case m.Proactive:
				return labels[3]
			case m.Reactive:
				return labels[4]
			}
			return labels[0]
		})
	return f, err
}

// Fig10 reproduces Figure 10 (a–d): per-protocol connectivity before and
// after enabling the physical-neighbor mechanism, per buffer width.
func Fig10(o Options) ([]Figure, error) {
	var figs []Figure
	for fi, p := range BaselineNames() {
		var mechs []manet.Mechanisms
		for _, b := range o.Buffers {
			mechs = append(mechs,
				manet.Mechanisms{Buffer: b},
				manet.Mechanisms{Buffer: b, PhysicalNeighbors: true})
		}
		f, err := mechSweepFigure(o, p,
			fmt.Sprintf("Fig. 10%c: %s connectivity before/after physical neighbors", 'a'+fi, p),
			mechs,
			func(m manet.Mechanisms) string {
				if m.PhysicalNeighbors {
					return fmt.Sprintf("PN buf=%gm", m.Buffer)
				}
				return fmt.Sprintf("buf=%gm", m.Buffer)
			})
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
