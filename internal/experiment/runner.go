// Package experiment drives the paper's evaluation: it sweeps protocol ×
// speed × mechanism configurations, fans independent repetitions out over a
// worker pool, aggregates results with 95 % confidence intervals, and
// renders the tables and figure series of §5.
//
// Determinism: repetition r of any configuration always uses the mobility
// substream (seed, speed, r) and the network substream (seed, cfg, r), so
// results are identical regardless of worker count, and different protocols
// are compared on *paired* mobility traces (the variance-reduction setup a
// simulation study wants).
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mstc/internal/geom"

	"mstc/internal/channel"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/stats"
	"mstc/internal/sweep"
	"mstc/internal/topology"
	"mstc/internal/traffic"
	"mstc/internal/xrand"
)

// Options are the evaluation-wide knobs. The zero value is not valid; start
// from DefaultOptions (paper scale) or QuickOptions (CI scale).
type Options struct {
	// N is the node count (paper: 100).
	N int
	// ArenaSide is the square arena side in meters (paper: 900).
	ArenaSide float64
	// NormalRange is the normal transmission range in meters (paper: 250).
	NormalRange float64
	// Speeds are the average moving speeds (m/s) swept by the figures
	// (paper: 1…160; speed s means per-leg speeds uniform in (0, 2s],
	// the setdest convention).
	Speeds []float64
	// Buffers are the buffer-zone widths (m) swept by Figs. 7–10.
	Buffers []float64
	// Reps is the number of independent repetitions (paper: 20).
	Reps int
	// Duration is seconds of simulated time per run (paper: 100).
	Duration float64
	// FloodRate is connectivity probes per second (paper: 10).
	FloodRate float64
	// Seed is the root seed for the whole evaluation.
	Seed uint64
	// Workers bounds run concurrency; 0 means GOMAXPROCS.
	Workers int
	// Radio overrides the radio medium configuration (zero value: the
	// medium's defaults). Results are independent of the bounded-staleness
	// knob Radio.Slack by construction; the determinism tests pin that.
	Radio radio.Config
	// Channel applies a non-ideal channel (loss, delay, churn) to every run
	// that does not set its own Run.Channel. The zero value is the ideal
	// channel, and leaves every substream label — and hence every result —
	// bit-identical to an evaluation without the subsystem.
	Channel channel.Config
	// SnapshotEvery, if positive, samples strict (snapshot) connectivity of
	// the directed effective topology every that many seconds in every run.
	SnapshotEvery float64
	// NoSelectionCache disables the per-node selection cache in every run.
	// Results are identical with or without it (the determinism tests pin
	// that); the knob only trades CPU for a differential check.
	NoSelectionCache bool
	// Domains, when >= 1, runs every simulation on the region-parallel
	// engine with a Domains×Domains spatial decomposition. Results are
	// bit-identical to the serial engine (manet's differential matrix and
	// TestDigestUnchangedByEngineParallelism pin that); configurations the
	// parallel engine cannot honor fall back to serial automatically.
	Domains int
	// EngineWorkers is the per-run worker-goroutine count draining the
	// domains (distinct from Workers, which bounds run-level concurrency).
	// Requires Domains >= 1.
	EngineWorkers int

	// Store, when non-nil, persists every completed run (keyed by the
	// options fingerprint and the run's substream key) and satisfies
	// tasks whose record already verifies without recomputing them. See
	// internal/sweep for the on-disk format and crash-safety contract.
	Store *sweep.Store
	// Shard restricts computation to a deterministic slice of the task
	// set (configuration group g is computed iff g % Count == Index).
	// Requires Store; Execute returns sweep.ErrPartial once the slice is
	// journaled, and full results only when foreign-shard records are
	// already present (e.g. after a merge). The zero value disables
	// sharding.
	Shard sweep.Shard
	// Retry is the number of additional attempts for a run whose
	// simulation panics before it is journaled as a failure (0 = fail on
	// the first panic). Deterministic configuration errors never retry.
	Retry int
	// Interrupt, when non-nil, is polled before each run is dispatched;
	// once it returns true no new runs start, in-flight runs finish and
	// are journaled, and Execute returns sweep.ErrInterrupted. Must be
	// safe for concurrent use.
	Interrupt func() bool
	// Progress, when non-nil, is called after each *computed* run (store
	// hits excluded) with the completed and total pending counts of the
	// current Execute call. Must be safe for concurrent use; it is
	// invoked from worker goroutines.
	Progress func(done, total int)
}

// DefaultOptions returns the paper's configuration (§5.1).
func DefaultOptions() Options {
	return Options{
		N:           100,
		ArenaSide:   900,
		NormalRange: 250,
		Speeds:      []float64{1, 20, 40, 80, 160},
		Buffers:     []float64{0, 1, 10, 100},
		Reps:        20,
		Duration:    100,
		FloodRate:   10,
		Seed:        2004,
	}
}

// QuickOptions returns a scaled-down configuration for tests and benches:
// same network, fewer/shorter repetitions.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Reps = 3
	o.Duration = 20
	o.Speeds = []float64{1, 40, 160}
	o.Buffers = []float64{0, 10, 100}
	return o
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.N < 2:
		return fmt.Errorf("experiment: N = %d < 2", o.N)
	case o.ArenaSide <= 0 || o.NormalRange <= 0:
		return fmt.Errorf("experiment: bad geometry arena=%g range=%g", o.ArenaSide, o.NormalRange)
	case len(o.Speeds) == 0:
		return fmt.Errorf("experiment: no speeds")
	case o.Reps < 1:
		return fmt.Errorf("experiment: Reps = %d < 1", o.Reps)
	case o.Duration <= 0:
		return fmt.Errorf("experiment: Duration = %g", o.Duration)
	}
	if err := o.Shard.Validate(); err != nil {
		return err
	}
	if o.Shard.Active() && o.Store == nil {
		return fmt.Errorf("experiment: sharded execution requires a result store")
	}
	return nil
}

// Run is one simulation task: a protocol/mechanism configuration at one
// speed, one repetition.
type Run struct {
	// Protocol is a registry name ("MST", "RNG", "SPT-2", "SPT-4", ...).
	Protocol string
	// Speed is the average moving speed in m/s.
	Speed float64
	// Mech are the active mechanisms.
	Mech manet.Mechanisms
	// Channel, when non-zero, overrides Options.Channel for this task — the
	// fault-injection sweeps vary it per point.
	Channel channel.Config
	// Traffic, when enabled, replaces the flood workload with CBR flows
	// routed by the configured protocol (AODV/OLSR) — the routing
	// comparison varies it per task. Flooding is forced off for such runs.
	Traffic traffic.Config
	// Unicast, when Rate > 0, replaces the flood workload with greedy
	// geographic unicast probes (RunUnicast) — the FigRouting extension.
	// Flooding is forced off for such runs.
	Unicast manet.UnicastConfig
	// Rep is the repetition index in [0, Reps).
	Rep int
}

// key returns the label deduplicating network substreams per configuration:
// FNV-1a over a canonical byte encoding of every configuration-defining
// field. The protocol name is hashed with a 0 terminator (no prefix
// aliasing), Speed and Buffer as their exact IEEE-754 bit patterns, the
// six mechanism booleans as one flag byte, and WeakK as a full word — so
// any two distinct configurations, including ones differing only in
// CDSForward / SelfPruning / Proactive (which the previous ad-hoc XOR mix
// ignored), get distinct substream labels. Rep is deliberately excluded:
// repetitions of one configuration share the label and are distinguished
// by the substream index.
//
//manet:hashes Run
//manet:hash-exclude Rep repetitions share the configuration label and are distinguished by the Sub(..., rep) substream index
func (r Run) key() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(b byte) {
		h = (h ^ uint64(b)) * fnvPrime
	}
	word := func(w uint64) {
		for i := 0; i < 64; i += 8 {
			mix(byte(w >> i))
		}
	}
	for i := 0; i < len(r.Protocol); i++ {
		mix(r.Protocol[i])
	}
	mix(0)
	word(math.Float64bits(r.Speed))
	word(math.Float64bits(r.Mech.Buffer))
	var flags byte
	if r.Mech.ViewSync {
		flags |= 1
	}
	if r.Mech.PhysicalNeighbors {
		flags |= 2
	}
	if r.Mech.Reactive {
		flags |= 4
	}
	if r.Mech.CDSForward {
		flags |= 8
	}
	if r.Mech.SelfPruning {
		flags |= 16
	}
	if r.Mech.Proactive {
		flags |= 32
	}
	mix(flags)
	word(uint64(r.Mech.WeakK))
	// Channel parameters are hashed only when the task's channel is
	// non-ideal: the ideal default must keep every pre-channel substream
	// label (and hence every golden digest) bit-identical.
	if r.Channel.Enabled() {
		mix(1)
		mix(byte(r.Channel.Loss.Model))
		word(math.Float64bits(r.Channel.Loss.Rate))
		word(math.Float64bits(r.Channel.Loss.MeanBurst))
		word(math.Float64bits(r.Channel.Loss.GoodLoss))
		word(math.Float64bits(r.Channel.Loss.BadLoss))
		word(math.Float64bits(r.Channel.Delay.Min))
		word(math.Float64bits(r.Channel.Delay.Max))
		word(math.Float64bits(r.Channel.Churn.MeanUp))
		word(math.Float64bits(r.Channel.Churn.MeanDown))
	}
	// Workload overrides follow the same conditional pattern, each under
	// its own domain-separation byte: flood-workload run keys (and hence
	// the golden digests) stay bit-identical.
	if r.Traffic.Enabled() {
		mix(2)
		mix(byte(r.Traffic.Mode))
		word(uint64(r.Traffic.Flows))
		word(math.Float64bits(r.Traffic.Rate))
		word(uint64(r.Traffic.Packets))
		word(uint64(r.Traffic.TTLStart))
		word(uint64(r.Traffic.TTLMax))
		word(uint64(r.Traffic.MaxRetries))
		word(math.Float64bits(r.Traffic.RingTimeout))
		word(math.Float64bits(r.Traffic.RouteLifetime))
		word(math.Float64bits(r.Traffic.TCInterval))
	}
	if r.Unicast.Rate > 0 {
		mix(3)
		word(math.Float64bits(r.Unicast.Rate))
		word(uint64(r.Unicast.MaxHops))
	}
	return h
}

// forEachTask runs fn(i) for every i in [0, n), fanning out over up to
// `workers` goroutines (GOMAXPROCS when workers <= 0). This is the single
// blessed concurrency point of the repository (see internal/lint's
// no-naked-goroutine check): replay safety holds because every task i is
// independent, seeds its own xrand substreams, and writes only slot i of
// the caller's result slices — so results are identical for any worker
// count or schedule.
func forEachTask(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	// Buffered to the task count: the producer below never blocks, so
	// workers draining fast tasks are fed without a rendezvous per index.
	ch := make(chan int, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// Execute runs all tasks, Workers at a time, and returns their results in
// task order. With Options.Store set, already-journaled runs are read
// back instead of recomputed and fresh completions are journaled; see
// executeAll (store.go) for the resumable/sharded semantics.
func Execute(o Options, tasks []Run) ([]manet.Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return executeAll(o, tasks)
}

// executeOne builds and runs a single simulation.
func executeOne(o Options, r Run) (manet.Result, error) {
	arena := geom.Square(o.ArenaSide)
	lo, hi := mobility.SpeedSetdest(r.Speed)
	// Paired mobility: same (seed, speed, rep) trace for every protocol,
	// mechanism, and workload configuration — flood, unicast, and traffic
	// runs at the same point all replay the exact same node trajectories.
	mobilitySeed := xrand.New(o.Seed).Sub('m', uint64(r.Speed*1000), uint64(r.Rep)).Uint64()
	model, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: o.N, SpeedMin: lo, SpeedMax: hi, Horizon: o.Duration,
	}, xrand.New(mobilitySeed))
	if err != nil {
		return manet.Result{}, err
	}
	ch := o.Channel
	if r.Channel.Enabled() {
		ch = r.Channel
	}
	cfg := manet.Config{
		NormalRange:      o.NormalRange,
		Mech:             r.Mech,
		FloodRate:        o.FloodRate,
		Radio:            o.Radio,
		Channel:          ch,
		SnapshotEvery:    o.SnapshotEvery,
		NoSelectionCache: o.NoSelectionCache,
		Domains:          o.Domains,
		ParallelWorkers:  o.EngineWorkers,
		Seed:             xrand.New(o.Seed).Sub('n', r.key(), uint64(r.Rep)).Uint64(),
	}
	// A task carries exactly one probe workload: traffic and unicast
	// overrides replace the flood probes rather than stacking on them.
	if r.Traffic.Enabled() {
		cfg.FloodRate = 0
		cfg.Traffic = r.Traffic
	}
	if r.Unicast.Rate > 0 {
		cfg.FloodRate = 0
	}
	if r.Mech.WeakK > 0 {
		w, err := topology.WeakByName(r.Protocol, o.NormalRange)
		if err != nil {
			return manet.Result{}, err
		}
		cfg.Weak = w
	} else {
		p, err := topology.ByName(r.Protocol, o.NormalRange)
		if err != nil {
			return manet.Result{}, err
		}
		cfg.Protocol = p
	}
	nw, err := manet.NewNetwork(model, cfg)
	if err != nil {
		return manet.Result{}, err
	}
	if r.Unicast.Rate > 0 {
		ur, err := nw.RunUnicast(o.Duration, r.Unicast)
		if err != nil {
			return manet.Result{}, err
		}
		return manet.Result{Protocol: cfg.ProtocolName(), Unicast: ur}, nil
	}
	return nw.Run(o.Duration), nil
}

// Aggregate is the per-configuration summary over repetitions.
type Aggregate struct {
	Protocol string
	Speed    float64
	Mech     manet.Mechanisms

	Connectivity   stats.Sample
	TxRange        stats.Sample
	LogicalDegree  stats.Sample
	PhysicalDegree stats.Sample
	EnergyPerTx    stats.Sample // normalized data energy per transmission
	HelloTx        stats.Sample
	DataTx         stats.Sample
}

// Sweep runs every (protocol, speed, mech) in the cross product for
// o.Reps repetitions and aggregates. Results are ordered protocol-major,
// then speed, then mech.
func Sweep(o Options, protocols []string, speeds []float64, mechs []manet.Mechanisms) ([]Aggregate, error) {
	var tasks []Run
	for _, p := range protocols {
		for _, s := range speeds {
			for _, m := range mechs {
				for rep := 0; rep < o.Reps; rep++ {
					tasks = append(tasks, Run{Protocol: p, Speed: s, Mech: m, Rep: rep})
				}
			}
		}
	}
	results, err := Execute(o, tasks)
	if err != nil {
		return nil, err
	}
	var aggs []Aggregate
	i := 0
	for _, p := range protocols {
		for _, s := range speeds {
			for _, m := range mechs {
				agg := Aggregate{Protocol: p, Speed: s, Mech: m}
				for rep := 0; rep < o.Reps; rep++ {
					res := results[i]
					i++
					agg.Connectivity.Add(res.Connectivity)
					agg.TxRange.Add(res.AvgTxRange)
					agg.LogicalDegree.Add(res.AvgLogicalDegree)
					agg.PhysicalDegree.Add(res.AvgPhysicalDegree)
					if res.DataTx > 0 {
						agg.EnergyPerTx.Add(res.DataEnergy / float64(res.DataTx))
					}
					agg.HelloTx.Add(float64(res.HelloTx))
					agg.DataTx.Add(float64(res.DataTx))
				}
				aggs = append(aggs, agg)
			}
		}
	}
	return aggs, nil
}
