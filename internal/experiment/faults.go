package experiment

import (
	"fmt"

	"mstc/internal/channel"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/stats"
)

// Fault-injection experiments — the evaluation of the non-ideal channel
// subsystem (internal/channel), beyond the paper's ideal-medium figures:
//
//   - FigLoss / FigChurn: weak (flood) connectivity versus stochastic
//     packet loss and node churn, per baseline protocol.
//   - FigDelay: strict effective-topology connectivity versus the bounded
//     "Hello" delivery delay Δ″ — the degradation Theorem 5 analyses.
//   - FigBufferZone: the empirical Theorem 5 check. For each Δ″, sweep the
//     buffer-zone width around the predicted l = 2·Δ″·v and locate the knee
//     where connectivity saturates; the knees must track the prediction.
//
// Aggregation here uses the Welford accumulators (stats.Welford): these
// figures are new, so they are free to use the numerically stable form —
// unlike Sweep's Sample aggregates, whose byte-exact output is pinned by
// the golden digests.

// faultSpec is one x-axis point of a fault sweep: a channel configuration
// with the axis value it plots at.
type faultSpec struct {
	x  float64
	ch channel.Config
}

// faultSweep runs protocols × specs × Reps and returns one series per
// protocol with the chosen metric aggregated over repetitions.
func faultSweep(o Options, protocols []string, speed float64, mech manet.Mechanisms,
	specs []faultSpec, metric func(manet.Result) float64) ([]Series, error) {
	var tasks []Run
	for _, p := range protocols {
		for _, sp := range specs {
			for rep := 0; rep < o.Reps; rep++ {
				tasks = append(tasks, Run{Protocol: p, Speed: speed, Mech: mech, Channel: sp.ch, Rep: rep})
			}
		}
	}
	results, err := Execute(o, tasks)
	if err != nil {
		return nil, err
	}
	series := make([]Series, 0, len(protocols))
	i := 0
	for _, p := range protocols {
		s := Series{Name: p}
		for _, sp := range specs {
			var w stats.Welford
			for rep := 0; rep < o.Reps; rep++ {
				w.Add(metric(results[i]))
				i++
			}
			s.X = append(s.X, sp.x)
			s.Y = append(s.Y, w.Mean())
			s.CI = append(s.CI, w.CI95())
		}
		series = append(series, s)
	}
	return series, nil
}

// FigLoss plots weak connectivity of the baseline protocols against the
// per-packet loss rate under the given loss model, at moderate mobility
// (20 m/s average). Rate 0 is the ideal channel.
func FigLoss(o Options, model channel.LossModel, rates []float64) (Figure, error) {
	const speed = 20
	specs := make([]faultSpec, 0, len(rates))
	for _, rate := range rates {
		var ch channel.Config
		if rate > 0 {
			ch.Loss = channel.LossConfig{Model: model, Rate: rate}
		}
		specs = append(specs, faultSpec{x: rate, ch: ch})
	}
	series, err := faultSweep(o, BaselineNames(), speed, manet.Mechanisms{}, specs,
		func(r manet.Result) float64 { return r.Connectivity })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		Title:  fmt.Sprintf("Faults: connectivity vs %s loss rate (20 m/s)", model),
		XLabel: "loss rate",
		YLabel: "connectivity ratio",
		Series: series,
	}, nil
}

// FigDelay plots strict (snapshot) connectivity of the directed effective
// topology against the maximum "Hello" delivery delay Δ″, at moderate
// mobility. Flooding is off and receivers accept physically (the Theorem 5
// setting: only the realization of selected links is at stake), so the
// curve isolates how stale position information erodes effective links.
func FigDelay(o Options, delays []float64) (Figure, error) {
	const speed = 20
	o.FloodRate = 0
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 0.5
	}
	specs := make([]faultSpec, 0, len(delays))
	for _, d := range delays {
		var ch channel.Config
		if d > 0 {
			ch.Delay = channel.DelayConfig{Max: d}
		}
		specs = append(specs, faultSpec{x: d, ch: ch})
	}
	series, err := faultSweep(o, BaselineNames(), speed,
		manet.Mechanisms{PhysicalNeighbors: true}, specs,
		func(r manet.Result) float64 { return r.SnapshotConnectivity })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		Title:  "Faults: snapshot connectivity vs max Hello delay (20 m/s, no buffer)",
		XLabel: "max delay (s)",
		YLabel: "snapshot connectivity",
		Series: series,
	}, nil
}

// FigChurn plots weak connectivity of the baseline protocols against the
// expected fraction of nodes down under channel churn (mean outage fixed at
// 2 s; the up-time follows from the target fraction). Fraction 0 is the
// ideal channel.
func FigChurn(o Options, downFracs []float64) (Figure, error) {
	const speed, meanDown = 20, 2.0
	specs := make([]faultSpec, 0, len(downFracs))
	for _, frac := range downFracs {
		var ch channel.Config
		if frac > 0 {
			ch.Churn = channel.ChurnConfig{
				MeanUp:   meanDown * (1 - frac) / frac,
				MeanDown: meanDown,
			}
		}
		specs = append(specs, faultSpec{x: frac, ch: ch})
	}
	series, err := faultSweep(o, BaselineNames(), speed, manet.Mechanisms{}, specs,
		func(r manet.Result) float64 { return r.Connectivity })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		Title:  "Faults: connectivity vs expected fraction of nodes down (20 m/s)",
		XLabel: "down fraction",
		YLabel: "connectivity ratio",
		Series: series,
	}, nil
}

// FigBufferZone is the empirical Theorem 5 validation. At average speed
// avgSpeed (setdest convention: per-leg speeds uniform in (0, 2·avgSpeed],
// so the theorem's maximum speed v is 2·avgSpeed), each Δ″ in delays gets
// one series of MST snapshot connectivity across the buffer widths. The
// channel delay is deterministic — every Hello deferred by exactly Δ″ —
// because the theorem's l = 2·Δ″·v covers the *worst-case* staleness of a
// bounded-delay channel; a uniform draw would halve the effective Δ″ and
// smear the knee. The accompanying table locates each series' knee — the
// smallest buffer reaching 98 % of the series' plateau — next to the
// predicted minimum width l = 2·Δ″·v. The theorem is a worst-case
// sufficient condition, so the expected reading is: knees shift right
// monotonically with Δ″, and the Δ″ > 0 series rejoin the Δ″ = 0 one
// once the buffer exceeds the Δ″ = 0 knee plus the predicted 2·Δ″·v.
func FigBufferZone(o Options, avgSpeed float64, delays, buffers []float64) (Figure, Table, error) {
	o.FloodRate = 0
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 0.5
	}
	_, vmax := mobility.SpeedSetdest(avgSpeed)
	const protocol = "MST" // shortest links, most buffer-sensitive (Fig. 7)
	var tasks []Run
	for _, d := range delays {
		var ch channel.Config
		if d > 0 {
			ch.Delay = channel.DelayConfig{Min: d, Max: d}
		}
		for _, b := range buffers {
			for rep := 0; rep < o.Reps; rep++ {
				tasks = append(tasks, Run{
					Protocol: protocol, Speed: avgSpeed,
					Mech:    manet.Mechanisms{Buffer: b, PhysicalNeighbors: true},
					Channel: ch, Rep: rep,
				})
			}
		}
	}
	results, err := Execute(o, tasks)
	if err != nil {
		return Figure{}, Table{}, err
	}
	f := Figure{
		Title: fmt.Sprintf("Theorem 5: %s snapshot connectivity vs buffer width (v=%g m/s max)",
			protocol, vmax),
		XLabel: "buffer (m)",
		YLabel: "snapshot connectivity",
	}
	t := Table{
		Title: "Theorem 5: buffer-zone knee vs predicted width l = 2*delay*v",
		Header: []string{"max delay (s)", "predicted l (m)", "knee (m)",
			"conn@knee", "plateau"},
	}
	i := 0
	for _, d := range delays {
		s := Series{Name: fmt.Sprintf("delay=%gs", d)}
		for _, b := range buffers {
			var w stats.Welford
			for rep := 0; rep < o.Reps; rep++ {
				w.Add(results[i].SnapshotConnectivity)
				i++
			}
			s.X = append(s.X, b)
			s.Y = append(s.Y, w.Mean())
			s.CI = append(s.CI, w.CI95())
		}
		f.Series = append(f.Series, s)
		knee, kneeY, plateau := kneeOf(s)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", d),
			fmt.Sprintf("%.0f", 2*d*vmax),
			fmt.Sprintf("%g", knee),
			fmt.Sprintf("%.3f", kneeY),
			fmt.Sprintf("%.3f", plateau),
		})
	}
	return f, t, nil
}

// kneeOf locates the saturation knee of a series assumed non-decreasing in
// the large: the smallest x whose y reaches 98 % of the series' maximum.
func kneeOf(s Series) (knee, kneeY, plateau float64) {
	for _, y := range s.Y {
		if y > plateau {
			plateau = y
		}
	}
	for i, y := range s.Y {
		if y >= 0.98*plateau {
			return s.X[i], y, plateau
		}
	}
	if n := len(s.X); n > 0 {
		return s.X[n-1], s.Y[n-1], plateau
	}
	return 0, 0, 0
}
