package experiment

import (
	"strings"
	"testing"

	"mstc/internal/channel"
)

// faultOptions is a tiny but physically meaningful scale for the fault
// sweeps: enough nodes and time for connectivity to respond to injected
// faults, small enough for CI.
func faultOptions() Options {
	o := DefaultOptions()
	o.N = 40
	o.Reps = 2
	o.Duration = 8
	return o
}

func TestFigLossDegradesMonotonically(t *testing.T) {
	rates := []float64{0, 0.3, 0.7}
	f, err := FigLoss(faultOptions(), channel.Bernoulli, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != len(BaselineNames()) {
		t.Fatalf("got %d series, want %d", len(f.Series), len(BaselineNames()))
	}
	for _, s := range f.Series {
		if len(s.X) != len(rates) {
			t.Fatalf("%s: %d points, want %d", s.Name, len(s.X), len(rates))
		}
		// Heavy loss must hurt relative to the ideal point. Middle points
		// can wobble at this tiny scale; the endpoints must not.
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: connectivity %.3f at 70%% loss >= %.3f at 0%%",
				s.Name, s.Y[len(s.Y)-1], s.Y[0])
		}
	}
}

func TestFigDelayRuns(t *testing.T) {
	f, err := FigDelay(faultOptions(), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Errorf("%s[%d]: snapshot connectivity %.3f outside (0, 1]", s.Name, i, y)
			}
		}
	}
}

func TestFigChurnDegrades(t *testing.T) {
	f, err := FigChurn(faultOptions(), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if s.Y[1] >= s.Y[0] {
			t.Errorf("%s: connectivity %.3f with half the nodes down >= %.3f ideal",
				s.Name, s.Y[1], s.Y[0])
		}
	}
}

func TestFigBufferZoneKneeTracksTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	// Average speed 20 → setdest max speed 40 m/s → predicted knees
	// 2·Δ″·v = 0, 40, 80 m for Δ″ = 0, 0.5, 1.0 s. At this reduced scale
	// the knee estimate is coarse, so assert the theorem's *shape*: the
	// knee must not shrink as Δ″ grows, and the Δ″=0 series must saturate
	// strictly earlier than the Δ″=1 s one.
	o := faultOptions()
	o.Duration = 10
	delays := []float64{0, 0.5, 1.0}
	buffers := []float64{0, 20, 40, 80, 120, 160}
	f, tbl, err := FigBufferZone(o, 20, delays, buffers)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != len(delays) || len(tbl.Rows) != len(delays) {
		t.Fatalf("got %d series / %d rows, want %d", len(f.Series), len(tbl.Rows), len(delays))
	}
	knees := make([]float64, len(delays))
	for i, s := range f.Series {
		knees[i], _, _ = kneeOf(s)
	}
	for i := 1; i < len(knees); i++ {
		if knees[i] < knees[i-1] {
			t.Errorf("knee shrank with delay: Δ″=%gs knee %gm < Δ″=%gs knee %gm",
				delays[i], knees[i], delays[i-1], knees[i-1])
		}
	}
	if knees[len(knees)-1] <= knees[0] {
		t.Errorf("knee did not move: %gm at Δ″=0 vs %gm at Δ″=%gs (want strictly larger)",
			knees[0], knees[len(knees)-1], delays[len(delays)-1])
	}
	if !strings.Contains(tbl.Title, "2*delay*v") {
		t.Errorf("table title %q lost the prediction formula", tbl.Title)
	}
}

func TestKneeOf(t *testing.T) {
	s := Series{X: []float64{0, 10, 20, 30}, Y: []float64{0.50, 0.80, 0.98, 1.0}}
	knee, kneeY, plateau := kneeOf(s)
	if knee != 20 || kneeY != 0.98 || plateau != 1.0 { //lint:ignore float-eq exact literals propagated unchanged
		t.Errorf("kneeOf = (%g, %g, %g), want (20, 0.98, 1)", knee, kneeY, plateau)
	}
	if k, _, _ := kneeOf(Series{X: []float64{5}, Y: []float64{0.4}}); k != 5 { //lint:ignore float-eq exact literal propagated unchanged
		t.Errorf("single-point knee = %g, want 5", k)
	}
}
