package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"mstc/internal/manet"
)

// Differential regression against the pre-channel evaluation: with the
// ideal (zero-value) channel, every result and rendered figure must stay
// byte-identical to the codebase before the channel subsystem existed. The
// two digests below were captured on the commit preceding this subsystem;
// any drift means the ideal path consumed randomness, reordered draws, or
// changed substream labels, and is a bug — not a baseline to re-pin.

const (
	goldenResultsDigest = "1594413e772de2bd95d14b4812d06c7e4c2a174d7b40d5b65c9732dcbeb1c9fe"
	goldenFig6Digest    = "6968aa7eec0910089c9bbf442eeb286f7427203ce87a4359c9a54da86a5ccefb"
)

func goldenOptions() Options {
	o := DefaultOptions()
	o.N = 40
	o.Reps = 2
	o.Duration = 5
	o.Speeds = []float64{40}
	o.Workers = 4
	return o
}

func goldenTasks() []Run {
	var tasks []Run
	for rep := 0; rep < 2; rep++ {
		tasks = append(tasks,
			Run{Protocol: "RNG", Speed: 40, Rep: rep},
			Run{Protocol: "MST", Speed: 40, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep},
			Run{Protocol: "SPT-2", Speed: 40, Mech: manet.Mechanisms{Buffer: 100, PhysicalNeighbors: true}, Rep: rep},
		)
	}
	return tasks
}

func TestIdealChannelResultsBitIdentical(t *testing.T) {
	results, err := Execute(goldenOptions(), goldenTasks())
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != goldenResultsDigest {
		t.Errorf("ideal-channel results drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenResultsDigest)
	}
}

func TestIdealChannelFig6BitIdentical(t *testing.T) {
	o := goldenOptions()
	o.Duration = 8
	f, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(f.String() + "\n" + f.Dat()))
	if got := hex.EncodeToString(sum[:]); got != goldenFig6Digest {
		t.Errorf("ideal-channel Fig6 render drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenFig6Digest)
	}
}
