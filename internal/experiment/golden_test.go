package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"mstc/internal/manet"
)

// Differential regression for the ideal (zero-value) channel path: every
// result and rendered figure must stay byte-identical across refactors.
// Any drift means the ideal path consumed randomness, reordered draws, or
// changed substream labels, and is a bug — not a baseline to re-pin.
//
// History: the original digests were captured on the commit preceding the
// channel subsystem and survived it unchanged. They were re-pinned ONCE,
// deliberately, when flood forwarding moved onto the region-parallel
// engine: the forward jitter had ridden the root network stream (its
// position depending on the global chronological transmit order — state no
// parallel execution can reproduce), and was re-keyed to a pure per-
// (flood, forwarder, receiver) substream so both engines resolve identical
// deferrals. That re-keying changes individual jitter values (never their
// distribution), hence exactly one intentional digest change, verified
// serial == parallel by manet's differential matrix.

const (
	goldenResultsDigest = "5a23d50a838894f24d8b4f0a0f9ea8d6e0c142c7d7bd06de41ef53444de0fa4e"
	goldenFig6Digest    = "f242ebe6c3a814b894a89957acf473157def4e58503965fac317ed714497ccdc"
)

func goldenOptions() Options {
	o := DefaultOptions()
	o.N = 40
	o.Reps = 2
	o.Duration = 5
	o.Speeds = []float64{40}
	o.Workers = 4
	return o
}

func goldenTasks() []Run {
	var tasks []Run
	for rep := 0; rep < 2; rep++ {
		tasks = append(tasks,
			Run{Protocol: "RNG", Speed: 40, Rep: rep},
			Run{Protocol: "MST", Speed: 40, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep},
			Run{Protocol: "SPT-2", Speed: 40, Mech: manet.Mechanisms{Buffer: 100, PhysicalNeighbors: true}, Rep: rep},
		)
	}
	return tasks
}

func TestIdealChannelResultsBitIdentical(t *testing.T) {
	results, err := Execute(goldenOptions(), goldenTasks())
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != goldenResultsDigest {
		t.Errorf("ideal-channel results drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenResultsDigest)
	}
}

func TestIdealChannelFig6BitIdentical(t *testing.T) {
	o := goldenOptions()
	o.Duration = 8
	f, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(f.String() + "\n" + f.Dat()))
	if got := hex.EncodeToString(sum[:]); got != goldenFig6Digest {
		t.Errorf("ideal-channel Fig6 render drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenFig6Digest)
	}
}
