package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"mstc/internal/manet"
)

// Differential regression for the ideal (zero-value) channel path: every
// result and rendered figure must stay byte-identical across refactors.
// Any drift means the ideal path consumed randomness, reordered draws, or
// changed substream labels, and is a bug — not a baseline to re-pin.
//
// History: the original digests were captured on the commit preceding the
// channel subsystem and survived it unchanged. Two deliberate re-pins
// since:
//
//  1. Flood forwarding moved onto the region-parallel engine: the forward
//     jitter had ridden the root network stream (its position depending on
//     the global chronological transmit order — state no parallel execution
//     can reproduce), and was re-keyed to a pure per-(flood, forwarder,
//     receiver) substream so both engines resolve identical deferrals. That
//     re-keying changes individual jitter values (never their distribution),
//     verified serial == parallel by manet's differential matrix.
//  2. The traffic subsystem extended manet.Result with zero-valued Traffic
//     and Unicast fields. resultsDigest hashes the %#v record form, which
//     prints struct fields by name, so the representation changed while
//     every pre-existing value stayed bit-identical — proven by the Fig6
//     render digest below surviving the same commit unchanged.

const (
	goldenResultsDigest = "44bc42e4b65e5a10fca7d41c113720fb91cf7f45693c491feb0ba8fd72d550c8"
	goldenFig6Digest    = "f242ebe6c3a814b894a89957acf473157def4e58503965fac317ed714497ccdc"
)

func goldenOptions() Options {
	o := DefaultOptions()
	o.N = 40
	o.Reps = 2
	o.Duration = 5
	o.Speeds = []float64{40}
	o.Workers = 4
	return o
}

func goldenTasks() []Run {
	var tasks []Run
	for rep := 0; rep < 2; rep++ {
		tasks = append(tasks,
			Run{Protocol: "RNG", Speed: 40, Rep: rep},
			Run{Protocol: "MST", Speed: 40, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep},
			Run{Protocol: "SPT-2", Speed: 40, Mech: manet.Mechanisms{Buffer: 100, PhysicalNeighbors: true}, Rep: rep},
		)
	}
	return tasks
}

func TestIdealChannelResultsBitIdentical(t *testing.T) {
	results, err := Execute(goldenOptions(), goldenTasks())
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != goldenResultsDigest {
		t.Errorf("ideal-channel results drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenResultsDigest)
	}
}

// TestTrafficGoldenDigest pins the complete FigTraffic render (figure,
// .dat series, and per-point table) at a tiny scale. The traffic
// subsystem draws from dedicated substreams ('t' pairs, 'q' jitter), so
// this digest must survive refactors of unrelated subsystems — and any
// traffic-layer change that moves it must be deliberate.
func TestTrafficGoldenDigest(t *testing.T) {
	const goldenTrafficDigest = "dacb4ae312446ef82314b14c4d9ef4e28af826db2fe7b047b8310c6e26cc48df"
	o := goldenOptions()
	o.Duration = 8
	f, tab, err := FigTraffic(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(f.String() + "\n" + f.Dat() + "\n" + tab.String()))
	if got := hex.EncodeToString(sum[:]); got != goldenTrafficDigest {
		t.Errorf("FigTraffic render drifted from the golden digest:\n got %s\nwant %s",
			got, goldenTrafficDigest)
	}
}

func TestIdealChannelFig6BitIdentical(t *testing.T) {
	o := goldenOptions()
	o.Duration = 8
	f, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(f.String() + "\n" + f.Dat()))
	if got := hex.EncodeToString(sum[:]); got != goldenFig6Digest {
		t.Errorf("ideal-channel Fig6 render drifted from the pre-channel golden digest:\n got %s\nwant %s",
			got, goldenFig6Digest)
	}
}
