package experiment

import (
	"testing"

	"mstc/internal/manet"
)

// TestRunKeyCollisionFree enumerates the full configuration cross product
// reachable from DefaultOptions — every registry protocol, every paper
// speed and buffer width, every single-mechanism toggle and the weak-K
// ladder — and asserts the substream labels are pairwise distinct. A
// collision would silently pair two different configurations on one
// network randomness stream, the bug class the FNV encoding of Run.key
// exists to rule out.
func TestRunKeyCollisionFree(t *testing.T) {
	o := DefaultOptions()
	protocols := []string{"MST", "RNG", "GG", "SPT-2", "SPT-4", "Yao-6", "CBTC", "CBTC-56", "KNeigh-9", "none"}
	mechs := []manet.Mechanisms{
		{},
		{ViewSync: true},
		{PhysicalNeighbors: true},
		{Reactive: true},
		{Proactive: true},
		{PhysicalNeighbors: true, CDSForward: true},
		{PhysicalNeighbors: true, SelfPruning: true},
		{WeakK: 2},
		{WeakK: 3},
		{WeakK: 5},
		{ViewSync: true, PhysicalNeighbors: true, Reactive: true},
	}
	seen := make(map[uint64]Run)
	for _, p := range protocols {
		for _, speed := range o.Speeds {
			for _, buf := range o.Buffers {
				for _, m := range mechs {
					m := m
					m.Buffer = buf
					r := Run{Protocol: p, Speed: speed, Mech: m}
					k := r.key()
					if prev, dup := seen[k]; dup {
						t.Fatalf("key collision %#x:\n  %+v\n  %+v", k, prev, r)
					}
					seen[k] = r
				}
			}
		}
	}
	// Rep must NOT enter the key: repetitions share the substream label.
	r0 := Run{Protocol: "MST", Speed: 40}
	r7 := r0
	r7.Rep = 7
	if r0.key() != r7.key() {
		t.Errorf("Rep changed the key: rep 0 %#x != rep 7 %#x", r0.key(), r7.key())
	}
}
