package experiment

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"mstc/internal/channel"
	"mstc/internal/manet"
	"mstc/internal/sweep"
)

// These are the acceptance tests of the sweep-orchestration subsystem:
// an interrupted-then-resumed sweep and a 4-shard merged sweep must both
// produce sha256-identical results to the plain single-process path —
// under the ideal channel and under a faulty one — and a cold Execute
// over a warm store must compute nothing.

// sweepTestTasks mixes ideal-channel and faulty-channel runs across
// several configuration groups (6 ideal + 2 faulty groups, 2 reps each).
func sweepTestTasks() []Run {
	lossy := channel.Config{Loss: channel.LossConfig{Model: channel.GilbertElliott, Rate: 0.2}}
	var tasks []Run
	for rep := 0; rep < 2; rep++ {
		for _, p := range []string{"RNG", "MST", "SPT-2"} {
			tasks = append(tasks,
				Run{Protocol: p, Speed: 40, Rep: rep},
				Run{Protocol: p, Speed: 40, Mech: manet.Mechanisms{Buffer: 10, ViewSync: true}, Rep: rep})
		}
		tasks = append(tasks,
			Run{Protocol: "RNG", Speed: 40, Channel: lossy, Rep: rep},
			Run{Protocol: "MST", Speed: 40, Mech: manet.Mechanisms{Buffer: 10}, Channel: lossy, Rep: rep})
	}
	return tasks
}

func sweepTestOptions() Options {
	o := tinyOptions()
	o.N = 40
	o.Duration = 5
	o.Workers = 4
	return o
}

// directDigest computes the reference digest: the plain store-less path.
func directDigest(t *testing.T, o Options, tasks []Run) string {
	t.Helper()
	results, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return resultsDigest(results)
}

func openStore(t *testing.T) *sweep.Store {
	t.Helper()
	s, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmStoreZeroRecomputation: a second Execute over a fully
// populated store must satisfy every task from records — zero computed
// runs — and return bit-identical results.
func TestWarmStoreZeroRecomputation(t *testing.T) {
	o := sweepTestOptions()
	tasks := sweepTestTasks()
	want := directDigest(t, o, tasks)

	st := openStore(t)
	var computed atomic.Int64
	o.Store = st
	o.Progress = func(done, total int) { computed.Add(1) }
	results, err := Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != want {
		t.Errorf("cold store-backed digest = %s, want %s", got, want)
	}
	if int(computed.Load()) != len(tasks) {
		t.Errorf("cold run computed %d runs, want %d", computed.Load(), len(tasks))
	}

	computed.Store(0)
	results, err = Execute(o, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != want {
		t.Errorf("warm store-backed digest = %s, want %s", got, want)
	}
	if computed.Load() != 0 {
		t.Errorf("warm run recomputed %d runs, want 0", computed.Load())
	}
}

// TestInterruptResumeBitIdentical interrupts a sweep after a few runs
// (graceful drain → sweep.ErrInterrupted, completions journaled), then
// resumes into the same store and requires the final results to be
// sha256-identical to an uninterrupted single-process sweep.
func TestInterruptResumeBitIdentical(t *testing.T) {
	o := sweepTestOptions()
	tasks := sweepTestTasks()
	want := directDigest(t, o, tasks)

	st := openStore(t)
	var computed atomic.Int64
	interrupted := o
	interrupted.Store = st
	interrupted.Workers = 1 // deterministic drain point for the assertion below
	interrupted.Progress = func(done, total int) { computed.Add(1) }
	interrupted.Interrupt = func() bool { return computed.Load() >= 3 }
	if _, err := Execute(interrupted, tasks); !errors.Is(err, sweep.ErrInterrupted) {
		t.Fatalf("interrupted Execute error = %v, want sweep.ErrInterrupted", err)
	}
	if got := computed.Load(); got != 3 {
		t.Fatalf("interrupted run computed %d runs, want 3", got)
	}
	if cp, ok, err := st.ReadCheckpoint(); !ok || err != nil || !cp.Interrupted {
		t.Errorf("drain did not flush an interrupted checkpoint (got %+v, %v, %v)", cp, ok, err)
	}

	resumed := o
	resumed.Store = st
	var recomputed atomic.Int64
	resumed.Progress = func(done, total int) { recomputed.Add(1) }
	results, err := Execute(resumed, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != want {
		t.Errorf("resumed digest = %s, want %s (uninterrupted single-process)", got, want)
	}
	if got := int(recomputed.Load()); got != len(tasks)-3 {
		t.Errorf("resume recomputed %d runs, want %d (journaled runs must be skipped)", got, len(tasks)-3)
	}
}

// TestShardMergeBitIdentical computes the sweep as 4 independent shard
// slices into 4 separate stores (each Execute reporting
// sweep.ErrPartial), merges them, and requires the merged store to
// render sha256-identical results with zero recomputation.
func TestShardMergeBitIdentical(t *testing.T) {
	o := sweepTestOptions()
	tasks := sweepTestTasks()
	want := directDigest(t, o, tasks)

	const shards = 4
	merged := openStore(t)
	for i := 0; i < shards; i++ {
		st := openStore(t)
		so := o
		so.Store = st
		so.Shard = sweep.Shard{Index: i, Count: shards}
		if _, err := Execute(so, tasks); !errors.Is(err, sweep.ErrPartial) {
			t.Fatalf("shard %d error = %v, want sweep.ErrPartial", i, err)
		}
		if _, err := sweep.Merge(merged, st); err != nil {
			t.Fatalf("merge shard %d: %v", i, err)
		}
	}

	mo := o
	mo.Store = merged
	var computed atomic.Int64
	mo.Progress = func(done, total int) { computed.Add(1) }
	results, err := Execute(mo, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsDigest(results); got != want {
		t.Errorf("4-shard merged digest = %s, want %s (single-process)", got, want)
	}
	if computed.Load() != 0 {
		t.Errorf("merged store recomputed %d runs, want 0", computed.Load())
	}
}

// TestShardsAreDisjointAndComplete checks the executor-level partition:
// across the 4 shard stores every task is journaled exactly once.
func TestShardsAreDisjointAndComplete(t *testing.T) {
	o := sweepTestOptions()
	tasks := sweepTestTasks()
	const shards = 4
	fp := o.Fingerprint()
	counts := make([]int, len(tasks))
	for i := 0; i < shards; i++ {
		st := openStore(t)
		so := o
		so.Store = st
		so.Shard = sweep.Shard{Index: i, Count: shards}
		if _, err := Execute(so, tasks); !errors.Is(err, sweep.ErrPartial) {
			t.Fatalf("shard %d error = %v, want sweep.ErrPartial", i, err)
		}
		for j, task := range tasks {
			if _, ok := st.Get(task.storeKey(fp), task.desc()); ok {
				counts[j]++
			}
		}
	}
	for j, n := range counts {
		if n != 1 {
			t.Errorf("task %d (%s) journaled by %d shards, want exactly 1", j, tasks[j].desc(), n)
		}
	}
}

// TestFingerprintSensitivity pins the fingerprint's field selection:
// result-affecting options must change it, proven-invariant knobs must
// not (their records are intentionally shared).
func TestFingerprintSensitivity(t *testing.T) {
	base := sweepTestOptions()
	fp := base.Fingerprint()

	changing := map[string]func(*Options){
		"N":                func(o *Options) { o.N = 41 },
		"ArenaSide":        func(o *Options) { o.ArenaSide = 800 },
		"NormalRange":      func(o *Options) { o.NormalRange = 200 },
		"Duration":         func(o *Options) { o.Duration = 6 },
		"FloodRate":        func(o *Options) { o.FloodRate = 5 },
		"Seed":             func(o *Options) { o.Seed = 2005 },
		"Radio.TxDuration": func(o *Options) { o.Radio.TxDuration = 0.001 },
		"Channel.Loss":     func(o *Options) { o.Channel.Loss.Rate = 0.1 },
		"SnapshotEvery":    func(o *Options) { o.SnapshotEvery = 0.5 },
	}
	//lint:order-independent
	for name, mutate := range changing {
		o := base
		mutate(&o)
		if o.Fingerprint() == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}

	invariant := map[string]func(*Options){
		"Workers":          func(o *Options) { o.Workers = 1 },
		"Reps":             func(o *Options) { o.Reps = 50 },
		"Speeds":           func(o *Options) { o.Speeds = []float64{1} },
		"Buffers":          func(o *Options) { o.Buffers = nil },
		"Radio.Slack":      func(o *Options) { o.Radio.Slack = -1 },
		"NoSelectionCache": func(o *Options) { o.NoSelectionCache = true },
		"Domains":          func(o *Options) { o.Domains = 2 },
		"EngineWorkers": func(o *Options) {
			o.Domains = 2
			o.EngineWorkers = 4
		},
		"Retry": func(o *Options) { o.Retry = 5 },
	}
	//lint:order-independent
	for name, mutate := range invariant {
		o := base
		mutate(&o)
		if o.Fingerprint() != fp {
			t.Errorf("changing %s changed the fingerprint; records would needlessly miss", name)
		}
	}
}

// TestRecoverRunRetriesPanicsOnly pins the retry budget semantics:
// panics retry up to the budget and surface as errors with the panic
// message; deterministic errors never retry.
func TestRecoverRunRetriesPanicsOnly(t *testing.T) {
	calls := 0
	_, attempts, err := recoverRun(2, func() (manet.Result, error) {
		calls++
		panic("boom")
	})
	if calls != 3 || attempts != 3 {
		t.Errorf("panicking run: %d calls, %d attempts, want 3 and 3", calls, attempts)
	}
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}

	calls = 0
	_, attempts, err = recoverRun(2, func() (manet.Result, error) {
		calls++
		return manet.Result{}, fmt.Errorf("unknown protocol")
	})
	if calls != 1 || attempts != 1 {
		t.Errorf("erroring run: %d calls, %d attempts, want 1 and 1 (no retry)", calls, attempts)
	}
	if err == nil {
		t.Fatal("erroring run returned nil error")
	}

	succeedAt := 2
	calls = 0
	res, attempts, err := recoverRun(2, func() (manet.Result, error) {
		calls++
		if calls < succeedAt {
			panic("transient")
		}
		return manet.Result{Floods: 7}, nil
	})
	if err != nil || attempts != 2 || res.Floods != 7 {
		t.Errorf("recovering run = %+v, attempts %d, err %v; want success on attempt 2", res, attempts, err)
	}
}

// TestExecuteJournalsFailures: a run that cannot execute (unknown
// protocol) fails the Execute, but leaves a failure record in the store
// for diagnosis — and never a result record.
func TestExecuteJournalsFailures(t *testing.T) {
	o := sweepTestOptions()
	st := openStore(t)
	o.Store = st
	tasks := []Run{{Protocol: "NOPE", Speed: 40}}
	if _, err := Execute(o, tasks); err == nil {
		t.Fatal("unknown protocol executed without error")
	}
	failed := 0
	if err := st.Scan(func(info sweep.RecordInfo) error {
		if info.Err != nil {
			t.Errorf("store holds a corrupt record: %v", info.Err)
		}
		if info.Failed {
			failed++
		} else {
			t.Errorf("failing run left a result record: %+v", info.Record)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Errorf("store holds %d failure records, want 1", failed)
	}
}
