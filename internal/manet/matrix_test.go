package manet

import (
	"fmt"
	"testing"

	"mstc/internal/topology"
)

// TestMatrixMechanisms prints the buffer × view-sync matrix at 40 m/s for
// RNG and SPT-2 (exploratory calibration against Figs. 7 and 9).
func TestMatrixMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	protos := map[string]topology.Protocol{
		"RNG":   topology.RNG{},
		"SPT-2": topology.SPT{Alpha: 2, Range: 250},
	}
	for name, p := range protos {
		for _, buf := range []float64{1, 10, 100} {
			for _, vs := range []bool{false, true} {
				sum := 0.0
				const reps = 3
				for rep := uint64(0); rep < reps; rep++ {
					model := waypointModel(t, 40, 42+rep)
					nw, err := NewNetwork(model, Config{
						Protocol: p, FloodRate: 10, Seed: 7 + rep,
						Mech: Mechanisms{Buffer: buf, ViewSync: vs},
					})
					if err != nil {
						t.Fatal(err)
					}
					sum += nw.Run(30).Connectivity
				}
				fmt.Printf("%-6s buf=%3.0f vs=%-5v conn=%.3f\n", name, buf, vs, sum/reps)
			}
		}
	}
}
