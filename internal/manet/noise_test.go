package manet

import (
	"testing"

	"mstc/internal/radio"
	"mstc/internal/topology"
)

// TestPosNoiseBufferCompensates exercises the paper's §1 claim about
// imprecise location information: noisy advertised positions break
// effective links, and the buffer zone absorbs the error (a position error
// of std-dev sigma displaces links by at most a few sigma, so a buffer of
// ~4 sigma restores connectivity).
func TestPosNoiseBufferCompensates(t *testing.T) {
	model := connectedStatic(t, 71, 100, 15)
	run := func(noise, buffer float64) Result {
		nw, err := NewNetwork(model, Config{
			Protocol: topology.RNG{}, FloodRate: 10, Seed: 27,
			PosNoise: noise,
			Mech:     Mechanisms{Buffer: buffer},
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(15)
	}
	clean := run(0, 0)
	noisy := run(10, 0)
	fixed := run(10, 40)
	if clean.Connectivity < 0.999 {
		t.Fatalf("clean static run delivered %.3f", clean.Connectivity)
	}
	if noisy.Connectivity >= clean.Connectivity-0.01 {
		t.Errorf("10 m position noise did not hurt: %.3f", noisy.Connectivity)
	}
	// Two noisy endpoints give a combined error std-dev of ~14 m, so a
	// 40 m buffer is ~2.8 sigma: near-complete but not perfect recovery.
	if fixed.Connectivity < 0.95 {
		t.Errorf("40 m buffer did not absorb 10 m noise: %.3f", fixed.Connectivity)
	}
	if fixed.Connectivity <= noisy.Connectivity {
		t.Errorf("buffer did not improve noisy run: %.3f vs %.3f",
			noisy.Connectivity, fixed.Connectivity)
	}
}

func TestPosNoiseValidation(t *testing.T) {
	model := connectedStatic(t, 1, 10, 5)
	if _, err := NewNetwork(model, Config{Protocol: topology.RNG{}, PosNoise: -1}); err == nil {
		t.Error("negative PosNoise accepted")
	}
}

// TestWeakKHelpsUnderHelloLoss verifies the paper's §4.2 remark: "storing
// more Hello messages from each sender can enhance the probability of
// building weakly consistent local views" when messages are lost.
func TestWeakKHelpsUnderHelloLoss(t *testing.T) {
	sum1, sum3 := 0.0, 0.0
	const reps = 3
	for rep := uint64(0); rep < reps; rep++ {
		model := waypointModel(t, 10, 501+rep)
		run := func(k int) float64 {
			nw, err := NewNetwork(model, Config{
				Weak: topology.WeakRNG{}, FloodRate: 10, Seed: 28 + rep,
				Mech:  Mechanisms{WeakK: k},
				Radio: radioConfigWithLoss(0.3),
			})
			if err != nil {
				t.Fatal(err)
			}
			return nw.Run(20).Connectivity
		}
		sum1 += run(1)
		sum3 += run(3)
	}
	if sum3 <= sum1 {
		t.Errorf("k=3 (%.3f) should beat k=1 (%.3f) under 30%% hello loss",
			sum3/reps, sum1/reps)
	}
}

// radioConfigWithLoss is a tiny helper keeping the loss literal readable.
func radioConfigWithLoss(rate float64) radio.Config {
	return radio.Config{LossRate: rate}
}
