package manet

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/sim"
)

// Unicast probing: greedy geographic forwarding over the live protocol
// state. Where the flooding probe measures raw connectivity, this measures
// what a routing protocol actually experiences: each relay picks the
// logical neighbor whose *advertised* position is closest to the
// destination's advertised position, transmits with its current power, and
// the hop succeeds only if the chosen neighbor is physically within range —
// stale views therefore surface as either local minima or range failures,
// the paper's two failure modes, now per-packet.

// UnicastConfig parameterizes a unicast probing run.
type UnicastConfig struct {
	// Rate is probes per second (source and destination drawn uniformly).
	Rate float64
	// MaxHops bounds the path length before the packet is dropped
	// (default 4 * number of nodes).
	MaxHops int
}

func (c UnicastConfig) validate(n int) error {
	if c.Rate <= 0 {
		return fmt.Errorf("manet: unicast Rate must be positive, got %g", c.Rate)
	}
	if c.MaxHops < 0 {
		return fmt.Errorf("manet: negative MaxHops")
	}
	return nil
}

// UnicastResult aggregates a unicast probing run.
type UnicastResult struct {
	// Delivered is the fraction of probes that reached their destination.
	Delivered float64
	// AvgHops is the mean hop count of delivered probes.
	AvgHops float64
	// LocalMinima counts probes dropped with no closer logical neighbor.
	LocalMinima int
	// RangeFailures counts probes dropped because the chosen next hop was
	// no longer within transmission range (outdated information).
	RangeFailures int
	// Probes is the number of scored probes.
	Probes int
}

// RunUnicast drives the network for duration seconds with normal beaconing
// and selection, routing greedy unicast probes instead of floods.
func (nw *Network) RunUnicast(duration float64, uc UnicastConfig) (UnicastResult, error) {
	if err := uc.validate(len(nw.nodes)); err != nil {
		return UnicastResult{}, err
	}
	maxHops := uc.MaxHops
	if maxHops == 0 {
		maxHops = 4 * len(nw.nodes)
	}
	if nw.cfg.Mech.Reactive {
		nw.scheduleReactiveRounds()
	} else {
		for _, nd := range nw.nodes {
			nd := nd
			//lint:ignore substream deliberate: shares the 'f' hello-offset labels with Run — the entry points are mutually exclusive on one Network
			first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
			nw.eng.Every(first, nd.interval, func(now sim.Time) {
				nw.sendHello(nd, now)
			})
		}
	}
	res := UnicastResult{}
	hopSum := 0
	warmup := 2 * nw.cfg.HelloMax
	nw.eng.Every(warmup, 1/uc.Rate, func(now sim.Time) {
		//lint:ignore substream historical draw order: probe endpoints ride the root network stream, mirroring originateFlood; a Sub would change unicast digests
		src := nw.rng.Intn(len(nw.nodes))
		//lint:ignore substream historical draw order: probe endpoints ride the root network stream, mirroring originateFlood; a Sub would change unicast digests
		dst := nw.rng.Intn(len(nw.nodes))
		if src == dst {
			return
		}
		nw.routeProbe(src, dst, maxHops, now, &res, &hopSum)
	})
	nw.eng.Run(duration)
	if res.Probes > 0 {
		delivered := res.Probes - res.LocalMinima - res.RangeFailures
		res.Delivered = float64(delivered) / float64(res.Probes)
		if delivered > 0 {
			res.AvgHops = float64(hopSum) / float64(delivered)
		}
	}
	return res, nil
}

// routeProbe walks one greedy probe hop by hop at a single instant (probe
// forwarding is orders of magnitude faster than node movement, as with
// floods).
func (nw *Network) routeProbe(src, dst, maxHops int, now sim.Time, res *UnicastResult, hopSum *int) {
	res.Probes++
	dstPos := nw.nodes[dst].advertisedPos
	cur := src
	hops := 0
	for cur != dst {
		if hops >= maxHops {
			res.LocalMinima++ // routing loop exhausted its budget
			return
		}
		nd := nw.nodes[cur]
		if nw.cfg.Mech.ViewSync {
			nw.updateSelection(nd, now, nd.advertisedPos)
		}
		next, ok := nw.greedyNext(nd, dst, dstPos, now)
		if !ok {
			res.LocalMinima++
			return
		}
		// The hop physically succeeds only if next is inside cur's
		// current transmission range.
		d := nw.med.PositionAt(cur, now).Dist(nw.med.PositionAt(next, now))
		if d > nd.txRange {
			res.RangeFailures++
			return
		}
		nw.dataTx++
		nw.dataEnergy += energyOf(nd.txRange/nw.cfg.NormalRange, nw.cfg.EnergyAlpha)
		cur = next
		hops++
	}
	*hopSum += hops
}

// greedyNext picks nd's forwarding-eligible neighbor whose advertised
// position is strictly closest to target (closer than nd's own advertised
// position). Eligible neighbors are the logical set, or every known
// neighbor under the physical-neighbor mechanism.
func (nw *Network) greedyNext(nd *node, dst int, target geom.Point, now sim.Time) (int, bool) {
	best := -1
	bestD := nd.advertisedPos.Dist2(target)
	for _, m := range nd.table.Latest(now) {
		if !nw.cfg.Mech.PhysicalNeighbors && !nd.isLogical[m.From] {
			continue
		}
		if m.From == dst {
			// Destination in reach beats any geometric progress.
			return dst, true
		}
		if d := m.Pos.Dist2(target); d < bestD {
			bestD = d
			best = m.From
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}
