package manet

import (
	"testing"

	"mstc/internal/channel"
	"mstc/internal/topology"
)

// Integration tests for the non-ideal channel subsystem threaded through the
// network: loss thins floods, delay defers (but does not lose) "Hello"s, and
// channel churn behaves like the legacy fail/recover process.

func TestChannelLossDegradesConnectivity(t *testing.T) {
	model := connectedStatic(t, 100, 100, 12)
	base := Config{Protocol: topology.RNG{}, FloodRate: 10, Seed: 7}
	run := func(cfg Config) Result {
		nw, err := NewNetwork(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(12)
	}
	ideal := run(base)
	lossy := base
	lossy.Channel.Loss = channel.LossConfig{Rate: 0.5}
	lost := run(lossy)
	if ideal.Connectivity < 0.999 {
		t.Fatalf("ideal static connectivity %.4f, want ~1", ideal.Connectivity)
	}
	if lost.Connectivity > ideal.Connectivity-0.05 {
		t.Errorf("50%% loss: connectivity %.4f vs ideal %.4f, want a clear drop",
			lost.Connectivity, ideal.Connectivity)
	}
	burst := base
	burst.Channel.Loss = channel.LossConfig{
		Model: channel.GilbertElliott, Rate: 0.5, MeanBurst: 8,
	}
	bursty := run(burst)
	if bursty.Connectivity > ideal.Connectivity-0.05 {
		t.Errorf("Gilbert-Elliott 50%% loss: connectivity %.4f vs ideal %.4f, want a clear drop",
			bursty.Connectivity, ideal.Connectivity)
	}
}

func TestChannelDelayKeepsNetworkWorking(t *testing.T) {
	// A bounded delivery delay postpones "Hello"s and flood hops but loses
	// nothing: a static connected network must still reach everyone, given a
	// settle window long enough for the delayed hops to land.
	model := connectedStatic(t, 100, 100, 12)
	cfg := Config{Protocol: topology.RNG{}, FloodRate: 10, FloodSettle: 2, Seed: 7}
	cfg.Channel.Delay = channel.DelayConfig{Max: 0.1}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(12)
	if res.Connectivity < 0.99 {
		t.Errorf("delayed channel on static connected network: connectivity %.4f, want ~1",
			res.Connectivity)
	}
	if res.HelloTx == 0 {
		t.Error("no hellos sent")
	}
}

func TestChannelChurnSilencesNodes(t *testing.T) {
	// Channel-driven churn must behave like the legacy process: nodes go
	// quiet while down, so beacon counts drop versus the fault-free run.
	model := connectedStatic(t, 100, 60, 20)
	base := Config{Protocol: topology.RNG{}, FloodRate: 5, Seed: 7}
	run := func(cfg Config) Result {
		nw, err := NewNetwork(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(20)
	}
	ideal := run(base)
	churny := base
	churny.Channel.Churn = channel.ChurnConfig{MeanUp: 2, MeanDown: 2}
	faulty := run(churny)
	if faulty.HelloTx >= ideal.HelloTx {
		t.Errorf("churn HelloTx %d >= ideal %d, want fewer beacons under churn",
			faulty.HelloTx, ideal.HelloTx)
	}
	// With mean 2s up / 2s down roughly half the beacon slots are silenced.
	if lo, hi := ideal.HelloTx/4, ideal.HelloTx*3/4; faulty.HelloTx < lo || faulty.HelloTx > hi {
		t.Errorf("churn HelloTx %d outside [%d, %d] (ideal %d)",
			faulty.HelloTx, lo, hi, ideal.HelloTx)
	}
}

func TestChannelFullStackDeterminism(t *testing.T) {
	// All three degradations at once, twice, same seed: identical results.
	run := func() Result {
		model := waypointModel(t, 20, 9)
		cfg := Config{
			Protocol: topology.RNG{}, FloodRate: 10, Seed: 11,
			Mech: Mechanisms{Buffer: 10, ViewSync: true},
			Channel: channel.Config{
				Loss:  channel.LossConfig{Model: channel.GilbertElliott, Rate: 0.2},
				Delay: channel.DelayConfig{Max: 0.05},
				Churn: channel.ChurnConfig{MeanUp: 5, MeanDown: 1},
			},
		}
		nw, err := NewNetwork(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(10)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("channel run not deterministic:\n  a=%+v\n  b=%+v", a, b)
	}
}

func TestChannelReactiveRoundsCompose(t *testing.T) {
	// The reactive scheme has its own beacon path; loss + delay must thread
	// through it too without deadlock or lost selections.
	model := connectedStatic(t, 100, 80, 10)
	cfg := Config{
		Protocol: topology.RNG{}, FloodRate: 10, Seed: 3,
		Mech: Mechanisms{Reactive: true, Buffer: 20},
	}
	cfg.Channel.Loss = channel.LossConfig{Rate: 0.1}
	cfg.Channel.Delay = channel.DelayConfig{Max: 0.02}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Floods == 0 || res.HelloTx == 0 {
		t.Fatalf("reactive channel run produced no activity: %+v", res)
	}
	if res.Connectivity < 0.5 {
		t.Errorf("reactive with mild loss: connectivity %.4f suspiciously low", res.Connectivity)
	}
}

func TestChannelConfigConflicts(t *testing.T) {
	model := connectedStatic(t, 100, 20, 5)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"double churn", func() Config {
			c := Config{Protocol: topology.RNG{}, Seed: 1}
			c.Churn = ChurnConfig{MeanUp: 5, MeanDown: 1}
			c.Channel.Churn = channel.ChurnConfig{MeanUp: 5, MeanDown: 1}
			return c
		}()},
		{"delay with collision MAC", func() Config {
			c := Config{Protocol: topology.RNG{}, Seed: 1}
			c.Radio.TxDuration = 0.001
			c.Channel.Delay = channel.DelayConfig{Max: 0.05}
			return c
		}()},
		{"bad loss rate", func() Config {
			c := Config{Protocol: topology.RNG{}, Seed: 1}
			c.Channel.Loss = channel.LossConfig{Rate: 1.5}
			return c
		}()},
	}
	for _, tc := range cases {
		if _, err := NewNetwork(model, tc.cfg); err == nil {
			t.Errorf("%s: NewNetwork accepted an invalid config", tc.name)
		}
	}
}
