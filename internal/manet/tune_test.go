package manet

import (
	"fmt"
	"testing"

	"mstc/internal/topology"
)

// TestTuneExpiry is an exploratory harness (run with -run TestTuneExpiry -v)
// comparing neighbor-entry expiry settings; kept as documentation of the
// calibration that fixed the default.
func TestTuneExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run")
	}
	for _, expiry := range []float64{1.3, 1.75, 2.5} {
		for _, cfg := range []struct {
			name string
			c    Config
		}{
			{"RNG+buf10+VS@40", Config{Protocol: topology.RNG{}, FloodRate: 10, Seed: 7,
				HelloExpiry: expiry, Mech: Mechanisms{Buffer: 10, ViewSync: true}}},
			{"SPT2+buf10@40", Config{Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 10, Seed: 7,
				HelloExpiry: expiry, Mech: Mechanisms{Buffer: 10}}},
		} {
			model := waypointModel(t, 40, 42)
			nw, err := NewNetwork(model, cfg.c)
			if err != nil {
				t.Fatal(err)
			}
			res := nw.Run(30)
			fmt.Printf("expiry=%.2f %-18s conn=%.3f range=%.1f\n", expiry, cfg.name, res.Connectivity, res.AvgTxRange)
		}
	}
}
