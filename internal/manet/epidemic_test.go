package manet

import (
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/topology"
)

func TestEpidemicStaticConnectedDeliversInstantly(t *testing.T) {
	model := connectedStatic(t, 201, 80, 20)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RunEpidemic(20, EpidemicConfig{Window: 5, Messages: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3 {
		t.Fatalf("scored %d messages, want 3", res.Messages)
	}
	if res.Delivered < 0.999 {
		t.Errorf("static connected epidemic delivered %.3f, want 1", res.Delivered)
	}
	if res.MeanDelay > 0.001 {
		t.Errorf("static connected epidemic delay %.4f, want ~0 (delivered by the first flood)", res.MeanDelay)
	}
}

func TestEpidemicStaticPartitionedStaysPartitioned(t *testing.T) {
	// Two clusters far apart, no mobility: the epidemic cannot bridge.
	pts := make([]geom.Point, 0, 20)
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Pt(float64(i)*20, 0))
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Pt(float64(i)*20, 890))
	}
	model := mobility.NewStatic(arena, pts, 20)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RunEpidemic(20, EpidemicConfig{Window: 5, Messages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Each message reaches only its own 10-node cluster: 9 of 19 others.
	want := 9.0 / 19.0
	if res.Delivered < want-0.01 || res.Delivered > want+0.01 {
		t.Errorf("partitioned epidemic delivered %.3f, want ~%.3f", res.Delivered, want)
	}
}

func TestEpidemicBridgesPartitionsUnderMobility(t *testing.T) {
	// MST under mobility has terrible instantaneous connectivity, but
	// store-carry-forward with a bounded window should deliver far more —
	// the paper's future-work "weak connectivity with bounded delay".
	model := waypointModel(t, 20, 301)
	flood, err := NewNetwork(model, Config{
		Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fres := flood.Run(40)

	epi, err := NewNetwork(model, Config{
		Protocol: topology.MST{Range: 250}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := epi.RunEpidemic(40, EpidemicConfig{Window: 10, Messages: 5})
	if err != nil {
		t.Fatal(err)
	}
	if eres.Delivered <= fres.Connectivity+0.1 {
		t.Errorf("epidemic (%.3f) should far exceed instantaneous flooding (%.3f)",
			eres.Delivered, fres.Connectivity)
	}
	if eres.MeanDelay <= 0 || eres.MeanDelay >= 10 {
		t.Errorf("mean delay %.3f outside (0, window)", eres.MeanDelay)
	}
}

func TestEpidemicDelayShrinksWithWindowlessness(t *testing.T) {
	// A wider delivery window can only increase the delivered fraction.
	model := waypointModel(t, 20, 303)
	run := func(window float64) float64 {
		nw, err := NewNetwork(model, Config{Protocol: topology.MST{Range: 250}, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.RunEpidemic(40, EpidemicConfig{Window: window, Messages: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered
	}
	short, long := run(2), run(15)
	if long < short {
		t.Errorf("longer window delivered less: %.3f vs %.3f", long, short)
	}
}

func TestEpidemicValidation(t *testing.T) {
	model := connectedStatic(t, 205, 10, 30)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RunEpidemic(30, EpidemicConfig{Window: 0, Messages: 1}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := nw.RunEpidemic(30, EpidemicConfig{Window: 5, Messages: 0}); err == nil {
		t.Error("zero messages accepted")
	}
	if _, err := nw.RunEpidemic(30, EpidemicConfig{Window: 5, Check: -1, Messages: 1}); err == nil {
		t.Error("negative check accepted")
	}
	if _, err := nw.RunEpidemic(3, EpidemicConfig{Window: 5, Messages: 1}); err == nil {
		t.Error("duration shorter than warmup+window accepted")
	}
}
