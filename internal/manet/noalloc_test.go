package manet

import (
	"reflect"
	"testing"

	"mstc/internal/channel"
	"mstc/internal/lint"
	"mstc/internal/sim"
	"mstc/internal/topology"
	"mstc/internal/traffic"
)

// TestNoallocAnnotationsConform pins this package's //manet:noalloc
// annotations — the pooled delivery actors and the hello scheduling path —
// with testing.AllocsPerRun over windows of engine time. The annotated
// methods cannot run in isolation (they are event callbacks), so the
// measured unit is the whole steady-state event loop that exercises them:
// delayed hello deliveries (helloDelivery.Act via scheduleHellos) and a
// recycled flood probe (delivery.Act via transmit). After a warm-up that
// grows every pool and scratch buffer, advancing simulated time must
// allocate nothing.
func TestNoallocAnnotationsConform(t *testing.T) {
	annotated, err := lint.NoallocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"Network.forwardData", "Network.scheduleHellos", "delLess",
		"delivery.Act", "domainCtx.popDel", "domainCtx.pushDel",
		"helloDelivery.Act", "parRun.processDomain", "parRun.processFloodScan",
		"parRun.processRecord", "parRun.processSegment", "parRun.processSettle",
		"trafficDelivery.Act", "trafficState.olsrNextHop",
	}
	if !reflect.DeepEqual(annotated, want) {
		t.Fatalf("//manet:noalloc set changed: got %v, want %v — update this conformance test with the new path", annotated, want)
	}

	const n = 48
	model := connectedStatic(t, 100, n, 1e9)
	cfg := Config{Protocol: topology.RNG{}, Seed: 7}
	// A bounded channel delay routes every hello through scheduleHellos and
	// the pooled helloDelivery actors (the TxDuration==0 direct path would
	// bypass them).
	cfg.Channel.Delay = channel.DelayConfig{Max: 0.02}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror Run's non-reactive scheduling: per-node hello beacons...
	for _, nd := range nw.nodes {
		nd := nd
		first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
		nw.eng.Every(first, nd.interval, func(now sim.Time) {
			nw.sendHello(nd, now)
		})
	}
	// ...plus a flood driver that recycles one probe, so the only per-flood
	// cost left is the pooled delivery path under test.
	fl := &flood{accepted: make([]bool, n)}
	src := 0
	nw.eng.Every(0.5, 0.2, func(now sim.Time) {
		for i := range fl.accepted {
			fl.accepted[i] = false
		}
		fl.src = src % n
		src++
		fl.accepted[fl.src] = true
		fl.count = 1
		nw.transmit(fl, fl.src, now)
	})

	// Warm up: grow delivery pools, hello tables, scratch buffers and the
	// event heap to their steady-state footprint.
	deadline := sim.Time(8)
	nw.eng.Run(deadline)

	if nw.helloTx == 0 || nw.freeDel == nil || nw.freeHello == nil {
		t.Fatalf("warm-up did not exercise the annotated paths: helloTx=%d freeDel=%v freeHello=%v",
			nw.helloTx, nw.freeDel != nil, nw.freeHello != nil)
	}

	events := 0
	step := func() {
		deadline += 0.25
		events += nw.eng.Run(deadline)
	}
	if allocs := testing.AllocsPerRun(80, step); allocs != 0 {
		t.Errorf("steady-state event loop: %.2f allocs per %.2fs window, want 0", allocs, 0.25)
	}
	if events == 0 {
		t.Fatal("measured windows executed no events; the conformance run is vacuous")
	}
}

// TestTrafficSteadyStateAllocs pins the traffic forwarding hot path
// (//manet:noalloc on trafficDelivery.Act and Network.forwardData): on a
// static network with AODV routes discovered and kept warm by the data
// stream itself, advancing the event loop — CBR emission, per-hop relay,
// route-table lookup and refresh, pooled deliveries — must allocate
// nothing.
func TestTrafficSteadyStateAllocs(t *testing.T) {
	const n = 48
	model := connectedStatic(t, 100, n, 1e9)
	cfg := Config{Protocol: topology.RNG{}, Seed: 7}
	cfg.Traffic = traffic.Config{Mode: traffic.AODV, Flows: 6, Rate: 8}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror Run's scheduling: hello beacons plus the traffic subsystem,
	// with a horizon far beyond the measured windows so the drain guard
	// never stops emission.
	for _, nd := range nw.nodes {
		nd := nd
		first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
		nw.eng.Every(first, nd.interval, func(now sim.Time) {
			nw.sendHello(nd, now)
		})
	}
	nw.startTraffic(1e9)

	// Warm up: discoveries complete, pools and the event heap grow to
	// their steady-state footprint.
	deadline := sim.Time(12)
	nw.eng.Run(deadline)
	ts := nw.traf
	if ts.delivered == 0 || ts.freeData == nil {
		t.Fatalf("warm-up did not exercise the data path: delivered=%d pool=%v",
			ts.delivered, ts.freeData != nil)
	}

	before := ts.delivered
	events := 0
	step := func() {
		deadline += 0.25
		events += nw.eng.Run(deadline)
	}
	if allocs := testing.AllocsPerRun(80, step); allocs != 0 {
		t.Errorf("traffic steady state: %.2f allocs per %.2fs window, want 0", allocs, 0.25)
	}
	if events == 0 || ts.delivered == before {
		t.Fatalf("measured windows delivered no packets (events=%d, delivered=%d→%d); the measurement is vacuous",
			events, before, ts.delivered)
	}
}

// TestParallelStepNoalloc pins the region-parallel hot path (//manet:noalloc
// on parRun.processDomain and parRun.processRecord): after warm-up, a full
// synchronization window — batched resolve, domain assignment, record
// dispatch, and the inline single-worker barrier — must allocate nothing.
func TestParallelStepNoalloc(t *testing.T) {
	model := parWaypoint(t, 48, 20, 60, 5)
	cfg := Config{Protocol: topology.RNG{}, Domains: 2, ParallelWorkers: 1, Seed: 7}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the parallel clock directly, with no engine fences scheduled:
	// every step is one pure hello window ending in a barrier.
	pr := nw.newParRun()
	defer pr.close()
	const horizon = 1e9
	for i := 0; i < 8; i++ { // warm up buffers, tables, selection scratch
		pr.step(horizon)
	}
	if nw.helloTx == 0 {
		t.Fatal("warm-up dispatched no hellos; the measurement is vacuous")
	}
	before := nw.helloTx
	if allocs := testing.AllocsPerRun(60, func() { pr.step(horizon) }); allocs != 0 {
		t.Errorf("parallel window: %.2f allocs/run in steady state, want 0", allocs)
	}
	if nw.helloTx == before {
		t.Fatal("measured windows dispatched no hellos; the measurement is vacuous")
	}
}
