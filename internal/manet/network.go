package manet

import (
	"math"

	"mstc/internal/cds"
	"mstc/internal/channel"
	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/hello"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/sim"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

// node is the per-node protocol state.
type node struct {
	id            int
	interval      float64 // fixed per-node Hello interval
	version       uint64  // next Hello version
	advertisedPos geom.Point
	advertisedAt  float64
	table         *hello.Table
	ownLen        int                         // live entries in ownHist
	ownHist       [ownHistDepth]hello.Message // own recent advertisements, newest first
	logical       []int                       // current logical neighbor ids (ascending)
	isLogical     []bool                      // membership mask, len = n
	actualRange   float64
	txRange       float64 // actual + buffer, clamped
	cdsMarked     bool    // own Wu-Li marked status (CDSForward mechanism)
	downUntil     float64 // churn: node is failed until this instant
	cache         selCache
}

// isDown reports whether the node is failed at time t.
func (nd *node) isDown(t float64) bool { return t < nd.downUntil }

// ownHistDepth bounds the per-node history of own advertisements kept for
// pinned-version (proactive) selection.
const ownHistDepth = 4

func (nd *node) recordOwn(msg hello.Message) {
	copy(nd.ownHist[1:], nd.ownHist[:ownHistDepth-1])
	nd.ownHist[0] = msg
	if nd.ownLen < ownHistDepth {
		nd.ownLen++
	}
}

// ownAsOf returns the node's newest advertisement with version <= v, falling
// back to the oldest stored one.
func (nd *node) ownAsOf(v uint64) hello.Message {
	for _, m := range nd.ownHist[:nd.ownLen] {
		if m.Version <= v {
			return m
		}
	}
	if nd.ownLen > 0 {
		return nd.ownHist[nd.ownLen-1]
	}
	return hello.Message{From: nd.id, Pos: nd.advertisedPos}
}

// Selection cache modes: one per distinct view-construction path. The modes
// never share entries — a node's cache holds the result of whichever path
// ran last.
const (
	selModeLatest    = uint8(iota + 1) // updateSelection: latest messages
	selModeVersioned                   // selectFromVersion: one exact version
	selModeAsOf                        // selectAsOf: newest version <= pin
)

// selCache memoizes one node's last selection, keyed by an O(1) fingerprint
// of the view it was computed from: the hello table's mutation counter plus
// an expiry horizon (the table's visible contents are provably unchanged
// while the counter holds and now stays within [filledAt, stableUntil] —
// expired entries can only revive through Observe, which bumps the counter,
// and simulation time is monotone), the node's own view position, and the
// mode discriminant with its pinned version. On a hit the selected set is
// replayed verbatim; only the transmission range is recomputed, from the
// node's current physical position against the cached neighbor positions —
// exactly what ActualRange computes on the miss path.
type selCache struct {
	mode        uint8
	tableVer    uint64
	pin         uint64 // version (reactive) / pin (proactive); 0 for latest
	selfPos     geom.Point
	filledAt    float64
	stableUntil float64
	sel         []int
	selPos      []geom.Point // cached positions of the selected neighbors
}

// positionSource resolves a node's exact position at a simulated instant.
// The serial engine's selection context reads positions through the radio
// medium (whose per-instant memo fronts the shared leg cursor); each
// parallel domain context reads through its own mobility.Cursor. Both
// resolve from the same immutable trajectory legs, so the answers are
// bit-identical — the interface only decouples who owns the mutable scan
// state.
type positionSource interface {
	PositionAt(id int, t float64) geom.Point
}

// selCtx is the logical-neighbor selection machinery plus the scratch it
// runs on. The serial engine embeds one in the Network (all events share
// it — the engine is single-goroutine); the region-parallel engine gives
// every domain its own, so concurrent domain workers never share scratch.
// Nothing built from these buffers outlives the call that filled it
// (selectors do not retain view slices, and anything stored — logical
// sets, caches — is copied out into node-owned storage).
type selCtx struct {
	cfg *Config
	pos positionSource

	msgBuf     []hello.Message     // Table.*Into scratch
	nbrBuf     []topology.NodeInfo // View.Neighbors scratch
	multiBuf   []topology.MultiNodeInfo
	posBuf     []geom.Point // flat backing for MultiNodeInfo.Positions
	histBuf    []hello.Message
	selfPosBuf []geom.Point
	selBuf     []int            // SelectInto output scratch
	scratch    topology.Scratch // protocol-kernel working storage
}

// Network is one simulation run. Build with NewNetwork, drive with Run.
type Network struct {
	cfg   Config
	model mobility.Model
	eng   *sim.Engine
	med   *radio.Medium
	rng   *xrand.Source
	ch    *channel.Model // non-ideal channel; nil = ideal
	nodes []*node

	floodSeq uint64 // origination counter; keys per-flood jitter/delay draws

	// accumulators
	floods        int
	deliverySum   float64
	rangeSum      float64
	rangeSamples  int
	logDegSum     float64
	phyDegSum     float64
	degSamples    int
	snapshotSum   float64
	snapshotCount int
	helloTx       int
	dataTx        int
	dataEnergy    float64
	helloEnergy   float64

	recvBuf []int

	// The serial selection context (promoted methods: nw.updateSelection
	// and friends). Parallel domain contexts live in parRun.
	selCtx

	cdsNbrOf   map[int][]int // reused cds.View.NeighborsOf
	cdsNbrBuf  []int
	cdsMarkBuf map[int]bool

	freeDel   *delivery      // freelist of pooled flood deliveries
	freeHello *helloDelivery // freelist of pooled delayed "Hello" deliveries

	traf *trafficState // traffic subsystem state; nil = disabled

	domGrid *radio.DomainGrid // region-parallel decomposition; nil = serial
	par     *parRun           // set while runParallel drives the run: floods route through the domain barriers
}

// NewNetwork builds a run over the given mobility model.
func NewNetwork(model mobility.Model, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	med, err := radio.NewMedium(model, cfg.Radio, root.Sub('r'))
	if err != nil {
		return nil, err
	}
	n := model.N()
	// The channel draws from its own substream root ('x'): the ideal
	// default builds no model and consumes nothing, and a non-ideal one
	// never perturbs the radio/network/hello streams.
	ch, err := channel.NewModel(cfg.Channel, n, root.Sub('x'))
	if err != nil {
		return nil, err
	}
	med.SetChannel(ch)
	nw := &Network{
		cfg:   cfg,
		model: model,
		eng:   sim.NewEngine(),
		med:   med,
		rng:   root.Sub('n'),
		ch:    ch,
		nodes: make([]*node, n),
	}
	nw.selCtx.cfg = &nw.cfg
	nw.selCtx.pos = med
	if cfg.Domains >= 1 {
		nw.domGrid, err = radio.NewDomainGrid(model.Arena(), cfg.Domains)
		if err != nil {
			return nil, err
		}
	}
	k := 1
	if cfg.Mech.WeakK > 0 {
		k = cfg.Mech.WeakK
	}
	expiry := cfg.HelloExpiry
	if cfg.Mech.WeakK > 0 {
		// Weak consistency needs the k recent messages to stay usable for
		// the whole window they may be consulted in (Theorem 3).
		expiry = math.Max(expiry, float64(k+1)*cfg.HelloMax)
	}
	if cfg.Mech.Proactive {
		// Pinned-epoch lookups need a couple of versions of history and a
		// lifetime covering the pinned epoch plus the current one.
		k = 3
		expiry = math.Max(expiry, 3*cfg.HelloMax)
	}
	// Bulk-allocate the per-node state: one node array, one shared hello
	// table backing, one flat membership mask — O(1) allocations where the
	// per-node constructors cost O(n).
	backing := make([]node, n)
	tables := hello.NewTablesN(k, expiry, n, n)
	masks := make([]bool, n*n)
	// Logical neighbor sets are small (2-8 for every protocol in the
	// registry), so per-node selection storage — the live set plus the
	// cache's replay copy — comes from three shared backing arrays, each
	// handing every node a fixed-capacity window. A node outgrowing its
	// window falls back to a plain append reallocation, so the capacity is
	// a fast path, not a limit.
	const selCap = 8
	logBack := make([]int, n*selCap)
	selBack := make([]int, n*selCap)
	posBack := make([]geom.Point, n*selCap)
	for i := 0; i < n; i++ {
		sub := root.Sub('h', uint64(i))
		nd := &backing[i]
		nd.id = i
		nd.interval = sub.Uniform(cfg.HelloMin, cfg.HelloMax)
		nd.table = tables[i]
		nd.isLogical = masks[i*n : (i+1)*n : (i+1)*n]
		nd.logical = logBack[i*selCap : i*selCap : (i+1)*selCap]
		nd.cache.sel = selBack[i*selCap : i*selCap : (i+1)*selCap]
		nd.cache.selPos = posBack[i*selCap : i*selCap : (i+1)*selCap]
		nw.nodes[i] = nd
	}
	return nw, nil
}

// Engine exposes the event engine (for tests and custom instrumentation).
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Run executes the simulation for the given duration (seconds) and returns
// the aggregated result.
//
// With Config.Domains >= 1 (and a configuration the region-parallel engine
// supports — see parallelEligible) the "Hello" traffic runs through the
// domain-decomposed engine of parallel.go; everything else (floods, churn,
// sampling, snapshots) stays on the serial event engine as synchronization
// fences. Results are bit-identical either way.
func (nw *Network) Run(duration float64) Result {
	par := nw.parallelEligible()
	if nw.cfg.Mech.Reactive {
		if !par {
			nw.scheduleReactiveRounds()
		}
	} else if !par {
		for _, nd := range nw.nodes {
			nd := nd
			// First Hello at a uniform offset within one interval keeps
			// beacons asynchronous.
			//lint:ignore substream deliberate: Run/RunUnicast/RunEpidemic are mutually exclusive entry points sharing the 'f' hello-offset labels so hello timing is identical across traffic modes
			first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
			nw.eng.Every(first, nd.interval, func(now sim.Time) {
				nw.sendHello(nd, now)
			})
		}
	}
	// The fail/recover process serves two configurations with one schedule:
	// the legacy direct knob (Config.Churn, substream 'c' of the network
	// stream — unchanged draws, so pre-channel runs stay bit-identical) and
	// the channel's fault process, which draws from the channel's own
	// per-node substreams. Validation rejects configuring both.
	meanUp, meanDown := nw.cfg.Churn.MeanUp, nw.cfg.Churn.MeanDown
	churnRNG := func(id int) *xrand.Source { return nw.rng.Sub('c', uint64(id)) }
	if !nw.cfg.Churn.Enabled() && nw.ch.ChurnEnabled() {
		meanUp, meanDown = nw.ch.ChurnMeans()
		churnRNG = nw.ch.ChurnRNG
	}
	if meanUp > 0 && meanDown > 0 {
		for _, nd := range nw.nodes {
			nd := nd
			rng := churnRNG(nd.id)
			var fail func(now sim.Time)
			fail = func(now sim.Time) {
				down := rng.ExpFloat64() * meanDown
				nd.downUntil = now + down
				// Losing state on failure: the node reboots with an
				// empty neighbor table and no selection. Reset keeps the
				// table's mutation counter monotone, so selection-cache
				// entries from before the failure can never be replayed.
				nd.table.Reset(nw.cfg.HelloExpiry)
				nw.setSelection(nd, nil, 0)
				nw.eng.Schedule(now+down+rng.ExpFloat64()*meanUp, fail)
			}
			nw.eng.Schedule(rng.ExpFloat64()*meanUp, fail)
		}
	}
	if nw.cfg.FloodRate > 0 {
		// Warm-up: let every node beacon at least twice before probing.
		start := 2 * nw.cfg.HelloMax
		nw.eng.Every(start, 1/nw.cfg.FloodRate, func(now sim.Time) {
			if now+nw.cfg.FloodSettle <= duration {
				nw.originateFlood(now)
			}
		})
	}
	if nw.cfg.Traffic.Enabled() {
		nw.startTraffic(duration)
	}
	sampleStart := 2 * nw.cfg.HelloMax
	nw.eng.Every(sampleStart, 1/nw.cfg.SampleRate, func(now sim.Time) {
		nw.sampleMetrics(now)
	})
	if nw.cfg.SnapshotEvery > 0 {
		nw.eng.Every(sampleStart, nw.cfg.SnapshotEvery, func(now sim.Time) {
			nw.snapshotSum += nw.EffectiveDigraphAt(now).AvgReachability()
			nw.snapshotCount++
		})
	}
	if par {
		return nw.runParallel(duration)
	}
	nw.eng.Run(duration)
	return nw.result()
}

// parallelEligible reports whether the configuration can run on the
// region-parallel engine. Radio loss, channel loss and delay, reactive
// rounds, and flood forwarding are all covered: their random components
// are pure functions of each event's identity (or per-receiver chains
// replayed in chronological order), so domain barriers resolve them
// bit-identically to the serial engine. Three features remain ineligible,
// all because their "Hello"/packet processing consumes shared, globally
// ordered state that cannot be partitioned by receiver domain: the
// collision MAC's interference log (every transmission contends with
// every overlapping one, arena-wide), CDS forwarding (neighbor-list
// payloads built from the sender's table at send time travel in the
// packet and feed every receiver's marking state), and the traffic
// subsystem (route tables and link-state views mutate at arbitrary nodes
// on every reception, so packet order across domains is semantic). Such
// configurations silently use the serial engine (results are identical by
// construction, so the fallback is a performance property, not a semantic
// one).
func (nw *Network) parallelEligible() bool {
	if nw.cfg.Domains < 1 {
		return false
	}
	if nw.cfg.Radio.TxDuration > 0 || nw.cfg.Mech.CDSForward || nw.cfg.Traffic.Enabled() {
		return false
	}
	return true
}

// reactiveSettle is the reactive scheme's fixed settle offset after each
// round: the bounded flooding/broadcast delay of §4.1. Shared by the
// serial round scheduler and the parallel engine's settle passes.
const reactiveSettle = 0.05

// epoch returns the proactive scheme's global epoch index at time t:
// version numbers are derived from synchronized coarse timestamps, standing
// in for the paper's loosely synchronized clocks (§4.1).
func (nw *Network) epoch(t sim.Time) uint64 {
	return uint64(t/nw.cfg.HelloMax) + 1
}

// sendHello advertises node nd's current position to everyone within the
// normal range and refreshes nd's logical neighbor selection.
func (nw *Network) sendHello(nd *node, now sim.Time) {
	if nd.isDown(now) {
		return
	}
	pos := nw.med.PositionAt(nd.id, now)
	if nw.cfg.PosNoise > 0 {
		// Imprecise positioning: the node advertises (and reasons from) a
		// noisy estimate; the radio still transmits from the true spot.
		//lint:ignore substream deliberate: parallel.go's appendRecord derives the SAME 'p' labels — the derivation is pure and keyed by (node, instant), and the two engines are mutually exclusive per run
		noise := nw.rng.Sub('p', uint64(nd.id), uint64(now*1e6))
		pos = geom.Pt(pos.X+nw.cfg.PosNoise*noise.NormFloat64(),
			pos.Y+nw.cfg.PosNoise*noise.NormFloat64())
	}
	if nw.cfg.Mech.Proactive {
		nd.version = nw.epoch(now)
	} else {
		nd.version++
	}
	msg := hello.Message{From: nd.id, Pos: pos, SentAt: now, Version: nd.version}
	if nw.cfg.Mech.CDSForward {
		nd.cdsMarked = nw.wuLiMarked(nd, now)
		msg.Marked = nd.cdsMarked
		nw.msgBuf = nd.table.LatestInto(nw.msgBuf[:0], now)
		// The neighbor list travels in the stored message, so it must be
		// freshly allocated (exact-sized) rather than scratch-backed.
		msg.Neighbors = make([]int, 0, len(nw.msgBuf))
		for _, m := range nw.msgBuf {
			msg.Neighbors = append(msg.Neighbors, m.From)
		}
	}
	if nw.traf != nil {
		// Traffic excludes CDSForward, so the assignment never clobbers a
		// CDS payload; outside OLSR mode it is nil over nil.
		msg.Neighbors, msg.MPRs = nw.traf.helloPayload(nd, now)
	}
	nd.recordOwn(msg)
	nd.advertisedPos = pos
	nd.advertisedAt = now
	nw.helloTx++
	nw.helloEnergy++ // hellos always use the normal (full) power
	tx, receivers := nw.med.Transmit(now, nd.id, nw.cfg.NormalRange, nw.recvBuf[:0])
	nw.recvBuf = receivers
	if dur := nw.med.TxDuration(); dur > 0 {
		// Collision MAC: reception resolves after the airtime, when every
		// interfering transmission is known.
		ids := make([]int, len(receivers))
		copy(ids, receivers)
		nw.eng.ScheduleIn(dur, func(at sim.Time) {
			for _, rid := range ids {
				if !nw.nodes[rid].isDown(at) && !nw.med.Collides(tx, rid) {
					nw.nodes[rid].table.Observe(msg)
				}
			}
		})
	} else if nw.ch.DelayEnabled() {
		// Non-ideal channel: each reception resolves after its own bounded
		// random delay (≤ Δ″), as a pooled actor — the delivery path of
		// Theorem 5's delayed-message regime.
		nw.scheduleHellos(msg, receivers)
	} else {
		for _, rid := range receivers {
			if !nw.nodes[rid].isDown(now) {
				nw.nodes[rid].table.Observe(msg)
			}
		}
	}
	nw.updateSelection(nd, now, pos)
}

// scheduleReactiveRounds implements the reactive strong-consistency scheme:
// every node beacons at the start of each common interval with a shared
// version; selection happens a fixed settle time later using only
// same-version messages.
func (nw *Network) scheduleReactiveRounds() {
	interval := (nw.cfg.HelloMin + nw.cfg.HelloMax) / 2
	const settle = reactiveSettle
	round := uint64(0)
	nw.eng.Every(0, interval, func(now sim.Time) {
		round++
		ver := round
		for _, nd := range nw.nodes {
			if nw.ch != nil && nd.isDown(now) {
				continue // channel churn: a failed node misses its round
			}
			pos := nw.med.PositionAt(nd.id, now)
			nd.version = ver
			nd.advertisedPos = pos
			nd.advertisedAt = now
			msg := hello.Message{From: nd.id, Pos: pos, SentAt: now, Version: ver}
			nw.helloTx++
			nw.helloEnergy++
			if nw.ch == nil {
				// Ideal channel: the original synchronous delivery, kept on
				// its own path so pre-channel runs stay bit-identical.
				nw.recvBuf = nw.med.ReceiversAt(now, nd.id, nw.cfg.NormalRange, nw.recvBuf[:0])
				for _, rid := range nw.recvBuf {
					nw.nodes[rid].table.Observe(msg)
				}
				continue
			}
			_, receivers := nw.med.Transmit(now, nd.id, nw.cfg.NormalRange, nw.recvBuf[:0])
			nw.recvBuf = receivers
			if nw.ch.DelayEnabled() {
				nw.scheduleHellos(msg, receivers)
				continue
			}
			for _, rid := range receivers {
				if !nw.nodes[rid].isDown(now) {
					nw.nodes[rid].table.Observe(msg)
				}
			}
		}
		nw.eng.ScheduleIn(settle, func(sel sim.Time) {
			for _, nd := range nw.nodes {
				nw.selectFromVersion(nd, sel, ver)
			}
		})
	})
}

// wuLiMarked computes nd's Wu-Li status from its 2-hop view — marked iff
// two known neighbors are not directly connected per their advertised
// neighbor lists — then applies Rule-1/2 pruning against the neighbors'
// advertised marked flags (references [34]/[35]). The cds.View map and the
// marked-flag map are network-owned scratch cleared per call; cds reads
// them purely, so nothing escapes the call.
func (nw *Network) wuLiMarked(nd *node, now sim.Time) bool {
	nw.msgBuf = nd.table.LatestInto(nw.msgBuf[:0], now)
	if nw.cdsNbrOf == nil {
		nw.cdsNbrOf = make(map[int][]int, len(nw.msgBuf))
		nw.cdsMarkBuf = make(map[int]bool, len(nw.msgBuf))
	}
	clear(nw.cdsNbrOf)
	clear(nw.cdsMarkBuf)
	nw.cdsNbrBuf = nw.cdsNbrBuf[:0]
	for _, m := range nw.msgBuf {
		nw.cdsNbrBuf = append(nw.cdsNbrBuf, m.From)
		nw.cdsNbrOf[m.From] = m.Neighbors
		nw.cdsMarkBuf[m.From] = m.Marked
	}
	v := cds.View{Self: nd.id, Neighbors: nw.cdsNbrBuf, NeighborsOf: nw.cdsNbrOf}
	if !cds.Marked(v) {
		return false
	}
	isMarked := func(x int) bool { return nw.cdsMarkBuf[x] }
	if cds.Rule1(v, isMarked) || cds.Rule2(v, isMarked) {
		return false
	}
	return true
}

// updateSelection recomputes nd's logical neighbors and transmission range
// from its current table. Selection uses selfPos as nd's own position (the
// view-synchronization mechanism passes the previously *advertised*
// position here so nd's decisions agree with its neighbors' views), while
// the transmission range is always computed from nd's current physical
// position — the radio transmits from wherever the node actually is.
func (sc *selCtx) updateSelection(nd *node, now sim.Time, selfPos geom.Point) {
	if sc.cfg.Mech.WeakK > 0 {
		sc.selectWeak(nd, now, selfPos)
		return
	}
	if sc.replayCached(nd, now, selModeLatest, 0, selfPos) {
		return
	}
	sc.msgBuf = nd.table.LatestInto(sc.msgBuf[:0], now)
	sc.nbrBuf = sc.nbrBuf[:0]
	for _, m := range sc.msgBuf {
		sc.nbrBuf = append(sc.nbrBuf, topology.NodeInfo{ID: m.From, Pos: m.Pos})
	}
	v := topology.View{Self: topology.NodeInfo{ID: nd.id, Pos: selfPos}, Neighbors: sc.nbrBuf}
	v = v.EnsureCanon()
	sc.selBuf = topology.SelectInto(sc.cfg.Protocol, v, sc.selBuf[:0], &sc.scratch)
	sel := sc.selBuf
	sc.fillCache(nd, now, selModeLatest, 0, selfPos, v, sel)
	cur := sc.pos.PositionAt(nd.id, now)
	if cur != selfPos {
		v.Self.Pos = cur
	}
	sc.applySelection(nd, v, sel)
}

// selectFromVersion is updateSelection restricted to messages of one
// version (reactive scheme).
func (sc *selCtx) selectFromVersion(nd *node, now sim.Time, ver uint64) {
	if sc.replayCached(nd, now, selModeVersioned, ver, nd.advertisedPos) {
		return
	}
	sc.msgBuf = nd.table.VersionedInto(sc.msgBuf[:0], ver, now)
	sc.nbrBuf = sc.nbrBuf[:0]
	for _, m := range sc.msgBuf {
		sc.nbrBuf = append(sc.nbrBuf, topology.NodeInfo{ID: m.From, Pos: m.Pos})
	}
	v := topology.View{Self: topology.NodeInfo{ID: nd.id, Pos: nd.advertisedPos}, Neighbors: sc.nbrBuf}
	v = v.EnsureCanon()
	sc.selBuf = topology.SelectInto(sc.cfg.Protocol, v, sc.selBuf[:0], &sc.scratch)
	sel := sc.selBuf
	sc.fillCache(nd, now, selModeVersioned, ver, nd.advertisedPos, v, sel)
	v.Self.Pos = sc.pos.PositionAt(nd.id, now)
	sc.applySelection(nd, v, sel)
}

// selectAsOf re-selects nd's logical neighbors from its local view pinned
// to version v: each neighbor resolves to its newest advertisement with
// version <= v, and nd's own position is its own advertisement as of v.
// Every node relaying a packet pinned to v resolves shared neighbors to the
// same messages, giving the consistent views of the proactive scheme.
func (sc *selCtx) selectAsOf(nd *node, now sim.Time, v uint64) {
	own := nd.ownAsOf(v)
	if sc.replayCached(nd, now, selModeAsOf, v, own.Pos) {
		return
	}
	sc.msgBuf = nd.table.AsOfInto(sc.msgBuf[:0], v, now)
	sc.nbrBuf = sc.nbrBuf[:0]
	for _, m := range sc.msgBuf {
		sc.nbrBuf = append(sc.nbrBuf, topology.NodeInfo{ID: m.From, Pos: m.Pos})
	}
	view := topology.View{Self: topology.NodeInfo{ID: nd.id, Pos: own.Pos}, Neighbors: sc.nbrBuf}
	view = view.EnsureCanon()
	sc.selBuf = topology.SelectInto(sc.cfg.Protocol, view, sc.selBuf[:0], &sc.scratch)
	sel := sc.selBuf
	sc.fillCache(nd, now, selModeAsOf, v, own.Pos, view, sel)
	view.Self.Pos = sc.pos.PositionAt(nd.id, now)
	sc.applySelection(nd, view, sel)
}

// replayCached replays nd's memoized selection when the cached fingerprint
// still describes the view the caller would build: same construction mode
// and pinned version, same own position, an unchanged table mutation
// counter, and a query time inside the cached validity window (at or after
// the fill, at or before the expiry horizon — Table.StableUntil guarantees
// every table query answers identically across that window). The selected
// set is replayed as-is; the transmission range is recomputed from the
// node's current physical position over the cached neighbor positions,
// which is precisely ActualRange of the miss path's final view.
func (sc *selCtx) replayCached(nd *node, now sim.Time, mode uint8, pin uint64, selfPos geom.Point) bool {
	c := &nd.cache
	if sc.cfg.NoSelectionCache || c.mode != mode || c.pin != pin ||
		c.tableVer != nd.table.Version() || c.selfPos != selfPos ||
		now < c.filledAt || now > c.stableUntil {
		return false
	}
	cur := sc.pos.PositionAt(nd.id, now)
	r := 0.0
	for _, p := range c.selPos {
		if d := cur.Dist(p); d > r {
			r = d
		}
	}
	sc.setSelection(nd, c.sel, r)
	return true
}

// fillCache records the just-computed selection with its view fingerprint.
// Neighbor positions are copied out of the (scratch-backed) view for the
// hit path's range recomputation; sel and v.Neighbors both ascend by id, so
// a merge scan pairs them in one pass.
func (sc *selCtx) fillCache(nd *node, now sim.Time, mode uint8, pin uint64, selfPos geom.Point, v topology.View, sel []int) {
	if sc.cfg.NoSelectionCache {
		return
	}
	c := &nd.cache
	c.mode, c.pin, c.selfPos = mode, pin, selfPos
	c.tableVer = nd.table.Version()
	c.filledAt = now
	c.stableUntil = nd.table.StableUntil(now)
	c.sel = append(c.sel[:0], sel...)
	c.selPos = c.selPos[:0]
	j := 0
	for _, id := range sel {
		for j < len(v.Neighbors) && v.Neighbors[j].ID < id {
			j++
		}
		if j < len(v.Neighbors) && v.Neighbors[j].ID == id {
			c.selPos = append(c.selPos, v.Neighbors[j].Pos)
		}
	}
}

// selectWeak recomputes nd's selection under weak consistency: the view
// carries up to WeakK recent positions per neighbor and nd's own recent
// advertised positions (approximated by selfPos, the advertisement the
// caller is selecting against — nodes do not retain their own history
// beyond it — plus the current position, which is what the next Hello will
// advertise). selfPos arrives as a parameter rather than being read from
// nd.advertisedPos: the region-parallel barrier replays beacons after
// dispatch has already overwritten advertisedPos with a later beacon of the
// same window, and it must select against what THIS beacon advertised.
func (sc *selCtx) selectWeak(nd *node, now sim.Time, selfPos geom.Point) {
	sc.selfPosBuf = append(sc.selfPosBuf[:0], selfPos, sc.pos.PositionAt(nd.id, now))
	self := topology.MultiNodeInfo{ID: nd.id, Positions: sc.selfPosBuf}
	sc.msgBuf = nd.table.LatestInto(sc.msgBuf[:0], now)
	// Pre-grow the flat position buffer so per-neighbor subslices stay
	// valid while later neighbors append to it.
	if need := len(sc.msgBuf) * nd.table.K(); cap(sc.posBuf) < need {
		//lint:ignore noalloc amortized growth: the buffer is retained across calls; TestSteadyStateAllocs pins the steady state at zero
		sc.posBuf = make([]geom.Point, 0, 2*need)
	}
	sc.posBuf = sc.posBuf[:0]
	sc.multiBuf = sc.multiBuf[:0]
	for _, m := range sc.msgBuf {
		start := len(sc.posBuf)
		sc.histBuf = nd.table.HistoryInto(sc.histBuf[:0], m.From, now)
		for _, h := range sc.histBuf {
			sc.posBuf = append(sc.posBuf, h.Pos)
		}
		sc.multiBuf = append(sc.multiBuf, topology.MultiNodeInfo{ID: m.From, Positions: sc.posBuf[start:len(sc.posBuf):len(sc.posBuf)]})
	}
	mv := topology.MultiView{Self: self, Neighbors: sc.multiBuf}
	sc.selBuf = topology.SelectWeakInto(sc.cfg.Weak, mv, sc.selBuf[:0], &sc.scratch)
	sel := sc.selBuf
	// Range must cover the farthest stored position of every selected
	// neighbor (conservative). sel and mv.Neighbors both ascend by id, so
	// a single merge scan finds each selected neighbor — O(sel + nbrs)
	// instead of the quadratic per-selection rescan.
	r := 0.0
	j := 0
	for _, id := range sel {
		for j < len(mv.Neighbors) && mv.Neighbors[j].ID < id {
			j++
		}
		if j < len(mv.Neighbors) && mv.Neighbors[j].ID == id {
			_, dMax := topology.CostRange(self.Positions[1:2], mv.Neighbors[j].Positions, topology.DistanceCost)
			if dMax > r {
				r = dMax
			}
		}
	}
	sc.setSelection(nd, sel, r)
}

func (sc *selCtx) applySelection(nd *node, v topology.View, sel []int) {
	sc.setSelection(nd, sel, topology.ActualRange(v, sel))
}

func (sc *selCtx) setSelection(nd *node, sel []int, actual float64) {
	for _, id := range nd.logical {
		nd.isLogical[id] = false
	}
	nd.logical = append(nd.logical[:0], sel...)
	for _, id := range nd.logical {
		nd.isLogical[id] = true
	}
	nd.actualRange = actual
	nd.txRange = topology.ExtendedRange(actual, sc.cfg.Mech.Buffer, sc.cfg.NormalRange)
}

// sampleMetrics records the per-node transmission range and degrees.
func (nw *Network) sampleMetrics(now sim.Time) {
	for _, nd := range nw.nodes {
		nw.rangeSum += nd.txRange
		nw.rangeSamples++
		nw.logDegSum += float64(len(nd.logical))
		nw.recvBuf = nw.med.ReceiversAt(now, nd.id, nd.txRange, nw.recvBuf[:0])
		nw.phyDegSum += float64(len(nw.recvBuf))
		nw.degSamples++
	}
}

// EffectiveDigraphAt builds the directed effective topology at time t:
// arc u->v iff v is within u's current transmission range and v would
// accept u's packet (logical membership or the physical-neighbor
// mechanism).
func (nw *Network) EffectiveDigraphAt(t float64) *graph.Directed {
	d := graph.NewDirected(len(nw.nodes))
	buf := make([]int, 0, 64)
	for _, nd := range nw.nodes {
		buf = nw.med.ReceiversAt(t, nd.id, nd.txRange, buf[:0])
		for _, v := range buf {
			if nw.cfg.Mech.PhysicalNeighbors || nd.isLogical[v] {
				d.AddArc(nd.id, v)
			}
		}
	}
	return d
}

// LogicalNeighbors returns node id's current logical neighbor ids.
func (nw *Network) LogicalNeighbors(id int) []int {
	out := make([]int, len(nw.nodes[id].logical))
	copy(out, nw.nodes[id].logical)
	return out
}

// TxRange returns node id's current transmission range (with buffer).
func (nw *Network) TxRange(id int) float64 { return nw.nodes[id].txRange }

// ActualRange returns node id's current pre-buffer transmission range.
func (nw *Network) ActualRange(id int) float64 { return nw.nodes[id].actualRange }

// result assembles the Run output.
func (nw *Network) result() Result {
	res := Result{
		Protocol: nw.cfg.ProtocolName(),
		Floods:   nw.floods,
	}
	if nw.floods > 0 {
		res.Connectivity = nw.deliverySum / float64(nw.floods)
	}
	if nw.rangeSamples > 0 {
		res.AvgTxRange = nw.rangeSum / float64(nw.rangeSamples)
	}
	if nw.degSamples > 0 {
		res.AvgLogicalDegree = nw.logDegSum / float64(nw.degSamples)
		res.AvgPhysicalDegree = nw.phyDegSum / float64(nw.degSamples)
	}
	if nw.snapshotCount > 0 {
		res.SnapshotConnectivity = nw.snapshotSum / float64(nw.snapshotCount)
		res.Snapshots = nw.snapshotCount
	}
	res.HelloTx = nw.helloTx
	res.DataTx = nw.dataTx
	res.DataEnergy = nw.dataEnergy
	res.HelloEnergy = nw.helloEnergy
	if nw.traf != nil {
		res.Traffic = nw.traf.result()
	}
	return res
}

// Result aggregates one run.
type Result struct {
	// Protocol is the display name of the protocol under test.
	Protocol string
	// Connectivity is the mean flood delivery ratio (weak connectivity).
	Connectivity float64
	// Floods is the number of scored floods.
	Floods int
	// AvgTxRange is the time- and node-averaged transmission range (m),
	// including the buffer zone.
	AvgTxRange float64
	// AvgLogicalDegree is the mean logical neighbor count.
	AvgLogicalDegree float64
	// AvgPhysicalDegree is the mean count of nodes inside the
	// transmission range.
	AvgPhysicalDegree float64
	// SnapshotConnectivity is the mean strict (snapshot) directed
	// reachability, if sampled.
	SnapshotConnectivity float64
	// Snapshots is the number of strict-connectivity samples.
	Snapshots int
	// HelloTx counts "Hello" transmissions (control overhead).
	HelloTx int
	// DataTx counts flood-packet transmissions (data overhead: one per
	// node that originated or forwarded a probe).
	DataTx int
	// DataEnergy is the normalized transmission energy spent on data
	// packets: each transmission with range r costs
	// (r/NormalRange)^EnergyAlpha, so an uncontrolled network spends
	// exactly 1.0 per transmission.
	DataEnergy float64
	// HelloEnergy is the energy spent on beaconing (always full power:
	// one unit per "Hello").
	HelloEnergy float64
	// Traffic aggregates the traffic subsystem, when Config.Traffic
	// enables it (Mode is "" otherwise).
	Traffic TrafficResult
	// Unicast aggregates the greedy-geographic probe workload when the
	// run was driven through RunUnicast (zero otherwise). Run itself
	// never fills it; the experiment layer copies the RunUnicast result
	// here so every workload shares one record type.
	Unicast UnicastResult
}
