package manet

import (
	"testing"

	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

// TestSelectionCacheTransparent is the differential proof behind the
// version-keyed selection cache: every metric of a run with the cache
// enabled equals the same run with NoSelectionCache set, bit for bit,
// across the mechanisms that exercise each cache key mode (latest,
// versioned, pinned-epoch) plus churn (table resets), position noise
// (distinct advertised positions) and weak selection (uncached path).
func TestSelectionCacheTransparent(t *testing.T) {
	model := func(seed uint64) mobility.Model {
		lo, hi := mobility.SpeedSetdest(20)
		m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
			N: 40, SpeedMin: lo, SpeedMax: hi, Horizon: 20,
		}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline", Config{Protocol: topology.MST{Range: 250}}},
		{"buffer+viewsync+noise", Config{
			Protocol: topology.RNG{},
			Mech:     Mechanisms{Buffer: 20, ViewSync: true},
			PosNoise: 15,
		}},
		{"reactive", Config{
			Protocol: topology.MST{Range: 250},
			Mech:     Mechanisms{Reactive: true},
		}},
		{"proactive", Config{
			Protocol: topology.MST{Range: 250},
			Mech:     Mechanisms{Proactive: true},
		}},
		{"weak", Config{
			Protocol: topology.MST{Range: 250},
			Weak:     topology.WeakMST{Range: 250},
			Mech:     Mechanisms{WeakK: 3},
		}},
		{"cds", Config{
			Protocol: topology.MST{Range: 250},
			Mech:     Mechanisms{PhysicalNeighbors: true, CDSForward: true},
		}},
		{"selfpruning", Config{
			Protocol: topology.MST{Range: 250},
			Mech:     Mechanisms{PhysicalNeighbors: true, SelfPruning: true},
		}},
		{"churn", Config{
			Protocol: topology.SPT{Alpha: 2, Range: 250},
			Churn:    ChurnConfig{MeanUp: 4, MeanDown: 1},
		}},
	}
	for _, tc := range cases {
		run := func(disable bool) Result {
			cfg := tc.cfg
			cfg.FloodRate = 10
			cfg.SnapshotEvery = 1
			cfg.Seed = 11
			cfg.NoSelectionCache = disable
			nw, err := NewNetwork(model(5), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return nw.Run(8)
		}
		cached, direct := run(false), run(true)
		if cached != direct {
			t.Errorf("%s: cached run diverged:\n  cached: %+v\n  direct: %+v", tc.name, cached, direct)
		}
	}
}
