package manet

// Region-parallel "Hello" execution. The arena is decomposed into a grid of
// spatial domains (radio.DomainGrid); simulated time advances in
// synchronization windows bounded by W = guard/(2·vmax) — the bounded-
// displacement horizon within which window-start domain assignments plus a
// guard halo provably cover every receiver (the same argument as the radio
// medium's staleness grid and the paper's buffer zone, Theorem 5). Each
// window runs in three phases:
//
//  1. Dispatch (serial): resolve all positions at window start in one
//     batched cursor sweep, assign ownership, generate one helloRecord per
//     due beacon, and enqueue each record to every domain its halo disc
//     can reach. All sender-side bookkeeping (version numbers, own-
//     history, advertised position, counters, position noise) happens
//     here, per node in that node's beacon order — NOT the merged
//     (time, sender) order, which is immaterial because bookkeeping
//     touches only sender-local state. Anything the barrier must read at a
//     beacon's own instant rather than the window's last — the advertised
//     position a later beacon of the same window overwrites — therefore
//     travels inside the record (msg.Pos), never through node fields.
//  2. Barrier (parallel): every domain scans its owned nodes against each
//     queued record, delivering to exact-distance receivers through their
//     per-receiver loss chains and re-selecting the sender's logical
//     neighbors in its owner domain. All state touched here is owned by
//     exactly one domain (receiver tables, sender selection) or read-only
//     for the window, so worker scheduling cannot reorder anything
//     observable — the deterministic-merge rule is simply "records in
//     (time, sender) order, per-node state only in its owner domain".
//  3. Fence (serial): the event engine drains everything else — floods,
//     churn, metric samples, snapshots — exactly as the serial engine
//     would, between windows.
//
// Results are bit-identical to the serial engine for any worker count and
// any domain grid; the experiment-level differential matrix in
// parallel_test.go proves it under the race detector. The only documented
// divergence is measure-zero: events at exactly equal float timestamps are
// merged by (time, sender/engine-first) — at mid-run fences and at the
// horizon alike — instead of the serial engine's scheduling sequence
// number, which can only matter when two independent continuous random
// draws collide exactly.

import (
	"math"
	"sort"

	"mstc/internal/geom"
	"mstc/internal/hello"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/sim"
)

// helloRecord is one dispatched beacon: the send instant, the sender, its
// exact transmit position, and the message as advertised (possibly noisy).
type helloRecord struct {
	at      float64
	sender  int
	truePos geom.Point
	msg     hello.Message
}

// domainCtx is the per-domain mutable state: a private position cursor, a
// private selection context (scratch + cursor-backed position source), and
// the receiver scratch list. Nothing in it is ever touched by another
// domain's worker.
type domainCtx struct {
	cur  *mobility.Cursor
	sel  selCtx
	recv []int
}

// parRun is one region-parallel execution of Network.Run.
type parRun struct {
	nw   *Network
	grid *radio.DomainGrid
	pool *sim.Regions

	cur  *mobility.Cursor // dispatcher-owned cursor (assignment + senders)
	doms []domainCtx

	nextHello []float64 // per-node next beacon instant (serial Every chain)
	nextDue   float64   // min over nextHello: cheap window-skip test
	records   []helloRecord
	posT      []geom.Point // window-start positions (batched resolve)
	domainOf  []int        // window-start ownership per node
	owned     [][]int      // per-domain owned node ids, ascending
	queues    [][]int32    // per-domain record indices, dispatch order

	window float64 // synchronization window length W (may be +Inf)
	haloR  float64 // NormalRange + grid guard
	r2     float64 // NormalRange² (exact receiver filter)
	t      float64 // parallel clock: hellos before t are processed
}

// newParRun builds the per-run parallel state. The per-node first-beacon
// offsets consume exactly the draws the serial scheduler would, so hello
// timing is bit-identical between engines.
func (nw *Network) newParRun() *parRun {
	n := len(nw.nodes)
	grid := nw.domGrid
	doms := grid.Domains()
	pr := &parRun{
		nw:        nw,
		grid:      grid,
		cur:       mobility.NewCursor(nw.model),
		doms:      make([]domainCtx, doms),
		nextHello: make([]float64, n),
		nextDue:   math.Inf(1),
		posT:      make([]geom.Point, 0, n),
		domainOf:  make([]int, 0, n),
		owned:     make([][]int, doms),
		queues:    make([][]int32, doms),
		window:    grid.Window(nw.model.MaxSpeed()),
		haloR:     nw.cfg.NormalRange + grid.Guard(),
		r2:        nw.cfg.NormalRange * nw.cfg.NormalRange,
	}
	for d := range pr.doms {
		cur := mobility.NewCursor(nw.model)
		pr.doms[d] = domainCtx{
			cur:  cur,
			sel:  selCtx{cfg: &nw.cfg, pos: cur},
			recv: make([]int, 0, n),
		}
	}
	for i, nd := range nw.nodes {
		//lint:ignore substream deliberate: the parallel engine replays the serial scheduler's 'f' hello-offset draws bit-identically; the two paths are mutually exclusive per run
		first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
		pr.nextHello[i] = first
		if first < pr.nextDue {
			pr.nextDue = first
		}
	}
	workers := nw.cfg.ParallelWorkers
	pr.pool = sim.NewRegions(doms, workers, pr.processDomain)
	return pr
}

// close releases the worker pool.
func (pr *parRun) close() { pr.pool.Close() }

// runParallel is the region-parallel body of Network.Run: alternate hello
// windows with engine fences until the horizon, then drain the engine.
func (nw *Network) runParallel(duration float64) Result {
	pr := nw.newParRun()
	defer pr.close()
	for pr.step(duration) {
	}
	nw.eng.Run(duration)
	return nw.result()
}

// step advances the parallel clock by one synchronization window (clipped
// to the next engine fence) and drains the fence when the clock reaches
// it. It returns false once the clock has reached the horizon.
func (pr *parRun) step(duration float64) bool {
	nw := pr.nw
	if pr.t >= duration {
		return false
	}
	// F is the next fence: the earliest pending engine event, or the
	// horizon. Hellos strictly before F are independent of it; events at
	// exactly F run engine-first (see the file comment on ties).
	F := duration
	if at, ok := nw.eng.NextAt(); ok && at < F {
		F = at
	}
	if F > pr.t {
		end := pr.t + pr.window
		if end > F {
			end = F
		}
		//lint:ignore float-eq exact assignment: end == duration iff the min above picked the horizon
		horizon := end == duration
		if horizon {
			// Engine-first at the horizon too: F == duration means the
			// earliest pending event is at >= duration, so this drains
			// exactly the events at the horizon instant before the
			// inclusive final dispatch — the same tie rule as mid-run
			// fences.
			nw.eng.Run(duration)
		}
		if pr.nextDue <= end {
			pr.runWindow(pr.t, end, horizon)
		}
		pr.t = end
		if pr.t < F {
			return true
		}
	}
	nw.eng.Run(F)
	return pr.t < duration
}

// runWindow dispatches every beacon due in [start, end) — inclusive of end
// on the final window, matching the serial engine's inclusive horizon —
// and runs the domain barrier over the dispatched records.
func (pr *parRun) runWindow(start, end float64, incl bool) {
	nw := pr.nw
	// Window-start snapshot: batched position resolve, then ownership.
	pr.posT = pr.cur.ResolveAllInto(pr.posT[:0], start)
	pr.domainOf = pr.grid.AssignInto(pr.posT, pr.domainOf[:0])
	// Generate records per node in beacon order; sender-side bookkeeping
	// runs here, serially, exactly as the serial sendHello would.
	pr.records = pr.records[:0]
	pr.nextDue = math.Inf(1)
	for i, nd := range nw.nodes {
		at := pr.nextHello[i]
		//lint:ignore float-eq the final window includes beacons at exactly the horizon, like the serial engine's Run(duration)
		for at < end || (incl && at == end) {
			if !nd.isDown(at) {
				pr.appendRecord(nd, at)
			}
			at += nd.interval
		}
		pr.nextHello[i] = at
		if at < pr.nextDue {
			pr.nextDue = at
		}
	}
	if len(pr.records) == 0 {
		return
	}
	// Deterministic merge: records execute in (time, sender) order — the
	// serial event order, since each sender beacons at most once per
	// instant.
	sort.Sort(pr)
	for d := range pr.owned {
		pr.owned[d] = pr.owned[d][:0]
		pr.queues[d] = pr.queues[d][:0]
	}
	for i, d := range pr.domainOf {
		pr.owned[d] = append(pr.owned[d], i)
	}
	side := pr.grid.Side()
	for ri := range pr.records {
		rec := &pr.records[ri]
		// Every domain the halo disc intersects sees the record; owners of
		// true receivers are always inside (halo-containment property,
		// pinned by radio's TestDomainHaloCoversMovingReceivers).
		ix0, iy0, ix1, iy1 := pr.grid.HaloBounds(rec.truePos, pr.haloR)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				d := iy*side + ix
				pr.queues[d] = append(pr.queues[d], int32(ri))
			}
		}
	}
	pr.pool.Barrier()
}

// appendRecord performs the sender side of one beacon — the exact
// bookkeeping sequence of the serial sendHello up to the transmission.
func (pr *parRun) appendRecord(nd *node, at float64) {
	nw := pr.nw
	pos := pr.cur.PositionAt(nd.id, at)
	adv := pos
	if nw.cfg.PosNoise > 0 {
		//lint:ignore substream deliberate: same 'p' labels as the serial sendHello — the derivation is pure and keyed by (node, instant), so both engines read identical noise
		noise := nw.rng.Sub('p', uint64(nd.id), uint64(at*1e6))
		adv = geom.Pt(pos.X+nw.cfg.PosNoise*noise.NormFloat64(),
			pos.Y+nw.cfg.PosNoise*noise.NormFloat64())
	}
	if nw.cfg.Mech.Proactive {
		nd.version = nw.epoch(at)
	} else {
		nd.version++
	}
	msg := hello.Message{From: nd.id, Pos: adv, SentAt: at, Version: nd.version}
	nd.recordOwn(msg)
	nd.advertisedPos = adv
	nd.advertisedAt = at
	nw.helloTx++
	nw.helloEnergy++ // hellos always use the normal (full) power
	pr.records = append(pr.records, helloRecord{at: at, sender: nd.id, truePos: pos, msg: msg})
}

// sort.Interface over records: (time, sender) ascending. Each sender
// beacons at most once per instant, so the order is total.
func (pr *parRun) Len() int { return len(pr.records) }
func (pr *parRun) Swap(i, j int) {
	pr.records[i], pr.records[j] = pr.records[j], pr.records[i]
}
func (pr *parRun) Less(i, j int) bool {
	a, b := &pr.records[i], &pr.records[j]
	if a.at != b.at { //lint:ignore float-eq exact compare orders records; equal instants fall through to sender id
		return a.at < b.at
	}
	return a.sender < b.sender
}

// processDomain drains one domain's record queue — the per-worker unit of
// a barrier. Everything it writes is owned by this domain: receiver tables
// and loss chains of owned nodes, and the selection state of owned
// senders.
//manet:noalloc
func (pr *parRun) processDomain(d int) {
	pd := &pr.doms[d]
	for _, ri := range pr.queues[d] {
		pr.processRecord(pd, d, &pr.records[ri])
	}
}

// processRecord delivers one beacon inside one domain: exact-distance
// receiver scan over the owned nodes (bit-identical to the serial radio's
// filter), per-receiver loss chains in ascending-id order (the serial
// FilterLost order restricted to this domain — chains are per-receiver, so
// the restriction changes nothing), table observes, and the sender's
// re-selection in its owner domain.
//manet:noalloc
func (pr *parRun) processRecord(pd *domainCtx, d int, rec *helloRecord) {
	nw := pr.nw
	pd.recv = pd.recv[:0]
	for _, v := range pr.owned[d] {
		if v == rec.sender {
			continue
		}
		if pd.cur.PositionAt(v, rec.at).Dist2(rec.truePos) <= pr.r2 {
			pd.recv = append(pd.recv, v)
		}
	}
	recv := pd.recv
	if nw.ch.LossEnabled() {
		// Chains advance for every in-range receiver, down or not — the
		// serial Transmit does the same before the isDown delivery check.
		recv = nw.ch.FilterLost(recv)
	}
	for _, rid := range recv {
		if !nw.nodes[rid].isDown(rec.at) {
			nw.nodes[rid].table.Observe(rec.msg)
		}
	}
	if pr.domainOf[rec.sender] == d {
		pd.sel.updateSelection(nw.nodes[rec.sender], rec.at, rec.msg.Pos)
	}
}
