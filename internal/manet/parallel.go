package manet

// Region-parallel execution. The arena is decomposed into a grid of
// spatial domains (radio.DomainGrid); simulated time advances in
// synchronization windows bounded by W = guard/(2·vmax) — the bounded-
// displacement horizon within which a snapshot's domain assignments plus a
// guard halo provably cover every receiver (the same argument as the radio
// medium's staleness grid and the paper's buffer zone, Theorem 5).
//
// Inside a window the dispatcher (the calling goroutine) advances a merged
// timeline of four item kinds, interleaving serial steps with parallel
// barrier passes over the domains:
//
//   - Beacons. Dispatched serially in segments: all beacons due up to the
//     next boundary (flood reception, settle pass, or window end) generate
//     helloRecords — sender-side bookkeeping (version numbers, own
//     history, advertised position, counters, position noise) runs here,
//     per node in beacon order. Records are merged into (time, sender)
//     order — the serial event order, since each sender beacons at most
//     once per instant — queued to every domain their halo disc can
//     reach, and processed by a segment barrier: each domain scans its
//     owned nodes per record with the exact-distance filter, the keyed
//     radio loss draw, and the per-receiver channel loss chains, then
//     delivers (or, under channel delay, defers) and re-selects the
//     sender in its owner domain. Dispatch never outruns the processing
//     horizon, so anything the dispatcher reads at a boundary instant —
//     a flood forwarder's advertised position, its own-advertisement
//     history — is exactly the state the serial engine would see there.
//   - Deferred receptions. Under channel delay each reception becomes a
//     (deliver-at, seq) item on its receiver's owner-domain min-heap,
//     drained by the same segment barriers in time order. seq reproduces
//     the serial scheduling order (window, dispatch-sorted record index,
//     receiver id), and pending items are re-homed to current owners at
//     every snapshot, so ownership churn never strands a delivery.
//   - Settle passes (reactive scheme). Each round dispatched queues one
//     settle item; at its instant a barrier pass re-selects every node
//     from the round's version. Segments stop at settle boundaries, so a
//     later round can never overwrite the advertised positions the pass
//     must read.
//   - Flood receptions. Flood forwarding runs on a dispatcher-owned
//     global (time, seq) min-heap. The dispatcher pops the earliest
//     reception, resolves acceptance serially (accept flag, count,
//     self-pruning cover check — the serial delivery.Act sequence), and
//     on a forward runs the sender-side transmit serially (selection,
//     counters, cover capture) followed by one scan barrier: every
//     domain inside the sender's halo box scans its owned nodes with the
//     same exact-distance + keyed-loss + loss-chain filter and emits
//     accepting receivers to a per-domain outbox with their keyed
//     delivery delays. Outboxes merge in ascending receiver order — the
//     serial per-transmit schedule order — onto the global heap. Every
//     random component of a flood reception (radio loss, channel loss
//     chains, forward jitter, channel delay) is either a pure function
//     of the reception's identity or a per-receiver chain advanced in
//     chronological order, so the heap replays the serial engine's
//     delivery schedule exactly.
//
// Between windows the event engine drains everything else — flood
// originations and scoring fences, churn, metric samples, snapshots —
// exactly as the serial engine would.
//
// Results are bit-identical to the serial engine for any worker count and
// any domain grid; the experiment-level differential matrix in
// parallel_test.go proves it under the race detector. The only documented
// divergence is measure-zero: events at exactly equal float timestamps are
// merged by a fixed priority (engine-first at fences, then beacons, then
// deferred receptions, then settles, then flood receptions) instead of the
// serial engine's scheduling sequence number, which can only matter when
// two independent continuous random draws collide exactly.

import (
	"math"
	"sort"

	"mstc/internal/geom"
	"mstc/internal/hello"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/sim"
)

// helloRecord is one dispatched beacon: the send instant, the sender, its
// exact transmit position, and the message as advertised (possibly noisy).
type helloRecord struct {
	at      float64
	sender  int
	truePos geom.Point
	msg     hello.Message
}

// delItem is one deferred "Hello" reception (non-ideal channel delay)
// pending on its receiver's owner-domain heap. seq orders equal-instant
// deliveries exactly as the serial engine's scheduling sequence would:
// creation is chronological across windows (high bits), across the
// window's (time, sender)-sorted records (middle bits), and ascending by
// receiver within a record (low bits).
type delItem struct {
	at  float64
	seq uint64
	rid int
	msg hello.Message
}

// settleItem is one pending reactive settle pass: at its instant every
// node re-selects from the round's common version.
type settleItem struct {
	at  float64
	ver uint64
}

// floodItem is one pending flood reception on the dispatcher's global
// heap. (at, seq) reproduces the serial delivery order: seq is assigned
// in transmit order, ascending by receiver within a transmit.
type floodItem struct {
	at    float64
	seq   uint64
	rid   int
	fl    *flood
	cover map[int]bool
}

// floodOut is one entry of a domain's flood-scan outbox: an accepting
// receiver with its resolved delivery instant.
type floodOut struct {
	at  float64
	rid int
}

// Barrier modes: what processDomain does on the next pool.Barrier.
const (
	modeSegment   = iota // drain the domain timeline (records + deferred) up to segH
	modeSettle           // reactive settle pass over owned nodes
	modeFloodScan        // receiver scan for the current flood transmit
)

// domainCtx is the per-domain mutable state: a private position cursor, a
// private selection context (scratch + cursor-backed position source), the
// receiver scratch list, the deferred-reception heap, and the flood-scan
// outbox. Nothing in it is ever touched by another domain's worker.
type domainCtx struct {
	cur  *mobility.Cursor
	sel  selCtx
	recv []int
	del  []delItem  // deferred receptions, (at, seq) min-heap
	fout []floodOut // flood-scan outbox
	qi   int        // cursor into pr.queues[d]
}

// parRun is one region-parallel execution of Network.Run.
type parRun struct {
	nw   *Network
	grid *radio.DomainGrid
	pool *sim.Regions

	cur  *mobility.Cursor // dispatcher-owned cursor (snapshots + senders)
	doms []domainCtx

	nextHello []float64 // per-node next beacon instant (serial Every chain)
	nextDue   float64   // next undispatched beacon/round instant
	records   []helloRecord
	sortBase  int          // records[sortBase:] is the batch being sorted
	gRec      int          // records before gRec are processed
	posT      []geom.Point // snapshot positions (batched resolve)
	domainOf  []int        // snapshot ownership per node
	owned     [][]int      // per-domain owned node ids, ascending
	queues    [][]int32    // per-domain record indices, dispatch order

	reactive  bool    // reactive scheme: rounds + settle passes
	roundIvl  float64 // common round interval
	nextRound float64
	round     uint64
	settles   []settleItem
	setIdx    int // settles before setIdx are processed
	setAt     float64
	setVer    uint64

	fheap []floodItem // pending flood receptions, (at, seq) min-heap
	fseq  uint64

	mode    int
	segH    float64 // segment horizon
	segIncl bool    // segment includes items at exactly segH

	scanFl     *flood
	scanSender int
	scanAt     float64
	scanPos    geom.Point
	scanR2     float64
	scanX0     int // halo bounds of the current flood scan
	scanY0     int
	scanX1     int
	scanY1     int

	rehome []delItem  // snapshot re-homing scratch
	fmerge []floodOut // flood outbox merge scratch

	windowSeq uint64  // monotone window counter (delItem seq high bits)
	snapAt    float64 // time of the last ownership snapshot
	snapped   bool

	window float64 // synchronization window length W (may be +Inf)
	haloR  float64 // NormalRange + grid guard
	r2     float64 // NormalRange² (exact receiver filter)
	t      float64 // parallel clock: hellos before t are processed
}

// newParRun builds the per-run parallel state. The per-node first-beacon
// offsets consume exactly the draws the serial scheduler would, so hello
// timing is bit-identical between engines.
func (nw *Network) newParRun() *parRun {
	n := len(nw.nodes)
	grid := nw.domGrid
	doms := grid.Domains()
	pr := &parRun{
		nw:        nw,
		grid:      grid,
		cur:       mobility.NewCursor(nw.model),
		doms:      make([]domainCtx, doms),
		nextHello: make([]float64, n),
		nextDue:   math.Inf(1),
		posT:      make([]geom.Point, 0, n),
		domainOf:  make([]int, 0, n),
		owned:     make([][]int, doms),
		queues:    make([][]int32, doms),
		reactive:  nw.cfg.Mech.Reactive,
		roundIvl:  (nw.cfg.HelloMin + nw.cfg.HelloMax) / 2,
		window:    grid.Window(nw.model.MaxSpeed()),
		haloR:     nw.cfg.NormalRange + grid.Guard(),
		r2:        nw.cfg.NormalRange * nw.cfg.NormalRange,
	}
	for d := range pr.doms {
		cur := mobility.NewCursor(nw.model)
		pr.doms[d] = domainCtx{
			cur:  cur,
			sel:  selCtx{cfg: &nw.cfg, pos: cur},
			recv: make([]int, 0, n),
		}
	}
	if pr.reactive {
		// Rounds start at time 0, like the serial Every(0, interval).
		pr.nextDue = 0
	} else {
		for i, nd := range nw.nodes {
			//lint:ignore substream deliberate: the parallel engine replays the serial scheduler's 'f' hello-offset draws bit-identically; the two paths are mutually exclusive per run
			first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
			pr.nextHello[i] = first
			if first < pr.nextDue {
				pr.nextDue = first
			}
		}
	}
	workers := nw.cfg.ParallelWorkers
	pr.pool = sim.NewRegions(doms, workers, pr.processDomain)
	return pr
}

// close releases the worker pool.
func (pr *parRun) close() { pr.pool.Close() }

// runParallel is the region-parallel body of Network.Run: alternate hello
// windows with engine fences until the horizon, then drain the engine.
// While it runs, nw.par routes flood originations through the parallel
// transmit path (originateFlood fires from engine fences).
func (nw *Network) runParallel(duration float64) Result {
	pr := nw.newParRun()
	defer pr.close()
	nw.par = pr
	defer func() { nw.par = nil }()
	for pr.step(duration) {
	}
	nw.eng.Run(duration)
	return nw.result()
}

// step advances the parallel clock by one synchronization window (clipped
// to the next engine fence) and drains the fence when the clock reaches
// it. It returns false once the clock has reached the horizon.
func (pr *parRun) step(duration float64) bool {
	nw := pr.nw
	if pr.t >= duration {
		return false
	}
	// F is the next fence: the earliest pending engine event, or the
	// horizon. Parallel work strictly before F is independent of it;
	// events at exactly F run engine-first (see the file comment on ties).
	F := duration
	if at, ok := nw.eng.NextAt(); ok && at < F {
		F = at
	}
	if F > pr.t {
		end := pr.t + pr.window
		if end > F {
			end = F
		}
		//lint:ignore float-eq exact assignment: end == duration iff the min above picked the horizon
		horizon := end == duration
		if horizon {
			// Engine-first at the horizon too: F == duration means the
			// earliest pending event is at >= duration, so this drains
			// exactly the events at the horizon instant before the
			// inclusive final dispatch — the same tie rule as mid-run
			// fences.
			nw.eng.Run(duration)
		}
		if pr.hasWork(end, horizon) {
			pr.runWindow(pr.t, end, horizon)
		}
		pr.t = end
		if pr.t < F {
			return true
		}
	}
	nw.eng.Run(F)
	return pr.t < duration
}

// parDue reports whether an item at the given instant belongs to a window
// (or segment) ending at end — inclusive of end only on the final window,
// matching the serial engine's inclusive Run horizon.
//
//lint:ignore float-eq exact boundary compare: the inclusive case admits items at exactly the horizon, like the serial engine's Run(duration)
func parDue(at, end float64, incl bool) bool { return at < end || (incl && at == end) }

// hasWork reports whether any parallel work — beacons or rounds to
// dispatch, deferred receptions, settle passes, flood receptions — is due
// in a window ending at end.
func (pr *parRun) hasWork(end float64, incl bool) bool {
	if parDue(pr.nextDue, end, incl) {
		return true
	}
	if len(pr.fheap) > 0 && parDue(pr.fheap[0].at, end, incl) {
		return true
	}
	if pr.setIdx < len(pr.settles) && parDue(pr.settles[pr.setIdx].at, end, incl) {
		return true
	}
	for d := range pr.doms {
		if h := pr.doms[d].del; len(h) > 0 && parDue(h[0].at, end, incl) {
			return true
		}
	}
	return false
}

// runWindow advances the merged parallel timeline across [start, end) —
// inclusive of end on the final window. Beacons are dispatched in segments
// bounded by the next flood reception or settle pass, so the dispatcher
// never writes sender-side state past the instant a serial reader (a flood
// forward, a settle pass) observes it at.
func (pr *parRun) runWindow(start, end float64, incl bool) {
	pr.windowSeq++
	pr.snapshot(start)
	pr.records = pr.records[:0]
	pr.gRec = 0
	for d := range pr.doms {
		pr.queues[d] = pr.queues[d][:0]
		pr.doms[d].qi = 0
	}
	for {
		inf := math.Inf(1)
		tf, ts := inf, inf
		if len(pr.fheap) > 0 && parDue(pr.fheap[0].at, end, incl) {
			tf = pr.fheap[0].at
		}
		if pr.setIdx < len(pr.settles) && parDue(pr.settles[pr.setIdx].at, end, incl) {
			ts = pr.settles[pr.setIdx].at
		}
		th := inf
		if parDue(pr.nextDue, end, incl) {
			th = pr.nextDue
		}
		if pr.gRec < len(pr.records) && pr.records[pr.gRec].at < th {
			th = pr.records[pr.gRec].at
		}
		for d := range pr.doms {
			if h := pr.doms[d].del; len(h) > 0 && parDue(h[0].at, end, incl) && h[0].at < th {
				th = h[0].at
			}
		}
		bnd := math.Min(tf, ts)
		switch {
		case math.IsInf(th, 1) && math.IsInf(bnd, 1):
			return
		case th <= bnd:
			// Beacon/reception segment up to the next boundary. The
			// boundary instant itself is included: deferred receptions at
			// exactly a settle or flood instant resolve first (the serial
			// order for settles; measure-zero for floods).
			H, hIncl := end, incl
			if bnd < H {
				H, hIncl = bnd, true
			}
			pr.dispatchTo(H, hIncl)
			// Dispatching a reactive round appends a settle pass that was
			// not in bnd when this segment was chosen. Clip the drain to
			// it: deliveries of this round with delays past the settle
			// offset must stay pending until the settle has selected, as
			// they do on the serial engine.
			if pr.setIdx < len(pr.settles) && pr.settles[pr.setIdx].at < H {
				H, hIncl = pr.settles[pr.setIdx].at, true
			}
			pr.segment(H, hIncl)
		case ts <= tf:
			pr.settlePass()
		default:
			pr.floodStep()
		}
	}
}

// snapshot re-resolves every position at the given instant in one batched
// cursor sweep, reassigns domain ownership, and re-homes pending deferred
// receptions to their receivers' (possibly new) owner domains in (at, seq)
// order — a deterministic permutation, so worker scheduling cannot leak
// into heap contents.
func (pr *parRun) snapshot(at float64) {
	pr.posT = pr.cur.ResolveAllInto(pr.posT[:0], at)
	pr.domainOf = pr.grid.AssignInto(pr.posT, pr.domainOf[:0])
	for d := range pr.owned {
		pr.owned[d] = pr.owned[d][:0]
	}
	for i, d := range pr.domainOf {
		pr.owned[d] = append(pr.owned[d], i)
	}
	pr.rehome = pr.rehome[:0]
	for d := range pr.doms {
		pd := &pr.doms[d]
		pr.rehome = append(pr.rehome, pd.del...)
		pd.del = pd.del[:0]
	}
	if len(pr.rehome) > 0 {
		sort.Sort(delByAtSeq(pr.rehome))
		for _, it := range pr.rehome {
			pr.doms[pr.domainOf[it.rid]].pushDel(it)
		}
	}
	pr.snapAt = at
	pr.snapped = true
}

// ensureSnapshot refreshes the ownership snapshot when the current one has
// aged past one window — the bound under which snapshot assignments plus
// the guard halo still cover every receiver. Mid-window work is always
// within one window of the window-start snapshot; this only fires for
// fence-time flood transmits after skipped (workless) windows.
func (pr *parRun) ensureSnapshot(at float64) {
	if pr.snapped && at <= pr.snapAt+pr.window {
		return
	}
	pr.snapshot(at)
}

// dispatchTo generates the records of every beacon (or reactive round) due
// up to H, merges the new batch into (time, sender) order, and queues each
// record to every domain its halo disc can reach.
func (pr *parRun) dispatchTo(H float64, incl bool) {
	if !parDue(pr.nextDue, H, incl) {
		return
	}
	nw := pr.nw
	batch := len(pr.records)
	if pr.reactive {
		// At most ONE round per dispatch: each round appends a settle pass
		// 0.05 s later, and that settle must observe exactly this round's
		// advertisements — dispatching a second round here would overwrite
		// advertisedPos/version before the pending settle reads them. The
		// window loop re-enters for later rounds after the settle fires.
		if parDue(pr.nextRound, H, incl) {
			at := pr.nextRound
			pr.round++
			for _, nd := range nw.nodes {
				if nw.ch != nil && nd.isDown(at) {
					continue // channel churn: a failed node misses its round
				}
				pos := pr.cur.PositionAt(nd.id, at)
				nd.version = pr.round
				nd.advertisedPos = pos
				nd.advertisedAt = at
				nw.helloTx++
				nw.helloEnergy++
				pr.records = append(pr.records, helloRecord{at: at, sender: nd.id, truePos: pos,
					msg: hello.Message{From: nd.id, Pos: pos, SentAt: at, Version: pr.round}})
			}
			pr.settles = append(pr.settles, settleItem{at: at + reactiveSettle, ver: pr.round})
			pr.nextRound += pr.roundIvl
		}
		pr.nextDue = pr.nextRound
	} else {
		pr.nextDue = math.Inf(1)
		for i, nd := range nw.nodes {
			at := pr.nextHello[i]
			for parDue(at, H, incl) {
				if !nd.isDown(at) {
					pr.appendRecord(nd, at)
				}
				at += nd.interval
			}
			pr.nextHello[i] = at
			if at < pr.nextDue {
				pr.nextDue = at
			}
		}
	}
	// Deterministic merge of the new batch: records execute in
	// (time, sender) order — the serial event order, since each sender
	// beacons at most once per instant. Batches are time-disjoint (each
	// starts past the previous horizon), so the whole array stays sorted.
	pr.sortBase = batch
	sort.Sort(pr)
	side := pr.grid.Side()
	for ri := batch; ri < len(pr.records); ri++ {
		rec := &pr.records[ri]
		// Every domain the halo disc intersects sees the record; owners of
		// true receivers are always inside (halo-containment property,
		// pinned by radio's TestDomainHaloCoversMovingReceivers).
		ix0, iy0, ix1, iy1 := pr.grid.HaloBounds(rec.truePos, pr.haloR)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				d := iy*side + ix
				pr.queues[d] = append(pr.queues[d], int32(ri))
			}
		}
	}
}

// appendRecord performs the sender side of one beacon — the exact
// bookkeeping sequence of the serial sendHello up to the transmission.
func (pr *parRun) appendRecord(nd *node, at float64) {
	nw := pr.nw
	pos := pr.cur.PositionAt(nd.id, at)
	adv := pos
	if nw.cfg.PosNoise > 0 {
		//lint:ignore substream deliberate: same 'p' labels as the serial sendHello — the derivation is pure and keyed by (node, instant), so both engines read identical noise
		noise := nw.rng.Sub('p', uint64(nd.id), uint64(at*1e6))
		adv = geom.Pt(pos.X+nw.cfg.PosNoise*noise.NormFloat64(),
			pos.Y+nw.cfg.PosNoise*noise.NormFloat64())
	}
	if nw.cfg.Mech.Proactive {
		nd.version = nw.epoch(at)
	} else {
		nd.version++
	}
	msg := hello.Message{From: nd.id, Pos: adv, SentAt: at, Version: nd.version}
	nd.recordOwn(msg)
	nd.advertisedPos = adv
	nd.advertisedAt = at
	nw.helloTx++
	nw.helloEnergy++ // hellos always use the normal (full) power
	pr.records = append(pr.records, helloRecord{at: at, sender: nd.id, truePos: pos, msg: msg})
}

// sort.Interface over records[sortBase:]: (time, sender) ascending.
func (pr *parRun) Len() int { return len(pr.records) - pr.sortBase }
func (pr *parRun) Swap(i, j int) {
	i, j = i+pr.sortBase, j+pr.sortBase
	pr.records[i], pr.records[j] = pr.records[j], pr.records[i]
}
func (pr *parRun) Less(i, j int) bool {
	a, b := &pr.records[i+pr.sortBase], &pr.records[j+pr.sortBase]
	if a.at != b.at { //lint:ignore float-eq exact compare orders records; equal instants fall through to sender id
		return a.at < b.at
	}
	return a.sender < b.sender
}

// segment runs one barrier pass draining every domain timeline (queued
// records + deferred receptions) up to H, then advances the dispatcher's
// processed-record cursor past the same horizon.
func (pr *parRun) segment(H float64, incl bool) {
	pr.segH, pr.segIncl = H, incl
	pr.mode = modeSegment
	pr.pool.Barrier()
	for pr.gRec < len(pr.records) && parDue(pr.records[pr.gRec].at, H, incl) {
		pr.gRec++
	}
}

// settlePass runs the next reactive settle as one barrier pass: every
// domain re-selects its owned nodes from the round's version. Ownership
// staleness is irrelevant here — any partition visits each node exactly
// once — so no snapshot refresh is needed.
func (pr *parRun) settlePass() {
	s := pr.settles[pr.setIdx]
	pr.setIdx++
	pr.setAt, pr.setVer = s.at, s.ver
	pr.mode = modeSettle
	pr.pool.Barrier()
	pr.mode = modeSegment
}

// floodStep resolves the earliest pending flood reception — the serial
// delivery.Act sequence: acceptance, count, self-pruning cover check, then
// the forward transmit. Runs on the dispatcher; the transmit's receiver
// scan is the only parallel part.
func (pr *parRun) floodStep() {
	it := pr.popFlood()
	nw := pr.nw
	fl, rid, at := it.fl, it.rid, it.at
	if fl.accepted[rid] || nw.nodes[rid].isDown(at) {
		return
	}
	fl.accepted[rid] = true
	fl.count++
	if it.cover != nil && !nw.coversNew(rid, at, it.cover) {
		return // self-pruned: everything we reach was covered
	}
	pr.floodTransmit(fl, rid, at)
}

// floodTransmit is one node's broadcast of the flood packet on the
// parallel engine — the serial transmit with the receiver loop replaced by
// a scan barrier. Sender-side work (selection, counters, cover capture)
// runs serially on the dispatcher through the network's own selection
// context, exactly as the serial engine's transmit would at this instant.
func (pr *parRun) floodTransmit(fl *flood, sender int, now float64) {
	nw := pr.nw
	nd := nw.nodes[sender]
	if nd.isDown(now) {
		return // failed between acceptance and forward
	}
	if fl.pin > 0 {
		nw.selectAsOf(nd, now, fl.pin)
	} else if nw.cfg.Mech.ViewSync {
		nw.updateSelection(nd, now, nd.advertisedPos)
	}
	nw.dataTx++
	nw.dataEnergy += energyOf(nd.txRange/nw.cfg.NormalRange, nw.cfg.EnergyAlpha)
	var cover map[int]bool
	if nw.cfg.Mech.SelfPruning {
		nw.msgBuf = nd.table.LatestInto(nw.msgBuf[:0], now)
		cover = make(map[int]bool, len(nw.msgBuf)+1)
		cover[sender] = true
		for _, m := range nw.msgBuf {
			cover[m.From] = true
		}
	}
	r := nd.txRange
	if r <= 0 {
		return // matches the radio's empty receiver set for r <= 0
	}
	pr.ensureSnapshot(now)
	pr.scanFl, pr.scanSender, pr.scanAt = fl, sender, now
	pr.scanPos = nw.med.PositionAt(sender, now)
	pr.scanR2 = r * r
	pr.scanX0, pr.scanY0, pr.scanX1, pr.scanY1 = pr.grid.HaloBounds(pr.scanPos, r+pr.grid.Guard())
	pr.mode = modeFloodScan
	pr.pool.Barrier()
	pr.mode = modeSegment
	// Merge the outboxes in ascending receiver order — the serial
	// per-transmit schedule order — and push onto the global heap with
	// transmit-monotone sequence numbers.
	pr.fmerge = pr.fmerge[:0]
	for d := range pr.doms {
		pr.fmerge = append(pr.fmerge, pr.doms[d].fout...)
		pr.doms[d].fout = pr.doms[d].fout[:0]
	}
	sortFloodOutByRid(pr.fmerge)
	for _, o := range pr.fmerge {
		pr.fseq++
		pr.pushFlood(floodItem{at: o.at, seq: pr.fseq, rid: o.rid, fl: fl, cover: cover})
	}
}

// processDomain runs one domain's share of the current barrier pass.
//
//manet:noalloc
func (pr *parRun) processDomain(d int) {
	pd := &pr.doms[d]
	switch pr.mode {
	case modeSettle:
		pr.processSettle(pd, d)
	case modeFloodScan:
		pr.processFloodScan(pd, d)
	default:
		pr.processSegment(pd, d)
	}
}

// processSegment drains one domain's timeline — queued beacon records and
// deferred receptions, merged in time order — up to the segment horizon.
// Equal instants resolve records first (the serial scheduling order for
// same-instant creations; any other collision is measure-zero).
//
//manet:noalloc
func (pr *parRun) processSegment(pd *domainCtx, d int) {
	q := pr.queues[d]
	for {
		recOK := pd.qi < len(q)
		delOK := len(pd.del) > 0
		useDel := delOK && (!recOK || pd.del[0].at < pr.records[q[pd.qi]].at)
		switch {
		case useDel:
			if !parDue(pd.del[0].at, pr.segH, pr.segIncl) {
				return
			}
			it := pd.popDel()
			if !pr.nw.nodes[it.rid].isDown(it.at) {
				pr.nw.nodes[it.rid].table.Observe(it.msg)
			}
		case recOK:
			ri := int(q[pd.qi])
			if !parDue(pr.records[ri].at, pr.segH, pr.segIncl) {
				return
			}
			pd.qi++
			pr.processRecord(pd, d, ri)
		default:
			return
		}
	}
}

// processRecord delivers one beacon inside one domain: exact-distance
// receiver scan over the owned nodes (bit-identical to the serial radio's
// filter), the keyed radio loss draw, per-receiver channel loss chains in
// ascending-id order (the serial FilterLost order restricted to this
// domain — chains are per-receiver, so the restriction changes nothing),
// then synchronous delivery, deferral onto the domain heap (channel
// delay), or the reactive ideal path — and the sender's re-selection in
// its owner domain.
//
//manet:noalloc
func (pr *parRun) processRecord(pd *domainCtx, d int, ri int) {
	nw := pr.nw
	rec := &pr.records[ri]
	pd.recv = pd.recv[:0]
	for _, v := range pr.owned[d] {
		if v == rec.sender {
			continue
		}
		if pd.cur.PositionAt(v, rec.at).Dist2(rec.truePos) > pr.r2 {
			continue
		}
		if nw.med.LostAt(rec.at, rec.sender, v) {
			continue
		}
		pd.recv = append(pd.recv, v)
	}
	recv := pd.recv
	if nw.ch.LossEnabled() {
		// Chains advance for every in-range radio-surviving receiver, down
		// or not — the serial Transmit does the same before the isDown
		// delivery check.
		recv = nw.ch.FilterLost(recv)
	}
	switch {
	case nw.ch.DelayEnabled():
		sent := math.Float64bits(rec.msg.SentAt)
		base := pr.windowSeq<<40 | uint64(ri)<<20
		for _, rid := range recv {
			pd.pushDel(delItem{
				at:  rec.at + nw.ch.HelloDelay(rec.sender, rid, sent),
				seq: base | uint64(rid),
				rid: rid,
				msg: rec.msg,
			})
		}
	case pr.reactive && nw.ch == nil:
		// Ideal-channel reactive rounds deliver unconditionally — the
		// serial scheme's original synchronous path has no receiver
		// down-check.
		for _, rid := range recv {
			nw.nodes[rid].table.Observe(rec.msg)
		}
	default:
		for _, rid := range recv {
			if !nw.nodes[rid].isDown(rec.at) {
				nw.nodes[rid].table.Observe(rec.msg)
			}
		}
	}
	if !pr.reactive && pr.domainOf[rec.sender] == d {
		pd.sel.updateSelection(nw.nodes[rec.sender], rec.at, rec.msg.Pos)
	}
}

// processSettle re-selects this domain's owned nodes from the settling
// round's version — the serial settle event partitioned by owner.
//
//manet:noalloc
func (pr *parRun) processSettle(pd *domainCtx, d int) {
	for _, v := range pr.owned[d] {
		pd.sel.selectFromVersion(pr.nw.nodes[v], pr.setAt, pr.setVer)
	}
}

// processFloodScan emits this domain's accepting receivers for the current
// flood transmit: the same exact-distance + keyed-loss + loss-chain filter
// as a beacon scan, then the forwarding-rule checks of the serial
// transmit's receiver loop, with each survivor's keyed delivery delay.
//
//manet:noalloc
func (pr *parRun) processFloodScan(pd *domainCtx, d int) {
	pd.fout = pd.fout[:0]
	side := pr.grid.Side()
	if ix, iy := d%side, d/side; ix < pr.scanX0 || ix > pr.scanX1 || iy < pr.scanY0 || iy > pr.scanY1 {
		return // outside the sender's halo box: no owned node can receive
	}
	nw := pr.nw
	fl, sender, at := pr.scanFl, pr.scanSender, pr.scanAt
	snd := nw.nodes[sender]
	pd.recv = pd.recv[:0]
	for _, v := range pr.owned[d] {
		if v == sender {
			continue
		}
		if pd.cur.PositionAt(v, at).Dist2(pr.scanPos) > pr.scanR2 {
			continue
		}
		if nw.med.LostAt(at, sender, v) {
			continue
		}
		pd.recv = append(pd.recv, v)
	}
	recv := pd.recv
	if nw.ch.LossEnabled() {
		recv = nw.ch.FilterLost(recv)
	}
	for _, rid := range recv {
		if fl.accepted[rid] {
			continue
		}
		if !nw.cfg.Mech.PhysicalNeighbors && !snd.isLogical[rid] {
			continue // dropped at the topology layer
		}
		pd.fout = append(pd.fout, floodOut{at: at + nw.floodDelay(fl, sender, rid, 0), rid: rid})
	}
}

// delByAtSeq sorts deferred receptions by (at, seq) — the serial delivery
// order — for deterministic snapshot re-homing.
type delByAtSeq []delItem

func (s delByAtSeq) Len() int      { return len(s) }
func (s delByAtSeq) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s delByAtSeq) Less(i, j int) bool {
	if s[i].at != s[j].at { //lint:ignore float-eq exact compare orders deliveries; equal instants fall through to the scheduling sequence
		return s[i].at < s[j].at
	}
	return s[i].seq < s[j].seq
}

// pushDel pushes one deferred reception onto the domain's (at, seq) heap.
//
//manet:noalloc
func (pd *domainCtx) pushDel(it delItem) {
	h := append(pd.del, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !delLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	pd.del = h
}

// popDel pops the earliest deferred reception.
//
//manet:noalloc
func (pd *domainCtx) popDel() delItem {
	h := pd.del
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && delLess(&h[l], &h[m]) {
			m = l
		}
		if r < len(h) && delLess(&h[r], &h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	pd.del = h
	return top
}

//manet:noalloc
func delLess(a, b *delItem) bool {
	if a.at != b.at { //lint:ignore float-eq exact compare orders deliveries; equal instants fall through to the scheduling sequence
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushFlood pushes one flood reception onto the global (at, seq) heap.
func (pr *parRun) pushFlood(it floodItem) {
	h := append(pr.fheap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !floodLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	pr.fheap = h
}

// popFlood pops the earliest flood reception.
func (pr *parRun) popFlood() floodItem {
	h := pr.fheap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = floodItem{} // drop the flood/cover references
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && floodLess(&h[l], &h[m]) {
			m = l
		}
		if r < len(h) && floodLess(&h[r], &h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	pr.fheap = h
	return top
}

func floodLess(a, b *floodItem) bool {
	if a.at != b.at { //lint:ignore float-eq exact compare orders deliveries; equal instants fall through to the scheduling sequence
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortFloodOutByRid is an allocation-free insertion sort for the small
// per-transmit outbox merge (receiver ids are unique across domains).
func sortFloodOutByRid(a []floodOut) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].rid < a[j-1].rid; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
