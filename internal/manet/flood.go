package manet

import (
	"math"

	"mstc/internal/radio"
	"mstc/internal/sim"
)

// energyOf returns the normalized transmission energy of a packet sent at
// the given fraction of full range under path-loss exponent alpha.
func energyOf(rangeFrac, alpha float64) float64 {
	if rangeFrac <= 0 {
		return 0
	}
	return math.Pow(rangeFrac, alpha)
}

// flood tracks one network-wide broadcast probe.
type flood struct {
	id       uint64 // origination sequence number, keys jitter/delay draws
	src      int
	pin      uint64 // pinned view version (proactive scheme), 0 = unpinned
	accepted []bool // node has accepted (and will forward) the packet
	count    int    // accepted nodes including the source
}

// originateFlood starts one weak-connectivity probe from a uniformly random
// source (§5.1: broadcasts from random sources, 10 per second).
func (nw *Network) originateFlood(now sim.Time) {
	//lint:ignore substream historical draw order: source picks ride the root network stream; originations are globally ordered engine events in both engines, so the stream position matches
	src := nw.rng.Intn(len(nw.nodes))
	nw.floodSeq++
	fl := &flood{id: nw.floodSeq, src: src, accepted: make([]bool, len(nw.nodes))}
	if nw.cfg.Mech.Proactive {
		// Pin the last *complete* epoch: every node has advertised under
		// it and all those advertisements have propagated.
		if e := nw.epoch(now); e > 1 {
			fl.pin = e - 1
		} else {
			fl.pin = 1
		}
	}
	fl.accepted[src] = true
	fl.count = 1
	if nw.par != nil {
		// Region-parallel run: originations fire at engine fences, but the
		// forwarding cascade runs through the domain scan barriers.
		nw.par.floodTransmit(fl, src, now)
	} else {
		nw.transmit(fl, src, now)
	}
	nw.eng.ScheduleIn(nw.cfg.FloodSettle, func(sim.Time) {
		nw.floods++
		nw.deliverySum += float64(fl.count-1) / float64(len(nw.nodes)-1)
	})
}

// transmit is one node's broadcast of the flood packet: the sender (re-)
// selects under view synchronization, transmits with its current range, and
// receivers that accept schedule their own forwards after a small jitter.
//
// Acceptance follows the paper's forwarding rule exactly: the sender's
// logical neighbor set travels in the packet header and a receiver not in
// it drops the packet — unless the physical-neighbor mechanism is on.
// Unidirectional links are used as-is (§5.1).
func (nw *Network) transmit(fl *flood, sender int, now sim.Time) {
	nd := nw.nodes[sender]
	if nd.isDown(now) {
		return // failed between acceptance and forward
	}
	if fl.pin > 0 {
		// Proactive consistency: select on the view pinned to the
		// packet's version (§4.1).
		nw.selectAsOf(nd, now, fl.pin)
	} else if nw.cfg.Mech.ViewSync {
		// On-the-fly re-selection using the latest "Hello" information,
		// with the sender's own *advertised* position standing in for its
		// current one so that its local view matches what neighbors hold
		// (§5.1, "View synchronization").
		nw.updateSelection(nd, now, nd.advertisedPos)
	}
	nw.dataTx++
	nw.dataEnergy += energyOf(nd.txRange/nw.cfg.NormalRange, nw.cfg.EnergyAlpha)
	tx, receivers := nw.med.Transmit(now, sender, nd.txRange, nw.recvBuf[:0])
	nw.recvBuf = receivers
	airtime := nw.med.TxDuration()
	var senderCover map[int]bool
	if nw.cfg.Mech.SelfPruning {
		// The packet header additionally carries the sender's known 1-hop
		// neighborhood (it already carries the logical set). The map is
		// captured by the delayed delivery closures below, so it cannot be
		// scratch-backed.
		nw.msgBuf = nd.table.LatestInto(nw.msgBuf[:0], now)
		//lint:ignore noalloc the header map escapes into the delayed deliveries by design (see comment above); self-pruning runs accept this per-transmit cost
		senderCover = make(map[int]bool, len(nw.msgBuf)+1)
		senderCover[sender] = true
		for _, m := range nw.msgBuf {
			senderCover[m.From] = true
		}
	}
	for _, rid := range receivers {
		if fl.accepted[rid] {
			continue
		}
		if !nw.cfg.Mech.PhysicalNeighbors && !nd.isLogical[rid] {
			continue // dropped at the topology layer
		}
		d := nw.newDelivery()
		d.fl, d.rid, d.tx, d.cover, d.airtime = fl, rid, tx, senderCover, airtime
		nw.eng.ScheduleActorIn(nw.floodDelay(fl, sender, rid, airtime), d)
	}
}

// floodDelay is the total deferral of one flood reception: airtime plus the
// constant per-hop radio delay plus the keyed forward jitter — and, on a
// non-ideal channel, the reception's own bounded random delay (≤ Δ″). Every
// random component is a pure function of (flood, forwarder, receiver), so
// the serial engine and the region-parallel flood rounds resolve identical
// deferrals regardless of evaluation order.
func (nw *Network) floodDelay(fl *flood, sender, rid int, airtime float64) float64 {
	//lint:ignore noalloc Derive is by-value and never retains its label slice, so both stay on the stack; TestNoallocAnnotationsConform pins the steady state at zero
	jit := nw.rng.Derive('j', fl.id, uint64(sender), uint64(rid))
	delay := airtime + nw.med.Delay() + jit.Uniform(0, nw.cfg.ForwardJitterMax)
	if nw.ch.DelayEnabled() {
		delay += nw.ch.FloodDelay(fl.id, sender, rid)
	}
	return delay
}

// delivery is one pending flood-packet reception. Deliveries are pooled on
// the Network (a singly-linked freelist) and scheduled as sim.Actors, so
// the per-receiver forwarding step costs no closure allocation — the struct
// pointer rides in the event queue's interface value as-is.
type delivery struct {
	nw      *Network
	fl      *flood
	rid     int
	tx      radio.Tx
	cover   map[int]bool // sender's covered set (self-pruning), nil otherwise
	airtime float64
	next    *delivery // freelist link, nil while scheduled
}

// Act resolves the delivery. Acceptance resolves here, at delivery time:
// the node may have accepted a concurrent copy meanwhile, and under the
// collision MAC this copy may have been jammed.
//
//manet:noalloc
func (d *delivery) Act(later sim.Time) {
	nw, fl, rid := d.nw, d.fl, d.rid
	tx, cover, airtime := d.tx, d.cover, d.airtime
	// Release before resolving: the recursive transmit below may pool new
	// deliveries, and d's payload is already copied out.
	nw.releaseDelivery(d)
	if fl.accepted[rid] || nw.nodes[rid].isDown(later) {
		return
	}
	if airtime > 0 && nw.med.Collides(tx, rid) {
		return
	}
	fl.accepted[rid] = true
	fl.count++
	if cover != nil && !nw.coversNew(rid, later, cover) {
		return // self-pruned: everything we reach was covered
	}
	if nw.cfg.Mech.CDSForward && !nw.nodes[rid].cdsMarked {
		return // non-gateway: deliver but do not re-forward
	}
	nw.transmit(fl, rid, later)
}

// newDelivery pops a pooled delivery (or allocates the pool's next one).
func (nw *Network) newDelivery() *delivery {
	if d := nw.freeDel; d != nil {
		nw.freeDel = d.next
		d.next = nil
		return d
	}
	//lint:ignore noalloc pool growth: allocates only until the freelist covers the in-flight maximum, then steady state is allocation-free
	return &delivery{nw: nw}
}

// releaseDelivery clears d's payload (dropping the flood and cover-map
// references) and pushes it back on the freelist.
func (nw *Network) releaseDelivery(d *delivery) {
	*d = delivery{nw: nw, next: nw.freeDel}
	nw.freeDel = d
}

// coversNew reports whether node id knows a neighbor outside the sender's
// covered set — the self-pruning forwarding condition.
func (nw *Network) coversNew(id int, now sim.Time, cover map[int]bool) bool {
	nw.msgBuf = nw.nodes[id].table.LatestInto(nw.msgBuf[:0], now)
	for _, m := range nw.msgBuf {
		if !cover[m.From] {
			return true
		}
	}
	return false
}
