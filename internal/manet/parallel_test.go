package manet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"mstc/internal/channel"
	"mstc/internal/geom"
	"mstc/internal/hello"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/traffic"
	"mstc/internal/xrand"
)

// Differential proof of the region-parallel engine: for every supported
// configuration, every domain grid, and every worker count, the parallel
// engine must produce bit-identical results to the serial engine — the
// digest covers the aggregate Result and the final per-node logical
// neighbor sets and transmission ranges. `make check` runs this under the
// race detector, so the same matrix also proves the barrier publishes all
// cross-domain state correctly.

// parWaypoint builds a fresh random-waypoint model for the matrix runs.
func parWaypoint(tb testing.TB, n int, avgSpeed, horizon float64, seed uint64) mobility.Model {
	tb.Helper()
	lo, hi := mobility.SpeedSetdest(avgSpeed)
	m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: n, SpeedMin: lo, SpeedMax: hi, Horizon: horizon,
	}, xrand.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// runDigest executes one run and hashes everything observable about it.
func runDigest(tb testing.TB, model mobility.Model, cfg Config, dur float64) string {
	tb.Helper()
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	res := nw.Run(dur)
	// Vacuity guard matched to the configured probe workload: traffic runs
	// flood nothing by construction.
	if cfg.Traffic.Enabled() {
		if res.HelloTx == 0 || res.Traffic.Sent == 0 {
			tb.Fatalf("degenerate run: hellos=%d traffic sent=%d", res.HelloTx, res.Traffic.Sent)
		}
	} else if res.HelloTx == 0 || res.Floods == 0 {
		tb.Fatalf("degenerate run: hellos=%d floods=%d", res.HelloTx, res.Floods)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%#v\n", res)
	for id := 0; id < model.N(); id++ {
		fmt.Fprintf(h, "%d|%v|%g|%g\n",
			id, nw.LogicalNeighbors(id), nw.TxRange(id), nw.ActualRange(id))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// gridWorkers is the (domain side, worker count) matrix: single-domain
// degenerate grids, square grids with fewer/equal/more workers than cores,
// and a deliberately odd worker count that does not divide the domain count.
var gridWorkers = []struct{ side, workers int }{
	{1, 1}, {1, 2},
	{2, 1}, {2, 2}, {2, 4}, {2, 7},
	{4, 1}, {4, 4}, {4, 7},
}

func TestParallelMatchesSerialMatrix(t *testing.T) {
	const (
		n     = 60
		dur   = 8.0
		speed = 20.0
	)
	variants := []struct {
		name string
		cfg  Config
		full bool // run the full grid×worker matrix
	}{
		{
			name: "ideal",
			cfg: Config{
				Protocol: topology.RNG{}, FloodRate: 5,
				SnapshotEvery: 2.5, Seed: 7,
			},
			full: true,
		},
		{
			name: "faulty",
			cfg: func() Config {
				c := Config{
					Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 5,
					PosNoise: 5, Seed: 11,
				}
				c.Channel.Loss = channel.LossConfig{
					Model: channel.GilbertElliott, Rate: 0.3, MeanBurst: 6,
				}
				c.Channel.Churn = channel.ChurnConfig{MeanUp: 6, MeanDown: 1}
				return c
			}(),
			full: true,
		},
		{
			name: "mechanisms",
			cfg: Config{
				Protocol: topology.RNG{}, FloodRate: 5,
				Mech: Mechanisms{Buffer: 10, ViewSync: true, PhysicalNeighbors: true, Proactive: true},
				Seed: 13,
			},
		},
		{
			// Non-ideal channel delay: every reception defers by its own
			// bounded random delay, so the parallel engine must drain the
			// per-domain delivery heaps (including re-homing pending items
			// across ownership snapshots) bit-identically to the serial
			// actor schedule. Churn forces delivery-time down-checks.
			name: "delayed",
			cfg: func() Config {
				c := Config{
					Protocol: topology.RNG{}, FloodRate: 5, Seed: 19,
				}
				c.Channel.Delay = channel.DelayConfig{Min: 0.01, Max: 0.4}
				c.Channel.Churn = channel.ChurnConfig{MeanUp: 6, MeanDown: 1}
				return c
			}(),
			full: true,
		},
		{
			// Radio-medium loss (keyed per-reception draws) stacked with
			// i.i.d. channel loss chains: both filters must resolve
			// identically inside the domain scans and the serial receiver
			// loops.
			name: "lossy-radio",
			cfg: func() Config {
				c := Config{
					Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 5,
					Mech: Mechanisms{Buffer: 10, ViewSync: true}, Seed: 23,
				}
				c.Radio.LossRate = 0.15
				c.Channel.Loss = channel.LossConfig{Model: channel.Bernoulli, Rate: 0.1}
				return c
			}(),
			full: true,
		},
		{
			// Reactive strong-consistency rounds on the ideal channel:
			// synchronized beacons plus settle passes a fixed offset later.
			name: "reactive",
			cfg: Config{
				Protocol: topology.RNG{}, FloodRate: 5,
				Mech: Mechanisms{Reactive: true, Buffer: 10}, Seed: 29,
			},
			full: true,
		},
		{
			// Reactive rounds on a faulty channel: down nodes skip their
			// round, receptions defer through the delivery heaps, and the
			// settle passes must still read each round's advertisements.
			// The delay bound deliberately STRADDLES the 0.05 s settle
			// offset: part of each round's deliveries must land after its
			// settle pass, so a parallel drain that runs ahead of a
			// freshly appended settle (or a dispatch that fires two rounds
			// before the first one's settle) diverges here. Delays capped
			// below the offset once masked exactly that bug.
			name: "reactive-faulty",
			cfg: func() Config {
				c := Config{
					Protocol: topology.RNG{}, FloodRate: 5,
					Mech: Mechanisms{Reactive: true}, Seed: 31,
				}
				c.Channel.Delay = channel.DelayConfig{Min: 0.01, Max: 0.15}
				c.Channel.Loss = channel.LossConfig{Model: channel.GilbertElliott, Rate: 0.2, MeanBurst: 4}
				c.Channel.Churn = channel.ChurnConfig{MeanUp: 8, MeanDown: 1}
				return c
			}(),
			full: true,
		},
		{
			// Weak consistency end to end. The first engine fence sits at
			// 2·HelloMax = 2.5 s while hello intervals are ≈1 s and every
			// grid's synchronization window exceeds that gap, so nodes
			// beacon 2-4 times inside the opening window — the regime where
			// dispatch has overwritten advertisedPos before the barrier
			// replays earlier beacons. The digest only observes each
			// window's final selection (later beacons overwrite earlier
			// ones before any fence reads them), so the per-beacon
			// advertised-position contract the barrier relies on is pinned
			// separately by TestSelectWeakUsesCallerSelfPos.
			name: "weak",
			cfg: Config{
				Weak: topology.WeakRNG{}, FloodRate: 5,
				Mech: Mechanisms{WeakK: 3},
				Seed: 17,
			},
			full: true,
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			model := parWaypoint(t, n, speed, dur, 40+v.cfg.Seed)
			want := runDigest(t, model, v.cfg, dur)
			matrix := gridWorkers
			if !v.full {
				matrix = []struct{ side, workers int }{{2, 2}, {4, 7}}
			}
			for _, gw := range matrix {
				cfg := v.cfg
				cfg.Domains = gw.side
				cfg.ParallelWorkers = gw.workers
				if nw, err := NewNetwork(model, cfg); err != nil {
					t.Fatal(err)
				} else if !nw.parallelEligible() {
					t.Fatalf("variant %s must take the parallel path", v.name)
				}
				if got := runDigest(t, model, cfg, dur); got != want {
					t.Errorf("%dx%d domains, %d workers: digest %s != serial %s",
						gw.side, gw.side, gw.workers, got[:16], want[:16])
				}
			}
		})
	}
}

// TestSelectWeakUsesCallerSelfPos pins the contract the region-parallel
// barrier relies on for weak consistency: selectWeak must select against
// the self position its caller passes (the position the beacon being
// processed actually advertised, rec.msg.Pos in the barrier), never
// against nd.advertisedPos — by barrier time, dispatch has already
// overwritten that field with the window's LAST beacon. The end-to-end
// matrix cannot see a violation (each window's final selection is computed
// from the last beacon either way), so this test plants a decoy in
// advertisedPos and asserts it is ignored.
//
// Geometry: node 0 at the origin with neighbors at (100,0) and (200,0).
// Seen from the origin, wRNG removes the (0,2) link (node 1 relays:
// cMin(0,2)=200 > max(100,100)); seen from the decoy (400,0), the self
// position set {(400,0),(0,0)} widens cMax(0,1) to 300, so both links
// survive. The two outcomes differ, so the assertion has teeth.
func TestSelectWeakUsesCallerSelfPos(t *testing.T) {
	origin := geom.Pt(0, 0)
	decoy := geom.Pt(400, 0)
	model := mobility.NewStatic(arena, []geom.Point{origin, geom.Pt(100, 0), geom.Pt(200, 0)}, 10)
	nw, err := NewNetwork(model, Config{
		Weak: topology.WeakRNG{},
		Mech: Mechanisms{WeakK: 2},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const now = 1.0
	nd := nw.nodes[0]
	nd.table.Observe(hello.Message{From: 1, Pos: geom.Pt(100, 0), SentAt: now, Version: 1})
	nd.table.Observe(hello.Message{From: 2, Pos: geom.Pt(200, 0), SentAt: now, Version: 1})
	// Each call plants the opposite value in advertisedPos, so whichever
	// of the two positions selectWeak actually reads, one assertion fires
	// — and the pair doubles as proof the geometry discriminates.
	nd.advertisedPos = origin
	nw.updateSelection(nd, now, decoy)
	if got := nw.LogicalNeighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("selection(selfPos=decoy) = %v, want [1 2]: selectWeak ignored the caller's selfPos", got)
	}
	nd.advertisedPos = decoy
	nw.updateSelection(nd, now, origin)
	if got := nw.LogicalNeighbors(0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("selection(selfPos=origin) = %v, want [1]: selectWeak read nd.advertisedPos instead of the caller's selfPos", got)
	}
}

// TestParallelFallbackConfigs pins the automatic serial fallback. Exactly
// three features remain unsupported by the region-parallel engine — the
// collision MAC (cross-domain jamming state), CDS forwarding (a global
// marking recomputed at snapshot fences), and the traffic subsystem (route
// tables and link-state views mutate at arbitrary nodes on every
// reception, so packet order across domains is semantic) — and they must
// still run, on the serial path, producing results identical to
// Domains = 0. If a config below ever becomes parallel-eligible, this test
// fails so the eligibility table in DESIGN.md and the differential matrix
// get extended first.
func TestParallelFallbackConfigs(t *testing.T) {
	const dur = 6.0
	model := parWaypoint(t, 40, 10, dur, 99)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"collision-mac", func(c *Config) { c.Radio.TxDuration = 0.001 }},
		{"cds-forward", func(c *Config) { c.Mech.CDSForward, c.Mech.PhysicalNeighbors = true, true }},
		{"traffic-aodv", func(c *Config) {
			c.FloodRate = 0
			c.Traffic = traffic.Config{Mode: traffic.AODV, Flows: 4, Rate: 4}
		}},
		{"traffic-olsr", func(c *Config) {
			c.FloodRate = 0
			c.Traffic = traffic.Config{Mode: traffic.OLSR, Flows: 4, Rate: 4, TCInterval: 2}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Protocol: topology.RNG{}, FloodRate: 5, Seed: 3}
			tc.mutate(&cfg)
			nw, err := NewNetwork(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if nw.parallelEligible() {
				t.Fatal("config unexpectedly parallel-eligible with Domains = 0")
			}
			want := runDigest(t, model, cfg, dur)
			cfg.Domains = 2
			cfg.ParallelWorkers = 4
			nw2, err := NewNetwork(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if nw2.parallelEligible() {
				t.Fatalf("%s must fall back to the serial engine", tc.name)
			}
			if got := runDigest(t, model, cfg, dur); got != want {
				t.Errorf("%s: fallback digest %s != serial %s", tc.name, got[:16], want[:16])
			}
		})
	}
}

// TestParallelEligibility pins the eligibility frontier in BOTH directions:
// every feature the engine supports must report eligible (a regression here
// silently degrades every benchmark and smoke run to serial), and the two
// documented fallbacks must not. TestParallelMatchesSerialMatrix proves the
// eligible set correct; this test proves it does not shrink.
func TestParallelEligibility(t *testing.T) {
	model := parWaypoint(t, 20, 10, 4, 5)
	cases := []struct {
		name     string
		mutate   func(*Config)
		eligible bool
	}{
		{"ideal", func(c *Config) {}, true},
		{"channel-delay", func(c *Config) { c.Channel.Delay = channel.DelayConfig{Max: 0.05} }, true},
		{"channel-loss-bernoulli", func(c *Config) { c.Channel.Loss = channel.LossConfig{Model: channel.Bernoulli, Rate: 0.2} }, true},
		{"channel-loss-ge", func(c *Config) {
			c.Channel.Loss = channel.LossConfig{Model: channel.GilbertElliott, Rate: 0.2, MeanBurst: 4}
		}, true},
		{"channel-churn", func(c *Config) { c.Channel.Churn = channel.ChurnConfig{MeanUp: 6, MeanDown: 1} }, true},
		{"radio-loss", func(c *Config) { c.Radio.LossRate = 0.1 }, true},
		{"radio-delay", func(c *Config) { c.Radio.Delay = 0.001 }, true},
		{"reactive", func(c *Config) { c.Mech.Reactive = true }, true},
		{"reactive-faulty", func(c *Config) {
			c.Mech.Reactive = true
			c.Channel.Delay = channel.DelayConfig{Max: 0.05}
			c.Channel.Churn = channel.ChurnConfig{MeanUp: 6, MeanDown: 1}
		}, true},
		{"mechanisms", func(c *Config) {
			c.Mech = Mechanisms{Buffer: 10, ViewSync: true, PhysicalNeighbors: true, Proactive: true, SelfPruning: true}
		}, true},
		{"weak", func(c *Config) {
			c.Protocol, c.Weak = nil, topology.WeakRNG{}
			c.Mech.WeakK = 3
		}, true},
		{"collision-mac", func(c *Config) { c.Radio.TxDuration = 0.001 }, false},
		{"cds-forward", func(c *Config) { c.Mech.CDSForward, c.Mech.PhysicalNeighbors = true, true }, false},
		{"traffic-aodv", func(c *Config) {
			c.FloodRate = 0
			c.Traffic = traffic.Config{Mode: traffic.AODV}
		}, false},
		{"traffic-olsr", func(c *Config) {
			c.FloodRate = 0
			c.Traffic = traffic.Config{Mode: traffic.OLSR}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Protocol: topology.RNG{}, FloodRate: 5, Seed: 3,
				Domains: 2, ParallelWorkers: 2,
			}
			tc.mutate(&cfg)
			nw, err := NewNetwork(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := nw.parallelEligible(); got != tc.eligible {
				t.Errorf("parallelEligible() = %v, want %v", got, tc.eligible)
			}
		})
	}
}
