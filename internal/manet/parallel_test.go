package manet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"mstc/internal/channel"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

// Differential proof of the region-parallel engine: for every supported
// configuration, every domain grid, and every worker count, the parallel
// engine must produce bit-identical results to the serial engine — the
// digest covers the aggregate Result and the final per-node logical
// neighbor sets and transmission ranges. `make check` runs this under the
// race detector, so the same matrix also proves the barrier publishes all
// cross-domain state correctly.

// parWaypoint builds a fresh random-waypoint model for the matrix runs.
func parWaypoint(tb testing.TB, n int, avgSpeed, horizon float64, seed uint64) mobility.Model {
	tb.Helper()
	lo, hi := mobility.SpeedSetdest(avgSpeed)
	m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: n, SpeedMin: lo, SpeedMax: hi, Horizon: horizon,
	}, xrand.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// runDigest executes one run and hashes everything observable about it.
func runDigest(tb testing.TB, model mobility.Model, cfg Config, dur float64) string {
	tb.Helper()
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	res := nw.Run(dur)
	if res.HelloTx == 0 || res.Floods == 0 {
		tb.Fatalf("degenerate run: hellos=%d floods=%d", res.HelloTx, res.Floods)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%#v\n", res)
	for id := 0; id < model.N(); id++ {
		fmt.Fprintf(h, "%d|%v|%g|%g\n",
			id, nw.LogicalNeighbors(id), nw.TxRange(id), nw.ActualRange(id))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// gridWorkers is the (domain side, worker count) matrix: single-domain
// degenerate grids, square grids with fewer/equal/more workers than cores,
// and a deliberately odd worker count that does not divide the domain count.
var gridWorkers = []struct{ side, workers int }{
	{1, 1}, {1, 2},
	{2, 1}, {2, 2}, {2, 4}, {2, 7},
	{4, 1}, {4, 4}, {4, 7},
}

func TestParallelMatchesSerialMatrix(t *testing.T) {
	const (
		n     = 60
		dur   = 8.0
		speed = 20.0
	)
	variants := []struct {
		name string
		cfg  Config
		full bool // run the full grid×worker matrix
	}{
		{
			name: "ideal",
			cfg: Config{
				Protocol: topology.RNG{}, FloodRate: 5,
				SnapshotEvery: 2.5, Seed: 7,
			},
			full: true,
		},
		{
			name: "faulty",
			cfg: func() Config {
				c := Config{
					Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 5,
					PosNoise: 5, Seed: 11,
				}
				c.Channel.Loss = channel.LossConfig{
					Model: channel.GilbertElliott, Rate: 0.3, MeanBurst: 6,
				}
				c.Channel.Churn = channel.ChurnConfig{MeanUp: 6, MeanDown: 1}
				return c
			}(),
			full: true,
		},
		{
			name: "mechanisms",
			cfg: Config{
				Protocol: topology.RNG{}, FloodRate: 5,
				Mech: Mechanisms{Buffer: 10, ViewSync: true, PhysicalNeighbors: true, Proactive: true},
				Seed: 13,
			},
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			model := parWaypoint(t, n, speed, dur, 40+v.cfg.Seed)
			want := runDigest(t, model, v.cfg, dur)
			matrix := gridWorkers
			if !v.full {
				matrix = []struct{ side, workers int }{{2, 2}, {4, 7}}
			}
			for _, gw := range matrix {
				cfg := v.cfg
				cfg.Domains = gw.side
				cfg.ParallelWorkers = gw.workers
				if nw, err := NewNetwork(model, cfg); err != nil {
					t.Fatal(err)
				} else if !nw.parallelEligible() {
					t.Fatalf("variant %s must take the parallel path", v.name)
				}
				if got := runDigest(t, model, cfg, dur); got != want {
					t.Errorf("%dx%d domains, %d workers: digest %s != serial %s",
						gw.side, gw.side, gw.workers, got[:16], want[:16])
				}
			}
		})
	}
}

// TestParallelFallbackConfigs pins the automatic serial fallback: features
// the region-parallel engine does not support must still run (on the serial
// path) and produce results identical to Domains = 0.
func TestParallelFallbackConfigs(t *testing.T) {
	const dur = 6.0
	model := parWaypoint(t, 40, 10, dur, 99)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"channel-delay", func(c *Config) { c.Channel.Delay = channel.DelayConfig{Max: 0.05} }},
		{"reactive", func(c *Config) { c.Mech.Reactive = true }},
		{"collision-mac", func(c *Config) { c.Radio.TxDuration = 0.001 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Protocol: topology.RNG{}, FloodRate: 5, Seed: 3}
			tc.mutate(&cfg)
			nw, err := NewNetwork(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if nw.parallelEligible() {
				t.Fatal("config unexpectedly parallel-eligible with Domains = 0")
			}
			want := runDigest(t, model, cfg, dur)
			cfg.Domains = 2
			cfg.ParallelWorkers = 4
			nw2, err := NewNetwork(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if nw2.parallelEligible() {
				t.Fatalf("%s must fall back to the serial engine", tc.name)
			}
			if got := runDigest(t, model, cfg, dur); got != want {
				t.Errorf("%s: fallback digest %s != serial %s", tc.name, got[:16], want[:16])
			}
		})
	}
}
