package manet

import (
	"fmt"
	"testing"

	"mstc/internal/graph"
	"mstc/internal/topology"
)

// TestDiagnoseLoss separates the two failure modes of §1: disconnected
// logical topology (inconsistent views) vs broken effective links (outdated
// positions). Exploratory; run with -v.
func TestDiagnoseLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic run")
	}
	model := waypointModel(t, 40, 42)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, FloodRate: 0, Seed: 7,
		Mech: Mechanisms{Buffer: 10, ViewSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var logicalSum, effectiveSum, rangeFail, rangeTotal float64
	samples := 0
	nw.eng.Every(5, 5, func(now float64) {
		// Logical digraph: arc u->v iff v in u's logical set (range
		// ignored).
		ld := graph.NewDirected(len(nw.nodes))
		for _, nd := range nw.nodes {
			for _, v := range nd.logical {
				ld.AddArc(nd.id, v)
				rangeTotal++
				if nw.med.PositionAt(nd.id, now).Dist(nw.med.PositionAt(v, now)) > nd.txRange {
					rangeFail++
				}
			}
		}
		logicalSum += ld.AvgReachability()
		effectiveSum += nw.EffectiveDigraphAt(now).AvgReachability()
		samples++
	})
	nw.Run(30)
	fmt.Printf("logical=%.3f effective=%.3f rangeFailFrac=%.3f\n",
		logicalSum/float64(samples), effectiveSum/float64(samples), rangeFail/rangeTotal)
}
