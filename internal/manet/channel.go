package manet

import (
	"math"

	"mstc/internal/hello"
	"mstc/internal/sim"
)

// Delayed "Hello" delivery — the manet end of the non-ideal channel
// subsystem (internal/channel). When the channel defers deliveries, each
// reception becomes a pooled sim.Actor scheduled at send time + an
// independent bounded delay (≤ Δ″), the regime Theorem 5's buffer zone
// l = 2·Δ″·v is designed for. Deliveries are pooled on the Network exactly
// like flood deliveries: the struct pointer rides in the event queue's
// interface value, so a delayed beacon costs no closure allocation.

// helloDelivery is one pending delayed "Hello" reception.
type helloDelivery struct {
	nw   *Network
	msg  hello.Message
	rid  int
	next *helloDelivery // freelist link, nil while scheduled
}

// Act resolves the delivery: the receiver observes the (by now stale)
// advertisement unless it is down at delivery time. The hello table keeps
// the k highest versions per sender, so out-of-order arrivals — a short
// delay overtaking a long one — resolve correctly without reordering here.
//
//manet:noalloc
func (d *helloDelivery) Act(now sim.Time) {
	nw, msg, rid := d.nw, d.msg, d.rid
	nw.releaseHelloDelivery(d)
	if !nw.nodes[rid].isDown(now) {
		nw.nodes[rid].table.Observe(msg)
	}
}

// scheduleHellos defers msg's delivery to every receiver by an independent
// channel delay, keyed by (sender, receiver, send instant) — a pure
// function of the delivery's identity, so the serial engine and the
// region-parallel delivery heaps resolve identical delays.
//
//manet:noalloc
func (nw *Network) scheduleHellos(msg hello.Message, receivers []int) {
	sent := math.Float64bits(msg.SentAt)
	for _, rid := range receivers {
		d := nw.newHelloDelivery()
		d.msg, d.rid = msg, rid
		nw.eng.ScheduleActorIn(nw.ch.HelloDelay(msg.From, rid, sent), d)
	}
}

// newHelloDelivery pops a pooled delivery (or allocates the pool's next one).
func (nw *Network) newHelloDelivery() *helloDelivery {
	if d := nw.freeHello; d != nil {
		nw.freeHello = d.next
		d.next = nil
		return d
	}
	//lint:ignore noalloc pool growth: allocates only until the freelist covers the in-flight maximum, then steady state is allocation-free
	return &helloDelivery{nw: nw}
}

// releaseHelloDelivery clears d's payload (dropping the message's Neighbors
// reference) and pushes it back on the freelist.
func (nw *Network) releaseHelloDelivery(d *helloDelivery) {
	*d = helloDelivery{nw: nw, next: nw.freeHello}
	nw.freeHello = d
}
