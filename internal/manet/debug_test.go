package manet

import (
	"fmt"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
)

// TestSimMatchesIdealSnapshotWhenStatic is the end-to-end consistency check
// between the two halves of the library: on a static network, the
// protocol-state machine driven by gossiped "Hello" messages must converge
// to exactly the selections and ranges the omniscient snapshot analyzer
// computes from true positions.
func TestSimMatchesIdealSnapshotWhenStatic(t *testing.T) {
	model := connectedStatic(t, 100, 100, 10)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = model.PositionAt(i, 0)
	}
	for _, p := range topology.Baselines(250) {
		nw, err := NewNetwork(model, Config{Protocol: p, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		nw.Run(10)
		want := snapshot.Selections(pts, p, 250)
		for u := range pts {
			if got := nw.LogicalNeighbors(u); fmt.Sprint(got) != fmt.Sprint(want[u]) {
				t.Fatalf("%s node %d: sim selection %v != ideal %v", p.Name(), u, got, want[u])
			}
		}
		if got := nw.EffectiveDigraphAt(10).AvgReachability(); got < 0.999 {
			t.Errorf("%s: static digraph reachability %.3f, want 1", p.Name(), got)
		}
	}
}

// TestLineTopologyExact pins down the full pipeline on a hand-checkable
// 4-node line: RNG keeps exactly the consecutive links.
func TestLineTopologyExact(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(300, 0)}
	model := mobility.NewStatic(arena, pts, 20)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, FloodRate: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(20)
	want := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	for id := range pts {
		if got := nw.LogicalNeighbors(id); fmt.Sprint(got) != fmt.Sprint(want[id]) {
			t.Errorf("node %d logical = %v, want %v", id, got, want[id])
		}
		if id == 1 || id == 2 {
			if r := nw.ActualRange(id); r != 100 {
				t.Errorf("node %d actual range = %v, want 100", id, r)
			}
		}
	}
	if res.Connectivity < 0.999 {
		t.Errorf("line connectivity = %.3f, want 1", res.Connectivity)
	}
	if res.AvgLogicalDegree != 1.5 {
		t.Errorf("avg logical degree = %v, want 1.5", res.AvgLogicalDegree)
	}
}
