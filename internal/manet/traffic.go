package manet

import (
	"mstc/internal/hello"
	"mstc/internal/sim"
	"mstc/internal/traffic"
)

// Traffic driver: CBR flows routed by the AODV-style or OLSR-style state
// machines of package traffic, carried over the controlled logical topology
// exactly like floods are — transmissions use the sender's current
// (buffered) range, and a receiver outside the sender's logical set drops
// the packet unless the physical-neighbor mechanism is on.
//
// Randomness discipline: flow endpoints and start offsets come from the
// dedicated 't' substream (one Sub('t', flow) per flow at setup), and every
// in-flight delay draw comes from the 'q' substream through trafficJitter —
// a pure derivation keyed by a per-delivery unique id, so the draw order
// cannot depend on event interleaving. Data-plane delivery runs through
// pooled actors mirroring flood's freelist; the steady-state relay path is
// //manet:noalloc and pinned by TestTrafficSteadyStateAllocs.

// trafficDrain is how long before the run horizon flows stop emitting, so
// the last packets can still be scored.
const trafficDrain = 0.5

// dataHopLimit is the IP-TTL analogue routed protocols rely on: while
// link-state views disagree during convergence, OLSR forwarding can loop
// transiently, and the loop must kill the packet rather than let it orbit
// (and inflate the hop/overhead metrics) for the rest of the run.
const dataHopLimit = 64

// Packet kinds. Data rides its own pooled actor (the noalloc hot path);
// control packets share a second pool whose handlers may allocate
// (discovery state, link-state ingestion).
const (
	pktData = uint8(iota + 1)
	pktRREQ
	pktRREP
	pktRERR
	pktTC
)

// trafficJitter label kinds: the first 'q' label position discriminates
// the draw's purpose, the remaining two identify the event.
const (
	jitterHop = uint64(iota + 1) // per-delivery forwarding jitter
	jitterTC                     // per-node TC phase offset
)

// trafficPacket is one in-flight traffic packet. Field meaning varies by
// kind: origin is the data source / RREQ originator / TC originator / the
// node a RERR travels back to; dst is the route target (or the broken
// destination a RERR reports); hops is the hop count at the receiver.
type trafficPacket struct {
	kind   uint8
	from   int // transmitting hop
	origin int
	dst    int
	hops   int
	ttl    int     // RREQ: remaining ring radius
	id     uint32  // RREQ id / TC ANSN
	seq    uint32  // RREQ: origin seq; RREP: dst seq; RERR: invalidated dst seq
	dseq   uint32  // RREQ: last-known destination seq
	flow   int     // data: flow index
	sentAt float64 // data: origination instant
	sel    []int   // TC: advertised selector set (shared, read-only)
}

// trafficFlow is one CBR flow's source-side state.
type trafficFlow struct {
	idx      int
	src, dst int
	sent     int // data packets originated (the PDR denominator)

	// AODV discovery state.
	discovering bool
	ttl         int
	retries     int
	attempt     uint64    // cancels stale ring timeouts
	pending     []float64 // origination times buffered awaiting a route
}

// trafficState is the per-run traffic subsystem state, owned by Network.
type trafficState struct {
	nw  *Network
	cfg traffic.Config

	flows []trafficFlow

	// AODV per-node state.
	routes  []*traffic.RouteTable
	nodeSeq []uint32          // own destination sequence numbers
	rreqSeq []uint32          // own RREQ id counters
	seen    []map[uint64]bool // handled RREQ (origin, id) pairs

	// OLSR per-node state.
	ls   []*traffic.LinkState
	lsV  []uint64 // hello-table version the last Recompute saw
	ansn []uint32 // own TC sequence numbers

	uid uint64 // per-delivery unique counter, keys 'q' jitter draws

	// Scratch (never escapes an event).
	msgBuf    []hello.Message
	histBuf   []hello.Message
	nbrBuf    []int
	nbrMask   []bool
	twoHop    [][]int
	brokenBuf []int

	// Accumulators.
	sent, delivered              int
	delaySum, hopSum             float64
	dataTx                       int
	rreqTx, rrepTx, rerrTx, tcTx int

	freeData *trafficDelivery
	freeCtrl *trafficCtrl
}

// TrafficResult aggregates the traffic subsystem of one run.
type TrafficResult struct {
	// Mode is the routing protocol's display name ("aodv"/"olsr").
	Mode string
	// Sent is the number of data packets the CBR flows originated.
	Sent int
	// Delivered is how many of them reached their destination.
	Delivered int
	// DeliveryRatio is Delivered/Sent (the per-flow PDR, pooled).
	DeliveryRatio float64
	// AvgDelay is the mean end-to-end latency of delivered packets (s).
	AvgDelay float64
	// AvgHops is the mean hop count of delivered packets.
	AvgHops float64
	// DataTx counts data-packet transmissions (one per hop).
	DataTx int
	// RREQTx/RREPTx/RERRTx/TCTx count control transmissions by kind.
	RREQTx int
	RREPTx int
	RERRTx int
	TCTx   int
	// ControlPerData is total control transmissions per delivered data
	// packet — the overhead measure the routing comparison plots.
	ControlPerData float64
}

// startTraffic wires the traffic subsystem into the event loop: per-flow
// CBR emission (endpoints and phase from the 't' substream) and, for OLSR,
// per-node TC emission.
func (nw *Network) startTraffic(duration float64) {
	cfg := nw.cfg.Traffic
	n := len(nw.nodes)
	ts := &trafficState{
		nw:        nw,
		cfg:       cfg,
		nbrBuf:    make([]int, 0, n),
		nbrMask:   make([]bool, n),
		brokenBuf: make([]int, 0, n),
	}
	nw.traf = ts
	switch cfg.Mode {
	case traffic.AODV:
		ts.routes = traffic.NewRouteTables(n, n)
		ts.nodeSeq = make([]uint32, n)
		ts.rreqSeq = make([]uint32, n)
		ts.seen = make([]map[uint64]bool, n)
		for i := range ts.seen {
			ts.seen[i] = make(map[uint64]bool, 8)
		}
	case traffic.OLSR:
		ts.ls = make([]*traffic.LinkState, n)
		for i := range ts.ls {
			ts.ls[i] = traffic.NewLinkState(n)
		}
		ts.lsV = make([]uint64, n)
		ts.ansn = make([]uint32, n)
	}
	warmup := 2 * nw.cfg.HelloMax
	ts.flows = make([]trafficFlow, cfg.Flows)
	for i := range ts.flows {
		f := &ts.flows[i]
		f.idx = i
		// The flow's endpoints and phase are its own substream: adding or
		// removing a flow never shifts another flow's draws.
		tr := nw.rng.Sub('t', uint64(i))
		f.src = tr.Intn(n)
		f.dst = tr.Intn(n - 1)
		if f.dst >= f.src {
			f.dst++ // uniform over the n-1 non-source nodes
		}
		start := warmup + tr.Uniform(0, 1/cfg.Rate)
		nw.eng.Every(start, 1/cfg.Rate, func(now sim.Time) {
			ts.emit(f, now, duration)
		})
	}
	if cfg.Mode == traffic.OLSR {
		for _, nd := range nw.nodes {
			nd := nd
			off := nw.trafficJitter(jitterTC, uint64(nd.id), 0, cfg.TCInterval)
			nw.eng.Every(warmup+off, cfg.TCInterval, func(now sim.Time) {
				ts.originateTC(nd, now)
			})
		}
	}
}

// trafficJitter is the single derivation site of the 'q' traffic substream:
// a uniform draw in [0, max) keyed by (kind, a, b). Keeping one call site
// (with the purpose discriminated by the kind label value) makes the
// substream rules hold trivially, and the pure derivation makes every draw
// independent of event interleaving.
func (nw *Network) trafficJitter(kind, a, b uint64, max float64) float64 {
	//lint:ignore noalloc Derive is by-value and never retains its label slice, so both stay on the stack; TestTrafficSteadyStateAllocs pins the steady state at zero
	src := nw.rng.Derive('q', kind, a, b)
	return src.Uniform(0, max)
}

// result assembles the run's traffic metrics.
func (ts *trafficState) result() TrafficResult {
	r := TrafficResult{
		Mode:      ts.cfg.Mode.String(),
		Sent:      ts.sent,
		Delivered: ts.delivered,
		DataTx:    ts.dataTx,
		RREQTx:    ts.rreqTx,
		RREPTx:    ts.rrepTx,
		RERRTx:    ts.rerrTx,
		TCTx:      ts.tcTx,
	}
	if ts.sent > 0 {
		r.DeliveryRatio = float64(ts.delivered) / float64(ts.sent)
	}
	if ts.delivered > 0 {
		r.AvgDelay = ts.delaySum / float64(ts.delivered)
		r.AvgHops = ts.hopSum / float64(ts.delivered)
		ctrl := ts.rreqTx + ts.rrepTx + ts.rerrTx + ts.tcTx
		r.ControlPerData = float64(ctrl) / float64(ts.delivered)
	}
	return r
}

// emit originates one CBR data packet (or buffers it while AODV discovery
// runs). Every emission counts toward Sent, whether or not a route exists —
// PDR is an application-level measure.
func (ts *trafficState) emit(f *trafficFlow, now sim.Time, duration float64) {
	if ts.cfg.Packets > 0 && f.sent >= ts.cfg.Packets {
		return
	}
	if now+trafficDrain > duration {
		return
	}
	f.sent++
	ts.sent++
	nw := ts.nw
	if nw.nodes[f.src].isDown(now) {
		return // a failed source loses the packet
	}
	switch ts.cfg.Mode {
	case traffic.AODV:
		rt := ts.routes[f.src]
		r, ok := rt.Lookup(f.dst, now)
		if !ok {
			f.pending = append(f.pending, now)
			if !f.discovering {
				ts.startDiscovery(f, now)
			}
			return
		}
		rt.Refresh(f.dst, now+ts.cfg.RouteLifetime)
		p := trafficPacket{kind: pktData, from: f.src, origin: f.src, dst: f.dst,
			hops: 1, flow: f.idx, sentAt: now}
		if !nw.sendTo(p, f.src, r.NextHop, now) {
			nw.linkBreak(f.src, r.NextHop, f.src, f.dst, now)
			f.pending = append(f.pending, now) // retry after rediscovery
		}
	case traffic.OLSR:
		nh, ok := ts.olsrNextHop(nw.nodes[f.src], f.dst, now)
		if !ok {
			return // no link-state route yet: lost
		}
		p := trafficPacket{kind: pktData, from: f.src, origin: f.src, dst: f.dst,
			hops: 1, flow: f.idx, sentAt: now}
		nw.sendTo(p, f.src, nh, now)
	}
}

// sendTo unicasts p from u to target: the sender re-selects under view
// synchronization (mirroring flood transmits), pays energy for one
// transmission, and the hop succeeds only if target is among the radio's
// receivers and passes the topology-layer filter. A false return is the
// link-layer feedback AODV's RERR path keys on.
func (nw *Network) sendTo(p trafficPacket, u, target int, now sim.Time) bool {
	nd := nw.nodes[u]
	if nd.isDown(now) {
		return false
	}
	if nw.cfg.Mech.ViewSync {
		nw.updateSelection(nd, now, nd.advertisedPos)
	}
	nw.traf.countTx(p.kind)
	nw.dataEnergy += energyOf(nd.txRange/nw.cfg.NormalRange, nw.cfg.EnergyAlpha)
	_, receivers := nw.med.Transmit(now, u, nd.txRange, nw.recvBuf[:0])
	nw.recvBuf = receivers
	found := false
	for _, rid := range receivers {
		if rid == target {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if !nw.cfg.Mech.PhysicalNeighbors && !nd.isLogical[target] {
		return false // dropped at the topology layer
	}
	nw.scheduleTraffic(p, target, now)
	return true
}

// broadcastCtrl broadcasts a control packet (RREQ/TC) from u to every
// receiver passing the topology-layer filter.
func (nw *Network) broadcastCtrl(p trafficPacket, u int, now sim.Time) {
	nd := nw.nodes[u]
	if nd.isDown(now) {
		return
	}
	if nw.cfg.Mech.ViewSync {
		nw.updateSelection(nd, now, nd.advertisedPos)
	}
	nw.traf.countTx(p.kind)
	nw.dataEnergy += energyOf(nd.txRange/nw.cfg.NormalRange, nw.cfg.EnergyAlpha)
	_, receivers := nw.med.Transmit(now, u, nd.txRange, nw.recvBuf[:0])
	nw.recvBuf = receivers
	for _, rid := range receivers {
		if !nw.cfg.Mech.PhysicalNeighbors && !nd.isLogical[rid] {
			continue
		}
		nw.scheduleTraffic(p, rid, now)
	}
}

// scheduleTraffic defers one reception by the radio's constant per-hop
// delay plus a keyed forwarding jitter, onto the kind-appropriate pooled
// actor.
func (nw *Network) scheduleTraffic(p trafficPacket, rid int, now sim.Time) {
	ts := nw.traf
	ts.uid++
	delay := nw.med.Delay() + nw.trafficJitter(jitterHop, ts.uid, uint64(rid), nw.cfg.ForwardJitterMax)
	if p.kind == pktData {
		d := ts.newData()
		d.pkt, d.rid = p, rid
		nw.eng.ScheduleActorIn(delay, d)
		return
	}
	c := ts.newCtrl()
	c.pkt, c.rid = p, rid
	nw.eng.ScheduleActorIn(delay, c)
}

// countTx attributes one transmission to its packet kind.
func (ts *trafficState) countTx(kind uint8) {
	switch kind {
	case pktData:
		ts.dataTx++
	case pktRREQ:
		ts.rreqTx++
	case pktRREP:
		ts.rrepTx++
	case pktRERR:
		ts.rerrTx++
	case pktTC:
		ts.tcTx++
	}
}

// trafficDelivery is one pending data-packet reception — the steady-state
// hot path, pooled like flood's delivery and allocation-free once warm.
type trafficDelivery struct {
	nw   *Network
	pkt  trafficPacket
	rid  int
	next *trafficDelivery
}

// Act resolves a data reception: deliver at the destination, otherwise
// relay along the route table.
//
//manet:noalloc
func (d *trafficDelivery) Act(now sim.Time) {
	nw, p, rid := d.nw, d.pkt, d.rid
	ts := nw.traf
	ts.releaseData(d)
	if nw.nodes[rid].isDown(now) {
		return
	}
	if rid == p.dst {
		ts.delivered++
		ts.delaySum += now - p.sentAt
		ts.hopSum += float64(p.hops)
		if ts.cfg.Mode == traffic.AODV {
			// Arriving data keeps the reverse route to the source warm.
			ts.routes[rid].Refresh(p.origin, now+ts.cfg.RouteLifetime)
		}
		return
	}
	nw.forwardData(p, rid, now)
}

// forwardData relays a data packet at intermediate node u: route-table (or
// link-state) lookup, then one unicast hop. An AODV relay whose next hop
// fails tears the route down and originates a RERR toward the source.
//
//manet:noalloc
func (nw *Network) forwardData(p trafficPacket, u int, now sim.Time) {
	ts := nw.traf
	if p.hops >= dataHopLimit {
		return // TTL expired: a transient routing loop ate the packet
	}
	switch ts.cfg.Mode {
	case traffic.AODV:
		rt := ts.routes[u]
		r, ok := rt.Lookup(p.dst, now)
		if !ok {
			// No live route at a relay: drop and tell the source.
			nw.sendRERR(u, p.origin, p.dst, now)
			return
		}
		rt.Refresh(p.dst, now+ts.cfg.RouteLifetime)
		rt.Refresh(p.origin, now+ts.cfg.RouteLifetime)
		p.from = u
		p.hops++
		if !nw.sendTo(p, u, r.NextHop, now) {
			nw.linkBreak(u, r.NextHop, p.origin, p.dst, now)
		}
	case traffic.OLSR:
		nh, ok := ts.olsrNextHop(nw.nodes[u], p.dst, now)
		if !ok {
			return // link state has no path: lost until the next TC wave
		}
		p.from = u
		p.hops++
		nw.sendTo(p, u, nh, now)
	}
}

// linkBreak handles next-hop loss at node u: every route through the failed
// neighbor is invalidated (sequence numbers bumped) and a RERR for the
// packet's destination travels back toward its source.
func (nw *Network) linkBreak(u, nh, origin, dst int, now sim.Time) {
	ts := nw.traf
	ts.brokenBuf = ts.routes[u].InvalidateVia(nh, ts.brokenBuf[:0])
	nw.sendRERR(u, origin, dst, now)
}

// sendRERR originates a route-error for dst toward origin. When the break
// happened at the source itself the teardown is delivered locally through
// the control pool, so rediscovery always runs on the control path.
func (nw *Network) sendRERR(u, origin, dst int, now sim.Time) {
	ts := nw.traf
	p := trafficPacket{kind: pktRERR, from: u, origin: origin, dst: dst,
		hops: 1, seq: ts.routes[u].LastSeq(dst)}
	if u == origin {
		ts.rerrTx++ // local teardown: accounted, not transmitted
		c := ts.newCtrl()
		c.pkt, c.rid = p, u
		nw.eng.ScheduleActorIn(0, c)
		return
	}
	rr, ok := ts.routes[u].Lookup(origin, now)
	if !ok {
		return // no reverse route: the teardown dies here
	}
	nw.sendTo(p, u, rr.NextHop, now)
}

// trafficCtrl is one pending control-packet reception (RREQ/RREP/RERR/TC).
// Pooled like trafficDelivery; its handlers may allocate (discovery caches,
// link-state ingestion), so it stays off the noalloc closure.
type trafficCtrl struct {
	nw   *Network
	pkt  trafficPacket
	rid  int
	next *trafficCtrl
}

// Act dispatches a control reception to its protocol handler.
func (c *trafficCtrl) Act(now sim.Time) {
	nw, p, rid := c.nw, c.pkt, c.rid
	nw.traf.releaseCtrl(c)
	if nw.nodes[rid].isDown(now) {
		return
	}
	switch p.kind {
	case pktRREQ:
		nw.handleRREQ(p, rid, now)
	case pktRREP:
		nw.handleRREP(p, rid, now)
	case pktRERR:
		nw.handleRERR(p, rid, now)
	case pktTC:
		nw.handleTC(p, rid, now)
	}
}

// startDiscovery begins an expanding-ring route discovery for flow f.
func (ts *trafficState) startDiscovery(f *trafficFlow, now sim.Time) {
	f.discovering = true
	f.ttl = ts.cfg.TTLStart
	f.retries = 0
	ts.issueRREQ(f, now)
}

// issueRREQ floods one discovery attempt at the current ring radius and
// arms its timeout: an unanswered attempt escalates the radius (doubling,
// capped at TTLMax), then burns MaxRetries network-wide attempts before the
// discovery aborts and drops the buffered packets.
func (ts *trafficState) issueRREQ(f *trafficFlow, now sim.Time) {
	nw := ts.nw
	u := f.src
	if nw.nodes[u].isDown(now) {
		ts.abortDiscovery(f)
		return
	}
	ts.nodeSeq[u]++ // AODV: the originator increments its own seq per RREQ
	ts.rreqSeq[u]++
	id := ts.rreqSeq[u]
	ts.seen[u][rreqKey(u, id)] = true
	p := trafficPacket{kind: pktRREQ, from: u, origin: u, dst: f.dst, hops: 1,
		ttl: f.ttl, id: id, seq: ts.nodeSeq[u], dseq: ts.routes[u].LastSeq(f.dst)}
	nw.broadcastCtrl(p, u, now)
	f.attempt++
	attempt := f.attempt
	timeout := float64(f.ttl) * ts.cfg.RingTimeout
	nw.eng.ScheduleIn(timeout, func(at sim.Time) {
		if !f.discovering || f.attempt != attempt {
			return // answered or superseded
		}
		if f.ttl < ts.cfg.TTLMax {
			f.ttl *= 2
			if f.ttl > ts.cfg.TTLMax {
				f.ttl = ts.cfg.TTLMax
			}
		} else {
			f.retries++
			if f.retries > ts.cfg.MaxRetries {
				ts.abortDiscovery(f)
				return
			}
		}
		ts.issueRREQ(f, at)
	})
}

// abortDiscovery gives up on a discovery, losing the buffered packets
// (they were already counted as sent).
func (ts *trafficState) abortDiscovery(f *trafficFlow) {
	f.discovering = false
	f.attempt++
	f.pending = f.pending[:0]
}

// rreqKey packs a RREQ's (origin, id) identity for the seen cache.
func rreqKey(origin int, id uint32) uint64 {
	return uint64(origin)<<32 | uint64(id)
}

// handleRREQ processes a route request at node u: install the reverse
// route, answer from the destination (or a relay with a fresh-enough
// route), otherwise shrink the ring and re-flood.
func (nw *Network) handleRREQ(p trafficPacket, u int, now sim.Time) {
	ts := nw.traf
	key := rreqKey(p.origin, p.id)
	if ts.seen[u][key] {
		return
	}
	ts.seen[u][key] = true
	rt := ts.routes[u]
	rt.Update(p.origin, traffic.Route{NextHop: p.from, Hops: p.hops, Seq: p.seq,
		Expiry: now + ts.cfg.RouteLifetime})
	if u == p.dst {
		if p.dseq >= ts.nodeSeq[u] {
			ts.nodeSeq[u] = p.dseq + 1 // reply at least as fresh as requested
		}
		rep := trafficPacket{kind: pktRREP, from: u, origin: p.origin, dst: u,
			hops: 1, seq: ts.nodeSeq[u]}
		if rr, ok := rt.Lookup(p.origin, now); ok {
			nw.sendTo(rep, u, rr.NextHop, now)
		}
		return
	}
	if r, ok := rt.Lookup(p.dst, now); ok && r.Seq >= p.dseq {
		// Intermediate reply: a relay with a route at least as fresh as
		// the request demands answers on the destination's behalf.
		rep := trafficPacket{kind: pktRREP, from: u, origin: p.origin, dst: p.dst,
			hops: r.Hops + 1, seq: r.Seq}
		if rr, ok2 := rt.Lookup(p.origin, now); ok2 {
			nw.sendTo(rep, u, rr.NextHop, now)
		}
		return
	}
	if p.ttl > 1 {
		p.ttl--
		p.hops++
		p.from = u
		nw.broadcastCtrl(p, u, now)
	}
}

// handleRREP processes a route reply at node u: install the forward route
// and either complete the discovery (at the originator) or pass the reply
// one hop further along the reverse route.
func (nw *Network) handleRREP(p trafficPacket, u int, now sim.Time) {
	ts := nw.traf
	rt := ts.routes[u]
	rt.Update(p.dst, traffic.Route{NextHop: p.from, Hops: p.hops, Seq: p.seq,
		Expiry: now + ts.cfg.RouteLifetime})
	if u == p.origin {
		for i := range ts.flows {
			f := &ts.flows[i]
			if f.src != u || f.dst != p.dst || !f.discovering {
				continue
			}
			f.discovering = false
			f.attempt++ // cancel the armed ring timeout
			ts.flushPending(f, now)
		}
		return
	}
	rr, ok := rt.Lookup(p.origin, now)
	if !ok {
		return // reverse route expired under the reply
	}
	p.from = u
	p.hops++
	nw.sendTo(p, u, rr.NextHop, now)
}

// flushPending drains a flow's buffered packets down the fresh route.
func (ts *trafficState) flushPending(f *trafficFlow, now sim.Time) {
	nw := ts.nw
	rt := ts.routes[f.src]
	for len(f.pending) > 0 {
		r, ok := rt.Lookup(f.dst, now)
		if !ok {
			if !f.discovering {
				ts.startDiscovery(f, now)
			}
			return
		}
		sentAt := f.pending[0]
		f.pending = f.pending[:copy(f.pending, f.pending[1:])]
		rt.Refresh(f.dst, now+ts.cfg.RouteLifetime)
		p := trafficPacket{kind: pktData, from: f.src, origin: f.src, dst: f.dst,
			hops: 1, flow: f.idx, sentAt: sentAt}
		if !nw.sendTo(p, f.src, r.NextHop, now) {
			// The fresh route is already dead; this packet is lost and the
			// self-RERR below restarts discovery for the rest.
			nw.linkBreak(f.src, r.NextHop, f.src, f.dst, now)
			return
		}
	}
}

// handleRERR processes a route error at node u: invalidate the reported
// route if it runs through the RERR's sender, then either restart
// discovery (at the source) or relay the teardown toward it.
func (nw *Network) handleRERR(p trafficPacket, u int, now sim.Time) {
	ts := nw.traf
	rt := ts.routes[u]
	if p.from != u {
		rt.Invalidate(p.dst, p.from)
	}
	if u == p.origin {
		for i := range ts.flows {
			f := &ts.flows[i]
			if f.src != u || f.dst != p.dst || f.discovering {
				continue
			}
			if len(f.pending) == 0 && ts.cfg.Packets > 0 && f.sent >= ts.cfg.Packets {
				continue // flow finished: nothing left to route
			}
			ts.startDiscovery(f, now)
		}
		return
	}
	rr, ok := rt.Lookup(p.origin, now)
	if !ok {
		return
	}
	p.from = u
	p.hops++
	nw.sendTo(p, u, rr.NextHop, now)
}

// olsrNextHop resolves the link-state next hop toward dst at nd, lazily
// recomputing routes when the node's hello table moved or a TC arrived
// since the last computation. The 1-hop links fed to BFS are nd's
// *logical* neighbors, not everyone heard: routes must ride links the
// topology layer will actually carry (a logical neighbor is within the
// sender's controlled range by construction).
//
//manet:noalloc
func (ts *trafficState) olsrNextHop(nd *node, dst int, now float64) (int, bool) {
	ls := ts.ls[nd.id]
	if ls.Dirty() || ts.lsV[nd.id] != nd.table.Version() {
		ts.lsV[nd.id] = nd.table.Version()
		ls.Recompute(nd.id, nd.logical)
	}
	return ls.NextHop(dst)
}

// originateTC emits one topology-control message from nd: its current
// MPR-selector set (the neighbors whose latest hello names nd as MPR)
// under a fresh ANSN. Nodes nobody selected stay silent.
func (ts *trafficState) originateTC(nd *node, now sim.Time) {
	if nd.isDown(now) {
		return
	}
	ts.msgBuf = nd.table.LatestInto(ts.msgBuf[:0], now)
	count := 0
	for _, m := range ts.msgBuf {
		if containsInt(m.MPRs, nd.id) {
			count++
		}
	}
	if count == 0 {
		return
	}
	// The selector set travels in the packet (shared across receivers and
	// copied on ingestion), so it must be freshly allocated, exact-sized.
	sel := make([]int, 0, count)
	for _, m := range ts.msgBuf {
		if containsInt(m.MPRs, nd.id) {
			sel = append(sel, m.From)
		}
	}
	ts.ansn[nd.id]++
	// Record the own advertisement locally too: the originator's link
	// state should know its own selector links.
	ts.ls[nd.id].RecordTC(nd.id, ts.ansn[nd.id], sel)
	p := trafficPacket{kind: pktTC, from: nd.id, origin: nd.id, hops: 1,
		id: ts.ansn[nd.id], sel: sel}
	ts.nw.broadcastCtrl(p, nd.id, now)
}

// handleTC ingests a topology-control message at node u and re-floods it
// per the MPR forwarding rule: only nodes the sender selected as MPR
// retransmit, and only first (fresh-ANSN) copies.
func (nw *Network) handleTC(p trafficPacket, u int, now sim.Time) {
	ts := nw.traf
	if !ts.ls[u].RecordTC(p.origin, p.id, p.sel) {
		return // stale or duplicate
	}
	if !ts.selectedBy(u, p.from, now) {
		return // not the sender's MPR: deliver but do not re-forward
	}
	p.from = u
	p.hops++
	nw.broadcastCtrl(p, u, now)
}

// selectedBy reports whether s's latest hello in u's table names u as MPR.
func (ts *trafficState) selectedBy(u, s int, now float64) bool {
	ts.histBuf = ts.nw.nodes[u].table.HistoryInto(ts.histBuf[:0], s, now)
	return len(ts.histBuf) > 0 && containsInt(ts.histBuf[0].MPRs, u)
}

// helloPayload builds the OLSR gossip of an outgoing hello: the sender's
// current neighbor list and its MPR selection over the gossiped 2-hop
// neighborhood (nil, nil outside OLSR mode). Both slices travel in the
// stored message, so they are freshly allocated (exact-sized) rather than
// scratch-backed — the same rule sendHello's CDSForward payload follows.
// Returning the slices (instead of filling the message through a pointer)
// keeps the message itself off the heap on the hello fast path.
func (ts *trafficState) helloPayload(nd *node, now float64) (neighbors, mprs []int) {
	if ts.cfg.Mode != traffic.OLSR {
		return nil, nil
	}
	// Gossip the *logical* selection (one beacon stale: sendHello builds
	// the payload before re-selecting), so 2-hop sets, MPRs, and the
	// link-state graph all describe links data can traverse.
	neighbors = append(make([]int, 0, len(nd.logical)), nd.logical...)
	mprs = ts.computeMPRs(nd, now)
	ts.ls[nd.id].MarkDirty() // our own links may have changed
	return neighbors, mprs
}

// computeMPRs selects nd's multipoint relays from its current *logical*
// 1-hop set and the 2-hop neighborhood those neighbors gossiped (their own
// logical selections, carried in hello payloads).
func (ts *trafficState) computeMPRs(nd *node, now float64) []int {
	ts.msgBuf = nd.table.LatestInto(ts.msgBuf[:0], now)
	ts.nbrBuf = append(ts.nbrBuf[:0], nd.logical...)
	for _, id := range ts.nbrBuf {
		ts.nbrMask[id] = true
	}
	ts.nbrMask[nd.id] = true
	if cap(ts.twoHop) < len(ts.nbrBuf) {
		ts.twoHop = make([][]int, len(ts.nbrBuf)*2)
	}
	ts.twoHop = ts.twoHop[:len(ts.nbrBuf)]
	for i, id := range ts.nbrBuf {
		lst := ts.twoHop[i][:0]
		for _, m := range ts.msgBuf {
			if m.From != id {
				continue
			}
			for _, x := range m.Neighbors {
				if !ts.nbrMask[x] {
					lst = append(lst, x)
				}
			}
			break
		}
		ts.twoHop[i] = lst
	}
	mprs := traffic.SelectMPRs(ts.nbrBuf, ts.twoHop, nil)
	for _, id := range ts.nbrBuf {
		ts.nbrMask[id] = false
	}
	ts.nbrMask[nd.id] = false
	return mprs
}

// containsInt reports whether a contains x (the sets are tiny).
func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

// newData pops a pooled data delivery (or grows the pool).
func (ts *trafficState) newData() *trafficDelivery {
	if d := ts.freeData; d != nil {
		ts.freeData = d.next
		d.next = nil
		return d
	}
	//lint:ignore noalloc pool growth: allocates only until the freelist covers the in-flight maximum, then steady state is allocation-free
	return &trafficDelivery{nw: ts.nw}
}

// releaseData clears the payload and pushes the delivery on the freelist.
func (ts *trafficState) releaseData(d *trafficDelivery) {
	*d = trafficDelivery{nw: d.nw, next: ts.freeData}
	ts.freeData = d
}

// newCtrl pops a pooled control delivery (or grows the pool).
func (ts *trafficState) newCtrl() *trafficCtrl {
	if c := ts.freeCtrl; c != nil {
		ts.freeCtrl = c.next
		c.next = nil
		return c
	}
	//lint:ignore noalloc pool growth: allocates only until the freelist covers the in-flight maximum, then steady state is allocation-free
	return &trafficCtrl{nw: ts.nw}
}

// releaseCtrl clears the payload (dropping the TC selector reference) and
// pushes the delivery on the freelist.
func (ts *trafficState) releaseCtrl(c *trafficCtrl) {
	*c = trafficCtrl{nw: c.nw, next: ts.freeCtrl}
	ts.freeCtrl = c
}
