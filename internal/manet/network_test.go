package manet

import (
	"sort"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

// connectedStatic returns a static model whose unit-disk graph is connected.
func connectedStatic(tb testing.TB, seed uint64, n int, horizon float64) mobility.Model {
	tb.Helper()
	for s := seed; ; s++ {
		pts := mobility.UniformPoints(arena, n, xrand.New(s))
		ok := true
		// Quick connectivity probe via the snapshot helper is overkill;
		// check with a simple union-find over the disk graph.
		uf := make([]int, n)
		for i := range uf {
			uf[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for uf[x] != x {
				uf[x] = uf[uf[x]]
				x = uf[x]
			}
			return x
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pts[i].Dist(pts[j]) <= 250 {
					uf[find(i)] = find(j)
				}
			}
		}
		root := find(0)
		for i := 1; i < n && ok; i++ {
			ok = find(i) == root
		}
		if ok {
			return mobility.NewStatic(arena, pts, horizon)
		}
	}
}

func TestStaticNetworkFullConnectivity(t *testing.T) {
	model := connectedStatic(t, 100, 100, 30)
	for _, p := range topology.Baselines(250) {
		nw, err := NewNetwork(model, Config{Protocol: p, FloodRate: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run(30)
		if res.Connectivity < 0.999 {
			t.Errorf("%s on a static connected network: connectivity %.4f, want 1",
				p.Name(), res.Connectivity)
		}
		if res.Floods == 0 {
			t.Errorf("%s: no floods", p.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		model := waypointModel(t, 40, 9)
		nw, err := NewNetwork(model, Config{
			Protocol: topology.RNG{}, FloodRate: 10, Seed: 11,
			Mech: Mechanisms{Buffer: 10, ViewSync: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(15)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	model := connectedStatic(t, 1, 10, 5)
	bad := []Config{
		{}, // no protocol
		{Protocol: topology.RNG{}, NormalRange: -1},
		{Protocol: topology.RNG{}, HelloMin: 2, HelloMax: 1},
		{Protocol: topology.RNG{}, Mech: Mechanisms{Buffer: -1}},
		{Protocol: topology.RNG{}, Mech: Mechanisms{WeakK: -1}},
		{Protocol: topology.RNG{}, Mech: Mechanisms{WeakK: 2}}, // no Weak selector
		{Protocol: topology.RNG{}, FloodRate: -1},
		{Protocol: topology.RNG{}, Weak: topology.WeakRNG{}, Mech: Mechanisms{WeakK: 2, Reactive: true}},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(model, cfg); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Radio: radio.Config{Delay: -1}}); err == nil {
		t.Error("bad radio config accepted")
	}
}

func TestAccessorsAfterRun(t *testing.T) {
	model := connectedStatic(t, 5, 50, 10)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(10)
	sawLogical := false
	for id := 0; id < 50; id++ {
		ln := nw.LogicalNeighbors(id)
		if !sort.IntsAreSorted(ln) {
			t.Fatalf("node %d logical neighbors unsorted: %v", id, ln)
		}
		if len(ln) > 0 {
			sawLogical = true
			if nw.TxRange(id) <= 0 {
				t.Fatalf("node %d has logical neighbors but zero range", id)
			}
		}
		if nw.TxRange(id) < nw.ActualRange(id) {
			t.Fatalf("node %d: tx range below actual", id)
		}
	}
	if !sawLogical {
		t.Error("no node selected any logical neighbor")
	}
	// Returned slice is a copy.
	ln := nw.LogicalNeighbors(0)
	if len(ln) > 0 {
		ln[0] = -99
		if nw.LogicalNeighbors(0)[0] == -99 {
			t.Error("LogicalNeighbors exposed internal state")
		}
	}
}

func TestEffectiveDigraphStaticReachability(t *testing.T) {
	model := connectedStatic(t, 7, 80, 10)
	nw, err := NewNetwork(model, Config{Protocol: topology.MST{Range: 250}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(10)
	d := nw.EffectiveDigraphAt(10)
	if got := d.AvgReachability(); got < 0.999 {
		t.Errorf("static effective digraph reachability = %v, want 1", got)
	}
}

func TestSnapshotSampling(t *testing.T) {
	model := connectedStatic(t, 9, 40, 10)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, Seed: 3, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Snapshots == 0 {
		t.Fatal("no snapshots recorded")
	}
	if res.SnapshotConnectivity < 0.999 {
		t.Errorf("static snapshot connectivity = %v", res.SnapshotConnectivity)
	}
	if res.Floods != 0 {
		t.Errorf("FloodRate 0 but %d floods", res.Floods)
	}
}

func TestReactiveModeStatic(t *testing.T) {
	model := connectedStatic(t, 11, 60, 10)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 4,
		Mech: Mechanisms{Reactive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Connectivity < 0.999 {
		t.Errorf("reactive static connectivity = %v", res.Connectivity)
	}
}

func TestReactiveBeatsAsyncUnderMobilityForMST(t *testing.T) {
	// Strong view consistency fixes MST's inconsistent-view partitions;
	// combined with a buffer it should clearly beat the asynchronous
	// baseline at moderate mobility.
	sumAsync, sumReactive := 0.0, 0.0
	const reps = 3
	for rep := uint64(0); rep < reps; rep++ {
		model := waypointModel(t, 20, 50+rep)
		async, err := NewNetwork(model, Config{
			Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 5 + rep,
			Mech: Mechanisms{Buffer: 30},
		})
		if err != nil {
			t.Fatal(err)
		}
		sumAsync += async.Run(20).Connectivity
		reactive, err := NewNetwork(model, Config{
			Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 5 + rep,
			Mech: Mechanisms{Buffer: 30, Reactive: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		sumReactive += reactive.Run(20).Connectivity
	}
	if sumReactive <= sumAsync {
		t.Errorf("reactive consistency did not help MST: async %.3f vs reactive %.3f",
			sumAsync/reps, sumReactive/reps)
	}
}

func TestProactiveModeStatic(t *testing.T) {
	model := connectedStatic(t, 19, 60, 10)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 4,
		Mech: Mechanisms{Proactive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Connectivity < 0.999 {
		t.Errorf("proactive static connectivity = %v", res.Connectivity)
	}
}

func TestProactiveBeatsAsyncUnderMobilityForMST(t *testing.T) {
	// The proactive scheme pins every packet to one view version, fixing
	// MST's inconsistent-view partitions, like the reactive scheme but
	// without synchronized beaconing.
	sumAsync, sumPro := 0.0, 0.0
	const reps = 3
	for rep := uint64(0); rep < reps; rep++ {
		model := waypointModel(t, 20, 60+rep)
		async, err := NewNetwork(model, Config{
			Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 5 + rep,
			Mech: Mechanisms{Buffer: 30},
		})
		if err != nil {
			t.Fatal(err)
		}
		sumAsync += async.Run(20).Connectivity
		pro, err := NewNetwork(model, Config{
			Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 5 + rep,
			Mech: Mechanisms{Buffer: 30, Proactive: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		sumPro += pro.Run(20).Connectivity
	}
	if sumPro <= sumAsync {
		t.Errorf("proactive consistency did not help MST: async %.3f vs proactive %.3f",
			sumAsync/reps, sumPro/reps)
	}
}

func TestProactiveExclusiveValidation(t *testing.T) {
	model := connectedStatic(t, 1, 10, 5)
	if _, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, Mech: Mechanisms{Proactive: true, Reactive: true},
	}); err == nil {
		t.Error("Proactive+Reactive accepted")
	}
	if _, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, Weak: topology.WeakRNG{},
		Mech: Mechanisms{Proactive: true, WeakK: 2},
	}); err == nil {
		t.Error("Proactive+WeakK accepted")
	}
}

func TestWeakConsistencyMode(t *testing.T) {
	model := connectedStatic(t, 13, 60, 10)
	nw, err := NewNetwork(model, Config{
		Weak: topology.WeakRNG{}, FloodRate: 10, Seed: 6,
		Mech: Mechanisms{WeakK: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Connectivity < 0.999 {
		t.Errorf("weak RNG static connectivity = %v", res.Connectivity)
	}
	if res.Protocol != "wRNG" {
		t.Errorf("result protocol = %q", res.Protocol)
	}
}

func TestWeakConservativeUnderMobility(t *testing.T) {
	// Weak selection is conservative, so its logical degree should be at
	// least the plain protocol's under the same mobility.
	model := waypointModel(t, 20, 77)
	plain, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rPlain := plain.Run(15)
	weak, err := NewNetwork(model, Config{
		Weak: topology.WeakRNG{}, Seed: 8, Mech: Mechanisms{WeakK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rWeak := weak.Run(15)
	if rWeak.AvgLogicalDegree < rPlain.AvgLogicalDegree-0.05 {
		t.Errorf("weak degree %.3f below plain %.3f", rWeak.AvgLogicalDegree, rPlain.AvgLogicalDegree)
	}
}

func TestPhysicalNeighborsIncreaseDelivery(t *testing.T) {
	model := waypointModel(t, 40, 21)
	base, err := NewNetwork(model, Config{Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 9,
		Mech: Mechanisms{Buffer: 30}})
	if err != nil {
		t.Fatal(err)
	}
	rBase := base.Run(20)
	pn, err := NewNetwork(model, Config{Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 9,
		Mech: Mechanisms{Buffer: 30, PhysicalNeighbors: true}})
	if err != nil {
		t.Fatal(err)
	}
	rPN := pn.Run(20)
	if rPN.Connectivity <= rBase.Connectivity {
		t.Errorf("PN did not improve MST: %.3f vs %.3f", rBase.Connectivity, rPN.Connectivity)
	}
}

func TestLossInjection(t *testing.T) {
	// With hello/packet loss, the network still runs and delivers most
	// floods on a static topology (redundant RNG links tolerate it).
	model := connectedStatic(t, 17, 80, 15)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, FloodRate: 10, Seed: 10,
		Radio: radio.Config{LossRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(15)
	if res.Connectivity < 0.5 {
		t.Errorf("10%% loss collapsed a static RNG network: %.3f", res.Connectivity)
	}
	if res.Connectivity >= 0.9999 {
		t.Logf("note: loss had no visible effect (connectivity %.4f)", res.Connectivity)
	}
}

func TestOverheadCounters(t *testing.T) {
	model := connectedStatic(t, 31, 40, 10)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, FloodRate: 10, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	// ~40 nodes x ~10 hellos each in 10 s.
	if res.HelloTx < 40*6 || res.HelloTx > 40*16 {
		t.Errorf("HelloTx = %d, want roughly 400", res.HelloTx)
	}
	// Each flood is forwarded once per reached node: floods x ~40.
	if res.DataTx < res.Floods || res.DataTx > res.Floods*41 {
		t.Errorf("DataTx = %d for %d floods", res.DataTx, res.Floods)
	}
	// No flooding: zero data overhead.
	quiet, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if q := quiet.Run(10); q.DataTx != 0 {
		t.Errorf("DataTx = %d without floods", q.DataTx)
	}
}

func TestChurnDegradesButDoesNotCollapse(t *testing.T) {
	// With ~10% of nodes down at any time (mean 18 s up, 2 s down), a
	// redundant protocol keeps most of the network reachable; delivery
	// must sit strictly between the churn-free run and collapse.
	model := connectedStatic(t, 61, 100, 20)
	run := func(churn ChurnConfig) Result {
		nw, err := NewNetwork(model, Config{
			Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 10, Seed: 26,
			Churn: churn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(20)
	}
	clean := run(ChurnConfig{})
	churned := run(ChurnConfig{MeanUp: 18, MeanDown: 2})
	if churned.Connectivity >= clean.Connectivity {
		t.Errorf("churn did not hurt: %.3f vs %.3f", churned.Connectivity, clean.Connectivity)
	}
	if churned.Connectivity < 0.3 {
		t.Errorf("light churn collapsed the network: %.3f", churned.Connectivity)
	}
}

func TestChurnValidation(t *testing.T) {
	model := connectedStatic(t, 1, 10, 5)
	for _, churn := range []ChurnConfig{
		{MeanUp: 1},   // one-sided
		{MeanDown: 1}, // one-sided
		{MeanUp: -1, MeanDown: 1},
	} {
		if _, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Churn: churn}); err == nil {
			t.Errorf("bad churn accepted: %+v", churn)
		}
	}
}

func TestCDSForwardCutsOverheadKeepsCoverage(t *testing.T) {
	// Gateway-only forwarding should slash the forward count massively on
	// a dense static network while preserving full coverage.
	model := connectedStatic(t, 43, 100, 15)
	run := func(cds bool) Result {
		nw, err := NewNetwork(model, Config{
			Protocol: topology.None{}, FloodRate: 10, Seed: 25,
			Mech: Mechanisms{PhysicalNeighbors: true, CDSForward: cds},
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(15)
	}
	blind, gated := run(false), run(true)
	if gated.Connectivity < 0.99 {
		t.Errorf("CDS broadcast coverage = %.3f, want ~1", gated.Connectivity)
	}
	if gated.DataTx >= blind.DataTx/2 {
		t.Errorf("CDS forwarding saved too little: %d vs %d transmissions",
			gated.DataTx, blind.DataTx)
	}
}

func TestCDSForwardValidation(t *testing.T) {
	model := connectedStatic(t, 1, 10, 5)
	if _, err := NewNetwork(model, Config{
		Protocol: topology.None{}, Mech: Mechanisms{CDSForward: true},
	}); err == nil {
		t.Error("CDSForward without PhysicalNeighbors accepted")
	}
	if _, err := NewNetwork(model, Config{
		Protocol: topology.None{},
		Mech:     Mechanisms{CDSForward: true, PhysicalNeighbors: true, SelfPruning: true},
	}); err == nil {
		t.Error("CDSForward + SelfPruning accepted")
	}
}

func TestSelfPruningCutsOverheadKeepsCoverage(t *testing.T) {
	// On a dense uncontrolled topology, self-pruning must slash the
	// number of forwards without losing coverage.
	model := connectedStatic(t, 41, 80, 15)
	run := func(prune bool) Result {
		nw, err := NewNetwork(model, Config{
			Protocol: topology.None{}, FloodRate: 10, Seed: 19,
			Mech: Mechanisms{SelfPruning: prune},
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(15)
	}
	blind, pruned := run(false), run(true)
	if pruned.Connectivity < blind.Connectivity-0.01 {
		t.Errorf("pruning lost coverage: %.3f vs %.3f", pruned.Connectivity, blind.Connectivity)
	}
	if pruned.Connectivity < 0.999 {
		t.Errorf("pruned coverage = %.3f, want ~1", pruned.Connectivity)
	}
	// The basic self-pruning rule only elides fully covered forwarders,
	// which are rare on a 900 m arena with 250 m range — expect modest
	// but strictly positive savings (the clique test below shows the
	// dense-network extreme).
	if pruned.DataTx >= blind.DataTx {
		t.Errorf("pruning saved nothing: %d vs %d forwards", pruned.DataTx, blind.DataTx)
	}
}

func TestSelfPruningClique(t *testing.T) {
	// In a clique every node covers everyone: only the source transmits.
	pts := make([]geom.Point, 12)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*10, 0)
	}
	model := mobility.NewStatic(arena, pts, 10)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.None{}, FloodRate: 5, Seed: 20,
		Mech: Mechanisms{SelfPruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(10)
	if res.Connectivity < 0.999 {
		t.Fatalf("clique coverage = %.3f", res.Connectivity)
	}
	if res.DataTx != res.Floods {
		t.Errorf("DataTx = %d for %d floods, want exactly one tx per flood", res.DataTx, res.Floods)
	}
}

func TestEnergyAccounting(t *testing.T) {
	model := connectedStatic(t, 37, 80, 15)
	run := func(p topology.Protocol, buffer float64) Result {
		nw, err := NewNetwork(model, Config{Protocol: p, FloodRate: 10, Seed: 18,
			Mech: Mechanisms{Buffer: buffer}})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(15)
	}
	mst := run(topology.MST{Range: 250}, 0)
	full := run(topology.None{}, 0)
	if mst.DataEnergy <= 0 {
		t.Fatal("no data energy recorded")
	}
	// Per-transmission energy: topology control must spend far less than
	// full power (ranges ~80 m vs 250 m at alpha 2 → ~10x less).
	mstPerTx := mst.DataEnergy / float64(mst.DataTx)
	fullPerTx := full.DataEnergy / float64(full.DataTx)
	// "none" covers its farthest 1-hop neighbor (~230 m of 250), so its
	// per-transmission energy approaches but does not reach 1.
	if fullPerTx < 0.6 || fullPerTx > 1.0001 {
		t.Errorf("uncontrolled per-tx energy = %v, want near 1", fullPerTx)
	}
	if mstPerTx > 0.3*fullPerTx {
		t.Errorf("MST per-tx energy = %v vs uncontrolled %v: want large savings", mstPerTx, fullPerTx)
	}
	// A buffer strictly increases per-transmission energy.
	buf := run(topology.MST{Range: 250}, 50)
	if buf.DataEnergy/float64(buf.DataTx) <= mstPerTx {
		t.Error("buffer did not increase per-tx energy")
	}
	// Hello energy: one unit per hello.
	if mst.HelloEnergy != float64(mst.HelloTx) {
		t.Errorf("HelloEnergy %v != HelloTx %d", mst.HelloEnergy, mst.HelloTx)
	}
}

func TestCollisionMACStillFunctions(t *testing.T) {
	// With a 1 ms airtime, beacons occasionally collide but the protocol
	// still converges on a static network; flooding loses some packets to
	// the broadcast storm yet delivers most of the network through RNG's
	// redundancy.
	model := connectedStatic(t, 23, 80, 20)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, FloodRate: 10, Seed: 14,
		Radio: radio.Config{TxDuration: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(20)
	if res.Connectivity < 0.6 {
		t.Errorf("collision MAC collapsed static RNG: %.3f", res.Connectivity)
	}
	// The ideal MAC on the same instance delivers everything; collisions
	// must only ever reduce delivery.
	ideal, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, FloodRate: 10, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	ires := ideal.Run(20)
	if res.Connectivity > ires.Connectivity+1e-9 {
		t.Errorf("collisions increased delivery: %.3f > %.3f", res.Connectivity, ires.Connectivity)
	}
}

func TestCollisionMACJamsDenseSimultaneousForwards(t *testing.T) {
	// A clique with a long airtime and near-zero forwarding jitter: flood
	// forwards and hello beacons overlap constantly, so some receptions
	// must be jammed — but the dense clique still delivers a solid
	// majority. The ideal MAC on the same instance delivers everything.
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*10, 0)
	}
	model := mobility.NewStatic(arena, pts, 10)
	run := func(txDur float64) float64 {
		nw, err := NewNetwork(model, Config{
			Protocol: topology.None{}, FloodRate: 5, Seed: 15,
			ForwardJitterMax: 1e-9,
			Radio:            radio.Config{TxDuration: txDur},
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(10).Connectivity
	}
	jammed, ideal := run(0.01), run(0)
	if ideal < 0.999 {
		t.Fatalf("ideal MAC clique delivery = %.3f, want 1", ideal)
	}
	if jammed >= 0.999 {
		t.Error("collision MAC lost nothing despite saturated channel")
	}
	if jammed < 0.3 {
		t.Errorf("collision MAC collapsed the clique: %.3f", jammed)
	}
}

// TestTheorem5InSim: with view synchronization (logical sets recomputed
// from fresh views at every forward) and a buffer sized by Theorem 5 for
// the *actual* information-age bound, no logical link may be out of range
// at any sample instant.
func TestTheorem5InSim(t *testing.T) {
	const avgSpeed = 5.0
	maxSpeed := 2 * avgSpeed // setdest convention
	model := waypointModel(t, avgSpeed, 33)
	// Age bound: entry expiry (2.5 s) + one full hello interval until the
	// next re-selection (1.25 s).
	maxDelay := 2.5 + 1.25
	buf := topology.BufferWidth(maxDelay, maxSpeed)
	nw, err := NewNetwork(model, Config{
		Protocol: topology.RNG{}, Seed: 12,
		Mech: Mechanisms{Buffer: buf},
	})
	if err != nil {
		t.Fatal(err)
	}
	violations, total := 0, 0
	nw.Engine().Every(3, 0.5, func(now float64) {
		for id := 0; id < model.N(); id++ {
			p := model.PositionAt(id, now)
			for _, v := range nw.LogicalNeighbors(id) {
				total++
				if model.PositionAt(v, now).Dist(p) > nw.TxRange(id)+1e-9 {
					violations++
				}
			}
		}
	})
	nw.Run(30)
	if total == 0 {
		t.Fatal("no logical links sampled")
	}
	if violations > 0 {
		t.Errorf("theorem-5 buffer violated %d of %d link-coverage checks", violations, total)
	}
}
