// Package manet composes the substrates — discrete-event engine, mobility
// model, ideal radio, "Hello" beaconing, and the topology-control framework
// — into the full simulation of the paper's evaluation (§5): nodes beacon
// asynchronously, select logical neighbors, adjust transmission power, and
// forward periodic network-wide floods whose delivery ratio measures weak
// connectivity.
//
// The three mobility-management mechanisms under study are switchable per
// run: the buffer zone (§4.3), the simplified on-the-fly view
// synchronization (§5.1), and the physical-neighbor relaxation (§5.1).
// Weak-consistency selection (§4.2) and reactive strong consistency (§4.1)
// are additionally available beyond what the paper simulated.
package manet

import (
	"fmt"

	"mstc/internal/channel"
	"mstc/internal/radio"
	"mstc/internal/topology"
	"mstc/internal/traffic"
)

// Mechanisms selects which mobility-management mechanisms are active.
type Mechanisms struct {
	// Buffer is the buffer-zone width l in meters: nodes transmit with
	// range actual + Buffer (clamped to the normal range).
	Buffer float64
	// ViewSync enables the simplified view-synchronization mechanism:
	// every node re-selects logical neighbors when it originates or
	// forwards a packet, using the latest "Hello" information and its own
	// previously advertised position.
	ViewSync bool
	// PhysicalNeighbors makes receivers accept (and forward) packets even
	// when they are not in the sender's logical neighbor set.
	PhysicalNeighbors bool
	// WeakK > 0 replaces plain selection with weak-consistency selection
	// over the WeakK most recent "Hello" messages per neighbor (§4.2).
	// Requires Config.Weak.
	WeakK int
	// Reactive replaces asynchronous beaconing with synchronized rounds
	// (the reactive strong-consistency scheme, §4.1): all nodes advertise
	// at the start of each "Hello" interval with a shared version and
	// select using only same-version messages.
	Reactive bool
	// CDSForward restricts flood forwarding to the connected dominating
	// set computed distributedly by Wu-Li marking with Rule-1/2 pruning
	// (references [34]/[35]): "Hello" messages additionally gossip
	// neighbor lists and marked status, and only gateways re-forward.
	// Requires PhysicalNeighbors (CDS broadcast replaces topology-layer
	// receiver filtering as the overhead-reduction mechanism).
	CDSForward bool
	// SelfPruning reduces flood forwarding with neighborhood-aware
	// self-pruning (the broadcast scheme of the paper's reference [34],
	// Wu & Dai 2003): packets carry the sender's known 1-hop neighbor
	// set, and a receiver re-forwards only if it has a neighbor the
	// sender does not cover. Delivery accounting is unchanged — only
	// redundant forwards are elided.
	SelfPruning bool
	// Proactive enables the proactive strong-consistency scheme (§4.1):
	// "Hello" messages carry epoch-derived timestamps, every flood packet
	// pins the last complete epoch, and each relaying node re-selects its
	// logical neighbors from the view as of that epoch — so all nodes a
	// packet visits decide on consistent local views (Theorem 2).
	Proactive bool
}

// ChurnConfig parameterizes node-failure injection.
type ChurnConfig struct {
	// MeanUp is the mean up-time in seconds before a failure.
	MeanUp float64
	// MeanDown is the mean outage duration in seconds.
	MeanDown float64
}

// Enabled reports whether churn injection is active.
func (c ChurnConfig) Enabled() bool { return c.MeanUp > 0 && c.MeanDown > 0 }

// Config parameterizes one simulation run.
type Config struct {
	// NormalRange is the normal (maximum) transmission range in meters
	// (250 in the paper).
	NormalRange float64
	// HelloMin/HelloMax bound the per-node fixed "Hello" interval,
	// drawn uniformly per node (1 ± 0.25 s in the paper).
	HelloMin, HelloMax float64
	// HelloExpiry drops neighbor entries whose newest message is older
	// than this (default 2 * HelloMax).
	HelloExpiry float64
	// Protocol selects logical neighbors (required unless WeakK > 0).
	Protocol topology.Protocol
	// Weak is the weak-consistency selector used when Mech.WeakK > 0.
	Weak topology.WeakProtocol
	// Mech are the active mobility-management mechanisms.
	Mech Mechanisms
	// Radio configures the medium (per-hop delay, loss, grid cell).
	Radio radio.Config
	// Channel configures the non-ideal channel subsystem: stochastic
	// per-packet loss (Bernoulli or Gilbert–Elliott), bounded random
	// per-delivery delay (Theorem 5's Δ″), and node churn driven by
	// dedicated substreams. The zero value is the ideal channel and is
	// provably bit-identical to not having the subsystem at all.
	Channel channel.Config
	// FloodRate is floods per second used to probe weak connectivity
	// (10 in the paper). 0 disables flooding.
	FloodRate float64
	// Traffic configures the unicast traffic subsystem: CBR flows routed
	// by an AODV-style on-demand or OLSR-style proactive protocol over
	// the controlled logical topology (see traffic.go). The zero value
	// disables it. Mutually exclusive with FloodRate, the collision MAC,
	// and CDS-restricted flooding.
	Traffic traffic.Config
	// FloodSettle is how long after origination a flood is scored
	// (every reachable node has forwarded by then). Default 0.5 s.
	FloodSettle float64
	// ForwardJitterMax is the maximum per-hop forwarding backoff in
	// seconds (default 1 ms), modelling MAC-layer scheduling jitter.
	ForwardJitterMax float64
	// SampleRate is metric samples per second (10 in the paper).
	SampleRate float64
	// SnapshotEvery, if positive, additionally samples the strict
	// (snapshot) connectivity of the directed effective topology every
	// that many seconds.
	SnapshotEvery float64
	// Churn, when both fields are positive, injects node failures: each
	// node alternates between up and down states with exponentially
	// distributed durations. A down node neither beacons, receives, nor
	// forwards — the failure model behind the fault-tolerance discussion
	// of §2.2 (k-connected topologies resist node failures).
	Churn ChurnConfig
	// PosNoise, when positive, adds independent Gaussian noise (std-dev
	// in meters per axis) to every advertised position — imprecise
	// location information (§1). With consistent views the logical
	// topology still connects (all nodes share the same wrong data);
	// only effective links suffer, which the buffer zone absorbs.
	PosNoise float64
	// EnergyAlpha is the path-loss exponent of the energy accounting
	// model: a transmission with range r costs (r/NormalRange)^EnergyAlpha
	// normalized energy units (default 2). Accounting only — it does not
	// affect protocol behavior.
	EnergyAlpha float64
	// Domains selects the region-parallel engine: the arena is decomposed
	// into Domains×Domains spatial domains whose "Hello" processing runs
	// between deterministic barriers (see parallel.go). 0 (the default)
	// keeps the serial engine; 1 exercises the parallel machinery with a
	// single domain. Results are bit-identical to the serial engine for
	// every Domains/ParallelWorkers setting — configurations the parallel
	// path cannot honor fall back to the serial engine automatically.
	Domains int
	// ParallelWorkers is the worker-goroutine count draining the domains
	// (clamped to [1, Domains²]; default 1, which runs the barriers inline
	// on the caller's goroutine). Requires Domains >= 1.
	ParallelWorkers int
	// NoSelectionCache disables the version-keyed selection cache, forcing
	// every selection to rebuild its view and rerun the protocol. Results
	// are identical either way — the knob exists so differential tests can
	// prove it.
	NoSelectionCache bool
	// Seed drives every stochastic choice of the run.
	Seed uint64
}

// defaultf returns v, or def when v is unset. The zero value is the "use
// the paper's default" sentinel, so the comparison is exact by construction.
func defaultf(v, def float64) float64 {
	if v == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		return def
	}
	return v
}

// withDefaults returns c with unset fields defaulted to the paper's values.
func (c Config) withDefaults() Config {
	c.NormalRange = defaultf(c.NormalRange, 250)
	c.HelloMin = defaultf(c.HelloMin, 0.75)
	c.HelloMax = defaultf(c.HelloMax, 1.25)
	c.HelloExpiry = defaultf(c.HelloExpiry, 2*c.HelloMax)
	c.FloodSettle = defaultf(c.FloodSettle, 0.5)
	c.ForwardJitterMax = defaultf(c.ForwardJitterMax, 0.001)
	c.SampleRate = defaultf(c.SampleRate, 10)
	c.EnergyAlpha = defaultf(c.EnergyAlpha, 2)
	c.Traffic = c.Traffic.WithDefaults()
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	switch {
	case c.NormalRange <= 0:
		return fmt.Errorf("manet: NormalRange must be positive, got %g", c.NormalRange)
	case c.HelloMin <= 0 || c.HelloMax < c.HelloMin:
		return fmt.Errorf("manet: need 0 < HelloMin <= HelloMax, got [%g, %g]", c.HelloMin, c.HelloMax)
	case c.Mech.Buffer < 0:
		return fmt.Errorf("manet: negative buffer width %g", c.Mech.Buffer)
	case c.Mech.WeakK < 0:
		return fmt.Errorf("manet: negative WeakK %d", c.Mech.WeakK)
	case c.Mech.WeakK > 0 && c.Weak == nil:
		return fmt.Errorf("manet: WeakK set but no weak selector configured")
	case c.Mech.WeakK == 0 && c.Protocol == nil:
		return fmt.Errorf("manet: no protocol configured")
	case c.FloodRate < 0 || c.SampleRate <= 0:
		return fmt.Errorf("manet: bad rates flood=%g sample=%g", c.FloodRate, c.SampleRate)
	case c.Mech.Reactive && c.Mech.WeakK > 0:
		return fmt.Errorf("manet: Reactive and WeakK are mutually exclusive")
	case c.Mech.Proactive && (c.Mech.Reactive || c.Mech.WeakK > 0):
		return fmt.Errorf("manet: Proactive is mutually exclusive with Reactive and WeakK")
	case c.Mech.CDSForward && !c.Mech.PhysicalNeighbors:
		return fmt.Errorf("manet: CDSForward requires PhysicalNeighbors")
	case c.Mech.CDSForward && c.Mech.SelfPruning:
		return fmt.Errorf("manet: CDSForward and SelfPruning are mutually exclusive")
	case (c.Churn.MeanUp < 0 || c.Churn.MeanDown < 0) ||
		(c.Churn.MeanUp > 0) != (c.Churn.MeanDown > 0):
		return fmt.Errorf("manet: churn needs both MeanUp and MeanDown positive (or both zero)")
	case c.PosNoise < 0:
		return fmt.Errorf("manet: negative PosNoise %g", c.PosNoise)
	case c.Domains < 0:
		return fmt.Errorf("manet: negative Domains %d", c.Domains)
	case c.ParallelWorkers < 0:
		return fmt.Errorf("manet: negative ParallelWorkers %d", c.ParallelWorkers)
	case c.ParallelWorkers > 0 && c.Domains == 0:
		return fmt.Errorf("manet: ParallelWorkers set but Domains is 0 (the serial engine has no workers)")
	case c.Channel.Churn.Enabled() && c.Churn.Enabled():
		return fmt.Errorf("manet: churn configured both directly (Config.Churn) and through the channel (Config.Channel.Churn)")
	case c.Channel.Delay.Enabled() && c.Radio.TxDuration > 0:
		// Collision resolution happens at airtime end; deferring delivery
		// further would consult a pruned interference log. Model one
		// non-ideal timing effect at a time.
		return fmt.Errorf("manet: channel delay and the collision MAC (Radio.TxDuration) are mutually exclusive")
	case c.Traffic.Enabled() && c.FloodRate > 0:
		return fmt.Errorf("manet: traffic and flooding are mutually exclusive (one probe workload per run)")
	case c.Traffic.Enabled() && c.Radio.TxDuration > 0:
		return fmt.Errorf("manet: traffic and the collision MAC (Radio.TxDuration) are mutually exclusive")
	case c.Traffic.Enabled() && c.Mech.CDSForward:
		return fmt.Errorf("manet: traffic and CDSForward are mutually exclusive (CDS restricts floods, which traffic replaces)")
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	return c.Channel.Validate()
}

// ProtocolName returns the configured protocol's display name.
func (c Config) ProtocolName() string {
	if c.Mech.WeakK > 0 {
		return c.Weak.Name()
	}
	return c.Protocol.Name()
}
