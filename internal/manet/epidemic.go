package manet

import (
	"fmt"

	"mstc/internal/sim"
)

// Epidemic (store-carry-forward) message dissemination — the
// mobility-assisted management of §2.2, combined with the mobility-tolerant
// effective topology exactly as the paper's future-work section proposes
// (§6): "The snapshot of an effective topology is not connected at every
// moment, but a message can be delivered within a bounded period of time."
//
// A message spreads in two ways at once: instantaneously along the current
// effective topology (every carrier floods its connected component, the
// mobility-tolerant part), and over time as carriers physically move into
// new components (the mobility-assisted part). Delivery is scored against a
// deadline window.

// EpidemicConfig parameterizes a dissemination run.
type EpidemicConfig struct {
	// Window is the delivery deadline in seconds after origination.
	Window float64
	// Check is the contact-evaluation period in seconds (default 0.25):
	// how often carriers probe for new effective-topology contacts.
	Check float64
	// Messages is how many messages to inject, spaced evenly across the
	// run so each has a full Window before the run ends.
	Messages int
}

func (c EpidemicConfig) withDefaults() EpidemicConfig {
	if c.Check == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.Check = 0.25
	}
	return c
}

func (c EpidemicConfig) validate() error {
	switch {
	case c.Window <= 0:
		return fmt.Errorf("manet: epidemic Window must be positive, got %g", c.Window)
	case c.Check <= 0:
		return fmt.Errorf("manet: epidemic Check must be positive, got %g", c.Check)
	case c.Messages < 1:
		return fmt.Errorf("manet: epidemic Messages must be >= 1, got %d", c.Messages)
	}
	return nil
}

// EpidemicResult aggregates a dissemination run.
type EpidemicResult struct {
	// Delivered is the mean fraction of non-source nodes reached within
	// the window.
	Delivered float64
	// MeanDelay is the mean delivery delay in seconds over all delivered
	// (message, node) pairs.
	MeanDelay float64
	// Messages is the number of scored messages.
	Messages int
}

// epidemicMsg is one in-flight message.
type epidemicMsg struct {
	src       int
	start     float64
	deadline  float64
	has       []bool
	reached   int // nodes with the message, source included
	delaySum  float64
	delivered int // non-source deliveries within the window
}

// RunEpidemic drives the network for duration seconds with the usual
// beaconing and selection active (so the effective topology evolves exactly
// as in Run) and measures epidemic dissemination instead of flooding.
// FloodRate is ignored; mechanisms (buffer, physical neighbors, ...) shape
// the effective topology the messages ride on.
func (nw *Network) RunEpidemic(duration float64, ec EpidemicConfig) (EpidemicResult, error) {
	ec = ec.withDefaults()
	if err := ec.validate(); err != nil {
		return EpidemicResult{}, err
	}
	warmup := 2 * nw.cfg.HelloMax
	if duration < warmup+ec.Window {
		return EpidemicResult{}, fmt.Errorf("manet: duration %g too short for warmup %g + window %g",
			duration, warmup, ec.Window)
	}
	if !nw.cfg.Mech.Reactive {
		for _, nd := range nw.nodes {
			nd := nd
			//lint:ignore substream deliberate: shares the 'f' hello-offset labels with Run — the entry points are mutually exclusive on one Network
			first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
			nw.eng.Every(first, nd.interval, func(now sim.Time) {
				nw.sendHello(nd, now)
			})
		}
	} else {
		nw.scheduleReactiveRounds()
	}

	var msgs []*epidemicMsg
	res := EpidemicResult{}
	totalDelivered, totalPairs, delaySum, delayCount := 0, 0, 0.0, 0

	// Injection schedule: evenly spaced so every message gets its window.
	span := duration - warmup - ec.Window
	for i := 0; i < ec.Messages; i++ {
		at := warmup
		if ec.Messages > 1 {
			at += span * float64(i) / float64(ec.Messages-1)
		}
		i := i
		nw.eng.Schedule(at, func(now sim.Time) {
			m := &epidemicMsg{
				src:      nw.rng.Sub('e', uint64(i)).Intn(len(nw.nodes)),
				start:    now,
				deadline: now + ec.Window,
				has:      make([]bool, len(nw.nodes)),
			}
			m.has[m.src] = true
			m.reached = 1
			msgs = append(msgs, m)
			nw.spread(m, now) // immediate flood within the current component
			nw.eng.Schedule(m.deadline, func(sim.Time) {
				totalDelivered += m.delivered
				totalPairs += len(nw.nodes) - 1
				delaySum += m.delaySum
				delayCount += m.delivered
				res.Messages++
				m.reached = -1 // retire
			})
		})
	}

	nw.eng.Every(warmup+ec.Check, ec.Check, func(now sim.Time) {
		for _, m := range msgs {
			if m.reached > 0 && m.reached < len(m.has) {
				nw.spread(m, now)
			}
		}
	})

	nw.eng.Run(duration)
	if totalPairs > 0 {
		res.Delivered = float64(totalDelivered) / float64(totalPairs)
	}
	if delayCount > 0 {
		res.MeanDelay = delaySum / float64(delayCount)
	}
	return res, nil
}

// spread infects every node reachable from the current carrier set over the
// instantaneous effective topology.
func (nw *Network) spread(m *epidemicMsg, now sim.Time) {
	d := nw.EffectiveDigraphAt(now)
	stack := make([]int, 0, m.reached)
	for id, has := range m.has {
		if has {
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range d.Out(u) {
			if !m.has[v] {
				m.has[v] = true
				m.reached++
				m.delivered++
				m.delaySum += now - m.start
				stack = append(stack, int(v))
			}
		}
	}
}
