package manet_test

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/topology"
)

// A complete simulation in a dozen lines: build a mobility model, pick a
// protocol and mechanisms, run, and read the aggregated result.
func ExampleNetwork_Run() {
	// Four static nodes in a line, 100 m apart.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(300, 0),
	}
	model := mobility.NewStatic(geom.Square(900), pts, 20)

	nw, err := manet.NewNetwork(model, manet.Config{
		Protocol:  topology.RNG{},
		FloodRate: 10,
		Seed:      1,
		Mech:      manet.Mechanisms{Buffer: 10},
	})
	if err != nil {
		panic(err)
	}
	res := nw.Run(20)
	fmt.Printf("connectivity: %.3f\n", res.Connectivity)
	fmt.Printf("logical degree: %.1f\n", res.AvgLogicalDegree)
	// Output:
	// connectivity: 1.000
	// logical degree: 1.5
}
