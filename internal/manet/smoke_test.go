package manet

import (
	"fmt"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func waypointModel(tb testing.TB, avgSpeed float64, seed uint64) mobility.Model {
	tb.Helper()
	lo, hi := mobility.SpeedSetdest(avgSpeed)
	m, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: 100, SpeedMin: lo, SpeedMax: hi, Horizon: 100,
	}, xrand.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestSmokeBaselines prints (with -v) the Table-1-style metrics and the
// connectivity collapse; assertions are loose sanity checks while the real
// reproduction lives in package experiment.
func TestSmokeBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run")
	}
	for _, proto := range topology.Baselines(250) {
		for _, speed := range []float64{1, 40} {
			model := waypointModel(t, speed, 42)
			nw, err := NewNetwork(model, Config{Protocol: proto, FloodRate: 10, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			res := nw.Run(30)
			fmt.Printf("%-6s speed=%3.0f conn=%.3f range=%.1f logDeg=%.2f phyDeg=%.2f floods=%d\n",
				proto.Name(), speed, res.Connectivity, res.AvgTxRange,
				res.AvgLogicalDegree, res.AvgPhysicalDegree, res.Floods)
			if res.Floods == 0 {
				t.Fatalf("%s: no floods scored", proto.Name())
			}
			if res.AvgTxRange <= 0 || res.AvgTxRange > 250 {
				t.Errorf("%s: implausible range %v", proto.Name(), res.AvgTxRange)
			}
		}
	}
}
