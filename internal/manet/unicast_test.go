package manet

import (
	"testing"

	"mstc/internal/topology"
)

func TestUnicastStaticDenseTopologyDelivers(t *testing.T) {
	// Greedy routing needs a topology without local minima; the dense
	// uncontrolled graph qualifies on most instances, and everything is
	// static so no range failures can occur.
	model := connectedStatic(t, 51, 80, 15)
	nw, err := NewNetwork(model, Config{Protocol: topology.None{}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RunUnicast(15, UnicastConfig{Rate: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes < 100 {
		t.Fatalf("only %d probes", res.Probes)
	}
	if res.RangeFailures != 0 {
		t.Errorf("static run had %d range failures", res.RangeFailures)
	}
	if res.Delivered < 0.95 {
		t.Errorf("dense static delivery = %.3f", res.Delivered)
	}
	if res.Delivered > 0 && res.AvgHops <= 0 {
		t.Error("no hop accounting")
	}
}

func TestUnicastGGBeatsMSTGreedy(t *testing.T) {
	// GG has far fewer greedy local minima than the tree-like MST.
	model := connectedStatic(t, 53, 100, 15)
	run := func(p topology.Protocol) UnicastResult {
		nw, err := NewNetwork(model, Config{Protocol: p, Seed: 22})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.RunUnicast(15, UnicastConfig{Rate: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gg := run(topology.Gabriel{})
	mst := run(topology.MST{Range: 250})
	if gg.Delivered <= mst.Delivered {
		t.Errorf("GG greedy delivery %.3f should beat MST %.3f", gg.Delivered, mst.Delivered)
	}
}

func TestUnicastMobilityRangeFailures(t *testing.T) {
	// Under mobility without a buffer, some failures must be range
	// failures (outdated information), and a generous buffer plus view
	// synchronization must improve delivery.
	model := waypointModel(t, 40, 401)
	raw, err := NewNetwork(model, Config{Protocol: topology.Gabriel{}, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rawRes, err := raw.RunUnicast(20, UnicastConfig{Rate: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rawRes.RangeFailures == 0 {
		t.Error("no range failures at 40 m/s without buffer — implausible")
	}
	fixed, err := NewNetwork(model, Config{
		Protocol: topology.Gabriel{}, Seed: 23,
		Mech: Mechanisms{Buffer: 50, ViewSync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	fixedRes, err := fixed.RunUnicast(20, UnicastConfig{Rate: 20})
	if err != nil {
		t.Fatal(err)
	}
	if fixedRes.Delivered <= rawRes.Delivered {
		t.Errorf("mobility management did not improve unicast: %.3f vs %.3f",
			rawRes.Delivered, fixedRes.Delivered)
	}
}

func TestUnicastValidation(t *testing.T) {
	model := connectedStatic(t, 55, 10, 5)
	nw, err := NewNetwork(model, Config{Protocol: topology.RNG{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RunUnicast(5, UnicastConfig{Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := nw.RunUnicast(5, UnicastConfig{Rate: 1, MaxHops: -1}); err == nil {
		t.Error("negative MaxHops accepted")
	}
}

func TestUnicastAccountsEnergy(t *testing.T) {
	model := connectedStatic(t, 57, 50, 10)
	nw, err := NewNetwork(model, Config{Protocol: topology.Gabriel{}, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RunUnicast(10, UnicastConfig{Rate: 10}); err != nil {
		t.Fatal(err)
	}
	// Unicast hops are data transmissions too.
	res := nw.result()
	if res.DataTx == 0 || res.DataEnergy <= 0 {
		t.Errorf("unicast hops not accounted: tx=%d energy=%v", res.DataTx, res.DataEnergy)
	}
}
