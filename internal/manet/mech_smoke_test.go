package manet

import (
	"fmt"
	"testing"

	"mstc/internal/topology"
)

// TestSmokeMechanisms checks the headline mechanism results: view
// synchronization + small buffer rescues RNG at moderate mobility (Fig. 9b),
// and physical neighbors + large buffer rescue every protocol even at
// extreme mobility (Fig. 10).
func TestSmokeMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run")
	}
	run := func(name string, speed float64, cfg Config) Result {
		model := waypointModel(t, speed, 42)
		nw, err := NewNetwork(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run(30)
		fmt.Printf("%-28s speed=%3.0f conn=%.3f range=%.1f phyDeg=%.2f\n",
			name, speed, res.Connectivity, res.AvgTxRange, res.AvgPhysicalDegree)
		return res
	}

	// RNG raw at 40 m/s: collapsed.
	raw := run("RNG", 40, Config{Protocol: topology.RNG{}, FloodRate: 10, Seed: 7})
	// RNG + 10 m buffer + view sync: tolerant (paper: >= 90%).
	vs := run("RNG+buf10+VS", 40, Config{
		Protocol: topology.RNG{}, FloodRate: 10, Seed: 7,
		Mech: Mechanisms{Buffer: 10, ViewSync: true},
	})
	if vs.Connectivity < raw.Connectivity+0.3 {
		t.Errorf("view sync + buffer should rescue RNG: raw %.3f vs %.3f", raw.Connectivity, vs.Connectivity)
	}

	// MST + 100 m buffer + physical neighbors at 160 m/s: near-perfect.
	pn := run("MST+buf100+PN", 160, Config{
		Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 7,
		Mech: Mechanisms{Buffer: 100, PhysicalNeighbors: true},
	})
	if pn.Connectivity < 0.95 {
		t.Errorf("PN + 100 m buffer at 160 m/s should reach ~100%%, got %.3f", pn.Connectivity)
	}

	// Buffer-only on SPT-2 at 40 m/s with 10 m buffer: tolerant (Fig. 7d).
	spt := run("SPT-2+buf10", 40, Config{
		Protocol: topology.SPT{Alpha: 2, Range: 250}, FloodRate: 10, Seed: 7,
		Mech: Mechanisms{Buffer: 10},
	})
	// Single-run statistic: across seeds the buffered run sits near 0.81
	// (±0.03), while the unbuffered collapse is ~0.53 — 0.75 separates the
	// two regimes with margin for per-seed noise.
	if spt.Connectivity < 0.75 {
		t.Errorf("SPT-2 with 10 m buffer at 40 m/s should stay high, got %.3f", spt.Connectivity)
	}
}
