package manet

import (
	"testing"

	"mstc/internal/geom"
	"mstc/internal/topology"
	"mstc/internal/traffic"
)

// crossingRelays is a scripted four-node topology for the link-break test:
// source A and destination D sit 400 m apart (out of the 250 m direct
// range), relay B starts between them and drifts out of range while relay
// B2 drifts in. The only route is two-hop, and the relay it runs through
// must change mid-run.
//
//	A = node 0 at (100, 400), static
//	D = node 1 at (500, 400), static
//	B = node 2 at (300, 400 + 25t): in range of both until t = 6, the
//	    moment |y-400| = 150 makes dist(A,B) exceed 250
//	B2 = node 3 at (300, 150 + 25t): out of range until t = 4, then in
//	    range of both through t = 16
type crossingRelays struct{}

func (crossingRelays) N() int            { return 4 }
func (crossingRelays) Arena() geom.Rect  { return geom.Square(900) }
func (crossingRelays) MaxSpeed() float64 { return 25 }
func (crossingRelays) Horizon() float64  { return 1e9 }

func (crossingRelays) PositionAt(id int, t float64) geom.Point {
	switch id {
	case 0:
		return geom.Pt(100, 400)
	case 1:
		return geom.Pt(500, 400)
	case 2:
		return geom.Pt(300, 400+25*t)
	default:
		return geom.Pt(300, 150+25*t)
	}
}

// TestAODVLinkBreakRERR proves the RERR teardown and rediscovery cycle:
// when the relay carrying the only route moves out of range, the source
// must detect the break (link-layer feedback on the failed hop), tear the
// route down with a RERR, rediscover through the relay that moved in, and
// keep delivering. Everything is deterministic, so the margins are exact
// properties of the script, not statistical hopes.
func TestAODVLinkBreakRERR(t *testing.T) {
	cfg := Config{Protocol: topology.RNG{}, Seed: 3}
	// Physical-neighbor acceptance keeps the topology filter out of the
	// way: the test is about the routing state machine, not selection.
	cfg.Mech.PhysicalNeighbors = true
	cfg.Traffic = traffic.Config{
		Mode:  traffic.AODV,
		Flows: 1,
		Rate:  4,
		// A lifetime far beyond the run: the route must die by RERR
		// (forward failure), never by quiet expiry.
		RouteLifetime: 1e6,
	}
	nw, err := NewNetwork(crossingRelays{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror Run's scheduling, but pin the flow's endpoints to the
	// scripted pair after the setup draws (the 't' substream draws random
	// endpoints; the script needs A -> D).
	for _, nd := range nw.nodes {
		nd := nd
		first := nw.rng.Sub('f', uint64(nd.id)).Uniform(0, nd.interval)
		nw.eng.Every(first, nd.interval, func(now float64) {
			nw.sendHello(nd, now)
		})
	}
	const duration = 12
	nw.startTraffic(duration)
	ts := nw.traf
	ts.flows[0].src, ts.flows[0].dst = 0, 1
	nw.eng.Run(duration)
	res := nw.result().Traffic

	// Emission runs from the 2.5 s warm-up to the 0.5 s drain at 4 pkt/s.
	if res.Sent < 30 {
		t.Fatalf("flow emitted %d packets, expected ~36", res.Sent)
	}
	// The break must have been detected and torn down at least once.
	if res.RERRTx < 1 {
		t.Fatalf("no RERR despite the relay leaving range (delivered %d/%d)",
			res.Delivered, res.Sent)
	}
	// Packets deliverable through B alone stop at t = 6: at most
	// (6 - 2.5) * 4 + 1 = 15. More delivered proves rediscovery moved the
	// route onto B2.
	if res.Delivered <= 15 {
		t.Fatalf("delivered %d/%d packets — rediscovery after the break did not restore the flow",
			res.Delivered, res.Sent)
	}
	// Every delivery crosses exactly one relay.
	if res.AvgHops != 2 {
		t.Errorf("AvgHops = %g, want exactly 2 on the two-hop script", res.AvgHops)
	}
	if res.RREQTx == 0 || res.RREPTx == 0 {
		t.Errorf("discovery counters empty: RREQ=%d RREP=%d", res.RREQTx, res.RREPTx)
	}
}

// TestOLSRTrafficDelivers exercises the proactive path end to end on a
// static connected network: MPR gossip in hellos, TC flooding, link-state
// routes, and delivery with zero AODV control traffic.
func TestOLSRTrafficDelivers(t *testing.T) {
	model := connectedStatic(t, 100, 40, 1e9)
	cfg := Config{Protocol: topology.RNG{}, Seed: 11}
	cfg.Traffic = traffic.Config{Mode: traffic.OLSR, Flows: 6, Rate: 2, TCInterval: 2}
	nw, err := NewNetwork(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run(30).Traffic
	if res.Mode != "olsr" {
		t.Fatalf("mode = %q, want olsr", res.Mode)
	}
	if res.Sent == 0 {
		t.Fatal("no packets emitted")
	}
	if res.TCTx == 0 {
		t.Fatal("no TC messages transmitted")
	}
	if res.RREQTx != 0 || res.RREPTx != 0 || res.RERRTx != 0 {
		t.Fatalf("AODV control in OLSR mode: RREQ=%d RREP=%d RERR=%d",
			res.RREQTx, res.RREPTx, res.RERRTx)
	}
	if res.DeliveryRatio < 0.5 {
		t.Fatalf("delivery ratio %.2f on a static connected network (delivered %d/%d)",
			res.DeliveryRatio, res.Delivered, res.Sent)
	}
}

// TestTrafficDeterminism pins that two identical traffic runs produce
// identical results for both modes, and that a different seed moves them.
func TestTrafficDeterminism(t *testing.T) {
	model := connectedStatic(t, 100, 40, 1e9)
	run := func(mode traffic.Mode, seed uint64) Result {
		cfg := Config{Protocol: topology.RNG{}, Seed: seed}
		cfg.Traffic = traffic.Config{Mode: mode, Flows: 4, Rate: 2}
		nw, err := NewNetwork(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run(20)
	}
	for _, mode := range []traffic.Mode{traffic.AODV, traffic.OLSR} {
		a, b := run(mode, 5), run(mode, 5)
		if a != b {
			t.Errorf("%v: identical seeds diverged:\n%+v\n%+v", mode, a, b)
		}
		if c := run(mode, 6); c.Traffic == a.Traffic {
			t.Errorf("%v: different seed produced identical traffic results", mode)
		}
	}
}

// TestTrafficConfigExclusions pins the validation rules the traffic
// subsystem adds.
func TestTrafficConfigExclusions(t *testing.T) {
	model := connectedStatic(t, 100, 10, 1e9)
	base := Config{Protocol: topology.RNG{}, Seed: 1}
	base.Traffic = traffic.Config{Mode: traffic.AODV}
	if _, err := NewNetwork(model, base); err != nil {
		t.Fatalf("plain traffic config rejected: %v", err)
	}
	flood := base
	flood.FloodRate = 10
	if _, err := NewNetwork(model, flood); err == nil {
		t.Error("traffic + flooding accepted")
	}
	mac := base
	mac.Radio.TxDuration = 0.001
	if _, err := NewNetwork(model, mac); err == nil {
		t.Error("traffic + collision MAC accepted")
	}
	cds := base
	cds.Mech.PhysicalNeighbors = true
	cds.Mech.CDSForward = true
	if _, err := NewNetwork(model, cds); err == nil {
		t.Error("traffic + CDSForward accepted")
	}
}
