// Package route implements geographic (position-based) unicast routing over
// a controlled topology: greedy forwarding and greedy-face-greedy (GFG /
// GPSR-style perimeter) recovery.
//
// This is the downstream consumer the paper's introduction motivates:
// topology control exists so that routing can run over a sparse,
// low-power logical topology. Greedy forwarding needs only the positions
// already gossiped by "Hello" messages; face recovery additionally needs
// the topology to be planar — which the Gabriel-graph and RNG protocols
// guarantee — and then delivery on a static connected topology is
// guaranteed (Bose, Morin, Stojmenović & Urrutia 1999; Karp & Kung 2000).
package route

import (
	"fmt"
	"math"
	"sort"

	"mstc/internal/geom"
)

// Router answers unicast next-hop queries over one topology snapshot:
// node positions plus a symmetric adjacency.
type Router struct {
	pts []geom.Point
	// adj[v] is v's neighbor ids sorted counterclockwise by angle
	// around v (ties by id).
	adj [][]int
}

// New builds a Router. adjacency must be symmetric (v in adj[u] iff u in
// adj[v]); ordering is normalized internally.
func New(pts []geom.Point, adjacency [][]int) (*Router, error) {
	if len(pts) != len(adjacency) {
		return nil, fmt.Errorf("route: %d positions but %d adjacency rows", len(pts), len(adjacency))
	}
	r := &Router{pts: pts, adj: make([][]int, len(pts))}
	for u, nbrs := range adjacency {
		r.adj[u] = make([]int, len(nbrs))
		copy(r.adj[u], nbrs)
		for _, v := range nbrs {
			if v < 0 || v >= len(pts) {
				return nil, fmt.Errorf("route: node %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return nil, fmt.Errorf("route: node %d lists itself", u)
			}
			if !contains(adjacency[v], u) {
				return nil, fmt.Errorf("route: asymmetric link (%d, %d)", u, v)
			}
		}
		u := u
		sort.Slice(r.adj[u], func(a, b int) bool {
			pa := r.angleOf(u, r.adj[u][a])
			pb := r.angleOf(u, r.adj[u][b])
			if pa != pb { //lint:ignore float-eq exact compare is the angular total order; ties fall through to ids
				return pa < pb
			}
			return r.adj[u][a] < r.adj[u][b]
		})
	}
	return r, nil
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// angleOf returns the angle of neighbor v around u in [0, 2π).
func (r *Router) angleOf(u, v int) float64 {
	a := r.pts[v].Sub(r.pts[u]).Angle()
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Greedy routes from src to dst by always forwarding to the neighbor
// strictly closest to dst (closer than the current node). It returns the
// node path (src first) and whether dst was reached; on failure the path
// ends at the local minimum.
func (r *Router) Greedy(src, dst int) (path []int, ok bool) {
	cur := src
	path = append(path, cur)
	for cur != dst {
		next, improved := r.greedyStep(cur, dst)
		if !improved {
			return path, false
		}
		cur = next
		path = append(path, cur)
	}
	return path, true
}

// greedyStep returns the neighbor of cur closest to dst, and whether it is
// strictly closer to dst than cur itself.
func (r *Router) greedyStep(cur, dst int) (int, bool) {
	target := r.pts[dst]
	best := -1
	bestD := r.pts[cur].Dist2(target)
	for _, v := range r.adj[cur] {
		if d := r.pts[v].Dist2(target); d < bestD {
			bestD = d
			best = v
		}
	}
	if best == -1 {
		return cur, false
	}
	return best, true
}

// GFG routes from src to dst with greedy forwarding plus right-hand-rule
// face recovery at local minima (greedy-face-greedy). On a connected planar
// embedding (e.g. a Gabriel-graph topology) delivery is guaranteed.
// It returns the traversed node path and whether dst was reached.
func (r *Router) GFG(src, dst int) (path []int, ok bool) {
	const modeGreedy, modePerimeter = 0, 1
	cur := src
	path = append(path, cur)
	mode := modeGreedy

	// Perimeter-mode state (GPSR naming): Lp is the position where the
	// packet entered perimeter mode, cross the closest crossing of the
	// current face with segment Lp→T found so far.
	var lp geom.Point
	var crossD float64
	var from int // previous hop in the face walk

	// Hop budget: a face walk visits each directed edge at most twice
	// across face changes on a planar graph; 4·(E+n)+16 is a safe bound.
	budget := 16 + 4*len(r.pts)
	for _, nbrs := range r.adj {
		budget += 4 * len(nbrs)
	}

	target := r.pts[dst]
	for cur != dst {
		if budget--; budget < 0 {
			return path, false
		}
		if mode == modeGreedy {
			next, improved := r.greedyStep(cur, dst)
			if improved {
				cur = next
				path = append(path, cur)
				continue
			}
			if len(r.adj[cur]) == 0 {
				return path, false
			}
			// Enter perimeter mode on the face intersected by cur→T.
			mode = modePerimeter
			lp = r.pts[cur]
			crossD = math.Inf(1)
			from = r.firstFaceEdge(cur, target)
			// Walk the first edge immediately.
			cur, from = from, cur
			path = append(path, cur)
			continue
		}
		// Perimeter mode: recover to greedy as soon as we are closer to
		// the target than the entry point.
		if r.pts[cur].Dist2(target) < lp.Dist2(target) {
			mode = modeGreedy
			continue
		}
		next := r.rightHand(cur, from)
		// Face changes: skip edges that cross Lp→T closer to T.
		for i := 0; i <= len(r.adj[cur]); i++ {
			x, crosses := geom.SegmentIntersection(r.pts[cur], r.pts[next], lp, target)
			if !crosses {
				break
			}
			d := x.Dist2(target)
			if d >= crossD {
				break
			}
			crossD = d
			next = r.rightHand(cur, next)
		}
		if next == cur {
			return path, false // isolated in the walk
		}
		cur, from = next, cur
		path = append(path, cur)
	}
	return path, true
}

// firstFaceEdge picks the first edge of a face walk: the neighbor reached
// by rotating counterclockwise from the ray cur→target — the edge bounding
// the face that the segment cur→target enters (right-hand rule start).
func (r *Router) firstFaceEdge(cur int, target geom.Point) int {
	ref := target.Sub(r.pts[cur]).Angle()
	if ref < 0 {
		ref += 2 * math.Pi
	}
	best := -1
	bestDelta := math.Inf(1)
	for _, v := range r.adj[cur] {
		a := r.angleOf(cur, v)
		delta := a - ref
		for delta <= 0 {
			delta += 2 * math.Pi
		}
		if delta < bestDelta {
			bestDelta = delta
			best = v
		}
	}
	return best
}

// rightHand returns the next neighbor of v counterclockwise after the
// incoming direction from `from` — the right-hand-rule successor that keeps
// the face on the right of the walk.
func (r *Router) rightHand(v, from int) int {
	if len(r.adj[v]) == 1 {
		return r.adj[v][0] // dead end: bounce back
	}
	inAngle := r.pts[from].Sub(r.pts[v]).Angle()
	if inAngle < 0 {
		inAngle += 2 * math.Pi
	}
	best := -1
	bestDelta := math.Inf(1)
	for _, w := range r.adj[v] {
		a := r.angleOf(v, w)
		delta := a - inAngle
		for delta <= 1e-15 {
			delta += 2 * math.Pi
		}
		if delta < bestDelta {
			bestDelta = delta
			best = w
		}
	}
	return best
}

// PathLength returns the Euclidean length of a node path.
func (r *Router) PathLength(path []int) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		total += r.pts[path[i-1]].Dist(r.pts[path[i]])
	}
	return total
}

// Stretch returns the ratio of the path's Euclidean length to the straight-
// line distance between its endpoints (1 for direct paths; +Inf if the
// endpoints coincide but the path is non-empty).
func (r *Router) Stretch(path []int) float64 {
	if len(path) < 2 {
		return 1
	}
	direct := r.pts[path[0]].Dist(r.pts[path[len(path)-1]])
	if direct == 0 { //lint:ignore float-eq exact guard against dividing by a zero baseline distance
		return math.Inf(1)
	}
	return r.PathLength(path) / direct
}
