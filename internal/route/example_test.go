package route_test

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/route"
)

// Face recovery routes around a void that strands plain greedy forwarding.
func ExampleRouter_GFG() {
	// src sits in a cul-de-sac: its only neighbor is farther from dst,
	// so greedy stalls immediately; the right-hand face walk escapes.
	pts := []geom.Point{
		geom.Pt(0, 0),     // 0: src at the bottom of a dead end
		geom.Pt(-30, -10), // 1: only neighbor, farther from dst
		geom.Pt(-30, 30),  // 2
		geom.Pt(0, 30),    // 3: dst
	}
	r, err := route.New(pts, [][]int{{1}, {0, 2}, {1, 3}, {2}})
	if err != nil {
		panic(err)
	}
	if _, ok := r.Greedy(0, 3); !ok {
		fmt.Println("greedy: stuck at a local minimum")
	}
	path, ok := r.GFG(0, 3)
	fmt.Println("gfg delivered:", ok, "hops:", len(path)-1, "end:", path[len(path)-1])
	// Output:
	// greedy: stuck at a local minimum
	// gfg delivered: true hops: 7 end: 3
}
