package route

import (
	"math"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

const normalRange = 250.0

// routerFrom builds a Router over the logical topology a protocol produces
// with consistent views.
func routerFrom(t *testing.T, pts []geom.Point, p topology.Protocol) *Router {
	t.Helper()
	sel := snapshot.Selections(pts, p, normalRange)
	lg := snapshot.Logical(pts, sel)
	adj := make([][]int, len(pts))
	for u := range adj {
		for _, h := range lg.Neighbors(u) {
			adj[u] = append(adj[u], h.To)
		}
	}
	r, err := New(pts, adj)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func connectedPoints(t *testing.T, seed uint64, n int) []geom.Point {
	t.Helper()
	for s := seed; ; s++ {
		pts := mobility.UniformPoints(arena, n, xrand.New(s))
		if graph.UnitDisk(pts, normalRange).Connected() {
			return pts
		}
	}
}

func TestNewValidation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if _, err := New(pts, [][]int{{1}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := New(pts, [][]int{{1}, {}}); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
	if _, err := New(pts, [][]int{{0}, {}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(pts, [][]int{{5}, {}}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	if _, err := New(pts, [][]int{{1}, {0}}); err != nil {
		t.Errorf("valid adjacency rejected: %v", err)
	}
}

func TestGreedyOnLine(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(30, 0)}
	r, err := New(pts, [][]int{{1}, {0, 2}, {1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := r.Greedy(0, 3)
	if !ok || len(path) != 4 {
		t.Fatalf("greedy path = %v, ok=%v", path, ok)
	}
	if r.PathLength(path) != 30 || r.Stretch(path) != 1 {
		t.Errorf("length=%v stretch=%v", r.PathLength(path), r.Stretch(path))
	}
	// Self-route.
	if path, ok := r.Greedy(2, 2); !ok || len(path) != 1 {
		t.Errorf("self route = %v, %v", path, ok)
	}
}

func TestGreedyLocalMinimum(t *testing.T) {
	// A "U" obstacle: src at the bottom of a cul-de-sac; the only
	// neighbor is farther from dst, so plain greedy fails.
	pts := []geom.Point{
		geom.Pt(0, 0),    // 0: src, local minimum
		geom.Pt(-20, 10), // 1: src's only neighbor (farther from dst)
		geom.Pt(-20, 40), // 2
		geom.Pt(0, 50),   // 3: dst... wait, 3 must be closer to 0? dst=(0,50): d(0,dst)=50, d(1,dst)=44.7 < 50.
	}
	// Rebuild so node 1 is genuinely farther from dst than node 0:
	pts = []geom.Point{
		geom.Pt(0, 0),     // 0: src
		geom.Pt(-30, -10), // 1: only neighbor, farther from dst
		geom.Pt(-30, 30),  // 2
		geom.Pt(0, 30),    // 3: dst
	}
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	r, err := New(pts, adj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Greedy(0, 3); ok {
		t.Fatal("greedy should fail at the local minimum")
	}
	// GFG recovers around the face.
	path, ok := r.GFG(0, 3)
	if !ok {
		t.Fatalf("GFG failed: path %v", path)
	}
	if path[len(path)-1] != 3 {
		t.Errorf("GFG ended at %d", path[len(path)-1])
	}
}

func TestGFGDeliversOnGabrielTopology(t *testing.T) {
	// GG is planar and connectivity-preserving: GFG must deliver between
	// every sampled pair on random connected instances.
	for seed := uint64(0); seed < 5; seed++ {
		pts := connectedPoints(t, seed*211+3, 80)
		r := routerFrom(t, pts, topology.Gabriel{})
		rng := xrand.New(seed)
		for trial := 0; trial < 60; trial++ {
			src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
			path, ok := r.GFG(src, dst)
			if !ok {
				t.Fatalf("seed %d: GFG failed %d->%d (path %v)", seed, src, dst, path)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("endpoints wrong: %v", path)
			}
		}
	}
}

func TestGFGDeliversOnRNGTopology(t *testing.T) {
	// RNG ⊆ GG is also planar.
	pts := connectedPoints(t, 5, 80)
	r := routerFrom(t, pts, topology.RNG{})
	rng := xrand.New(9)
	for trial := 0; trial < 60; trial++ {
		src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
		if _, ok := r.GFG(src, dst); !ok {
			t.Fatalf("GFG failed %d->%d on RNG topology", src, dst)
		}
	}
}

func TestGreedySuccessHigherOnDenserTopology(t *testing.T) {
	// Greedy alone fails at local minima; the denser SPT-2 topology
	// should strand fewer pairs than the sparse MST.
	pts := connectedPoints(t, 7, 100)
	count := func(p topology.Protocol) int {
		r := routerFrom(t, pts, p)
		okCount := 0
		rng := xrand.New(3)
		for trial := 0; trial < 200; trial++ {
			src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
			if _, ok := r.Greedy(src, dst); ok {
				okCount++
			}
		}
		return okCount
	}
	mst := count(topology.MST{Range: normalRange})
	spt := count(topology.SPT{Alpha: 2, Range: normalRange})
	if spt < mst {
		t.Errorf("greedy on SPT-2 (%d ok) should beat MST (%d ok)", spt, mst)
	}
}

func TestGFGPathsReasonableStretch(t *testing.T) {
	pts := connectedPoints(t, 11, 80)
	r := routerFrom(t, pts, topology.Gabriel{})
	rng := xrand.New(4)
	totalStretch, count := 0.0, 0
	for trial := 0; trial < 100; trial++ {
		src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
		if src == dst {
			continue
		}
		path, ok := r.GFG(src, dst)
		if !ok {
			t.Fatalf("GFG failed %d->%d", src, dst)
		}
		s := r.Stretch(path)
		if math.IsInf(s, 1) || s < 1-1e-9 {
			t.Fatalf("stretch %v for %v", s, path)
		}
		totalStretch += s
		count++
	}
	if mean := totalStretch / float64(count); mean > 4 {
		t.Errorf("mean stretch %v implausibly high for GG routing", mean)
	}
}

func TestDisconnectedGFGFailsCleanly(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(500, 500), geom.Pt(510, 500)}
	r, err := New(pts, [][]int{{1}, {0}, {3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GFG(0, 2); ok {
		t.Error("GFG claimed delivery across a partition")
	}
	if _, ok := r.Greedy(0, 2); ok {
		t.Error("greedy claimed delivery across a partition")
	}
}

func TestIsolatedSource(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0)}
	r, err := New(pts, [][]int{{}, {2}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GFG(0, 2); ok {
		t.Error("isolated source delivered")
	}
}

func TestStretchEdgeCases(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	r, err := New(pts, [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stretch([]int{0}); got != 1 {
		t.Errorf("singleton stretch = %v", got)
	}
	if got := r.Stretch([]int{0, 1}); got != 1 {
		t.Errorf("direct stretch = %v", got)
	}
	if got := r.PathLength([]int{0, 1, 0}); got != 10 {
		t.Errorf("round-trip length = %v", got)
	}
}

func TestRightHandSquareFaceWalk(t *testing.T) {
	// Unit square 0-1-2-3; walking from 0 via 1 with the right-hand rule
	// must go around the square and return.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	r, err := New(pts, [][]int{{1, 3}, {0, 2}, {1, 3}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	cur, from := 1, 0
	visited := []int{0, 1}
	for i := 0; i < 6 && !(cur == 0 && len(visited) > 2); i++ {
		next := r.rightHand(cur, from)
		cur, from = next, cur
		visited = append(visited, cur)
	}
	// A proper face walk visits all four corners before returning.
	if len(visited) < 5 || visited[len(visited)-1] != 0 {
		t.Errorf("face walk = %v, want a full cycle back to 0", visited)
	}
	seen := map[int]bool{}
	for _, v := range visited {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("face walk missed corners: %v", visited)
	}
}
