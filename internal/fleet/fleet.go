// Package fleet turns the sweep subsystem's resumable result store into
// a distributed service: a coordinator daemon (cmd/sweepd) that owns the
// store and the task set, and stateless workers (cmd/sweepworker,
// paperfig -worker) that lease batches of runs over HTTP, compute them,
// and post the results back.
//
// # Leases
//
// The unit of distribution is a lease: a batch of pending tasks granted
// to one worker together with a TTL. The worker renews the lease with
// heartbeats (and implicitly with every posted completion); a lease
// whose deadline passes is reaped lazily — its unfinished tasks return
// to the pending queue and are handed to the next worker that asks
// (work stealing). Because every run is deterministic given
// (fingerprint, key, rep), a stolen task recomputed elsewhere produces
// byte-identical results, so a crashed or partitioned worker costs only
// time, never correctness: duplicate completions are detected by task
// state and absorbed idempotently.
//
// # Adaptive replication
//
// With a target relative confidence-interval width configured, the
// coordinator applies a sequential stopping rule per configuration
// group (in the spirit of the CI-width sequential analysis of
// simulation studies): once a configuration's base repetitions are all
// journaled, it keeps issuing one extra repetition at a time while the
// group's relative CI95 (stats.Welford.RelCI over connectivity) exceeds
// the target and the per-group cap is not reached. Extra repetitions
// are ordinary runs at the next rep index — content-addressed per
// (runKey, rep) exactly like base reps — so the resulting store still
// merges byte-identically with any other store of the same sweep.
//
// # Time
//
// All time-dependent logic — lease deadlines, heartbeat liveness, ETA —
// flows through the injected Config.Clock. The package itself never
// reads the wall clock (the no-wallclock analyzer holds), which is also
// what makes the lease state machine unit-testable with a fake clock.
package fleet

import (
	"time"

	"mstc/internal/channel"
	"mstc/internal/experiment"
	"mstc/internal/manet"
	"mstc/internal/radio"
)

// Clock supplies the daemon's notion of "now". cmd/sweepd injects the
// wall clock; tests inject a fake. The simulation itself never sees it.
type Clock func() time.Time

// JobSpec is the sweep-wide job description the coordinator serves at
// GET /job: every option field a worker needs to compute any task of
// the sweep, plus the options fingerprint the results will be journaled
// under. The result-affecting fields are exactly the ones
// experiment.Options.Fingerprint covers, so a worker can (and does)
// recompute the fingerprint from the spec and refuse to work for a
// coordinator it disagrees with — catching binary/version skew before
// it can journal a wrong record.
type JobSpec struct {
	N             int            `json:"n"`
	ArenaSide     float64        `json:"arena_side"`
	NormalRange   float64        `json:"normal_range"`
	Duration      float64        `json:"duration"`
	FloodRate     float64        `json:"flood_rate"`
	Seed          uint64         `json:"seed"`
	SnapshotEvery float64        `json:"snapshot_every,omitempty"`
	Radio         radio.Config   `json:"radio"`
	Channel       channel.Config `json:"channel"`

	// Fingerprint is the coordinator's Options.Fingerprint; workers
	// verify it against their own computation of the same.
	Fingerprint string `json:"fingerprint"`
	// Retries is the per-run panic-retry budget workers apply
	// (experiment.ComputeRunRetry), mirroring the in-process executor.
	Retries int `json:"retries"`
	// Domains/EngineWorkers select the region-parallel engine for each
	// run. Result-invariant (excluded from the fingerprint), so workers
	// may override them locally.
	Domains       int `json:"domains,omitempty"`
	EngineWorkers int `json:"engine_workers,omitempty"`
}

// JobFromOptions extracts the wire spec from resolved options.
func JobFromOptions(o experiment.Options, retries int) JobSpec {
	return JobSpec{
		N:             o.N,
		ArenaSide:     o.ArenaSide,
		NormalRange:   o.NormalRange,
		Duration:      o.Duration,
		FloodRate:     o.FloodRate,
		Seed:          o.Seed,
		SnapshotEvery: o.SnapshotEvery,
		Radio:         o.Radio,
		Channel:       o.Channel,
		Fingerprint:   o.Fingerprint(),
		Retries:       retries,
		Domains:       o.Domains,
		EngineWorkers: o.EngineWorkers,
	}
}

// Options reconstructs the experiment options a worker computes runs
// under. Task-set-shape fields (Speeds, Buffers, Reps) are irrelevant to
// single-run execution and stay zero.
func (j JobSpec) Options() experiment.Options {
	return experiment.Options{
		N:             j.N,
		ArenaSide:     j.ArenaSide,
		NormalRange:   j.NormalRange,
		Duration:      j.Duration,
		FloodRate:     j.FloodRate,
		Seed:          j.Seed,
		SnapshotEvery: j.SnapshotEvery,
		Radio:         j.Radio,
		Channel:       j.Channel,
		Domains:       j.Domains,
		EngineWorkers: j.EngineWorkers,
	}
}

// Task is one leased run: the coordinator's stable task index plus the
// run itself.
type Task struct {
	ID  int            `json:"id"`
	Run experiment.Run `json:"run"`
}

// LeaseRequest asks for a batch of work.
type LeaseRequest struct {
	// Worker is a self-chosen stable name, used for status/events only.
	Worker string `json:"worker"`
}

// LeaseReply carries a granted lease, a backoff hint, or completion.
// Exactly one of the three shapes is populated:
//
//   - Tasks non-empty: a lease with the given ID and TTL.
//   - Wait true: no grantable work right now (everything pending is
//     leased to other workers); retry after WaitSeconds.
//   - Done true: the sweep is complete, the worker should exit.
type LeaseReply struct {
	Lease      uint64  `json:"lease,omitempty"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	Tasks      []Task  `json:"tasks,omitempty"`

	Wait        bool    `json:"wait,omitempty"`
	WaitSeconds float64 `json:"wait_seconds,omitempty"`

	Done bool `json:"done,omitempty"`
}

// HeartbeatRequest renews a lease's deadline.
type HeartbeatRequest struct {
	Lease uint64 `json:"lease"`
}

// Outcome is one computed task: a result, or a failure message when the
// worker's retry budget was exhausted.
type Outcome struct {
	Task     int           `json:"task"`
	Attempts int           `json:"attempts"`
	Result   *manet.Result `json:"result,omitempty"`
	Failure  string        `json:"failure,omitempty"`
}

// CompleteRequest posts finished tasks. Partial completions are normal —
// workers post each task as it finishes, which doubles as a heartbeat.
type CompleteRequest struct {
	Lease    uint64    `json:"lease"`
	Worker   string    `json:"worker"`
	Outcomes []Outcome `json:"outcomes"`
}

// CompleteReply reports how each outcome was absorbed.
type CompleteReply struct {
	// Accepted counts outcomes journaled by this request.
	Accepted int `json:"accepted"`
	// Duplicate counts outcomes for tasks already journaled (a stolen
	// lease completed twice); they are ignored, not errors.
	Duplicate int `json:"duplicate"`
	// Done mirrors LeaseReply.Done so a completing worker learns the
	// sweep ended without another /lease round-trip.
	Done bool `json:"done,omitempty"`
}

// Status is the live coordinator state served at GET /status.
type Status struct {
	Fingerprint string `json:"fingerprint"`
	// Task counts. Total includes adaptively issued extras; Hits counts
	// tasks satisfied from the store when the daemon started.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	Hits    int `json:"hits"`
	// Computed counts runs journaled by workers this session.
	Computed int `json:"computed"`
	// Workers is the number of distinct worker names seen.
	Workers int `json:"workers"`
	// Throughput and ETA, from the injected clock. Zero until the first
	// completion.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	RunsPerSecond  float64 `json:"runs_per_second"`
	ETASeconds     float64 `json:"eta_seconds"`
	// Complete is true once every task is journaled (done or failed) and
	// the adaptive policy wants nothing more.
	Complete bool `json:"complete"`
	// Store is the live per-fingerprint record summary, in the same
	// encoding `sweepctl status -json` emits for an offline store.
	Store FingerprintSummary `json:"store"`
	// Adaptive summarizes the stopping rule when enabled.
	Adaptive *AdaptiveStatus `json:"adaptive,omitempty"`
	// Configs is the per-configuration breakdown (rep counts and the
	// stopping statistic), in first-appearance order.
	Configs []ConfigStatus `json:"configs,omitempty"`
}

// AdaptiveStatus summarizes the adaptive-replication policy.
type AdaptiveStatus struct {
	TargetRelCI float64 `json:"target_rel_ci"`
	MaxReps     int     `json:"max_reps"`
	// Extra counts repetitions issued beyond the base task set.
	Extra int `json:"extra"`
	// Converged counts configurations whose RelCI is at or below target
	// (among those with all base reps journaled).
	Converged int `json:"converged"`
}

// ConfigStatus is one configuration group's progress and stopping
// statistic.
type ConfigStatus struct {
	Desc string `json:"desc"`
	// Key is the configuration substream key (hex, for stable JSON).
	Key string `json:"key"`
	// BaseReps is the group's repetition count in the base task set;
	// Issued counts all reps issued including adaptive extras; DoneReps
	// and FailedReps count journaled outcomes.
	BaseReps   int `json:"base_reps"`
	Issued     int `json:"issued"`
	DoneReps   int `json:"done_reps"`
	FailedReps int `json:"failed_reps,omitempty"`
	// Mean and RelCI are the stopping statistic (connectivity) over the
	// journaled reps.
	Mean  float64 `json:"mean"`
	RelCI float64 `json:"rel_ci"`
}

// Event is one NDJSON line of the GET /events stream.
type Event struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"` // grant, complete, failure, expire, steal, extend, done
	// UnixMillis is the coordinator clock's timestamp.
	UnixMillis int64  `json:"unix_ms"`
	Worker     string `json:"worker,omitempty"`
	Lease      uint64 `json:"lease,omitempty"`
	// Task is the task index for per-task events (-1 otherwise: 0 is a
	// valid index).
	Task int    `json:"task"`
	Desc string `json:"desc,omitempty"`
	// Done/Total snapshot overall progress at the event.
	Done  int `json:"done"`
	Total int `json:"total"`
}
