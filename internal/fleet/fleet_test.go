package fleet

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mstc/internal/experiment"
	"mstc/internal/sweep"
)

func e2eOptions() experiment.Options {
	o := experiment.DefaultOptions()
	o.N = 40
	o.Duration = 3
	return o
}

// TestJobSpecRoundTrip: the wire spec reconstructs options with the same
// fingerprint, which is the worker's version-skew guard.
func TestJobSpecRoundTrip(t *testing.T) {
	o := e2eOptions()
	job := JobFromOptions(o, 2)
	if job.Fingerprint != o.Fingerprint() {
		t.Fatalf("spec fingerprint %s != options fingerprint %s", job.Fingerprint, o.Fingerprint())
	}
	if got := job.Options().Fingerprint(); got != job.Fingerprint {
		t.Errorf("round-tripped options fingerprint %s != %s", got, job.Fingerprint)
	}
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Options().Fingerprint(); got != job.Fingerprint {
		t.Errorf("JSON round-trip changed fingerprint: %s != %s", got, job.Fingerprint)
	}
}

// TestEndToEndHTTP runs a real sweep through the full HTTP stack: a
// coordinator behind httptest, two Worker loops computing real runs
// concurrently, and the results byte-compared against direct in-process
// execution of the same tasks.
func TestEndToEndHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("computes real simulation runs")
	}
	o := e2eOptions()
	tasks := []experiment.Run{
		{Protocol: "RNG", Speed: 40, Rep: 0},
		{Protocol: "RNG", Speed: 40, Rep: 1},
		{Protocol: "MST", Speed: 40, Rep: 0},
		{Protocol: "MST", Speed: 40, Rep: 1},
	}
	clk := newFakeClock()
	st := testStore(t)
	c, err := New(Config{
		Options:    o,
		Tasks:      tasks,
		Store:      st,
		Clock:      clk.Now,
		LeaseTTL:   60 * time.Second,
		LeaseBatch: 1, // force interleaving between the two workers
		Retries:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Follow the NDJSON event stream while the sweep runs.
	eventsDone := make(chan []string, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/events")
		if err != nil {
			eventsDone <- nil
			return
		}
		defer resp.Body.Close()
		var types []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err == nil {
				types = append(types, ev.Type)
			}
		}
		eventsDone <- types
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL:   srv.URL,
				Name:  []string{"east", "west"}[i],
				Sleep: func(time.Duration) {},
			}
			errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// The journaled results must be byte-identical to direct execution.
	for _, r := range tasks {
		want, err := experiment.ComputeRun(o, r)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := st.Get(r.StoreKey(c.Fingerprint()), r.Desc())
		if !ok {
			t.Fatalf("%s: missing from store", r.Desc())
		}
		if got != want {
			t.Errorf("%s: fleet result differs from direct execution:\n got %+v\nwant %+v", r.Desc(), got, want)
		}
	}

	// /status over HTTP reports completion with the shared encoding.
	resp, err := http.Get(srv.URL + "/status?configs=1")
	if err != nil {
		t.Fatal(err)
	}
	var status Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !status.Complete || status.Done != len(tasks) || status.Computed != len(tasks) {
		t.Errorf("status = %+v, want complete with %d done", status, len(tasks))
	}
	if status.Workers != 2 {
		t.Errorf("workers = %d, want 2", status.Workers)
	}
	if len(status.Configs) != 2 {
		t.Errorf("configs = %d, want 2 (RNG, MST)", len(status.Configs))
	}
	if status.Store.Runs != len(tasks) || status.Store.Connectivity.N != len(tasks) {
		t.Errorf("store summary = %+v", status.Store)
	}

	// /aggregate serves per-configuration Welford folds of the journal.
	resp, err = http.Get(srv.URL + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	var aggs []Aggregate
	if err := json.NewDecoder(resp.Body).Decode(&aggs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want 2", len(aggs))
	}
	for _, a := range aggs {
		if a.Reps != 2 {
			t.Errorf("%s: %d reps aggregated, want 2", a.Desc, a.Reps)
		}
		if a.Connectivity.Mean < 0 || a.Connectivity.Mean > 1 {
			t.Errorf("%s: connectivity %v out of range", a.Desc, a.Connectivity.Mean)
		}
	}

	// The event stream terminated at "done".
	select {
	case types := <-eventsDone:
		if len(types) == 0 || types[len(types)-1] != "done" {
			t.Errorf("event stream types = %v, want trailing done", types)
		}
	case <-time.After(10 * time.Second):
		t.Error("event stream did not terminate")
	}

	// The offline summary of the same store matches the daemon's live one.
	sum, err := SummarizeStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Fingerprints) != 1 {
		t.Fatalf("summary fingerprints = %d, want 1", len(sum.Fingerprints))
	}
	fp := sum.Fingerprints[0]
	if fp.Fingerprint != status.Fingerprint || fp.Runs != status.Store.Runs {
		t.Errorf("offline summary %+v != live %+v", fp, status.Store)
	}
	// Offline and live folds may merge in different orders, so agree to
	// within float rounding; N is exact.
	if fp.Connectivity.N != status.Store.Connectivity.N ||
		math.Abs(fp.Connectivity.Mean-status.Store.Connectivity.Mean) > 1e-12 ||
		math.Abs(fp.Connectivity.CI95-status.Store.Connectivity.CI95) > 1e-12 {
		t.Errorf("offline connectivity %+v != live %+v", fp.Connectivity, status.Store.Connectivity)
	}
	if sum.Checkpoint == nil || sum.Checkpoint.Done != len(tasks) {
		t.Errorf("summary checkpoint = %+v", sum.Checkpoint)
	}
}

// TestWorkerFingerprintMismatch: a worker refuses a coordinator whose
// advertised fingerprint disagrees with its own computation.
func TestWorkerFingerprintMismatch(t *testing.T) {
	job := JobFromOptions(e2eOptions(), 1)
	job.Fingerprint = "0123456789abcdef0123456789abcdef" // sabotage
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(job)
	}))
	defer srv.Close()
	w := &Worker{URL: srv.URL, Name: "skewed", Sleep: func(time.Duration) {}}
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("worker error = %v, want fingerprint mismatch", err)
	}
}

// corruptCheckpoint truncates the advisory checkpoint file in place.
func corruptCheckpoint(t *testing.T, st *sweep.Store) {
	t.Helper()
	path := filepath.Join(st.Dir(), "checkpoint.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeStoreSurfacesCorruptCheckpoint: the shared summary keeps
// working when the advisory checkpoint is damaged, reporting the defect
// alongside the intact records.
func TestSummarizeStoreSurfacesCorruptCheckpoint(t *testing.T) {
	st := testStore(t)
	r := experiment.Run{Protocol: "RNG", Speed: 40, Rep: 0}
	fp := e2eOptions().Fingerprint()
	if err := st.Put(r.StoreKey(fp), r.Desc(), 1, *result(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(sweep.Checkpoint{Fingerprint: fp, Done: 1, Total: 1}); err != nil {
		t.Fatal(err)
	}
	corruptCheckpoint(t, st)
	sum, err := SummarizeStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CheckpointError == "" || sum.Checkpoint != nil {
		t.Errorf("summary = checkpoint %+v error %q, want nil + non-empty error", sum.Checkpoint, sum.CheckpointError)
	}
	if len(sum.Fingerprints) != 1 || sum.Fingerprints[0].Runs != 1 {
		t.Errorf("records not summarized despite checkpoint damage: %+v", sum.Fingerprints)
	}
}
