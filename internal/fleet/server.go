package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the coordinator's HTTP API:
//
//	GET  /job        JobSpec (options, fingerprint, retry budget)
//	POST /lease      LeaseRequest -> LeaseReply
//	POST /heartbeat  HeartbeatRequest -> 204, or 410 Gone when the lease expired
//	POST /complete   CompleteRequest -> CompleteReply
//	GET  /status     Status (?configs=1 adds the per-configuration breakdown)
//	GET  /aggregate  []Aggregate — live per-configuration figures
//	GET  /events     NDJSON event stream until the sweep completes
//
// Handlers run on net/http's per-connection goroutines; the coordinator
// mutex is the synchronization point.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, c.Job())
	})
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Lease(req))
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		if !c.Heartbeat(req) {
			http.Error(w, "lease expired or unknown", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		rep, err := c.Complete(req)
		if err != nil {
			// Store write failures and malformed outcomes; the worker
			// retries or reports.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, c.Status(r.URL.Query().Get("configs") != ""))
	})
	mux.HandleFunc("/aggregate", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, c.Aggregates())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		ch, cancel := c.Subscribe()
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		for {
			select {
			case line, ok := <-ch:
				if !ok {
					return // sweep complete
				}
				if _, err := w.Write(line); err != nil {
					return
				}
				flusher.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	return mux
}

func method(w http.ResponseWriter, r *http.Request, want string) bool {
	if r.Method != want {
		http.Error(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
