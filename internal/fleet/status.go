package fleet

import (
	"mstc/internal/stats"
	"mstc/internal/sweep"
)

// This file is the shared machine-readable status encoding: `sweepctl
// status -json` summarizing a store offline and the daemon's GET
// /status describing the same store live emit the same
// FingerprintSummary shape, produced by the same Welford fold — so
// dashboards and scripts parse one format regardless of whether a
// coordinator is running.

// FingerprintSummary summarizes one fingerprint's records.
type FingerprintSummary struct {
	Fingerprint string `json:"fingerprint"`
	// Runs counts verified completed records.
	Runs int `json:"runs"`
	// Failed counts exhausted-retry failure records; Corrupt counts
	// records that failed checksum or decode verification.
	Failed  int `json:"failed,omitempty"`
	Corrupt int `json:"corrupt,omitempty"`
	// Connectivity folds every completed record's connectivity through
	// the pairwise Welford merge.
	Connectivity Metric `json:"connectivity"`
}

// FailureDetail is one exhausted-retry failure surfaced by the summary.
type FailureDetail struct {
	Fingerprint string `json:"fingerprint"`
	Desc        string `json:"desc"`
	Attempts    int    `json:"attempts"`
	Message     string `json:"message"`
}

// StoreSummary is the full offline summary of one store directory.
type StoreSummary struct {
	Dir          string               `json:"dir"`
	Fingerprints []FingerprintSummary `json:"fingerprints"`
	// Checkpoint is the advisory progress summary, when present and
	// intact; CheckpointError carries the decode defect when the file
	// exists but is corrupt (records stay authoritative either way).
	Checkpoint      *sweep.Checkpoint `json:"checkpoint,omitempty"`
	CheckpointError string            `json:"checkpoint_error,omitempty"`
	// Failures details up to maxFailureDetails failure records.
	Failures []FailureDetail `json:"failures,omitempty"`
}

// maxFailureDetails bounds the failure list in a summary; the count in
// FingerprintSummary.Failed is always exact.
const maxFailureDetails = 20

// metricOf renders a Welford accumulator as a wire Metric.
func metricOf(w stats.Welford) Metric {
	return Metric{w: w, N: w.N(), Mean: w.Mean(), CI95: w.CI95(), RelCI: w.RelCI()}
}

// SummarizeStore scans a store into its machine-readable summary.
func SummarizeStore(st *sweep.Store) (StoreSummary, error) {
	sum := StoreSummary{Dir: st.Dir()}
	byFP := make(map[string]int)
	err := st.Scan(func(info sweep.RecordInfo) error {
		i, seen := byFP[info.Fingerprint]
		if !seen {
			i = len(sum.Fingerprints)
			byFP[info.Fingerprint] = i
			sum.Fingerprints = append(sum.Fingerprints, FingerprintSummary{Fingerprint: info.Fingerprint})
		}
		fp := &sum.Fingerprints[i]
		switch {
		case info.Err != nil:
			fp.Corrupt++
		case info.Failed:
			fp.Failed++
			if len(sum.Failures) < maxFailureDetails {
				sum.Failures = append(sum.Failures, FailureDetail{
					Fingerprint: info.Fingerprint,
					Desc:        info.Record.Desc,
					Attempts:    info.Record.Attempts,
					Message:     info.Record.Failure,
				})
			}
		default:
			fp.Runs++
			var one stats.Welford
			one.Add(info.Record.Result.Connectivity)
			fp.Connectivity.w.Merge(one)
		}
		return nil
	})
	if err != nil {
		return StoreSummary{}, err
	}
	for i := range sum.Fingerprints {
		sum.Fingerprints[i].Connectivity = metricOf(sum.Fingerprints[i].Connectivity.w)
	}
	cp, ok, cperr := st.ReadCheckpoint()
	if cperr != nil {
		sum.CheckpointError = cperr.Error()
	}
	if ok {
		sum.Checkpoint = &cp
	}
	return sum, nil
}
