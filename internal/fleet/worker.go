package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"mstc/internal/experiment"
)

// Worker is the client side of the lease protocol: a loop that leases
// task batches, computes them with the in-process executor's single-run
// path, and posts each outcome as it finishes (which doubles as a lease
// heartbeat). It holds no state a crash could lose — everything durable
// lives in the coordinator's store — so killing a worker mid-lease
// costs at most one lease TTL of waiting before the work is stolen.
type Worker struct {
	// URL is the coordinator's base URL, e.g. "http://127.0.0.1:7070".
	URL string
	// Name identifies the worker in status/events output.
	Name string
	// Client is the HTTP client; nil means a default with a 30 s
	// request timeout.
	Client *http.Client
	// Sleep pauses between polls when the coordinator has no grantable
	// work. Injected so the package itself never touches the wall
	// clock; cmd binaries pass time.Sleep.
	Sleep func(time.Duration)
	// Logf, when non-nil, receives progress lines (stderr in the CLIs).
	Logf func(format string, args ...any)
	// Override engine knobs locally when non-zero (result-invariant).
	Domains, EngineWorkers int
}

// Run executes the worker loop until the coordinator reports the sweep
// complete. It returns an error on protocol failures (unreachable
// coordinator, fingerprint mismatch), never on individual run failures
// — those are journaled as failure records and the loop continues.
func (w *Worker) Run() error {
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.Sleep == nil {
		return fmt.Errorf("fleet: worker requires a Sleep function")
	}
	if w.Name == "" {
		w.Name = "worker"
	}

	var job JobSpec
	if err := w.get("/job", &job); err != nil {
		return fmt.Errorf("fleet: fetch job spec: %w", err)
	}
	opts := job.Options()
	if w.Domains > 0 {
		opts.Domains = w.Domains
		opts.EngineWorkers = w.EngineWorkers
	}
	// Version-skew guard: the fingerprint covers every result-affecting
	// option, so a worker whose binary computes a different fingerprint
	// from the same spec would journal records under a wrong address —
	// refuse instead.
	if got := opts.Fingerprint(); got != job.Fingerprint {
		return fmt.Errorf("fleet: fingerprint mismatch: coordinator %s, worker computes %s (binary/version skew?)",
			job.Fingerprint, got)
	}
	w.logf("job %s: %d nodes, %.0fs runs, retries=%d", job.Fingerprint, job.N, job.Duration, job.Retries)

	computed := 0
	idle := false
	for {
		var rep LeaseReply
		if err := w.post("/lease", LeaseRequest{Worker: w.Name}, &rep); err != nil {
			// A coordinator with -exit-on-done may vanish while this worker
			// slept through the end of the sweep (everything left was leased
			// elsewhere and the last holder finished). The coordinator owns
			// all durable state, so there is nothing to hand back — exit
			// cleanly. A transport error in any other position stays fatal.
			if idle && isConnError(err) {
				w.logf("coordinator gone while idle; assuming the sweep ended (%d runs computed here)", computed)
				return nil
			}
			return fmt.Errorf("fleet: lease: %w", err)
		}
		switch {
		case rep.Done:
			w.logf("sweep complete (%d runs computed here)", computed)
			return nil
		case len(rep.Tasks) == 0:
			idle = true
			wait := time.Duration(rep.WaitSeconds * float64(time.Second))
			if wait <= 0 {
				wait = time.Second
			}
			w.Sleep(wait)
			continue
		}
		idle = false

		for i, task := range rep.Tasks {
			// Re-assert the lease before every run after the first: if it
			// was stolen (e.g. this worker stalled), stop burning time on
			// work someone else owns.
			if i > 0 {
				alive, err := w.heartbeat(rep.Lease)
				if err != nil {
					return fmt.Errorf("fleet: heartbeat: %w", err)
				}
				if !alive {
					w.logf("lease %d lost; re-leasing", rep.Lease)
					break
				}
			}
			out := w.compute(opts, job.Retries, task)
			var crep CompleteReply
			if err := w.post("/complete", CompleteRequest{
				Lease: rep.Lease, Worker: w.Name, Outcomes: []Outcome{out},
			}, &crep); err != nil {
				return fmt.Errorf("fleet: complete: %w", err)
			}
			computed++
			if crep.Duplicate > 0 {
				w.logf("%s: duplicate (stolen lease completed twice); result matched by determinism", task.Run.Desc())
			}
			if crep.Done {
				w.logf("sweep complete (%d runs computed here)", computed)
				return nil
			}
		}
	}
}

// compute runs one task under the executor's retry policy and shapes
// the outcome for the wire.
func (w *Worker) compute(opts experiment.Options, retries int, task Task) Outcome {
	res, attempts, err := experiment.ComputeRunRetry(opts, task.Run, retries)
	if err != nil {
		w.logf("%s: FAILED after %d attempts: %v", task.Run.Desc(), attempts, err)
		return Outcome{Task: task.ID, Attempts: attempts, Failure: err.Error()}
	}
	w.logf("%s: done (attempt %d)", task.Run.Desc(), attempts)
	r := res // copy: the pointer must not alias the loop variable
	return Outcome{Task: task.ID, Attempts: attempts, Result: &r}
}

// heartbeat renews the lease; false means gone (stolen/expired).
func (w *Worker) heartbeat(lease uint64) (bool, error) {
	resp, err := w.do(http.MethodPost, "/heartbeat", HeartbeatRequest{Lease: lease})
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	default:
		return false, fmt.Errorf("heartbeat: unexpected status %s", resp.Status)
	}
}

func (w *Worker) get(path string, out any) error {
	resp, err := w.Client.Get(w.URL + path)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func (w *Worker) post(path string, in, out any) error {
	resp, err := w.do(http.MethodPost, path, in)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func (w *Worker) do(method, path string, in any) (*http.Response, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(method, w.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.Client.Do(req)
}

// isConnError reports whether err is a transport-level failure (dial or
// I/O) rather than an HTTP-status error from the coordinator.
func isConnError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}
