package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mstc/internal/experiment"
	"mstc/internal/manet"
	"mstc/internal/sweep"
)

// fakeClock is a hand-advanced clock; the coordinator has no timers, so
// advancing it and making a request is the complete expiry mechanism.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func testStore(t *testing.T) *sweep.Store {
	t.Helper()
	s, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// repTasks builds reps repetitions for each of the given speeds (one
// configuration group per speed).
func repTasks(reps int, speeds ...float64) []experiment.Run {
	var tasks []experiment.Run
	for rep := 0; rep < reps; rep++ {
		for _, sp := range speeds {
			tasks = append(tasks, experiment.Run{Protocol: "RNG", Speed: sp, Rep: rep})
		}
	}
	return tasks
}

func result(connectivity float64) *manet.Result {
	return &manet.Result{Connectivity: connectivity}
}

// TestLeaseLifecycle drives the full lease state machine with a fake
// clock: grant → heartbeat renewal → expiry → steal by another worker →
// duplicate completion from the original owner absorbed idempotently.
func TestLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	c, err := New(Config{
		Options:    experiment.DefaultOptions(),
		Tasks:      repTasks(4, 40), // one config, 4 reps
		Store:      st,
		Clock:      clk.Now,
		LeaseTTL:   60 * time.Second,
		LeaseBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := c.Subscribe()
	defer cancel()

	// Grant: worker a takes the first batch.
	repA := c.Lease(LeaseRequest{Worker: "a"})
	if len(repA.Tasks) != 2 || repA.Lease == 0 {
		t.Fatalf("lease reply = %+v, want 2 tasks", repA)
	}
	if repA.TTLSeconds != 60 {
		t.Errorf("TTLSeconds = %v, want 60", repA.TTLSeconds)
	}

	// Heartbeats renew: 30s + 45s straddles the original deadline, but
	// the renewal at 30s keeps the lease alive.
	clk.Advance(30 * time.Second)
	if !c.Heartbeat(HeartbeatRequest{Lease: repA.Lease}) {
		t.Fatal("heartbeat at 30s rejected")
	}
	clk.Advance(45 * time.Second)
	if !c.Heartbeat(HeartbeatRequest{Lease: repA.Lease}) {
		t.Fatal("heartbeat at 75s rejected despite renewal at 30s")
	}

	// Expiry: 61s of silence, then worker b asks for work and steals
	// exactly a's tasks (they re-queue at the front).
	clk.Advance(61 * time.Second)
	repB := c.Lease(LeaseRequest{Worker: "b"})
	if len(repB.Tasks) != 2 {
		t.Fatalf("thief got %d tasks, want 2", len(repB.Tasks))
	}
	for i := range repB.Tasks {
		if repB.Tasks[i].ID != repA.Tasks[i].ID {
			t.Errorf("stolen task %d = id %d, want a's id %d", i, repB.Tasks[i].ID, repA.Tasks[i].ID)
		}
	}
	if c.Heartbeat(HeartbeatRequest{Lease: repA.Lease}) {
		t.Error("expired lease still heartbeats")
	}

	// The thief completes the stolen tasks.
	crep, err := c.Complete(CompleteRequest{Lease: repB.Lease, Worker: "b", Outcomes: []Outcome{
		{Task: repB.Tasks[0].ID, Attempts: 1, Result: result(0.9)},
		{Task: repB.Tasks[1].ID, Attempts: 1, Result: result(0.9)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if crep.Accepted != 2 || crep.Duplicate != 0 {
		t.Fatalf("thief completion = %+v, want 2 accepted", crep)
	}

	// The original owner finishes too (it never saw the steal):
	// absorbed as duplicates, not errors, and the store keeps exactly
	// one record per task.
	crep, err = c.Complete(CompleteRequest{Lease: repA.Lease, Worker: "a", Outcomes: []Outcome{
		{Task: repA.Tasks[0].ID, Attempts: 1, Result: result(0.9)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if crep.Accepted != 0 || crep.Duplicate != 1 {
		t.Fatalf("duplicate completion = %+v, want 1 duplicate", crep)
	}

	// Drain the remainder and finish.
	repC := c.Lease(LeaseRequest{Worker: "c"})
	if len(repC.Tasks) != 2 {
		t.Fatalf("final batch = %d tasks, want 2", len(repC.Tasks))
	}
	var outs []Outcome
	for _, task := range repC.Tasks {
		outs = append(outs, Outcome{Task: task.ID, Attempts: 1, Result: result(0.9)})
	}
	crep, err = c.Complete(CompleteRequest{Lease: repC.Lease, Worker: "c", Outcomes: outs})
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Done {
		t.Error("final completion did not report Done")
	}
	select {
	case <-c.DoneCh():
	default:
		t.Error("DoneCh not closed after completion")
	}
	if rep := c.Lease(LeaseRequest{Worker: "d"}); !rep.Done {
		t.Errorf("lease after completion = %+v, want Done", rep)
	}

	status := c.Status(false)
	if !status.Complete || status.Done != 4 || status.Failed != 0 || status.Pending != 0 || status.Leased != 0 {
		t.Errorf("final status = %+v", status)
	}
	if status.Workers != 4 { // a, b, c, d all introduced themselves
		t.Errorf("workers = %d, want 4", status.Workers)
	}

	// The event stream saw the lifecycle and closed at "done".
	var types []string
	for line := range events {
		s := string(line)
		for _, typ := range []string{"\"type\":\"grant\"", "\"type\":\"expire\"", "\"type\":\"complete\"", "\"type\":\"done\""} {
			if strings.Contains(s, typ) {
				types = append(types, typ)
			}
		}
	}
	joined := strings.Join(types, " ")
	for _, want := range []string{"grant", "expire", "complete", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event stream missing %q events: %s", want, joined)
		}
	}

	// Exactly 4 records in the store: duplicates were absorbed upstream.
	n := 0
	if err := st.Scan(func(info sweep.RecordInfo) error {
		if info.Err != nil {
			t.Errorf("record %s: %v", info.Path, info.Err)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("store has %d records, want 4", n)
	}
}

// TestLeaseWaitBackoff: when every pending task is leased out, the next
// worker gets a bounded backoff hint rather than an empty grant loop.
func TestLeaseWaitBackoff(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{
		Options:    experiment.DefaultOptions(),
		Tasks:      repTasks(1, 40),
		Store:      testStore(t),
		Clock:      clk.Now,
		LeaseTTL:   60 * time.Second,
		LeaseBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := c.Lease(LeaseRequest{Worker: "a"}); len(rep.Tasks) != 1 {
		t.Fatalf("first lease = %+v", rep)
	}
	rep := c.Lease(LeaseRequest{Worker: "b"})
	if !rep.Wait || rep.Done || len(rep.Tasks) != 0 {
		t.Fatalf("starved lease = %+v, want Wait", rep)
	}
	if rep.WaitSeconds != 15 { // ttl/4
		t.Errorf("WaitSeconds = %v, want 15", rep.WaitSeconds)
	}
}

// TestFailureJournaling: an exhausted-retry failure is journaled as a
// failure record, counts toward completion, and surfaces in Status.
func TestFailureJournaling(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	c, err := New(Config{
		Options:    experiment.DefaultOptions(),
		Tasks:      repTasks(2, 40),
		Store:      st,
		Clock:      clk.Now,
		LeaseBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Lease(LeaseRequest{Worker: "a"})
	crep, err := c.Complete(CompleteRequest{Lease: rep.Lease, Worker: "a", Outcomes: []Outcome{
		{Task: rep.Tasks[0].ID, Attempts: 3, Failure: "panic: synthetic"},
		{Task: rep.Tasks[1].ID, Attempts: 1, Result: result(0.5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Done || crep.Accepted != 2 {
		t.Fatalf("completion = %+v", crep)
	}
	status := c.Status(false)
	if status.Failed != 1 || status.Done != 1 || !status.Complete {
		t.Errorf("status = %+v, want 1 failed / 1 done / complete", status)
	}
	failures := 0
	if err := st.Scan(func(info sweep.RecordInfo) error {
		if info.Failed {
			failures++
			if info.Record.Failure != "panic: synthetic" {
				t.Errorf("failure message = %q", info.Record.Failure)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Errorf("store has %d failure records, want 1", failures)
	}
}

// TestResumeFromStore: a second coordinator over the same store resolves
// already-journaled tasks as hits and leases only the remainder.
func TestResumeFromStore(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	tasks := repTasks(4, 40)
	cfg := Config{
		Options:    experiment.DefaultOptions(),
		Tasks:      tasks,
		Store:      st,
		Clock:      clk.Now,
		LeaseBatch: 2,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := c1.Lease(LeaseRequest{Worker: "a"})
	var outs []Outcome
	for _, task := range rep.Tasks {
		outs = append(outs, Outcome{Task: task.ID, Attempts: 1, Result: result(0.7)})
	}
	if _, err := c1.Complete(CompleteRequest{Lease: rep.Lease, Worker: "a", Outcomes: outs}); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	status := c2.Status(false)
	if status.Hits != 2 || status.Pending != 2 || status.Done != 2 {
		t.Errorf("resumed status = %+v, want 2 hits / 2 pending", status)
	}
	// The resumed coordinator's stopping statistic includes the hits.
	if status.Store.Connectivity.N != 2 {
		t.Errorf("resumed Welford N = %d, want 2", status.Store.Connectivity.N)
	}
}

// TestAdaptiveReplication is the acceptance test of the stopping rule: a
// high-variance configuration demonstrably receives more repetitions
// than a zero-variance one under the same target.
func TestAdaptiveReplication(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	const base = 3
	c, err := New(Config{
		Options:     experiment.DefaultOptions(),
		Tasks:       repTasks(base, 10, 40), // speed 10: noisy; speed 40: constant
		Store:       st,
		Clock:       clk.Now,
		LeaseBatch:  8,
		TargetRelCI: 0.05,
		MaxReps:     9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Synthetic results: the speed-10 group alternates 0.2/0.8 per rep
	// (relative CI ~ 1, never converging), the speed-40 group is exactly
	// 0.5 every rep (relative CI 0 after its base reps).
	for i := 0; i < 100; i++ {
		rep := c.Lease(LeaseRequest{Worker: "w"})
		if rep.Done {
			break
		}
		if len(rep.Tasks) == 0 {
			t.Fatalf("lease %d: no tasks and not done", i)
		}
		var outs []Outcome
		for _, task := range rep.Tasks {
			conn := 0.5
			if task.Run.Speed == 10 {
				conn = 0.2 + 0.6*float64(task.Run.Rep%2)
			}
			outs = append(outs, Outcome{Task: task.ID, Attempts: 1, Result: result(conn)})
		}
		if _, err := c.Complete(CompleteRequest{Lease: rep.Lease, Worker: "w", Outcomes: outs}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-c.DoneCh():
	default:
		t.Fatal("adaptive sweep did not terminate")
	}

	status := c.Status(true)
	var noisy, constant ConfigStatus
	for _, cs := range status.Configs {
		switch {
		case strings.Contains(cs.Desc, "speed=10"):
			noisy = cs
		case strings.Contains(cs.Desc, "speed=40"):
			constant = cs
		}
	}
	if noisy.Desc == "" || constant.Desc == "" {
		t.Fatalf("configs missing from status: %+v", status.Configs)
	}
	if constant.Issued != base {
		t.Errorf("zero-variance config issued %d reps, want exactly base %d", constant.Issued, base)
	}
	if noisy.Issued <= constant.Issued {
		t.Errorf("high-variance config issued %d reps, zero-variance %d: adaptive replication had no effect",
			noisy.Issued, constant.Issued)
	}
	if noisy.Issued != 9 {
		t.Errorf("non-converging config issued %d reps, want the MaxReps cap 9", noisy.Issued)
	}
	if status.Adaptive == nil || status.Adaptive.Extra != noisy.Issued-base {
		t.Errorf("adaptive status = %+v, want Extra=%d", status.Adaptive, noisy.Issued-base)
	}

	// Extra reps are ordinary content-addressed records: rep indices
	// base..MaxReps-1, each journaled exactly once.
	reps := map[int]int{}
	if err := st.Scan(func(info sweep.RecordInfo) error {
		if strings.Contains(info.Record.Desc, "speed=10") {
			reps[info.Record.Rep]++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 9; rep++ {
		if reps[rep] != 1 {
			t.Errorf("noisy config rep %d journaled %d times, want 1", rep, reps[rep])
		}
	}
}

// TestAdaptiveStopsOnConvergence: a group whose extra reps tighten the
// CI below target stops before the cap.
func TestAdaptiveStopsOnConvergence(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{
		Options:     experiment.DefaultOptions(),
		Tasks:       repTasks(2, 40),
		Store:       testStore(t),
		Clock:       clk.Now,
		LeaseBatch:  8,
		TargetRelCI: 0.2,
		MaxReps:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reps 0 and 1 disagree (0.4 vs 0.6: RelCI ≈ 2.54 > 0.2), every
	// later rep is 0.5; the CI shrinks as reps accumulate and the rule
	// must stop well short of the 50-rep cap.
	for i := 0; i < 200; i++ {
		rep := c.Lease(LeaseRequest{Worker: "w"})
		if rep.Done {
			break
		}
		var outs []Outcome
		for _, task := range rep.Tasks {
			conn := 0.5
			if task.Run.Rep < 2 {
				conn = 0.4 + 0.2*float64(task.Run.Rep)
			}
			outs = append(outs, Outcome{Task: task.ID, Attempts: 1, Result: result(conn)})
		}
		if _, err := c.Complete(CompleteRequest{Lease: rep.Lease, Worker: "w", Outcomes: outs}); err != nil {
			t.Fatal(err)
		}
	}
	status := c.Status(true)
	if !status.Complete {
		t.Fatal("sweep did not complete")
	}
	cs := status.Configs[0]
	if cs.Issued <= 2 || cs.Issued >= 50 {
		t.Errorf("issued %d reps, want between base and cap (converged early)", cs.Issued)
	}
	if cs.RelCI > 0.2 {
		t.Errorf("final RelCI %.4f above target 0.2", cs.RelCI)
	}
	if status.Adaptive.Converged != 1 {
		t.Errorf("Converged = %d, want 1", status.Adaptive.Converged)
	}
}
