package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"mstc/internal/experiment"
	"mstc/internal/stats"
	"mstc/internal/sweep"
)

// Config configures a Coordinator.
type Config struct {
	// Options are the sweep-wide experiment options (result-affecting
	// fields feed the fingerprint and the JobSpec served to workers).
	Options experiment.Options
	// Tasks is the base task set. Store hits are resolved at
	// construction; the rest is leased out.
	Tasks []experiment.Run
	// Store journals every completion; it must be non-nil.
	Store *sweep.Store
	// Clock supplies "now" for lease deadlines, liveness, and ETA.
	Clock Clock
	// LeaseTTL is how long a lease lives without a heartbeat or
	// completion before its tasks are stolen. Default 60s.
	LeaseTTL time.Duration
	// LeaseBatch is the maximum tasks granted per lease. Small batches
	// bound the work lost to a dead worker; default 4.
	LeaseBatch int
	// Retries is the per-run panic-retry budget advertised to workers.
	Retries int
	// TargetRelCI enables adaptive replication when positive: after a
	// configuration's base reps are journaled, extra reps are issued one
	// at a time while the group's relative CI95 over connectivity
	// exceeds this target. 0 disables the policy (fixed -reps), which is
	// what keeps a fleet store byte-identical to a single-process sweep
	// of the same task set.
	TargetRelCI float64
	// MaxReps caps total reps per configuration under adaptive
	// replication. Default 10× the group's base count.
	MaxReps int
}

// taskState is the lease-protocol lifecycle of one task.
type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
	taskDone
	taskFailed
)

type taskEntry struct {
	run   experiment.Run
	key   sweep.Key
	desc  string
	group uint64 // configuration substream key
	state taskState
	// extra marks adaptively issued repetitions (rep >= the group's
	// base count).
	extra bool
}

type lease struct {
	id       uint64
	worker   string
	deadline time.Time
	// tasks are the granted task indices still owned by this lease.
	tasks []int
}

// configState tracks one configuration group for the stopping rule.
type configState struct {
	key  uint64
	desc string
	base int // reps in the base task set
	// issued counts all reps issued (base + extras); the next extra rep
	// index is exactly `issued`.
	issued  int
	done    int
	failed  int
	pending int // issued but not yet journaled (pending or leased)
	conn    stats.Welford
}

// Coordinator is the lease-granting, store-owning sweep service. All
// methods are safe for concurrent use (net/http serves each request on
// its own goroutine); the single mutex is uncontended at fleet scale —
// runs take seconds, requests take microseconds.
type Coordinator struct {
	mu sync.Mutex

	opts        experiment.Options
	fingerprint string
	store       *sweep.Store
	clock       Clock
	ttl         time.Duration
	batch       int
	retries     int
	targetRelCI float64
	maxReps     int

	tasks   []taskEntry
	pending []int // task indices awaiting a lease, FIFO; stolen work re-queues at the front
	leases  map[uint64]*lease
	nextID  uint64

	groups     map[uint64]*configState
	groupOrder []uint64

	workers map[string]bool
	hits    int
	done    int // journaled successes (store hits included)
	failed  int
	// computed counts worker-journaled completions (success or failure)
	// this session; it drives ETA and checkpoint pacing.
	computed int
	started  bool
	startAt  time.Time

	complete bool
	doneCh   chan struct{}

	subs     map[*subscriber]bool
	eventSeq uint64
}

// New builds a coordinator: it fingerprints the options, resolves store
// hits for the base task set, and indexes the remainder for leasing.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: coordinator requires a result store")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("fleet: coordinator requires a clock")
	}
	if len(cfg.Tasks) == 0 {
		return nil, fmt.Errorf("fleet: empty task set")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 60 * time.Second
	}
	if cfg.LeaseBatch <= 0 {
		cfg.LeaseBatch = 4
	}
	c := &Coordinator{
		opts:        cfg.Options,
		fingerprint: cfg.Options.Fingerprint(),
		store:       cfg.Store,
		clock:       cfg.Clock,
		ttl:         cfg.LeaseTTL,
		batch:       cfg.LeaseBatch,
		retries:     cfg.Retries,
		targetRelCI: cfg.TargetRelCI,
		maxReps:     cfg.MaxReps,
		leases:      make(map[uint64]*lease),
		groups:      make(map[uint64]*configState),
		workers:     make(map[string]bool),
		doneCh:      make(chan struct{}),
		subs:        make(map[*subscriber]bool),
	}
	for _, r := range cfg.Tasks {
		c.addTask(r, false)
	}
	if c.targetRelCI > 0 && c.maxReps == 0 {
		// Default cap: an order of magnitude beyond the base reps of the
		// largest group.
		for _, g := range c.groupOrder {
			if n := 10 * c.groups[g].base; n > c.maxReps {
				c.maxReps = n
			}
		}
	}
	// Resolve store hits after grouping so the Welford partials include
	// them (a resumed adaptive sweep continues its stopping rule).
	for i := range c.tasks {
		t := &c.tasks[i]
		if res, ok := c.store.Get(t.key, t.desc); ok {
			t.state = taskDone
			c.hits++
			c.done++
			c.settleGroup(t, res.Connectivity, true)
			continue
		}
		c.pending = append(c.pending, i)
	}
	return c, nil
}

// addTask appends a task entry and updates its configuration group.
func (c *Coordinator) addTask(r experiment.Run, extra bool) int {
	id := len(c.tasks)
	g := r.ConfigKey()
	cs := c.groups[g]
	if cs == nil {
		cs = &configState{key: g, desc: r.ConfigDesc()}
		c.groups[g] = cs
		c.groupOrder = append(c.groupOrder, g)
	}
	if !extra {
		cs.base++
	}
	cs.issued++
	cs.pending++
	c.tasks = append(c.tasks, taskEntry{
		run:   r,
		key:   r.StoreKey(c.fingerprint),
		desc:  r.Desc(),
		group: g,
		state: taskPending,
		extra: extra,
	})
	return id
}

// settleGroup records one journaled success for a task's group.
func (c *Coordinator) settleGroup(t *taskEntry, connectivity float64, ok bool) {
	cs := c.groups[t.group]
	cs.pending--
	if ok {
		cs.done++
		var one stats.Welford
		one.Add(connectivity)
		cs.conn.Merge(one)
	} else {
		cs.failed++
	}
}

// Fingerprint returns the options fingerprint the sweep journals under.
func (c *Coordinator) Fingerprint() string { return c.fingerprint }

// Job returns the wire spec served to workers.
func (c *Coordinator) Job() JobSpec {
	j := JobFromOptions(c.opts, c.retries)
	j.Fingerprint = c.fingerprint
	return j
}

// DoneCh is closed when the sweep completes (all tasks journaled and
// the adaptive policy satisfied). cmd/sweepd uses it for -exit-on-done.
func (c *Coordinator) DoneCh() <-chan struct{} { return c.doneCh }

// reapExpired returns expired leases' unfinished tasks to the front of
// the pending queue. Called under mu from every entry point, which is
// the whole expiry mechanism — no timers, so a fake clock drives it in
// tests exactly like the wall clock does in production.
func (c *Coordinator) reapExpired(now time.Time) {
	for id, l := range c.leases { //lint:order-independent each expired lease is handled independently; stolen tasks re-queue sorted below
		if now.Before(l.deadline) {
			continue
		}
		var stolen []int
		for _, ti := range l.tasks {
			if c.tasks[ti].state == taskLeased {
				c.tasks[ti].state = taskPending
				stolen = append(stolen, ti)
			}
		}
		sort.Ints(stolen)
		c.pending = append(stolen, c.pending...)
		delete(c.leases, id)
		c.publish(Event{Type: "expire", Worker: l.worker, Lease: id, Task: -1,
			Desc: fmt.Sprintf("%d tasks returned to queue", len(stolen))}, now)
	}
}

// Lease grants up to LeaseBatch pending tasks. See LeaseReply for the
// three reply shapes.
func (c *Coordinator) Lease(req LeaseRequest) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.workers[req.Worker] = true
	c.reapExpired(now)
	c.extendAdaptive(now)
	c.checkComplete(now)
	if c.complete {
		return LeaseReply{Done: true}
	}

	var grant []int
	for len(c.pending) > 0 && len(grant) < c.batch {
		ti := c.pending[0]
		c.pending = c.pending[1:]
		if c.tasks[ti].state != taskPending {
			continue // satisfied while queued (late duplicate completion)
		}
		c.tasks[ti].state = taskLeased
		grant = append(grant, ti)
	}
	if len(grant) == 0 {
		// Everything is leased to other workers: back off for a fraction
		// of the TTL so a stolen lease is noticed promptly.
		return LeaseReply{Wait: true, WaitSeconds: (c.ttl / 4).Seconds()}
	}
	if !c.started {
		c.started = true
		c.startAt = now
	}
	c.nextID++
	l := &lease{id: c.nextID, worker: req.Worker, deadline: now.Add(c.ttl), tasks: grant}
	c.leases[l.id] = l
	rep := LeaseReply{Lease: l.id, TTLSeconds: c.ttl.Seconds()}
	for _, ti := range grant {
		rep.Tasks = append(rep.Tasks, Task{ID: ti, Run: c.tasks[ti].run})
	}
	c.publish(Event{Type: "grant", Worker: req.Worker, Lease: l.id, Task: -1,
		Desc: fmt.Sprintf("%d tasks", len(grant))}, now)
	return rep
}

// Heartbeat renews a lease. It reports false when the lease is unknown
// or already expired — the worker should abandon the batch and re-lease
// (its completed tasks are safe; its unfinished ones may already be
// granted elsewhere).
func (c *Coordinator) Heartbeat(req HeartbeatRequest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.reapExpired(now)
	l, ok := c.leases[req.Lease]
	if !ok {
		return false
	}
	l.deadline = now.Add(c.ttl)
	return true
}

// Complete journals a batch of outcomes. Unknown or expired leases are
// not an error: deterministic results are valid no matter who computed
// them, so late completions of stolen work are absorbed (and counted as
// duplicates when the thief already finished). The one hard failure is
// a store write error, which the worker may simply retry.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.workers[req.Worker] = true
	c.reapExpired(now)
	l := c.leases[req.Lease] // may be nil: expired or fully drained

	var rep CompleteReply
	for _, out := range req.Outcomes {
		if out.Task < 0 || out.Task >= len(c.tasks) {
			return rep, fmt.Errorf("fleet: outcome for unknown task %d", out.Task)
		}
		t := &c.tasks[out.Task]
		if t.state == taskDone || t.state == taskFailed {
			rep.Duplicate++
			continue
		}
		if out.Failure != "" {
			if err := c.store.PutFailure(t.key, t.desc, out.Attempts, out.Failure); err != nil {
				return rep, err
			}
			t.state = taskFailed
			c.failed++
			c.computed++
			c.settleGroup(t, 0, false)
			c.publish(Event{Type: "failure", Worker: req.Worker, Lease: req.Lease,
				Task: out.Task, Desc: t.desc}, now)
		} else {
			if out.Result == nil {
				return rep, fmt.Errorf("fleet: outcome for task %d has neither result nor failure", out.Task)
			}
			if err := c.store.Put(t.key, t.desc, out.Attempts, *out.Result); err != nil {
				return rep, err
			}
			t.state = taskDone
			c.done++
			c.computed++
			c.settleGroup(t, out.Result.Connectivity, true)
			c.publish(Event{Type: "complete", Worker: req.Worker, Lease: req.Lease,
				Task: out.Task, Desc: t.desc}, now)
		}
		rep.Accepted++
		if l != nil {
			l.tasks = removeInt(l.tasks, out.Task)
		}
	}
	if l != nil {
		if len(l.tasks) == 0 {
			delete(c.leases, req.Lease)
		} else {
			// Completion is liveness: renew alongside explicit heartbeats.
			l.deadline = now.Add(c.ttl)
		}
	}
	if rep.Accepted > 0 && c.computed%checkpointEvery == 0 {
		c.flushCheckpoint(false)
	}
	c.extendAdaptive(now)
	c.checkComplete(now)
	rep.Done = c.complete
	return rep, nil
}

// checkpointEvery paces advisory checkpoint flushes, mirroring the
// in-process executor's cadence.
const checkpointEvery = 32

// flushCheckpoint writes the advisory progress summary. Total counts
// this session's computable tasks (store hits excluded), matching the
// executor's convention, so `sweepctl status` reads fleet and local
// sweeps identically.
func (c *Coordinator) flushCheckpoint(interrupted bool) {
	_ = c.store.WriteCheckpoint(sweep.Checkpoint{
		Fingerprint: c.fingerprint,
		Done:        c.computed,
		Total:       len(c.tasks) - c.hits,
		Interrupted: interrupted,
	})
}

// Interrupt flushes an interrupted checkpoint (cmd/sweepd calls it on
// SIGINT before exiting; the per-record journal already holds every
// completed run).
func (c *Coordinator) Interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.complete {
		c.flushCheckpoint(true)
	}
}

// extendAdaptive applies the sequential stopping rule: for each
// configuration with every issued rep journaled, at least its base reps
// done, RelCI above target, and headroom under the cap, issue exactly
// one more repetition. One at a time is the point — the new rep's
// result decides whether another is needed, which is what makes the
// rule sequential rather than a fixed over-provision.
func (c *Coordinator) extendAdaptive(now time.Time) {
	if c.targetRelCI <= 0 {
		return
	}
	for _, g := range c.groupOrder {
		cs := c.groups[g]
		if cs.pending > 0 || cs.done < cs.base || cs.issued >= c.maxReps {
			continue
		}
		if cs.conn.RelCI() <= c.targetRelCI {
			continue
		}
		r := c.tasks[c.taskOfGroup(g)].run
		r.Rep = cs.issued
		id := c.addTask(r, true)
		c.pending = append(c.pending, id)
		c.publish(Event{Type: "extend", Task: id,
			Desc: fmt.Sprintf("%s rep=%d (relCI %.4f > %.4f)", cs.desc, r.Rep, cs.conn.RelCI(), c.targetRelCI)}, now)
	}
}

// taskOfGroup returns the index of some task of group g (the first; it
// exists by construction).
func (c *Coordinator) taskOfGroup(g uint64) int {
	for i := range c.tasks {
		if c.tasks[i].group == g {
			return i
		}
	}
	panic("fleet: group without tasks")
}

// checkComplete flips the coordinator into its terminal state once no
// task is pending or leased and the adaptive policy issued nothing.
func (c *Coordinator) checkComplete(now time.Time) {
	if c.complete {
		return
	}
	// Scrub stale queue entries: a requeued stolen task may have been
	// completed by its original worker while waiting.
	live := c.pending[:0]
	for _, ti := range c.pending {
		if c.tasks[ti].state == taskPending {
			live = append(live, ti)
		}
	}
	c.pending = live
	if len(c.pending) > 0 || len(c.leases) > 0 {
		return
	}
	for i := range c.tasks {
		if s := c.tasks[i].state; s != taskDone && s != taskFailed {
			return
		}
	}
	c.complete = true
	c.flushCheckpoint(false)
	c.publish(Event{Type: "done", Task: -1,
		Desc: fmt.Sprintf("%d done, %d failed", c.done, c.failed)}, now)
	for s := range c.subs { //lint:order-independent closing every subscriber; order immaterial
		close(s.ch)
	}
	c.subs = make(map[*subscriber]bool)
	close(c.doneCh)
}

// Status snapshots the coordinator.
func (c *Coordinator) Status(includeConfigs bool) Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.reapExpired(now)
	st := Status{
		Fingerprint: c.fingerprint,
		Total:       len(c.tasks),
		Done:        c.done,
		Failed:      c.failed,
		Hits:        c.hits,
		Computed:    c.computed,
		Workers:     len(c.workers),
		Complete:    c.complete,
	}
	for i := range c.tasks {
		switch c.tasks[i].state {
		case taskPending:
			st.Pending++
		case taskLeased:
			st.Leased++
		}
	}
	if c.started && c.computed > 0 {
		elapsed := now.Sub(c.startAt).Seconds()
		if elapsed > 0 {
			st.ElapsedSeconds = elapsed
			st.RunsPerSecond = float64(c.computed) / elapsed
			st.ETASeconds = float64(st.Pending+st.Leased) / st.RunsPerSecond
		}
	}
	st.Store = FingerprintSummary{Fingerprint: c.fingerprint, Runs: c.done, Failed: c.failed}
	var conn stats.Welford
	for _, g := range c.groupOrder {
		conn.Merge(c.groups[g].conn)
	}
	st.Store.Connectivity = metricOf(conn)
	if c.targetRelCI > 0 {
		ad := &AdaptiveStatus{TargetRelCI: c.targetRelCI, MaxReps: c.maxReps}
		for _, g := range c.groupOrder {
			cs := c.groups[g]
			ad.Extra += cs.issued - cs.base
			if cs.done >= cs.base && cs.conn.RelCI() <= c.targetRelCI {
				ad.Converged++
			}
		}
		st.Adaptive = ad
	}
	if includeConfigs {
		for _, g := range c.groupOrder {
			cs := c.groups[g]
			st.Configs = append(st.Configs, ConfigStatus{
				Desc:       cs.desc,
				Key:        fmt.Sprintf("%016x", cs.key),
				BaseReps:   cs.base,
				Issued:     cs.issued,
				DoneReps:   cs.done,
				FailedReps: cs.failed,
				Mean:       cs.conn.Mean(),
				RelCI:      cs.conn.RelCI(),
			})
		}
	}
	return st
}

// Aggregates folds the journaled results of every configuration group
// into per-metric Welford summaries — the "figures as a service" query,
// answerable while the sweep is still running. The fold is the same
// pairwise Merge the offline tooling uses, so a mid-sweep aggregate is
// exactly the final aggregate restricted to the reps journaled so far.
func (c *Coordinator) Aggregates() []Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	byGroup := make(map[uint64]*Aggregate, len(c.groupOrder))
	out := make([]Aggregate, 0, len(c.groupOrder))
	for _, g := range c.groupOrder {
		cs := c.groups[g]
		out = append(out, Aggregate{
			Desc: cs.desc, Key: fmt.Sprintf("%016x", cs.key),
			Protocol: c.tasks[c.taskOfGroup(g)].run.Protocol,
			Speed:    c.tasks[c.taskOfGroup(g)].run.Speed,
		})
		byGroup[g] = &out[len(out)-1]
	}
	for i := range c.tasks {
		t := &c.tasks[i]
		if t.state != taskDone {
			continue
		}
		res, ok := c.store.Get(t.key, t.desc)
		if !ok {
			continue // journaled then externally corrupted; skip, don't lie
		}
		a := byGroup[t.group]
		a.Reps++
		mergeOne(&a.Connectivity, res.Connectivity)
		mergeOne(&a.TxRange, res.AvgTxRange)
		mergeOne(&a.LogicalDegree, res.AvgLogicalDegree)
		mergeOne(&a.PhysicalDegree, res.AvgPhysicalDegree)
		mergeOne(&a.HelloTx, float64(res.HelloTx))
		mergeOne(&a.DataTx, float64(res.DataTx))
	}
	return out
}

// Aggregate is one configuration's live summary, JSON-shaped for the
// /aggregate endpoint.
type Aggregate struct {
	Desc     string  `json:"desc"`
	Key      string  `json:"key"`
	Protocol string  `json:"protocol"`
	Speed    float64 `json:"speed"`
	Reps     int     `json:"reps"`

	Connectivity   Metric `json:"connectivity"`
	TxRange        Metric `json:"tx_range"`
	LogicalDegree  Metric `json:"logical_degree"`
	PhysicalDegree Metric `json:"physical_degree"`
	HelloTx        Metric `json:"hello_tx"`
	DataTx         Metric `json:"data_tx"`
}

// Metric is a Welford summary rendered for JSON.
type Metric struct {
	w     stats.Welford
	N     int     `json:"n"`
	Mean  float64 `json:"mean"`
	CI95  float64 `json:"ci95"`
	RelCI float64 `json:"rel_ci"`
}

// mergeOne folds one observation into a Metric via the pairwise Welford
// merge and refreshes the rendered fields.
func mergeOne(m *Metric, x float64) {
	var one stats.Welford
	one.Add(x)
	m.w.Merge(one)
	*m = metricOf(m.w)
}

// subscriber is one /events client.
type subscriber struct {
	ch chan []byte
}

// Subscribe registers an events listener. The returned channel closes
// when the sweep completes; cancel unregisters early. A subscriber that
// falls more than the buffer behind loses events (the stream is a
// monitor, not a journal — the store is the journal).
func (c *Coordinator) Subscribe() (<-chan []byte, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &subscriber{ch: make(chan []byte, 256)}
	if c.complete {
		close(s.ch)
		return s.ch, func() {}
	}
	c.subs[s] = true
	return s.ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.subs[s] {
			delete(c.subs, s)
			close(s.ch)
		}
	}
}

// publish fans an event to subscribers. Called under mu.
func (c *Coordinator) publish(ev Event, now time.Time) {
	c.eventSeq++
	ev.Seq = c.eventSeq
	ev.UnixMillis = now.UnixMilli()
	ev.Done = c.done
	ev.Total = len(c.tasks)
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	data = append(data, '\n')
	for s := range c.subs { //lint:order-independent independent best-effort sends; delivery order per subscriber is preserved by its own channel
		select {
		case s.ch <- data:
		default: // slow consumer: drop
		}
	}
}

// removeInt deletes the first occurrence of v, preserving order.
func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
