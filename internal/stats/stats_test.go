package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mstc/internal/xrand"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("empty sample stats nonzero: %+v", s)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(5)
	if s.Mean() != 5 || s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("single obs: mean=%v var=%v ci=%v", s.Mean(), s.Variance(), s.CI95())
	}
}

func TestKnownValues(t *testing.T) {
	// {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	// CI95 with df=7: 2.365 * sqrt(32/7)/sqrt(8).
	want := 2.365 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestConstantSampleHasZeroVariance(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(3.25)
	}
	if s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("constant sample: var=%v ci=%v", s.Variance(), s.CI95())
	}
}

func TestCI95Coverage(t *testing.T) {
	// The CI should contain the true mean ~95% of the time. With 400
	// experiments of 20 normal draws each, coverage within [0.90, 0.99].
	rng := xrand.New(99)
	hits := 0
	const experiments = 400
	for e := 0; e < experiments; e++ {
		var s Sample
		for i := 0; i < 20; i++ {
			s.Add(10 + 3*rng.NormFloat64())
		}
		if math.Abs(s.Mean()-10) <= s.CI95() {
			hits++
		}
	}
	cov := float64(hits) / experiments
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("CI95 coverage = %v, want ~0.95", cov)
	}
}

func TestMergeEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		var whole, a, b Sample
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			x := rng.Uniform(-100, 100)
			whole.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTCritMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		c := tCrit95(df)
		if c > prev+1e-12 {
			t.Fatalf("tCrit95 not non-increasing at df=%d: %v > %v", df, c, prev)
		}
		prev = c
	}
	if !math.IsNaN(tCrit95(0)) {
		t.Error("tCrit95(0) should be NaN")
	}
	if tCrit95(1000) != 1.960 {
		t.Errorf("large-df tCrit = %v", tCrit95(1000))
	}
}

func TestVarianceNeverNegative(t *testing.T) {
	f := func(base float64, n uint8) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.Abs(base) > 1e12 {
			return true
		}
		var s Sample
		for i := 0; i < int(n%50)+2; i++ {
			s.Add(base) // identical values: catastrophic cancellation risk
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("String = %q", got)
	}
}
