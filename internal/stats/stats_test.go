package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mstc/internal/xrand"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("empty sample stats nonzero: %+v", s)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(5)
	if s.Mean() != 5 || s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("single obs: mean=%v var=%v ci=%v", s.Mean(), s.Variance(), s.CI95())
	}
}

func TestKnownValues(t *testing.T) {
	// {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	// CI95 with df=7: 2.365 * sqrt(32/7)/sqrt(8).
	want := 2.365 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestConstantSampleHasZeroVariance(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(3.25)
	}
	if s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("constant sample: var=%v ci=%v", s.Variance(), s.CI95())
	}
}

func TestCI95Coverage(t *testing.T) {
	// The CI should contain the true mean ~95% of the time. With 400
	// experiments of 20 normal draws each, coverage within [0.90, 0.99].
	rng := xrand.New(99)
	hits := 0
	const experiments = 400
	for e := 0; e < experiments; e++ {
		var s Sample
		for i := 0; i < 20; i++ {
			s.Add(10 + 3*rng.NormFloat64())
		}
		if math.Abs(s.Mean()-10) <= s.CI95() {
			hits++
		}
	}
	cov := float64(hits) / experiments
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("CI95 coverage = %v, want ~0.95", cov)
	}
}

func TestMergeEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		var whole, a, b Sample
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			x := rng.Uniform(-100, 100)
			whole.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTCritMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		c := tCrit95(df)
		if c > prev+1e-12 {
			t.Fatalf("tCrit95 not non-increasing at df=%d: %v > %v", df, c, prev)
		}
		prev = c
	}
	if !math.IsNaN(tCrit95(0)) {
		t.Error("tCrit95(0) should be NaN")
	}
	if tCrit95(1000) != 1.960 {
		t.Errorf("large-df tCrit = %v", tCrit95(1000))
	}
}

func TestVarianceNeverNegative(t *testing.T) {
	f := func(base float64, n uint8) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.Abs(base) > 1e12 {
			return true
		}
		var s Sample
		for i := 0; i < int(n%50)+2; i++ {
			s.Add(base) // identical values: catastrophic cancellation risk
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelCI(t *testing.T) {
	add := func(xs ...float64) *Sample {
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		return &s
	}
	// Closed form for {m-d, m+d}: sd = d*sqrt(2), CI95 = 12.706*d, so
	// RelCI = 12.706*d/|m|.
	cases := []struct {
		name string
		s    *Sample
		want float64
	}{
		{"empty", add(), 0},
		{"single", add(7), 0},
		{"constant", add(3, 3, 3), 0},
		{"zero-mean zero-spread", add(0, 0), 0},
		{"two-point", add(8, 12), 12.706 * 2 / 10},
		{"negative mean", add(-8, -12), 12.706 * 2 / 10},
	}
	for _, tc := range cases {
		if got := tc.s.RelCI(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: RelCI = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Spread around an exactly-zero mean: the ratio is undefined, and the
	// zero-safe convention reports +Inf so a threshold rule never stops on
	// it by accident.
	if got := add(-1, 1).RelCI(); !math.IsInf(got, 1) {
		t.Errorf("zero-mean spread: RelCI = %v, want +Inf", got)
	}
}

func TestRelCIWelfordMatchesSample(t *testing.T) {
	rng := xrand.New(7)
	var s Sample
	var w Welford
	for i := 0; i < 40; i++ {
		x := rng.Uniform(50, 150)
		s.Add(x)
		w.Add(x)
	}
	if ds, dw := s.RelCI(), w.RelCI(); math.Abs(ds-dw) > 1e-12 {
		t.Errorf("Sample.RelCI = %v, Welford.RelCI = %v", ds, dw)
	}
	var we Welford
	if we.RelCI() != 0 {
		t.Errorf("empty Welford RelCI = %v, want 0", we.RelCI())
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("String = %q", got)
	}
}
