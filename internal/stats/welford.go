package stats

import (
	"fmt"
	"math"
)

// Welford accumulates scalar observations with Welford's online algorithm:
// the running mean and the centered sum of squares M2 are updated per
// observation, so the variance never forms the catastrophically cancelling
// sum(x²) − n·mean² difference that Sample's moment form does. Use it where
// observations share a large common offset (e.g. per-run transmission ranges
// in the hundreds with millimeter spread); Sample keeps its moment form
// because its byte-exact output feeds the golden digests. The zero value is
// ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty sample).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 { // numeric guard; m2 is non-negative up to rounding
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the 95 % Student-t confidence interval for
// the mean (0 for n < 2).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tCrit95(w.n-1) * w.StdDev() / math.Sqrt(float64(w.n))
}

// String formats mean ± CI95.
func (w *Welford) String() string {
	return fmt.Sprintf("%.4f ± %.4f", w.Mean(), w.CI95())
}

// RelCI returns the relative 95 % confidence-interval half-width
// CI95/|mean|, with the same zero-safe convention as Sample.RelCI: 0
// when there is no spread, +Inf for spread around a zero mean.
func (w *Welford) RelCI() float64 { return relCI(w.Mean(), w.CI95()) }

// State exposes the accumulator's internal triple (n, mean, M2) so a
// partial can be serialized — e.g. into a sweep shard's summary — and
// rebuilt bit-exactly with WelfordFromState on the merging side.
func (w Welford) State() (n int, mean, m2 float64) {
	return w.n, w.mean, w.m2
}

// WelfordFromState rebuilds the accumulator State exported. Passing a
// triple not produced by State yields an accumulator whose statistics
// are whatever the triple encodes; garbage in, garbage out.
func WelfordFromState(n int, mean, m2 float64) Welford {
	return Welford{n: n, mean: mean, m2: m2}
}

// Merge folds the observations of o into w (Chan et al.'s pairwise update),
// preserving the algorithm's numerical behavior across per-worker partials.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.mean += d * float64(o.n) / n
	w.n += o.n
}
