package stats

import (
	"math"
	"testing"

	"mstc/internal/xrand"
)

// Property tests for Welford.Merge over randomized data, partitions, and
// fold orders. Merge cannot be exactly associative or commutative in
// float64 (rounding depends on fold order), so the properties are stated
// against a relative tolerance; N, which is integer arithmetic, must be
// exact. Randomness comes from xrand with fixed seeds, so every failure
// is reproducible.

// relClose reports whether a and b agree to within rel relative error
// (absolute near zero).
func relClose(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}

// checkClose asserts the three exposed statistics of got match want.
func checkClose(t *testing.T, label string, got, want Welford, rel float64) {
	t.Helper()
	if got.N() != want.N() {
		t.Errorf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	if !relClose(got.Mean(), want.Mean(), rel) {
		t.Errorf("%s: Mean = %g, want %g", label, got.Mean(), want.Mean())
	}
	if !relClose(got.Variance(), want.Variance(), rel) {
		t.Errorf("%s: Variance = %g, want %g", label, got.Variance(), want.Variance())
	}
}

// randomData draws a dataset whose scale stresses the accumulator: a large
// common offset with a comparatively small spread, the exact shape Welford
// exists to handle.
func randomData(rng *xrand.Source, n int) []float64 {
	offset := rng.Uniform(-1e6, 1e6)
	spread := math.Exp(rng.Uniform(-3, 3))
	data := make([]float64, n)
	for i := range data {
		data[i] = offset + spread*rng.NormFloat64()
	}
	return data
}

// partition splits data into parts non-empty-or-empty slices at random cut
// points; every element lands in exactly one part.
func partition(rng *xrand.Source, data []float64, parts int) [][]float64 {
	out := make([][]float64, parts)
	for _, x := range data {
		p := rng.Intn(parts)
		out[p] = append(out[p], x)
	}
	return out
}

func accumulate(xs []float64) Welford {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w
}

// TestWelfordMergePartitionProperty: for random datasets split into random
// partitions, folding the per-part accumulators in a random order agrees
// with sequentially Add-ing the whole dataset — the property the sweep
// tooling relies on when it folds per-record singletons into a summary.
func TestWelfordMergePartitionProperty(t *testing.T) {
	rng := xrand.New(20260805)
	for trial := 0; trial < 200; trial++ {
		tr := rng.Sub(uint64(trial))
		n := 2 + tr.Intn(400)
		data := randomData(tr, n)
		whole := accumulate(data)

		parts := 1 + tr.Intn(12)
		shards := partition(tr, data, parts)
		accs := make([]Welford, parts)
		for i, s := range shards {
			accs[i] = accumulate(s)
		}

		// Fold the partials in a random order.
		var merged Welford
		for _, i := range tr.Perm(parts) {
			merged.Merge(accs[i])
		}
		checkClose(t, "random-order fold", merged, whole, 1e-9)

		// Balanced pairwise tree, the shape a parallel reduction uses.
		tree := append([]Welford(nil), accs...)
		for len(tree) > 1 {
			var next []Welford
			for i := 0; i < len(tree); i += 2 {
				w := tree[i]
				if i+1 < len(tree) {
					w.Merge(tree[i+1])
				}
				next = append(next, w)
			}
			tree = next
		}
		checkClose(t, "pairwise tree fold", tree[0], whole, 1e-9)
	}
}

// TestWelfordMergeCommutative: a⊕b and b⊕a agree (N exactly, moments to
// tolerance) for random operand pairs, including empty operands where the
// agreement is exact by the identity contract.
func TestWelfordMergeCommutative(t *testing.T) {
	rng := xrand.New(7041776)
	for trial := 0; trial < 200; trial++ {
		tr := rng.Sub(uint64(trial))
		a := accumulate(randomData(tr, tr.Intn(50)))
		b := accumulate(randomData(tr, tr.Intn(50)))
		ab, ba := a, b
		ab.Merge(b)
		ba.Merge(a)
		checkClose(t, "commutativity", ab, ba, 1e-12)
	}
}

// TestWelfordMergeAssociative: (a⊕b)⊕c agrees with a⊕(b⊕c) to tolerance
// for random operand triples, so shard summaries can be folded in
// whatever order merge processes complete.
func TestWelfordMergeAssociative(t *testing.T) {
	rng := xrand.New(1789)
	for trial := 0; trial < 200; trial++ {
		tr := rng.Sub(uint64(trial))
		a := accumulate(randomData(tr, tr.Intn(40)))
		b := accumulate(randomData(tr, tr.Intn(40)))
		c := accumulate(randomData(tr, tr.Intn(40)))

		left := a
		left.Merge(b)
		left.Merge(c)

		bc := b
		bc.Merge(c)
		right := a
		right.Merge(bc)

		checkClose(t, "associativity", left, right, 1e-10)
	}
}

// TestWelfordMergeIdentity: the empty accumulator is a two-sided identity,
// and bit-exactly so — merging with it must not perturb a single bit,
// because shards may legitimately contribute zero observations.
func TestWelfordMergeIdentity(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		tr := rng.Sub(uint64(trial))
		w := accumulate(randomData(tr, 1+tr.Intn(30)))
		var empty Welford

		left := empty
		left.Merge(w)
		right := w
		right.Merge(empty)
		if left != w || right != w {
			t.Fatalf("empty is not a bit-exact identity: %v / %v, want %v", left, right, w)
		}
	}
}

// TestWelfordStateRoundTrip: State/WelfordFromState preserve the
// accumulator bit-for-bit, which is what lets a shard summary travel
// through JSON and merge as if it never left the process.
func TestWelfordStateRoundTrip(t *testing.T) {
	rng := xrand.New(271828)
	for trial := 0; trial < 50; trial++ {
		tr := rng.Sub(uint64(trial))
		w := accumulate(randomData(tr, tr.Intn(100)))
		if got := WelfordFromState(w.State()); got != w {
			t.Fatalf("State round-trip changed the accumulator: %v, want %v", got, w)
		}
	}
}
