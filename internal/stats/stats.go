// Package stats provides the summary statistics the evaluation reports:
// sample mean, variance, and Student-t 95 % confidence intervals over
// independent simulation repetitions (§5.1: "Each result is associated with
// a 95 percent confidence interval").
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations. The zero value is ready to use.
type Sample struct {
	n    int
	sum  float64
	sum2 float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	s.sum += x
	s.sum2 += x * x
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sum2 - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 { // numeric guard
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95 % confidence interval for the mean
// using the Student-t distribution (0 for n < 2).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCrit95(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
}

// String formats mean ± CI95.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4f ± %.4f", s.Mean(), s.CI95())
}

// RelCI returns the relative 95 % confidence-interval half-width
// CI95/|mean| — the precision measure sequential stopping rules compare
// against a target (reps are added until RelCI falls below it). It is
// zero-safe: a zero mean with zero half-width reads as converged (0),
// while a zero mean with spread reads as never-converged (+Inf), so a
// threshold comparison keeps requesting reps rather than dividing by
// zero.
func (s *Sample) RelCI() float64 { return relCI(s.Mean(), s.CI95()) }

// relCI is the shared zero-safe CI95/|mean| ratio behind Sample.RelCI
// and Welford.RelCI.
func relCI(mean, ci float64) float64 {
	if ci == 0 { //lint:ignore float-eq CI95 is exactly 0 for n < 2 and for zero variance; both mean "no spread"
		return 0
	}
	if mean == 0 { //lint:ignore float-eq exact-zero mean is the one undefined point of the ratio
		return math.Inf(1)
	}
	return ci / math.Abs(mean)
}

// tCrit95 returns the two-sided 95 % critical value of Student's t with the
// given degrees of freedom. Exact table through 30 df, then the common
// large-sample approximations.
func tCrit95(df int) float64 {
	table := [...]float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df < len(table):
		return table[df]
	case df < 40:
		return 2.030
	case df < 60:
		return 2.009
	case df < 120:
		return 1.990
	default:
		return 1.960
	}
}

// Merge folds the observations of o into s. Useful when per-worker samples
// are combined after a parallel sweep.
func (s *Sample) Merge(o Sample) {
	s.n += o.n
	s.sum += o.sum
	s.sum2 += o.sum2
}
