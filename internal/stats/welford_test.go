package stats

import (
	"math"
	"testing"
)

// Closed-form checks: small integer datasets whose mean and variance are
// exact in float64, so equality is legitimate.

func TestWelfordClosedForm(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if w.Mean() != 5 { //lint:ignore float-eq integer dataset, mean exact in float64
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Deviations: -3,-1,-1,-1,0,0,2,4 → m2 = 32, unbiased variance 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, want)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 { //lint:ignore float-eq zero-value contract, exact by construction
		t.Errorf("empty Welford not all-zero: %v", w)
	}
	w.Add(3.5)
	if w.Mean() != 3.5 { //lint:ignore float-eq single observation is returned exactly
		t.Errorf("Mean = %g, want 3.5", w.Mean())
	}
	if w.Variance() != 0 || w.CI95() != 0 { //lint:ignore float-eq n<2 contract returns exact zero
		t.Errorf("n=1 variance/CI not zero")
	}
}

func TestWelfordMatchesSample(t *testing.T) {
	// On benign data the two accumulators agree to rounding.
	var w Welford
	var s Sample
	x := 0.3
	for i := 0; i < 100; i++ {
		x = 3.9 * x * (1 - x) // logistic map: deterministic, aperiodic data
		w.Add(x)
		s.Add(x)
	}
	if math.Abs(w.Mean()-s.Mean()) > 1e-12 {
		t.Errorf("means diverge: welford %g sample %g", w.Mean(), s.Mean())
	}
	if math.Abs(w.Variance()-s.Variance()) > 1e-12 {
		t.Errorf("variances diverge: welford %g sample %g", w.Variance(), s.Variance())
	}
	if math.Abs(w.CI95()-s.CI95()) > 1e-12 {
		t.Errorf("CI95 diverge: welford %g sample %g", w.CI95(), s.CI95())
	}
}

func TestWelfordStableUnderOffset(t *testing.T) {
	// The motivating case: a large common offset with small spread. The
	// moment form loses every significant digit of the variance (float64
	// keeps ~16 digits; offset² ~1e18 swamps a spread² of 1e-2); Welford
	// keeps the exact answer. Data {c-1, c, c+1} has variance exactly 1.
	const c = 1e9
	var w Welford
	for _, x := range []float64{c - 1, c, c + 1} {
		w.Add(x)
	}
	if got := w.Variance(); math.Abs(got-1) > 1e-9 {
		t.Errorf("offset variance = %g, want 1", got)
	}
}

func TestWelfordMerge(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100, -4}
	for split := 0; split <= len(data); split++ {
		var a, b, whole Welford
		for i, x := range data {
			whole.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 ||
			math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
			t.Errorf("split %d: merged mean/var %g/%g, want %g/%g",
				split, a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
		}
	}
}

func TestWelfordCI95ClosedForm(t *testing.T) {
	// Four observations {0, 0, 2, 2}: mean 1, variance 4/3, df 3, t = 3.182
	// → CI = 3.182 · sqrt(4/3) / 2.
	var w Welford
	for _, x := range []float64{0, 0, 2, 2} {
		w.Add(x)
	}
	want := 3.182 * math.Sqrt(4.0/3.0) / 2
	if got := w.CI95(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
}
