package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, -3), Pt(2, 0), 5},
		{Pt(0, 0), Pt(0, 7.5), 7.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.want*c.want) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Pt(ax, ay), Pt(bx, by)
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		// Small integer coordinates keep floating error negligible.
		a, b, c := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)), Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpAndMid(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Mid(q); got != Pt(5, 10) {
		t.Errorf("Mid = %v, want (5,10)", got)
	}
	if got := p.Lerp(q, 2); got != Pt(20, 40) {
		t.Errorf("Lerp(2) = %v, want (20,40) (extrapolation)", got)
	}
}

func TestVectorOps(t *testing.T) {
	v, w := Vec(3, 4), Vec(-4, 3)
	if got := v.Len(); !almostEq(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.Len2(); !almostEq(got, 25) {
		t.Errorf("Len2 = %v, want 25", got)
	}
	if got := v.Dot(w); !almostEq(got, 0) {
		t.Errorf("Dot = %v, want 0 (perpendicular)", got)
	}
	if got := v.Cross(w); !almostEq(got, 25) {
		t.Errorf("Cross = %v, want 25", got)
	}
	if got := v.Add(w); got != Vec(-1, 7) {
		t.Errorf("Add = %v, want (-1,7)", got)
	}
	if got := v.Scale(2); got != Vec(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	u := v.Unit()
	if !almostEq(u.Len(), 1) {
		t.Errorf("Unit length = %v, want 1", u.Len())
	}
	if z := Vec(0, 0).Unit(); z != Vec(0, 0) {
		t.Errorf("Unit of zero vector = %v, want zero", z)
	}
}

func TestPolarRoundTrip(t *testing.T) {
	f := func(lenRaw, angRaw float64) bool {
		if math.IsNaN(lenRaw) || math.IsInf(lenRaw, 0) || math.IsNaN(angRaw) || math.IsInf(angRaw, 0) {
			return true
		}
		length := math.Mod(math.Abs(lenRaw), 1e6) + 0.001
		angle := math.Mod(angRaw, math.Pi) // stay within principal range
		v := Polar(length, angle)
		return math.Abs(v.Len()-length) < 1e-6*length && math.Abs(v.Angle()-angle) < 1e-9 ||
			math.Abs(math.Abs(v.Angle())+math.Abs(angle)-2*math.Pi) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(10, 20), Pt(0, 5))
	if r.Min != Pt(0, 5) || r.Max != Pt(10, 20) {
		t.Fatalf("NewRect did not normalize corners: %+v", r)
	}
	if got := r.Width(); got != 10 {
		t.Errorf("Width = %v, want 10", got)
	}
	if got := r.Height(); got != 15 {
		t.Errorf("Height = %v, want 15", got)
	}
	if got := r.Area(); got != 150 {
		t.Errorf("Area = %v, want 150", got)
	}
	if got := r.Center(); got != Pt(5, 12.5) {
		t.Errorf("Center = %v, want (5,12.5)", got)
	}
	if !Pt(0, 5).In(r) || !Pt(10, 20).In(r) || !Pt(5, 10).In(r) {
		t.Error("boundary and interior points should be In the rect")
	}
	if Pt(-0.001, 5).In(r) || Pt(5, 20.001).In(r) {
		t.Error("outside points must not be In the rect")
	}
}

func TestRectEmptyAndClamp(t *testing.T) {
	e := Rect{Min: Pt(1, 1), Max: Pt(0, 0)}
	if !e.Empty() {
		t.Error("inverted rect should be Empty")
	}
	if got := e.Area(); got != 0 {
		t.Errorf("empty Area = %v, want 0", got)
	}
	r := Square(900)
	cases := []struct{ in, want Point }{
		{Pt(-5, 450), Pt(0, 450)},
		{Pt(950, -1), Pt(900, 0)},
		{Pt(450, 450), Pt(450, 450)},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSquare(t *testing.T) {
	r := Square(900)
	if r.Min != Pt(0, 0) || r.Max != Pt(900, 900) {
		t.Fatalf("Square(900) = %+v", r)
	}
}

func TestInDisk(t *testing.T) {
	c := Pt(0, 0)
	if !InDisk(Pt(3, 4), c, 5) {
		t.Error("point on boundary should be in disk")
	}
	if InDisk(Pt(3, 4.0001), c, 5) {
		t.Error("point outside should not be in disk")
	}
}

// TestInLuneMatchesPaperFig2 checks the RNG lune predicate on the geometry of
// the paper's Fig. 2: u=(0,0), v=(4,3), w at (4,-1) has d(u,w)=sqrt(17),
// d(v,w)=4, d(u,v)=5 so w is inside the lune of (u,v).
func TestInLuneMatchesPaperFig2(t *testing.T) {
	u, v, w := Pt(0, 0), Pt(4, 3), Pt(4, -1)
	if !InLune(w, u, v) {
		t.Error("w should be inside lune(u,v)")
	}
	// Symmetric in u, v.
	if !InLune(w, v, u) {
		t.Error("lune test must be symmetric in u and v")
	}
	// u itself is never inside its own lune.
	if InLune(u, u, v) {
		t.Error("endpoint must not be inside the lune")
	}
}

func TestInGabrielDiskSubsetOfLune(t *testing.T) {
	// The Gabriel disk is a subset of the lune: any w in the Gabriel disk
	// must be in the lune.
	f := func(ux, uy, vx, vy, wx, wy int16) bool {
		u, v, w := Pt(float64(ux), float64(uy)), Pt(float64(vx), float64(vy)), Pt(float64(wx), float64(wy))
		if u == v {
			return true
		}
		if InGabrielDisk(w, u, v) {
			return InLune(w, u, v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConeIndex(t *testing.T) {
	apex := Pt(0, 0)
	k := 6
	cases := []struct {
		p    Point
		want int
	}{
		{Pt(1, 0.001), 0},     // just above +x axis
		{Pt(1, 1), 0},         // 45° < 60°
		{Pt(0, 1), 1},         // 90°
		{Pt(-1, 0.001), 2},    // just under 180°
		{Pt(-1, -0.001), 3},   // just over 180°
		{Pt(0.001, -1), 4},    // ~270°
		{Pt(1, -0.001), 5},    // just below +x axis
		{Pt(1, -0.000001), 5}, // approaching 2π stays in last cone
	}
	for _, c := range cases {
		if got := ConeIndex(apex, c.p, k); got != c.want {
			t.Errorf("ConeIndex(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestConeIndexRangeProperty(t *testing.T) {
	f := func(px, py float64, kRaw uint8) bool {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsInf(px, 0) || math.IsInf(py, 0) {
			return true
		}
		k := int(kRaw%12) + 1
		i := ConeIndex(Pt(0, 0), Pt(px, py), k)
		return i >= 0 && i < k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConeIndexPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k <= 0")
		}
	}()
	ConeIndex(Pt(0, 0), Pt(1, 1), 0)
}

func TestStringFormats(t *testing.T) {
	if got := Pt(1, 2).String(); got != "(1.000, 2.000)" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkDist2(b *testing.B) {
	p, q := Pt(1.5, 2.5), Pt(400.25, 817.5)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Dist2(q)
	}
	_ = sink
}

func TestSegmentIntersection(t *testing.T) {
	// Crossing diagonals of a square meet at the center.
	p, ok := SegmentIntersection(Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0))
	if !ok || !almostEq(p.X, 5) || !almostEq(p.Y, 5) {
		t.Errorf("intersection = %v, %v", p, ok)
	}
	// Disjoint parallel segments.
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(10, 0), Pt(0, 1), Pt(10, 1)); ok {
		t.Error("parallel segments intersected")
	}
	// Collinear overlap reports no intersection by contract.
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(10, 0), Pt(5, 0), Pt(15, 0)); ok {
		t.Error("collinear overlap should report none")
	}
	// Segments whose lines cross beyond the endpoints.
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 1), Pt(0, 10), Pt(10, 0)); ok {
		t.Error("non-overlapping segments intersected")
	}
	// Touching at an endpoint counts (closed segments).
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(5, 5), Pt(5, 5), Pt(9, 0)); !ok {
		t.Error("endpoint touch missed")
	}
}

func TestSegmentIntersectionSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		a, b := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		c, d := Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy))
		_, ok1 := SegmentIntersection(a, b, c, d)
		_, ok2 := SegmentIntersection(c, d, a, b)
		_, ok3 := SegmentIntersection(b, a, d, c)
		return ok1 == ok2 && ok2 == ok3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
