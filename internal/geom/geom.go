// Package geom provides the 2-D geometric primitives used throughout the
// simulator: points, vectors, distance predicates, angles, and the
// deterministic tie-breaking helpers that topology-control protocols rely on
// to form a total order over link costs.
//
// All coordinates are in meters and all angles in radians. The package is
// allocation-free on its hot paths (distance and containment tests), which
// matters because the radio model and the protocol selectors call them for
// every neighbor pair at every sample instant.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance for approximate float comparison:
// coordinates are meters in a sub-kilometer arena, so 1e-9 is far below any
// physically meaningful difference while far above accumulated rounding.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps. Use it instead of == on
// computed floats; reserve exact comparison for deliberate sentinel checks
// and total-order tie-breaking (and annotate those for manetlint).
func Eq(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// Zero reports whether x is zero within Eps.
func Zero(x float64) bool {
	return math.Abs(x) <= Eps
}

// Point is a location in the 2-D plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer it in
// comparisons: it avoids the square root and is exact for representable
// inputs.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q. t outside
// [0, 1] extrapolates along the line through p and q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Mid returns the midpoint of segment pq.
func (p Point) Mid(q Point) Point { return p.Lerp(q, 0.5) }

// In reports whether p lies inside the axis-aligned rectangle r
// (inclusive of the boundary).
func (p Point) In(r Rect) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Vector is a displacement in the plane, in meters.
type Vector struct {
	DX, DY float64
}

// Vec is shorthand for Vector{dx, dy}.
func Vec(dx, dy float64) Vector { return Vector{dx, dy} }

// Add returns the vector sum v + w.
func (v Vector) Add(w Vector) Vector { return Vector{v.DX + w.DX, v.DY + w.DY} }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.DX * s, v.DY * s} }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Len2 returns the squared length of v.
func (v Vector) Len2() float64 { return v.DX*v.DX + v.DY*v.DY }

// Dot returns the dot product v·w.
func (v Vector) Dot(w Vector) float64 { return v.DX*w.DX + v.DY*w.DY }

// Cross returns the z-component of the 3-D cross product v×w. Its sign gives
// the orientation of the turn from v to w (positive = counter-clockwise).
func (v Vector) Cross(w Vector) float64 { return v.DX*w.DY - v.DY*w.DX }

// Angle returns the angle of v in radians in (-π, π], measured
// counter-clockwise from the positive x-axis. The zero vector yields 0.
func (v Vector) Angle() float64 { return math.Atan2(v.DY, v.DX) }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 { //lint:ignore float-eq only the exact zero vector has no direction; near-zero vectors normalize fine
		return v
	}
	return Vector{v.DX / l, v.DY / l}
}

// Polar returns the vector of the given length pointing at the given angle
// (radians, counter-clockwise from the positive x-axis).
func Polar(length, angle float64) Vector {
	s, c := math.Sincos(angle)
	return Vector{length * c, length * s}
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner, Max the
// upper-right. A Rect with Max coordinates below Min is empty.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the corner order.
func NewRect(a, b Point) Rect {
	if a.X > b.X {
		a.X, b.X = b.X, a.X
	}
	if a.Y > b.Y {
		a.Y, b.Y = b.Y, a.Y
	}
	return Rect{Min: a, Max: b}
}

// Square returns the axis-aligned square [0,side]×[0,side] — the standard
// simulation arena shape.
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r (0 for empty rectangles).
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.Max.X < r.Min.X || r.Max.Y < r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	p.X = math.Max(r.Min.X, math.Min(r.Max.X, p.X))
	p.Y = math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y))
	return p
}

// InDisk reports whether point p lies within (or on) the disk of the given
// radius centered at c.
func InDisk(p, c Point, radius float64) bool {
	return p.Dist2(c) <= radius*radius
}

// InGabrielDisk reports whether w lies strictly inside the disk whose
// diameter is the segment uv — the region test of the Gabriel graph.
func InGabrielDisk(w, u, v Point) bool {
	return w.Dist2(u.Mid(v)) < u.Dist2(v)/4
}

// InLune reports whether w lies strictly inside the lune of u and v: the
// intersection of the open disks of radius |uv| centered at u and at v.
// This is the region test of the relative neighborhood graph.
func InLune(w, u, v Point) bool {
	d2 := u.Dist2(v)
	return w.Dist2(u) < d2 && w.Dist2(v) < d2
}

// SegmentIntersection returns the intersection point of the closed
// segments ab and cd, if there is exactly one. Collinear overlaps report no
// intersection (they are measure-zero for the random configurations the
// simulator produces, and face routing treats them as non-crossing).
func SegmentIntersection(a, b, c, d Point) (Point, bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	denom := r.Cross(s)
	if denom == 0 { //lint:ignore float-eq exact parallelism test; collinear overlaps are documented as non-crossing
		return Point{}, false
	}
	t := c.Sub(a).Cross(s) / denom
	u := c.Sub(a).Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point{}, false
	}
	return a.Add(r.Scale(t)), true
}

// ConeIndex returns which of k equal cones around apex the point p falls in.
// Cone 0 spans angles [0, 2π/k) measured counter-clockwise from the positive
// x-axis. p equal to apex maps to cone 0.
func ConeIndex(apex, p Point, k int) int {
	if k <= 0 {
		panic("geom: ConeIndex requires k > 0")
	}
	a := p.Sub(apex).Angle()
	if a < 0 {
		a += 2 * math.Pi
	}
	i := int(a / (2 * math.Pi / float64(k)))
	if i >= k { // guard against a == 2π from rounding
		i = k - 1
	}
	return i
}
