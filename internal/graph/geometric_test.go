package graph

import (
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func randomPoints(seed uint64, n int) []geom.Point {
	return mobility.UniformPoints(arena, n, xrand.New(seed))
}

func TestUnitDisk(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(300, 0)}
	g := UnitDisk(pts, 250)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("edge beyond range present")
	}
	if w, _ := g.Weight(0, 1); w != 100 {
		t.Errorf("weight = %v", w)
	}
}

func TestRNGSubsetOfUnitDisk(t *testing.T) {
	pts := randomPoints(1, 80)
	ud := UnitDisk(pts, 250)
	rng := RNGGraph(pts, 250)
	for _, e := range rng.Edges() {
		if !ud.HasEdge(e.U, e.V) {
			t.Fatalf("RNG edge (%d,%d) not in unit disk", e.U, e.V)
		}
	}
	if rng.M() > ud.M() {
		t.Error("RNG has more edges than the unit-disk graph")
	}
}

func TestGraphInclusionChain(t *testing.T) {
	// Classic inclusion: EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay. We verify
	// MST ⊆ RNG ⊆ GG on random instances with full range.
	f := func(seed uint64) bool {
		pts := randomPoints(seed, 40)
		const r = 1e9 // unrestricted
		rngG := RNGGraph(pts, r)
		gg := GabrielGraph(pts, r)
		for _, e := range rngG.Edges() {
			if !gg.HasEdge(e.U, e.V) {
				return false
			}
		}
		for _, e := range EuclideanMST(pts) {
			if !rngG.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRNGConnectivityPreserved(t *testing.T) {
	// If the unit-disk graph is connected, RNG restricted to the same
	// range must stay connected (link-removal condition 1 preserves
	// connectivity).
	f := func(seed uint64) bool {
		pts := randomPoints(seed, 100)
		ud := UnitDisk(pts, 250)
		if !ud.Connected() {
			return true // vacuous
		}
		return RNGGraph(pts, 250).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGabrielConnectivityPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		pts := randomPoints(seed, 100)
		ud := UnitDisk(pts, 250)
		if !ud.Connected() {
			return true
		}
		return GabrielGraph(pts, 250).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestYaoConnectivityPreservedK6(t *testing.T) {
	// Yao graph with k >= 6 preserves connectivity (Wang et al. 2003).
	f := func(seed uint64) bool {
		pts := randomPoints(seed, 100)
		ud := UnitDisk(pts, 250)
		if !ud.Connected() {
			return true
		}
		return YaoGraph(pts, 250, 6).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestYaoDegreeBound(t *testing.T) {
	// Each node selects at most k outgoing neighbors, so the undirected
	// Yao closure has average degree <= 2k.
	pts := randomPoints(9, 100)
	k := 6
	g := YaoGraph(pts, 250, k)
	if g.M() > k*len(pts) {
		t.Errorf("Yao edges = %d exceeds k*n = %d", g.M(), k*len(pts))
	}
}

func TestYaoExample(t *testing.T) {
	// Apex with two points in the same cone keeps only the nearer one.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(20, 2)}
	g := YaoGraph(pts, 100, 6)
	if !g.HasEdge(0, 1) {
		t.Error("nearest in cone must be kept")
	}
	// (0,2) may only exist if 2 selected 0; 2's cone toward 0 also
	// contains 1 which is nearer, so no (0,2) edge.
	if g.HasEdge(0, 2) {
		t.Error("farther same-cone neighbor must not be selected")
	}
}

func TestEuclideanMSTIsSpanningAndMinimal(t *testing.T) {
	pts := randomPoints(3, 60)
	edges := EuclideanMST(pts)
	if len(edges) != len(pts)-1 {
		t.Fatalf("MST edges = %d, want %d", len(edges), len(pts)-1)
	}
	uf := NewUnionFind(len(pts))
	for _, e := range edges {
		uf.Union(e.U, e.V)
	}
	if uf.Sets() != 1 {
		t.Error("MST does not span")
	}
	// Cut property spot check: every MST edge is the lightest across
	// the cut it defines when removed.
	total := weightSum(edges)
	for _, cut := range edges[:5] {
		uf := NewUnionFind(len(pts))
		for _, e := range edges {
			if e != cut {
				uf.Union(e.U, e.V)
			}
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if !uf.Same(i, j) && pts[i].Dist(pts[j]) < cut.W-1e-9 {
					t.Fatalf("edge (%d,%d) lighter than MST edge across cut", i, j)
				}
			}
		}
	}
	_ = total
}

func TestEuclideanMSTEmpty(t *testing.T) {
	if got := EuclideanMST(nil); got != nil {
		t.Errorf("empty MST = %v", got)
	}
}

func TestMSTSubsetOfRNGRestrictedRange(t *testing.T) {
	// With range restriction the EMST may not be realizable, but whenever
	// the unit-disk graph is connected, the MST of the unit-disk graph
	// equals the EMST (geometric fact: EMST edges are the shortest
	// possible, all <= the connectivity radius... verify directly).
	pts := randomPoints(5, 100)
	ud := UnitDisk(pts, 250)
	if !ud.Connected() {
		t.Skip("instance not connected")
	}
	udMST, spanning := PrimMST(ud)
	if !spanning {
		t.Fatal("unit-disk MST must span when graph connected")
	}
	em := EuclideanMST(pts)
	if weightSum(udMST)-weightSum(em) > 1e-6 {
		t.Errorf("unit-disk MST weight %v > EMST weight %v", weightSum(udMST), weightSum(em))
	}
}

func BenchmarkRNGGraph100(b *testing.B) {
	pts := randomPoints(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RNGGraph(pts, 250)
	}
}

func BenchmarkUnitDisk100(b *testing.B) {
	pts := randomPoints(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnitDisk(pts, 250)
	}
}

// TestGabrielPlanarity: the Gabriel graph (and hence RNG ⊆ GG) is planar
// in the geometric sense — no two edges cross except at shared endpoints.
// Face routing's delivery guarantee rests on this.
func TestGabrielPlanarity(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		pts := randomPoints(seed*317+3, 70)
		g := GabrielGraph(pts, 250)
		es := g.Edges()
		for i := range es {
			for j := i + 1; j < len(es); j++ {
				a, b := es[i], es[j]
				if a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V {
					continue // shared endpoint
				}
				if _, crosses := geom.SegmentIntersection(
					pts[a.U], pts[a.V], pts[b.U], pts[b.V]); crosses {
					t.Fatalf("seed %d: GG edges (%d,%d) and (%d,%d) cross",
						seed, a.U, a.V, b.U, b.V)
				}
			}
		}
	}
}
