package graph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

func TestAddEdgeAndAccessors(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 1.5)
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if w, ok := g.Weight(1, 2); !ok || w != 1.5 {
		t.Errorf("Weight(1,2) = %v, %v", w, ok)
	}
	if _, ok := g.Weight(0, 3); ok {
		t.Error("Weight of absent edge reported ok")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	want := []Edge{{0, 1, 2.5}, {1, 2, 1.5}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestAddEdgeDuplicateKeepsMin(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 0, 3)
	g.AddEdge(0, 1, 7)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w, _ := g.Weight(0, 1); w != 3 {
		t.Errorf("Weight = %v, want 3 (min)", w)
	}
	if w, _ := g.Weight(1, 0); w != 3 {
		t.Errorf("reverse Weight = %v, want 3", w)
	}
}

func TestAddEdgePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop":    func() { NewUndirected(2).AddEdge(1, 1, 1) },
		"out-of-range": func() { NewUndirected(2).AddEdge(0, 2, 1) },
		"negative-n":   func() { NewUndirected(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestComponentsAndConnected(t *testing.T) {
	g := NewUndirected(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp := g.Components()
	want := []int{0, 0, 0, 1, 1, 2}
	if !reflect.DeepEqual(comp, want) {
		t.Errorf("Components = %v, want %v", comp, want)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !NewUndirected(0).Connected() || !NewUndirected(1).Connected() {
		t.Error("trivial graphs must be connected")
	}
}

func TestPairConnectivity(t *testing.T) {
	g := NewUndirected(4) // components {0,1,2}, {3}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	// connected pairs: 3 of 6
	if got := g.PairConnectivity(); got != 0.5 {
		t.Errorf("PairConnectivity = %v, want 0.5", got)
	}
	full := NewUndirected(3)
	full.AddEdge(0, 1, 1)
	full.AddEdge(1, 2, 1)
	if got := full.PairConnectivity(); got != 1 {
		t.Errorf("connected PairConnectivity = %v, want 1", got)
	}
	if got := NewUndirected(1).PairConnectivity(); got != 1 {
		t.Errorf("singleton PairConnectivity = %v, want 1", got)
	}
}

func TestDirectedReachability(t *testing.T) {
	d := NewDirected(4)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(3, 0)
	if d.N() != 4 || d.M() != 3 {
		t.Fatalf("N=%d M=%d", d.N(), d.M())
	}
	if got := d.CountReachableFrom(0); got != 3 {
		t.Errorf("reach from 0 = %d, want 3", got)
	}
	if got := d.CountReachableFrom(3); got != 4 {
		t.Errorf("reach from 3 = %d, want 4", got)
	}
	if got := d.CountReachableFrom(2); got != 1 {
		t.Errorf("reach from 2 = %d, want 1", got)
	}
	// avg over sources of (reach-1)/3: (2 + 1 + 0 + 3)/3/4 = 0.5
	if got := d.AvgReachability(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AvgReachability = %v, want 0.5", got)
	}
	if got := NewDirected(1).AvgReachability(); got != 1 {
		t.Errorf("singleton AvgReachability = %v, want 1", got)
	}
}

func TestDirectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDirected(2).AddArc(0, 5)
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions must return true")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union returned true")
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", uf.Sets())
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Error("Same wrong")
	}
	uf.Union(1, 3)
	if !uf.Same(0, 2) {
		t.Error("transitive union failed")
	}
}

func TestUnionFindMatchesComponents(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(60)
		g := NewUndirected(n)
		uf := NewUnionFind(n)
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(u, v, 1)
			uf.Union(u, v)
		}
		comp := g.Components()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (comp[i] == comp[j]) != uf.Same(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrimMSTPath(t *testing.T) {
	// Triangle with weights 1, 2, 3: MST drops the 3-edge.
	g := NewUndirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	edges, spanning := PrimMST(g)
	if !spanning {
		t.Fatal("triangle MST should span")
	}
	want := []Edge{{0, 1, 1}, {1, 2, 2}}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("MST = %v, want %v", edges, want)
	}
}

func TestPrimMSTForest(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	edges, spanning := PrimMST(g)
	if spanning {
		t.Error("forest reported spanning")
	}
	if len(edges) != 2 {
		t.Errorf("forest edges = %v", edges)
	}
	if _, ok := PrimMST(NewUndirected(0)); !ok {
		t.Error("empty graph should be trivially spanning")
	}
}

func TestPrimMSTWeightOptimal(t *testing.T) {
	// Compare total weight with brute-force over all spanning trees on
	// small random graphs (n <= 6 via Kruskal-verified optimum).
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(5)
		g := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.8 {
					g.AddEdge(i, j, rng.Uniform(1, 100))
				}
			}
		}
		prim, primSpan := PrimMST(g)
		kru, kruSpan := kruskal(g)
		if primSpan != kruSpan {
			return false
		}
		return math.Abs(weightSum(prim)-weightSum(kru)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// kruskal is an independent MST implementation for differential testing.
func kruskal(g *Undirected) ([]Edge, bool) {
	es := g.Edges()
	// simple selection sort by weight then pair
	for i := range es {
		min := i
		for j := i + 1; j < len(es); j++ {
			if less(es[j].W, es[j].U, es[j].V, es[min].W, es[min].U, es[min].V) {
				min = j
			}
		}
		es[i], es[min] = es[min], es[i]
	}
	uf := NewUnionFind(g.N())
	var out []Edge
	for _, e := range es {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out, uf.Sets() <= 1
}

func weightSum(es []Edge) float64 {
	s := 0.0
	for _, e := range es {
		s += e.W
	}
	return s
}

func TestDijkstra(t *testing.T) {
	g := NewUndirected(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 2)
	dist, pred := Dijkstra(g, 0)
	wantDist := []float64{0, 1, 2, 4, math.Inf(1)}
	for i := range wantDist {
		if dist[i] != wantDist[i] {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], wantDist[i])
		}
	}
	if pred[0] != -1 || pred[1] != 0 || pred[2] != 1 || pred[3] != 2 || pred[4] != -1 {
		t.Errorf("pred = %v", pred)
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		g := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j, rng.Uniform(0.1, 50))
				}
			}
		}
		dist, _ := Dijkstra(g, 0)
		want := bellmanFord(g, 0)
		for i := range dist {
			di, wi := dist[i], want[i]
			if math.IsInf(di, 1) != math.IsInf(wi, 1) {
				return false
			}
			if !math.IsInf(di, 1) && math.Abs(di-wi) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func bellmanFord(g *Undirected, src int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for it := 0; it < n; it++ {
		for u := 0; u < n; u++ {
			for _, h := range g.Neighbors(u) {
				if nd := dist[u] + h.W; nd < dist[h.To] {
					dist[h.To] = nd
				}
			}
		}
	}
	return dist
}

func BenchmarkPrimMST100(b *testing.B) {
	rng := xrand.New(1)
	pts := mobility.UniformPoints(geom.Square(900), 100, rng)
	g := UnitDisk(pts, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrimMST(g)
	}
}

func BenchmarkDijkstra100(b *testing.B) {
	rng := xrand.New(1)
	pts := mobility.UniformPoints(geom.Square(900), 100, rng)
	g := UnitDisk(pts, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, i%100)
	}
}
