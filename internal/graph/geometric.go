package graph

import (
	"mstc/internal/geom"
)

// Geometric constructions over a point set. These are the *centralized*
// (omniscient) versions used as ground truth: on a static network a correct
// localized protocol must select exactly these edges (RNG, Gabriel) or a
// superset with identical connectivity (LMST vs. the Euclidean MST).

// UnitDisk returns the unit-disk graph: an edge between every pair of points
// at distance <= r, weighted by Euclidean distance. This models the original
// topology under the normal transmission range.
func UnitDisk(pts []geom.Point, r float64) *Undirected {
	g := NewUndirected(len(pts))
	r2 := r * r
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d2 := pts[i].Dist2(pts[j]); d2 <= r2 {
				g.AddEdge(i, j, pts[i].Dist(pts[j]))
			}
		}
	}
	return g
}

// RNGGraph returns the relative neighborhood graph restricted to pairs at
// distance <= maxRange: edge (u, v) survives unless some witness w has
// d(u, w) < d(u, v) and d(v, w) < d(u, v) (Toussaint 1980).
func RNGGraph(pts []geom.Point, maxRange float64) *Undirected {
	g := NewUndirected(len(pts))
	r2 := maxRange * maxRange
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) > r2 {
				continue
			}
			if !hasLuneWitness(pts, i, j) {
				g.AddEdge(i, j, pts[i].Dist(pts[j]))
			}
		}
	}
	return g
}

func hasLuneWitness(pts []geom.Point, i, j int) bool {
	for w := range pts {
		if w == i || w == j {
			continue
		}
		if geom.InLune(pts[w], pts[i], pts[j]) {
			return true
		}
	}
	return false
}

// GabrielGraph returns the Gabriel graph restricted to pairs at distance
// <= maxRange: edge (u, v) survives unless some witness lies strictly inside
// the disk with diameter uv (Gabriel & Sokal 1969).
func GabrielGraph(pts []geom.Point, maxRange float64) *Undirected {
	g := NewUndirected(len(pts))
	r2 := maxRange * maxRange
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) > r2 {
				continue
			}
			witness := false
			for w := range pts {
				if w != i && w != j && geom.InGabrielDisk(pts[w], pts[i], pts[j]) {
					witness = true
					break
				}
			}
			if !witness {
				g.AddEdge(i, j, pts[i].Dist(pts[j]))
			}
		}
	}
	return g
}

// YaoGraph returns the undirected closure of the Yao graph with k cones
// restricted to range maxRange: each node keeps, per cone, its nearest
// in-range neighbor (ties toward the smaller id); the union of directed
// selections is returned as an undirected graph. Connected for k >= 6.
func YaoGraph(pts []geom.Point, maxRange float64, k int) *Undirected {
	g := NewUndirected(len(pts))
	r2 := maxRange * maxRange
	best := make([]int, k)
	for u := range pts {
		for c := range best {
			best[c] = -1
		}
		for v := range pts {
			if v == u {
				continue
			}
			d2 := pts[u].Dist2(pts[v])
			if d2 > r2 {
				continue
			}
			c := geom.ConeIndex(pts[u], pts[v], k)
			if best[c] == -1 {
				best[c] = v
				continue
			}
			bd2 := pts[u].Dist2(pts[best[c]])
			if d2 < bd2 || (d2 == bd2 && v < best[c]) { //lint:ignore float-eq exact tie-break selects the lowest-id neighbor deterministically
				best[c] = v
			}
		}
		for _, v := range best {
			if v != -1 {
				g.AddEdge(u, v, pts[u].Dist(pts[v]))
			}
		}
	}
	return g
}

// EuclideanMST returns the minimum spanning forest of the complete Euclidean
// graph over pts (Prim on the implicit dense graph, O(n²)).
func EuclideanMST(pts []geom.Point) []Edge {
	n := len(pts)
	if n == 0 {
		return nil
	}
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, pts[i].Dist(pts[j]))
		}
	}
	edges, _ := PrimMST(g)
	return edges
}
