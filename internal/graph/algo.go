package graph

import (
	"container/heap"
	"math"
)

// PrimMST computes a minimum spanning forest of g with Prim's algorithm
// restarted per component. It returns the forest edges (sorted by (U, V))
// and whether the forest spans a single component (a true spanning tree).
// Ties in edge weight are broken deterministically toward the smaller
// (node, neighbor) pair, matching the total-order assumption of the paper's
// framework (§3.1: unique costs, IDs break ties).
func PrimMST(g *Undirected) (edges []Edge, spanning bool) {
	n := g.N()
	if n == 0 {
		return nil, true
	}
	const unvisited = -1
	bestW := make([]float64, n)
	bestFrom := make([]int, n)
	inTree := make([]bool, n)
	for i := range bestW {
		bestW[i] = math.Inf(1)
		bestFrom[i] = unvisited
	}
	pq := &keyHeap{}
	trees := 0
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		trees++
		bestW[start] = 0
		heap.Push(pq, keyItem{node: start, key: 0, from: unvisited})
		for pq.Len() > 0 {
			it := heap.Pop(pq).(keyItem)
			u := it.node
			if inTree[u] {
				continue
			}
			inTree[u] = true
			if it.from != unvisited {
				edges = append(edges, Edge{U: it.from, V: u, W: it.key}.Canon())
			}
			for _, h := range g.Neighbors(u) {
				if !inTree[h.To] && less(h.W, u, h.To, bestW[h.To], bestFrom[h.To], h.To) {
					bestW[h.To] = h.W
					bestFrom[h.To] = u
					heap.Push(pq, keyItem{node: h.To, key: h.W, from: u})
				}
			}
		}
	}
	sortEdges(edges)
	return edges, trees <= 1
}

// less orders candidate tree edges: primarily by weight, then by the
// canonical endpoint pair, giving a strict total order even with equal
// weights.
func less(w1 float64, a1, b1 int, w2 float64, a2, b2 int) bool {
	if w1 != w2 { //lint:ignore float-eq exact compare is the documented strict total order over edge weights
		return w1 < w2
	}
	if a1 > b1 {
		a1, b1 = b1, a1
	}
	if a2 > b2 {
		a2, b2 = b2, a2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ { // insertion sort: lists are small and nearly sorted
		for j := i; j > 0 && (es[j].U < es[j-1].U || (es[j].U == es[j-1].U && es[j].V < es[j-1].V)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

type keyItem struct {
	node int
	key  float64
	from int
}

type keyHeap []keyItem

func (h keyHeap) Len() int { return len(h) }
func (h keyHeap) Less(i, j int) bool {
	if h[i].key != h[j].key { //lint:ignore float-eq exact compare keeps the heap's total order deterministic
		return h[i].key < h[j].key
	}
	return h[i].node < h[j].node
}
func (h keyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x any)   { *h = append(*h, x.(keyItem)) }
func (h *keyHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Dijkstra returns shortest-path distances from src over non-negative edge
// weights, and the predecessor of each node on its shortest path (-1 for
// src and unreachable nodes). Ties break toward smaller predecessor ids.
func Dijkstra(g *Undirected, src int) (dist []float64, pred []int) {
	n := g.N()
	dist = make([]float64, n)
	pred = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		pred[i] = -1
	}
	dist[src] = 0
	pq := &keyHeap{{node: src, key: 0, from: -1}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(keyItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, h := range g.Neighbors(u) {
			nd := dist[u] + h.W
			if nd < dist[h.To] || (nd == dist[h.To] && !done[h.To] && (pred[h.To] == -1 || u < pred[h.To])) { //lint:ignore float-eq exact tie-break selects the lowest-id predecessor deterministically
				dist[h.To] = nd
				pred[h.To] = u
				heap.Push(pq, keyItem{node: h.To, key: nd, from: u})
			}
		}
	}
	return dist, pred
}
