package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"mstc/internal/xrand"
)

func pathGraph(n int) *Undirected {
	g := NewUndirected(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 1)
	}
	return g
}

func cycleGraph(n int) *Undirected {
	g := pathGraph(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

func completeGraph(n int) *Undirected {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestArticulationPointsPath(t *testing.T) {
	g := pathGraph(5)
	got := g.ArticulationPoints()
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("path articulation points = %v, want %v", got, want)
	}
}

func TestArticulationPointsCycleAndComplete(t *testing.T) {
	if got := cycleGraph(6).ArticulationPoints(); len(got) != 0 {
		t.Errorf("cycle has articulation points %v", got)
	}
	if got := completeGraph(5).ArticulationPoints(); len(got) != 0 {
		t.Errorf("complete graph has articulation points %v", got)
	}
}

func TestArticulationPointsBridgeOfTwoTriangles(t *testing.T) {
	// Two triangles sharing vertex 2: vertex 2 is the unique cut vertex.
	g := NewUndirected(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(2, 4, 1)
	got := g.ArticulationPoints()
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("articulation points = %v, want [2]", got)
	}
}

func TestArticulationMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 3 + rng.Intn(20)
		g := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(i, j, 1)
				}
			}
		}
		fast := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			fast[v] = true
		}
		baseComponents := components(g, -1)
		for v := 0; v < n; v++ {
			// v is a cut vertex iff removing it increases the component
			// count among the remaining nodes.
			if (components(g, v) > baseComponents) != fast[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// components counts connected components of g with node `skip` removed
// (skip = -1 keeps all), counting only non-skipped nodes.
func components(g *Undirected, skip int) int {
	n := g.N()
	seen := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if s == skip || seen[s] {
			continue
		}
		count++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(u) {
				if h.To != skip && !seen[h.To] {
					seen[h.To] = true
					stack = append(stack, h.To)
				}
			}
		}
	}
	return count
}

func TestIsBiconnected(t *testing.T) {
	if pathGraph(5).IsBiconnected() {
		t.Error("path is not biconnected")
	}
	if !cycleGraph(5).IsBiconnected() {
		t.Error("cycle is biconnected")
	}
	if NewUndirected(2).IsBiconnected() {
		t.Error("2 nodes cannot be biconnected")
	}
	disc := NewUndirected(4)
	disc.AddEdge(0, 1, 1)
	disc.AddEdge(2, 3, 1)
	if disc.IsBiconnected() {
		t.Error("disconnected graph is not biconnected")
	}
}

func TestIsKConnected(t *testing.T) {
	k4 := completeGraph(4)
	for k := 1; k <= 3; k++ {
		if !k4.IsKConnected(k) {
			t.Errorf("K4 should be %d-connected", k)
		}
	}
	if k4.IsKConnected(4) {
		t.Error("K4 is not 4-connected (needs > k nodes)")
	}
	cyc := cycleGraph(6)
	if !cyc.IsKConnected(2) || cyc.IsKConnected(3) {
		t.Error("cycle is exactly 2-connected")
	}
	p := pathGraph(4)
	if !p.IsKConnected(1) || p.IsKConnected(2) {
		t.Error("path is exactly 1-connected")
	}
}

func TestIsKConnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUndirected(3).IsKConnected(0)
}

func TestKConnectivityMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.Intn(12)
		g := NewUndirected(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j, 1)
				}
			}
		}
		// k-connected implies (k-1)-connected.
		for k := 3; k >= 2; k-- {
			if g.IsKConnected(k) && !g.IsKConnected(k-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
