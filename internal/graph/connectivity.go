package graph

// Vertex-connectivity utilities supporting the fault-tolerance results
// discussed in §2.2: Bahramgiri et al. extend CBTC to k-connectivity with
// cone angle 2π/3k; these checks verify such claims on concrete instances.

// ArticulationPoints returns the cut vertices of g (nodes whose removal
// increases the number of components), in ascending order, via Tarjan's
// low-link algorithm (iterative).
func (g *Undirected) ArticulationPoints() []int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	type frame struct {
		u, idx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		rootChildren := 0
		stack := []frame{{u: start}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.u
			if f.idx < len(g.adj[u]) {
				v := g.adj[u][f.idx].To
				f.idx++
				switch {
				case disc[v] == -1:
					parent[v] = u
					if u == start {
						rootChildren++
					}
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{u: v})
				case v != parent[u]:
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[u]; p != -1 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if p != start && low[u] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isCut[start] = true
		}
	}
	var out []int
	for v, c := range isCut {
		if c {
			out = append(out, v)
		}
	}
	return out
}

// IsBiconnected reports whether g is connected, has at least 3 nodes, and
// has no articulation point.
func (g *Undirected) IsBiconnected() bool {
	if g.N() < 3 || !g.Connected() {
		return false
	}
	return len(g.ArticulationPoints()) == 0
}

// IsKConnected reports whether g is k-vertex-connected: it has more than k
// nodes and stays connected after removing any k-1 of them. k = 1 is plain
// connectivity; k = 2 uses articulation points; larger k enumerates
// (k-1)-subsets, exponential in k — intended for small k on simulation-
// sized graphs.
func (g *Undirected) IsKConnected(k int) bool {
	switch {
	case k < 1:
		panic("graph: IsKConnected with k < 1")
	case g.N() <= k:
		return false
	case k == 1:
		return g.Connected()
	case k == 2:
		return g.IsBiconnected()
	}
	removed := make([]bool, g.N())
	return g.connectedWithout(removed, k-1, 0)
}

// connectedWithout recursively chooses `left` more nodes (ids >= from) to
// remove and checks connectivity of every resulting graph.
func (g *Undirected) connectedWithout(removed []bool, left, from int) bool {
	if left == 0 {
		return g.connectedExcluding(removed)
	}
	for v := from; v <= g.N()-left; v++ {
		removed[v] = true
		if !g.connectedWithout(removed, left-1, v+1) {
			removed[v] = false
			return false
		}
		removed[v] = false
	}
	return true
}

// connectedExcluding reports whether the graph induced by the non-removed
// nodes is connected (true when fewer than 2 nodes remain).
func (g *Undirected) connectedExcluding(removed []bool) bool {
	n := g.N()
	start := -1
	remaining := 0
	for v := 0; v < n; v++ {
		if !removed[v] {
			remaining++
			if start == -1 {
				start = v
			}
		}
	}
	if remaining <= 1 {
		return true
	}
	seen := make([]bool, n)
	seen[start] = true
	stack := []int{start}
	visited := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !removed[h.To] && !seen[h.To] {
				seen[h.To] = true
				visited++
				stack = append(stack, h.To)
			}
		}
	}
	return visited == remaining
}
