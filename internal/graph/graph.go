// Package graph provides the graph machinery behind the topology-control
// framework: weighted undirected graphs, directed reachability, union-find,
// Prim's MST, Dijkstra's SPT, and connectivity statistics.
//
// The geometric constructions (unit-disk, RNG, Gabriel, Yao, Euclidean MST)
// in geometric.go serve as omniscient ground truth: the localized protocol
// implementations in package topology are differentially tested against
// them on static networks, where localized and centralized constructions
// must agree.
package graph

import (
	"fmt"
	"sort"
)

// Half is the half-edge (v, w) stored in adjacency lists.
type Half struct {
	To int
	W  float64
}

// Edge is a full undirected edge with endpoints U < V by convention.
type Edge struct {
	U, V int
	W    float64
}

// Canon returns e with endpoints ordered U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Undirected is a weighted undirected multigraph-free graph on nodes
// 0..n-1. AddEdge on an existing pair keeps the smaller weight.
type Undirected struct {
	n    int
	adj  [][]Half
	m    int
	seen map[[2]int]int // pair -> index hint into adj lists; nil until first AddEdge
}

// NewUndirected returns an empty graph with n nodes.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Undirected{n: n, adj: make([][]Half, n)}
}

// N returns the node count.
func (g *Undirected) N() int { return g.n }

// M returns the edge count.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts the undirected edge (u, v) with weight w. Self-loops are
// rejected; duplicate pairs keep the minimum weight.
func (g *Undirected) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d, %d) out of range [0, %d)", u, v, g.n))
	}
	if g.seen == nil {
		g.seen = make(map[[2]int]int)
	}
	key := [2]int{u, v}
	if u > v {
		key = [2]int{v, u}
	}
	if _, ok := g.seen[key]; ok {
		// Keep the smaller weight on both half-edges.
		for i := range g.adj[u] {
			if g.adj[u][i].To == v && w < g.adj[u][i].W {
				g.adj[u][i].W = w
			}
		}
		for i := range g.adj[v] {
			if g.adj[v][i].To == u && w < g.adj[v][i].W {
				g.adj[v][i].W = w
			}
		}
		return
	}
	g.seen[key] = g.m
	g.adj[u] = append(g.adj[u], Half{To: v, W: w})
	g.adj[v] = append(g.adj[v], Half{To: u, W: w})
	g.m++
}

// HasEdge reports whether the pair (u, v) is present.
func (g *Undirected) HasEdge(u, v int) bool {
	if g.seen == nil {
		return false
	}
	key := [2]int{u, v}
	if u > v {
		key = [2]int{v, u}
	}
	_, ok := g.seen[key]
	return ok
}

// Weight returns the weight of edge (u, v) and whether it exists.
func (g *Undirected) Weight(u, v int) (float64, bool) {
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.W, true
		}
	}
	return 0, false
}

// Neighbors returns the adjacency list of u. The returned slice is shared;
// callers must not mutate it.
func (g *Undirected) Neighbors(u int) []Half { return g.adj[u] }

// Degree returns the degree of node u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// Edges returns all edges with U < V, sorted by (U, V) for determinism.
func (g *Undirected) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				es = append(es, Edge{U: u, V: h.To, W: h.W})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Components labels every node with a component id in [0, #components) and
// returns the labels. Ids are assigned in order of the smallest node in
// each component, so labeling is deterministic.
func (g *Undirected) Components() []int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.adj[u] {
				if comp[h.To] == -1 {
					comp[h.To] = next
					stack = append(stack, h.To)
				}
			}
		}
		next++
	}
	return comp
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Undirected) Connected() bool {
	if g.n <= 1 {
		return true
	}
	comp := g.Components()
	for _, c := range comp {
		if c != 0 {
			return false
		}
	}
	return true
}

// PairConnectivity returns the fraction of unordered node pairs that are in
// the same component — the paper's "connectivity ratio" under strict
// (snapshot) connectivity. It is 1 for n <= 1.
func (g *Undirected) PairConnectivity() float64 {
	if g.n <= 1 {
		return 1
	}
	comp := g.Components()
	sizes := map[int]int{}
	for _, c := range comp {
		sizes[c]++
	}
	pairs := 0
	//lint:order-independent
	for _, s := range sizes {
		pairs += s * (s - 1) / 2
	}
	total := g.n * (g.n - 1) / 2
	return float64(pairs) / float64(total)
}

// Directed is an unweighted directed graph on nodes 0..n-1, used to model
// effective topologies with unidirectional links.
type Directed struct {
	n   int
	adj [][]int32
	m   int
}

// NewDirected returns an empty directed graph with n nodes.
func NewDirected(n int) *Directed {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Directed{n: n, adj: make([][]int32, n)}
}

// N returns the node count.
func (d *Directed) N() int { return d.n }

// M returns the arc count (duplicates included as inserted).
func (d *Directed) M() int { return d.m }

// AddArc inserts the arc u -> v.
func (d *Directed) AddArc(u, v int) {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("graph: arc (%d, %d) out of range [0, %d)", u, v, d.n))
	}
	d.adj[u] = append(d.adj[u], int32(v))
	d.m++
}

// Out returns the out-neighbors of u (shared slice; do not mutate).
func (d *Directed) Out(u int) []int32 { return d.adj[u] }

// ReachableFrom marks every node reachable from src (src included) and
// returns the marks.
func (d *Directed) ReachableFrom(src int) []bool {
	seen := make([]bool, d.n)
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range d.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, int(v))
			}
		}
	}
	return seen
}

// CountReachableFrom returns the number of nodes reachable from src,
// including src itself.
func (d *Directed) CountReachableFrom(src int) int {
	seen := d.ReachableFrom(src)
	n := 0
	for _, s := range seen {
		if s {
			n++
		}
	}
	return n
}

// AvgReachability returns the average, over all sources, of the fraction of
// *other* nodes reachable from that source — the directed analogue of the
// connectivity ratio (what an ideal instantaneous flood would deliver).
func (d *Directed) AvgReachability() float64 {
	if d.n <= 1 {
		return 1
	}
	sum := 0.0
	for s := 0; s < d.n; s++ {
		sum += float64(d.CountReachableFrom(s)-1) / float64(d.n-1)
	}
	return sum / float64(d.n)
}

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != int32(x) {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = int(uf.parent[x])
	}
	return x
}

// Union merges the sets of x and y, returning true if they were distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }
