package snapshot

import (
	"math"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

const normalRange = 250.0

func connectedPoints(t *testing.T, seed uint64, n int) []geom.Point {
	t.Helper()
	for s := seed; ; s++ {
		pts := mobility.UniformPoints(arena, n, xrand.New(s))
		if Original(pts, normalRange).Connected() {
			return pts
		}
	}
}

func TestLogicalConnectedForAllProtocols(t *testing.T) {
	pts := connectedPoints(t, 1, 100)
	for _, p := range topology.Baselines(normalRange) {
		sel := Selections(pts, p, normalRange)
		lg := Logical(pts, sel)
		if !lg.Connected() {
			t.Errorf("%s logical topology disconnected on a connected instance", p.Name())
		}
		if lg.PairConnectivity() != 1 {
			t.Errorf("%s pair connectivity %v", p.Name(), lg.PairConnectivity())
		}
	}
}

func TestEffectiveEqualsLogicalWhenStatic(t *testing.T) {
	// §3.3: in static networks E'' = E' — each range covers its farthest
	// logical neighbor exactly.
	pts := connectedPoints(t, 3, 80)
	for _, p := range topology.Baselines(normalRange) {
		sel := Selections(pts, p, normalRange)
		lg := Logical(pts, sel)
		ranges := Ranges(pts, sel, 0, normalRange)
		eff := Effective(pts, lg, ranges)
		if eff.M() != lg.M() {
			t.Errorf("%s: effective %d edges != logical %d", p.Name(), eff.M(), lg.M())
		}
	}
}

func TestRangesCoverSelections(t *testing.T) {
	pts := connectedPoints(t, 5, 80)
	sel := Selections(pts, topology.RNG{}, normalRange)
	ranges := Ranges(pts, sel, 0, normalRange)
	for u, s := range sel {
		for _, v := range s {
			if pts[u].Dist(pts[v]) > ranges[u]+1e-9 {
				t.Fatalf("node %d range %v does not cover selected %d at %v",
					u, ranges[u], v, pts[u].Dist(pts[v]))
			}
		}
	}
	// Buffer adds exactly buffer (below the clamp).
	b := Ranges(pts, sel, 10, normalRange)
	for u := range pts {
		if ranges[u] > 0 && ranges[u]+10 <= normalRange {
			if math.Abs(b[u]-(ranges[u]+10)) > 1e-6 {
				t.Fatalf("buffered range %v != %v+10", b[u], ranges[u])
			}
		}
		if b[u] > normalRange {
			t.Fatalf("range %v exceeds normal range", b[u])
		}
	}
}

func TestEffectiveDropsOutOfRangeLinks(t *testing.T) {
	// Hand-built: 0-1 logical at distance 10, but node 1's range too
	// small (simulating stale info).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	lg := graph.NewUndirected(2)
	lg.AddEdge(0, 1, 10)
	eff := Effective(pts, lg, []float64{10, 9.99})
	if eff.M() != 0 {
		t.Error("one-sided coverage must not yield an effective link")
	}
	eff = Effective(pts, lg, []float64{10, 10})
	if eff.M() != 1 {
		t.Error("mutual coverage must yield an effective link")
	}
}

func TestEffectiveDirected(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(30, 0)}
	sel := [][]int{{1}, {0}, {1}} // 2 selected 1, but 1 did not select 2
	ranges := []float64{10, 10, 20}
	d := EffectiveDirected(pts, sel, ranges, false)
	// 0->1 (selected, in range), 1->0 (selected, in range), 2->1
	// (selected, in range 20). 1->2 absent (not selected).
	if got := d.M(); got != 3 {
		t.Fatalf("arcs = %d, want 3", got)
	}
	dPN := EffectiveDirected(pts, sel, ranges, true)
	// PN adds 1->2? distance 20 > range 10: no. Adds nothing here except
	// any in-range pair: 0->1, 1->0, 2->1 same.
	if got := dPN.M(); got != 3 {
		t.Fatalf("PN arcs = %d, want 3", got)
	}
	// Raise ranges: PN now accepts non-selected links.
	dPN = EffectiveDirected(pts, sel, []float64{30, 30, 30}, true)
	if got := dPN.M(); got != 6 {
		t.Fatalf("PN arcs with big ranges = %d, want 6", got)
	}
}

func TestSummarizeTable1Shape(t *testing.T) {
	// The Table 1 ordering must hold on ideal snapshots: MST smallest
	// range/degree, SPT-2 largest.
	pts := connectedPoints(t, 7, 100)
	sums := map[string]Summary{}
	for _, p := range topology.Baselines(normalRange) {
		sums[p.Name()] = Summarize(pts, p, 0, normalRange)
	}
	if !(sums["MST"].AvgRange < sums["RNG"].AvgRange && sums["RNG"].AvgRange < sums["SPT-2"].AvgRange) {
		t.Errorf("range ordering violated: MST=%.1f RNG=%.1f SPT-2=%.1f",
			sums["MST"].AvgRange, sums["RNG"].AvgRange, sums["SPT-2"].AvgRange)
	}
	if !(sums["MST"].AvgLogicalDegree < sums["SPT-2"].AvgLogicalDegree) {
		t.Errorf("degree ordering violated: MST=%.2f SPT-2=%.2f",
			sums["MST"].AvgLogicalDegree, sums["SPT-2"].AvgLogicalDegree)
	}
	for name, s := range sums {
		if !s.OriginalConnected {
			t.Fatalf("%s: original should be connected", name)
		}
		if s.LogicalConnectivity != 1 || s.EffectiveConnectivity != 1 {
			t.Errorf("%s: static connectivity should be 1 (logical %v, effective %v)",
				name, s.LogicalConnectivity, s.EffectiveConnectivity)
		}
		if s.AvgPhysicalDegree < s.AvgLogicalDegree-1e-9 {
			t.Errorf("%s: physical degree below logical", name)
		}
	}
	if s := Summarize(nil, topology.RNG{}, 0, normalRange); s.AvgRange != 0 {
		t.Error("empty summarize should be zero")
	}
}

// TestTheorem5Snapshot: buffered ranges sized by Theorem 5 cover any
// movement within the delay/speed budget — the effective topology computed
// against *moved* positions retains every logical link.
func TestTheorem5Snapshot(t *testing.T) {
	pts := connectedPoints(t, 11, 80)
	const maxDelay, maxSpeed = 2.5, 20.0
	l := topology.BufferWidth(maxDelay, maxSpeed)
	for _, p := range topology.Baselines(normalRange) {
		sel := Selections(pts, p, normalRange)
		lg := Logical(pts, sel)
		ranges := Ranges(pts, sel, l, 1e18 /* no clamp: pure theorem */)
		// Adversarially move every node up to maxDelay*maxSpeed.
		rng := xrand.New(99)
		moved := make([]geom.Point, len(pts))
		for i, q := range pts {
			moved[i] = q.Add(geom.Polar(rng.Uniform(0, maxDelay*maxSpeed), rng.Uniform(0, 2*math.Pi)))
		}
		eff := Effective(moved, lg, ranges)
		if eff.M() != lg.M() {
			t.Errorf("%s: theorem-5 buffer lost %d of %d logical links",
				p.Name(), lg.M()-eff.M(), lg.M())
		}
		if !eff.Connected() {
			t.Errorf("%s: effective topology disconnected despite theorem-5 buffer", p.Name())
		}
	}
}
