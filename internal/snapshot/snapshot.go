// Package snapshot provides the omniscient instrumentation the simulation
// study relies on: given true node positions at an instant ("via assuming an
// omniscient god", §5.1), it constructs the paper's three topologies —
// original, logical, effective — and summarizes their connectivity, degree,
// and range statistics.
//
// Package manet measures what the *protocol* achieves with stale, gossiped
// state; this package computes what a protocol *would* achieve with perfect
// consistent views, which is the reference point for Table 1 and for the
// Theorem 1/5 assertions in the test suite.
package snapshot

import (
	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/topology"
)

// Original returns the original topology: the unit-disk graph under the
// normal transmission range.
func Original(pts []geom.Point, normalRange float64) *graph.Undirected {
	return graph.UnitDisk(pts, normalRange)
}

// Selections runs the protocol at every node over perfectly consistent
// views (true positions) and returns each node's logical neighbor ids.
func Selections(pts []geom.Point, p topology.Protocol, normalRange float64) [][]int {
	sel := make([][]int, len(pts))
	for u := range pts {
		v := topology.View{Self: topology.NodeInfo{ID: u, Pos: pts[u]}}
		for w := range pts {
			if w != u && pts[u].Dist(pts[w]) <= normalRange {
				v.Neighbors = append(v.Neighbors, topology.NodeInfo{ID: w, Pos: pts[w]})
			}
		}
		sel[u] = p.Select(v.Canon())
	}
	return sel
}

// Logical returns the logical topology under the framework's semantics:
// a link survives iff neither endpoint removed it (both selected each
// other).
func Logical(pts []geom.Point, sel [][]int) *graph.Undirected {
	g := graph.NewUndirected(len(pts))
	for u, s := range sel {
		for _, v := range s {
			if v > u && intsContain(sel[v], u) {
				g.AddEdge(u, v, pts[u].Dist(pts[v]))
			}
		}
	}
	return g
}

// Ranges returns each node's extended transmission range: distance to its
// farthest selected neighbor plus the buffer width, clamped to normalRange.
func Ranges(pts []geom.Point, sel [][]int, buffer, normalRange float64) []float64 {
	r := make([]float64, len(pts))
	for u, s := range sel {
		actual := 0.0
		for _, v := range s {
			if d := pts[u].Dist(pts[v]); d > actual {
				actual = d
			}
		}
		r[u] = topology.ExtendedRange(actual, buffer, normalRange)
	}
	return r
}

// Effective returns the (bidirectional) effective topology of §3.3:
// a logical link (u, v) is effective iff both endpoints' transmission
// ranges cover the current distance.
func Effective(pts []geom.Point, logical *graph.Undirected, ranges []float64) *graph.Undirected {
	g := graph.NewUndirected(len(pts))
	for _, e := range logical.Edges() {
		d := pts[e.U].Dist(pts[e.V])
		if ranges[e.U] >= d && ranges[e.V] >= d {
			g.AddEdge(e.U, e.V, d)
		}
	}
	return g
}

// EffectiveDirected returns the directed effective topology the forwarding
// rule induces: arc u→v iff v is within u's range and v accepts packets
// from u (u selected v, or the physical-neighbor mechanism is on).
func EffectiveDirected(pts []geom.Point, sel [][]int, ranges []float64, physicalNeighbors bool) *graph.Directed {
	n := len(pts)
	d := graph.NewDirected(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v == u || pts[u].Dist(pts[v]) > ranges[u] {
				continue
			}
			if physicalNeighbors || intsContain(sel[u], v) {
				d.AddArc(u, v)
			}
		}
	}
	return d
}

// Summary collects the instant's statistics.
type Summary struct {
	// OriginalConnected reports whether the unit-disk graph is connected.
	OriginalConnected bool
	// LogicalConnectivity is the pair connectivity of the logical
	// topology.
	LogicalConnectivity float64
	// EffectiveConnectivity is the pair connectivity of the bidirectional
	// effective topology.
	EffectiveConnectivity float64
	// AvgRange is the mean extended transmission range.
	AvgRange float64
	// AvgLogicalDegree is the mean per-node selection size.
	AvgLogicalDegree float64
	// AvgPhysicalDegree is the mean number of nodes within a node's
	// extended range.
	AvgPhysicalDegree float64
}

// Summarize computes the full Summary for a protocol at one instant.
func Summarize(pts []geom.Point, p topology.Protocol, buffer, normalRange float64) Summary {
	sel := Selections(pts, p, normalRange)
	logical := Logical(pts, sel)
	ranges := Ranges(pts, sel, buffer, normalRange)
	eff := Effective(pts, logical, ranges)
	s := Summary{
		OriginalConnected:     Original(pts, normalRange).Connected(),
		LogicalConnectivity:   logical.PairConnectivity(),
		EffectiveConnectivity: eff.PairConnectivity(),
	}
	n := len(pts)
	if n == 0 {
		return s
	}
	for u := 0; u < n; u++ {
		s.AvgRange += ranges[u]
		s.AvgLogicalDegree += float64(len(sel[u]))
		for v := 0; v < n; v++ {
			if v != u && pts[u].Dist(pts[v]) <= ranges[u] {
				s.AvgPhysicalDegree++
			}
		}
	}
	s.AvgRange /= float64(n)
	s.AvgLogicalDegree /= float64(n)
	s.AvgPhysicalDegree /= float64(n)
	return s
}

func intsContain(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
