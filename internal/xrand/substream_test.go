package xrand

import (
	"fmt"
	"testing"
)

// prefix returns the first n draws of a source as a comparable string key.
func prefix(s *Source, n int) string {
	out := make([]byte, 0, n*17)
	for i := 0; i < n; i++ {
		out = fmt.Appendf(out, "%016x.", s.Uint64())
	}
	return string(out)
}

// TestSubstreamIndependence derives one substream per (run, node, purpose)
// label triple — the exact keying the experiment runner uses — and asserts
// that no two distinct triples produce the same draw sequence for the first
// N draws. A collision would silently correlate repetitions (or nodes) and
// invalidate the confidence intervals of every figure.
func TestSubstreamIndependence(t *testing.T) {
	const (
		runs  = 8
		nodes = 12
		draws = 32
	)
	purposes := []uint64{'m', 'n', 'u'} // mobility, network, unicast
	root := New(2004)
	seen := make(map[string]string, runs*nodes*len(purposes))
	for run := uint64(0); run < runs; run++ {
		for node := uint64(0); node < nodes; node++ {
			for _, purpose := range purposes {
				label := fmt.Sprintf("run=%d node=%d purpose=%c", run, node, purpose)
				key := prefix(root.Sub(purpose, run, node), draws)
				if prev, dup := seen[key]; dup {
					t.Fatalf("substream collision: %s and %s share the first %d draws", prev, label, draws)
				}
				seen[key] = label
			}
		}
	}
	// The root stream itself must not collide with any substream either.
	if prev, dup := seen[prefix(New(2004), draws)]; dup {
		t.Fatalf("root stream collides with substream %s", prev)
	}
}

// TestSubDerivationOrderIrrelevant asserts a substream's draws depend only
// on (root seed, labels) — never on when it was derived relative to parent
// draws or to sibling derivations. This is what lets worker-pool tasks
// derive their streams in any scheduling order and still replay
// bit-for-bit.
func TestSubDerivationOrderIrrelevant(t *testing.T) {
	const draws = 64
	want := prefix(New(7).Sub(1, 2, 3), draws)

	// Derive after the parent has drawn values.
	root := New(7)
	for i := 0; i < 1000; i++ {
		root.Uint64()
	}
	if got := prefix(root.Sub(1, 2, 3), draws); got != want {
		t.Error("derivation after parent draws changed the substream")
	}

	// Derive after (and interleaved with) sibling substreams.
	root = New(7)
	sibA := root.Sub(9)
	sibA.Uint64()
	sibB := root.Sub(1, 2, 4)
	got := root.Sub(1, 2, 3)
	sibB.Uint64()
	if prefix(got, draws) != want {
		t.Error("sibling derivations changed the substream")
	}
}

// TestSubLabelOrderMatters asserts Sub(a, b) and Sub(b, a) are distinct
// streams: labels are positional coordinates, not a set.
func TestSubLabelOrderMatters(t *testing.T) {
	const draws = 32
	root := New(11)
	if prefix(root.Sub(1, 2), draws) == prefix(root.Sub(2, 1), draws) {
		t.Error("Sub label order does not distinguish streams")
	}
	if prefix(root.Sub(1), draws) == prefix(root.Sub(1, 0), draws) {
		t.Error("Sub(1) and Sub(1, 0) must be distinct streams")
	}
}
