// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator for reproducible simulations.
//
// The core generator is PCG-XSH-RR with a 64-bit state and a 63-bit stream
// selector (O'Neill, 2014). On top of it, Source.Sub derives independent
// substreams from integer labels, so every (experiment run, node, purpose)
// triple gets its own stream: repetition i of an experiment draws exactly
// the same values whether runs execute sequentially or on a worker pool.
//
// The package deliberately mirrors a subset of math/rand's API so call sites
// stay idiomatic, but it never touches global state and is safe to seed
// deterministically in tests.
//
// # Labeling discipline
//
// The substream tree only stays collision-free if call sites follow three
// rules, which manetlint's substream analyzer enforces:
//
//   - Distinct derivation sites on one source must differ in a constant
//     label position (or in arity): Sub('m', x) and Sub('n', y) can never
//     collide, while two Sub('f', id) sites hand out the same stream
//     whenever the ids coincide.
//   - A source value belongs to one owner. Storing the same *Source into
//     two fields, closures, or goroutines interleaves their draws on one
//     stream; derive a fresh Sub per owner instead.
//   - A source that derives substreams is a parent: drawing raw values
//     from it too makes the parent's stream position hidden state that
//     shifts every later draw. Parents only derive; leaves only draw.
package xrand

import "math"

const (
	pcgMult = 6364136223846793005
	// splitmix64 constants, used for label mixing.
	smGamma = 0x9E3779B97F4A7C15
)

// Source is a deterministic PCG-32 random stream. The zero value is not
// valid; construct with New or Sub. Source is not safe for concurrent use;
// derive one substream per goroutine instead of sharing.
type Source struct {
	state uint64
	inc   uint64 // stream selector; always odd
	id    uint64 // construction identity, the root of Sub derivation
}

// New returns a Source seeded from seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0)
}

// NewStream returns a Source seeded from seed on the given stream. Distinct
// streams with the same seed are statistically independent.
func NewStream(seed, stream uint64) *Source {
	s := new(Source)
	*s = makeStream(seed, stream)
	return s
}

// makeStream is the by-value NewStream body, shared with Derive so the
// value and pointer construction paths cannot drift.
func makeStream(seed, stream uint64) Source {
	s := Source{
		inc: stream<<1 | 1,
		// The identity must incorporate *both* seed and stream so Sub
		// derivations differ whenever either does.
		id: mix64(seed) ^ mix64(stream+smGamma),
	}
	// Standard PCG initialization: advance once, add seed, advance again.
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// mix64 is the splitmix64 finalizer; it decorrelates substream labels.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Sub derives an independent substream identified by the given labels.
// The derivation is pure: it depends only on the receiver's construction
// parameters (seed and stream) and the labels — never on how many values
// the parent has drawn — and Sub does not advance the parent.
func (s *Source) Sub(labels ...uint64) *Source {
	sub := s.Derive(labels...)
	return &sub
}

// Derive is Sub by value: it returns exactly the substream Sub would for
// the same labels, but as a Source value, so hot paths can make keyed
// draws without a heap allocation — the returned value and the variadic
// label slice both stay on the caller's stack (Derive never retains
// labels). Because the derivation is pure and Derive does not advance the
// parent, concurrent Derive calls on one shared parent are safe as long
// as nothing draws from that parent. The labeling discipline enforced by
// manetlint's substream analyzer applies to Derive sites exactly as to
// Sub sites.
func (s *Source) Derive(labels ...uint64) Source {
	seed := mix64(s.id)
	stream := mix64(s.id + smGamma)
	for _, l := range labels {
		seed = mix64(seed + smGamma + l)
		stream = mix64(stream ^ (l + smGamma))
	}
	return makeStream(seed, stream)
}

// Uint32 returns a uniformly distributed 32-bit value and advances the state.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless rejection method keeps the result unbiased.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := s.Uint32()
		if r >= threshold {
			return int(r % bound)
		}
	}
}

// Uniform returns a uniformly distributed value in [lo, hi). It panics if
// hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Uniform with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), by inversion. Scale by 1/λ for other rates.
func (s *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], avoiding log(0).
	return -math.Log(1 - s.Float64())
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the supplied swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}
