package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 1), NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different streams produced %d/100 identical draws", same)
	}
}

func TestSubDeterministicAndPure(t *testing.T) {
	root := New(99)
	s1 := root.Sub(3, 14)
	s2 := root.Sub(3, 14)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("identical Sub labels must give identical streams")
		}
	}
	// Sub must not advance the parent.
	c1, c2 := New(99), New(99)
	c1.Sub(1, 2, 3)
	if c1.Uint64() != c2.Uint64() {
		t.Error("Sub advanced the parent stream")
	}
}

// TestSubDependsOnSeed is the regression test for the bug where Sub derived
// only from the stream selector: substreams of differently seeded parents
// were identical, silently collapsing every experiment repetition onto one
// trajectory.
func TestSubDependsOnSeed(t *testing.T) {
	a := New(1).Sub('w', 0)
	b := New(2).Sub('w', 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams of different seeds produced %d/100 identical draws", same)
	}
	// And on distinct streams of the same seed.
	c := NewStream(7, 1).Sub('x')
	d := NewStream(7, 2).Sub('x')
	same = 0
	for i := 0; i < 100; i++ {
		if c.Uint32() == d.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams of different streams produced %d/100 identical draws", same)
	}
}

func TestSubLabelsDistinguish(t *testing.T) {
	root := New(5)
	s1 := root.Sub(1)
	s2 := root.Sub(2)
	s3 := root.Sub(1, 0)
	same12, same13 := 0, 0
	for i := 0; i < 100; i++ {
		v1, v2, v3 := s1.Uint32(), s2.Uint32(), s3.Uint32()
		if v1 == v2 {
			same12++
		}
		if v1 == v3 {
			same13++
		}
	}
	if same12 > 2 || same13 > 2 {
		t.Errorf("label collisions: same12=%d same13=%d", same12, same13)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.05*draws/n {
			t.Errorf("bucket %d count %d deviates >5%% from %d", i, c, draws/n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniform(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(0.75, 1.25)
		if v < 0.75 || v >= 1.25 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if got := s.Uniform(3, 3); got != 3 {
		t.Errorf("degenerate Uniform = %v, want 3", got)
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uniform(hi<lo) should panic")
		}
	}()
	New(1).Uniform(2, 1)
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(29)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should appear roughly equally.
	s := New(31)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		a := [3]int{0, 1, 2}
		s.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d permutations, want 6", len(counts))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-draws/6.0) > 0.05*draws/6.0 {
			t.Errorf("permutation %v count %d deviates >5%% from %d", p, c, draws/6)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
