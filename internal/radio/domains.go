package radio

// Spatial domain decomposition for the region-parallel engine. The arena is
// cut into a g×g grid of rectangular domains; every node belongs to the
// domain containing its position at the start of a synchronization window,
// and a transmission is visible to a domain when the disc of radius
// r + guard around the sender's exact position intersects the domain's
// rectangle. The guard absorbs the only approximation in the scheme — a
// receiver is located where it was at window start, not where it is at the
// transmission instant — by the same bounded-displacement argument as the
// medium's staleness grid (and the paper's buffer zone, Theorem 5): within
// a window of length W every node drifts at most vmax·W from its assignment
// position, so with W = guard/(2·vmax) the drift is at most guard/2 and a
// disc of radius r + guard over window-start positions covers every true
// receiver. The bound is deliberately the conservative 2·vmax·W form the
// paper uses for relative motion, double what the one-sided drift needs.

import (
	"fmt"
	"math"

	"mstc/internal/geom"
)

// DomainGrid is the g×g decomposition of an arena into spatial domains.
// It is immutable after construction and therefore safe to share across
// worker goroutines.
type DomainGrid struct {
	arena  geom.Rect
	g      int
	cw, ch float64 // domain cell width/height
}

// NewDomainGrid decomposes the arena into side×side domains.
func NewDomainGrid(arena geom.Rect, side int) (*DomainGrid, error) {
	if side < 1 {
		return nil, fmt.Errorf("radio: domain grid side %d < 1", side)
	}
	if arena.Empty() || arena.Width() <= 0 || arena.Height() <= 0 {
		return nil, fmt.Errorf("radio: domain grid over degenerate arena %v", arena)
	}
	return &DomainGrid{
		arena: arena,
		g:     side,
		cw:    arena.Width() / float64(side),
		ch:    arena.Height() / float64(side),
	}, nil
}

// Side returns the grid side (domains per axis).
func (dg *DomainGrid) Side() int { return dg.g }

// Domains returns the total domain count, Side².
func (dg *DomainGrid) Domains() int { return dg.g * dg.g }

// Guard returns the guard distance of the decomposition: half the smaller
// domain-cell extent. It is the halo margin added to every transmission
// radius and the displacement budget that fixes the synchronization window.
func (dg *DomainGrid) Guard() float64 {
	return math.Min(dg.cw, dg.ch) / 2
}

// Window returns the conservative synchronization-window length for the
// given maximum node speed: guard/(2·vmax), the horizon within which
// window-start domain assignments plus the guard halo provably cover every
// receiver (see the file comment). A static scenario (vmax <= 0) has an
// unbounded window.
func (dg *DomainGrid) Window(vmax float64) float64 {
	if vmax <= 0 {
		return math.Inf(1)
	}
	return dg.Guard() / (2 * vmax)
}

// domainAt returns the domain index of position p, clamping out-of-arena
// positions to the boundary domains.
func (dg *DomainGrid) domainAt(p geom.Point) int {
	ix := dg.clampX(int((p.X - dg.arena.Min.X) / dg.cw))
	iy := dg.clampY(int((p.Y - dg.arena.Min.Y) / dg.ch))
	return iy*dg.g + ix
}

func (dg *DomainGrid) clampX(ix int) int {
	if ix < 0 {
		return 0
	}
	if ix >= dg.g {
		return dg.g - 1
	}
	return ix
}

func (dg *DomainGrid) clampY(iy int) int {
	if iy < 0 {
		return 0
	}
	if iy >= dg.g {
		return dg.g - 1
	}
	return iy
}

// AssignInto appends the domain index of every position in pos to dst and
// returns the extended slice — the window-start ownership assignment of
// the region-parallel engine.
//manet:noalloc
func (dg *DomainGrid) AssignInto(pos []geom.Point, dst []int) []int {
	for _, p := range pos {
		dst = append(dst, dg.domainAt(p))
	}
	return dst
}

// HaloBounds returns the inclusive domain-index bounding box [ix0, ix1] ×
// [iy0, iy1] of the disc of radius r around p: every domain whose
// rectangle intersects the disc lies inside the box. The box is a
// conservative superset (corner domains of the box may miss the disc);
// over-delivery is harmless — a domain that receives a transmission it has
// no receivers for does no work beyond scanning its owned nodes.
func (dg *DomainGrid) HaloBounds(p geom.Point, r float64) (ix0, iy0, ix1, iy1 int) {
	ix0 = dg.clampX(int(math.Floor((p.X - r - dg.arena.Min.X) / dg.cw)))
	ix1 = dg.clampX(int(math.Floor((p.X + r - dg.arena.Min.X) / dg.cw)))
	iy0 = dg.clampY(int(math.Floor((p.Y - r - dg.arena.Min.Y) / dg.ch)))
	iy1 = dg.clampY(int(math.Floor((p.Y + r - dg.arena.Min.Y) / dg.ch)))
	return ix0, iy0, ix1, iy1
}
