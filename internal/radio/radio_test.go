package radio

import (
	"reflect"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

func staticMedium(t *testing.T, pts []geom.Point, cfg Config) *Medium {
	t.Helper()
	m, err := NewMedium(mobility.NewStatic(arena, pts, 100), cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReceiversWithinRange(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(100, 100), geom.Pt(150, 100), geom.Pt(400, 100), geom.Pt(100, 140),
	}
	m := staticMedium(t, pts, Config{})
	got := m.ReceiversAt(0, 0, 60, nil)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Receivers = %v, want [1 3]", got)
	}
	// Exactly-on-boundary is received.
	got = m.ReceiversAt(0, 0, 50, nil)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("boundary Receivers = %v, want [1 3]", got)
	}
	// Zero or negative range: nobody.
	if got := m.ReceiversAt(0, 0, 0, nil); len(got) != 0 {
		t.Errorf("zero range receivers = %v", got)
	}
}

func TestReceiversExcludeSender(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 1)}
	m := staticMedium(t, pts, Config{})
	got := m.ReceiversAt(0, 1, 500, nil)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Receivers = %v, want [0]", got)
	}
}

func TestReceiversTrackMobility(t *testing.T) {
	// Node 1 moves away from node 0 over time.
	lo, hi := mobility.SpeedAround(20)
	model, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: 30, SpeedMin: lo, SpeedMax: hi, Horizon: 100,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(model, Config{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 17.3, 50, 99} {
		got := m.ReceiversAt(tt, 0, 250, nil)
		// Differential check against direct distance computation.
		var want []int
		p0 := model.PositionAt(0, tt)
		for id := 1; id < model.N(); id++ {
			if model.PositionAt(id, tt).Dist(p0) <= 250 {
				want = append(want, id)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("t=%v: receivers %v, want %v", tt, got, want)
		}
	}
}

func TestPositionsAtCaching(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	m := staticMedium(t, pts, Config{})
	a := m.PositionsAt(5)
	b := m.PositionsAt(5)
	if &a[0] != &b[0] {
		t.Error("same-instant queries should reuse the cache")
	}
	if a[0] != geom.Pt(1, 1) || a[1] != geom.Pt(2, 2) {
		t.Errorf("positions wrong: %v", a)
	}
	if m.PositionAt(1, 5) != geom.Pt(2, 2) {
		t.Error("PositionAt wrong")
	}
}

func TestLossRate(t *testing.T) {
	pts := make([]geom.Point, 101)
	for i := range pts {
		pts[i] = geom.Pt(float64(i%10), float64(i/10)) // all within range
	}
	m := staticMedium(t, pts, Config{LossRate: 0.3})
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += len(m.ReceiversAt(0, 0, 1000, nil))
	}
	mean := float64(total) / trials
	if mean < 0.6*100 || mean > 0.8*100 {
		t.Errorf("mean receivers %v with 30%% loss, want ~70", mean)
	}
}

func TestConfigValidation(t *testing.T) {
	model := mobility.NewStatic(arena, []geom.Point{geom.Pt(1, 1)}, 10)
	if _, err := NewMedium(model, Config{Delay: -1}, xrand.New(1)); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewMedium(model, Config{LossRate: 1}, xrand.New(1)); err == nil {
		t.Error("loss rate 1 accepted")
	}
	if _, err := NewMedium(model, Config{LossRate: -0.1}, xrand.New(1)); err == nil {
		t.Error("negative loss accepted")
	}
	m, err := NewMedium(model, Config{Delay: 0.001}, xrand.New(1))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if m.Delay() != 0.001 {
		t.Errorf("Delay = %v", m.Delay())
	}
	if m.N() != 1 {
		t.Errorf("N = %d", m.N())
	}
}

func BenchmarkReceiversAt(b *testing.B) {
	pts := mobility.UniformPoints(arena, 100, xrand.New(1))
	model := mobility.NewStatic(arena, pts, 1e9)
	m, err := NewMedium(model, Config{}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct times defeat the cache: worst case.
		buf = m.ReceiversAt(float64(i), i%100, 250, buf[:0])
	}
}
