package radio

import (
	"fmt"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

// newWaypointModel builds a fast random-waypoint model with per-leg speeds
// up to vmax (m/s), the stress axis of the staleness bound.
func newWaypointModel(t *testing.T, n int, vmax, horizon float64, seed uint64) mobility.Model {
	t.Helper()
	m, err := mobility.NewRandomWaypoint(geom.Square(900), mobility.WaypointConfig{
		N: n, SpeedMin: 1, SpeedMax: vmax, Horizon: horizon,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// bruteReceivers is the O(n) reference: every node other than sender whose
// exact position at t is within r, ascending by id.
func bruteReceivers(m mobility.Model, t float64, sender int, r float64) []int {
	p := m.PositionAt(sender, t)
	r2 := r * r
	var out []int
	for id := 0; id < m.N(); id++ {
		if id == sender {
			continue
		}
		if m.PositionAt(id, t).Dist2(p) <= r2 {
			out = append(out, id)
		}
	}
	return out
}

// TestReceiversAtMatchesBruteForce is the differential test for the
// bounded-staleness grid: across slack budgets (including the negative
// "exact-instant rebuild" reference) and speeds up to 160 m/s, ReceiversAt
// must return exactly the brute-force disc scan's receiver set at every
// query instant. Query times are drawn mostly increasing — the simulation's
// access pattern — with occasional repeats and backward jumps mixed in.
func TestReceiversAtMatchesBruteForce(t *testing.T) {
	const horizon = 30.0
	for _, vmax := range []float64{2, 40, 160} {
		for _, slack := range []float64{-1, 0, 10, 500} {
			name := fmt.Sprintf("vmax=%g/slack=%g", vmax, slack)
			t.Run(name, func(t *testing.T) {
				model := newWaypointModel(t, 60, vmax, horizon, 11)
				med, err := NewMedium(model, Config{Slack: slack}, xrand.New(1))
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(99)
				at := 0.0
				buf := make([]int, 0, 64)
				for q := 0; q < 400; q++ {
					switch rng.Intn(10) {
					case 0: // repeat the same instant
					case 1: // backward jump
						at = rng.Uniform(0, at)
					default:
						at += rng.Uniform(0, 0.2)
						if at > horizon {
							at = rng.Uniform(0, horizon)
						}
					}
					sender := rng.Intn(model.N())
					r := rng.Uniform(50, 300)
					buf = med.ReceiversAt(at, sender, r, buf[:0])
					want := bruteReceivers(model, at, sender, r)
					if len(buf) != len(want) {
						t.Fatalf("query %d (t=%v sender=%d r=%g): got %d receivers, want %d\n got %v\nwant %v",
							q, at, sender, r, len(buf), len(want), buf, want)
					}
					for i := range want {
						if buf[i] != want[i] {
							t.Fatalf("query %d (t=%v sender=%d r=%g): receivers[%d] = %d, want %d",
								q, at, sender, r, i, buf[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestReceiversAtLossIndependentOfSlack pins the subtler half of the
// determinism contract: with a loss process attached, the randomness is
// consumed per post-filter receiver in id order, so the surviving set is
// also independent of the slack budget (not just the pre-loss set).
func TestReceiversAtLossIndependentOfSlack(t *testing.T) {
	const horizon = 20.0
	model := newWaypointModel(t, 60, 80, horizon, 5)
	run := func(slack float64) [][]int {
		med, err := NewMedium(model, Config{Slack: slack, LossRate: 0.3}, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(42)
		at := 0.0
		var got [][]int
		for q := 0; q < 300; q++ {
			at += rng.Uniform(0, 0.1)
			out := med.ReceiversAt(at, rng.Intn(model.N()), rng.Uniform(100, 300), nil)
			got = append(got, out)
		}
		return got
	}
	want := run(-1) // exact-instant reference
	for _, slack := range []float64{0, 25, 400} {
		got := run(slack)
		for q := range want {
			if len(got[q]) != len(want[q]) {
				t.Fatalf("slack %g query %d: %v != reference %v", slack, q, got[q], want[q])
			}
			for i := range want[q] {
				if got[q][i] != want[q][i] {
					t.Fatalf("slack %g query %d: %v != reference %v", slack, q, got[q], want[q])
				}
			}
		}
	}
}
