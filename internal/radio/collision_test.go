package radio

import (
	"reflect"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

func collisionMedium(t *testing.T, pts []geom.Point, dur float64) *Medium {
	t.Helper()
	m, err := NewMedium(mobility.NewStatic(arena, pts, 100), Config{TxDuration: dur}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTransmitWithoutCollisionModel(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	m := collisionMedium(t, pts, 0)
	tx, rcv := m.Transmit(1, 0, 50, nil)
	if !reflect.DeepEqual(rcv, []int{1}) {
		t.Fatalf("receivers = %v", rcv)
	}
	if m.Collides(tx, 1) {
		t.Error("collision-free medium reported a collision")
	}
	if m.TxDuration() != 0 {
		t.Error("TxDuration != 0")
	}
}

func TestOverlappingTransmissionsJam(t *testing.T) {
	// 0 and 2 both within range of 1; they transmit overlapping in time:
	// 1 receives neither.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(80, 0)}
	m := collisionMedium(t, pts, 0.01)
	txA, rcvA := m.Transmit(1.000, 0, 50, nil)
	txB, rcvB := m.Transmit(1.005, 2, 50, nil)
	if !reflect.DeepEqual(rcvA, []int{1}) || !reflect.DeepEqual(rcvB, []int{1}) {
		t.Fatalf("receivers: %v, %v", rcvA, rcvB)
	}
	if !m.Collides(txA, 1) {
		t.Error("first transmission should be jammed by the second")
	}
	if !m.Collides(txB, 1) {
		t.Error("second transmission should be jammed by the first")
	}
}

func TestNonOverlappingTransmissionsDoNotJam(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(80, 0)}
	m := collisionMedium(t, pts, 0.01)
	txA, _ := m.Transmit(1.000, 0, 50, nil)
	txB, _ := m.Transmit(1.020, 2, 50, nil) // starts after A ends
	if m.Collides(txA, 1) || m.Collides(txB, 1) {
		t.Error("disjoint airtimes must not collide")
	}
}

func TestHiddenTerminalDoesNotJamOutOfRange(t *testing.T) {
	// Node 3 is far away: concurrent transmission by 0 cannot jam it.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(800, 0), geom.Pt(840, 0)}
	m := collisionMedium(t, pts, 0.01)
	m.Transmit(1.000, 0, 50, nil)
	txB, rcvB := m.Transmit(1.005, 2, 50, nil)
	if !reflect.DeepEqual(rcvB, []int{3}) {
		t.Fatalf("receivers = %v", rcvB)
	}
	if m.Collides(txB, 3) {
		t.Error("out-of-range transmission jammed a distant receiver")
	}
}

func TestHalfDuplex(t *testing.T) {
	// 1 transmits while 0's packet is in the air: 1 cannot receive it.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(800, 800)}
	m := collisionMedium(t, pts, 0.01)
	txA, _ := m.Transmit(1.000, 0, 50, nil)
	m.Transmit(1.005, 1, 50, nil) // 1's own transmission (reaches nobody)
	if !m.Collides(txA, 1) {
		t.Error("transmitting node must not receive concurrently (half-duplex)")
	}
}

func TestTxLogPruning(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(40, 0)}
	m := collisionMedium(t, pts, 0.01)
	for i := 0; i < 1000; i++ {
		m.Transmit(float64(i), 0, 50, nil)
	}
	if len(m.txLog) > 4 {
		t.Errorf("txLog grew to %d entries despite pruning", len(m.txLog))
	}
}

func TestNegativeTxDurationRejected(t *testing.T) {
	model := mobility.NewStatic(arena, []geom.Point{geom.Pt(1, 1)}, 10)
	if _, err := NewMedium(model, Config{TxDuration: -1}, xrand.New(1)); err == nil {
		t.Error("negative TxDuration accepted")
	}
}

func TestContainsInt(t *testing.T) {
	s := []int{1, 3, 5, 9}
	for _, x := range s {
		if !containsInt(s, x) {
			t.Errorf("containsInt missed %d", x)
		}
	}
	for _, x := range []int{0, 2, 4, 10} {
		if containsInt(s, x) {
			t.Errorf("containsInt false positive %d", x)
		}
	}
	if containsInt(nil, 1) {
		t.Error("empty slice contains")
	}
}
