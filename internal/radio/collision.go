package radio

// Collision modelling — the "realistic power control MAC layer" the paper
// defers to future work (§6). When Config.TxDuration is positive, every
// transmission occupies the channel for that long; a reception fails when
//
//   - the receiver is itself transmitting during the packet's airtime
//     (half-duplex), or
//   - the receiver is inside the range of any other transmission whose
//     airtime overlaps (co-channel interference; no capture effect).
//
// The medium logs recent transmissions with their receiver footprints, and
// callers resolve reception at delivery time (t + TxDuration) via Collides.

// Tx is a handle to a logged transmission.
type Tx struct {
	seq    uint64
	sender int
	at     float64
}

// txRecord is a logged transmission with its interference footprint.
type txRecord struct {
	Tx
	covered []int // nodes within range at transmission time, sorted
}

// TxDuration returns the configured airtime (0 = collision-free medium).
func (m *Medium) TxDuration() float64 { return m.cfg.TxDuration }

// Transmit logs a transmission by sender at time t with the given range and
// returns its handle plus the candidate receivers (nodes within range,
// before interference). With TxDuration == 0 no log is kept and, absent an
// attached channel, the call is equivalent to ReceiversAt.
//
// When a non-ideal channel is attached (SetChannel), each in-range receiver
// additionally passes through its per-receiver loss chain, in ascending-id
// order; dropped receivers are removed from the returned set. The
// interference footprint logged for the collision MAC stays the geometric
// coverage — channel loss is a receiver-side effect, not reduced airtime.
func (m *Medium) Transmit(t float64, sender int, r float64, dst []int) (Tx, []int) {
	start := len(dst)
	dst = m.ReceiversAt(t, sender, r, dst)
	tx := Tx{sender: sender, at: t}
	if m.cfg.TxDuration > 0 {
		m.txSeq++
		tx.seq = m.txSeq
		covered := make([]int, len(dst))
		copy(covered, dst)
		m.txLog = append(m.txLog, txRecord{Tx: tx, covered: covered})
		m.pruneTxLog(t)
	}
	if m.ch.LossEnabled() {
		kept := m.ch.FilterLost(dst[start:])
		dst = dst[:start+len(kept)]
	}
	return tx, dst
}

// Collides reports whether receiver's copy of tx is destroyed by
// interference or half-duplex conflict. Call it at delivery time
// (tx.at + TxDuration); transmissions logged after that instant do not
// retroactively interfere.
func (m *Medium) Collides(tx Tx, receiver int) bool {
	if m.cfg.TxDuration == 0 { //lint:ignore float-eq zero value disables the collision MAC, exact by construction
		return false
	}
	for i := range m.txLog {
		o := &m.txLog[i]
		if o.seq == tx.seq {
			continue
		}
		if o.at >= tx.at+m.cfg.TxDuration || o.at+m.cfg.TxDuration <= tx.at {
			continue // no airtime overlap
		}
		if o.sender == receiver {
			return true // half-duplex: receiver was transmitting
		}
		if containsInt(o.covered, receiver) {
			return true // jammed by a concurrent transmission
		}
	}
	return false
}

// pruneTxLog drops records that can no longer overlap anything at or after
// time t.
func (m *Medium) pruneTxLog(t float64) {
	keep := m.txLog[:0]
	for _, rec := range m.txLog {
		if rec.at+2*m.cfg.TxDuration > t {
			keep = append(keep, rec)
		}
	}
	// Zero the tail so retained backing-array references are released.
	for i := len(keep); i < len(m.txLog); i++ {
		m.txLog[i] = txRecord{}
	}
	m.txLog = keep
}

// containsInt reports membership in a sorted int slice.
func containsInt(s []int, x int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s[mid] < x:
			lo = mid + 1
		case s[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
