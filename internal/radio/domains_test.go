package radio

import (
	"math"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

// TestDomainGridAccounting pins the decomposition arithmetic: cell sizes,
// guard distance, window length, and the static-scenario unbounded window.
func TestDomainGridAccounting(t *testing.T) {
	arena := geom.Square(900)
	dg, err := NewDomainGrid(arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Side() != 3 || dg.Domains() != 9 {
		t.Fatalf("side/domains = %d/%d, want 3/9", dg.Side(), dg.Domains())
	}
	if got, want := dg.Guard(), 150.0; got != want { //lint:ignore float-eq exact arithmetic: 900/3/2
		t.Fatalf("guard = %g, want %g", got, want)
	}
	if got, want := dg.Window(30), 2.5; got != want { //lint:ignore float-eq exact arithmetic: 150/(2*30)
		t.Fatalf("window(30) = %g, want %g", got, want)
	}
	if w := dg.Window(0); !math.IsInf(w, 1) {
		t.Fatalf("window(0) = %g, want +Inf", w)
	}
	if _, err := NewDomainGrid(arena, 0); err == nil {
		t.Error("side 0 accepted")
	}
	if _, err := NewDomainGrid(geom.Rect{}, 2); err == nil {
		t.Error("degenerate arena accepted")
	}
}

// TestDomainGridAssignment checks ownership assignment: in-arena points
// land in the domain containing them, boundary and out-of-arena points
// clamp to valid indices, and AssignInto matches per-point assignment.
func TestDomainGridAssignment(t *testing.T) {
	dg, err := NewDomainGrid(geom.Square(900), 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(0, 0), 0},
		{geom.Pt(299, 0), 0},
		{geom.Pt(301, 0), 1},
		{geom.Pt(899, 899), 8},
		{geom.Pt(900, 900), 8}, // arena max clamps into the last domain
		{geom.Pt(-50, 450), 3}, // out-of-arena clamps to the edge column
		{geom.Pt(450, 1e6), 7}, // and to the edge row
		{geom.Pt(450.1, 450.1), 4},
	}
	pts := make([]geom.Point, len(cases))
	for i, c := range cases {
		pts[i] = c.p
		if got := dg.domainAt(c.p); got != c.want {
			t.Errorf("domainAt(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	assigned := dg.AssignInto(pts, make([]int, 0, len(pts)))
	for i, c := range cases {
		if assigned[i] != c.want {
			t.Errorf("AssignInto[%d] = %d, want %d", i, assigned[i], c.want)
		}
	}
}

// TestDomainHaloCoversMovingReceivers is the safety property the region-
// parallel engine rests on: assign nodes to domains at window start T,
// advance time by at most Window(vmax), and every geometric receiver of
// any transmission must be owned by a domain inside the sender's halo
// bounding box at radius r + Guard(). The test drives real random-waypoint
// motion at the paper's top speed and checks every (sender, receiver,
// instant) triple.
func TestDomainHaloCoversMovingReceivers(t *testing.T) {
	arena := geom.Square(900)
	lo, hi := mobility.SpeedSetdest(160)
	model, err := mobility.NewRandomWaypoint(arena, mobility.WaypointConfig{
		N: 60, SpeedMin: lo, SpeedMax: hi, Horizon: 30,
	}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	const r = 250.0
	cur := mobility.NewCursor(model)
	posT := make([]geom.Point, 0, model.N())
	domainOf := make([]int, 0, model.N())
	for _, side := range []int{2, 3, 4} {
		dg, err := NewDomainGrid(arena, side)
		if err != nil {
			t.Fatal(err)
		}
		w := dg.Window(model.MaxSpeed())
		if w <= 0 || math.IsInf(w, 1) {
			t.Fatalf("side %d: window %g not positive finite for vmax %g", side, w, model.MaxSpeed())
		}
		for T := 0.0; T < 30; T += 5.0 {
			posT = cur.ResolveAllInto(posT[:0], T)
			domainOf = dg.AssignInto(posT, domainOf[:0])
			// Probe several instants through the window, including its end.
			for _, frac := range []float64{0, 0.33, 0.81, 1} {
				at := T + frac*w
				for s := 0; s < model.N(); s++ {
					sp := cur.PositionAt(s, at)
					ix0, iy0, ix1, iy1 := dg.HaloBounds(sp, r+dg.Guard())
					for v := 0; v < model.N(); v++ {
						if v == s || cur.PositionAt(v, at).Dist(sp) > r {
							continue
						}
						d := domainOf[v]
						ix, iy := d%side, d/side
						if ix < ix0 || ix > ix1 || iy < iy0 || iy > iy1 {
							t.Fatalf("side %d, window [%g, %g]: receiver %d (domain %d,%d) outside sender %d's halo box [%d,%d]x[%d,%d] at t=%g",
								side, T, T+w, v, ix, iy, s, ix0, ix1, iy0, iy1, at)
						}
					}
				}
			}
		}
	}
}
