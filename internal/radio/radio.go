// Package radio models the wireless medium as an ideal disc: a transmission
// by node u at time t with transmission range r is received by exactly the
// nodes within distance r of u at time t — no collision and no contention,
// matching the paper's simulation setup ("all simulations use an ideal MAC
// layer without collision and contention", §5.1).
//
// Two knobs extend the ideal model for robustness experiments: a constant
// per-hop delay (propagation plus processing) and an i.i.d. reception loss
// probability used by failure-injection tests. Both default to zero.
//
// # Bounded-staleness spatial index
//
// "Hello" beacons are asynchronous, so every transmission queries the
// medium at a unique instant; an exact-instant position cache never hits
// and each query would pay a full O(n) position sweep plus a grid rebuild.
// Instead the medium reuses a grid built at some earlier instant t0 and
// keeps queries exact by the same bounded-displacement argument as the
// paper's buffer zone (Theorem 5, l = 2·Δ″·v): within Δ = t−t0 seconds no
// pair of nodes changes relative distance by more than 2·vmax·Δ, so a disc
// query of radius r at time t is a subset of the stale grid's candidates at
// radius r + 2·vmax·Δ. Candidates are then filtered by their exact
// positions at t, making the receiver set identical — bit for bit — to a
// freshly built grid's. The grid is rebuilt only once the inflation
// 2·vmax·Δ exceeds a slack budget (one grid cell by default), turning the
// per-event cost from O(n) into O(neighborhood) amortized.
package radio

import (
	"fmt"
	"math"

	"mstc/internal/channel"
	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/spatial"
	"mstc/internal/xrand"
)

// Config parameterizes a Medium.
type Config struct {
	// Cell is the spatial-index cell size in meters (default 125, half
	// the normal transmission range).
	Cell float64
	// Delay is the constant per-hop delivery delay in seconds
	// (default 0: delivery at the instant of transmission).
	Delay float64
	// LossRate is the probability that an individual reception fails,
	// drawn independently per (transmission, receiver). Default 0.
	LossRate float64
	// TxDuration is the per-packet airtime in seconds. 0 (the default)
	// gives the paper's collision-free ideal MAC; positive values enable
	// the collision model in collision.go.
	TxDuration float64
	// Slack is the bounded-staleness budget in meters: the grid is
	// reused as long as the query-radius inflation 2·vmax·(t−t0) stays
	// within it. 0 (the default) means one grid cell; a negative value
	// disables staleness entirely and rebuilds per distinct instant (the
	// exact-instant reference behavior, kept for differential tests).
	// Receiver sets are independent of Slack by construction — the knob
	// trades grid rebuilds against candidate filtering, never results.
	Slack float64
}

func (c *Config) setDefaults() {
	if c.Cell == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.Cell = 125
	}
	if c.Slack == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.Slack = c.Cell
	}
}

// Medium is the shared wireless channel. It serves receiver queries from a
// bounded-staleness spatial grid (see the package comment): queries at
// instants close to the last grid build reuse it with an inflated search
// radius and exact-position filtering, so results never depend on the cache
// state. A Medium is single-goroutine, like the Engine that drives it.
type Medium struct {
	model mobility.Model
	cur   *mobility.Cursor
	cfg   Config
	rng   *xrand.Source
	vmax  float64

	// bounded-staleness grid state
	grid    *spatial.Index
	gridPos []geom.Point // positions the grid was built from (at gridAt)
	gridAt  float64
	gridOK  bool
	cand    []int // scratch for inflated-radius candidates

	// exact-instant cache backing PositionsAt
	pos   []geom.Point
	at    float64
	fresh bool

	// per-instant memoized exact positions: repeated queries at the same
	// instant (candidate filtering, metric sweeps) reuse the cursor's
	// answer instead of re-evaluating the trajectory. stamp[id] == epoch
	// marks exact[id] as computed at lastT.
	exact []geom.Point
	stamp []uint64
	epoch uint64
	lastT float64

	// collision-model state (see collision.go)
	txSeq uint64
	txLog []txRecord

	// ch is the attached non-ideal channel (nil = ideal). Transmissions —
	// and only transmissions — pass through its loss chains; geometric
	// queries (ReceiversAt, PositionsAt) stay loss-free so metrics and
	// effective-topology snapshots measure the radio, not the channel.
	ch *channel.Model
}

// NewMedium builds a medium over the mobility model. rng feeds the loss
// process only; pass any substream (it is unused when LossRate is 0).
func NewMedium(model mobility.Model, cfg Config, rng *xrand.Source) (*Medium, error) {
	cfg.setDefaults()
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("radio: negative delay %g", cfg.Delay)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("radio: loss rate %g outside [0, 1)", cfg.LossRate)
	}
	if cfg.TxDuration < 0 {
		return nil, fmt.Errorf("radio: negative TxDuration %g", cfg.TxDuration)
	}
	grid, err := spatial.NewIndex(model.Arena(), cfg.Cell)
	if err != nil {
		return nil, err
	}
	return &Medium{
		model:   model,
		cur:     mobility.NewCursor(model),
		cfg:     cfg,
		rng:     rng,
		vmax:    model.MaxSpeed(),
		grid:    grid,
		gridPos: make([]geom.Point, model.N()),
		pos:     make([]geom.Point, model.N()),
		exact:   make([]geom.Point, model.N()),
		stamp:   make([]uint64, model.N()),
		epoch:   1,
		cand:    make([]int, 0, 64),
	}, nil
}

// Delay returns the configured per-hop delivery delay.
func (m *Medium) Delay() float64 { return m.cfg.Delay }

// SetChannel attaches a non-ideal channel model. A nil model (the default)
// is the ideal channel: Transmit consumes no channel randomness and the
// medium behaves exactly as it did before the channel subsystem existed.
func (m *Medium) SetChannel(ch *channel.Model) { m.ch = ch }

// Channel returns the attached channel model (nil = ideal).
func (m *Medium) Channel() *channel.Model { return m.ch }

// N returns the node count.
func (m *Medium) N() int { return m.model.N() }

// posAt returns node id's exact position at t through the per-instant memo:
// the first query at a new instant advances the epoch, later queries for the
// same id at the same instant are a stamp check and an array load.
func (m *Medium) posAt(id int, t float64) geom.Point {
	if t != m.lastT { //lint:ignore float-eq cache key: same simulated instant, exact by construction
		m.epoch++
		m.lastT = t
	}
	if m.stamp[id] == m.epoch {
		return m.exact[id]
	}
	p := m.cur.PositionAt(id, t)
	m.exact[id] = p
	m.stamp[id] = m.epoch
	return p
}

// PositionAt returns node id's position at time t (single query, served by
// the medium's monotone leg cursor behind the per-instant memo).
func (m *Medium) PositionAt(id int, t float64) geom.Point {
	return m.posAt(id, t)
}

// PositionsAt returns all node positions at time t. The returned slice is
// owned by the medium and valid until the next call.
func (m *Medium) PositionsAt(t float64) []geom.Point {
	if m.fresh && m.at == t { //lint:ignore float-eq cache key: positions were built at exactly this simulated instant
		return m.pos
	}
	for id := range m.pos {
		m.pos[id] = m.posAt(id, t)
	}
	m.at = t
	m.fresh = true
	return m.pos
}

// inflation returns the query-radius inflation that makes the grid built at
// gridAt exact for a query at t: 2·vmax·(t−gridAt), the maximal relative
// displacement of any node pair over the staleness window (the buffer-zone
// displacement bound of Theorem 5).
func (m *Medium) inflation(t float64) float64 {
	return 2 * m.vmax * (t - m.gridAt)
}

// ensureGrid makes the grid usable for a query at time t: it rebuilds when
// there is no grid yet, when t precedes the build instant, or when the
// staleness inflation would exceed the slack budget.
func (m *Medium) ensureGrid(t float64) {
	if m.gridOK {
		if m.cfg.Slack < 0 {
			// Staleness disabled: reuse only at the exact build instant.
			if t == m.gridAt { //lint:ignore float-eq cache key: grid was built at exactly this simulated instant
				return
			}
		} else if t >= m.gridAt && m.inflation(t) <= m.cfg.Slack {
			return
		}
	}
	for id := range m.gridPos {
		m.gridPos[id] = m.posAt(id, t)
	}
	m.grid.Build(m.gridPos)
	m.gridAt = t
	m.gridOK = true
}

// ReceiversAt appends to dst the nodes that receive a transmission sent by
// sender at time t with range r: every node other than the sender within
// distance r at t, minus any losses. Results ascend by id.
func (m *Medium) ReceiversAt(t float64, sender int, r float64, dst []int) []int {
	if r <= 0 {
		return dst
	}
	m.ensureGrid(t)
	p := m.posAt(sender, t)
	start := len(dst)
	m.cand = m.grid.WithinUnsorted(p, r+m.inflation(t), m.cand[:0])
	r2 := r * r
	for _, id := range m.cand {
		if id == sender {
			continue
		}
		// Exact filter: candidate sets may grow with staleness, but this
		// test over true positions at t is the same one a fresh grid
		// performs, so the receiver set is identical either way.
		if m.posAt(id, t).Dist2(p) <= r2 {
			dst = append(dst, id)
		}
	}
	// Candidates arrive in cell-scan order; restore the ascending-id
	// contract on the (smaller) filtered set.
	sortInts(dst[start:])
	if m.cfg.LossRate > 0 {
		kept := dst[start:start]
		for _, id := range dst[start:] {
			if !m.LostAt(t, sender, id) {
				kept = append(kept, id)
			}
		}
		dst = dst[:start+len(kept)]
	}
	return dst
}

// LostAt reports whether receiver id's copy of a transmission by sender at
// instant t is dropped by the medium's loss process (Config.LossRate).
// Loss is a pure function of (t, sender, id): the draw comes from a
// substream keyed by the exact float bits of t plus both endpoints, so any
// engine — and any evaluation order — resolves the same reception the same
// way. Safe for concurrent use: deriving never advances the medium's loss
// source, and no other medium state is touched.
func (m *Medium) LostAt(t float64, sender, id int) bool {
	if m.cfg.LossRate <= 0 {
		return false
	}
	d := m.rng.Derive('t', math.Float64bits(t), uint64(sender), uint64(id))
	return d.Float64() < m.cfg.LossRate
}

// sortInts is an allocation-free insertion sort for the small per-query
// receiver lists (sort.Ints pays generic-dispatch overhead at this size).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
