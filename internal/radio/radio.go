// Package radio models the wireless medium as an ideal disc: a transmission
// by node u at time t with transmission range r is received by exactly the
// nodes within distance r of u at time t — no collision and no contention,
// matching the paper's simulation setup ("all simulations use an ideal MAC
// layer without collision and contention", §5.1).
//
// Two knobs extend the ideal model for robustness experiments: a constant
// per-hop delay (propagation plus processing) and an i.i.d. reception loss
// probability used by failure-injection tests. Both default to zero.
package radio

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/mobility"
	"mstc/internal/spatial"
	"mstc/internal/xrand"
)

// Config parameterizes a Medium.
type Config struct {
	// Cell is the spatial-index cell size in meters (default 125, half
	// the normal transmission range).
	Cell float64
	// Delay is the constant per-hop delivery delay in seconds
	// (default 0: delivery at the instant of transmission).
	Delay float64
	// LossRate is the probability that an individual reception fails,
	// drawn independently per (transmission, receiver). Default 0.
	LossRate float64
	// TxDuration is the per-packet airtime in seconds. 0 (the default)
	// gives the paper's collision-free ideal MAC; positive values enable
	// the collision model in collision.go.
	TxDuration float64
}

func (c *Config) setDefaults() {
	if c.Cell == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
		c.Cell = 125
	}
}

// Medium is the shared wireless channel. It caches node positions per
// distinct query instant, so the many receiver queries a flood issues at
// (nearly) the same time cost one position sweep plus grid lookups.
// A Medium is single-goroutine, like the Engine that drives it.
type Medium struct {
	model mobility.Model
	cfg   Config
	rng   *xrand.Source
	grid  *spatial.Index
	pos   []geom.Point
	at    float64
	fresh bool

	// collision-model state (see collision.go)
	txSeq uint64
	txLog []txRecord
}

// NewMedium builds a medium over the mobility model. rng feeds the loss
// process only; pass any substream (it is unused when LossRate is 0).
func NewMedium(model mobility.Model, cfg Config, rng *xrand.Source) (*Medium, error) {
	cfg.setDefaults()
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("radio: negative delay %g", cfg.Delay)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("radio: loss rate %g outside [0, 1)", cfg.LossRate)
	}
	if cfg.TxDuration < 0 {
		return nil, fmt.Errorf("radio: negative TxDuration %g", cfg.TxDuration)
	}
	grid, err := spatial.NewIndex(model.Arena(), cfg.Cell)
	if err != nil {
		return nil, err
	}
	return &Medium{
		model: model,
		cfg:   cfg,
		rng:   rng,
		grid:  grid,
		pos:   make([]geom.Point, model.N()),
	}, nil
}

// Delay returns the configured per-hop delivery delay.
func (m *Medium) Delay() float64 { return m.cfg.Delay }

// N returns the node count.
func (m *Medium) N() int { return m.model.N() }

// PositionAt returns node id's position at time t (uncached single query).
func (m *Medium) PositionAt(id int, t float64) geom.Point {
	return m.model.PositionAt(id, t)
}

// PositionsAt returns all node positions at time t. The returned slice is
// owned by the medium and valid until the next call.
func (m *Medium) PositionsAt(t float64) []geom.Point {
	m.refresh(t)
	return m.pos
}

func (m *Medium) refresh(t float64) {
	if m.fresh && m.at == t { //lint:ignore float-eq cache key: positions were built at exactly this simulated instant
		return
	}
	for id := range m.pos {
		m.pos[id] = m.model.PositionAt(id, t)
	}
	m.grid.Build(m.pos)
	m.at = t
	m.fresh = true
}

// ReceiversAt appends to dst the nodes that receive a transmission sent by
// sender at time t with range r: every node other than the sender within
// distance r at t, minus any losses. Results ascend by id.
func (m *Medium) ReceiversAt(t float64, sender int, r float64, dst []int) []int {
	if r <= 0 {
		return dst
	}
	m.refresh(t)
	start := len(dst)
	dst = m.grid.WithinOf(sender, r, dst)
	if m.cfg.LossRate > 0 {
		kept := dst[start:start]
		for _, id := range dst[start:] {
			if m.rng.Float64() >= m.cfg.LossRate {
				kept = append(kept, id)
			}
		}
		dst = dst[:start+len(kept)]
	}
	return dst
}
