package radio

import (
	"sort"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/lint"
	"mstc/internal/xrand"
)

// TestNoallocAnnotationsConform pins every //manet:noalloc annotation in
// this package with testing.AllocsPerRun: the per-window domain assignment
// must allocate nothing when appending into a recycled dst. Coverage is
// cross-checked against the annotation scan in both directions.
func TestNoallocAnnotationsConform(t *testing.T) {
	dg, err := NewDomainGrid(geom.Square(900), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(17)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Uniform(-50, 950), rng.Uniform(-50, 950))
	}
	dst := make([]int, 0, len(pts))

	measured := map[string]func(){
		"DomainGrid.AssignInto": func() { dst = dg.AssignInto(pts, dst[:0]) },
	}

	annotated, err := lint.NoallocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(annotated))
	for _, name := range annotated {
		seen[name] = true
		if measured[name] == nil {
			t.Errorf("%s is annotated //manet:noalloc but has no AllocsPerRun entry", name)
		}
	}
	var names []string
	for name := range measured {
		if !seen[name] {
			t.Errorf("%s is measured here but not annotated //manet:noalloc", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := measured[name]
		fn() // warm up before measuring
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run in steady state, want 0", name, allocs)
		}
	}
}
