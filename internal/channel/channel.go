// Package channel is the non-ideal channel subsystem: deterministic,
// seedable fault injection layered over the ideal-disc radio. It models the
// three degradations the paper's mobility-management mechanisms were
// designed to survive —
//
//   - per-packet stochastic loss, either i.i.d. (Bernoulli) or bursty
//     (a two-state Gilbert–Elliott chain per receiver), probing the weak-
//     consistency tolerance of lost "Hello"s (Theorems 3–4);
//   - bounded random per-delivery delay drawn uniformly from [Min, Max],
//     the Δ″ of Theorem 5's buffer zone l = 2·Δ″·v;
//   - node churn (crash/recover with exponential holding times) that
//     silences a node's "Hello"s and floods while it is down, the failure
//     model behind the fault-tolerance discussion of §2.2.
//
// Determinism contract: every stochastic choice draws from a dedicated
// xrand substream derived from the Model's root source — per-receiver loss
// chains from ('l', id), per-delivery delays from substreams of the ('d')
// parent keyed by the delivery's identity (see HelloDelay/FloodDelay), and
// per-node churn from ('k', id).
// The ideal configuration (zero value) builds no Model at all and consumes
// no randomness, so simulations with the default channel are bit-identical
// to ones that predate this package (pinned by the experiment package's
// golden differential test).
package channel

import (
	"fmt"

	"mstc/internal/xrand"
)

// LossModel selects the per-packet loss process.
type LossModel uint8

const (
	// Bernoulli drops each reception independently with probability Rate.
	// It is the zero value: a LossConfig{Rate: p} is i.i.d. loss.
	Bernoulli LossModel = iota
	// GilbertElliott drops according to a two-state burst chain: a Good
	// state losing with probability GoodLoss and a Bad state losing with
	// probability BadLoss, with geometric sojourn times tuned so the
	// stationary loss rate equals Rate and the mean Bad-state burst is
	// MeanBurst packets.
	GilbertElliott
)

// String names the model (flag values of cmd/manetsim).
func (m LossModel) String() string {
	switch m {
	case Bernoulli:
		return "bernoulli"
	case GilbertElliott:
		return "gilbert"
	}
	return fmt.Sprintf("LossModel(%d)", uint8(m))
}

// LossConfig parameterizes the loss process. The zero value is lossless.
type LossConfig struct {
	// Model selects Bernoulli (default) or GilbertElliott.
	Model LossModel
	// Rate is the long-run (stationary) loss probability in [0, 1).
	// 0 disables loss.
	Rate float64
	// MeanBurst is the Gilbert–Elliott mean Bad-state sojourn in packets
	// (default 8). Ignored by Bernoulli.
	MeanBurst float64
	// GoodLoss and BadLoss are the Gilbert–Elliott per-state loss
	// probabilities (defaults 0 and 1). Ignored by Bernoulli.
	GoodLoss, BadLoss float64
}

// Enabled reports whether the loss process drops anything.
func (c LossConfig) Enabled() bool { return c.Rate > 0 }

// withDefaults fills the Gilbert–Elliott defaults: pure erasure bursts
// (GoodLoss 0, BadLoss 1) with a mean burst of 8 packets.
func (c LossConfig) withDefaults() LossConfig {
	if c.Model == GilbertElliott {
		if c.MeanBurst == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
			c.MeanBurst = 8
		}
		if c.BadLoss == 0 { //lint:ignore float-eq zero value is the unset sentinel, exact by construction
			c.BadLoss = 1
		}
	}
	return c
}

// validate reports loss-configuration errors (after defaults).
func (c LossConfig) validate() error {
	if c.Rate < 0 || c.Rate >= 1 {
		return fmt.Errorf("channel: loss rate %g outside [0, 1)", c.Rate)
	}
	switch c.Model {
	case Bernoulli:
	case GilbertElliott:
		if !c.Enabled() {
			return nil
		}
		if c.MeanBurst < 1 {
			return fmt.Errorf("channel: Gilbert–Elliott mean burst %g < 1 packet", c.MeanBurst)
		}
		if c.GoodLoss < 0 || c.BadLoss > 1 || c.GoodLoss >= c.BadLoss {
			return fmt.Errorf("channel: Gilbert–Elliott needs 0 <= GoodLoss < BadLoss <= 1, got [%g, %g]", c.GoodLoss, c.BadLoss)
		}
		if c.Rate < c.GoodLoss || c.Rate >= c.BadLoss {
			return fmt.Errorf("channel: stationary rate %g outside per-state losses [%g, %g)", c.Rate, c.GoodLoss, c.BadLoss)
		}
		if _, pGB, _ := c.geParams(); pGB > 1 {
			return fmt.Errorf("channel: rate %g unreachable with mean burst %g (Good→Bad probability %g > 1); lengthen the burst or lower the rate", c.Rate, c.MeanBurst, pGB)
		}
	default:
		return fmt.Errorf("channel: unknown loss model %d", c.Model)
	}
	return nil
}

// geParams derives the Gilbert–Elliott chain parameters from the target
// stationary loss rate and mean burst length: the stationary Bad-state
// probability piB solves Rate = (1-piB)·GoodLoss + piB·BadLoss, the
// Bad→Good probability is 1/MeanBurst (geometric sojourn), and the
// Good→Bad probability follows from detailed balance piG·pGB = piB·pBG.
func (c LossConfig) geParams() (piB, pGB, pBG float64) {
	piB = (c.Rate - c.GoodLoss) / (c.BadLoss - c.GoodLoss)
	pBG = 1 / c.MeanBurst
	pGB = piB * pBG / (1 - piB)
	return piB, pGB, pBG
}

// DelayConfig bounds the per-delivery random delay: each reception is
// deferred by an independent uniform draw from [Min, Max] seconds. Max is
// the Δ″ of Theorem 5. The zero value delivers instantaneously.
type DelayConfig struct {
	Min, Max float64
}

// Enabled reports whether deliveries are deferred.
func (c DelayConfig) Enabled() bool { return c.Max > 0 }

// validate reports delay-configuration errors.
func (c DelayConfig) validate() error {
	if c.Min < 0 || c.Max < c.Min {
		return fmt.Errorf("channel: need 0 <= delay Min <= Max, got [%g, %g]", c.Min, c.Max)
	}
	return nil
}

// ChurnConfig parameterizes the node fault process: each node alternates
// between up and down states with independent exponential holding times.
// While down a node neither beacons, receives, nor forwards, and it reboots
// with empty protocol state. The zero value disables churn.
type ChurnConfig struct {
	// MeanUp is the mean up-time in seconds before a crash.
	MeanUp float64
	// MeanDown is the mean outage duration in seconds.
	MeanDown float64
}

// Enabled reports whether the fault process is active.
func (c ChurnConfig) Enabled() bool { return c.MeanUp > 0 && c.MeanDown > 0 }

// validate reports churn-configuration errors.
func (c ChurnConfig) validate() error {
	if c.MeanUp < 0 || c.MeanDown < 0 || (c.MeanUp > 0) != (c.MeanDown > 0) {
		return fmt.Errorf("channel: churn needs both MeanUp and MeanDown positive (or both zero), got [%g, %g]", c.MeanUp, c.MeanDown)
	}
	return nil
}

// Config composes the three fault processes. The zero value is the ideal
// channel: no loss, no delay, no churn, no randomness consumed.
type Config struct {
	Loss  LossConfig
	Delay DelayConfig
	Churn ChurnConfig
}

// Enabled reports whether any fault process is configured — false means the
// channel is ideal and no Model needs to exist.
func (c Config) Enabled() bool {
	return c.Loss.Enabled() || c.Delay.Enabled() || c.Churn.Enabled()
}

// WithDefaults returns c with unset loss-model fields defaulted.
func (c Config) WithDefaults() Config {
	c.Loss = c.Loss.withDefaults()
	return c
}

// Validate reports configuration errors. It applies defaults first, so a
// Config straight from flags validates the same way NewModel sees it.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if err := c.Loss.validate(); err != nil {
		return err
	}
	if err := c.Delay.validate(); err != nil {
		return err
	}
	return c.Churn.validate()
}

// LossProcess is one receiver's loss chain. Bernoulli draws one uniform per
// packet; Gilbert–Elliott draws exactly two (loss decision, then state
// transition), so the stream position after k packets is config-independent
// within a model — reproducibility per seed is trivial to audit.
type LossProcess struct {
	cfg LossConfig
	pGB float64 // Good→Bad transition probability
	pBG float64 // Bad→Good transition probability
	bad bool
	rng *xrand.Source
}

// NewLossProcess builds a chain over its own random source. cfg must have
// passed Validate; defaults are applied here so callers can pass a raw
// config. The chain starts in the Good state.
func NewLossProcess(cfg LossConfig, rng *xrand.Source) *LossProcess {
	cfg = cfg.withDefaults()
	p := &LossProcess{cfg: cfg, rng: rng}
	if cfg.Model == GilbertElliott && cfg.Enabled() {
		_, p.pGB, p.pBG = cfg.geParams()
	}
	return p
}

// Bad reports whether the chain currently sits in the Bad (burst) state.
func (p *LossProcess) Bad() bool { return p.bad }

// Lost advances the chain by one packet and reports whether that packet is
// dropped.
func (p *LossProcess) Lost() bool {
	if !p.cfg.Enabled() {
		return false
	}
	if p.cfg.Model == Bernoulli {
		return p.rng.Float64() < p.cfg.Rate
	}
	// Gilbert–Elliott: emit from the current state, then transition.
	loss := p.cfg.GoodLoss
	if p.bad {
		loss = p.cfg.BadLoss
	}
	lost := p.rng.Float64() < loss
	if u := p.rng.Float64(); p.bad {
		if u < p.pBG {
			p.bad = false
		}
	} else {
		if u < p.pGB {
			p.bad = true
		}
	}
	return lost
}

// Model is one run's channel state: per-receiver loss chains, the delay
// substream parent, and the churn substream root. Build with NewModel; nil
// is the ideal channel everywhere a *Model is accepted. The loss chains
// are single-goroutine state like the engine that advances them; the delay
// parent is derivation-only and therefore safe to key from concurrently.
type Model struct {
	cfg   Config
	links []*LossProcess // per-receiver chains; nil when loss is off
	delay *xrand.Source  // keyed per-delivery delay parent; nil when delay is off
	root  *xrand.Source
}

// NewModel validates cfg and builds the channel state for n receivers over
// the given root substream. An ideal cfg returns (nil, nil): callers keep a
// nil Model and pay nothing.
func NewModel(cfg Config, n int, rng *xrand.Source) (*Model, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if n <= 0 {
		return nil, fmt.Errorf("channel: need a positive receiver count, got %d", n)
	}
	m := &Model{cfg: cfg, root: rng}
	if cfg.Loss.Enabled() {
		m.links = make([]*LossProcess, n)
		for i := range m.links {
			m.links[i] = NewLossProcess(cfg.Loss, rng.Sub('l', uint64(i)))
		}
	}
	if cfg.Delay.Enabled() {
		m.delay = rng.Sub('d')
	}
	return m, nil
}

// Config returns the validated configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// LossEnabled reports whether receptions can be dropped. Safe on nil.
func (m *Model) LossEnabled() bool { return m != nil && m.links != nil }

// Lost advances receiver id's loss chain by one packet and reports whether
// that reception is dropped.
func (m *Model) Lost(id int) bool {
	if !m.LossEnabled() {
		return false
	}
	return m.links[id].Lost()
}

// FilterLost removes lost receivers from ids in place (preserving order)
// and returns the kept prefix. Chains advance once per listed receiver, in
// the order given — callers pass ascending ids, so randomness consumption
// is position-independent and deterministic.
func (m *Model) FilterLost(ids []int) []int {
	if !m.LossEnabled() {
		return ids
	}
	kept := ids[:0]
	for _, id := range ids {
		if !m.links[id].Lost() {
			kept = append(kept, id)
		}
	}
	return kept
}

// DelayEnabled reports whether deliveries are deferred. Safe on nil.
func (m *Model) DelayEnabled() bool { return m != nil && m.delay != nil }

// delayKindHello and delayKindFlood are the constant first labels that
// keep the two delay-derivation sites on the 'd' parent collision-free
// (the substream analyzer's rule A).
const (
	delayKindHello = 'h'
	delayKindFlood = 'b'
)

// HelloDelay returns the delivery delay of one "Hello" reception, uniform
// in [Min, Max] and keyed by (sender, receiver, send-instant bits). The
// derivation is pure: the same reception resolves to the same delay in
// any engine and any evaluation order, and the keyed draw is allocation-
// free, so both the serial pooled-actor path and the region-parallel
// per-domain delivery heaps call it on their hot paths. Safe for
// concurrent use — deriving never advances the 'd' parent. It panics when
// delay is not enabled; callers gate on DelayEnabled.
func (m *Model) HelloDelay(sender, rid int, sentBits uint64) float64 {
	d := m.delay.Derive(delayKindHello, uint64(sender), uint64(rid), sentBits)
	return d.Uniform(m.cfg.Delay.Min, m.cfg.Delay.Max)
}

// FloodDelay returns the delivery delay of one flood-packet reception,
// uniform in [Min, Max] and keyed by (flood sequence number, forwarder,
// receiver) — a node forwards a given flood at most once, so the key is
// unique per reception. Purity, concurrency and panic behavior match
// HelloDelay.
func (m *Model) FloodDelay(fid uint64, sender, rid int) float64 {
	d := m.delay.Derive(delayKindFlood, fid, uint64(sender), uint64(rid))
	return d.Uniform(m.cfg.Delay.Min, m.cfg.Delay.Max)
}

// ChurnEnabled reports whether the node fault process is active. Safe on nil.
func (m *Model) ChurnEnabled() bool { return m != nil && m.cfg.Churn.Enabled() }

// ChurnMeans returns the exponential holding-time means (up, down).
func (m *Model) ChurnMeans() (up, down float64) {
	return m.cfg.Churn.MeanUp, m.cfg.Churn.MeanDown
}

// ChurnRNG derives node id's dedicated churn substream. The derivation is
// pure, so the schedule a node fails on is independent of every other
// stochastic process in the run.
func (m *Model) ChurnRNG(id int) *xrand.Source {
	return m.root.Sub('k', uint64(id))
}
