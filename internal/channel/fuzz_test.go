package channel

import (
	"math"
	"testing"

	"mstc/internal/xrand"
)

// FuzzGilbertElliott is the property test of the burst-loss chain: for any
// (seed, rate, burst) the loss sequence is reproducible per seed, and its
// long-run loss rate converges to the configured stationary probability.
// `go test` runs the seed corpus; `go test -fuzz=FuzzGilbertElliott`
// explores further.
func FuzzGilbertElliott(f *testing.F) {
	f.Add(uint64(1), 0.1, 4.0)
	f.Add(uint64(42), 0.3, 8.0)
	f.Add(uint64(7), 0.02, 1.5)
	f.Add(uint64(2004), 0.45, 20.0)
	f.Fuzz(func(t *testing.T, seed uint64, rate, burst float64) {
		// Clamp fuzz inputs into the validated parameter space instead of
		// rejecting: the property must hold across all of it.
		if math.IsNaN(rate) || math.IsInf(rate, 0) || math.IsNaN(burst) || math.IsInf(burst, 0) {
			t.Skip()
		}
		rate = math.Mod(math.Abs(rate), 0.5)
		burst = 1.5 + math.Mod(math.Abs(burst), 30)
		cfg := LossConfig{Model: GilbertElliott, Rate: rate, MeanBurst: burst}
		if err := (Config{Loss: cfg}).Validate(); err != nil {
			t.Skipf("clamped config still invalid: %v", err)
		}

		const n = 60000
		run := func() (lost int, bits uint64) {
			p := NewLossProcess(cfg, xrand.New(seed))
			for i := 0; i < n; i++ {
				l := p.Lost()
				if l {
					lost++
				}
				if i < 64 {
					bits <<= 1
					if l {
						bits |= 1
					}
				}
			}
			return lost, bits
		}
		lostA, bitsA := run()
		lostB, bitsB := run()
		if lostA != lostB || bitsA != bitsB {
			t.Fatalf("seed %d not reproducible: %d/%d losses, prefixes %x vs %x", seed, lostA, lostB, bitsA, bitsB)
		}
		if rate == 0 {
			if lostA != 0 {
				t.Fatalf("rate 0 lost %d packets", lostA)
			}
			return
		}
		got := float64(lostA) / n
		// Tolerance scales with the chain's mixing time: the asymptotic
		// variance of the loss-rate estimator grows with the burst length,
		// so allow ~5 standard errors of a conservatively inflated bound.
		se := math.Sqrt(rate * (1 - rate) / n * (2*burst + 1))
		tol := math.Max(0.02, 5*se)
		if math.Abs(got-rate) > tol {
			t.Errorf("seed %d rate %g burst %g: long-run loss %g off by more than %g", seed, rate, burst, got, tol)
		}
	})
}
