package channel

import (
	"math"
	"testing"

	"mstc/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Loss: LossConfig{Rate: 0.3}},
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.2}},
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.2, MeanBurst: 4, GoodLoss: 0.01, BadLoss: 0.9}},
		{Delay: DelayConfig{Max: 0.5}},
		{Delay: DelayConfig{Min: 0.1, Max: 0.5}},
		{Churn: ChurnConfig{MeanUp: 20, MeanDown: 2}},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: valid config rejected: %v", i, err)
		}
	}
	bad := []Config{
		{Loss: LossConfig{Rate: -0.1}},
		{Loss: LossConfig{Rate: 1}},
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.2, MeanBurst: 0.5}},
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.2, GoodLoss: 0.5, BadLoss: 0.4}},
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.05, GoodLoss: 0.1}},
		// Unreachable stationary rate: piB/(1-piB) / MeanBurst > 1.
		{Loss: LossConfig{Model: GilbertElliott, Rate: 0.9, MeanBurst: 1}},
		{Loss: LossConfig{Model: LossModel(9), Rate: 0.1}},
		{Delay: DelayConfig{Min: -1, Max: 1}},
		{Delay: DelayConfig{Min: 2, Max: 1}},
		{Churn: ChurnConfig{MeanUp: 20}},
		{Churn: ChurnConfig{MeanDown: 2}},
		{Churn: ChurnConfig{MeanUp: -1, MeanDown: -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, c)
		}
	}
}

func TestIdealConfigBuildsNoModel(t *testing.T) {
	m, err := NewModel(Config{}, 50, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("ideal config built a model: %+v", m)
	}
	// The nil model is usable everywhere.
	if m.LossEnabled() || m.DelayEnabled() || m.ChurnEnabled() {
		t.Error("nil model reports an enabled fault process")
	}
	ids := []int{1, 2, 3}
	if got := m.FilterLost(ids); len(got) != 3 {
		t.Errorf("nil model dropped receivers: %v", got)
	}
}

func TestBernoulliLongRunRate(t *testing.T) {
	for _, rate := range []float64{0.05, 0.2, 0.5} {
		p := NewLossProcess(LossConfig{Rate: rate}, xrand.New(7).Sub('l', 0))
		const n = 200000
		lost := 0
		for i := 0; i < n; i++ {
			if p.Lost() {
				lost++
			}
		}
		got := float64(lost) / n
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %g: long-run loss %g", rate, got)
		}
	}
}

// lossBits draws n packets and returns the loss sequence.
func lossBits(cfg LossConfig, seed uint64, n int) []bool {
	p := NewLossProcess(cfg, xrand.New(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = p.Lost()
	}
	return out
}

func TestGilbertElliottReproduciblePerSeed(t *testing.T) {
	cfg := LossConfig{Model: GilbertElliott, Rate: 0.2, MeanBurst: 6}
	a := lossBits(cfg, 42, 5000)
	b := lossBits(cfg, 42, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at packet %d", i)
		}
	}
	c := lossBits(cfg, 43, 5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("distinct seeds produced identical loss sequences")
	}
}

func TestGilbertElliottStationaryRate(t *testing.T) {
	cases := []LossConfig{
		{Model: GilbertElliott, Rate: 0.1},
		{Model: GilbertElliott, Rate: 0.3, MeanBurst: 4},
		{Model: GilbertElliott, Rate: 0.15, MeanBurst: 10, GoodLoss: 0.02, BadLoss: 0.8},
	}
	for _, cfg := range cases {
		if err := (Config{Loss: cfg}).Validate(); err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		const n = 400000
		lost := 0
		p := NewLossProcess(cfg, xrand.New(2026).Sub('t'))
		for i := 0; i < n; i++ {
			if p.Lost() {
				lost++
			}
		}
		got := float64(lost) / n
		// Bursty chains mix slowly; 400k packets put the sample mean well
		// within ±0.015 of the stationary rate for these burst lengths.
		if math.Abs(got-cfg.Rate) > 0.015 {
			t.Errorf("config %+v: long-run loss %g, want %g", cfg, got, cfg.Rate)
		}
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// With pure erasure states, losses arrive in runs whose mean length
	// tracks MeanBurst — the property that distinguishes the chain from
	// Bernoulli at the same rate.
	cfg := LossConfig{Model: GilbertElliott, Rate: 0.2, MeanBurst: 8}
	bits := lossBits(cfg, 99, 400000)
	runs, runLen := 0, 0
	cur := 0
	for _, lost := range bits {
		if lost {
			cur++
		} else if cur > 0 {
			runs++
			runLen += cur
			cur = 0
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(runLen) / float64(runs)
	// The observed burst length is the Bad-state sojourn truncated by the
	// (rare at these parameters) within-state delivery, so it sits near
	// MeanBurst and far above the Bernoulli expectation 1/(1-rate) = 1.25.
	if mean < 4 || mean > 12 {
		t.Errorf("mean burst length %g, want near %g", mean, cfg.MeanBurst)
	}
}

func TestDelayBounds(t *testing.T) {
	m, err := NewModel(Config{Delay: DelayConfig{Min: 0.05, Max: 0.4}}, 10, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !m.DelayEnabled() {
		t.Fatal("delay not enabled")
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := m.HelloDelay(i%10, (i+1)%10, uint64(i))
		if d < 0.05 || d >= 0.4 {
			t.Fatalf("delay %g outside [0.05, 0.4)", d)
		}
		sum += d
	}
	if mean := sum / n; math.Abs(mean-0.225) > 0.01 {
		t.Errorf("delay mean %g, want ~0.225", mean)
	}
	// The delay is a pure function of the delivery key, and the hello and
	// flood kinds never share a substream even on identical numeric keys.
	if a, b := m.HelloDelay(3, 4, 77), m.HelloDelay(3, 4, 77); a != b {
		t.Errorf("HelloDelay not pure: %g != %g", a, b)
	}
	if a, b := m.HelloDelay(3, 4, 77), m.FloodDelay(77, 3, 4); a == b {
		t.Errorf("hello and flood delay kinds collide: both %g", a)
	}
}

func TestFilterLostPreservesOrderAndAdvancesPerReceiver(t *testing.T) {
	cfg := Config{Loss: LossConfig{Rate: 0.5}}
	m, err := NewModel(cfg, 6, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same per-receiver substreams drawn directly.
	ref := make([]*LossProcess, 6)
	for i := range ref {
		ref[i] = NewLossProcess(cfg.Loss, xrand.New(11).Sub('l', uint64(i)))
	}
	ids := []int{0, 2, 3, 5}
	for round := 0; round < 200; round++ {
		var want []int
		for _, id := range ids {
			if !ref[id].Lost() {
				want = append(want, id)
			}
		}
		buf := append([]int(nil), ids...)
		got := m.FilterLost(buf)
		if len(got) != len(want) {
			t.Fatalf("round %d: kept %v, want %v", round, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: kept %v, want %v", round, got, want)
			}
		}
	}
}

func TestChurnRNGIndependentPerNode(t *testing.T) {
	m, err := NewModel(Config{Churn: ChurnConfig{MeanUp: 10, MeanDown: 1}}, 4, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if up, down := m.ChurnMeans(); up != 10 || down != 1 {
		t.Fatalf("churn means (%g, %g)", up, down)
	}
	a := m.ChurnRNG(0).Float64()
	b := m.ChurnRNG(1).Float64()
	if a == b { //lint:ignore float-eq independent substreams colliding exactly is the failure under test
		t.Error("distinct nodes share a churn stream")
	}
	if again := m.ChurnRNG(0).Float64(); again != a { //lint:ignore float-eq pure derivation must reproduce exactly
		t.Error("ChurnRNG derivation is not pure")
	}
}
