// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into commands. Profiles go to the named files only — never to stdout — so
// enabling them cannot perturb the byte-identical figure and metric output
// the determinism contract covers.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a function that
// stops profiling and closes the file (defer it from main). An empty path
// is a no-op returning a no-op stop.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path, running a GC first so the
// profile reflects live objects the way `go tool pprof` expects. An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
