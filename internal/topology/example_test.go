package topology_test

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/topology"
)

// A node selects logical neighbors from its local view; the actual
// transmission range is the distance to the farthest one.
func ExampleRNG_Select() {
	view := topology.View{
		Self: topology.NodeInfo{ID: 0, Pos: geom.Pt(0, 0)},
		Neighbors: []topology.NodeInfo{
			{ID: 1, Pos: geom.Pt(100, 0)},
			{ID: 2, Pos: geom.Pt(200, 0)}, // witnessed by node 1: removed
			{ID: 3, Pos: geom.Pt(0, 80)},
		},
	}.Canon()
	logical := topology.RNG{}.Select(view)
	fmt.Println("logical neighbors:", logical)
	fmt.Println("actual range:", topology.ActualRange(view, logical))
	// Output:
	// logical neighbors: [1 3]
	// actual range: 100
}

// The buffer zone of Theorem 5 guarantees coverage of moving neighbors.
func ExampleBufferWidth() {
	maxDelay := 2.5  // seconds: oldest usable "Hello" information
	maxSpeed := 20.0 // m/s
	l := topology.BufferWidth(maxDelay, maxSpeed)
	fmt.Printf("buffer width: %.0f m\n", l)
	fmt.Printf("extended range for a 80 m selection: %.0f m\n",
		topology.ExtendedRange(80, l, 250))
	// Output:
	// buffer width: 100 m
	// extended range for a 80 m selection: 180 m
}

// Weak consistency keeps a link whenever its optimistic cost cannot be
// beaten by any pessimistic relay path (enhanced removal conditions, §4.2).
func ExampleWeakRNG_SelectWeak() {
	mv := topology.MultiView{
		Self: topology.MultiNodeInfo{ID: 0, Positions: []geom.Point{geom.Pt(0, 0)}},
		Neighbors: []topology.MultiNodeInfo{
			// Node 1 advertised from two positions: its link cost is a range.
			{ID: 1, Positions: []geom.Point{geom.Pt(100, 0), geom.Pt(140, 0)}},
			// Node 2 is off to the side, not a lune witness for (0, 1).
			{ID: 2, Positions: []geom.Point{geom.Pt(30, 90)}},
		},
	}
	fmt.Println("selected:", topology.WeakRNG{}.SelectWeak(mv))
	// Output:
	// selected: [1 2]
}
