package topology

import (
	"math"
	"reflect"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

var arena = geom.Square(900)

const normalRange = 250.0

// viewOf builds node u's canonical consistent local view from true
// positions: all nodes within normalRange are 1-hop neighbors.
func viewOf(pts []geom.Point, u int, r float64) View {
	v := View{Self: NodeInfo{ID: u, Pos: pts[u]}}
	for i, p := range pts {
		if i != u && pts[u].Dist(p) <= r {
			v.Neighbors = append(v.Neighbors, NodeInfo{ID: i, Pos: p})
		}
	}
	return v.Canon()
}

// logicalAND builds the logical topology with the framework's semantics:
// a link survives iff neither endpoint removed it.
func logicalAND(pts []geom.Point, p Protocol, r float64) *graph.Undirected {
	n := len(pts)
	sel := make([][]int, n)
	for u := 0; u < n; u++ {
		sel[u] = p.Select(viewOf(pts, u, r))
	}
	has := func(s []int, x int) bool {
		for _, v := range s {
			if v == x {
				return true
			}
		}
		return false
	}
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for _, v := range sel[u] {
			if v > u && has(sel[v], u) {
				g.AddEdge(u, v, pts[u].Dist(pts[v]))
			}
		}
	}
	return g
}

func connectedPoints(t *testing.T, seed uint64, n int) []geom.Point {
	t.Helper()
	for s := seed; ; s++ {
		pts := mobility.UniformPoints(arena, n, xrand.New(s))
		if graph.UnitDisk(pts, normalRange).Connected() {
			return pts
		}
	}
}

func TestRNGSelectCollinear(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	v := viewOf(pts, 0, 100)
	got := RNG{}.Select(v)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("RNG select for node 0 = %v, want [1] (middle node witnesses the long link)", got)
	}
	got = RNG{}.Select(viewOf(pts, 1, 100))
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("RNG select for node 1 = %v, want [0 2]", got)
	}
}

func TestRNGTieBreakSymmetric(t *testing.T) {
	// Equilateral triangle: all distances equal. With id tie-breaking the
	// highest-cost link in the total order, (1,2), is removed by the
	// witness 0; the others survive. The logical topology must stay
	// connected — without tie-breaking all three links could vanish.
	h := math.Sqrt(3) / 2 * 10
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, h)}
	g := logicalAND(pts, RNG{}, 100)
	if !g.Connected() {
		t.Fatal("equilateral triangle disconnected under RNG with tie-breaking")
	}
	if g.M() != 2 {
		t.Errorf("edges = %d, want 2 (exactly one equal-cost link removed)", g.M())
	}
	if g.HasEdge(1, 2) {
		t.Error("the (1,2) link has the largest tie-broken cost and must be removed")
	}
}

func TestGabrielKeepsMoreThanRNG(t *testing.T) {
	pts := connectedPoints(t, 1, 60)
	rng := logicalAND(pts, RNG{}, normalRange)
	gg := logicalAND(pts, Gabriel{}, normalRange)
	for _, e := range rng.Edges() {
		if !gg.HasEdge(e.U, e.V) {
			t.Fatalf("RNG edge (%d,%d) missing from Gabriel", e.U, e.V)
		}
	}
	if gg.M() < rng.M() {
		t.Error("Gabriel selected fewer links than RNG")
	}
}

func TestRNGMatchesCentralized(t *testing.T) {
	// On a static network with consistent views, the localized RNG
	// protocol must produce exactly the centralized RNG graph.
	for seed := uint64(0); seed < 5; seed++ {
		pts := connectedPoints(t, seed*100+1, 80)
		got := logicalAND(pts, RNG{}, normalRange)
		want := graph.RNGGraph(pts, normalRange)
		ge, we := got.Edges(), want.Edges()
		if len(ge) != len(we) {
			t.Fatalf("seed %d: %d edges, centralized %d", seed, len(ge), len(we))
		}
		for i := range ge {
			if ge[i].U != we[i].U || ge[i].V != we[i].V {
				t.Fatalf("seed %d: edge %d = (%d,%d), want (%d,%d)",
					seed, i, ge[i].U, ge[i].V, we[i].U, we[i].V)
			}
		}
	}
}

func TestGabrielMatchesCentralized(t *testing.T) {
	pts := connectedPoints(t, 7, 80)
	got := logicalAND(pts, Gabriel{}, normalRange)
	want := graph.GabrielGraph(pts, normalRange)
	if !reflect.DeepEqual(edgePairs(got), edgePairs(want)) {
		t.Error("localized Gabriel differs from centralized Gabriel graph")
	}
}

func edgePairs(g *graph.Undirected) [][2]int {
	es := g.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

func TestMSTSelectTriangle(t *testing.T) {
	// Triangle 0-1 (3), 1-2 (4), 0-2 (5): local MST at node 0 keeps (0,1)
	// and (1,2), so 0's logical neighbors = {1}.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(3, 4)}
	got := MST{Range: 100}.Select(viewOf(pts, 0, 100))
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("MST select = %v, want [1]", got)
	}
	got = MST{Range: 100}.Select(viewOf(pts, 1, 100))
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("MST select for middle node = %v, want [0 2]", got)
	}
}

func TestMSTRangeRestrictsRelayEdges(t *testing.T) {
	// Node 0 sees 1 and 2, but 1 and 2 are out of range of each other:
	// the local MST cannot relay through the (1,2) edge.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 200), geom.Pt(0, -200)}
	got := MST{Range: 250}.Select(viewOf(pts, 0, 250))
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("MST select = %v, want [1 2] (relay edge (1,2) beyond range)", got)
	}
}

func TestMSTDegreeBound(t *testing.T) {
	// Li/Hou/Sha: LMST logical degree is at most 6.
	for seed := uint64(0); seed < 10; seed++ {
		pts := connectedPoints(t, seed*31+3, 100)
		p := MST{Range: normalRange}
		for u := range pts {
			if got := p.Select(viewOf(pts, u, normalRange)); len(got) > 6 {
				t.Fatalf("seed %d node %d: LMST degree %d > 6", seed, u, len(got))
			}
		}
	}
}

func TestSPTSelectRelay(t *testing.T) {
	// Direct link 0-1 of length 10 vs relay via 2 near the midpoint:
	// with alpha=2, 5^2+5.1^2 = 51.01 < 100, so SPT removes the direct
	// link; with a fixed per-hop cost of 50 the relay path costs
	// 151 > 150 and the direct link survives.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 1)}
	v := viewOf(pts, 0, 100)
	got := SPT{Alpha: 2, Range: 100}.Select(v)
	want := []int{2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SPT-2 select = %v, want %v", got, want)
	}
	got = SPT{Alpha: 2, Fixed: 50, Range: 100}.Select(v)
	want = []int{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SPT-2+fixed select = %v, want %v", got, want)
	}
}

func TestSPTAlpha4RemovesMoreThanAlpha2(t *testing.T) {
	// Higher path-loss exponent makes relaying cheaper relative to direct
	// transmission, so SPT-4 keeps a subset of SPT-2's links... wait:
	// alpha=4 penalizes long links harder, removing *more* direct links.
	pts := connectedPoints(t, 11, 80)
	g2 := logicalAND(pts, SPT{Alpha: 2, Range: normalRange}, normalRange)
	g4 := logicalAND(pts, SPT{Alpha: 4, Range: normalRange}, normalRange)
	for _, e := range g4.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("SPT-4 edge (%d,%d) not kept by SPT-2", e.U, e.V)
		}
	}
	if g4.M() >= g2.M() {
		t.Errorf("SPT-4 edges (%d) should be fewer than SPT-2 (%d)", g4.M(), g2.M())
	}
}

func TestYaoSelect(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0),   // self
		geom.Pt(10, 1),  // cone 0, near
		geom.Pt(20, 2),  // cone 0, far
		geom.Pt(-5, 10), // different cone
	}
	got := Yao{K: 6}.Select(viewOf(pts, 0, 100))
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Yao select = %v, want [1 3]", got)
	}
}

func TestYaoPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Yao{K: 0}.Select(View{})
}

func TestYaoDegreeAtMostK(t *testing.T) {
	pts := connectedPoints(t, 13, 100)
	p := Yao{K: 6}
	for u := range pts {
		if got := p.Select(viewOf(pts, u, normalRange)); len(got) > 6 {
			t.Fatalf("node %d: Yao degree %d > 6", u, len(got))
		}
	}
}

func TestNoneSelectsAll(t *testing.T) {
	pts := connectedPoints(t, 17, 50)
	v := viewOf(pts, 0, normalRange)
	got := None{}.Select(v)
	if len(got) != len(v.Neighbors) {
		t.Errorf("None selected %d of %d", len(got), len(v.Neighbors))
	}
}

func TestSelectionsSubsetOfView(t *testing.T) {
	pts := connectedPoints(t, 19, 80)
	protos := append(Baselines(normalRange), Gabriel{}, Yao{K: 6}, None{})
	for _, p := range protos {
		for u := 0; u < len(pts); u += 7 {
			v := viewOf(pts, u, normalRange)
			inView := map[int]bool{}
			for _, n := range v.Neighbors {
				inView[n.ID] = true
			}
			prev := -1
			for _, id := range p.Select(v) {
				if !inView[id] {
					t.Fatalf("%s selected %d not in view of %d", p.Name(), id, u)
				}
				if id <= prev {
					t.Fatalf("%s selection not strictly ascending", p.Name())
				}
				prev = id
			}
		}
	}
}

func TestProtocolNames(t *testing.T) {
	cases := map[string]string{
		MST{}.Name():               "MST",
		RNG{}.Name():               "RNG",
		Gabriel{}.Name():           "GG",
		SPT{Alpha: 2}.Name():       "SPT-2",
		SPT{Alpha: 4}.Name():       "SPT-4",
		SPT{Alpha: 2.5}.Name():     "SPT-2.5",
		Yao{K: 6}.Name():           "Yao-6",
		None{}.Name():              "none",
		WeakRNG{}.Name():           "wRNG",
		WeakMST{}.Name():           "wMST",
		WeakSPT{Alpha: 2}.Name():   "wSPT-2",
		WeakSPT{Alpha: 1.5}.Name(): "wSPT-1.5",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MST", "RNG", "GG", "SPT-2", "SPT-4", "Yao-6", "none"} {
		p, err := ByName(name, normalRange)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("bogus", normalRange); err == nil {
		t.Error("unknown name accepted")
	}
	for _, name := range []string{"MST", "RNG", "SPT-2", "SPT-4"} {
		if _, err := WeakByName(name, normalRange); err != nil {
			t.Errorf("WeakByName(%q): %v", name, err)
		}
	}
	if _, err := WeakByName("GG", normalRange); err == nil {
		t.Error("WeakByName should reject GG")
	}
}

func TestBaselinesOrder(t *testing.T) {
	names := []string{}
	for _, p := range Baselines(normalRange) {
		names = append(names, p.Name())
	}
	want := []string{"MST", "RNG", "SPT-4", "SPT-2"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Baselines = %v, want %v", names, want)
	}
}

func TestViewCanon(t *testing.T) {
	v := View{
		Self: NodeInfo{ID: 5, Pos: geom.Pt(0, 0)},
		Neighbors: []NodeInfo{
			{ID: 9, Pos: geom.Pt(1, 0)},
			{ID: 2, Pos: geom.Pt(2, 0)},
			{ID: 9, Pos: geom.Pt(3, 0)}, // duplicate: first kept
			{ID: 5, Pos: geom.Pt(4, 0)}, // self: dropped
		},
	}
	c := v.Canon()
	if len(c.Neighbors) != 2 || c.Neighbors[0].ID != 2 || c.Neighbors[1].ID != 9 {
		t.Fatalf("Canon = %+v", c.Neighbors)
	}
	if c.Neighbors[1].Pos != geom.Pt(1, 0) {
		t.Error("Canon must keep the first occurrence of a duplicate id")
	}
	if _, ok := c.Find(2); !ok {
		t.Error("Find(2) failed")
	}
	if _, ok := c.Find(77); ok {
		t.Error("Find(77) should fail")
	}
}
