package topology

import (
	"fmt"
	"math"
	"sort"
)

// CBTC is the cone-based topology control protocol (Li, Halpern, Bahl,
// Wang & Wattenhofer 2001; §2.1): node u grows its power — here, walks its
// neighbor list in distance order — until every cone of angle Alpha around
// u contains a selected neighbor, i.e. until the maximal angular gap
// between consecutive selected neighbors is at most Alpha (or until all
// neighbors are selected, the boundary-node case).
//
// Guarantees (proven in the original paper and restated in §2.1):
//   - Alpha <= 5π/6: the union of selections (keeping unidirectional
//     links) is connected whenever the original topology is.
//   - Alpha <= 2π/3: the symmetric subgraph (removing unidirectional
//     links — the framework's AND semantics) is connected.
//
// The original protocol's "shrink-back" optimization compensates for the
// power-growth overshoot of its iterative beaconing; the view-based
// formulation here adds neighbors one at a time in distance order, so the
// final set is already minimal and no shrink-back pass is needed. (More
// aggressive pruning — removing any neighbor whose removal preserves cone
// coverage — empirically breaks the 2π/3 symmetric-connectivity guarantee
// and is deliberately not offered.)
type CBTC struct {
	// Alpha is the cone angle in radians (2π/3 and 5π/6 are the
	// meaningful operating points).
	Alpha float64
}

// Name implements Protocol.
func (c CBTC) Name() string {
	return fmt.Sprintf("CBTC-%.2f", c.Alpha)
}

// Select implements Protocol.
func (c CBTC) Select(v View) []int {
	if c.Alpha <= 0 || c.Alpha > 2*math.Pi {
		panic(fmt.Sprintf("topology: CBTC with alpha %g", c.Alpha))
	}
	n := len(v.Neighbors)
	if n == 0 {
		return nil
	}
	// Distance order with the framework's id tie-breaking.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := v.Neighbors[order[a]], v.Neighbors[order[b]]
		return LinkLess(v.Self.Pos.Dist(na.Pos), v.Self.ID, na.ID,
			v.Self.Pos.Dist(nb.Pos), v.Self.ID, nb.ID)
	})
	angles := make([]float64, n)
	for i, nb := range v.Neighbors {
		angles[i] = nb.Pos.Sub(v.Self.Pos).Angle()
	}
	selected := make([]bool, n)
	count := 0
	for _, idx := range order {
		selected[idx] = true
		count++
		if coneCovered(angles, selected, count, c.Alpha) {
			break
		}
	}
	out := make([]int, 0, count)
	for i, nb := range v.Neighbors {
		if selected[i] {
			out = append(out, nb.ID)
		}
	}
	sortInts(out)
	return out
}

// coneCovered reports whether the selected directions leave no angular gap
// larger than alpha.
func coneCovered(angles []float64, selected []bool, count int, alpha float64) bool {
	if count == 0 {
		return false
	}
	sel := make([]float64, 0, count)
	for i, ok := range selected {
		if ok {
			sel = append(sel, angles[i])
		}
	}
	if len(sel) == 1 {
		// A single neighbor covers only if alpha is the full circle.
		return alpha >= 2*math.Pi
	}
	sort.Float64s(sel)
	maxGap := sel[0] + 2*math.Pi - sel[len(sel)-1]
	for i := 1; i < len(sel); i++ {
		if g := sel[i] - sel[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap <= alpha
}

// KNeigh is the K-Neigh protocol (Blough, Leoncini, Resta & Santi 2003;
// §2.2): every node simply keeps its K nearest neighbors. Unlike the
// geometric protocols it offers only probabilistic connectivity — Blough et
// al. report 95 % network connectivity at K = 9 — which is the comparison
// point of §5.2: the paper's mechanisms tolerate moderate mobility with
// average degrees 3.8–5.4, below K-Neigh's uniform 9.
type KNeigh struct {
	// K is the number of nearest neighbors kept.
	K int
}

// Name implements Protocol.
func (k KNeigh) Name() string { return fmt.Sprintf("KNeigh-%d", k.K) }

// Select implements Protocol.
func (k KNeigh) Select(v View) []int {
	if k.K < 1 {
		panic(fmt.Sprintf("topology: KNeigh with K = %d", k.K))
	}
	n := len(v.Neighbors)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := v.Neighbors[order[a]], v.Neighbors[order[b]]
		return LinkLess(v.Self.Pos.Dist(na.Pos), v.Self.ID, na.ID,
			v.Self.Pos.Dist(nb.Pos), v.Self.ID, nb.ID)
	})
	if n > k.K {
		order = order[:k.K]
	}
	out := make([]int, 0, len(order))
	for _, idx := range order {
		out = append(out, v.Neighbors[idx].ID)
	}
	sortInts(out)
	return out
}
