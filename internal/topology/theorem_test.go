package topology

import (
	"math"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/xrand"
)

// TestTheorem1ConnectedLogicalTopology verifies the paper's Theorem 1: with
// consistent local views, every link-removal condition yields a connected
// logical topology whenever the original (unit-disk) topology is connected.
func TestTheorem1ConnectedLogicalTopology(t *testing.T) {
	protos := []Protocol{
		RNG{},
		Gabriel{},
		MST{Range: normalRange},
		SPT{Alpha: 2, Range: normalRange},
		SPT{Alpha: 4, Range: normalRange},
		Yao{K: 6},
	}
	for seed := uint64(0); seed < 8; seed++ {
		pts := connectedPoints(t, seed*997+5, 100)
		for _, p := range protos {
			if g := logicalAND(pts, p, normalRange); !g.Connected() {
				t.Errorf("seed %d: %s produced a disconnected logical topology", seed, p.Name())
			}
		}
	}
}

// TestTheorem1GridTies stresses tie-breaking: a perfect grid has massive
// cost ties; connectivity must still hold for every protocol.
func TestTheorem1GridTies(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			pts = append(pts, geom.Pt(float64(i)*100, float64(j)*100))
		}
	}
	protos := []Protocol{
		RNG{},
		Gabriel{},
		MST{Range: normalRange},
		SPT{Alpha: 2, Range: normalRange},
		SPT{Alpha: 4, Range: normalRange},
		Yao{K: 6},
	}
	if !graph.UnitDisk(pts, normalRange).Connected() {
		t.Fatal("grid should be connected under normal range")
	}
	for _, p := range protos {
		if g := logicalAND(pts, p, normalRange); !g.Connected() {
			t.Errorf("%s disconnected on the tie-heavy grid", p.Name())
		}
	}
}

// TestFig2InconsistentViewsPartition reproduces the paper's Fig. 2/Fig. 3
// counterexample: with inconsistent views of the moving node w, the
// MST-based protocol partitions the 3-node network; forcing both observers
// onto the same version of w's position repairs it.
func TestFig2InconsistentViewsPartition(t *testing.T) {
	// Geometry of Fig. 2: u=(0,0), v=(5,0); w moves upward, advertising
	// from two positions. Distances in u's (older) view: d(u,w)=6,
	// d(v,w)=4; in v's (newer) view: d(u,w)=4 — wait, the figure has
	// d(u,w)=6 > d(u,v)=5 > d(v,w)=4 at t0, then w moves so that
	// d(u,w)=4 < 5 < d(v,w)=6 at t1. u decides with the t1 position,
	// v with the t0 position.
	u, v := geom.Pt(0, 0), geom.Pt(5, 0)
	w0 := wAt(u, v, 6, 4) // position advertised at t0
	w1 := wAt(u, v, 4, 6) // position advertised at t1
	p := MST{Range: 100}

	// u's local view uses w's newer position w1 (d(u,w)=4): the local MST
	// at u is u-w1-v?? No: edges u-v (5), u-w (4), v-w (6): MST keeps
	// {u-w, u-v}. u keeps both v and w... For the partition we need u to
	// drop a link: use the paper's exact time-space setup instead — u
	// decides before t1 (sees w0), v decides after t1 (sees w1).
	uView := View{Self: NodeInfo{ID: 0, Pos: u}, Neighbors: []NodeInfo{
		{ID: 1, Pos: v}, {ID: 2, Pos: w0},
	}}.Canon()
	vView := View{Self: NodeInfo{ID: 1, Pos: v}, Neighbors: []NodeInfo{
		{ID: 0, Pos: u}, {ID: 2, Pos: w1},
	}}.Canon()

	uSel := p.Select(uView) // u sees d(u,w0)=6 > d(u,v)=5 > d(v,w0)=4: drops w
	vSel := p.Select(vView) // v sees d(v,w1)=6 > d(u,v)=5 > d(u,w1)=4: drops w
	if contains(uSel, 2) {
		t.Errorf("u should drop link to w under its view, selected %v", uSel)
	}
	if contains(vSel, 2) {
		t.Errorf("v should drop link to w under its view, selected %v", vSel)
	}
	// Both endpoints dropped w: node w is isolated in the logical
	// topology — the partition of Fig. 2d.

	// Consistent views (both use w0, Fig. 2e): u drops w but v keeps it,
	// and w keeps v, so the logical topology u—v—w is connected.
	vViewConsistent := View{Self: NodeInfo{ID: 1, Pos: v}, Neighbors: []NodeInfo{
		{ID: 0, Pos: u}, {ID: 2, Pos: w0},
	}}.Canon()
	vSelC := p.Select(vViewConsistent)
	if !contains(vSelC, 2) {
		t.Errorf("with consistent views v must keep w, selected %v", vSelC)
	}
	wView := View{Self: NodeInfo{ID: 2, Pos: w0}, Neighbors: []NodeInfo{
		{ID: 0, Pos: u}, {ID: 1, Pos: v},
	}}.Canon()
	wSel := p.Select(wView)
	if !contains(wSel, 1) {
		t.Errorf("w must keep v under consistent views, selected %v", wSel)
	}
}

// wAt returns a point at distance du from u and dv from v (u, v on the
// x-axis), in the upper half-plane.
func wAt(u, v geom.Point, du, dv float64) geom.Point {
	d := u.Dist(v)
	x := (du*du - dv*dv + d*d) / (2 * d)
	y := du*du - x*x
	if y < 0 {
		y = 0
	}
	return geom.Pt(u.X+x, u.Y+math.Sqrt(y))
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// weakViews builds per-node MultiViews from per-node position histories
// such that weak consistency holds: every viewing node stores a random
// suffix of each node's history, and all suffixes include the newest
// version (the shared version that Definition 2 requires).
func weakViews(histories [][]geom.Point, r float64, rng *xrand.Source) []MultiView {
	n := len(histories)
	views := make([]MultiView, n)
	latest := make([]geom.Point, n)
	for i, h := range histories {
		latest[i] = h[0] // newest first
	}
	for u := 0; u < n; u++ {
		mv := MultiView{Self: MultiNodeInfo{ID: u, Positions: suffix(histories[u], rng)}}
		for w := 0; w < n; w++ {
			if w == u {
				continue
			}
			// Neighborhood: within range under the newest versions.
			if latest[u].Dist(latest[w]) <= r {
				mv.Neighbors = append(mv.Neighbors, MultiNodeInfo{ID: w, Positions: suffix(histories[w], rng)})
			}
		}
		views[u] = mv
	}
	return views
}

// suffix returns a random prefix of h (newest-first order) that always
// includes h[0], modelling a node that has received between 1 and all of
// the recent "Hello" messages.
func suffix(h []geom.Point, rng *xrand.Source) []geom.Point {
	k := 1 + rng.Intn(len(h))
	return h[:k]
}

// TestTheorem4WeakConsistencyConnectivity verifies Theorem 4: with weakly
// consistent views, the enhanced removal conditions keep the logical
// topology connected whenever the conservative original topology is
// connected.
func TestTheorem4WeakConsistencyConnectivity(t *testing.T) {
	weakProtos := []WeakProtocol{
		WeakRNG{},
		WeakMST{Range: normalRange},
		WeakSPT{Alpha: 2, Range: normalRange},
		WeakSPT{Alpha: 4, Range: normalRange},
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// Histories: base position plus up to 2 older positions within a
		// 25 m jitter (a 1 s Hello interval at 25 m/s).
		base := mobility.UniformPoints(arena, 70, rng.Sub(0))
		histories := make([][]geom.Point, len(base))
		for i, p := range base {
			h := []geom.Point{p}
			for v := 0; v < 2; v++ {
				j := geom.Polar(rng.Uniform(0, 25), rng.Uniform(0, 6.283185307))
				h = append(h, arena.Clamp(h[len(h)-1].Add(j)))
			}
			histories[i] = h
		}
		// Conservative original topology: link iff every version pair is
		// within range. If that graph is disconnected the theorem is
		// vacuous for this instance.
		g := graph.NewUndirected(len(base))
		for i := range base {
			for j := i + 1; j < len(base); j++ {
				_, dMax := CostRange(histories[i], histories[j], DistanceCost)
				if dMax <= normalRange {
					g.AddEdge(i, j, dMax)
				}
			}
		}
		if !g.Connected() {
			return true
		}
		views := weakViews(histories, normalRange, rng.Sub(1))
		// Restrict neighbors to the conservative topology so every view
		// link is a real link.
		for u := range views {
			kept := views[u].Neighbors[:0]
			for _, nb := range views[u].Neighbors {
				if g.HasEdge(u, nb.ID) {
					kept = append(kept, nb)
				}
			}
			views[u].Neighbors = kept
		}
		for _, p := range weakProtos {
			sel := make([][]int, len(views))
			for u := range views {
				sel[u] = p.SelectWeak(views[u])
			}
			if !andGraph(sel, g).Connected() {
				t.Logf("seed %d: %s disconnected", seed, p.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// andGraph keeps original-topology links that both endpoints selected.
func andGraph(sel [][]int, orig *graph.Undirected) *graph.Undirected {
	n := len(sel)
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for _, v := range sel[u] {
			if v > u && contains(sel[v], u) && orig.HasEdge(u, v) {
				w, _ := orig.Weight(u, v)
				g.AddEdge(u, v, w)
			}
		}
	}
	return g
}

// TestWeakReducesToStrongOnSingletonHistories: with exactly one position
// per node, the enhanced conditions degenerate to the plain ones (minus id
// tie-breaking, which only matters on ties).
func TestWeakReducesToStrongOnSingletonHistories(t *testing.T) {
	pts := connectedPoints(t, 23, 60)
	histories := make([][]geom.Point, len(pts))
	for i, p := range pts {
		histories[i] = []geom.Point{p}
	}
	views := weakViews(histories, normalRange, xrand.New(1))

	pairs := []struct {
		weak   WeakProtocol
		strong Protocol
	}{
		{WeakRNG{}, RNG{}},
		{WeakMST{Range: normalRange}, MST{Range: normalRange}},
		{WeakSPT{Alpha: 2, Range: normalRange}, SPT{Alpha: 2, Range: normalRange}},
	}
	for _, pr := range pairs {
		for u := range views {
			weakSel := pr.weak.SelectWeak(views[u])
			strongSel := pr.strong.Select(viewOf(pts, u, normalRange))
			// Weak is conservative: every strong selection is kept, and
			// any extra weak selections can only come from cost ties.
			for _, id := range strongSel {
				if !contains(weakSel, id) {
					t.Errorf("%s: node %d strong selection %d missing from weak %v",
						pr.weak.Name(), u, id, weakSel)
				}
			}
			if len(weakSel) < len(strongSel) {
				t.Errorf("%s: node %d weak selected fewer (%d) than strong (%d)",
					pr.weak.Name(), u, len(weakSel), len(strongSel))
			}
		}
	}
}

// TestWeakConservativeKeepsMore: richer histories (more position
// uncertainty) can only grow the selected set, never shrink it below the
// certain case.
func TestWeakConservativeKeepsMore(t *testing.T) {
	pts := connectedPoints(t, 29, 50)
	single := make([][]geom.Point, len(pts))
	jittered := make([][]geom.Point, len(pts))
	rng := xrand.New(2)
	for i, p := range pts {
		single[i] = []geom.Point{p}
		j := geom.Polar(rng.Uniform(0, 40), rng.Uniform(0, 6.283185307))
		jittered[i] = []geom.Point{p, arena.Clamp(p.Add(j))}
	}
	// Build both view sets with the full histories (deterministic rng so
	// suffix() always includes everything it can).
	vs1 := weakViews(single, normalRange, xrand.New(3))
	vs2 := weakViews(jittered, normalRange, xrand.New(3))
	p := WeakRNG{}
	for u := range vs1 {
		s1 := p.SelectWeak(vs1[u])
		// Node sets may differ (neighborhood from latest positions is
		// the same since latest = base in both); compare per common id.
		s2 := p.SelectWeak(vs2[u])
		for _, id := range s1 {
			if !contains(s2, id) {
				// Only acceptable if id dropped out of the neighborhood.
				found := false
				for _, nb := range vs2[u].Neighbors {
					if nb.ID == id {
						found = true
					}
				}
				if found {
					t.Errorf("node %d: uncertain views dropped link to %d kept under certainty", u, id)
				}
			}
		}
		_ = s2
	}
}

func TestCostRange(t *testing.T) {
	a := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	b := []geom.Point{geom.Pt(3, 0), geom.Pt(5, 0)}
	cMin, cMax := CostRange(a, b, DistanceCost)
	if cMin != 2 || cMax != 5 {
		t.Errorf("CostRange = (%v, %v), want (2, 5)", cMin, cMax)
	}
	cMin, cMax = CostRange(a, b, EnergyCost(2, 0))
	if cMin != 4 || cMax != 25 {
		t.Errorf("energy CostRange = (%v, %v), want (4, 25)", cMin, cMax)
	}
	cMin, _ = CostRange(nil, b, DistanceCost)
	if !isInf(cMin) {
		t.Errorf("empty set CostRange = %v, want +Inf", cMin)
	}
}

func isInf(x float64) bool { return x > 1e300 && x*2 == x }

// TestSelectionGeometricInvariance: protocol selections depend only on the
// geometry of the view, so translating and rotating every position must
// leave them unchanged. (Yao and CBTC divide the plane into absolute-angle
// cones, so they are translation- but not rotation-invariant; they are
// checked for translation only.)
func TestSelectionGeometricInvariance(t *testing.T) {
	pts := connectedPoints(t, 31, 60)
	translate := func(p geom.Point) geom.Point { return geom.Pt(p.X+137.5, p.Y-41.25) }
	rotate := func(p geom.Point) geom.Point {
		// Rotate by 30 degrees about the arena center.
		const c, s = 0.8660254037844387, 0.5
		dx, dy := p.X-450, p.Y-450
		return geom.Pt(450+c*dx-s*dy, 450+s*dx+c*dy)
	}
	apply := func(f func(geom.Point) geom.Point) []geom.Point {
		out := make([]geom.Point, len(pts))
		for i, p := range pts {
			out[i] = f(p)
		}
		return out
	}
	rotationInvariant := []Protocol{
		RNG{}, Gabriel{}, MST{Range: normalRange},
		SPT{Alpha: 2, Range: normalRange}, KNeigh{K: 5},
	}
	translationOnly := []Protocol{Yao{K: 6}, CBTC{Alpha: 2 * math.Pi / 3}}
	check := func(p Protocol, moved []geom.Point, what string) {
		t.Helper()
		for u := 0; u < len(pts); u += 7 {
			a := p.Select(viewOf(pts, u, normalRange))
			b := p.Select(viewOf(moved, u, normalRange))
			if len(a) != len(b) {
				t.Fatalf("%s not %s-invariant at node %d: %v vs %v", p.Name(), what, u, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s not %s-invariant at node %d: %v vs %v", p.Name(), what, u, a, b)
				}
			}
		}
	}
	movedT := apply(translate)
	movedR := apply(rotate)
	for _, p := range rotationInvariant {
		check(p, movedT, "translation")
		check(p, movedR, "rotation")
	}
	for _, p := range translationOnly {
		check(p, movedT, "translation")
	}
}

// TestSelectionIDRelabelingStability: adding a constant to every node id
// preserves selections up to the same relabeling, since ids only break
// geometric ties.
func TestSelectionIDRelabelingStability(t *testing.T) {
	pts := connectedPoints(t, 37, 50)
	const shift = 1000
	shiftView := func(v View) View {
		out := View{Self: NodeInfo{ID: v.Self.ID + shift, Pos: v.Self.Pos}}
		for _, n := range v.Neighbors {
			out.Neighbors = append(out.Neighbors, NodeInfo{ID: n.ID + shift, Pos: n.Pos})
		}
		return out
	}
	for _, p := range []Protocol{RNG{}, MST{Range: normalRange}, SPT{Alpha: 2, Range: normalRange}} {
		for u := 0; u < len(pts); u += 5 {
			v := viewOf(pts, u, normalRange)
			a := p.Select(v)
			b := p.Select(shiftView(v))
			if len(a) != len(b) {
				t.Fatalf("%s changed under id relabeling: %v vs %v", p.Name(), a, b)
			}
			for i := range a {
				if a[i]+shift != b[i] {
					t.Fatalf("%s changed under id relabeling: %v vs %v", p.Name(), a, b)
				}
			}
		}
	}
}
