package topology

import (
	"sort"
	"testing"

	"mstc/internal/lint"
	"mstc/internal/xrand"
)

// TestNoallocAnnotationsConform pins every //manet:noalloc annotation in
// this package with testing.AllocsPerRun: on reused buffers (warm Scratch,
// recycled dst) each annotated kernel must allocate nothing. The coverage
// map is cross-checked against the annotation scan in both directions, so
// annotating a new function without measuring it here — or measuring one
// that lost its annotation — fails the test, keeping the static claim and
// the dynamic proof in lockstep.
func TestNoallocAnnotationsConform(t *testing.T) {
	rng := xrand.New(91)
	v := randView(rng, 20)
	mv := randMultiView(rng, 14, 3)
	s := &Scratch{}
	var dst []int
	// The interface values are built once, as the simulator does (a
	// network holds its protocol in an interface field): converting the
	// concrete value inside the measured closure would charge the caller's
	// boxing to the kernel.
	var ip Protocol = MST{Range: 275}
	var wp WeakProtocol = WeakMST{Range: 275}

	kernels := map[string]func(){
		// The package-level wrappers are measured through a kernel-backed
		// protocol; for protocols without a kernel they fall back to the
		// allocating Select path by design.
		"SelectInto":             func() { dst = SelectInto(ip, v, dst[:0], s) },
		"SelectWeakInto":         func() { dst = SelectWeakInto(wp, mv, dst[:0], s) },
		"RNG.SelectInto":         func() { dst = RNG{}.SelectInto(v, dst[:0], s) },
		"Gabriel.SelectInto":     func() { dst = Gabriel{}.SelectInto(v, dst[:0], s) },
		"MST.SelectInto":         func() { dst = MST{Range: 275}.SelectInto(v, dst[:0], s) },
		"SPT.SelectInto":         func() { dst = SPT{Alpha: 2, Range: 275}.SelectInto(v, dst[:0], s) },
		"Yao.SelectInto":         func() { dst = Yao{K: 6}.SelectInto(v, dst[:0], s) },
		"None.SelectInto":        func() { dst = None{}.SelectInto(v, dst[:0], s) },
		"WeakRNG.SelectWeakInto": func() { dst = WeakRNG{}.SelectWeakInto(mv, dst[:0], s) },
		"WeakMST.SelectWeakInto": func() { dst = WeakMST{Range: 275}.SelectWeakInto(mv, dst[:0], s) },
		"WeakSPT.SelectWeakInto": func() { dst = WeakSPT{Alpha: 2, Range: 275}.SelectWeakInto(mv, dst[:0], s) },
	}

	assertNoallocCoverage(t, kernels)
	var names []string
	for name := range kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := kernels[name]
		fn() // grow Scratch and dst to steady state before measuring
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run in steady state, want 0", name, allocs)
		}
	}
}

// assertNoallocCoverage fails unless the measured set equals the annotated
// set from the package sources.
func assertNoallocCoverage(t *testing.T, covered map[string]func()) {
	t.Helper()
	annotated, err := lint.NoallocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(annotated))
	for _, name := range annotated {
		seen[name] = true
		if covered[name] == nil {
			t.Errorf("%s is annotated //manet:noalloc but has no AllocsPerRun entry", name)
		}
	}
	for name := range covered {
		if !seen[name] {
			t.Errorf("%s is measured here but not annotated //manet:noalloc", name)
		}
	}
}
