package topology

import (
	"fmt"
	"math"

	"mstc/internal/geom"
	"mstc/internal/graph"
)

// Protocol selects logical neighbors from a consistent local view.
// Implementations must be pure (no state mutated by Select) so that a single
// value can serve every node of the network concurrently.
type Protocol interface {
	// Name returns the short protocol name used in tables ("RNG",
	// "MST", "SPT-2", ...).
	Name() string
	// Select returns the ids of view.Self's logical neighbors, a subset
	// of view.Neighbors' ids, in ascending order. The view must be
	// canonical (View.Canon).
	Select(v View) []int
}

// RNG is the relative-neighborhood-graph-based protocol (§2.1, link-removal
// condition 1 with c = d): link (u, v) is removed iff some witness w in the
// view has cost(u,w) and cost(w,v) both strictly below cost(u,v) in the
// LinkLess total order.
type RNG struct{}

// Name implements Protocol.
func (RNG) Name() string { return "RNG" }

// Select implements Protocol.
func (r RNG) Select(v View) []int {
	return r.SelectInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectInto implements ScratchSelector.
//manet:noalloc
func (RNG) SelectInto(v View, dst []int, s *Scratch) []int {
	u := v.Self
	// Cache cost(u, w) per witness: the naive double loop recomputes each
	// of these d times, and the distance (hypot) dominates the selection
	// profile. The witness cost cost(w, v) is only needed once the first
	// LinkLess condition holds, so it is computed lazily — same values,
	// same comparisons, identical output.
	cU := grown(s.costs, len(v.Neighbors))[:0]
	for _, n := range v.Neighbors {
		cU = append(cU, u.Pos.Dist(n.Pos))
	}
	s.costs = cU
	for i, n := range v.Neighbors {
		cUV := cU[i]
		removed := false
		for j, w := range v.Neighbors {
			if w.ID == n.ID {
				continue
			}
			if !LinkLess(cU[j], u.ID, w.ID, cUV, u.ID, n.ID) {
				continue
			}
			cWV := w.Pos.Dist(n.Pos)
			if LinkLess(cWV, w.ID, n.ID, cUV, u.ID, n.ID) {
				removed = true
				break
			}
		}
		if !removed {
			dst = append(dst, n.ID)
		}
	}
	return dst
}

// Gabriel is the Gabriel-graph special case of the RNG protocol: the
// witness region is the disk with diameter uv instead of the lune. It keeps
// strictly more edges than RNG.
type Gabriel struct{}

// Name implements Protocol.
func (Gabriel) Name() string { return "GG" }

// Select implements Protocol.
func (g Gabriel) Select(v View) []int {
	return g.SelectInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectInto implements ScratchSelector.
//manet:noalloc
func (Gabriel) SelectInto(v View, dst []int, _ *Scratch) []int {
	for _, n := range v.Neighbors {
		removed := false
		for _, w := range v.Neighbors {
			if w.ID != n.ID && geom.InGabrielDisk(w.Pos, v.Self.Pos, n.Pos) {
				removed = true
				break
			}
		}
		if !removed {
			dst = append(dst, n.ID)
		}
	}
	return dst
}

// MST is the local-MST-based protocol (LMST, Li/Hou/Sha 2003; link-removal
// condition 3): node u builds a minimum spanning tree over its view — with
// an edge between two view nodes iff their distance is at most Range, the
// normal transmission range — and keeps as logical neighbors exactly the
// nodes adjacent to u in that tree.
type MST struct {
	// Range is the normal transmission range R: only view edges with
	// d <= Range are known to exist in the original topology and may be
	// used by the tree.
	Range float64
}

// Name implements Protocol.
func (MST) Name() string { return "MST" }

// Select implements Protocol.
func (m MST) Select(v View) []int {
	return m.SelectInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectInto implements ScratchSelector. The kernel is graph.PrimMST
// replayed over a dense scratch weight matrix: the per-vertex candidate
// comparison (mstLess), the heap's (key, node) order with sift operations
// matching container/heap's, the ascending-index relaxation order (the
// historical adjacency lists list neighbors ascending), and the
// per-component restart are all replicated, so the kernel commits exactly
// the tree edges the historical viewGraph + graph.PrimMST implementation
// commits — including which of several equal-weight candidates wins.
// TestMSTKernelMatchesPrim pins the equivalence on tie-heavy inputs.
//manet:noalloc
func (m MST) SelectInto(v View, dst []int, s *Scratch) []int {
	selfIdx := s.viewNodes(v)
	n := len(s.ids)
	s.w = grown(s.w, n*n)
	r2 := rangeBound(m.Range)
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		s.w[i*n+i] = inf
		for j := i + 1; j < n; j++ {
			c := inf
			if s.pts[i].Dist2(s.pts[j]) <= r2 {
				c = s.pts[i].Dist(s.pts[j])
			}
			s.w[i*n+j] = c
			s.w[j*n+i] = c
		}
	}
	s.dist = grown(s.dist, n)
	s.pred = grown(s.pred, n)
	s.done = grown(s.done, n)
	bestW, bestFrom, inTree := s.dist, s.pred, s.done
	for i := 0; i < n; i++ {
		bestW[i] = inf
		bestFrom[i] = -1
		inTree[i] = false
	}
	s.heap = s.heap[:0]
	start := len(dst)
	for st := 0; st < n; st++ {
		if inTree[st] {
			continue
		}
		bestW[st] = 0
		s.heap.push(nodeKey{key: 0, node: int32(st), from: -1})
		for len(s.heap) > 0 {
			it := s.heap.pop()
			u := int(it.node)
			if inTree[u] {
				continue
			}
			inTree[u] = true
			if it.from != -1 {
				if int(it.from) == selfIdx {
					dst = append(dst, s.ids[u])
				} else if u == selfIdx {
					dst = append(dst, s.ids[it.from])
				}
			}
			row := s.w[u*n : u*n+n]
			for nb := 0; nb < n; nb++ {
				w := row[nb]
				if math.IsInf(w, 1) || inTree[nb] {
					continue
				}
				if mstLess(w, u, nb, bestW[nb], int(bestFrom[nb]), nb) {
					bestW[nb] = w
					bestFrom[nb] = int32(u)
					s.heap.push(nodeKey{key: w, node: int32(nb), from: int32(u)})
				}
			}
		}
	}
	sortInts(dst[start:])
	return dst
}

// mstLess is graph.PrimMST's candidate-edge order: primarily by weight,
// then by the canonical endpoint pair — a strict total order even with
// equal weights.
func mstLess(w1 float64, a1, b1 int, w2 float64, a2, b2 int) bool {
	if w1 != w2 { //lint:ignore float-eq exact compare is the documented strict total order over edge weights
		return w1 < w2
	}
	if a1 > b1 {
		a1, b1 = b1, a1
	}
	if a2 > b2 {
		a2, b2 = b2, a2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

// SPT is the minimum-energy (shortest-path-tree-based) protocol
// (Rodoplu/Meng 1999, Li/Halpern 2001 restricted to 1-hop information;
// link-removal condition 2): link (u, v) is removed iff the view contains a
// relay path whose total energy cost is strictly below the direct cost.
type SPT struct {
	// Alpha is the path-loss exponent of the energy model d^Alpha + Fixed.
	Alpha float64
	// Fixed is the distance-independent per-hop cost (0 in the paper's
	// simulation).
	Fixed float64
	// Range is the normal transmission range bounding usable view edges.
	Range float64
}

// Name implements Protocol.
func (s SPT) Name() string {
	if s.Alpha == float64(int(s.Alpha)) { //lint:ignore float-eq exact integrality test for display names only
		return fmt.Sprintf("SPT-%d", int(s.Alpha))
	}
	return fmt.Sprintf("SPT-%g", s.Alpha)
}

// Select implements Protocol.
func (s SPT) Select(v View) []int {
	return s.SelectInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectInto implements ScratchSelector. The kernel runs Dijkstra over a
// dense scratch weight matrix instead of Select's historical viewGraph +
// graph.Dijkstra, replicating that implementation's relaxation conditions
// (including the equal-distance predecessor tie-break) verbatim: the pop
// order under the (key, node) total order and therefore every computed
// distance is identical, and TestSPTKernelMatchesDijkstra pins it.
//manet:noalloc
func (sp SPT) SelectInto(v View, dst []int, s *Scratch) []int {
	if sp.Alpha < 1 {
		panic(fmt.Sprintf("topology: EnergyCost alpha %g < 1", sp.Alpha))
	}
	selfIdx := s.viewNodes(v)
	n := len(s.ids)
	s.w = grown(s.w, n*n)
	r2 := rangeBound(sp.Range)
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		s.w[i*n+i] = inf
		for j := i + 1; j < n; j++ {
			c := inf
			if s.pts[i].Dist2(s.pts[j]) <= r2 {
				c = math.Pow(s.pts[i].Dist(s.pts[j]), sp.Alpha) + sp.Fixed
			}
			s.w[i*n+j] = c
			s.w[j*n+i] = c
		}
	}
	dist := s.denseDijkstra(n, selfIdx)
	for i, nb := range v.Neighbors {
		direct := math.Pow(v.Self.Pos.Dist(nb.Pos), sp.Alpha) + sp.Fixed
		idx := i
		if i >= selfIdx {
			idx = i + 1
		}
		// Keep the link unless a strictly cheaper indirect path exists.
		// dist includes the direct edge, so dist <= direct always holds
		// when the edge is usable; equality means direct is optimal.
		if dist[idx] >= direct {
			dst = append(dst, nb.ID)
		}
	}
	return dst
}

// denseDijkstra is graph.Dijkstra over the scratch's dense n×n weight
// matrix (+Inf = no edge), with identical relaxation and tie-breaking.
func (s *Scratch) denseDijkstra(n, src int) []float64 {
	s.dist = grown(s.dist, n)
	s.pred = grown(s.pred, n)
	s.done = grown(s.done, n)
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		s.dist[i] = inf
		s.pred[i] = -1
		s.done[i] = false
	}
	s.dist[src] = 0
	s.heap = append(s.heap[:0], nodeKey{key: 0, node: int32(src)})
	pq := &s.heap
	for len(*pq) > 0 {
		u := int(pq.pop().node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		for v := 0; v < n; v++ {
			w := s.w[u*n+v]
			if math.IsInf(w, 1) {
				continue
			}
			nd := s.dist[u] + w
			if nd < s.dist[v] || (nd == s.dist[v] && !s.done[v] && (s.pred[v] == -1 || int32(u) < s.pred[v])) { //lint:ignore float-eq exact tie-break selects the lowest-id predecessor deterministically
				s.dist[v] = nd
				s.pred[v] = int32(u)
				pq.push(nodeKey{key: nd, node: int32(v)})
			}
		}
	}
	return s.dist
}

// Yao is the Yao-graph-based protocol: the disk around u is divided into K
// equal cones and the nearest view neighbor in each cone is selected.
// Connectivity of the (directed) Yao graph is guaranteed for K >= 6.
type Yao struct {
	// K is the number of cones (>= 1; >= 6 for guaranteed connectivity).
	K int
}

// Name implements Protocol.
func (y Yao) Name() string { return fmt.Sprintf("Yao-%d", y.K) }

// Select implements Protocol.
func (y Yao) Select(v View) []int {
	return y.SelectInto(v, make([]int, 0, y.K), &Scratch{})
}

// SelectInto implements ScratchSelector.
//manet:noalloc
func (y Yao) SelectInto(v View, dst []int, s *Scratch) []int {
	if y.K <= 0 {
		panic(fmt.Sprintf("topology: Yao with K = %d", y.K))
	}
	best := grown(s.best, y.K) // index into v.Neighbors, -1 = empty
	s.best = best
	for i := range best {
		best[i] = -1
	}
	for i, n := range v.Neighbors {
		c := geom.ConeIndex(v.Self.Pos, n.Pos, y.K)
		if best[c] == -1 {
			best[c] = i
			continue
		}
		cur := v.Neighbors[best[c]]
		dNew := v.Self.Pos.Dist(n.Pos)
		dCur := v.Self.Pos.Dist(cur.Pos)
		if LinkLess(dNew, v.Self.ID, n.ID, dCur, v.Self.ID, cur.ID) {
			best[c] = i
		}
	}
	start := len(dst)
	for _, i := range best {
		if i != -1 {
			dst = append(dst, v.Neighbors[i].ID)
		}
	}
	sortInts(dst[start:])
	return dst
}

// None is the null protocol: every 1-hop neighbor is logical. It models the
// uncontrolled network (normal transmission range) as a baseline.
type None struct{}

// Name implements Protocol.
func (None) Name() string { return "none" }

// Select implements Protocol.
func (n None) Select(v View) []int {
	return n.SelectInto(v, make([]int, 0, len(v.Neighbors)), &Scratch{})
}

// SelectInto implements ScratchSelector.
//manet:noalloc
func (None) SelectInto(v View, dst []int, _ *Scratch) []int {
	for _, n := range v.Neighbors {
		dst = append(dst, n.ID)
	}
	return dst
}

// viewGraph builds the local-view graph used by MST and SPT selection.
// View nodes are indexed in ascending real-id order so that the index-based
// tie-breaking inside graph.PrimMST and graph.Dijkstra coincides with the
// paper's global id-based total order — essential for different nodes'
// local computations to agree on equal-cost links (Theorem 1 needs a single
// total order shared by all nodes). An edge joins two view nodes iff their
// distance is at most maxRange (maxRange <= 0 or +Inf means unbounded),
// weighted by fn(distance). It returns the index→id table, Self's index,
// and the graph.
func viewGraph(v View, maxRange float64, fn CostFn) (ids []int, selfIdx int, g *graph.Undirected) {
	n := len(v.Neighbors) + 1
	ids = make([]int, 0, n)
	pts := make([]geom.Point, 0, n)
	selfIdx = -1
	// v is canonical: neighbors ascend by id. Insert Self in id order.
	for _, nb := range v.Neighbors {
		if selfIdx == -1 && v.Self.ID < nb.ID {
			selfIdx = len(ids)
			ids = append(ids, v.Self.ID)
			pts = append(pts, v.Self.Pos)
		}
		ids = append(ids, nb.ID)
		pts = append(pts, nb.Pos)
	}
	if selfIdx == -1 {
		selfIdx = len(ids)
		ids = append(ids, v.Self.ID)
		pts = append(pts, v.Self.Pos)
	}
	g = graph.NewUndirected(n)
	r2 := maxRange * maxRange
	if maxRange <= 0 || math.IsInf(maxRange, 1) {
		r2 = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				g.AddEdge(i, j, fn(pts[i].Dist(pts[j])))
			}
		}
	}
	return ids, selfIdx, g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
