package topology

import (
	"fmt"
	"math"

	"mstc/internal/geom"
	"mstc/internal/graph"
)

// Protocol selects logical neighbors from a consistent local view.
// Implementations must be pure (no state mutated by Select) so that a single
// value can serve every node of the network concurrently.
type Protocol interface {
	// Name returns the short protocol name used in tables ("RNG",
	// "MST", "SPT-2", ...).
	Name() string
	// Select returns the ids of view.Self's logical neighbors, a subset
	// of view.Neighbors' ids, in ascending order. The view must be
	// canonical (View.Canon).
	Select(v View) []int
}

// RNG is the relative-neighborhood-graph-based protocol (§2.1, link-removal
// condition 1 with c = d): link (u, v) is removed iff some witness w in the
// view has cost(u,w) and cost(w,v) both strictly below cost(u,v) in the
// LinkLess total order.
type RNG struct{}

// Name implements Protocol.
func (RNG) Name() string { return "RNG" }

// Select implements Protocol.
func (RNG) Select(v View) []int {
	out := make([]int, 0, 4)
	u := v.Self
	// Cache cost(u, w) per witness: the naive double loop recomputes each
	// of these d times, and the distance (hypot) dominates the selection
	// profile. The witness cost cost(w, v) is only needed once the first
	// LinkLess condition holds, so it is computed lazily — same values,
	// same comparisons, identical output.
	var buf [64]float64
	cU := buf[:0]
	if len(v.Neighbors) > len(buf) {
		cU = make([]float64, 0, len(v.Neighbors))
	}
	for _, n := range v.Neighbors {
		cU = append(cU, u.Pos.Dist(n.Pos))
	}
	for i, n := range v.Neighbors {
		cUV := cU[i]
		removed := false
		for j, w := range v.Neighbors {
			if w.ID == n.ID {
				continue
			}
			if !LinkLess(cU[j], u.ID, w.ID, cUV, u.ID, n.ID) {
				continue
			}
			cWV := w.Pos.Dist(n.Pos)
			if LinkLess(cWV, w.ID, n.ID, cUV, u.ID, n.ID) {
				removed = true
				break
			}
		}
		if !removed {
			out = append(out, n.ID)
		}
	}
	return out
}

// Gabriel is the Gabriel-graph special case of the RNG protocol: the
// witness region is the disk with diameter uv instead of the lune. It keeps
// strictly more edges than RNG.
type Gabriel struct{}

// Name implements Protocol.
func (Gabriel) Name() string { return "GG" }

// Select implements Protocol.
func (Gabriel) Select(v View) []int {
	out := make([]int, 0, 4)
	for _, n := range v.Neighbors {
		removed := false
		for _, w := range v.Neighbors {
			if w.ID != n.ID && geom.InGabrielDisk(w.Pos, v.Self.Pos, n.Pos) {
				removed = true
				break
			}
		}
		if !removed {
			out = append(out, n.ID)
		}
	}
	return out
}

// MST is the local-MST-based protocol (LMST, Li/Hou/Sha 2003; link-removal
// condition 3): node u builds a minimum spanning tree over its view — with
// an edge between two view nodes iff their distance is at most Range, the
// normal transmission range — and keeps as logical neighbors exactly the
// nodes adjacent to u in that tree.
type MST struct {
	// Range is the normal transmission range R: only view edges with
	// d <= Range are known to exist in the original topology and may be
	// used by the tree.
	Range float64
}

// Name implements Protocol.
func (MST) Name() string { return "MST" }

// Select implements Protocol.
func (m MST) Select(v View) []int {
	ids, selfIdx, g := viewGraph(v, m.Range, DistanceCost)
	edges, _ := graph.PrimMST(g)
	out := make([]int, 0, 4)
	for _, e := range edges {
		if e.U == selfIdx {
			out = append(out, ids[e.V])
		} else if e.V == selfIdx {
			out = append(out, ids[e.U])
		}
	}
	sortInts(out)
	return out
}

// SPT is the minimum-energy (shortest-path-tree-based) protocol
// (Rodoplu/Meng 1999, Li/Halpern 2001 restricted to 1-hop information;
// link-removal condition 2): link (u, v) is removed iff the view contains a
// relay path whose total energy cost is strictly below the direct cost.
type SPT struct {
	// Alpha is the path-loss exponent of the energy model d^Alpha + Fixed.
	Alpha float64
	// Fixed is the distance-independent per-hop cost (0 in the paper's
	// simulation).
	Fixed float64
	// Range is the normal transmission range bounding usable view edges.
	Range float64
}

// Name implements Protocol.
func (s SPT) Name() string {
	if s.Alpha == float64(int(s.Alpha)) { //lint:ignore float-eq exact integrality test for display names only
		return fmt.Sprintf("SPT-%d", int(s.Alpha))
	}
	return fmt.Sprintf("SPT-%g", s.Alpha)
}

// Select implements Protocol.
func (s SPT) Select(v View) []int {
	cost := EnergyCost(s.Alpha, s.Fixed)
	ids, selfIdx, g := viewGraph(v, s.Range, cost)
	dist, _ := graph.Dijkstra(g, selfIdx)
	out := make([]int, 0, 4)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	for _, n := range v.Neighbors {
		direct := cost(v.Self.Pos.Dist(n.Pos))
		// Keep the link unless a strictly cheaper indirect path exists.
		// dist includes the direct edge, so dist <= direct always holds
		// when the edge is usable; equality means direct is optimal.
		if dist[idx[n.ID]] >= direct {
			out = append(out, n.ID)
		}
	}
	return out
}

// Yao is the Yao-graph-based protocol: the disk around u is divided into K
// equal cones and the nearest view neighbor in each cone is selected.
// Connectivity of the (directed) Yao graph is guaranteed for K >= 6.
type Yao struct {
	// K is the number of cones (>= 1; >= 6 for guaranteed connectivity).
	K int
}

// Name implements Protocol.
func (y Yao) Name() string { return fmt.Sprintf("Yao-%d", y.K) }

// Select implements Protocol.
func (y Yao) Select(v View) []int {
	if y.K <= 0 {
		panic(fmt.Sprintf("topology: Yao with K = %d", y.K))
	}
	best := make([]int, y.K) // index into v.Neighbors, -1 = empty
	for i := range best {
		best[i] = -1
	}
	for i, n := range v.Neighbors {
		c := geom.ConeIndex(v.Self.Pos, n.Pos, y.K)
		if best[c] == -1 {
			best[c] = i
			continue
		}
		cur := v.Neighbors[best[c]]
		dNew := v.Self.Pos.Dist(n.Pos)
		dCur := v.Self.Pos.Dist(cur.Pos)
		if LinkLess(dNew, v.Self.ID, n.ID, dCur, v.Self.ID, cur.ID) {
			best[c] = i
		}
	}
	out := make([]int, 0, y.K)
	for _, i := range best {
		if i != -1 {
			out = append(out, v.Neighbors[i].ID)
		}
	}
	sortInts(out)
	return out
}

// None is the null protocol: every 1-hop neighbor is logical. It models the
// uncontrolled network (normal transmission range) as a baseline.
type None struct{}

// Name implements Protocol.
func (None) Name() string { return "none" }

// Select implements Protocol.
func (None) Select(v View) []int {
	out := make([]int, len(v.Neighbors))
	for i, n := range v.Neighbors {
		out[i] = n.ID
	}
	return out
}

// viewGraph builds the local-view graph used by MST and SPT selection.
// View nodes are indexed in ascending real-id order so that the index-based
// tie-breaking inside graph.PrimMST and graph.Dijkstra coincides with the
// paper's global id-based total order — essential for different nodes'
// local computations to agree on equal-cost links (Theorem 1 needs a single
// total order shared by all nodes). An edge joins two view nodes iff their
// distance is at most maxRange (maxRange <= 0 or +Inf means unbounded),
// weighted by fn(distance). It returns the index→id table, Self's index,
// and the graph.
func viewGraph(v View, maxRange float64, fn CostFn) (ids []int, selfIdx int, g *graph.Undirected) {
	n := len(v.Neighbors) + 1
	ids = make([]int, 0, n)
	pts := make([]geom.Point, 0, n)
	selfIdx = -1
	// v is canonical: neighbors ascend by id. Insert Self in id order.
	for _, nb := range v.Neighbors {
		if selfIdx == -1 && v.Self.ID < nb.ID {
			selfIdx = len(ids)
			ids = append(ids, v.Self.ID)
			pts = append(pts, v.Self.Pos)
		}
		ids = append(ids, nb.ID)
		pts = append(pts, nb.Pos)
	}
	if selfIdx == -1 {
		selfIdx = len(ids)
		ids = append(ids, v.Self.ID)
		pts = append(pts, v.Self.Pos)
	}
	g = graph.NewUndirected(n)
	r2 := maxRange * maxRange
	if maxRange <= 0 || math.IsInf(maxRange, 1) {
		r2 = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				g.AddEdge(i, j, fn(pts[i].Dist(pts[j])))
			}
		}
	}
	return ids, selfIdx, g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
