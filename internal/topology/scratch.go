package topology

import (
	"math"

	"mstc/internal/geom"
)

// Scratch holds the reusable working storage of the allocation-free
// selection kernels (SelectInto / SelectWeakInto): witness-cost caches,
// view index tables, dense weight matrices and the Prim/Dijkstra heap.
// The zero value is ready to use; buffers
// grow on demand and are retained across calls, so a long-lived caller
// (one per simulated network in package manet) reaches a steady state
// where selection allocates nothing.
//
// A Scratch may be shared by any number of protocol values but never
// across goroutines — it is caller-owned mutable state, which is exactly
// why it is threaded as an explicit parameter instead of living inside
// the (pure, shareable) protocol values.
type Scratch struct {
	costs []float64      // RNG: cost(self, w) per witness
	best  []int          // Yao: per-cone best neighbor index
	ids   []int          // MST/SPT/weak: view index -> node id
	pts   []geom.Point   // MST/SPT: view positions in index order
	pos   [][]geom.Point // weak: per-node position sets in index order
	w     []float64      // MST/SPT/weak: dense n×n weight matrix, +Inf = no edge
	dist  []float64      // per-node keys (distance / bottleneck / best weight)
	pred  []int32        // SPT: Dijkstra predecessors; MST: best tree edge source
	done  []bool
	heap  nodeKeyHeap
}

// ScratchSelector is implemented by protocols with an allocation-free
// selection kernel. SelectInto appends the selected logical neighbor ids
// (ascending) to dst and returns the extended slice; the result is
// bit-identical to Select on the same view. Scratch buffers are grown and
// reused; nothing in the returned slice aliases the Scratch.
type ScratchSelector interface {
	SelectInto(v View, dst []int, s *Scratch) []int
}

// WeakScratchSelector is the weak-consistency analogue of ScratchSelector.
type WeakScratchSelector interface {
	SelectWeakInto(v MultiView, dst []int, s *Scratch) []int
}

// SelectInto runs p's selection appending into dst, through p's
// allocation-free kernel when it has one and through plain Select
// otherwise. Results are identical either way; only allocation behavior
// differs.
//manet:noalloc
func SelectInto(p Protocol, v View, dst []int, s *Scratch) []int {
	if ip, ok := p.(ScratchSelector); ok {
		return ip.SelectInto(v, dst, s)
	}
	return append(dst, p.Select(v)...)
}

// SelectWeakInto is SelectInto for weak-consistency selectors.
//manet:noalloc
func SelectWeakInto(p WeakProtocol, v MultiView, dst []int, s *Scratch) []int {
	if ip, ok := p.(WeakScratchSelector); ok {
		return ip.SelectWeakInto(v, dst, s)
	}
	return append(dst, p.SelectWeak(v)...)
}

// grown returns buf resized to n, growing the backing array if needed.
func grown[T any](buf []T, n int) []T {
	if cap(buf) < n {
		//lint:ignore noalloc amortized growth: Scratch buffers are retained across calls, so long-lived callers reach an allocation-free steady state (pinned by the conformance tests)
		return make([]T, n, n+n/2+8)
	}
	return buf[:n]
}

// viewNodes lays the view's nodes out in ascending real-id order (Self
// inserted at its id rank) into the scratch index tables, mirroring
// viewGraph's indexing so index-based tie-breaking matches the global
// id-based total order. It returns Self's index.
func (s *Scratch) viewNodes(v View) (selfIdx int) {
	n := len(v.Neighbors) + 1
	s.ids = grown(s.ids, n)[:0]
	s.pts = grown(s.pts, n)[:0]
	selfIdx = -1
	for _, nb := range v.Neighbors {
		if selfIdx == -1 && v.Self.ID < nb.ID {
			selfIdx = len(s.ids)
			s.ids = append(s.ids, v.Self.ID)
			s.pts = append(s.pts, v.Self.Pos)
		}
		s.ids = append(s.ids, nb.ID)
		s.pts = append(s.pts, nb.Pos)
	}
	if selfIdx == -1 {
		selfIdx = len(s.ids)
		s.ids = append(s.ids, v.Self.ID)
		s.pts = append(s.pts, v.Self.Pos)
	}
	return selfIdx
}

// nodeKeyHeap is a hand-rolled binary min-heap over (key, node) items,
// ordered by key then node index — the same comparator as graph.keyHeap and
// graph.f64Heap — with sift-up/sift-down operations that perform exactly
// container/heap's swap sequences. Identical comparators and identical sift
// behavior mean identical layouts and pop orders even among fully equal
// items, which is what lets the kernels replay the historical algorithms'
// tie behavior bit-for-bit without container/heap's per-Push interface
// boxing. The from field is payload (Prim's candidate edge source), never
// compared.
type nodeKeyHeap []nodeKey

type nodeKey struct {
	key  float64
	node int32
	from int32
}

func (h nodeKeyHeap) less(i, j int) bool {
	if h[i].key != h[j].key { //lint:ignore float-eq exact compare keeps the heap's total order deterministic
		return h[i].key < h[j].key
	}
	return h[i].node < h[j].node
}

func (h *nodeKeyHeap) push(it nodeKey) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *nodeKeyHeap) pop() nodeKey {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// rangeBound converts a maximum range into the squared-distance bound used
// by the view-graph constructions (maxRange <= 0 or +Inf means unbounded).
func rangeBound(maxRange float64) float64 {
	if maxRange <= 0 || math.IsInf(maxRange, 1) {
		return math.Inf(1)
	}
	return maxRange * maxRange
}
